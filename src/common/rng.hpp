// Deterministic pseudo-random generation.
//
// Checkpoint payloads in tests and benchmarks are synthesised from seeds so
// that recovery can be verified bit-exactly without retaining a golden copy.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace eccheck {

/// SplitMix64: tiny, fast, well-distributed; used for payload synthesis and
/// anywhere reproducibility across platforms matters (std::mt19937 streams
/// are standardised too, but SplitMix is cheaper and header-only).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  double next_double() {  // uniform in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Fill `dst` with deterministic bytes derived from `seed`.
void fill_random(MutableByteSpan dst, std::uint64_t seed);

}  // namespace eccheck
