// Size / bandwidth / virtual-time units.
//
// All simulated durations are double seconds (virtual time); bandwidths are
// bytes per second. Helpers keep call sites self-describing:
//   remote.bandwidth = gbps(5);    // 5 Gbit/s aggregate
//   Buffer buf(mib(64));
#pragma once

#include <cstdint>
#include <string>

namespace eccheck {

using Seconds = double;         ///< virtual-time duration
using BytesPerSecond = double;  ///< bandwidth

constexpr std::size_t kib(std::size_t n) { return n << 10; }
constexpr std::size_t mib(std::size_t n) { return n << 20; }
constexpr std::size_t gib(std::size_t n) { return n << 30; }

/// Network bandwidths quoted in Gbit/s (decimal, as vendors do).
constexpr BytesPerSecond gbps(double g) { return g * 1e9 / 8.0; }
constexpr BytesPerSecond gibps(double g) { return g * (1ULL << 30); }

/// Human-readable byte counts ("6.5 GiB") for reports.
std::string human_bytes(double bytes);

/// Human-readable durations ("1.25 s", "830 ms").
std::string human_seconds(Seconds s);

}  // namespace eccheck
