#include "common/bytes.hpp"

#include <cstdint>

namespace eccheck {

void xor_into(MutableByteSpan dst, ByteSpan src) {
  ECC_CHECK(dst.size() == src.size());
  std::size_t n = dst.size();
  auto* d = reinterpret_cast<unsigned char*>(dst.data());
  const auto* s = reinterpret_cast<const unsigned char*>(src.data());
  std::size_t i = 0;
  // Word-at-a-time main loop; memcpy keeps it UB-free on unaligned tails.
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a, b;
    std::memcpy(&a, d + i, sizeof(a));
    std::memcpy(&b, s + i, sizeof(b));
    a ^= b;
    std::memcpy(d + i, &a, sizeof(a));
  }
  for (; i < n; ++i) d[i] ^= s[i];
}

}  // namespace eccheck
