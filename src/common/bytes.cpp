#include "common/bytes.hpp"

#include "gf/simd.hpp"

namespace eccheck {

void xor_into(MutableByteSpan dst, ByteSpan src) {
  ECC_CHECK(dst.size() == src.size());
  if (dst.empty()) return;
  // Runtime-dispatched kernel (SSE2/AVX2/NEON when the host has them);
  // see gf/simd.hpp. Callers on a tight loop can hoist gf::simd::active()
  // and call the function pointer directly.
  gf::simd::active().xor_into(dst.data(), src.data(), dst.size());
}

}  // namespace eccheck
