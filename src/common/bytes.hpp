// Owned byte buffers and views used throughout the checkpoint pipeline.
//
// Buffers are 64-byte aligned so XOR/GF region kernels can assume aligned
// word access, and zero-initialisation is explicit (parity buffers must start
// zeroed; data buffers may skip the cost).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace eccheck {

using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

/// Owned, 64-byte-aligned, fixed-size byte buffer.
class Buffer {
 public:
  Buffer() = default;

  enum class Init { kZeroed, kUninitialized };

  explicit Buffer(std::size_t size, Init init = Init::kZeroed) : size_(size) {
    if (size_ == 0) return;
    data_.reset(static_cast<std::byte*>(
        ::operator new[](size_, std::align_val_t{kAlignment})));
    if (init == Init::kZeroed) std::memset(data_.get(), 0, size_);
  }

  static Buffer copy_of(ByteSpan src) {
    Buffer b(src.size(), Init::kUninitialized);
    if (!src.empty()) std::memcpy(b.data(), src.data(), src.size());
    return b;
  }

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ByteSpan span() const { return {data_.get(), size_}; }
  MutableByteSpan span() { return {data_.get(), size_}; }

  ByteSpan subspan(std::size_t offset, std::size_t len) const {
    ECC_CHECK(offset + len <= size_);
    return {data_.get() + offset, len};
  }
  MutableByteSpan subspan(std::size_t offset, std::size_t len) {
    ECC_CHECK(offset + len <= size_);
    return {data_.get() + offset, len};
  }

  void zero() {
    if (size_ != 0) std::memset(data_.get(), 0, size_);
  }

  Buffer clone() const { return copy_of(span()); }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.data_.get(), b.data_.get(), a.size_) == 0);
  }

  static constexpr std::size_t kAlignment = 64;

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  std::unique_ptr<std::byte[], AlignedDelete> data_;
  std::size_t size_ = 0;
};

/// XOR `src` into `dst` (dst ^= src). Spans must be the same length.
/// Vectorized behind the runtime ISA dispatch in gf/simd.hpp (overridable
/// with ECCHECK_SIMD); any alignment is accepted, but 64-byte-aligned
/// buffers (every eccheck::Buffer) take the aligned fast path.
void xor_into(MutableByteSpan dst, ByteSpan src);

/// Convenience: bytes of a trivially copyable value.
template <typename T>
ByteSpan as_bytes_of(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
}

}  // namespace eccheck
