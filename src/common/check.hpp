// Lightweight precondition / invariant checking.
//
// ECC_CHECK is always on (these guard protocol invariants whose violation
// would silently corrupt checkpoints); ECC_DCHECK compiles out in NDEBUG
// builds and is meant for hot loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eccheck {

/// Raised when an ECC_CHECK fires. Carries file:line plus the failed
/// expression so a test harness can assert on the message.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail

}  // namespace eccheck

#define ECC_CHECK(expr)                                                    \
  do {                                                                     \
    if (!(expr))                                                           \
      ::eccheck::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define ECC_CHECK_MSG(expr, msg)                                           \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream ecc_check_os_;                                    \
      ecc_check_os_ << msg;                                                \
      ::eccheck::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                      ecc_check_os_.str());                \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define ECC_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define ECC_DCHECK(expr) ECC_CHECK(expr)
#endif
