#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace eccheck {

std::string human_bytes(double bytes) {
  static const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int i = 0;
  while (std::abs(bytes) >= 1024.0 && i < 5) {
    bytes /= 1024.0;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), i == 0 ? "%.0f %s" : "%.2f %s", bytes,
                suffix[i]);
  return buf;
}

std::string human_seconds(Seconds s) {
  char buf[64];
  if (s >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.3f us", s * 1e6);
  return buf;
}

}  // namespace eccheck
