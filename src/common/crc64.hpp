// CRC64 (ECMA-182 polynomial) for checkpoint integrity verification.
//
// Every tensor carries a CRC so tests can assert bit-exact recovery without
// holding a second copy of multi-megabyte payloads.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace eccheck {

std::uint64_t crc64(ByteSpan data, std::uint64_t seed = 0);

}  // namespace eccheck
