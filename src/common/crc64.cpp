#include "common/crc64.hpp"

#include <array>

namespace eccheck {
namespace {

constexpr std::uint64_t kPoly = 0x42f0e1eba9ea3693ULL;  // ECMA-182

std::array<std::uint64_t, 256> make_table() {
  std::array<std::uint64_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    std::uint64_t crc = static_cast<std::uint64_t>(i) << 56;
    for (int b = 0; b < 8; ++b)
      crc = (crc & (1ULL << 63)) ? (crc << 1) ^ kPoly : (crc << 1);
    t[static_cast<std::size_t>(i)] = crc;
  }
  return t;
}

const std::array<std::uint64_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

std::uint64_t crc64(ByteSpan data, std::uint64_t seed) {
  const auto& t = table();
  std::uint64_t crc = ~seed;
  for (std::byte b : data) {
    auto idx = static_cast<std::size_t>(
        ((crc >> 56) ^ static_cast<std::uint64_t>(b)) & 0xff);
    crc = (crc << 8) ^ t[idx];
  }
  return ~crc;
}

}  // namespace eccheck
