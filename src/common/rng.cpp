#include "common/rng.hpp"

#include <cstring>

namespace eccheck {

void fill_random(MutableByteSpan dst, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::size_t i = 0;
  auto* d = reinterpret_cast<unsigned char*>(dst.data());
  for (; i + 8 <= dst.size(); i += 8) {
    std::uint64_t v = rng.next();
    std::memcpy(d + i, &v, 8);
  }
  if (i < dst.size()) {
    std::uint64_t v = rng.next();
    std::memcpy(d + i, &v, dst.size() - i);
  }
}

}  // namespace eccheck
