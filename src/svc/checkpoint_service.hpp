// Checkpoint service: a coordinator daemon fronting k+m worker daemons.
//
// This is the deployment shape of the engine-over-Fabric port: every worker
// process owns one SocketTransport rank and runs the collective
// save/load protocol (core/fabric_engine) when told to; the coordinator
// owns the client-facing endpoint, admits requests through a FIFO queue,
// and fans each job command out to all workers — a collective only makes
// progress once every rank has joined it, so the fan-out doubles as the
// barrier that starts it.
//
// Control channel: one kRequest/kResponse exchange per connection, using
// the same 40-byte CRC64 frame header and CRC-echo ack as the data fabric
// (net/frame.hpp). The key carries the command, the payload the arguments;
// the response's aux is a status code (0 = ok) and the payload the body.
//
// Failure model: a worker SIGKILLed mid-save makes the surviving workers'
// collective fail fast (CheckFailure inside their io_timeout);
// FabricSession rolls the torn version back on each survivor, the worker
// daemon survives and reports the error, and the coordinator resets every
// fabric connection before the next collective so survivors drop
// half-delivered frames. A replacement worker started on the dead rank's
// endpoints recovers the job state from the erasure-coded remainder on the
// next `load`.
//
// Shard payloads are synthesized deterministically from (job, iteration)
// on the worker side, so any client — including the multi-process demo and
// the differential tests — can recompute the expected digests without
// shipping tensor bytes over the control channel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/stats.hpp"

namespace eccheck::svc {

// ---------------------------------------------------------------------------
// Control-channel framing (shared by client, coordinator, and workers).
// ---------------------------------------------------------------------------

struct ControlFrame {
  net::FrameHeader header;
  Buffer payload;
};

/// Send one acknowledged control frame: header+key+payload out, CRC-echo
/// ack back. Unlike the fabric's pooled data path this works on any
/// connected socket. While the global tracer is enabled and the calling
/// thread carries a trace context, the frame is stamped with it
/// (net::WireTraceContext), so a request's causal chain crosses the
/// control channel exactly like the data fabric.
void send_control(const net::Socket& s, net::FrameType type,
                  const std::string& key, std::uint32_t aux, ByteSpan payload,
                  net::Millis io_timeout, const std::string& ctx);

/// Receive one control frame of the expected type, verify its CRC and ack
/// it. A stamped trace context lands in the returned header's `trace`
/// field (the server adopts it around handling). Throws CheckFailure on
/// timeout, EOF, or protocol desync.
ControlFrame recv_control(const net::Socket& s, net::FrameType expect,
                          net::Millis io_timeout, const std::string& ctx);

struct ControlReply {
  bool ok = false;       ///< response status was 0
  std::string body;      ///< response payload (error text when !ok)
  double rtt_ms = 0;     ///< request→response wall time (client side)
};

/// One request/response exchange over a fresh connection to `server`.
/// Connect-level failures (server dead, never came up) surface as
/// CheckFailure; an error *response* comes back as {ok=false, body}.
ControlReply client_request(const net::Endpoint& server,
                            const std::string& command,
                            const std::string& args,
                            const net::TransportOptions& opts);

// ---------------------------------------------------------------------------
// Deterministic job content.
// ---------------------------------------------------------------------------

/// The synthetic model snapshot for (job, iteration) across `world`
/// workers: seeded by crc64(job) ^ iteration, so every process — worker,
/// demo parent, test — derives identical tensor bytes independently.
dnn::CheckpointGenConfig job_gen_config(const std::string& job,
                                        std::int64_t iteration, int world);

// ---------------------------------------------------------------------------
// Worker daemon: one process, one fabric rank.
// ---------------------------------------------------------------------------

struct WorkerDaemonConfig {
  int rank = 0;
  std::vector<net::Endpoint> fabric_eps;  ///< data-plane endpoints, all ranks
  net::Endpoint control_ep;               ///< this worker's command socket
  net::TransportOptions fabric_opts;
  core::ECCheckConfig ec;                 ///< k+m must equal fabric_eps.size()
  int gpus_per_node = 1;                  ///< shards driven per worker
  int retain_versions = 2;
};

/// Single-threaded command server wrapping a SocketTransport rank and a
/// FabricSession per job (namespace `<job>/` keeps jobs collision-free in
/// every store, including the shared remote directory).
///
/// Commands: `ping`, `save <job> <iteration>`, `load <job>`, `reset`,
/// `status`, `clock` (tracer nanoseconds, for ping-pong offset
/// estimation), `obs [stats]` (obs::serialize_snapshot of this process —
/// tracer buffers + fabric stats; `obs stats` returns the stats object
/// alone), `exit`. A failed collective save leaves the daemon alive:
/// FabricSession already rolled back the torn version, the error travels
/// back in the response, and the next `reset` re-arms the fabric.
class WorkerDaemon {
 public:
  explicit WorkerDaemon(WorkerDaemonConfig cfg);

  /// Serve commands until `exit` arrives. Accept waits are bounded so a
  /// wedged client cannot hang the daemon forever.
  void run();

  net::SocketTransport& fabric() { return fabric_; }

 private:
  std::string handle(const std::string& command, const std::string& args,
                     std::uint32_t& status);
  std::string do_save(const std::string& job, std::int64_t iteration);
  std::string do_load(const std::string& job);
  core::FabricSession& session_for(const std::string& job);

  WorkerDaemonConfig cfg_;
  net::SocketTransport fabric_;
  net::Socket control_listener_;
  std::map<std::string, core::FabricSession> sessions_;
  std::uint64_t saves_ok_ = 0;
  std::uint64_t saves_failed_ = 0;
  std::uint64_t loads_ok_ = 0;
};

// ---------------------------------------------------------------------------
// Coordinator daemon: client endpoint + admission queue + worker fan-out.
// ---------------------------------------------------------------------------

struct CoordinatorConfig {
  net::Endpoint client_ep;                 ///< where clients connect
  std::vector<net::Endpoint> worker_eps;   ///< workers' control endpoints
  net::TransportOptions opts;              ///< io_timeout must exceed the
                                           ///< workers' fabric io_timeout —
                                           ///< a save response only arrives
                                           ///< after the collective resolves
};

/// Serializes client requests through a FIFO admission queue (connections
/// accepted while a job is running wait their turn; depth is tracked for
/// `status`) and fans each job command out to every worker concurrently.
///
/// Client commands: `save <job>`, `load <job>`, `status`, `reset`,
/// `health [job]` (JSON: queue/served/in-flight state, per-worker
/// liveness with ping RTTs, per-job versions + save/load latency
/// histograms), `stats` (aggregated fleet StatsRegistry JSON: per-worker
/// snapshots plus their merged sum), `trace` (merged, clock-aligned
/// Chrome trace of the coordinator + every reachable worker; offsets
/// estimated by ping-pong midpoint against each worker's `clock` verb),
/// `shutdown`. The coordinator assigns iteration numbers per job, so
/// concurrent clients saving the same job get distinct, ordered snapshots.
/// After any failed fan-out — and before every `load` — it resets all
/// fabric connections on every reachable worker, the synchronized point
/// that lets survivors of an aborted collective reconnect cleanly.
///
/// Each `save`/`load` opens a fresh distributed trace (when the global
/// tracer is enabled) whose root span covers the whole fan-out, so one
/// client request shows up as one causally-linked tree across the
/// coordinator, the workers, and the fabric collectives between them.
class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig cfg);

  /// Serve until `shutdown` (which also sends `exit` to every worker).
  void run();

 private:
  struct Pending {
    net::Socket conn;
  };
  /// Health-endpoint state per job, fed by every save/load fan-out.
  struct JobStats {
    std::int64_t last_version = -1;
    std::int64_t iterations = 0;
    std::uint64_t saves_ok = 0;
    std::uint64_t saves_failed = 0;
    std::uint64_t loads_ok = 0;
    std::uint64_t loads_failed = 0;
    obs::HistSummary save_latency_s;
    obs::HistSummary load_latency_s;
    std::string last_error;
  };

  /// Accept every connection currently waiting (bounded, non-blocking-ish)
  /// into the admission queue; returns true if the queue is non-empty.
  bool admit(net::Millis wait);
  std::string handle(const std::string& command, const std::string& args,
                     std::uint32_t& status);
  /// Run `command args` on every worker concurrently; entry i is worker
  /// i's reply (connect failures become {ok=false, body=<error>}). The
  /// caller's trace context propagates into every fan-out thread.
  std::vector<ControlReply> fan_out(const std::string& command,
                                    const std::string& args);
  void reset_workers();
  std::string health_json(const std::string& job_filter);
  std::string merged_trace_json();
  std::string aggregated_stats_json();
  /// Ping-pong offset of worker i's tracer clock vs ours (see
  /// obs::estimate_clock_offset_ns); ok=false when the worker is dead.
  bool clock_offset_ns(std::size_t i, std::int64_t* offset);

  CoordinatorConfig cfg_;
  net::Socket listener_;
  std::vector<Pending> queue_;
  std::map<std::string, std::int64_t> iterations_;
  /// job → version → iteration, so `load` replies can name the iteration
  /// whose synthetic content the recovered version must equal.
  std::map<std::string, std::map<std::int64_t, std::int64_t>> history_;
  std::map<std::string, JobStats> job_stats_;
  std::uint64_t served_ = 0;
  std::size_t max_depth_ = 0;
  int in_flight_ = 0;  ///< fan-outs currently executing
  bool stop_ = false;
};

}  // namespace eccheck::svc
