// Checkpoint service: a coordinator daemon fronting k+m worker daemons.
//
// This is the deployment shape of the engine-over-Fabric port: every worker
// process owns one SocketTransport rank and runs the collective
// save/load protocol (core/fabric_engine) when told to; the coordinator
// owns the client-facing endpoint, admits requests through a FIFO queue,
// and fans each job command out to all workers — a collective only makes
// progress once every rank has joined it, so the fan-out doubles as the
// barrier that starts it.
//
// Control channel: one kRequest/kResponse exchange per connection, using
// the same 40-byte CRC64 frame header and CRC-echo ack as the data fabric
// (net/frame.hpp). The key carries the command, the payload the arguments;
// the response's aux is a status code (0 = ok) and the payload the body.
//
// Failure model: a worker SIGKILLed mid-save makes the surviving workers'
// collective fail fast (CheckFailure inside their io_timeout);
// FabricSession rolls the torn version back on each survivor, the worker
// daemon survives and reports the error, and the coordinator resets every
// fabric connection before the next collective so survivors drop
// half-delivered frames. A replacement worker started on the dead rank's
// endpoints recovers the job state from the erasure-coded remainder on the
// next `load`.
//
// Shard payloads are synthesized deterministically from (job, iteration)
// on the worker side, so any client — including the multi-process demo and
// the differential tests — can recompute the expected digests without
// shipping tensor bytes over the control channel.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/failure_detector.hpp"
#include "cluster/faulty_fabric.hpp"
#include "core/session.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/stats.hpp"

namespace eccheck::svc {

// ---------------------------------------------------------------------------
// Control-channel framing (shared by client, coordinator, and workers).
// ---------------------------------------------------------------------------

struct ControlFrame {
  net::FrameHeader header;
  Buffer payload;
};

/// Send one acknowledged control frame: header+key+payload out, CRC-echo
/// ack back. Unlike the fabric's pooled data path this works on any
/// connected socket. While the global tracer is enabled and the calling
/// thread carries a trace context, the frame is stamped with it
/// (net::WireTraceContext), so a request's causal chain crosses the
/// control channel exactly like the data fabric.
void send_control(const net::Socket& s, net::FrameType type,
                  const std::string& key, std::uint32_t aux, ByteSpan payload,
                  net::Millis io_timeout, const std::string& ctx);

/// Receive one control frame of the expected type, verify its CRC and ack
/// it. A stamped trace context lands in the returned header's `trace`
/// field (the server adopts it around handling). Throws CheckFailure on
/// timeout, EOF, or protocol desync.
ControlFrame recv_control(const net::Socket& s, net::FrameType expect,
                          net::Millis io_timeout, const std::string& ctx);

/// Response status codes carried in the control frame's aux field.
enum ControlStatus : std::uint32_t {
  kStatusOk = 0,
  kStatusError = 1,        ///< command failed; body holds the error text
  kStatusBusy = 2,         ///< admission queue full — back off and retry
  kStatusUnavailable = 3,  ///< more than m ranks dead; cannot serve
  kStatusBadRequest = 4,   ///< malformed wire argument (garbage/overflow int)
};

/// Malformed wire-supplied argument. Derives from CheckFailure so every
/// existing daemon-survival catch still contains it, but handlers that can
/// still reply catch it first and answer kStatusBadRequest.
class BadRequest : public CheckFailure {
 public:
  using CheckFailure::CheckFailure;
};

/// Checked integer parsing for wire-supplied tokens (control-frame args,
/// digest report lines): the whole token must be a decimal integer within
/// [min, max]. Throws BadRequest naming `what` and the offending token on
/// garbage, trailing junk, overflow, or empty input — never the foreign
/// std::invalid_argument / std::out_of_range that raw std::stoi leaks
/// across the protocol boundary.
std::int64_t parse_wire_int(const std::string& tok, const char* what,
                            std::int64_t min, std::int64_t max);
std::uint64_t parse_wire_u64(const std::string& tok, const char* what);

/// Checked double parsing (fault-injection probabilities), same contract.
double parse_wire_double(const std::string& tok, const char* what);

struct ControlReply {
  bool ok = false;            ///< response status was kStatusOk
  std::string body;           ///< response payload (error text when !ok)
  double rtt_ms = 0;          ///< request→response wall time (client side)
  std::uint32_t status = 0;   ///< raw ControlStatus from the response aux
  bool skipped = false;       ///< fan-out skipped this worker (not a member)
};

/// One request/response exchange over a fresh connection to `server`.
/// Connect-level failures (server dead, never came up) surface as
/// CheckFailure; an error *response* comes back as {ok=false, body}.
ControlReply client_request(const net::Endpoint& server,
                            const std::string& command,
                            const std::string& args,
                            const net::TransportOptions& opts);

// ---------------------------------------------------------------------------
// Deterministic job content.
// ---------------------------------------------------------------------------

/// The synthetic model snapshot for (job, iteration) across `world`
/// workers: seeded by crc64(job) ^ iteration, so every process — worker,
/// demo parent, test — derives identical tensor bytes independently.
dnn::CheckpointGenConfig job_gen_config(const std::string& job,
                                        std::int64_t iteration, int world);

// ---------------------------------------------------------------------------
// Worker daemon: one process, one fabric rank.
// ---------------------------------------------------------------------------

struct WorkerDaemonConfig {
  int rank = 0;
  std::vector<net::Endpoint> fabric_eps;  ///< data-plane endpoints, all ranks
  net::Endpoint control_ep;               ///< this worker's command socket
  net::TransportOptions fabric_opts;
  core::ECCheckConfig ec;                 ///< k+m must equal fabric_eps.size()
  int gpus_per_node = 1;                  ///< shards driven per worker
  int retain_versions = 2;
  /// Coordinator's liveness endpoint. When set, the daemon announces
  /// itself with `join <rank>` at startup and then heartbeats
  /// `beat <rank> <epoch>` every fabric_opts.heartbeat_period from a
  /// background thread; a `fenced` reply (this rank was declared dead and
  /// superseded) makes the daemon exit. Unset = legacy standalone mode,
  /// no liveness traffic at all.
  std::optional<net::Endpoint> coordinator_ep;
  /// Seeded frame-level fault injection on the data fabric (chaos runs);
  /// inactive by default. Runtime-adjustable via the `inject` verb.
  cluster::FaultSpec faults;
};

/// Single-threaded command server wrapping a SocketTransport rank and a
/// FabricSession per job (namespace `<job>/` keeps jobs collision-free in
/// every store, including the shared remote directory).
///
/// Commands: `ping`, `save <job> <iteration> [epoch=E] [alive=i,j,..]`,
/// `load <job> [epoch=E] [alive=..]`, `reset [epoch=E]`, `status`,
/// `clock` (tracer nanoseconds, for ping-pong offset estimation),
/// `obs [stats]` (obs::serialize_snapshot of this process — tracer
/// buffers + fabric stats; `obs stats` returns the stats object alone),
/// `freeze <ms>` (stop serving AND heartbeating for ms — a deterministic
/// gray failure), `inject corrupt | drop <p> | delay <p> <ms> | off`
/// (arm data-plane faults), `exit`. A failed collective save leaves the
/// daemon alive: FabricSession already rolled back the torn version, the
/// error travels back in the response, and the next `reset` re-arms the
/// fabric.
///
/// Epoch fencing: `epoch=E` on save/load must match the worker's current
/// epoch (adopted monotonically from join replies and `reset epoch=`),
/// otherwise the command is refused with a `fenced:` error — a stale
/// resurrected worker can never participate in a collective again. The
/// same epoch rides in the fabric's connection hellos, so even raw data
/// frames from a fenced process are rejected at accept time.
///
/// Degraded mode: `alive=i,j,..` installs a core::Membership before the
/// collective; this worker then also synthesizes and carries the shards
/// of any dead ranks it adopts (FabricSession::driven_workers).
class WorkerDaemon {
 public:
  explicit WorkerDaemon(WorkerDaemonConfig cfg);
  ~WorkerDaemon();

  /// Serve commands until `exit` arrives or this rank is fenced. Accept
  /// waits are bounded so a wedged client cannot hang the daemon forever.
  void run();

  net::SocketTransport& fabric() { return fabric_; }
  std::uint64_t epoch() const { return epoch_.load(); }

 private:
  std::string handle(const std::string& command, const std::string& args,
                     std::uint32_t& status);
  std::string do_save(const std::string& job, std::int64_t iteration,
                      const core::Membership& members);
  std::string do_load(const std::string& job,
                      const core::Membership& members);
  core::FabricSession& session_for(const std::string& job);
  /// Refuses commands carrying a stale epoch (throws CheckFailure) and
  /// adopts a newer one; also installs the command's membership view.
  core::Membership apply_epoch_and_members(
      const std::map<std::string, std::string>& kv);
  void join_cluster();
  void beat_loop();
  void stop_beats();

  WorkerDaemonConfig cfg_;
  net::SocketTransport fabric_;
  cluster::FaultyFabric faulty_;  ///< sessions run through this decorator
  net::Socket control_listener_;
  std::map<std::string, core::FabricSession> sessions_;
  std::uint64_t saves_ok_ = 0;
  std::uint64_t saves_failed_ = 0;
  std::uint64_t loads_ok_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> fenced_{false};
  std::atomic<bool> beat_stop_{false};
  std::atomic<std::int64_t> frozen_until_ns_{0};  ///< steady_clock deadline
  int freeze_pending_ms_ = 0;  ///< applied after the freeze reply is sent
  std::thread beat_thread_;
};

// ---------------------------------------------------------------------------
// Coordinator daemon: client endpoint + admission queue + worker fan-out.
// ---------------------------------------------------------------------------

struct CoordinatorConfig {
  net::Endpoint client_ep;                 ///< where clients connect
  std::vector<net::Endpoint> worker_eps;   ///< workers' control endpoints
  net::TransportOptions opts;              ///< io_timeout must exceed the
                                           ///< workers' fabric io_timeout —
                                           ///< a save response only arrives
                                           ///< after the collective resolves
  /// Heartbeat/join listener. When set, the coordinator runs the full
  /// self-healing loop: wall-clock failure detection over worker beats,
  /// dead-vs-gray probing, epoch-fenced repair on join, and degraded-mode
  /// serving while ≤ m ranks are dead. Unset = legacy fixed-membership
  /// behavior (every fan-out targets all workers).
  std::optional<net::Endpoint> liveness_ep;
  /// Admission bound: connections beyond this many queued requests are
  /// answered kStatusBusy immediately instead of waiting unbounded.
  std::size_t max_queue = 64;
  /// ec.m — how many dead ranks degraded serving can tolerate. Only used
  /// when liveness_ep is set (must then match the workers' config).
  int parity_m = 0;
  int data_k = 0;  ///< ec.k, for redundancy reporting in `health`
};

/// Serializes client requests through a FIFO admission queue (connections
/// accepted while a job is running wait their turn; depth is tracked for
/// `status`) and fans each job command out to every worker concurrently.
///
/// Client commands: `save <job>`, `load <job>`, `status`, `reset`,
/// `health [job]` (JSON: queue/served/in-flight state, per-worker
/// liveness with ping RTTs, per-job versions + save/load latency
/// histograms), `stats` (aggregated fleet StatsRegistry JSON: per-worker
/// snapshots plus their merged sum), `trace` (merged, clock-aligned
/// Chrome trace of the coordinator + every reachable worker; offsets
/// estimated by ping-pong midpoint against each worker's `clock` verb),
/// `shutdown`. The coordinator assigns iteration numbers per job, so
/// concurrent clients saving the same job get distinct, ordered snapshots.
/// After any failed fan-out — and before every `load` — it resets all
/// fabric connections on every reachable worker, the synchronized point
/// that lets survivors of an aborted collective reconnect cleanly.
///
/// Each `save`/`load` opens a fresh distributed trace (when the global
/// tracer is enabled) whose root span covers the whole fan-out, so one
/// client request shows up as one causally-linked tree across the
/// coordinator, the workers, and the fabric collectives between them.
///
/// Self-healing (liveness_ep set): a background thread answers worker
/// heartbeats and join requests; the main loop's tick() advances the
/// failure detector between requests. A worker whose beats stop is
/// suspected after heartbeat_timeout, then probed — connection refused is
/// hard death (process gone), probe timeouts accumulate until
/// suspect_probes consecutive failures declare a gray worker dead. Every
/// death bumps the cluster epoch and resets the survivors onto it, so
/// the corpse — should it resurrect — is fenced at both the control and
/// data planes. While dead ≤ m, save/load serve degraded (alive-only
/// membership, reduced redundancy); beyond m they fail fast with
/// kStatusUnavailable. A `join` for a dead rank runs the repair
/// controller: bump epoch, reset survivors + joiner, recover every known
/// job via the erasure-coded remainder (which rebuilds the replacement's
/// rows in place — full m-redundancy without restarting survivors), then
/// mark the rank alive.
class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig cfg);
  ~Coordinator();

  /// Serve until `shutdown` (which also sends `exit` to every worker).
  void run();

 private:
  struct Pending {
    net::Socket conn;
  };
  /// Health-endpoint state per job, fed by every save/load fan-out.
  struct JobStats {
    std::int64_t last_version = -1;
    std::int64_t iterations = 0;
    std::uint64_t saves_ok = 0;
    std::uint64_t saves_failed = 0;
    std::uint64_t loads_ok = 0;
    std::uint64_t loads_failed = 0;
    obs::HistSummary save_latency_s;
    obs::HistSummary load_latency_s;
    std::string last_error;
  };

  /// Accept every connection currently waiting (bounded, non-blocking-ish)
  /// into the admission queue, answering kStatusBusy past max_queue;
  /// returns true if the queue is non-empty.
  bool admit(net::Millis wait);
  std::string handle(const std::string& command, const std::string& args,
                     std::uint32_t& status);
  /// Run `command args` on every worker in `targets` concurrently
  /// (empty = all); the returned vector always has one entry per worker,
  /// with non-targets marked `skipped`. Connect failures become
  /// {ok=false, body=<error>}. The caller's trace context propagates into
  /// every fan-out thread.
  std::vector<ControlReply> fan_out(const std::string& command,
                                    const std::string& args,
                                    const std::vector<int>& targets = {});
  void reset_workers(const std::vector<int>& targets = {});
  std::string health_json(const std::string& job_filter);
  std::string merged_trace_json();
  std::string aggregated_stats_json();
  /// Ping-pong offset of worker i's tracer clock vs ours (see
  /// obs::estimate_clock_offset_ns); ok=false when the worker is dead.
  bool clock_offset_ns(std::size_t i, std::int64_t* offset);

  // ---- self-healing (all no-ops when liveness_ep is unset) ---------------
  /// Answers beats inline (under live_mu_) and queues join/rejoin for the
  /// main loop; runs on liveness_thread_.
  void liveness_loop();
  /// Advance failure detection + the repair controller; called from the
  /// main loop between requests.
  void tick();
  /// Declare `rank` dead: count it, bump the epoch, re-fence survivors.
  void declare_dead(const std::vector<int>& ranks);
  /// Repair controller for pending joins (replacement or rejoin).
  void process_joins();
  /// Ranks currently kAlive, ascending. Empty tracker = everyone.
  std::vector<int> alive_targets();
  /// "epoch=E alive=i,j,.." suffix for degraded fan-outs ("" when full
  /// membership and liveness is off).
  std::string membership_args(const std::vector<int>& targets);

  CoordinatorConfig cfg_;
  net::Socket listener_;
  std::vector<Pending> queue_;
  std::map<std::string, std::int64_t> iterations_;
  /// job → version → iteration, so `load` replies can name the iteration
  /// whose synthetic content the recovered version must equal.
  std::map<std::string, std::map<std::int64_t, std::int64_t>> history_;
  std::map<std::string, JobStats> job_stats_;
  std::uint64_t served_ = 0;
  std::size_t max_depth_ = 0;
  int in_flight_ = 0;  ///< fan-outs currently executing
  bool stop_ = false;

  // Guarded by live_mu_: tracker_, epoch_, pending_joins_, liveness
  // counters. The liveness thread only ever takes this mutex briefly (one
  // beat or join enqueue), so the main loop never stalls on it.
  mutable std::mutex live_mu_;
  std::optional<cluster::LivenessTracker> tracker_;
  std::uint64_t epoch_ = 0;  ///< cluster epoch; starts at 1 with liveness
  std::vector<int> pending_joins_;
  /// Ranks with a join accepted but not yet admitted (queued or mid-repair).
  /// Their beats are exempt from corpse fencing: the beat is the new
  /// incarnation announcing itself, not a resurrected corpse. Erased only
  /// when the rank is marked alive.
  std::set<int> admitting_;
  std::uint64_t rejected_ = 0;   ///< admissions answered kStatusBusy
  std::uint64_t deaths_ = 0;     ///< ranks declared dead
  std::uint64_t repairs_ = 0;    ///< successful replacement/rejoin repairs
  std::uint64_t fenced_beats_ = 0;
  std::uint64_t degraded_ops_ = 0;  ///< save/load served with dead ranks
  net::Socket liveness_listener_;
  std::thread liveness_thread_;
  std::atomic<bool> liveness_stop_{false};
  /// Idempotency cache: "<job>\n<verb>\n<token>" → {status, body}. A
  /// retried request (client timed out, command committed anyway) replays
  /// the recorded outcome instead of committing a second version.
  std::map<std::string, std::pair<std::uint32_t, std::string>> idem_;
  std::deque<std::string> idem_order_;  ///< FIFO eviction, bounded
};

}  // namespace eccheck::svc
