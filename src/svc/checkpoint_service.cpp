#include "svc/checkpoint_service.hpp"

#include <poll.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <limits>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "common/crc64.hpp"
#include "core/fabric_engine.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/distributed.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"

namespace eccheck::svc {
namespace {

ByteSpan span_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string string_of(const Buffer& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

/// True when the listener has a connection waiting within `wait`.
bool listener_readable(const net::Socket& listener, net::Millis wait) {
  pollfd p{listener.fd(), POLLIN, 0};
  return ::poll(&p, 1, static_cast<int>(wait.count())) > 0 &&
         (p.revents & POLLIN) != 0;
}

/// Command arguments: positional tokens followed by (or interleaved with)
/// key=value pairs — "job 3 epoch=2 alive=0,1,3".
struct ParsedArgs {
  std::vector<std::string> pos;
  std::map<std::string, std::string> kv;
};

ParsedArgs parse_args(const std::string& args) {
  ParsedArgs p;
  std::istringstream is(args);
  std::string tok;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq != std::string::npos && eq > 0)
      p.kv[tok.substr(0, eq)] = tok.substr(eq + 1);
    else
      p.pos.push_back(tok);
  }
  return p;
}

core::Membership members_from_csv(const std::string& csv) {
  std::vector<int> alive;
  std::istringstream is(csv);
  std::string part;
  while (std::getline(is, part, ','))
    if (!part.empty())
      alive.push_back(static_cast<int>(parse_wire_int(
          part, "alive rank", 0, std::numeric_limits<int>::max())));
  return core::Membership::of(std::move(alive));
}

std::string csv_of(const std::vector<int>& ranks) {
  std::string out;
  for (int r : ranks) out += (out.empty() ? "" : ",") + std::to_string(r);
  return out;
}

std::uint64_t parse_u64(const std::map<std::string, std::string>& kv,
                        const std::string& key) {
  const auto it = kv.find(key);
  return it == kv.end() ? 0 : parse_wire_u64(it->second, key.c_str());
}

}  // namespace

std::int64_t parse_wire_int(const std::string& tok, const char* what,
                            std::int64_t min, std::int64_t max) {
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec == std::errc::result_out_of_range ||
      (ec == std::errc() && ptr == tok.data() + tok.size() &&
       (v < min || v > max)))
    throw BadRequest("bad " + std::string(what) + " '" + tok +
                     "' (out of range)");
  if (ec != std::errc() || ptr != tok.data() + tok.size())
    throw BadRequest("bad " + std::string(what) + " '" + tok + "'");
  return v;
}

std::uint64_t parse_wire_u64(const std::string& tok, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || ptr != tok.data() + tok.size())
    throw BadRequest("bad " + std::string(what) + " '" + tok + "'" +
                     (ec == std::errc::result_out_of_range ? " (out of range)"
                                                           : ""));
  return v;
}

double parse_wire_double(const std::string& tok, const char* what) {
  double v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || ptr != tok.data() + tok.size() ||
      !std::isfinite(v))
    throw BadRequest("bad " + std::string(what) + " '" + tok + "'");
  return v;
}

// ---------------------------------------------------------------------------
// Control framing.
// ---------------------------------------------------------------------------

void send_control(const net::Socket& s, net::FrameType type,
                  const std::string& key, std::uint32_t aux, ByteSpan payload,
                  net::Millis io_timeout, const std::string& ctx) {
  net::FrameHeader h;
  h.type = type;
  h.src_rank = 0;
  h.aux = aux;
  h.key = key;
  h.payload_len = payload.size();
  h.payload_crc = crc64(payload);
  if (obs::Tracer::global().enabled()) {
    const obs::TraceContext tc = obs::current_trace_context();
    if (tc.trace_id != 0) {
      h.trace.trace_id = tc.trace_id;
      h.trace.parent_span = tc.span_id;
      h.trace.op = static_cast<std::uint32_t>(type);
    }
  }
  const std::size_t trace_bytes =
      h.trace.trace_id != 0 ? net::kTraceContextBytes : 0;

  std::vector<std::uint8_t> head(net::kFrameHeaderBytes + trace_bytes +
                                 key.size());
  net::encode_frame_header(h, head.data());
  if (trace_bytes > 0)
    net::encode_trace_context(h.trace, head.data() + net::kFrameHeaderBytes);
  std::memcpy(head.data() + net::kFrameHeaderBytes + trace_bytes, key.data(),
              key.size());
  net::write_full(s, head.data(), head.size(), io_timeout, ctx);
  if (!payload.empty())
    net::write_full(s, payload.data(), payload.size(), io_timeout, ctx);

  // Same end-to-end contract as the data fabric: the receiver acks with the
  // payload CRC after verifying it.
  std::uint8_t ack_hdr[net::kFrameHeaderBytes];
  net::read_full(s, ack_hdr, sizeof(ack_hdr), io_timeout, ctx);
  std::uint32_t ack_key_len = 0;
  bool ack_trace = false;
  net::FrameHeader ack =
      net::decode_frame_header(ack_hdr, &ack_key_len, &ack_trace);
  ECC_CHECK_MSG(ack.type == net::FrameType::kAck && ack_key_len == 0 &&
                    !ack_trace,
                ctx << ": expected ack, got "
                    << net::frame_type_name(ack.type));
  ECC_CHECK_MSG(ack.payload_crc == h.payload_crc,
                ctx << ": ack CRC mismatch — payload corrupted in flight");
}

ControlFrame recv_control(const net::Socket& s, net::FrameType expect,
                          net::Millis io_timeout, const std::string& ctx) {
  std::uint8_t hdr[net::kFrameHeaderBytes];
  net::read_full(s, hdr, sizeof(hdr), io_timeout, ctx);
  std::uint32_t key_len = 0;
  bool has_trace = false;
  ControlFrame r;
  r.header = net::decode_frame_header(hdr, &key_len, &has_trace);
  if (has_trace) {
    std::uint8_t tbuf[net::kTraceContextBytes];
    net::read_full(s, tbuf, sizeof(tbuf), io_timeout, ctx);
    r.header.trace = net::decode_trace_context(tbuf);
  }
  ECC_CHECK_MSG(r.header.type == expect,
                ctx << ": got " << net::frame_type_name(r.header.type)
                    << ", expected " << net::frame_type_name(expect));
  if (key_len > 0) {
    r.header.key.resize(key_len);
    net::read_full(s, r.header.key.data(), key_len, io_timeout, ctx);
  }
  r.payload = Buffer(r.header.payload_len, Buffer::Init::kUninitialized);
  if (!r.payload.empty())
    net::read_full(s, r.payload.data(), r.payload.size(), io_timeout, ctx);
  ECC_CHECK_MSG(crc64(r.payload.span()) == r.header.payload_crc,
                ctx << ": payload CRC mismatch — wire corruption");

  net::FrameHeader ack;
  ack.type = net::FrameType::kAck;
  ack.src_rank = 0;
  ack.payload_crc = r.header.payload_crc;
  std::uint8_t ack_hdr[net::kFrameHeaderBytes];
  net::encode_frame_header(ack, ack_hdr);
  net::write_full(s, ack_hdr, sizeof(ack_hdr), io_timeout, ctx);
  return r;
}

ControlReply client_request(const net::Endpoint& server,
                            const std::string& command,
                            const std::string& args,
                            const net::TransportOptions& opts) {
  const std::string ctx = "client request '" + command + "' to " +
                          server.to_string();
  obs::ScopedSpan span("svc.request:" + command);
  const auto t0 = std::chrono::steady_clock::now();
  net::Socket s = net::connect_with_retry(server, opts.connect_timeout,
                                          opts.connect_retries,
                                          opts.backoff_base, opts.backoff_max,
                                          ctx);
  net::set_tcp_nodelay(s, opts.tcp_nodelay);
  send_control(s, net::FrameType::kRequest, command, 0, span_of(args),
               opts.io_timeout, ctx);
  ControlFrame resp = recv_control(s, net::FrameType::kResponse,
                                   opts.io_timeout, ctx);
  const double rtt_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return {resp.header.aux == 0, string_of(resp.payload), rtt_ms,
          resp.header.aux, false};
}

// ---------------------------------------------------------------------------
// Deterministic job content.
// ---------------------------------------------------------------------------

dnn::CheckpointGenConfig job_gen_config(const std::string& job,
                                        std::int64_t iteration, int world) {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kGPT2, 96, 2, 6, "svc");
  cfg.model.vocab = 384;
  cfg.parallelism = world % 2 == 0
                        ? dnn::ParallelismSpec{2, world / 2, 1}
                        : dnn::ParallelismSpec{1, world, 1};
  cfg.seed = crc64(span_of(job)) ^ static_cast<std::uint64_t>(iteration);
  cfg.iteration = iteration;
  return cfg;
}

// ---------------------------------------------------------------------------
// WorkerDaemon.
// ---------------------------------------------------------------------------

WorkerDaemon::WorkerDaemon(WorkerDaemonConfig cfg)
    : cfg_(std::move(cfg)),
      fabric_(cfg_.rank, cfg_.fabric_eps, cfg_.fabric_opts),
      faulty_(fabric_, cfg_.faults, [this] { fabric_.corrupt_next_frame(); }),
      control_listener_(net::listen_on(cfg_.control_ep)) {
  ECC_CHECK_MSG(cfg_.ec.k + cfg_.ec.m == fabric_.world_size(),
                "worker daemon: k+m=" << cfg_.ec.k + cfg_.ec.m
                                      << " != world size "
                                      << fabric_.world_size());
}

WorkerDaemon::~WorkerDaemon() { stop_beats(); }

void WorkerDaemon::stop_beats() {
  beat_stop_.store(true);
  if (beat_thread_.joinable()) beat_thread_.join();
}

void WorkerDaemon::join_cluster() {
  if (!cfg_.coordinator_ep) return;
  // Generous connect retry: at startup the coordinator may not be up yet.
  const ControlReply r =
      client_request(*cfg_.coordinator_ep, "join", std::to_string(cfg_.rank),
                     cfg_.fabric_opts);
  ECC_CHECK_MSG(r.ok, "join rejected: " << r.body);
  const ParsedArgs pa = parse_args(r.body);
  const std::uint64_t epoch = parse_u64(pa.kv, "epoch");
  epoch_.store(epoch);
  fabric_.set_epoch(epoch);
  beat_thread_ = std::thread([this] { beat_loop(); });
}

void WorkerDaemon::beat_loop() {
  // Tight per-beat budgets: a beat that cannot land within roughly one
  // period is dropped — the next one carries the same information.
  net::TransportOptions opts = cfg_.fabric_opts;
  opts.connect_timeout = opts.heartbeat_period;
  opts.connect_retries = 0;
  opts.io_timeout = net::Millis(opts.heartbeat_period.count() * 4);
  while (!beat_stop_.load()) {
    std::this_thread::sleep_for(cfg_.fabric_opts.heartbeat_period);
    if (beat_stop_.load()) return;
    const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    if (now_ns < frozen_until_ns_.load()) continue;  // gray: silent
    try {
      const ControlReply r = client_request(
          *cfg_.coordinator_ep, "beat",
          std::to_string(cfg_.rank) + " epoch=" + std::to_string(epoch_.load()),
          opts);
      if (!r.ok && r.body.rfind("fenced", 0) == 0) {
        // This rank was declared dead and superseded; stop competing.
        fenced_.store(true);
        return;
      }
    } catch (const CheckFailure&) {
      // Coordinator briefly unreachable — keep beating; it judges us by
      // wall-clock silence, not individual failures.
    }
  }
}

core::FabricSession& WorkerDaemon::session_for(const std::string& job) {
  auto it = sessions_.find(job);
  if (it != sessions_.end()) return it->second;
  core::ECCheckConfig jcfg = cfg_.ec;
  jcfg.key_namespace = job + "/";
  return sessions_
      .try_emplace(job, faulty_, jcfg, cfg_.gpus_per_node,
                   cfg_.retain_versions)
      .first->second;
}

core::Membership WorkerDaemon::apply_epoch_and_members(
    const std::map<std::string, std::string>& kv) {
  const std::uint64_t cmd_epoch = parse_u64(kv, "epoch");
  const std::uint64_t mine = epoch_.load();
  if (cmd_epoch != 0 && mine != 0) {
    ECC_CHECK_MSG(cmd_epoch >= mine,
                  "fenced: command epoch " << cmd_epoch
                                           << " is stale (rank at " << mine
                                           << ")");
    if (cmd_epoch > mine) {
      epoch_.store(cmd_epoch);
      fabric_.set_epoch(cmd_epoch);
    }
  }
  const auto it = kv.find("alive");
  return it == kv.end() ? core::Membership() : members_from_csv(it->second);
}

std::string WorkerDaemon::do_save(const std::string& job,
                                  std::int64_t iteration,
                                  const core::Membership& members) {
  core::FabricSession& session = session_for(job);
  session.set_membership(members);
  const int world = fabric_.world_size() * cfg_.gpus_per_node;
  const dnn::CheckpointGenConfig gen = job_gen_config(job, iteration, world);
  // Sited workers: under a degraded membership the adopter also carries the
  // dead ranks' shards, re-synthesized here — content is a pure function of
  // (job, iteration, worker), so adoption needs no data from the corpse.
  const std::vector<int> workers = session.driven_workers();

  std::vector<dnn::StateDict> mine;
  mine.reserve(workers.size());
  for (int w : workers) mine.push_back(dnn::make_worker_state_dict(gen, w));
  std::vector<const dnn::StateDict*> ptrs;
  ptrs.reserve(mine.size());
  for (const dnn::StateDict& sd : mine) ptrs.push_back(&sd);

  session.save(ptrs);
  ++saves_ok_;
  std::ostringstream os;
  os << "version=" << session.latest_version();
  for (std::size_t i = 0; i < workers.size(); ++i)
    os << " w" << workers[i] << ":" << hex16(mine[i].digest());
  return os.str();
}

std::string WorkerDaemon::do_load(const std::string& job,
                                  const core::Membership& members) {
  core::FabricSession& session = session_for(job);
  session.set_membership(members);
  std::vector<dnn::StateDict> out;
  const core::FabricSession::RecoverResult res = session.load(out);
  ++loads_ok_;
  const std::vector<int> workers = session.driven_workers();
  ECC_CHECK_MSG(out.size() == workers.size(),
                "load returned " << out.size() << " shards for "
                                 << workers.size() << " driven workers");
  std::ostringstream os;
  os << "version=" << res.version;
  for (std::size_t i = 0; i < workers.size(); ++i)
    os << " w" << workers[i] << ":" << hex16(out[i].digest());
  os << " ; " << res.report.detail;
  return os.str();
}

std::string WorkerDaemon::handle(const std::string& command,
                                 const std::string& args,
                                 std::uint32_t& status) {
  status = 0;
  try {
    if (command == "ping") {
      return "pong rank=" + std::to_string(cfg_.rank);
    }
    if (command == "save") {
      const ParsedArgs pa = parse_args(args);
      ECC_CHECK_MSG(pa.pos.size() == 2,
                    "save expects '<job> <iteration>', got '" << args << "'");
      const std::int64_t iteration =
          parse_wire_int(pa.pos[1], "save iteration", 1,
                         std::numeric_limits<std::int64_t>::max());
      const core::Membership members = apply_epoch_and_members(pa.kv);
      return do_save(pa.pos[0], iteration, members);
    }
    if (command == "load") {
      const ParsedArgs pa = parse_args(args);
      ECC_CHECK_MSG(pa.pos.size() == 1,
                    "load expects '<job>', got '" << args << "'");
      const core::Membership members = apply_epoch_and_members(pa.kv);
      return do_load(pa.pos[0], members);
    }
    if (command == "reset") {
      const ParsedArgs pa = parse_args(args);
      const std::uint64_t epoch = parse_u64(pa.kv, "epoch");
      if (epoch > epoch_.load()) {
        // Monotonic adoption: the coordinator re-fences survivors onto a
        // new epoch after every death or repair. Stale (lower) epochs are
        // ignored, never adopted.
        epoch_.store(epoch);
        fabric_.set_epoch(epoch);
      }
      fabric_.reset_all_peers();
      return "ok epoch=" + std::to_string(epoch_.load());
    }
    if (command == "freeze") {
      // Deterministic gray failure: stop serving AND heartbeating for the
      // given time, but keep the listener's accept backlog — exactly what a
      // SIGSTOP'd process looks like from the outside. The reply goes out
      // first (see run()); the stall starts after.
      std::istringstream is(args);
      int ms = 0;
      is >> ms;
      ECC_CHECK_MSG(ms > 0, "freeze expects '<ms>', got '" << args << "'");
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(ms);
      frozen_until_ns_.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              until.time_since_epoch())
              .count());
      freeze_pending_ms_ = ms;
      return "ok frozen_ms=" + std::to_string(ms);
    }
    if (command == "inject") {
      const ParsedArgs pa = parse_args(args);
      ECC_CHECK_MSG(!pa.pos.empty(),
                    "inject expects 'corrupt | drop <p> | delay <p> <ms> | "
                    "off', got '" << args << "'");
      if (pa.pos[0] == "corrupt") {
        // One-shot: the next fabric frame goes out with a flipped payload
        // byte, driving the receiver's wire-CRC-mismatch path.
        fabric_.corrupt_next_frame();
        return "ok armed=corrupt";
      }
      cluster::FaultSpec spec = faulty_.spec();
      if (pa.pos[0] == "off") {
        spec.drop_prob = spec.delay_prob = spec.corrupt_prob = 0;
      } else if (pa.pos[0] == "drop" && pa.pos.size() == 2) {
        spec.drop_prob = parse_wire_double(pa.pos[1], "drop probability");
      } else if (pa.pos[0] == "delay" && pa.pos.size() == 3) {
        spec.delay_prob = parse_wire_double(pa.pos[1], "delay probability");
        spec.delay_ms = static_cast<int>(parse_wire_int(
            pa.pos[2], "delay ms", 0, std::numeric_limits<int>::max()));
      } else {
        ECC_CHECK_MSG(false, "bad inject spec '" << args << "'");
      }
      faulty_.set_spec(spec);
      return "ok";
    }
    if (command == "status") {
      std::ostringstream os;
      os << "rank=" << cfg_.rank << " jobs=" << sessions_.size()
         << " saves_ok=" << saves_ok_ << " saves_failed=" << saves_failed_
         << " loads_ok=" << loads_ok_ << " epoch=" << epoch_.load();
      return os.str();
    }
    if (command == "clock") {
      // The coordinator's ping-pong clock probe: our tracer clock, read as
      // close to the wire as a single-threaded server gets.
      return std::to_string(obs::Tracer::global().now_ns());
    }
    if (command == "obs") {
      // Snapshot request for trace/stats aggregation. Service-level state
      // rides along as gauges so one pull carries everything.
      obs::StatsRegistry& stats = fabric_.stats();
      stats.set_gauge("svc.jobs", static_cast<double>(sessions_.size()));
      stats.set_gauge("svc.saves_ok", static_cast<double>(saves_ok_));
      stats.set_gauge("svc.saves_failed", static_cast<double>(saves_failed_));
      stats.set_gauge("svc.loads_ok", static_cast<double>(loads_ok_));
      stats.set_gauge(
          "obs.tracer.dropped",
          static_cast<double>(obs::Tracer::global().dropped_count()));
      if (args == "stats") return stats.to_json();
      return obs::serialize_snapshot(obs::Tracer::global(), &stats,
                                     "worker" + std::to_string(cfg_.rank));
    }
    if (command == "exit") {
      return "bye";
    }
    status = 1;
    return "unknown command '" + command + "'";
  } catch (const BadRequest& e) {
    // Malformed wire argument (garbage rank list, 2^80 epoch, junk
    // iteration): a typed protocol error, not a failed operation — and
    // never a foreign exception escaping the daemon loop.
    status = kStatusBadRequest;
    return std::string("bad request: ") + e.what();
  } catch (const CheckFailure& e) {
    // A torn collective (peer died mid-save) lands here: FabricSession
    // already rolled the version back; the daemon stays up and reports.
    if (command == "save") ++saves_failed_;
    status = 1;
    return std::string("error: ") + e.what();
  }
}

void WorkerDaemon::run() {
  const std::string ctx = "worker " + std::to_string(cfg_.rank) + " control";
  join_cluster();
  for (;;) {
    if (fenced_.load()) return;  // superseded — a replacement owns this rank
    if (!listener_readable(control_listener_, net::Millis(250))) continue;
    net::Socket conn;
    try {
      conn = net::accept_with_timeout(control_listener_,
                                      cfg_.fabric_opts.io_timeout, ctx);
    } catch (const CheckFailure&) {
      continue;  // raced client gave up between poll and accept
    }
    std::string command;
    try {
      ControlFrame req = recv_control(conn, net::FrameType::kRequest,
                                      cfg_.fabric_opts.io_timeout, ctx);
      command = req.header.key;
      std::uint32_t status = 0;
      std::string body;
      {
        // Adopt the request's trace context (if any): every span recorded
        // while handling — fabric sends, engine stages, the handler span
        // itself — chains back to the coordinator's root span.
        obs::ScopedTraceContext tctx(req.header.trace.trace_id,
                                     req.header.trace.parent_span);
        obs::ScopedSpan span("worker.handle:" + command);
        body = handle(command, string_of(req.payload), status);
      }
      send_control(conn, net::FrameType::kResponse, "", status,
                   span_of(body), cfg_.fabric_opts.io_timeout, ctx);
    } catch (const CheckFailure&) {
      continue;  // client died mid-exchange; daemon survives
    }
    if (command == "exit") {
      stop_beats();
      return;
    }
    if (freeze_pending_ms_ > 0) {
      // The freeze reply went out; now go dark. The beat thread is already
      // silent (frozen_until_ns_); this stalls serving too.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(freeze_pending_ms_));
      freeze_pending_ms_ = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

Coordinator::Coordinator(CoordinatorConfig cfg)
    : cfg_(std::move(cfg)), listener_(net::listen_on(cfg_.client_ep)) {
  ECC_CHECK_MSG(!cfg_.worker_eps.empty(), "coordinator needs workers");
  ECC_CHECK_MSG(cfg_.max_queue >= 1, "max_queue must be at least 1");
  if (cfg_.liveness_ep) {
    ECC_CHECK_MSG(cfg_.parity_m >= 0 &&
                      cfg_.data_k + cfg_.parity_m ==
                          static_cast<int>(cfg_.worker_eps.size()),
                  "self-healing coordinator needs data_k + parity_m == "
                  "worker count");
    liveness_listener_ = net::listen_on(*cfg_.liveness_ep);
    cluster::LivenessTracker::Config tcfg;
    tcfg.heartbeat_timeout = cfg_.opts.heartbeat_timeout;
    tcfg.suspect_probes = cfg_.opts.suspect_probes;
    tracker_.emplace(tcfg, static_cast<int>(cfg_.worker_eps.size()),
                     cluster::LivenessTracker::Clock::now());
    epoch_ = 1;  // nonzero: fabric-level fencing is active from the start
    liveness_thread_ = std::thread([this] { liveness_loop(); });
  }
}

Coordinator::~Coordinator() {
  liveness_stop_.store(true);
  if (liveness_thread_.joinable()) liveness_thread_.join();
}

bool Coordinator::admit(net::Millis wait) {
  // Drain everything already waiting, then (if the queue is still empty)
  // block up to `wait` for the first arrival. Connections admitted while a
  // previous request was being served keep their arrival order; arrivals
  // past max_queue are told to back off (kStatusBusy) instead of waiting
  // unbounded behind a slow collective.
  for (;;) {
    const net::Millis budget = queue_.empty() ? wait : net::Millis(0);
    if (!listener_readable(listener_, budget)) break;
    net::Socket conn;
    try {
      conn = net::accept_with_timeout(listener_, net::Millis(100),
                                      "coordinator");
    } catch (const CheckFailure&) {
      break;
    }
    if (queue_.size() >= cfg_.max_queue) {
      ++rejected_;
      try {
        recv_control(conn, net::FrameType::kRequest, net::Millis(250),
                     "coordinator busy");
        const std::string body = "busy: admission queue full (" +
                                 std::to_string(queue_.size()) + ")";
        send_control(conn, net::FrameType::kResponse, "", kStatusBusy,
                     span_of(body), net::Millis(250), "coordinator busy");
      } catch (const CheckFailure&) {
        // Rejected client raced away; nothing to tell it.
      }
      continue;
    }
    queue_.push_back({std::move(conn)});
  }
  max_depth_ = std::max(max_depth_, queue_.size());
  return !queue_.empty();
}

std::vector<ControlReply> Coordinator::fan_out(const std::string& command,
                                               const std::string& args,
                                               const std::vector<int>& targets) {
  std::vector<ControlReply> replies(cfg_.worker_eps.size());
  std::vector<bool> wanted(cfg_.worker_eps.size(), targets.empty());
  for (int t : targets) wanted.at(static_cast<std::size_t>(t)) = true;
  std::vector<std::thread> threads;
  threads.reserve(cfg_.worker_eps.size());
  // Trace context is thread-local; carry the serving thread's context into
  // each fan-out thread so every per-worker request chains to the root.
  const obs::TraceContext tc = obs::current_trace_context();
  for (std::size_t i = 0; i < cfg_.worker_eps.size(); ++i) {
    if (!wanted[i]) {
      replies[i].skipped = true;
      replies[i].body = "skipped: not a collective member";
      continue;
    }
    threads.emplace_back([this, &replies, &command, &args, i, tc] {
      obs::ScopedTraceContext tctx(tc.trace_id, tc.span_id);
      try {
        replies[i] =
            client_request(cfg_.worker_eps[i], command, args, cfg_.opts);
      } catch (const CheckFailure& e) {
        replies[i] = {false, std::string("unreachable: ") + e.what(),
                      0.0, kStatusError, false};
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return replies;
}

void Coordinator::reset_workers(const std::vector<int>& targets) {
  // Best effort: dead workers are simply unreachable. With liveness on,
  // the reset also re-announces the current epoch to its targets.
  std::string args;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    if (epoch_ > 0) args = "epoch=" + std::to_string(epoch_);
  }
  fan_out("reset", args, targets);
}

bool Coordinator::clock_offset_ns(std::size_t i, std::int64_t* offset) {
  // A few ping-pong exchanges against the worker's `clock` verb; the
  // minimum-RTT midpoint estimate bounds the error by rtt/2 — far below
  // the millisecond-scale spans the merged trace is read for.
  constexpr int kProbes = 5;
  std::vector<obs::ClockSample> samples;
  samples.reserve(kProbes);
  const obs::Tracer& tracer = obs::Tracer::global();
  try {
    for (int p = 0; p < kProbes; ++p) {
      obs::ClockSample s;
      s.local_send_ns = static_cast<std::int64_t>(tracer.now_ns());
      const ControlReply r =
          client_request(cfg_.worker_eps[i], "clock", "", cfg_.opts);
      s.local_recv_ns = static_cast<std::int64_t>(tracer.now_ns());
      if (!r.ok) return false;
      s.remote_ns = std::stoll(r.body);
      samples.push_back(s);
    }
  } catch (const CheckFailure&) {
    return false;
  } catch (const std::exception&) {
    return false;  // unparsable clock body
  }
  *offset = obs::estimate_clock_offset_ns(samples);
  return true;
}

std::string Coordinator::merged_trace_json() {
  // One Chrome trace for the whole job: our own spans in our clock domain,
  // every reachable worker's snapshot shifted by its estimated offset.
  // Dead workers are skipped — their buffers died with them, which is why
  // check_merged_trace lets callers tolerate unresolved parent ids.
  obs::ChromeTraceWriter w;
  obs::Tracer::global().export_to(w, "coordinator");
  for (std::size_t i = 0; i < cfg_.worker_eps.size(); ++i) {
    std::int64_t offset = 0;
    if (!clock_offset_ns(i, &offset)) continue;
    ControlReply snap;
    try {
      snap = client_request(cfg_.worker_eps[i], "obs", "", cfg_.opts);
    } catch (const CheckFailure&) {
      continue;
    }
    if (!snap.ok) continue;
    std::string err;
    if (!obs::append_snapshot_to_trace(w, snap.body, "", -offset, &err))
      std::fprintf(stderr, "coordinator: worker %zu snapshot rejected: %s\n",
                   i, err.c_str());
  }
  std::ostringstream os;
  w.write(os);
  return os.str();
}

std::string Coordinator::aggregated_stats_json() {
  std::ostringstream os;
  obs::StatsRegistry agg;
  os << "{\"workers\":{";
  bool first = true;
  for (std::size_t i = 0; i < cfg_.worker_eps.size(); ++i) {
    ControlReply r;
    try {
      r = client_request(cfg_.worker_eps[i], "obs", "stats", cfg_.opts);
    } catch (const CheckFailure&) {
      continue;
    }
    if (!r.ok) continue;
    if (!first) os << ",";
    first = false;
    os << "\"worker" << i << "\":" << r.body;
    std::string err;
    if (!obs::accumulate_snapshot_stats(r.body, agg, &err))
      std::fprintf(stderr, "coordinator: worker %zu stats rejected: %s\n", i,
                   err.c_str());
  }
  os << "}";
  if (cfg_.opts.stats != nullptr)
    os << ",\"coordinator\":" << cfg_.opts.stats->to_json();
  // Counters sum across workers, histograms merge losslessly; gauges are
  // last-write-wins and only meaningful per worker.
  os << ",\"aggregate\":" << agg.to_json() << "}";
  return os.str();
}

std::string Coordinator::health_json(const std::string& job_filter) {
  std::ostringstream os;
  os << "{\"queue_depth\":" << queue_.size()
     << ",\"max_queue_depth\":" << max_depth_ << ",\"served\":" << served_
     << ",\"in_flight\":" << in_flight_;
  // Self-healing view: tracker states come from heartbeats (no pinging a
  // corpse — that would stall the health endpoint on connect retries).
  struct WorkerView {
    std::string state = "alive";
    std::uint64_t epoch = 0;
    std::uint64_t beats = 0;
  };
  std::vector<WorkerView> views(cfg_.worker_eps.size());
  int dead_count = 0;
  if (tracker_) {
    std::lock_guard<std::mutex> lock(live_mu_);
    os << ",\"cluster_epoch\":" << epoch_ << ",\"rejected\":" << rejected_
       << ",\"deaths\":" << deaths_ << ",\"repairs\":" << repairs_
       << ",\"fenced_beats\":" << fenced_beats_
       << ",\"degraded_ops\":" << degraded_ops_;
    for (std::size_t i = 0; i < views.size(); ++i) {
      const auto& p = tracker_->peer(static_cast<int>(i));
      views[i].state = cluster::to_string(p.state);
      views[i].epoch = p.epoch;
      views[i].beats = p.beats;
      dead_count += p.state == cluster::Liveness::kDead;
    }
    os << ",\"degraded\":" << (dead_count > 0 ? "true" : "false")
       << ",\"redundancy\":{\"k\":" << cfg_.data_k
       << ",\"m\":" << cfg_.parity_m
       << ",\"effective_m\":" << cfg_.parity_m - dead_count << "}";
  }
  os << ",\"workers\":[";
  const std::vector<ControlReply> pings =
      fan_out("ping", "", alive_targets());
  for (std::size_t i = 0; i < pings.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"rank\":" << i << ",\"alive\":"
       << (pings[i].ok ? "true" : "false");
    if (tracker_)
      os << ",\"state\":\"" << views[i].state << "\",\"epoch\":"
         << views[i].epoch << ",\"beats\":" << views[i].beats;
    if (pings[i].ok)
      os << ",\"rtt_ms\":" << obs::json_number(pings[i].rtt_ms);
    os << "}";
  }
  os << "],\"jobs\":{";
  bool first = true;
  for (const auto& [job, js] : job_stats_) {
    if (!job_filter.empty() && job != job_filter) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::json_escape(job) << "\":{"
       << "\"last_version\":" << js.last_version
       << ",\"iterations\":" << js.iterations
       << ",\"saves_ok\":" << js.saves_ok
       << ",\"saves_failed\":" << js.saves_failed
       << ",\"loads_ok\":" << js.loads_ok
       << ",\"loads_failed\":" << js.loads_failed
       << ",\"save_latency_s\":" << obs::hist_summary_json(js.save_latency_s)
       << ",\"load_latency_s\":" << obs::hist_summary_json(js.load_latency_s)
       << ",\"last_error\":\"" << obs::json_escape(js.last_error) << "\"}";
  }
  os << "}}";
  return os.str();
}

namespace {

/// Merge worker bodies of the form "version=V wN:digest... [; detail]":
/// checks every reachable worker agreed on V, concatenates the shard
/// digests in rank order, and surfaces the first worker's detail (loads).
struct MergedBodies {
  bool ok = false;
  std::int64_t version = 0;
  std::string shards;  ///< "wN:digest wM:digest ..."
  std::string detail;
  std::string error;
};

MergedBodies merge_bodies(const std::vector<ControlReply>& replies) {
  MergedBodies m;
  bool have_version = false;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (replies[i].skipped) continue;  // not a member of this collective
    if (!replies[i].ok) {
      m.error = "worker " + std::to_string(i) + ": " + replies[i].body;
      return m;
    }
    std::istringstream is(replies[i].body);
    std::string tok;
    is >> tok;
    std::int64_t v = 0;
    if (tok.rfind("version=", 0) != 0 ||
        !(std::istringstream(tok.substr(8)) >> v)) {
      m.error = "worker " + std::to_string(i) + ": bad body '" +
                replies[i].body + "'";
      return m;
    }
    if (have_version && v != m.version) {
      m.error = "workers disagree on version: " + std::to_string(m.version) +
                " vs " + std::to_string(v);
      return m;
    }
    m.version = v;
    have_version = true;
    while (is >> tok) {
      if (tok == ";") {
        std::string rest;
        std::getline(is, rest);
        if (m.detail.empty() && !rest.empty())
          m.detail = rest.substr(rest.find_first_not_of(' '));
        break;
      }
      m.shards += (m.shards.empty() ? "" : " ") + tok;
    }
  }
  m.ok = true;
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Self-healing: liveness thread, failure detection, repair controller.
// ---------------------------------------------------------------------------

void Coordinator::liveness_loop() {
  const std::string ctx = "coordinator liveness";
  // Beats are tiny and frequent: short budgets everywhere, one request per
  // connection, and only a brief live_mu_ hold per beat — this thread must
  // never stall the main loop.
  const net::Millis io(250);
  while (!liveness_stop_.load()) {
    if (!listener_readable(liveness_listener_, net::Millis(100))) continue;
    net::Socket conn;
    try {
      conn = net::accept_with_timeout(liveness_listener_, io, ctx);
    } catch (const CheckFailure&) {
      continue;
    }
    try {
      const ControlFrame req =
          recv_control(conn, net::FrameType::kRequest, io, ctx);
      const std::string verb = req.header.key;
      const ParsedArgs pa = parse_args(string_of(req.payload));
      std::uint32_t status = kStatusOk;
      std::string body;
      if ((verb == "beat" || verb == "join" || verb == "rejoin") &&
          !pa.pos.empty()) {
        // Beats come off the open network: a garbage rank or a 2^80 epoch
        // must get a typed refusal, not throw std::invalid_argument through
        // the liveness thread.
        int rank = -1;
        std::uint64_t beat_epoch = 0;
        try {
          rank = static_cast<int>(parse_wire_int(
              pa.pos[0], "rank", 0, std::numeric_limits<int>::max()));
          beat_epoch = parse_u64(pa.kv, "epoch");
        } catch (const BadRequest& e) {
          status = kStatusBadRequest;
          body = e.what();
          rank = -1;
        }
        std::lock_guard<std::mutex> lock(live_mu_);
        if (status != kStatusOk) {
          // fall through to the reply below
        } else if (rank < 0 || rank >= tracker_->world()) {
          status = kStatusBadRequest;
          body = "bogus rank " + pa.pos[0];
        } else if (verb == "beat") {
          const cluster::Liveness state = tracker_->beat(
              rank, beat_epoch,
              cluster::LivenessTracker::Clock::now());
          if (state == cluster::Liveness::kDead &&
              admitting_.count(rank) == 0) {
            // A corpse is beating: it was declared dead and (possibly)
            // replaced. Fence it out — it must exit, not rejoin silently.
            // The exemption: a rank with an accepted-but-unprocessed join
            // is still formally dead, yet the beat comes from its NEW
            // incarnation awaiting admission — fencing it here would kill
            // every replacement whose first beat outruns process_joins().
            ++fenced_beats_;
            status = kStatusError;
            body = "fenced epoch=" + std::to_string(epoch_);
          } else {
            body = "ok epoch=" + std::to_string(epoch_);
          }
        } else {  // join / rejoin
          pending_joins_.push_back(rank);
          admitting_.insert(rank);
          body = "ok epoch=" + std::to_string(epoch_);
        }
      } else {
        status = kStatusError;
        body = "unknown liveness verb '" + verb + "'";
      }
      send_control(conn, net::FrameType::kResponse, "", status, span_of(body),
                   io, ctx);
    } catch (const CheckFailure&) {
      continue;  // half-open beat; the next one carries the same info
    }
  }
}

std::vector<int> Coordinator::alive_targets() {
  if (!tracker_) return {};
  std::lock_guard<std::mutex> lock(live_mu_);
  return tracker_->ranks_in(cluster::Liveness::kAlive);
}

std::string Coordinator::membership_args(const std::vector<int>& targets) {
  if (!tracker_) return "";
  std::string s;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    s = "epoch=" + std::to_string(epoch_);
  }
  if (targets.size() < cfg_.worker_eps.size())
    s += " alive=" + csv_of(targets);
  return s;
}

void Coordinator::tick() {
  if (!tracker_) return;
  using Clock = cluster::LivenessTracker::Clock;
  struct Suspect {
    int rank;
    std::uint64_t beats;
  };
  std::vector<Suspect> suspects;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    tracker_->evaluate(Clock::now());
    for (int r : tracker_->suspects())
      suspects.push_back({r, tracker_->peer(r).beats});
  }
  std::vector<int> newly_dead;
  for (const Suspect& s : suspects) {
    // Dead-vs-gray: probe the suspect's control endpoint outside the lock.
    // Connection refused means the process is gone (hard death). A
    // completed or timed-out connect proves nothing — a SIGSTOP'd process
    // still accepts via its backlog — so only a heartbeat that arrived
    // since we snapshot counts as evidence of life.
    const net::ProbeResult probe = net::probe_endpoint(
        cfg_.worker_eps[static_cast<std::size_t>(s.rank)],
        cfg_.opts.heartbeat_period);
    std::lock_guard<std::mutex> lock(live_mu_);
    const bool beat_arrived = tracker_->peer(s.rank).beats != s.beats;
    if (tracker_->probe_result(s.rank,
                               probe == net::ProbeResult::kRefused,
                               beat_arrived, Clock::now()) ==
        cluster::Liveness::kDead)
      newly_dead.push_back(s.rank);
  }
  if (!newly_dead.empty()) declare_dead(newly_dead);
  process_joins();
}

void Coordinator::declare_dead(const std::vector<int>& ranks) {
  std::vector<int> survivors;
  std::uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    deaths_ += ranks.size();
    // One bump fences every corpse of this batch: survivors move to the
    // new epoch (control-plane args AND fabric hellos), so anything the
    // dead ranks send after resurrecting is rejected on arrival.
    epoch = ++epoch_;
    survivors = tracker_->ranks_in(cluster::Liveness::kAlive);
  }
  std::fprintf(stderr, "coordinator: declared dead: %s (epoch now %llu)\n",
               csv_of(ranks).c_str(),
               static_cast<unsigned long long>(epoch));
  reset_workers(survivors);
}

void Coordinator::process_joins() {
  std::vector<int> joins;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    joins.swap(pending_joins_);
  }
  if (joins.empty()) return;
  std::vector<int> repairing;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    const auto now = cluster::LivenessTracker::Clock::now();
    for (int r : joins) {
      // A join for a dead rank is a replacement (or a rejoin with intact
      // state) — that is a repair: new epoch, recover every job so the
      // newcomer's rows are rebuilt from the erasure-coded remainder, and
      // only then admit it to the membership. A join for an alive rank is
      // the benign startup announcement, admitted on the spot.
      if (tracker_->state(r) == cluster::Liveness::kDead) {
        if (std::find(repairing.begin(), repairing.end(), r) ==
            repairing.end())
          repairing.push_back(r);
      } else {
        tracker_->mark_alive(r, epoch_, now);
        admitting_.erase(r);
      }
    }
    if (!repairing.empty()) ++epoch_;
  }
  if (repairing.empty()) return;
  // Recover onto the joiners while they are still formally dead: they are
  // explicit fan-out targets here but stay out of the serving membership
  // until every job is rebuilt. Their beats stay exempt from fencing for
  // the whole window (admitting_ holds them), and on failure the joins are
  // re-enqueued so the next tick retries the repair.
  std::vector<int> targets = alive_targets();
  targets.insert(targets.end(), repairing.begin(), repairing.end());
  std::sort(targets.begin(), targets.end());
  reset_workers(targets);  // carries the new epoch to every member
  const std::string margs = membership_args(targets);
  bool all_ok = true;
  for (const auto& [job, _] : iterations_) {
    const std::vector<ControlReply> replies = fan_out(
        "load", job + (margs.empty() ? "" : " " + margs), targets);
    const MergedBodies m = merge_bodies(replies);
    if (!m.ok) {
      all_ok = false;
      job_stats_[job].last_error = "repair load failed: " + m.error;
    } else {
      job_stats_[job].last_version = m.version;
    }
  }
  std::lock_guard<std::mutex> lock(live_mu_);
  if (all_ok) {
    const auto now = cluster::LivenessTracker::Clock::now();
    for (int r : repairing) {
      tracker_->mark_alive(r, epoch_, now);
      admitting_.erase(r);
    }
    ++repairs_;
  } else {
    pending_joins_.insert(pending_joins_.end(), repairing.begin(),
                          repairing.end());
  }
  std::fprintf(stderr,
               "coordinator: repaired ranks %s (epoch %llu, %s)\n",
               csv_of(repairing).c_str(),
               static_cast<unsigned long long>(epoch_),
               all_ok ? "all jobs recovered" : "some jobs failed; will retry");
}

std::string Coordinator::handle(const std::string& command,
                                const std::string& args,
                                std::uint32_t& status) {
  status = 0;
  std::istringstream is(args);
  std::string job;
  is >> job;

  if (command == "status") {
    const std::vector<ControlReply> pings =
        fan_out("ping", "", alive_targets());
    std::size_t alive = 0;
    for (const ControlReply& r : pings) alive += r.ok;
    std::ostringstream os;
    os << "queue_depth=" << queue_.size() << " max_depth=" << max_depth_
       << " served=" << served_ << " jobs=" << iterations_.size()
       << " workers=" << alive << "/" << pings.size();
    if (tracker_) {
      std::lock_guard<std::mutex> lock(live_mu_);
      os << " epoch=" << epoch_ << " rejected=" << rejected_
         << " deaths=" << deaths_ << " repairs=" << repairs_;
    }
    return os.str();
  }
  if (command == "reset") {
    reset_workers(alive_targets());
    return "ok";
  }
  if (command == "health") {
    return health_json(job);
  }
  if (command == "stats") {
    return aggregated_stats_json();
  }
  if (command == "trace") {
    return merged_trace_json();
  }
  if (command == "shutdown") {
    fan_out("exit", "");
    stop_ = true;
    return "bye";
  }
  if (command == "save" || command == "load") {
    if (job.empty()) {
      status = kStatusError;
      return command + " expects '<job>'";
    }
    const ParsedArgs pa = parse_args(args);
    const auto tok_it = pa.kv.find("token");
    const std::string token = tok_it == pa.kv.end() ? "" : tok_it->second;
    const std::string idem_key = job + "\n" + command + "\n" + token;
    if (!token.empty()) {
      // Idempotent retry: the client timed out but the command may have
      // committed — replay the recorded outcome instead of committing a
      // second version under the same token.
      const auto it = idem_.find(idem_key);
      if (it != idem_.end()) {
        status = it->second.first;
        return it->second.second;
      }
    }

    // Degraded-mode gate: with liveness on, collectives run over the alive
    // members only. Up to m dead ranks the erasure code absorbs the loss
    // (reduced redundancy on save, workflow-B decode on load); beyond m
    // nothing can be served — fail fast with a precise, typed error.
    const std::vector<int> targets = alive_targets();
    std::string margs;
    int dead_count = 0;
    if (tracker_) {
      dead_count =
          static_cast<int>(cfg_.worker_eps.size()) -
          static_cast<int>(targets.size());
      if (dead_count > cfg_.parity_m) {
        status = kStatusUnavailable;
        std::string dead_csv;
        {
          std::lock_guard<std::mutex> lock(live_mu_);
          dead_csv = csv_of(tracker_->dead());
          const std::string gray = csv_of(tracker_->suspects());
          if (!gray.empty()) dead_csv += " (suspect: " + gray + ")";
        }
        return command + " unavailable: " + std::to_string(dead_count) +
               " of " + std::to_string(cfg_.worker_eps.size()) +
               " ranks down [" + dead_csv + "], erasure code tolerates m=" +
               std::to_string(cfg_.parity_m);
      }
      if (dead_count > 0) ++degraded_ops_;
      margs = membership_args(targets);
    }

    JobStats& js = job_stats_[job];
    std::int64_t iteration = 0;
    std::string wargs = job;
    if (command == "save") {
      iteration = ++iterations_[job];
      js.iterations = iteration;
      wargs += " " + std::to_string(iteration);
    } else {
      // Survivors of an earlier failure — and everyone pooling a
      // connection to a since-replaced rank — must reconnect before the
      // collective.
      reset_workers(targets);
    }
    if (!margs.empty()) wargs += " " + margs;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ControlReply> replies;
    {
      // Each save/load is the root of a fresh distributed trace: the root
      // span covers the whole fan-out, every worker chains under it.
      obs::ScopedTraceContext tctx(obs::Tracer::global().enabled()
                                       ? obs::Tracer::new_trace_id()
                                       : 0,
                                   0);
      obs::ScopedSpan root("coord." + command + ":" + job);
      ++in_flight_;
      replies = fan_out(command, wargs, targets);
      --in_flight_;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const MergedBodies m = merge_bodies(replies);
    if (!m.ok) {
      // The collective tore: every survivor rolled the version back (save)
      // or aborted (load); reset all member fabric connections so the next
      // collective starts clean.
      reset_workers(targets);
      ++(command == "save" ? js.saves_failed : js.loads_failed);
      js.last_error = m.error;
      status = kStatusError;
      return command + " failed: " + m.error;
    }
    js.last_version = m.version;
    std::ostringstream os;
    os << "version=" << m.version;
    if (command == "save") {
      ++js.saves_ok;
      js.save_latency_s.observe(secs);
      history_[job][m.version] = iteration;
      os << " iteration=" << iteration;
    } else {
      ++js.loads_ok;
      js.load_latency_s.observe(secs);
      const auto jit = history_.find(job);
      if (jit != history_.end()) {
        const auto vit = jit->second.find(m.version);
        if (vit != jit->second.end()) os << " iteration=" << vit->second;
      }
    }
    os << " " << m.shards;
    if (command == "load" && !m.detail.empty()) os << " ; " << m.detail;
    if (command == "save" && dead_count > 0)
      os << " ; degraded (" << dead_count << " dead, redundancy "
         << static_cast<int>(targets.size()) - cfg_.data_k << "/"
         << cfg_.parity_m << ")";
    const std::string body = os.str();
    if (!token.empty()) {
      idem_[idem_key] = {kStatusOk, body};
      idem_order_.push_back(idem_key);
      if (idem_order_.size() > 256) {
        idem_.erase(idem_order_.front());
        idem_order_.pop_front();
      }
    }
    return body;
  }
  status = 1;
  return "unknown command '" + command + "'";
}

void Coordinator::run() {
  while (!stop_) {
    // Failure detection and repair advance between requests: suspects are
    // probed, deaths declared, pending joins repaired. A long-running
    // collective delays a tick but never loses one.
    tick();
    if (!admit(net::Millis(250))) continue;
    net::Socket conn = std::move(queue_.front().conn);
    queue_.erase(queue_.begin());
    try {
      ControlFrame req = recv_control(conn, net::FrameType::kRequest,
                                      cfg_.opts.io_timeout, "coordinator");
      std::uint32_t status = 0;
      const std::string body =
          handle(req.header.key, string_of(req.payload), status);
      send_control(conn, net::FrameType::kResponse, "", status,
                   span_of(body), cfg_.opts.io_timeout, "coordinator");
      ++served_;
    } catch (const CheckFailure&) {
      continue;  // client died mid-exchange; coordinator survives
    }
  }
}

}  // namespace eccheck::svc
