#include "svc/checkpoint_service.hpp"

#include <poll.h>

#include <chrono>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "common/crc64.hpp"
#include "core/fabric_engine.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/distributed.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"

namespace eccheck::svc {
namespace {

ByteSpan span_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string string_of(const Buffer& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

/// True when the listener has a connection waiting within `wait`.
bool listener_readable(const net::Socket& listener, net::Millis wait) {
  pollfd p{listener.fd(), POLLIN, 0};
  return ::poll(&p, 1, static_cast<int>(wait.count())) > 0 &&
         (p.revents & POLLIN) != 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Control framing.
// ---------------------------------------------------------------------------

void send_control(const net::Socket& s, net::FrameType type,
                  const std::string& key, std::uint32_t aux, ByteSpan payload,
                  net::Millis io_timeout, const std::string& ctx) {
  net::FrameHeader h;
  h.type = type;
  h.src_rank = 0;
  h.aux = aux;
  h.key = key;
  h.payload_len = payload.size();
  h.payload_crc = crc64(payload);
  if (obs::Tracer::global().enabled()) {
    const obs::TraceContext tc = obs::current_trace_context();
    if (tc.trace_id != 0) {
      h.trace.trace_id = tc.trace_id;
      h.trace.parent_span = tc.span_id;
      h.trace.op = static_cast<std::uint32_t>(type);
    }
  }
  const std::size_t trace_bytes =
      h.trace.trace_id != 0 ? net::kTraceContextBytes : 0;

  std::vector<std::uint8_t> head(net::kFrameHeaderBytes + trace_bytes +
                                 key.size());
  net::encode_frame_header(h, head.data());
  if (trace_bytes > 0)
    net::encode_trace_context(h.trace, head.data() + net::kFrameHeaderBytes);
  std::memcpy(head.data() + net::kFrameHeaderBytes + trace_bytes, key.data(),
              key.size());
  net::write_full(s, head.data(), head.size(), io_timeout, ctx);
  if (!payload.empty())
    net::write_full(s, payload.data(), payload.size(), io_timeout, ctx);

  // Same end-to-end contract as the data fabric: the receiver acks with the
  // payload CRC after verifying it.
  std::uint8_t ack_hdr[net::kFrameHeaderBytes];
  net::read_full(s, ack_hdr, sizeof(ack_hdr), io_timeout, ctx);
  std::uint32_t ack_key_len = 0;
  bool ack_trace = false;
  net::FrameHeader ack =
      net::decode_frame_header(ack_hdr, &ack_key_len, &ack_trace);
  ECC_CHECK_MSG(ack.type == net::FrameType::kAck && ack_key_len == 0 &&
                    !ack_trace,
                ctx << ": expected ack, got "
                    << net::frame_type_name(ack.type));
  ECC_CHECK_MSG(ack.payload_crc == h.payload_crc,
                ctx << ": ack CRC mismatch — payload corrupted in flight");
}

ControlFrame recv_control(const net::Socket& s, net::FrameType expect,
                          net::Millis io_timeout, const std::string& ctx) {
  std::uint8_t hdr[net::kFrameHeaderBytes];
  net::read_full(s, hdr, sizeof(hdr), io_timeout, ctx);
  std::uint32_t key_len = 0;
  bool has_trace = false;
  ControlFrame r;
  r.header = net::decode_frame_header(hdr, &key_len, &has_trace);
  if (has_trace) {
    std::uint8_t tbuf[net::kTraceContextBytes];
    net::read_full(s, tbuf, sizeof(tbuf), io_timeout, ctx);
    r.header.trace = net::decode_trace_context(tbuf);
  }
  ECC_CHECK_MSG(r.header.type == expect,
                ctx << ": got " << net::frame_type_name(r.header.type)
                    << ", expected " << net::frame_type_name(expect));
  if (key_len > 0) {
    r.header.key.resize(key_len);
    net::read_full(s, r.header.key.data(), key_len, io_timeout, ctx);
  }
  r.payload = Buffer(r.header.payload_len, Buffer::Init::kUninitialized);
  if (!r.payload.empty())
    net::read_full(s, r.payload.data(), r.payload.size(), io_timeout, ctx);
  ECC_CHECK_MSG(crc64(r.payload.span()) == r.header.payload_crc,
                ctx << ": payload CRC mismatch — wire corruption");

  net::FrameHeader ack;
  ack.type = net::FrameType::kAck;
  ack.src_rank = 0;
  ack.payload_crc = r.header.payload_crc;
  std::uint8_t ack_hdr[net::kFrameHeaderBytes];
  net::encode_frame_header(ack, ack_hdr);
  net::write_full(s, ack_hdr, sizeof(ack_hdr), io_timeout, ctx);
  return r;
}

ControlReply client_request(const net::Endpoint& server,
                            const std::string& command,
                            const std::string& args,
                            const net::TransportOptions& opts) {
  const std::string ctx = "client request '" + command + "' to " +
                          server.to_string();
  obs::ScopedSpan span("svc.request:" + command);
  const auto t0 = std::chrono::steady_clock::now();
  net::Socket s = net::connect_with_retry(server, opts.connect_timeout,
                                          opts.connect_retries,
                                          opts.backoff_base, opts.backoff_max,
                                          ctx);
  net::set_tcp_nodelay(s, opts.tcp_nodelay);
  send_control(s, net::FrameType::kRequest, command, 0, span_of(args),
               opts.io_timeout, ctx);
  ControlFrame resp = recv_control(s, net::FrameType::kResponse,
                                   opts.io_timeout, ctx);
  const double rtt_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return {resp.header.aux == 0, string_of(resp.payload), rtt_ms};
}

// ---------------------------------------------------------------------------
// Deterministic job content.
// ---------------------------------------------------------------------------

dnn::CheckpointGenConfig job_gen_config(const std::string& job,
                                        std::int64_t iteration, int world) {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kGPT2, 96, 2, 6, "svc");
  cfg.model.vocab = 384;
  cfg.parallelism = world % 2 == 0
                        ? dnn::ParallelismSpec{2, world / 2, 1}
                        : dnn::ParallelismSpec{1, world, 1};
  cfg.seed = crc64(span_of(job)) ^ static_cast<std::uint64_t>(iteration);
  cfg.iteration = iteration;
  return cfg;
}

// ---------------------------------------------------------------------------
// WorkerDaemon.
// ---------------------------------------------------------------------------

WorkerDaemon::WorkerDaemon(WorkerDaemonConfig cfg)
    : cfg_(std::move(cfg)),
      fabric_(cfg_.rank, cfg_.fabric_eps, cfg_.fabric_opts),
      control_listener_(net::listen_on(cfg_.control_ep)) {
  ECC_CHECK_MSG(cfg_.ec.k + cfg_.ec.m == fabric_.world_size(),
                "worker daemon: k+m=" << cfg_.ec.k + cfg_.ec.m
                                      << " != world size "
                                      << fabric_.world_size());
}

core::FabricSession& WorkerDaemon::session_for(const std::string& job) {
  auto it = sessions_.find(job);
  if (it != sessions_.end()) return it->second;
  core::ECCheckConfig jcfg = cfg_.ec;
  jcfg.key_namespace = job + "/";
  return sessions_
      .try_emplace(job, fabric_, jcfg, cfg_.gpus_per_node,
                   cfg_.retain_versions)
      .first->second;
}

std::string WorkerDaemon::do_save(const std::string& job,
                                  std::int64_t iteration) {
  core::FabricSession& session = session_for(job);
  const int world = fabric_.world_size() * cfg_.gpus_per_node;
  const dnn::CheckpointGenConfig gen = job_gen_config(job, iteration, world);
  const std::vector<int> workers = session.driven_workers();

  std::vector<dnn::StateDict> mine;
  mine.reserve(workers.size());
  for (int w : workers) mine.push_back(dnn::make_worker_state_dict(gen, w));
  std::vector<const dnn::StateDict*> ptrs;
  ptrs.reserve(mine.size());
  for (const dnn::StateDict& sd : mine) ptrs.push_back(&sd);

  session.save(ptrs);
  ++saves_ok_;
  std::ostringstream os;
  os << "version=" << session.latest_version();
  for (std::size_t i = 0; i < workers.size(); ++i)
    os << " w" << workers[i] << ":" << hex16(mine[i].digest());
  return os.str();
}

std::string WorkerDaemon::do_load(const std::string& job) {
  core::FabricSession& session = session_for(job);
  std::vector<dnn::StateDict> out;
  const core::FabricSession::RecoverResult res = session.load(out);
  ++loads_ok_;
  const std::vector<int> workers = session.driven_workers();
  ECC_CHECK_MSG(out.size() == workers.size(),
                "load returned " << out.size() << " shards for "
                                 << workers.size() << " driven workers");
  std::ostringstream os;
  os << "version=" << res.version;
  for (std::size_t i = 0; i < workers.size(); ++i)
    os << " w" << workers[i] << ":" << hex16(out[i].digest());
  os << " ; " << res.report.detail;
  return os.str();
}

std::string WorkerDaemon::handle(const std::string& command,
                                 const std::string& args,
                                 std::uint32_t& status) {
  status = 0;
  try {
    if (command == "ping") {
      return "pong rank=" + std::to_string(cfg_.rank);
    }
    if (command == "save") {
      std::istringstream is(args);
      std::string job;
      std::int64_t iteration = 0;
      is >> job >> iteration;
      ECC_CHECK_MSG(!job.empty() && iteration > 0,
                    "save expects '<job> <iteration>', got '" << args << "'");
      return do_save(job, iteration);
    }
    if (command == "load") {
      std::istringstream is(args);
      std::string job;
      is >> job;
      ECC_CHECK_MSG(!job.empty(), "load expects '<job>', got '" << args
                                                               << "'");
      return do_load(job);
    }
    if (command == "reset") {
      fabric_.reset_all_peers();
      return "ok";
    }
    if (command == "status") {
      std::ostringstream os;
      os << "rank=" << cfg_.rank << " jobs=" << sessions_.size()
         << " saves_ok=" << saves_ok_ << " saves_failed=" << saves_failed_
         << " loads_ok=" << loads_ok_;
      return os.str();
    }
    if (command == "clock") {
      // The coordinator's ping-pong clock probe: our tracer clock, read as
      // close to the wire as a single-threaded server gets.
      return std::to_string(obs::Tracer::global().now_ns());
    }
    if (command == "obs") {
      // Snapshot request for trace/stats aggregation. Service-level state
      // rides along as gauges so one pull carries everything.
      obs::StatsRegistry& stats = fabric_.stats();
      stats.set_gauge("svc.jobs", static_cast<double>(sessions_.size()));
      stats.set_gauge("svc.saves_ok", static_cast<double>(saves_ok_));
      stats.set_gauge("svc.saves_failed", static_cast<double>(saves_failed_));
      stats.set_gauge("svc.loads_ok", static_cast<double>(loads_ok_));
      stats.set_gauge(
          "obs.tracer.dropped",
          static_cast<double>(obs::Tracer::global().dropped_count()));
      if (args == "stats") return stats.to_json();
      return obs::serialize_snapshot(obs::Tracer::global(), &stats,
                                     "worker" + std::to_string(cfg_.rank));
    }
    if (command == "exit") {
      return "bye";
    }
    status = 1;
    return "unknown command '" + command + "'";
  } catch (const CheckFailure& e) {
    // A torn collective (peer died mid-save) lands here: FabricSession
    // already rolled the version back; the daemon stays up and reports.
    if (command == "save") ++saves_failed_;
    status = 1;
    return std::string("error: ") + e.what();
  }
}

void WorkerDaemon::run() {
  const std::string ctx = "worker " + std::to_string(cfg_.rank) + " control";
  for (;;) {
    if (!listener_readable(control_listener_, net::Millis(250))) continue;
    net::Socket conn;
    try {
      conn = net::accept_with_timeout(control_listener_,
                                      cfg_.fabric_opts.io_timeout, ctx);
    } catch (const CheckFailure&) {
      continue;  // raced client gave up between poll and accept
    }
    std::string command;
    try {
      ControlFrame req = recv_control(conn, net::FrameType::kRequest,
                                      cfg_.fabric_opts.io_timeout, ctx);
      command = req.header.key;
      std::uint32_t status = 0;
      std::string body;
      {
        // Adopt the request's trace context (if any): every span recorded
        // while handling — fabric sends, engine stages, the handler span
        // itself — chains back to the coordinator's root span.
        obs::ScopedTraceContext tctx(req.header.trace.trace_id,
                                     req.header.trace.parent_span);
        obs::ScopedSpan span("worker.handle:" + command);
        body = handle(command, string_of(req.payload), status);
      }
      send_control(conn, net::FrameType::kResponse, "", status,
                   span_of(body), cfg_.fabric_opts.io_timeout, ctx);
    } catch (const CheckFailure&) {
      continue;  // client died mid-exchange; daemon survives
    }
    if (command == "exit") return;
  }
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

Coordinator::Coordinator(CoordinatorConfig cfg)
    : cfg_(std::move(cfg)), listener_(net::listen_on(cfg_.client_ep)) {
  ECC_CHECK_MSG(!cfg_.worker_eps.empty(), "coordinator needs workers");
}

bool Coordinator::admit(net::Millis wait) {
  // Drain everything already waiting, then (if the queue is still empty)
  // block up to `wait` for the first arrival. Connections admitted while a
  // previous request was being served keep their arrival order.
  for (;;) {
    const net::Millis budget = queue_.empty() ? wait : net::Millis(0);
    if (!listener_readable(listener_, budget)) break;
    try {
      queue_.push_back(
          {net::accept_with_timeout(listener_, net::Millis(100), "coordinator")});
    } catch (const CheckFailure&) {
      break;
    }
  }
  max_depth_ = std::max(max_depth_, queue_.size());
  return !queue_.empty();
}

std::vector<ControlReply> Coordinator::fan_out(const std::string& command,
                                               const std::string& args) {
  std::vector<ControlReply> replies(cfg_.worker_eps.size());
  std::vector<std::thread> threads;
  threads.reserve(cfg_.worker_eps.size());
  // Trace context is thread-local; carry the serving thread's context into
  // each fan-out thread so every per-worker request chains to the root.
  const obs::TraceContext tc = obs::current_trace_context();
  for (std::size_t i = 0; i < cfg_.worker_eps.size(); ++i) {
    threads.emplace_back([this, &replies, &command, &args, i, tc] {
      obs::ScopedTraceContext tctx(tc.trace_id, tc.span_id);
      try {
        replies[i] =
            client_request(cfg_.worker_eps[i], command, args, cfg_.opts);
      } catch (const CheckFailure& e) {
        replies[i] = {false, std::string("unreachable: ") + e.what()};
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return replies;
}

void Coordinator::reset_workers() {
  fan_out("reset", "");  // best effort: dead workers are simply unreachable
}

bool Coordinator::clock_offset_ns(std::size_t i, std::int64_t* offset) {
  // A few ping-pong exchanges against the worker's `clock` verb; the
  // minimum-RTT midpoint estimate bounds the error by rtt/2 — far below
  // the millisecond-scale spans the merged trace is read for.
  constexpr int kProbes = 5;
  std::vector<obs::ClockSample> samples;
  samples.reserve(kProbes);
  const obs::Tracer& tracer = obs::Tracer::global();
  try {
    for (int p = 0; p < kProbes; ++p) {
      obs::ClockSample s;
      s.local_send_ns = static_cast<std::int64_t>(tracer.now_ns());
      const ControlReply r =
          client_request(cfg_.worker_eps[i], "clock", "", cfg_.opts);
      s.local_recv_ns = static_cast<std::int64_t>(tracer.now_ns());
      if (!r.ok) return false;
      s.remote_ns = std::stoll(r.body);
      samples.push_back(s);
    }
  } catch (const CheckFailure&) {
    return false;
  } catch (const std::exception&) {
    return false;  // unparsable clock body
  }
  *offset = obs::estimate_clock_offset_ns(samples);
  return true;
}

std::string Coordinator::merged_trace_json() {
  // One Chrome trace for the whole job: our own spans in our clock domain,
  // every reachable worker's snapshot shifted by its estimated offset.
  // Dead workers are skipped — their buffers died with them, which is why
  // check_merged_trace lets callers tolerate unresolved parent ids.
  obs::ChromeTraceWriter w;
  obs::Tracer::global().export_to(w, "coordinator");
  for (std::size_t i = 0; i < cfg_.worker_eps.size(); ++i) {
    std::int64_t offset = 0;
    if (!clock_offset_ns(i, &offset)) continue;
    ControlReply snap;
    try {
      snap = client_request(cfg_.worker_eps[i], "obs", "", cfg_.opts);
    } catch (const CheckFailure&) {
      continue;
    }
    if (!snap.ok) continue;
    std::string err;
    if (!obs::append_snapshot_to_trace(w, snap.body, "", -offset, &err))
      std::fprintf(stderr, "coordinator: worker %zu snapshot rejected: %s\n",
                   i, err.c_str());
  }
  std::ostringstream os;
  w.write(os);
  return os.str();
}

std::string Coordinator::aggregated_stats_json() {
  std::ostringstream os;
  obs::StatsRegistry agg;
  os << "{\"workers\":{";
  bool first = true;
  for (std::size_t i = 0; i < cfg_.worker_eps.size(); ++i) {
    ControlReply r;
    try {
      r = client_request(cfg_.worker_eps[i], "obs", "stats", cfg_.opts);
    } catch (const CheckFailure&) {
      continue;
    }
    if (!r.ok) continue;
    if (!first) os << ",";
    first = false;
    os << "\"worker" << i << "\":" << r.body;
    std::string err;
    if (!obs::accumulate_snapshot_stats(r.body, agg, &err))
      std::fprintf(stderr, "coordinator: worker %zu stats rejected: %s\n", i,
                   err.c_str());
  }
  os << "}";
  if (cfg_.opts.stats != nullptr)
    os << ",\"coordinator\":" << cfg_.opts.stats->to_json();
  // Counters sum across workers, histograms merge losslessly; gauges are
  // last-write-wins and only meaningful per worker.
  os << ",\"aggregate\":" << agg.to_json() << "}";
  return os.str();
}

std::string Coordinator::health_json(const std::string& job_filter) {
  std::ostringstream os;
  os << "{\"queue_depth\":" << queue_.size()
     << ",\"max_queue_depth\":" << max_depth_ << ",\"served\":" << served_
     << ",\"in_flight\":" << in_flight_ << ",\"workers\":[";
  const std::vector<ControlReply> pings = fan_out("ping", "");
  for (std::size_t i = 0; i < pings.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"rank\":" << i << ",\"alive\":"
       << (pings[i].ok ? "true" : "false");
    if (pings[i].ok)
      os << ",\"rtt_ms\":" << obs::json_number(pings[i].rtt_ms);
    os << "}";
  }
  os << "],\"jobs\":{";
  bool first = true;
  for (const auto& [job, js] : job_stats_) {
    if (!job_filter.empty() && job != job_filter) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::json_escape(job) << "\":{"
       << "\"last_version\":" << js.last_version
       << ",\"iterations\":" << js.iterations
       << ",\"saves_ok\":" << js.saves_ok
       << ",\"saves_failed\":" << js.saves_failed
       << ",\"loads_ok\":" << js.loads_ok
       << ",\"loads_failed\":" << js.loads_failed
       << ",\"save_latency_s\":" << obs::hist_summary_json(js.save_latency_s)
       << ",\"load_latency_s\":" << obs::hist_summary_json(js.load_latency_s)
       << ",\"last_error\":\"" << obs::json_escape(js.last_error) << "\"}";
  }
  os << "}}";
  return os.str();
}

namespace {

/// Merge worker bodies of the form "version=V wN:digest... [; detail]":
/// checks every reachable worker agreed on V, concatenates the shard
/// digests in rank order, and surfaces the first worker's detail (loads).
struct MergedBodies {
  bool ok = false;
  std::int64_t version = 0;
  std::string shards;  ///< "wN:digest wM:digest ..."
  std::string detail;
  std::string error;
};

MergedBodies merge_bodies(const std::vector<ControlReply>& replies) {
  MergedBodies m;
  bool have_version = false;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (!replies[i].ok) {
      m.error = "worker " + std::to_string(i) + ": " + replies[i].body;
      return m;
    }
    std::istringstream is(replies[i].body);
    std::string tok;
    is >> tok;
    std::int64_t v = 0;
    if (tok.rfind("version=", 0) != 0 ||
        !(std::istringstream(tok.substr(8)) >> v)) {
      m.error = "worker " + std::to_string(i) + ": bad body '" +
                replies[i].body + "'";
      return m;
    }
    if (have_version && v != m.version) {
      m.error = "workers disagree on version: " + std::to_string(m.version) +
                " vs " + std::to_string(v);
      return m;
    }
    m.version = v;
    have_version = true;
    while (is >> tok) {
      if (tok == ";") {
        std::string rest;
        std::getline(is, rest);
        if (m.detail.empty() && !rest.empty())
          m.detail = rest.substr(rest.find_first_not_of(' '));
        break;
      }
      m.shards += (m.shards.empty() ? "" : " ") + tok;
    }
  }
  m.ok = true;
  return m;
}

}  // namespace

std::string Coordinator::handle(const std::string& command,
                                const std::string& args,
                                std::uint32_t& status) {
  status = 0;
  std::istringstream is(args);
  std::string job;
  is >> job;

  if (command == "status") {
    const std::vector<ControlReply> pings = fan_out("ping", "");
    std::size_t alive = 0;
    for (const ControlReply& r : pings) alive += r.ok;
    std::ostringstream os;
    os << "queue_depth=" << queue_.size() << " max_depth=" << max_depth_
       << " served=" << served_ << " jobs=" << iterations_.size()
       << " workers=" << alive << "/" << pings.size();
    return os.str();
  }
  if (command == "reset") {
    reset_workers();
    return "ok";
  }
  if (command == "health") {
    return health_json(job);
  }
  if (command == "stats") {
    return aggregated_stats_json();
  }
  if (command == "trace") {
    return merged_trace_json();
  }
  if (command == "shutdown") {
    fan_out("exit", "");
    stop_ = true;
    return "bye";
  }
  if (command == "save") {
    if (job.empty()) {
      status = 1;
      return "save expects '<job>'";
    }
    JobStats& js = job_stats_[job];
    const std::int64_t iteration = ++iterations_[job];
    js.iterations = iteration;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ControlReply> replies;
    {
      // Each save is the root of a fresh distributed trace: the root span
      // covers the whole fan-out, every worker chains under it.
      obs::ScopedTraceContext tctx(obs::Tracer::global().enabled()
                                       ? obs::Tracer::new_trace_id()
                                       : 0,
                                   0);
      obs::ScopedSpan root("coord.save:" + job);
      ++in_flight_;
      replies = fan_out("save", job + " " + std::to_string(iteration));
      --in_flight_;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const MergedBodies m = merge_bodies(replies);
    if (!m.ok) {
      // The collective tore: every survivor rolled its version back; reset
      // all fabric connections so the next collective starts clean.
      reset_workers();
      ++js.saves_failed;
      js.last_error = m.error;
      status = 1;
      return "save failed: " + m.error;
    }
    ++js.saves_ok;
    js.last_version = m.version;
    js.save_latency_s.observe(secs);
    history_[job][m.version] = iteration;
    std::ostringstream os;
    os << "version=" << m.version << " iteration=" << iteration << " "
       << m.shards;
    return os.str();
  }
  if (command == "load") {
    if (job.empty()) {
      status = 1;
      return "load expects '<job>'";
    }
    JobStats& js = job_stats_[job];
    // Survivors of an earlier failure — and everyone pooling a connection
    // to a since-replaced rank — must reconnect before the collective.
    reset_workers();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ControlReply> replies;
    {
      obs::ScopedTraceContext tctx(obs::Tracer::global().enabled()
                                       ? obs::Tracer::new_trace_id()
                                       : 0,
                                   0);
      obs::ScopedSpan root("coord.load:" + job);
      ++in_flight_;
      replies = fan_out("load", job);
      --in_flight_;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const MergedBodies m = merge_bodies(replies);
    if (!m.ok) {
      reset_workers();
      ++js.loads_failed;
      js.last_error = m.error;
      status = 1;
      return "load failed: " + m.error;
    }
    ++js.loads_ok;
    js.last_version = m.version;
    js.load_latency_s.observe(secs);
    std::ostringstream os;
    os << "version=" << m.version;
    const auto jit = history_.find(job);
    if (jit != history_.end()) {
      const auto vit = jit->second.find(m.version);
      if (vit != jit->second.end()) os << " iteration=" << vit->second;
    }
    os << " " << m.shards;
    if (!m.detail.empty()) os << " ; " << m.detail;
    return os.str();
  }
  status = 1;
  return "unknown command '" + command + "'";
}

void Coordinator::run() {
  while (!stop_) {
    if (!admit(net::Millis(250))) continue;
    net::Socket conn = std::move(queue_.front().conn);
    queue_.erase(queue_.begin());
    try {
      ControlFrame req = recv_control(conn, net::FrameType::kRequest,
                                      cfg_.opts.io_timeout, "coordinator");
      std::uint32_t status = 0;
      const std::string body =
          handle(req.header.key, string_of(req.payload), status);
      send_control(conn, net::FrameType::kResponse, "", status,
                   span_of(body), cfg_.opts.io_timeout, "coordinator");
      ++served_;
    } catch (const CheckFailure&) {
      continue;  // client died mid-exchange; coordinator survives
    }
  }
}

}  // namespace eccheck::svc
