// SSE2 kernels: 128-bit XOR. SSE2 has no byte shuffle, so the multiply
// entries point at the scalar split-table loops — selecting "sse2" still
// vectorizes XOR-reduce (the dominant primitive of bitmatrix schedules)
// while multiplies run the cached-table scalar path.
#include "gf/simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE2__)

#include <emmintrin.h>

#include "gf/kernels_x86.hpp"

namespace eccheck::gf::simd::detail {

void xor_into_sse2(std::byte* dst, const std::byte* src, std::size_t n) {
  auto* d = reinterpret_cast<unsigned char*>(dst);
  const auto* s = reinterpret_cast<const unsigned char*>(src);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
    __m128i a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i + 16));
    __m128i a2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i + 32));
    __m128i a3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i + 48));
    __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 16));
    __m128i b2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 32));
    __m128i b3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 48));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i),
                     _mm_xor_si128(a0, b0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i + 16),
                     _mm_xor_si128(a1, b1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i + 32),
                     _mm_xor_si128(a2, b2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i + 48),
                     _mm_xor_si128(a3, b3));
  }
  for (; i + 16 <= n; i += 16) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i), _mm_xor_si128(a, b));
  }
  if (i < n) xor_scalar(dst + i, src + i, n - i);
}

namespace {
const Kernels kSse2Kernels{Isa::kSse2, &xor_into_sse2, &mul_region_b_scalar,
                           &mul_region_w16_scalar};
}  // namespace

const Kernels* sse2_kernels() { return &kSse2Kernels; }

}  // namespace eccheck::gf::simd::detail

#else  // not x86 / no SSE2

namespace eccheck::gf::simd::detail {
const Kernels* sse2_kernels() { return nullptr; }
}  // namespace eccheck::gf::simd::detail

#endif
