#include "gf/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace eccheck::gf::simd {

namespace detail {

void xor_scalar(std::byte* dst, const std::byte* src, std::size_t n) {
  auto* d = reinterpret_cast<unsigned char*>(dst);
  const auto* s = reinterpret_cast<const unsigned char*>(src);
  std::size_t i = 0;
  // Word-at-a-time main loop; memcpy keeps it UB-free on unaligned tails.
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a, b;
    std::memcpy(&a, d + i, sizeof(a));
    std::memcpy(&b, s + i, sizeof(b));
    a ^= b;
    std::memcpy(d + i, &a, sizeof(a));
  }
  for (; i < n; ++i) d[i] ^= s[i];
}

void mul_region_b_scalar(const MulTables& t, const std::byte* src,
                         std::byte* dst, std::size_t n, bool accumulate) {
  const auto* s = reinterpret_cast<const unsigned char*>(src);
  auto* d = reinterpret_cast<unsigned char*>(dst);
  if (accumulate) {
    for (std::size_t i = 0; i < n; ++i) d[i] ^= t.byte_tab[s[i]];
  } else {
    for (std::size_t i = 0; i < n; ++i) d[i] = t.byte_tab[s[i]];
  }
}

void mul_region_w16_scalar(const MulTables& t, const std::byte* src,
                           std::byte* dst, std::size_t n, bool accumulate) {
  const auto* s = reinterpret_cast<const unsigned char*>(src);
  auto* d = reinterpret_cast<unsigned char*>(dst);
  for (std::size_t i = 0; i < n; i += 2) {
    const std::uint16_t v =
        static_cast<std::uint16_t>(t.lo16[s[i]] ^ t.hi16[s[i + 1]]);
    if (accumulate) {
      d[i] = static_cast<unsigned char>(d[i] ^ (v & 0xff));
      d[i + 1] = static_cast<unsigned char>(d[i + 1] ^ (v >> 8));
    } else {
      d[i] = static_cast<unsigned char>(v & 0xff);
      d[i + 1] = static_cast<unsigned char>(v >> 8);
    }
  }
}

namespace {
const Kernels kScalarKernels{Isa::kScalar, &xor_scalar, &mul_region_b_scalar,
                             &mul_region_w16_scalar};
}  // namespace

}  // namespace detail

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kSsse3: return "ssse3";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "unknown";
}

bool parse_isa(const std::string& name, Isa* out) {
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kSsse3, Isa::kAvx2,
                  Isa::kNeon}) {
    if (name == isa_name(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

namespace {

const Kernels* compiled_kernels(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return &detail::kScalarKernels;
    case Isa::kSse2: return detail::sse2_kernels();
    case Isa::kSsse3: return detail::ssse3_kernels();
    case Isa::kAvx2: return detail::avx2_kernels();
    case Isa::kNeon: return detail::neon_kernels();
  }
  return nullptr;
}

/// Does the host CPU execute this ISA? (The probe itself — cpuid on x86 —
/// runs inside __builtin_cpu_supports; results are cached by supported().)
bool cpu_has(Isa isa) {
  if (isa == Isa::kScalar) return true;
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case Isa::kSse2: return __builtin_cpu_supports("sse2") != 0;
    case Isa::kSsse3: return __builtin_cpu_supports("ssse3") != 0;
    case Isa::kAvx2: return __builtin_cpu_supports("avx2") != 0;
    default: return false;
  }
#elif defined(__aarch64__)
  return isa == Isa::kNeon;  // NEON is architecturally mandatory on aarch64
#else
  return false;
#endif
}

struct Probe {
  bool ok[5] = {};
  Probe() {
    for (int i = 0; i < 5; ++i) {
      const Isa isa = static_cast<Isa>(i);
      ok[i] = compiled_kernels(isa) != nullptr && cpu_has(isa);
    }
  }
};

const Probe& probe() {
  static const Probe p;
  return p;
}

}  // namespace

bool supported(Isa isa) {
  const int i = static_cast<int>(isa);
  return i >= 0 && i < 5 && probe().ok[i];
}

Isa best_supported() {
  // Enum order is preference order; NEON and the x86 tiers never coexist.
  for (int i = 4; i >= 0; --i)
    if (probe().ok[i]) return static_cast<Isa>(i);
  return Isa::kScalar;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (int i = 0; i < 5; ++i)
    if (probe().ok[i]) out.push_back(static_cast<Isa>(i));
  return out;
}

const Kernels& kernels_for(Isa isa) {
  if (supported(isa)) return *compiled_kernels(isa);
  return detail::kScalarKernels;
}

const Kernels& active() {
  static const Kernels* picked = [] {
    Isa pick = best_supported();
    if (const char* env = std::getenv("ECCHECK_SIMD"); env && *env) {
      Isa req;
      if (!parse_isa(env, &req)) {
        std::fprintf(stderr,
                     "eccheck: unknown ECCHECK_SIMD='%s' "
                     "(want scalar|sse2|ssse3|avx2|neon); using %s\n",
                     env, isa_name(pick));
      } else if (!supported(req)) {
        std::fprintf(stderr,
                     "eccheck: ECCHECK_SIMD=%s is not supported on this "
                     "host; using %s\n",
                     env, isa_name(pick));
      } else {
        pick = req;
      }
    }
    return &kernels_for(pick);
  }();
  return *picked;
}

const char* active_isa_name() { return isa_name(active().isa); }

std::string isa_span_name(const char* base) {
  return std::string(base) + "[" + active_isa_name() + "]";
}

}  // namespace eccheck::gf::simd
