// Runtime-dispatched XOR / GF(2^w) region kernels.
//
// The encode hot path is two byte-level primitives: dst ^= src (XOR-reduce,
// bitmatrix schedules) and dst (^)= c·src over packed GF(2^w) symbols
// (Cauchy-RS partial products). This layer provides vectorized
// implementations of both behind a one-time-probed dispatch table:
//
//   scalar — portable uint64/table loops, the bit-exact reference
//   sse2   — 128-bit XOR; multiplies stay on the scalar table loop
//            (no byte shuffle before SSSE3)
//   ssse3  — 128-bit XOR + 4-bit split-table multiply via pshufb
//            (GF-Complete / ISA-L style)
//   avx2   — the same with 256-bit registers
//   neon   — aarch64 vtbl/veor equivalents
//
// The active ISA is probed once per process (cpuid via
// __builtin_cpu_supports on x86, unconditional NEON on aarch64) and can be
// pinned for testing with ECCHECK_SIMD=scalar|sse2|ssse3|avx2|neon; an
// unknown or unsupported request warns once on stderr and falls back to the
// probed best. Every ISA is bit-exact with scalar — tests/test_gf_simd
// compares all dispatched paths differentially, including misaligned
// buffers and odd tails.
//
// Kernels are table-driven and field-agnostic: gf::Field builds a MulTables
// per (field, constant) — cached there, see Field::tables_for — and the
// kernels only index into it. Buffers may be arbitrarily aligned; vector
// bodies use unaligned loads with scalar tail cleanup (eccheck::Buffer's
// 64-byte alignment lets full-packet calls hit the aligned fast path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eccheck::gf::simd {

enum class Isa : int {
  kScalar = 0,
  kSse2 = 1,
  kSsse3 = 2,
  kAvx2 = 3,
  kNeon = 4,
};

/// Lookup tables for multiplication by one constant c in one field, laid out
/// for both the scalar and the nibble-shuffle kernels. Built by
/// gf::Field::tables_for (which caches them per (field, c)).
struct alignas(64) MulTables {
  // w=4/8 nibble split: product byte of b is lo_nib[b & 0xf] ^ hi_nib[b >> 4]
  // (for w=4 the tables carry the <<4 shift of the high nibble's product).
  std::uint8_t lo_nib[16];
  std::uint8_t hi_nib[16];
  // w=16 nibble split: with x = Σ_j n_j·16^j (n_j the j-th nibble of the
  // little-endian symbol), c·x = Σ_j c·(n_j << 4j); nib16_lo/hi hold the
  // low/high product bytes per nibble position.
  std::uint8_t nib16_lo[4][16];
  std::uint8_t nib16_hi[4][16];
  // Full-byte tables: the scalar kernels and all vector tails.
  std::uint8_t byte_tab[256];              // w<=8: product of a whole byte
  std::uint16_t lo16[256], hi16[256];      // w=16: c·b and c·(b<<8)
};

/// One ISA's kernel set. Function pointers, resolved once — no per-call
/// branching beyond the indirect call.
struct Kernels {
  Isa isa = Isa::kScalar;
  /// dst ^= src over n bytes. Any alignment, n >= 0, dst may equal src.
  void (*xor_into)(std::byte* dst, const std::byte* src, std::size_t n) =
      nullptr;
  /// Byte-symbol multiply (w=4 packs two symbols per byte, w=8 one):
  /// dst (^)= table-product of src over n bytes.
  void (*mul_region_b)(const MulTables& t, const std::byte* src,
                       std::byte* dst, std::size_t n, bool accumulate) =
      nullptr;
  /// w=16 multiply over packed little-endian symbols; n must be even.
  void (*mul_region_w16)(const MulTables& t, const std::byte* src,
                         std::byte* dst, std::size_t n, bool accumulate) =
      nullptr;
};

const char* isa_name(Isa isa);

/// Parse "scalar" / "sse2" / "ssse3" / "avx2" / "neon" (case-sensitive).
bool parse_isa(const std::string& name, Isa* out);

/// Compiled in AND usable on this host (probed once, cached).
bool supported(Isa isa);

/// The fastest supported ISA.
Isa best_supported();

/// All supported ISAs, ascending; always starts with kScalar.
std::vector<Isa> supported_isas();

/// Kernel set for one ISA; falls back to scalar if `isa` is unsupported
/// (callers that care should check supported() first — tests iterate
/// supported_isas()).
const Kernels& kernels_for(Isa isa);

/// The process-wide kernel set: best_supported(), overridable with the
/// ECCHECK_SIMD environment variable (read once, on first use).
const Kernels& active();

/// Name of the ISA behind active() — for tracer span labels and reports.
const char* active_isa_name();

/// "<base>[<isa>]" with the active ISA — the naming convention for
/// kernel-level tracer spans ("codec.encode[avx2]"). Call sites keep the
/// result in a function-local static so the hot path never rebuilds it.
std::string isa_span_name(const char* base);

namespace detail {
// Per-ISA vtables; null when the ISA is not compiled into this binary
// (wrong architecture or the compiler rejected the target flag). Host
// support is checked separately by supported().
const Kernels* sse2_kernels();
const Kernels* ssse3_kernels();
const Kernels* avx2_kernels();
const Kernels* neon_kernels();

// Scalar kernels, shared as tail cleanup by every vector implementation.
void xor_scalar(std::byte* dst, const std::byte* src, std::size_t n);
void mul_region_b_scalar(const MulTables& t, const std::byte* src,
                         std::byte* dst, std::size_t n, bool accumulate);
void mul_region_w16_scalar(const MulTables& t, const std::byte* src,
                           std::byte* dst, std::size_t n, bool accumulate);
}  // namespace detail

}  // namespace eccheck::gf::simd
