// AVX2 kernels: the SSSE3 split-table technique widened to 256-bit
// registers (vpshufb shuffles within each 128-bit lane, which is exactly
// what a broadcast 16-entry table wants). XOR gets an aligned fast path —
// eccheck::Buffer allocations are 64-byte aligned, so whole-packet calls
// peel at most a strip prefix and then run aligned loads/stores.
#include "gf/simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

#include <immintrin.h>

namespace eccheck::gf::simd::detail {
namespace {

inline __m256i loadu(const void* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void storeu(void* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline __m256i broadcast_table(const std::uint8_t* t16) {
  return _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t16)));
}

void xor_into_avx2(std::byte* dst, const std::byte* src, std::size_t n) {
  auto* d = reinterpret_cast<unsigned char*>(dst);
  const auto* s = reinterpret_cast<const unsigned char*>(src);
  std::size_t i = 0;
  const std::size_t dmis = reinterpret_cast<std::uintptr_t>(d) & 31;
  if (n >= 96 && dmis != 0 &&
      dmis == (reinterpret_cast<std::uintptr_t>(s) & 31)) {
    // Co-aligned buffers: peel to a 32-byte boundary, then run aligned.
    xor_scalar(dst, src, 32 - dmis);
    i = 32 - dmis;
  }
  if (((reinterpret_cast<std::uintptr_t>(d + i) |
        reinterpret_cast<std::uintptr_t>(s + i)) &
       31) == 0) {
    for (; i + 64 <= n; i += 64) {
      const __m256i* ds = reinterpret_cast<const __m256i*>(d + i);
      const __m256i* ss = reinterpret_cast<const __m256i*>(s + i);
      __m256i r0 = _mm256_xor_si256(_mm256_load_si256(ds),
                                    _mm256_load_si256(ss));
      __m256i r1 = _mm256_xor_si256(_mm256_load_si256(ds + 1),
                                    _mm256_load_si256(ss + 1));
      _mm256_store_si256(reinterpret_cast<__m256i*>(d + i), r0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(d + i) + 1, r1);
    }
  } else {
    for (; i + 64 <= n; i += 64) {
      __m256i r0 = _mm256_xor_si256(loadu(d + i), loadu(s + i));
      __m256i r1 = _mm256_xor_si256(loadu(d + i + 32), loadu(s + i + 32));
      storeu(d + i, r0);
      storeu(d + i + 32, r1);
    }
  }
  for (; i + 32 <= n; i += 32)
    storeu(d + i, _mm256_xor_si256(loadu(d + i), loadu(s + i)));
  if (i < n) xor_scalar(dst + i, src + i, n - i);
}

template <bool Acc>
void mul_b_impl(const MulTables& t, const std::byte* src, std::byte* dst,
                std::size_t n) {
  const __m256i lo_tab = broadcast_table(t.lo_nib);
  const __m256i hi_tab = broadcast_table(t.hi_nib);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = loadu(src + i);
    const __m256i lo = _mm256_and_si256(v, nib);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
    __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(lo_tab, lo),
                                 _mm256_shuffle_epi8(hi_tab, hi));
    if (Acc) p = _mm256_xor_si256(p, loadu(dst + i));
    storeu(dst + i, p);
  }
  if (i < n) mul_region_b_scalar(t, src + i, dst + i, n - i, Acc);
}

/// w=16, 64 bytes (32 symbols) per block. pack/unpack operate per 128-bit
/// lane, but since the deinterleave (pack) and reinterleave (unpack) use the
/// same lane geometry the output lands back in source order — see the r0/r1
/// comments.
template <bool Acc>
void mul_w16_impl(const MulTables& t, const std::byte* src, std::byte* dst,
                  std::size_t n) {
  const __m256i tl0 = broadcast_table(t.nib16_lo[0]);
  const __m256i tl1 = broadcast_table(t.nib16_lo[1]);
  const __m256i tl2 = broadcast_table(t.nib16_lo[2]);
  const __m256i tl3 = broadcast_table(t.nib16_lo[3]);
  const __m256i th0 = broadcast_table(t.nib16_hi[0]);
  const __m256i th1 = broadcast_table(t.nib16_hi[1]);
  const __m256i th2 = broadcast_table(t.nib16_hi[2]);
  const __m256i th3 = broadcast_table(t.nib16_hi[3]);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i lo8 = _mm256_set1_epi16(0x00ff);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a = loadu(src + i);       // symbols 0..15, interleaved
    const __m256i b = loadu(src + i + 32);  // symbols 16..31
    const __m256i lo = _mm256_packus_epi16(_mm256_and_si256(a, lo8),
                                           _mm256_and_si256(b, lo8));
    const __m256i hi = _mm256_packus_epi16(_mm256_srli_epi16(a, 8),
                                           _mm256_srli_epi16(b, 8));
    const __m256i n0 = _mm256_and_si256(lo, nib);
    const __m256i n1 = _mm256_and_si256(_mm256_srli_epi16(lo, 4), nib);
    const __m256i n2 = _mm256_and_si256(hi, nib);
    const __m256i n3 = _mm256_and_si256(_mm256_srli_epi16(hi, 4), nib);
    const __m256i plo = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_shuffle_epi8(tl0, n0),
                         _mm256_shuffle_epi8(tl1, n1)),
        _mm256_xor_si256(_mm256_shuffle_epi8(tl2, n2),
                         _mm256_shuffle_epi8(tl3, n3)));
    const __m256i phi = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_shuffle_epi8(th0, n0),
                         _mm256_shuffle_epi8(th1, n1)),
        _mm256_xor_si256(_mm256_shuffle_epi8(th2, n2),
                         _mm256_shuffle_epi8(th3, n3)));
    // unpacklo rebuilds symbols 0..7 (lane 0) and 8..15 (lane 1) = bytes
    // [i, i+32); unpackhi rebuilds 16..23 / 24..31 = bytes [i+32, i+64).
    __m256i r0 = _mm256_unpacklo_epi8(plo, phi);
    __m256i r1 = _mm256_unpackhi_epi8(plo, phi);
    if (Acc) {
      r0 = _mm256_xor_si256(r0, loadu(dst + i));
      r1 = _mm256_xor_si256(r1, loadu(dst + i + 32));
    }
    storeu(dst + i, r0);
    storeu(dst + i + 32, r1);
  }
  if (i < n) mul_region_w16_scalar(t, src + i, dst + i, n - i, Acc);
}

void mul_b(const MulTables& t, const std::byte* src, std::byte* dst,
           std::size_t n, bool accumulate) {
  if (accumulate)
    mul_b_impl<true>(t, src, dst, n);
  else
    mul_b_impl<false>(t, src, dst, n);
}

void mul_w16(const MulTables& t, const std::byte* src, std::byte* dst,
             std::size_t n, bool accumulate) {
  if (accumulate)
    mul_w16_impl<true>(t, src, dst, n);
  else
    mul_w16_impl<false>(t, src, dst, n);
}

const Kernels kAvx2Kernels{Isa::kAvx2, &xor_into_avx2, &mul_b, &mul_w16};

}  // namespace

const Kernels* avx2_kernels() { return &kAvx2Kernels; }

}  // namespace eccheck::gf::simd::detail

#else  // not x86 / no AVX2

namespace eccheck::gf::simd::detail {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace eccheck::gf::simd::detail

#endif
