// Internal cross-TU declarations for the x86 kernel files. Each ISA lives in
// its own translation unit compiled with exactly that ISA's target flag (see
// src/gf/CMakeLists.txt), so no vector instruction can leak into code that
// runs before dispatch; this header only carries the symbols they share.
#pragma once

#include <cstddef>

namespace eccheck::gf::simd::detail {

// Defined in kernels_sse2.cpp (when compiled for x86). SSSE3 reuses it for
// XOR — pshufb adds nothing to a pure XOR loop.
void xor_into_sse2(std::byte* dst, const std::byte* src, std::size_t n);

}  // namespace eccheck::gf::simd::detail
