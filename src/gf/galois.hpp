// GF(2^w) finite-field arithmetic for w ∈ {4, 8, 16}.
//
// This is the arithmetic substrate for Cauchy Reed-Solomon coding (paper
// §IV-A). Scalars are held in uint32_t regardless of w; region kernels
// operate on packed symbols in byte buffers:
//   w=4  — two symbols per byte (low nibble first)
//   w=8  — one symbol per byte
//   w=16 — one little-endian symbol per 2 bytes (region length must be even)
//
// Multiplication by a constant is GF(2)-linear in the operand bits, so the
// region kernels are table lookups: each (field, constant) gets a
// simd::MulTables (byte-indexed full tables for the scalar path, 4-bit
// split tables for the pshufb/vtbl paths), built once and cached in a
// lock-free once-init store — repeated encodes never rebuild tables. The
// actual loops live in gf/simd.* behind a runtime-probed ISA dispatch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "gf/simd.hpp"

namespace eccheck::gf {

/// A Galois field GF(2^w). Cheap to copy handles onto a shared table set
/// (copies share the multiplier-table cache); use Field::get(w) to obtain
/// the process-wide instance.
class Field {
 public:
  static const Field& get(int w);

  int w() const { return w_; }
  std::uint32_t order() const { return order_; }          ///< 2^w
  std::uint32_t max_element() const { return order_ - 1; }

  std::uint32_t add(std::uint32_t a, std::uint32_t b) const { return a ^ b; }
  std::uint32_t sub(std::uint32_t a, std::uint32_t b) const { return a ^ b; }

  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const {
    if (a == 0 || b == 0) return 0;
    std::uint32_t s = log_[a] + log_[b];
    if (s >= order_ - 1) s -= order_ - 1;
    return exp_[s];
  }

  /// Multiplicative inverse; a must be non-zero.
  std::uint32_t inv(std::uint32_t a) const {
    ECC_CHECK(a != 0);
    return exp_[(order_ - 1 - log_[a]) % (order_ - 1)];
  }

  std::uint32_t div(std::uint32_t a, std::uint32_t b) const {
    ECC_CHECK(b != 0);
    if (a == 0) return 0;
    std::uint32_t s = log_[a] + (order_ - 1) - log_[b];
    if (s >= order_ - 1) s -= order_ - 1;
    return exp_[s];
  }

  std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

  /// Reference bitwise ("Russian peasant") multiply — used by tests to
  /// validate the log/exp tables and by bitmatrix construction.
  std::uint32_t mul_slow(std::uint32_t a, std::uint32_t b) const;

  /// dst = c * src (accumulate=false) or dst ^= c * src (accumulate=true),
  /// where buffers hold packed GF(2^w) symbols. Runs on the process-wide
  /// dispatched kernels (simd::active()).
  void mul_region(std::uint32_t c, ByteSpan src, MutableByteSpan dst,
                  bool accumulate) const;

  /// Same, on an explicit kernel set — differential tests and per-ISA
  /// benchmarks pin the implementation with simd::kernels_for(isa).
  void mul_region(std::uint32_t c, ByteSpan src, MutableByteSpan dst,
                  bool accumulate, const simd::Kernels& kernels) const;

  /// The cached multiplier tables for constant c (built on first use,
  /// lock-free on the hot path, shared by all copies of this Field).
  const simd::MulTables& tables_for(std::uint32_t c) const;

  /// Number of bytes per packed symbol boundary: region lengths must be a
  /// multiple of this (1 for w=4/8, 2 for w=16).
  std::size_t region_granularity() const { return w_ == 16 ? 2 : 1; }

  std::uint32_t primitive_poly() const { return poly_; }

 private:
  explicit Field(int w);

  simd::MulTables build_tables(std::uint32_t c) const;

  struct TableCache;

  int w_;
  std::uint32_t order_;
  std::uint32_t poly_;
  std::vector<std::uint32_t> log_;   // log_[0] unused
  std::vector<std::uint32_t> exp_;   // exp_[i] = alpha^i, i in [0, order-1)
  std::shared_ptr<TableCache> cache_;  // per-constant multiplier tables
};

}  // namespace eccheck::gf
