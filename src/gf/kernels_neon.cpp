// NEON (aarch64) kernels. vqtbl1q_u8 is pshufb's cousin (and out-of-range
// indices already yield zero, so no mask-and-lookup dance is needed for the
// nibble tables); vld2q/vst2q de/re-interleave the w=16 lo/hi bytes for
// free, which x86 has to emulate with pack/unpack.
#include "gf/simd.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace eccheck::gf::simd::detail {
namespace {

void xor_into_neon(std::byte* dst, const std::byte* src, std::size_t n) {
  auto* d = reinterpret_cast<unsigned char*>(dst);
  const auto* s = reinterpret_cast<const unsigned char*>(src);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    uint8x16x4_t a = vld1q_u8_x4(d + i);
    uint8x16x4_t b = vld1q_u8_x4(s + i);
    a.val[0] = veorq_u8(a.val[0], b.val[0]);
    a.val[1] = veorq_u8(a.val[1], b.val[1]);
    a.val[2] = veorq_u8(a.val[2], b.val[2]);
    a.val[3] = veorq_u8(a.val[3], b.val[3]);
    vst1q_u8_x4(d + i, a);
  }
  for (; i + 16 <= n; i += 16)
    vst1q_u8(d + i, veorq_u8(vld1q_u8(d + i), vld1q_u8(s + i)));
  if (i < n) xor_scalar(dst + i, src + i, n - i);
}

template <bool Acc>
void mul_b_impl(const MulTables& t, const std::byte* src, std::byte* dst,
                std::size_t n) {
  const uint8x16_t lo_tab = vld1q_u8(t.lo_nib);
  const uint8x16_t hi_tab = vld1q_u8(t.hi_nib);
  const uint8x16_t nib = vdupq_n_u8(0x0f);
  auto* d = reinterpret_cast<unsigned char*>(dst);
  const auto* s = reinterpret_cast<const unsigned char*>(src);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(s + i);
    const uint8x16_t lo = vandq_u8(v, nib);
    const uint8x16_t hi = vshrq_n_u8(v, 4);
    uint8x16_t p = veorq_u8(vqtbl1q_u8(lo_tab, lo), vqtbl1q_u8(hi_tab, hi));
    if (Acc) p = veorq_u8(p, vld1q_u8(d + i));
    vst1q_u8(d + i, p);
  }
  if (i < n) mul_region_b_scalar(t, src + i, dst + i, n - i, Acc);
}

template <bool Acc>
void mul_w16_impl(const MulTables& t, const std::byte* src, std::byte* dst,
                  std::size_t n) {
  const uint8x16_t tl0 = vld1q_u8(t.nib16_lo[0]);
  const uint8x16_t tl1 = vld1q_u8(t.nib16_lo[1]);
  const uint8x16_t tl2 = vld1q_u8(t.nib16_lo[2]);
  const uint8x16_t tl3 = vld1q_u8(t.nib16_lo[3]);
  const uint8x16_t th0 = vld1q_u8(t.nib16_hi[0]);
  const uint8x16_t th1 = vld1q_u8(t.nib16_hi[1]);
  const uint8x16_t th2 = vld1q_u8(t.nib16_hi[2]);
  const uint8x16_t th3 = vld1q_u8(t.nib16_hi[3]);
  const uint8x16_t nib = vdupq_n_u8(0x0f);
  auto* d = reinterpret_cast<unsigned char*>(dst);
  const auto* s = reinterpret_cast<const unsigned char*>(src);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    // De-interleaved load: val[0] = low bytes of 16 symbols, val[1] = high.
    const uint8x16x2_t v = vld2q_u8(s + i);
    const uint8x16_t n0 = vandq_u8(v.val[0], nib);
    const uint8x16_t n1 = vshrq_n_u8(v.val[0], 4);
    const uint8x16_t n2 = vandq_u8(v.val[1], nib);
    const uint8x16_t n3 = vshrq_n_u8(v.val[1], 4);
    uint8x16x2_t r;
    r.val[0] = veorq_u8(veorq_u8(vqtbl1q_u8(tl0, n0), vqtbl1q_u8(tl1, n1)),
                        veorq_u8(vqtbl1q_u8(tl2, n2), vqtbl1q_u8(tl3, n3)));
    r.val[1] = veorq_u8(veorq_u8(vqtbl1q_u8(th0, n0), vqtbl1q_u8(th1, n1)),
                        veorq_u8(vqtbl1q_u8(th2, n2), vqtbl1q_u8(th3, n3)));
    if (Acc) {
      const uint8x16x2_t old = vld2q_u8(d + i);
      r.val[0] = veorq_u8(r.val[0], old.val[0]);
      r.val[1] = veorq_u8(r.val[1], old.val[1]);
    }
    vst2q_u8(d + i, r);  // re-interleaves lo/hi back to symbol order
  }
  if (i < n) mul_region_w16_scalar(t, src + i, dst + i, n - i, Acc);
}

void mul_b(const MulTables& t, const std::byte* src, std::byte* dst,
           std::size_t n, bool accumulate) {
  if (accumulate)
    mul_b_impl<true>(t, src, dst, n);
  else
    mul_b_impl<false>(t, src, dst, n);
}

void mul_w16(const MulTables& t, const std::byte* src, std::byte* dst,
             std::size_t n, bool accumulate) {
  if (accumulate)
    mul_w16_impl<true>(t, src, dst, n);
  else
    mul_w16_impl<false>(t, src, dst, n);
}

const Kernels kNeonKernels{Isa::kNeon, &xor_into_neon, &mul_b, &mul_w16};

}  // namespace

const Kernels* neon_kernels() { return &kNeonKernels; }

}  // namespace eccheck::gf::simd::detail

#else  // not aarch64

namespace eccheck::gf::simd::detail {
const Kernels* neon_kernels() { return nullptr; }
}  // namespace eccheck::gf::simd::detail

#endif
