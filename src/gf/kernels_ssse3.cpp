// SSSE3 kernels: 4-bit split-table GF multiply via pshufb (the
// GF-Complete / ISA-L technique). A 16-entry nibble-product table lives in
// one xmm register; _mm_shuffle_epi8 looks up 16 products per instruction.
#include "gf/simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSSE3__)

#include <tmmintrin.h>

#include "gf/kernels_x86.hpp"

namespace eccheck::gf::simd::detail {
namespace {

inline __m128i loadu(const void* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void storeu(void* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

/// Byte-symbol multiply (w=4/8): per 16-byte block, product =
/// lo_tab[b & 0xf] ^ hi_tab[b >> 4].
template <bool Acc>
void mul_b_impl(const MulTables& t, const std::byte* src, std::byte* dst,
                std::size_t n) {
  const __m128i lo_tab = loadu(t.lo_nib);
  const __m128i hi_tab = loadu(t.hi_nib);
  const __m128i nib = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = loadu(src + i);
    const __m128i lo = _mm_and_si128(v, nib);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), nib);
    __m128i p = _mm_xor_si128(_mm_shuffle_epi8(lo_tab, lo),
                              _mm_shuffle_epi8(hi_tab, hi));
    if (Acc) p = _mm_xor_si128(p, loadu(dst + i));
    storeu(dst + i, p);
  }
  if (i < n) mul_region_b_scalar(t, src + i, dst + i, n - i, Acc);
}

/// w=16 multiply over interleaved little-endian symbols, 32 bytes
/// (16 symbols) per block: deinterleave lo/hi product-input bytes with
/// pack, shuffle 4 nibble positions, reinterleave with unpack.
template <bool Acc>
void mul_w16_impl(const MulTables& t, const std::byte* src, std::byte* dst,
                  std::size_t n) {
  const __m128i tl0 = loadu(t.nib16_lo[0]), tl1 = loadu(t.nib16_lo[1]);
  const __m128i tl2 = loadu(t.nib16_lo[2]), tl3 = loadu(t.nib16_lo[3]);
  const __m128i th0 = loadu(t.nib16_hi[0]), th1 = loadu(t.nib16_hi[1]);
  const __m128i th2 = loadu(t.nib16_hi[2]), th3 = loadu(t.nib16_hi[3]);
  const __m128i nib = _mm_set1_epi8(0x0f);
  const __m128i lo8 = _mm_set1_epi16(0x00ff);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i a = loadu(src + i);       // symbols 0..7, interleaved
    const __m128i b = loadu(src + i + 16);  // symbols 8..15
    // lo[j] = low byte of symbol j, hi[j] = high byte.
    const __m128i lo = _mm_packus_epi16(_mm_and_si128(a, lo8),
                                        _mm_and_si128(b, lo8));
    const __m128i hi =
        _mm_packus_epi16(_mm_srli_epi16(a, 8), _mm_srli_epi16(b, 8));
    const __m128i n0 = _mm_and_si128(lo, nib);
    const __m128i n1 = _mm_and_si128(_mm_srli_epi16(lo, 4), nib);
    const __m128i n2 = _mm_and_si128(hi, nib);
    const __m128i n3 = _mm_and_si128(_mm_srli_epi16(hi, 4), nib);
    __m128i plo = _mm_xor_si128(
        _mm_xor_si128(_mm_shuffle_epi8(tl0, n0), _mm_shuffle_epi8(tl1, n1)),
        _mm_xor_si128(_mm_shuffle_epi8(tl2, n2), _mm_shuffle_epi8(tl3, n3)));
    __m128i phi = _mm_xor_si128(
        _mm_xor_si128(_mm_shuffle_epi8(th0, n0), _mm_shuffle_epi8(th1, n1)),
        _mm_xor_si128(_mm_shuffle_epi8(th2, n2), _mm_shuffle_epi8(th3, n3)));
    __m128i r0 = _mm_unpacklo_epi8(plo, phi);  // products of symbols 0..7
    __m128i r1 = _mm_unpackhi_epi8(plo, phi);  // products of symbols 8..15
    if (Acc) {
      r0 = _mm_xor_si128(r0, loadu(dst + i));
      r1 = _mm_xor_si128(r1, loadu(dst + i + 16));
    }
    storeu(dst + i, r0);
    storeu(dst + i + 16, r1);
  }
  if (i < n) mul_region_w16_scalar(t, src + i, dst + i, n - i, Acc);
}

void mul_b(const MulTables& t, const std::byte* src, std::byte* dst,
           std::size_t n, bool accumulate) {
  if (accumulate)
    mul_b_impl<true>(t, src, dst, n);
  else
    mul_b_impl<false>(t, src, dst, n);
}

void mul_w16(const MulTables& t, const std::byte* src, std::byte* dst,
             std::size_t n, bool accumulate) {
  if (accumulate)
    mul_w16_impl<true>(t, src, dst, n);
  else
    mul_w16_impl<false>(t, src, dst, n);
}

const Kernels kSsse3Kernels{Isa::kSsse3, &xor_into_sse2, &mul_b, &mul_w16};

}  // namespace

const Kernels* ssse3_kernels() { return &kSsse3Kernels; }

}  // namespace eccheck::gf::simd::detail

#else  // not x86 / no SSSE3

namespace eccheck::gf::simd::detail {
const Kernels* ssse3_kernels() { return nullptr; }
}  // namespace eccheck::gf::simd::detail

#endif
