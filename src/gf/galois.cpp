#include "gf/galois.hpp"

#include <mutex>

namespace eccheck::gf {
namespace {

std::uint32_t poly_for(int w) {
  switch (w) {
    case 4:
      return 0x13;  // x^4 + x + 1
    case 8:
      return 0x11d;  // x^8 + x^4 + x^3 + x^2 + 1
    case 16:
      return 0x1100b;  // x^16 + x^12 + x^3 + x + 1
    default:
      ECC_CHECK_MSG(false, "unsupported GF width w=" << w);
  }
  return 0;
}

}  // namespace

Field::Field(int w)
    : w_(w), order_(1u << w), poly_(poly_for(w)), log_(order_), exp_(order_) {
  // Generate with the primitive element alpha = 2.
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < order_ - 1; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & order_) x ^= poly_;
  }
  ECC_CHECK_MSG(x == 1, "polynomial is not primitive for w=" << w);
}

const Field& Field::get(int w) {
  static std::once_flag flags[3];
  static const Field* fields[3] = {nullptr, nullptr, nullptr};
  int idx = (w == 4) ? 0 : (w == 8) ? 1 : (w == 16) ? 2 : -1;
  ECC_CHECK_MSG(idx >= 0, "unsupported GF width w=" << w);
  std::call_once(flags[idx], [&] { fields[idx] = new Field(w); });
  return *fields[idx];
}

std::uint32_t Field::pow(std::uint32_t a, std::uint64_t e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  std::uint64_t l = (static_cast<std::uint64_t>(log_[a]) * e) % (order_ - 1);
  return exp_[l];
}

std::uint32_t Field::mul_slow(std::uint32_t a, std::uint32_t b) const {
  std::uint32_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if (a & order_) a ^= poly_;
  }
  return r;
}

void Field::mul_region(std::uint32_t c, ByteSpan src, MutableByteSpan dst,
                       bool accumulate) const {
  ECC_CHECK(src.size() == dst.size());
  ECC_CHECK(src.size() % region_granularity() == 0);
  const std::size_t n = src.size();
  if (n == 0) return;

  if (c == 0) {
    if (!accumulate) std::memset(dst.data(), 0, n);
    return;
  }
  if (c == 1) {
    if (accumulate)
      xor_into(dst, src);
    else
      std::memcpy(dst.data(), src.data(), n);
    return;
  }

  const auto* s = reinterpret_cast<const unsigned char*>(src.data());
  auto* d = reinterpret_cast<unsigned char*>(dst.data());

  if (w_ <= 8) {
    // One 256-entry table covers a whole byte (two nibbles for w=4).
    std::array<unsigned char, 256> tab;
    if (w_ == 8) {
      for (std::uint32_t b = 0; b < 256; ++b)
        tab[b] = static_cast<unsigned char>(mul(c, b));
    } else {  // w == 4
      for (std::uint32_t b = 0; b < 256; ++b) {
        std::uint32_t lo = mul(c, b & 0xf);
        std::uint32_t hi = mul(c, b >> 4);
        tab[b] = static_cast<unsigned char>((hi << 4) | lo);
      }
    }
    if (accumulate) {
      for (std::size_t i = 0; i < n; ++i) d[i] ^= tab[s[i]];
    } else {
      for (std::size_t i = 0; i < n; ++i) d[i] = tab[s[i]];
    }
    return;
  }

  // w == 16: c*(hi<<8 ^ lo) = c*(hi<<8) ^ c*lo, two 256-entry uint16 tables.
  std::array<std::uint16_t, 256> lo_tab, hi_tab;
  for (std::uint32_t b = 0; b < 256; ++b) {
    lo_tab[b] = static_cast<std::uint16_t>(mul(c, b));
    hi_tab[b] = static_cast<std::uint16_t>(mul(c, b << 8));
  }
  for (std::size_t i = 0; i < n; i += 2) {
    std::uint16_t v = static_cast<std::uint16_t>(
        lo_tab[s[i]] ^ hi_tab[s[i + 1]]);
    if (accumulate) {
      d[i] = static_cast<unsigned char>(d[i] ^ (v & 0xff));
      d[i + 1] = static_cast<unsigned char>(d[i + 1] ^ (v >> 8));
    } else {
      d[i] = static_cast<unsigned char>(v & 0xff);
      d[i + 1] = static_cast<unsigned char>(v >> 8);
    }
  }
}

}  // namespace eccheck::gf
