#include "gf/galois.hpp"

#include <atomic>
#include <mutex>

namespace eccheck::gf {
namespace {

std::uint32_t poly_for(int w) {
  switch (w) {
    case 4:
      return 0x13;  // x^4 + x + 1
    case 8:
      return 0x11d;  // x^8 + x^4 + x^3 + x^2 + 1
    case 16:
      return 0x1100b;  // x^16 + x^12 + x^3 + x + 1
    default:
      ECC_CHECK_MSG(false, "unsupported GF width w=" << w);
  }
  return 0;
}

}  // namespace

/// One atomic slot per constant; a slot is filled at most once (losers of
/// the publish race delete their copy), so readers pay one acquire load.
struct Field::TableCache {
  explicit TableCache(std::size_t n) : slots(n) {}
  ~TableCache() {
    for (auto& s : slots) delete s.load(std::memory_order_relaxed);
  }
  std::vector<std::atomic<const simd::MulTables*>> slots;
};

Field::Field(int w)
    : w_(w), order_(1u << w), poly_(poly_for(w)), log_(order_), exp_(order_),
      cache_(std::make_shared<TableCache>(order_)) {
  // Generate with the primitive element alpha = 2.
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < order_ - 1; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & order_) x ^= poly_;
  }
  ECC_CHECK_MSG(x == 1, "polynomial is not primitive for w=" << w);
}

const Field& Field::get(int w) {
  static std::once_flag flags[3];
  static const Field* fields[3] = {nullptr, nullptr, nullptr};
  int idx = (w == 4) ? 0 : (w == 8) ? 1 : (w == 16) ? 2 : -1;
  ECC_CHECK_MSG(idx >= 0, "unsupported GF width w=" << w);
  std::call_once(flags[idx], [&] { fields[idx] = new Field(w); });
  return *fields[idx];
}

std::uint32_t Field::pow(std::uint32_t a, std::uint64_t e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  std::uint64_t l = (static_cast<std::uint64_t>(log_[a]) * e) % (order_ - 1);
  return exp_[l];
}

std::uint32_t Field::mul_slow(std::uint32_t a, std::uint32_t b) const {
  std::uint32_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if (a & order_) a ^= poly_;
  }
  return r;
}

simd::MulTables Field::build_tables(std::uint32_t c) const {
  simd::MulTables t{};
  if (w_ <= 8) {
    for (std::uint32_t v = 0; v < 16; ++v) {
      if (w_ == 4) {
        // Two independent symbols per byte: the high-nibble table carries
        // the <<4 repack so the kernels just XOR the two lookups.
        t.lo_nib[v] = static_cast<std::uint8_t>(mul(c, v));
        t.hi_nib[v] = static_cast<std::uint8_t>(mul(c, v) << 4);
      } else {
        t.lo_nib[v] = static_cast<std::uint8_t>(mul(c, v));
        t.hi_nib[v] = static_cast<std::uint8_t>(mul(c, v << 4));
      }
    }
    for (std::uint32_t b = 0; b < 256; ++b) {
      t.byte_tab[b] =
          static_cast<std::uint8_t>(t.lo_nib[b & 0xf] ^ t.hi_nib[b >> 4]);
    }
  } else {  // w == 16
    for (int j = 0; j < 4; ++j) {
      for (std::uint32_t v = 0; v < 16; ++v) {
        const std::uint32_t p = mul(c, v << (4 * j));
        t.nib16_lo[j][v] = static_cast<std::uint8_t>(p & 0xff);
        t.nib16_hi[j][v] = static_cast<std::uint8_t>(p >> 8);
      }
    }
    for (std::uint32_t b = 0; b < 256; ++b) {
      t.lo16[b] = static_cast<std::uint16_t>(mul(c, b));
      t.hi16[b] = static_cast<std::uint16_t>(mul(c, b << 8));
    }
  }
  return t;
}

const simd::MulTables& Field::tables_for(std::uint32_t c) const {
  ECC_CHECK_MSG(c < order_, "constant " << c << " outside GF(2^" << w_ << ")");
  auto& slot = cache_->slots[c];
  if (const simd::MulTables* t = slot.load(std::memory_order_acquire))
    return *t;
  auto* fresh = new simd::MulTables(build_tables(c));
  const simd::MulTables* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, fresh,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    delete fresh;  // lost the publish race; use the winner's tables
    return *expected;
  }
  return *fresh;
}

void Field::mul_region(std::uint32_t c, ByteSpan src, MutableByteSpan dst,
                       bool accumulate) const {
  mul_region(c, src, dst, accumulate, simd::active());
}

void Field::mul_region(std::uint32_t c, ByteSpan src, MutableByteSpan dst,
                       bool accumulate, const simd::Kernels& kernels) const {
  ECC_CHECK(src.size() == dst.size());
  ECC_CHECK(src.size() % region_granularity() == 0);
  const std::size_t n = src.size();
  if (n == 0) return;

  if (c == 0) {
    if (!accumulate) std::memset(dst.data(), 0, n);
    return;
  }
  if (c == 1) {
    if (accumulate)
      kernels.xor_into(dst.data(), src.data(), n);
    else
      std::memcpy(dst.data(), src.data(), n);
    return;
  }

  const simd::MulTables& t = tables_for(c);
  if (w_ == 16)
    kernels.mul_region_w16(t, src.data(), dst.data(), n, accumulate);
  else
    kernels.mul_region_b(t, src.data(), dst.data(), n, accumulate);
}

}  // namespace eccheck::gf
