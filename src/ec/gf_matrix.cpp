#include "ec/gf_matrix.hpp"

namespace eccheck::ec {

GfMatrix GfMatrix::identity(int n, const gf::Field& field) {
  GfMatrix m(n, n, field);
  for (int i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

GfMatrix GfMatrix::mul(const GfMatrix& other) const {
  ECC_CHECK(cols_ == other.rows_);
  GfMatrix out(rows_, other.cols_, *field_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < other.cols_; ++j) {
      std::uint32_t acc = 0;
      for (int t = 0; t < cols_; ++t)
        acc ^= field_->mul(at(i, t), other.at(t, j));
      out.set(i, j, acc);
    }
  }
  return out;
}

bool GfMatrix::try_inverse(GfMatrix* out) const {
  ECC_CHECK(rows_ == cols_);
  const int n = rows_;
  GfMatrix a = *this;
  GfMatrix inv = identity(n, *field_);

  for (int col = 0; col < n; ++col) {
    // Find a pivot.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (a.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return false;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a.data_[static_cast<std::size_t>(pivot) * n + c],
                  a.data_[static_cast<std::size_t>(col) * n + c]);
        std::swap(inv.data_[static_cast<std::size_t>(pivot) * n + c],
                  inv.data_[static_cast<std::size_t>(col) * n + c]);
      }
    }
    // Scale pivot row to 1.
    std::uint32_t piv_inv = field_->inv(a.at(col, col));
    for (int c = 0; c < n; ++c) {
      a.set(col, c, field_->mul(a.at(col, c), piv_inv));
      inv.set(col, c, field_->mul(inv.at(col, c), piv_inv));
    }
    // Eliminate the column everywhere else.
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      std::uint32_t f = a.at(r, col);
      if (f == 0) continue;
      for (int c = 0; c < n; ++c) {
        a.set(r, c, a.at(r, c) ^ field_->mul(f, a.at(col, c)));
        inv.set(r, c, inv.at(r, c) ^ field_->mul(f, inv.at(col, c)));
      }
    }
  }
  *out = std::move(inv);
  return true;
}

GfMatrix GfMatrix::inverse() const {
  GfMatrix out;
  ECC_CHECK_MSG(try_inverse(&out), "matrix is singular");
  return out;
}

bool GfMatrix::invertible() const {
  GfMatrix out;
  return try_inverse(&out);
}

GfMatrix GfMatrix::select_rows(const std::vector<int>& row_indices) const {
  GfMatrix out(static_cast<int>(row_indices.size()), cols_, *field_);
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    int r = row_indices[i];
    ECC_CHECK(r >= 0 && r < rows_);
    for (int c = 0; c < cols_; ++c)
      out.set(static_cast<int>(i), c, at(r, c));
  }
  return out;
}

}  // namespace eccheck::ec
