#include "ec/bitmatrix.hpp"

#include "gf/simd.hpp"

namespace eccheck::ec {

int BitMatrix::ones() const {
  int n = 0;
  for (auto b : bits_) n += b;
  return n;
}

BitMatrix expand_to_bitmatrix(const GfMatrix& m) {
  const auto& f = m.field();
  const int w = f.w();
  BitMatrix bm(m.rows() * w, m.cols() * w);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      std::uint32_t e = m.at(r, c);
      if (e == 0) continue;
      // Column j of B(e) is the bit pattern of e * 2^j.
      for (int j = 0; j < w; ++j) {
        std::uint32_t v = f.mul(e, 1u << j);
        for (int i = 0; i < w; ++i) {
          if (v & (1u << i)) bm.set(r * w + i, c * w + j, true);
        }
      }
    }
  }
  return bm;
}

std::vector<XorOp> make_xor_schedule(const BitMatrix& bm, int in_packets,
                                     int out_packets, int w) {
  ECC_CHECK(bm.rows() == out_packets * w);
  ECC_CHECK(bm.cols() == in_packets * w);
  std::vector<XorOp> ops;
  ops.reserve(static_cast<std::size_t>(bm.ones()));
  for (int o = 0; o < out_packets; ++o) {
    for (int i = 0; i < w; ++i) {
      bool first = true;
      for (int p = 0; p < in_packets; ++p) {
        for (int j = 0; j < w; ++j) {
          if (!bm.get(o * w + i, p * w + j)) continue;
          ops.push_back(XorOp{p, j, o, i, !first});
          first = false;
        }
      }
      ECC_CHECK_MSG(!first, "bitmatrix has an all-zero row — code broken");
    }
  }
  return ops;
}

void run_xor_schedule(const std::vector<XorOp>& schedule, int w,
                      std::span<const ByteSpan> in,
                      std::span<MutableByteSpan> out) {
  ECC_CHECK(!in.empty());
  const std::size_t packet = in[0].size();
  ECC_CHECK_MSG(packet % (static_cast<std::size_t>(w) * 8) == 0,
                "packet size " << packet << " not divisible by w*8");
  const std::size_t strip = packet / static_cast<std::size_t>(w);
  for (const auto& s : in) ECC_CHECK(s.size() == packet);
  for (const auto& s : out) ECC_CHECK(s.size() == packet);

  // Hoist the dispatched kernel out of the op loop: one indirect call per
  // strip, no per-op dispatch load or size re-check.
  const gf::simd::Kernels& kernels = gf::simd::active();
  for (const XorOp& op : schedule) {
    ByteSpan src = in[op.src_packet].subspan(
        static_cast<std::size_t>(op.src_strip) * strip, strip);
    MutableByteSpan dst = out[op.dst_packet].subspan(
        static_cast<std::size_t>(op.dst_strip) * strip, strip);
    if (op.accumulate) {
      kernels.xor_into(dst.data(), src.data(), strip);
    } else {
      std::memcpy(dst.data(), src.data(), strip);
    }
  }
}

}  // namespace eccheck::ec
