// Thread-pool-accelerated coding (paper §IV-A "Thread Pool Technique").
//
// An encoding task over a contiguous buffer is split into fixed-size
// sub-slices executed concurrently on a runtime::ThreadPool — GF(2^w)
// region arithmetic is embarrassingly parallel across disjoint slices.
// Results are bit-identical to the serial CrsCodec paths (asserted by
// tests); only the kGfTable kernel is sliced — the XOR-bitmatrix layout
// interleaves strips across the whole packet, so it falls back to serial.
#pragma once

#include <functional>

#include "ec/crs_codec.hpp"
#include "runtime/thread_pool.hpp"

namespace eccheck::ec {

class ParallelCodec {
 public:
  /// `slice_bytes` is rounded up to the codec's symbol granularity and the
  /// Buffer alignment (64B), keeping slice boundaries of aligned packets on
  /// the vector kernels' aligned fast path.
  ParallelCodec(const CrsCodec& codec, runtime::ThreadPool& pool,
                std::size_t slice_bytes = 256 * 1024);

  const CrsCodec& codec() const { return *codec_; }

  /// Full-stripe encode; equivalent to CrsCodec::encode.
  void encode(std::span<const ByteSpan> data,
              std::span<MutableByteSpan> parity) const;

  /// One generator row from all k data packets: acc = Σ_j E[row][j]·data[j].
  void encode_row(int row, std::span<const ByteSpan> data,
                  MutableByteSpan acc) const;

  /// Sliced single partial product: dst (^)= E[row][data_index]·src.
  /// Equivalent to CrsCodec::encode_partial; the per-participant unit of the
  /// pipelined encode stage (§IV-C).
  void encode_partial(int row, int data_index, ByteSpan src,
                      MutableByteSpan dst, bool accumulate) const;

  /// out[i] = Σ_j M[i][j]·in[j]; equivalent to CrsCodec::apply_matrix.
  void apply_matrix(const GfMatrix& m, std::span<const ByteSpan> in,
                    std::span<MutableByteSpan> out) const;

  /// Sliced sparse row patch; equivalent to CrsCodec::update_row
  /// (target ^= E[row][data_index]·Δ over the dirty window at `offset`).
  void update_row(int row, int data_index, std::size_t offset, ByteSpan delta,
                  MutableByteSpan target) const;

  /// update_row over all m parity rows; equivalent to
  /// CrsCodec::update_parity.
  void update_parity(int data_index, std::size_t offset, ByteSpan delta,
                     std::span<MutableByteSpan> parity) const;

 private:
  /// Invoke fn(lo, hi) over slice ranges in parallel (serial for bitmatrix
  /// kernels or sub-slice-sized buffers).
  void for_each_slice(
      std::size_t total,
      const std::function<void(std::size_t, std::size_t)>& fn) const;

  const CrsCodec* codec_;
  runtime::ThreadPool* pool_;
  std::size_t slice_bytes_;
};

}  // namespace eccheck::ec
