// Dense matrices over GF(2^w) with Gauss-Jordan inversion.
//
// Used to build systematic Cauchy Reed-Solomon generator matrices and to
// derive decode matrices from surviving rows (paper Eqn. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "gf/galois.hpp"

namespace eccheck::ec {

class GfMatrix {
 public:
  GfMatrix() = default;
  GfMatrix(int rows, int cols, const gf::Field& field)
      : rows_(rows), cols_(cols), field_(&field),
        data_(static_cast<std::size_t>(rows) * cols, 0) {
    ECC_CHECK(rows >= 0 && cols >= 0);
  }

  static GfMatrix identity(int n, const gf::Field& field);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  const gf::Field& field() const { return *field_; }

  std::uint32_t at(int r, int c) const {
    ECC_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  void set(int r, int c, std::uint32_t v) {
    ECC_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    ECC_DCHECK(v <= field_->max_element());
    data_[static_cast<std::size_t>(r) * cols_ + c] = v;
  }

  GfMatrix mul(const GfMatrix& other) const;

  /// Inverse of a square matrix. Throws CheckFailure if singular.
  GfMatrix inverse() const;

  /// True iff the square matrix is invertible.
  bool invertible() const;

  /// New matrix formed from the given rows of this one (in order).
  GfMatrix select_rows(const std::vector<int>& row_indices) const;

  friend bool operator==(const GfMatrix& a, const GfMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  /// Gauss-Jordan; returns false (leaving *out unspecified) if singular.
  bool try_inverse(GfMatrix* out) const;

  int rows_ = 0;
  int cols_ = 0;
  const gf::Field* field_ = nullptr;
  std::vector<std::uint32_t> data_;
};

}  // namespace eccheck::ec
