#include "ec/xor_program.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "gf/simd.hpp"

namespace eccheck::ec {

int XorProgram::xor_count() const {
  int n = 0;
  for (const auto& op : ops) n += op.accumulate ? 1 : 0;
  return n;
}

namespace {

/// Terms of each output row as sorted sets of operand ids; inputs are
/// 0..in_strips-1, temporaries in_strips, in_strips+1, ...
struct RowTerms {
  std::vector<std::set<int>> rows;   // per output strip
  std::vector<std::pair<int, int>> temps;  // temp id order: operands XORed
  int in_strips;
};

RowTerms terms_of(const BitMatrix& bm, int in_packets, int out_packets,
                  int w) {
  ECC_CHECK(bm.rows() == out_packets * w);
  ECC_CHECK(bm.cols() == in_packets * w);
  RowTerms t;
  t.in_strips = in_packets * w;
  t.rows.resize(static_cast<std::size_t>(out_packets * w));
  for (int r = 0; r < bm.rows(); ++r) {
    for (int c = 0; c < bm.cols(); ++c)
      if (bm.get(r, c)) t.rows[static_cast<std::size_t>(r)].insert(c);
    ECC_CHECK_MSG(!t.rows[static_cast<std::size_t>(r)].empty(),
                  "bitmatrix has an all-zero row");
  }
  return t;
}

XorProgram emit(const RowTerms& t, int in_packets, int out_packets, int w) {
  XorProgram prog;
  prog.w = w;
  prog.in_packets = in_packets;
  prog.out_packets = out_packets;
  prog.num_temps = static_cast<int>(t.temps.size());

  auto operand_of = [&](int id) {
    if (id < t.in_strips)
      return XorProgram::Operand{XorProgram::Space::kInput, id};
    return XorProgram::Operand{XorProgram::Space::kTemp, id - t.in_strips};
  };

  // Temporaries first (temps may reference earlier temps).
  for (std::size_t i = 0; i < t.temps.size(); ++i) {
    XorProgram::Operand dst{XorProgram::Space::kTemp, static_cast<int>(i)};
    prog.ops.push_back({dst, operand_of(t.temps[i].first), false});
    prog.ops.push_back({dst, operand_of(t.temps[i].second), true});
  }
  // Then the output rows.
  for (std::size_t r = 0; r < t.rows.size(); ++r) {
    XorProgram::Operand dst{XorProgram::Space::kOutput,
                            static_cast<int>(r)};
    bool first = true;
    for (int id : t.rows[r]) {
      prog.ops.push_back({dst, operand_of(id), !first});
      first = false;
    }
  }
  return prog;
}

}  // namespace

XorProgram naive_xor_program(const BitMatrix& bm, int in_packets,
                             int out_packets, int w) {
  return emit(terms_of(bm, in_packets, out_packets, w), in_packets,
              out_packets, w);
}

XorProgram optimize_xor_program(const BitMatrix& bm, int in_packets,
                                int out_packets, int w) {
  RowTerms t = terms_of(bm, in_packets, out_packets, w);

  // Greedy: repeatedly factor the operand pair appearing in the most rows.
  for (;;) {
    std::map<std::pair<int, int>, int> pair_count;
    for (const auto& row : t.rows) {
      std::vector<int> ids(row.begin(), row.end());
      for (std::size_t a = 0; a < ids.size(); ++a)
        for (std::size_t b = a + 1; b < ids.size(); ++b)
          ++pair_count[{ids[a], ids[b]}];
    }
    std::pair<int, int> best{-1, -1};
    int best_count = 2;
    for (const auto& [pr, cnt] : pair_count) {
      if (cnt > best_count) {
        best_count = cnt;
        best = pr;
      }
    }
    // Factoring a pair used c times replaces 2c strip ops with c + 2
    // (temp build is a copy + an XOR): profitable only for c >= 3 under the
    // memory-pass cost model that dominates on real hardware.
    if (best_count < 3) break;

    const int temp_id = t.in_strips + static_cast<int>(t.temps.size());
    t.temps.push_back(best);
    for (auto& row : t.rows) {
      if (row.count(best.first) && row.count(best.second)) {
        row.erase(best.first);
        row.erase(best.second);
        row.insert(temp_id);
      }
    }
  }
  return emit(t, in_packets, out_packets, w);
}

void run_xor_program(const XorProgram& prog, std::span<const ByteSpan> in,
                     std::span<MutableByteSpan> out) {
  ECC_CHECK(static_cast<int>(in.size()) == prog.in_packets);
  ECC_CHECK(static_cast<int>(out.size()) == prog.out_packets);
  ECC_CHECK(!in.empty());
  const std::size_t packet = in[0].size();
  ECC_CHECK_MSG(packet % (static_cast<std::size_t>(prog.w) * 8) == 0,
                "packet size not divisible by w*8");
  const std::size_t strip = packet / static_cast<std::size_t>(prog.w);
  for (const auto& s : in) ECC_CHECK(s.size() == packet);
  for (const auto& s : out) ECC_CHECK(s.size() == packet);

  std::vector<Buffer> temps;
  temps.reserve(static_cast<std::size_t>(prog.num_temps));
  for (int i = 0; i < prog.num_temps; ++i)
    temps.emplace_back(strip, Buffer::Init::kUninitialized);

  auto src_span = [&](const XorProgram::Operand& o) -> ByteSpan {
    if (o.space == XorProgram::Space::kTemp)
      return temps[static_cast<std::size_t>(o.index)].span();
    ECC_CHECK(o.space == XorProgram::Space::kInput);
    const int pkt = o.index / prog.w;
    const int st = o.index % prog.w;
    return in[static_cast<std::size_t>(pkt)].subspan(
        static_cast<std::size_t>(st) * strip, strip);
  };
  auto dst_span = [&](const XorProgram::Operand& o) -> MutableByteSpan {
    if (o.space == XorProgram::Space::kTemp)
      return temps[static_cast<std::size_t>(o.index)].span();
    ECC_CHECK(o.space == XorProgram::Space::kOutput);
    const int pkt = o.index / prog.w;
    const int st = o.index % prog.w;
    return out[static_cast<std::size_t>(pkt)].subspan(
        static_cast<std::size_t>(st) * strip, strip);
  };

  // One dispatch lookup for the whole program; ops are uniform strips.
  const gf::simd::Kernels& kernels = gf::simd::active();
  for (const auto& op : prog.ops) {
    MutableByteSpan dst = dst_span(op.dst);
    ByteSpan src = src_span(op.src);
    if (op.accumulate)
      kernels.xor_into(dst.data(), src.data(), strip);
    else
      std::memcpy(dst.data(), src.data(), strip);
  }
}

}  // namespace eccheck::ec
