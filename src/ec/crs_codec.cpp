#include "ec/crs_codec.hpp"

#include <algorithm>
#include <set>

#include "gf/simd.hpp"
#include "obs/tracer.hpp"

namespace eccheck::ec {
namespace {

// Kernel-level GiB/s spans carry the dispatched ISA ("codec.encode[avx2]")
// so a trace shows which implementation produced the throughput. Built once;
// the active ISA cannot change after first use.
const std::string& encode_span_name() {
  static const std::string name = gf::simd::isa_span_name("codec.encode");
  return name;
}
const std::string& decode_span_name() {
  static const std::string name = gf::simd::isa_span_name("codec.decode");
  return name;
}

}  // namespace

CrsCodec::CrsCodec(int k, int m, int w, KernelMode mode, bool normalized)
    : k_(k), m_(m), w_(w), mode_(mode), field_(&gf::Field::get(w)),
      generator_(systematic_generator(k, m, *field_, normalized)) {
  ECC_CHECK(k >= 1);
  ECC_CHECK(m >= 0);
  if (mode_ == KernelMode::kXorBitmatrix && m_ > 0) {
    // Expand only the parity sub-matrix; identity rows are plain copies.
    GfMatrix parity(m_, k_, *field_);
    for (int r = 0; r < m_; ++r)
      for (int c = 0; c < k_; ++c) parity.set(r, c, generator_.at(k_ + r, c));
    parity_bitmatrix_ = expand_to_bitmatrix(parity);
    encode_schedule_ = make_xor_schedule(parity_bitmatrix_, k_, m_, w_);
  }
}

std::size_t CrsCodec::packet_granularity() const {
  if (mode_ == KernelMode::kXorBitmatrix)
    return static_cast<std::size_t>(w_) * 8;
  return field_->region_granularity();
}

void CrsCodec::encode(std::span<const ByteSpan> data,
                      std::span<MutableByteSpan> parity) const {
  ECC_CHECK(static_cast<int>(data.size()) == k_);
  ECC_CHECK(static_cast<int>(parity.size()) == m_);
  if (m_ == 0) return;
  obs::ScopedSpan span(encode_span_name(),
                       data.empty() ? 0 : data[0].size() * data.size());
  if (mode_ == KernelMode::kXorBitmatrix) {
    run_xor_schedule(encode_schedule_, w_, data, parity);
    return;
  }
  for (int r = 0; r < m_; ++r) {
    for (int j = 0; j < k_; ++j) {
      field_->mul_region(generator_.at(k_ + r, j), data[j], parity[r],
                         /*accumulate=*/j != 0);
    }
  }
}

void CrsCodec::mul_packet(std::uint32_t coeff, ByteSpan src,
                          MutableByteSpan dst, bool accumulate) const {
  if (mode_ == KernelMode::kXorBitmatrix) {
    // Single-element bitmatrix product; schedule built on the fly (w² field
    // mults — negligible next to the region work).
    GfMatrix one(1, 1, *field_);
    one.set(0, 0, coeff);
    if (coeff == 0) {
      if (!accumulate) std::memset(dst.data(), 0, dst.size());
      return;
    }
    BitMatrix bm = expand_to_bitmatrix(one);
    auto sched = make_xor_schedule(bm, 1, 1, w_);
    if (accumulate) {
      // XOR the product into dst: compute into a scratch then fold. The
      // distributed protocol always targets fresh buffers, so this path is
      // rare; correctness over speed.
      Buffer scratch(dst.size(), Buffer::Init::kUninitialized);
      MutableByteSpan scratch_span = scratch.span();
      ByteSpan in[] = {src};
      MutableByteSpan out[] = {scratch_span};
      run_xor_schedule(sched, w_, in, out);
      xor_into(dst, scratch.span());
    } else {
      ByteSpan in[] = {src};
      MutableByteSpan out[] = {dst};
      run_xor_schedule(sched, w_, in, out);
    }
    return;
  }
  field_->mul_region(coeff, src, dst, accumulate);
}

void CrsCodec::update_row(int row, int data_index, std::size_t offset,
                          ByteSpan delta, MutableByteSpan target) const {
  ECC_CHECK(row >= 0 && row < k_ + m_);
  ECC_CHECK(data_index >= 0 && data_index < k_);
  ECC_CHECK_MSG(offset + delta.size() <= target.size(),
                "dirty region [" << offset << ", " << offset + delta.size()
                                 << ") exceeds packet size " << target.size());
  if (delta.empty()) return;
  const std::uint32_t coeff = generator_.at(row, data_index);
  if (coeff == 0) return;

  if (mode_ == KernelMode::kXorBitmatrix) {
    ECC_CHECK_MSG(target.size() % packet_granularity() == 0,
                  "packet size must be a multiple of w*8 in bitmatrix mode");
    const std::size_t strip = target.size() / static_cast<std::size_t>(w_);
    // Expand the single coefficient like mul_packet does, but instead of a
    // whole-strip schedule, intersect the dirty window with each source
    // strip: byte x of the packet lives at offset (x mod strip) of strip
    // (x div strip), and B(e) maps source strip j onto destination strip i
    // preserving the offset-within-strip — so a dirty range clipped to one
    // source strip patches the same-length range of each selected
    // destination strip. Exact for arbitrary (mis)aligned regions.
    GfMatrix one(1, 1, *field_);
    one.set(0, 0, coeff);
    const BitMatrix bm = expand_to_bitmatrix(one);
    const std::size_t lo = offset, hi = offset + delta.size();
    for (int i = 0; i < w_; ++i) {
      for (int j = 0; j < w_; ++j) {
        if (!bm.get(i, j)) continue;
        const std::size_t a = std::max(lo, static_cast<std::size_t>(j) * strip);
        const std::size_t b =
            std::min(hi, (static_cast<std::size_t>(j) + 1) * strip);
        if (a >= b) continue;
        xor_into(target.subspan(static_cast<std::size_t>(i) * strip +
                                    (a - static_cast<std::size_t>(j) * strip),
                                b - a),
                 delta.subspan(a - lo, b - a));
      }
    }
    return;
  }

  const std::size_t gran = field_->region_granularity();
  ECC_CHECK_MSG(offset % gran == 0 && delta.size() % gran == 0,
                "dirty region must align to the w=" << w_
                                                    << " symbol granularity");
  field_->mul_region(coeff, delta, target.subspan(offset, delta.size()),
                     /*accumulate=*/true);
}

void CrsCodec::update_parity(int data_index, std::size_t offset, ByteSpan delta,
                             std::span<MutableByteSpan> parity) const {
  ECC_CHECK(static_cast<int>(parity.size()) == m_);
  for (int r = 0; r < m_; ++r)
    update_row(k_ + r, data_index, offset, delta,
               parity[static_cast<std::size_t>(r)]);
}

void CrsCodec::encode_partial(int row, int data_index, ByteSpan src,
                              MutableByteSpan dst, bool accumulate) const {
  ECC_CHECK(row >= 0 && row < k_ + m_);
  ECC_CHECK(data_index >= 0 && data_index < k_);
  mul_packet(generator_.at(row, data_index), src, dst, accumulate);
}

void CrsCodec::decode(const std::vector<int>& rows,
                      std::span<const ByteSpan> chunks,
                      std::span<MutableByteSpan> out_data) const {
  ECC_CHECK_MSG(static_cast<int>(rows.size()) == k_,
                "decode needs exactly k=" << k_ << " chunks, got "
                                          << rows.size());
  ECC_CHECK(chunks.size() == rows.size());
  ECC_CHECK(static_cast<int>(out_data.size()) == k_);
  ECC_CHECK_MSG(std::set<int>(rows.begin(), rows.end()).size() == rows.size(),
                "duplicate generator rows in decode");

  obs::ScopedSpan span(decode_span_name(),
                       chunks.empty() ? 0 : chunks[0].size() * chunks.size());
  GfMatrix sub = generator_.select_rows(rows);
  GfMatrix inv = sub.inverse();
  apply_matrix(inv, chunks, out_data);
}

GfMatrix CrsCodec::reconstruction_matrix(
    const std::vector<int>& survivor_rows,
    const std::vector<int>& target_rows) const {
  ECC_CHECK(static_cast<int>(survivor_rows.size()) == k_);
  GfMatrix inv = generator_.select_rows(survivor_rows).inverse();
  GfMatrix targets = generator_.select_rows(target_rows);
  return targets.mul(inv);
}

void CrsCodec::apply_matrix(const GfMatrix& m, std::span<const ByteSpan> in,
                            std::span<MutableByteSpan> out) const {
  ECC_CHECK(static_cast<int>(in.size()) == m.cols());
  ECC_CHECK(static_cast<int>(out.size()) == m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      mul_packet(m.at(i, j), in[j], out[i], /*accumulate=*/j != 0);
    }
  }
}

int CrsCodec::xor_ops_per_stripe() const {
  if (mode_ != KernelMode::kXorBitmatrix) return -1;
  return static_cast<int>(encode_schedule_.size());
}

}  // namespace eccheck::ec
