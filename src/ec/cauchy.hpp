// Cauchy Reed-Solomon generator matrices (paper §IV-A, ref [2]).
//
// A Cauchy matrix C over GF(2^w) with C[i][j] = 1 / (x_i + y_j) for distinct
// x_i, y_j has the defining property that *every* square submatrix is
// invertible — exactly the MDS property an erasure code needs. The
// systematic generator is E = [ I_k ; C ] (k+m rows × k columns): any k of
// the k+m rows form an invertible matrix, so any m losses are recoverable.
#pragma once

#include "ec/gf_matrix.hpp"

namespace eccheck::ec {

/// m×k Cauchy matrix with x_i = i (rows) and y_j = m + j (columns).
/// Requires k + m <= 2^w.
GfMatrix cauchy_matrix(int k, int m, const gf::Field& field);

/// Row-normalised variant ("good" Cauchy): each row divided by its first
/// element so column 0 is all ones — fewer set bits in the bitmatrix, hence
/// fewer XORs. Normalisation preserves the any-k-rows-invertible property
/// (row scaling by non-zero constants cannot create singular submatrices).
GfMatrix normalized_cauchy_matrix(int k, int m, const gf::Field& field);

/// Systematic generator E = [ I_k ; C ], (k+m)×k.
GfMatrix systematic_generator(int k, int m, const gf::Field& field,
                              bool normalized = true);

}  // namespace eccheck::ec
