// Bit-matrix (GF(2)) representation of GF(2^w) matrices, and XOR-only
// region coding over "strips" (paper §IV-A: "encoding can be implemented by
// using XOR operations exclusively").
//
// Each GF(2^w) element e expands to a w×w binary matrix B(e) whose column j
// is the bit pattern of e · 2^j; multiplication by e over GF(2^w) is then a
// GF(2) matrix-vector product on the bit representation. A data packet is
// split into w equal strips; strip i of the product is the XOR of the source
// strips selected by row i of B(e).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "ec/gf_matrix.hpp"

namespace eccheck::ec {

/// Dense bit matrix, row-major, one byte per bit (small matrices only:
/// dimensions are (m·w) × (k·w), tens of thousands of bits at most).
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        bits_(static_cast<std::size_t>(rows) * cols, 0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  bool get(int r, int c) const {
    return bits_[static_cast<std::size_t>(r) * cols_ + c] != 0;
  }
  void set(int r, int c, bool v) {
    bits_[static_cast<std::size_t>(r) * cols_ + c] = v ? 1 : 0;
  }

  int ones() const;  ///< number of set bits == XORs per strip-row (minus 1)

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// Expand a GF(2^w) matrix into its (rows·w) × (cols·w) bit matrix.
BitMatrix expand_to_bitmatrix(const GfMatrix& m);

/// One XOR-only coding operation: XOR source strip `src_strip` of input
/// packet `src_packet` into destination strip `dst_strip` of output packet
/// `dst_packet` (or copy when `accumulate` is false).
struct XorOp {
  int src_packet;
  int src_strip;
  int dst_packet;
  int dst_strip;
  bool accumulate;  ///< false = first contribution (copy), true = XOR
};

/// Flatten a bit matrix into a strip-level XOR schedule for `in_packets`
/// inputs producing `out_packets` outputs (bitmatrix must be
/// (out_packets·w) × (in_packets·w)).
std::vector<XorOp> make_xor_schedule(const BitMatrix& bm, int in_packets,
                                     int out_packets, int w);

/// Execute a schedule: in[i] are equal-size packets, out[o] likewise.
/// Packet size must be divisible by w · 8 so strips stay word-aligned.
void run_xor_schedule(const std::vector<XorOp>& schedule, int w,
                      std::span<const ByteSpan> in,
                      std::span<MutableByteSpan> out);

}  // namespace eccheck::ec
