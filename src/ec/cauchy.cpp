#include "ec/cauchy.hpp"

namespace eccheck::ec {

GfMatrix cauchy_matrix(int k, int m, const gf::Field& field) {
  ECC_CHECK(k >= 1 && m >= 0);
  ECC_CHECK_MSG(static_cast<std::uint32_t>(k + m) <= field.order(),
                "k+m=" << (k + m) << " exceeds field order " << field.order());
  GfMatrix c(m, k, field);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      std::uint32_t xi = static_cast<std::uint32_t>(i);
      std::uint32_t yj = static_cast<std::uint32_t>(m + j);
      c.set(i, j, field.inv(xi ^ yj));
    }
  }
  return c;
}

GfMatrix normalized_cauchy_matrix(int k, int m, const gf::Field& field) {
  GfMatrix c = cauchy_matrix(k, m, field);
  for (int i = 0; i < m; ++i) {
    std::uint32_t f = field.inv(c.at(i, 0));
    for (int j = 0; j < k; ++j) c.set(i, j, field.mul(c.at(i, j), f));
  }
  return c;
}

GfMatrix systematic_generator(int k, int m, const gf::Field& field,
                              bool normalized) {
  GfMatrix c =
      normalized ? normalized_cauchy_matrix(k, m, field) : cauchy_matrix(k, m, field);
  GfMatrix e(k + m, k, field);
  for (int i = 0; i < k; ++i) e.set(i, i, 1);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) e.set(k + i, j, c.at(i, j));
  return e;
}

}  // namespace eccheck::ec
