// Systematic Cauchy Reed-Solomon encoder/decoder (paper §III-B, §IV-A).
//
// The codec owns the (k+m)×k generator E = [I_k ; C] and offers:
//  * whole-stripe encode/decode (used by tests and the group-based mode),
//  * partial per-packet products (the per-worker "encoding step" of the
//    distributed protocol, whose results are then XOR-reduced across nodes),
//  * reconstruction matrices mapping any k surviving generator rows to any
//    set of target rows (recovery workflow B and parity restoration).
//
// Two kernel modes produce the same code but different byte layouts of the
// arithmetic: kGfTable multiplies packed GF(2^w) symbols via per-constant
// lookup tables; kXorBitmatrix splits each packet into w strips and uses
// XOR exclusively. A stripe must be processed in one mode end-to-end.
#pragma once

#include <memory>
#include <vector>

#include "ec/bitmatrix.hpp"
#include "ec/cauchy.hpp"
#include "ec/gf_matrix.hpp"

namespace eccheck::ec {

enum class KernelMode {
  kGfTable,       ///< table-driven GF(2^w) region multiply
  kXorBitmatrix,  ///< Cauchy bitmatrix, XOR-only strip schedule
};

class CrsCodec {
 public:
  CrsCodec(int k, int m, int w = 8, KernelMode mode = KernelMode::kGfTable,
           bool normalized = true);

  int k() const { return k_; }
  int m() const { return m_; }
  int w() const { return w_; }
  KernelMode mode() const { return mode_; }
  const gf::Field& field() const { return *field_; }
  const GfMatrix& generator() const { return generator_; }

  /// Packet lengths must be a multiple of this (w·8 bytes in bitmatrix mode
  /// so strips stay 8-byte aligned; the symbol width otherwise).
  std::size_t packet_granularity() const;

  /// Full-stripe encode: parity[r] = Σ_j E[k+r][j] · data[j].
  /// data.size() == k, parity.size() == m, all spans equal length.
  void encode(std::span<const ByteSpan> data,
              std::span<MutableByteSpan> parity) const;

  /// Partial product for generator row `row` (0..k+m) and data chunk index
  /// `data_index`: dst (^)= E[row][data_index] · src.
  void encode_partial(int row, int data_index, ByteSpan src,
                      MutableByteSpan dst, bool accumulate) const;

  /// coefficient E[row][data_index].
  std::uint32_t coefficient(int row, int data_index) const {
    return generator_.at(row, data_index);
  }

  /// Decode all k data chunks from any k surviving generator rows.
  /// `rows[i]` names the generator row that `chunks[i]` carries; exactly k
  /// entries are required and rows must be distinct.
  void decode(const std::vector<int>& rows, std::span<const ByteSpan> chunks,
              std::span<MutableByteSpan> out_data) const;

  /// Matrix T (targets × k survivors) with target[i] = Σ_j T[i][j]·chunk[j]:
  /// lets recovery compute any generator rows (data or parity) directly from
  /// the survivors, T = E[target_rows] · E[survivor_rows]⁻¹.
  GfMatrix reconstruction_matrix(const std::vector<int>& survivor_rows,
                                 const std::vector<int>& target_rows) const;

  /// out[i] = Σ_j M[i][j] · in[j] using this codec's kernel mode.
  void apply_matrix(const GfMatrix& m, std::span<const ByteSpan> in,
                    std::span<MutableByteSpan> out) const;

  /// dst (^)= coeff · src with this codec's kernel.
  void mul_packet(std::uint32_t coeff, ByteSpan src, MutableByteSpan dst,
                  bool accumulate) const;

  /// Sparse in-place patch of one generator row via code linearity: given a
  /// dirty region of data chunk `data_index` whose XOR-delta against the
  /// previously encoded bytes is `delta` (new ⊕ old, starting at byte
  /// `offset` of the packet), fold E[row][data_index]·Δ into the stored
  /// row packet: target ^= E[row][data_index] · Δ over [offset, offset+|Δ|).
  ///
  /// `target` is the FULL row packet (the strip layout of the bitmatrix
  /// kernel needs the whole packet extent, not just the dirty window).
  /// Exact for both kernel modes and any in-range region; in kGfTable mode
  /// offset and |Δ| must be multiples of the field's region granularity
  /// (2 bytes for w=16, else 1), in bitmatrix mode they are unrestricted.
  /// Patching every dirty region of every data chunk this way leaves the
  /// row packet byte-identical to a full re-encode (P' = P ⊕ G·Δ).
  void update_row(int row, int data_index, std::size_t offset, ByteSpan delta,
                  MutableByteSpan target) const;

  /// update_row over all m parity rows: parity[r] ^= E[k+r][data_index]·Δ.
  /// parity.size() == m, each span a full packet.
  void update_parity(int data_index, std::size_t offset, ByteSpan delta,
                     std::span<MutableByteSpan> parity) const;

  /// Total XOR ops per stripe in bitmatrix mode (cost model / ablations).
  int xor_ops_per_stripe() const;

 private:
  int k_;
  int m_;
  int w_;
  KernelMode mode_;
  const gf::Field* field_;
  GfMatrix generator_;           // (k+m) × k
  BitMatrix parity_bitmatrix_;   // (m·w) × (k·w), bitmatrix mode only
  std::vector<XorOp> encode_schedule_;
};

}  // namespace eccheck::ec
