#include "ec/parallel_codec.hpp"

#include "common/bytes.hpp"
#include "gf/simd.hpp"
#include "obs/tracer.hpp"

namespace eccheck::ec {
namespace {

// Kernel spans carry the dispatched ISA (see crs_codec.cpp).
const std::string& slice_span_name() {
  static const std::string name = gf::simd::isa_span_name("codec.slice");
  return name;
}
const std::string& encode_span_name() {
  static const std::string name = gf::simd::isa_span_name("codec.encode");
  return name;
}
const std::string& encode_row_span_name() {
  static const std::string name = gf::simd::isa_span_name("codec.encode_row");
  return name;
}
const std::string& encode_partial_span_name() {
  static const std::string name =
      gf::simd::isa_span_name("codec.encode_partial");
  return name;
}
const std::string& apply_matrix_span_name() {
  static const std::string name =
      gf::simd::isa_span_name("codec.apply_matrix");
  return name;
}

}  // namespace

ParallelCodec::ParallelCodec(const CrsCodec& codec, runtime::ThreadPool& pool,
                             std::size_t slice_bytes)
    : codec_(&codec), pool_(&pool), slice_bytes_(slice_bytes) {
  // Round slices up to a multiple of both the symbol granularity and the
  // Buffer alignment: slice boundaries inside a 64-byte-aligned packet then
  // stay 64-byte aligned, so every slice (not just the first) runs the
  // vector kernels' aligned fast path.
  const std::size_t g = codec.packet_granularity();
  std::size_t align = Buffer::kAlignment;
  while (align % g != 0) align *= 2;  // g is 1, 2, or w*8 — 64 covers all
  if (slice_bytes_ % align != 0)
    slice_bytes_ += align - slice_bytes_ % align;
  ECC_CHECK(slice_bytes_ > 0);
  ECC_CHECK(slice_bytes_ % g == 0);
}

void ParallelCodec::for_each_slice(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  if (codec_->mode() == KernelMode::kXorBitmatrix || total <= slice_bytes_) {
    fn(0, total);
    return;
  }
  const std::size_t slices = (total + slice_bytes_ - 1) / slice_bytes_;
  auto& tracer = obs::Tracer::global();
  pool_->parallel_for(
      slices,
      [&](std::size_t s) {
        const std::size_t lo = s * slice_bytes_;
        const std::size_t hi = std::min(total, lo + slice_bytes_);
        obs::ScopedSpan span(tracer, slice_span_name(), hi - lo);
        fn(lo, hi);
      },
      "codec.slices");
}

void ParallelCodec::encode(std::span<const ByteSpan> data,
                           std::span<MutableByteSpan> parity) const {
  ECC_CHECK(static_cast<int>(data.size()) == codec_->k());
  ECC_CHECK(static_cast<int>(parity.size()) == codec_->m());
  if (parity.empty()) return;
  const std::size_t total = data[0].size();
  obs::ScopedSpan span(encode_span_name(), total * data.size());
  if (codec_->mode() == KernelMode::kXorBitmatrix) {
    codec_->encode(data, parity);
    return;
  }
  for_each_slice(total, [&](std::size_t lo, std::size_t hi) {
    for (int r = 0; r < codec_->m(); ++r) {
      for (int c = 0; c < codec_->k(); ++c) {
        codec_->encode_partial(codec_->k() + r, c,
                               data[static_cast<std::size_t>(c)].subspan(
                                   lo, hi - lo),
                               parity[static_cast<std::size_t>(r)].subspan(
                                   lo, hi - lo),
                               /*accumulate=*/c != 0);
      }
    }
  });
}

void ParallelCodec::encode_row(int row, std::span<const ByteSpan> data,
                               MutableByteSpan acc) const {
  ECC_CHECK(static_cast<int>(data.size()) == codec_->k());
  obs::ScopedSpan span(encode_row_span_name(), acc.size() * data.size());
  if (codec_->mode() == KernelMode::kXorBitmatrix) {
    for (int c = 0; c < codec_->k(); ++c)
      codec_->encode_partial(row, c, data[static_cast<std::size_t>(c)], acc,
                             c != 0);
    return;
  }
  for_each_slice(acc.size(), [&](std::size_t lo, std::size_t hi) {
    for (int c = 0; c < codec_->k(); ++c) {
      codec_->encode_partial(
          row, c, data[static_cast<std::size_t>(c)].subspan(lo, hi - lo),
          acc.subspan(lo, hi - lo), /*accumulate=*/c != 0);
    }
  });
}

void ParallelCodec::encode_partial(int row, int data_index, ByteSpan src,
                                   MutableByteSpan dst,
                                   bool accumulate) const {
  obs::ScopedSpan span(encode_partial_span_name(), src.size());
  if (codec_->mode() == KernelMode::kXorBitmatrix) {
    codec_->encode_partial(row, data_index, src, dst, accumulate);
    return;
  }
  for_each_slice(src.size(), [&](std::size_t lo, std::size_t hi) {
    codec_->encode_partial(row, data_index, src.subspan(lo, hi - lo),
                           dst.subspan(lo, hi - lo), accumulate);
  });
}

void ParallelCodec::update_row(int row, int data_index, std::size_t offset,
                               ByteSpan delta, MutableByteSpan target) const {
  obs::ScopedSpan span(encode_partial_span_name(), delta.size());
  if (codec_->mode() == KernelMode::kXorBitmatrix) {
    codec_->update_row(row, data_index, offset, delta, target);
    return;
  }
  for_each_slice(delta.size(), [&](std::size_t lo, std::size_t hi) {
    codec_->update_row(row, data_index, offset + lo,
                       delta.subspan(lo, hi - lo), target);
  });
}

void ParallelCodec::update_parity(int data_index, std::size_t offset,
                                  ByteSpan delta,
                                  std::span<MutableByteSpan> parity) const {
  ECC_CHECK(static_cast<int>(parity.size()) == codec_->m());
  for (int r = 0; r < codec_->m(); ++r)
    update_row(codec_->k() + r, data_index, offset, delta,
               parity[static_cast<std::size_t>(r)]);
}

void ParallelCodec::apply_matrix(const GfMatrix& m,
                                 std::span<const ByteSpan> in,
                                 std::span<MutableByteSpan> out) const {
  ECC_CHECK(static_cast<int>(in.size()) == m.cols());
  ECC_CHECK(static_cast<int>(out.size()) == m.rows());
  if (out.empty()) return;
  obs::ScopedSpan span(apply_matrix_span_name(), out[0].size() * in.size());
  if (codec_->mode() == KernelMode::kXorBitmatrix) {
    codec_->apply_matrix(m, in, out);
    return;
  }
  for_each_slice(out[0].size(), [&](std::size_t lo, std::size_t hi) {
    for (int i = 0; i < m.rows(); ++i) {
      for (int j = 0; j < m.cols(); ++j) {
        codec_->mul_packet(m.at(i, j),
                           in[static_cast<std::size_t>(j)].subspan(lo, hi - lo),
                           out[static_cast<std::size_t>(i)].subspan(lo,
                                                                    hi - lo),
                           /*accumulate=*/j != 0);
      }
    }
  });
}

}  // namespace eccheck::ec
