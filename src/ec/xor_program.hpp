// Optimized XOR programs: common-subexpression elimination over bitmatrix
// schedules.
//
// A naive bitmatrix schedule XORs, for every output strip, each input strip
// whose bit is set — Σ ones(B) operations. Parity rows of a Cauchy matrix
// share many input-strip pairs, so factoring frequently co-occurring pairs
// into temporaries (computed once, reused everywhere) reduces the XOR count
// — the idea behind "smart scheduling" in fast-erasure-coding work the paper
// cites ([38]). The greedy heuristic here repeatedly extracts the most
// common remaining pair; programs stay bit-exact with the plain schedule.
#pragma once

#include "ec/bitmatrix.hpp"

namespace eccheck::ec {

/// A straight-line XOR program over input strips, temporaries, and output
/// strips. Strip operands are indices: inputs are packet·w + strip.
struct XorProgram {
  enum class Space : std::uint8_t { kInput, kTemp, kOutput };

  struct Operand {
    Space space;
    int index;
    friend bool operator==(const Operand&, const Operand&) = default;
  };

  struct Op {
    Operand dst;       ///< kTemp or kOutput
    Operand src;       ///< kInput or kTemp
    bool accumulate;   ///< false = copy, true = XOR-into
  };

  int w = 8;
  int in_packets = 0;
  int out_packets = 0;
  int num_temps = 0;
  std::vector<Op> ops;

  /// XORs actually performed (copies count as free moves).
  int xor_count() const;

  /// Total strip reads+writes — the memory-bound cost that actually limits
  /// throughput (every op streams one strip in and one strip out).
  int memory_passes() const { return static_cast<int>(ops.size()); }
};

/// Plain program: one op per set bit (the make_xor_schedule semantics).
XorProgram naive_xor_program(const BitMatrix& bm, int in_packets,
                             int out_packets, int w);

/// Greedy pair-factoring optimization; never worse than naive.
XorProgram optimize_xor_program(const BitMatrix& bm, int in_packets,
                                int out_packets, int w);

/// Execute on real strips; packet sizes must be divisible by w·8.
void run_xor_program(const XorProgram& prog, std::span<const ByteSpan> in,
                     std::span<MutableByteSpan> out);

}  // namespace eccheck::ec
