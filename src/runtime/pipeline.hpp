// Generic staged pipeline (paper §IV-C "Pipelined Execution").
//
// ECCheck runs encode → XOR-reduce → P2P as three threads connected by
// bounded buffer queues: as soon as a packet finishes a stage it moves on
// while the upstream thread continues with the next buffer. This template
// captures that pattern for any movable item type; stage functions run on
// dedicated threads and items flow in FIFO order.
//
// Each stage thread accounts its own wall time three ways: busy (inside the
// stage function), blocked (waiting on an empty upstream or full downstream
// queue) and total thread lifetime — busy + blocked ≈ wall per stage, which
// is what tells an undersized stage from a starved one. With the global
// obs::Tracer enabled, every item processed becomes a span on a named
// "pipe/<stage>" track.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/tracer.hpp"
#include "runtime/bounded_queue.hpp"

namespace eccheck::runtime {

struct PipelineStats {
  std::vector<double> stage_busy_seconds;     ///< per-stage time in stage fn
  std::vector<double> stage_blocked_seconds;  ///< per-stage queue wait time
  std::vector<double> stage_wall_seconds;     ///< per-stage thread lifetime
  double wall_seconds = 0.0;
};

/// Run `items` through `stages` (each mutates the item in place) with one
/// thread per stage and `queue_capacity` slots between adjacent stages.
/// Items keep their input order. Exceptions in a stage propagate to the
/// caller after all threads are joined. `stage_names` (optional, parallel to
/// `stages`) labels trace tracks and spans; unnamed stages get "stage<i>".
template <typename T>
PipelineStats run_pipeline(std::vector<T>& items,
                           const std::vector<std::function<void(T&)>>& stages,
                           std::size_t queue_capacity = 4,
                           const std::vector<std::string>& stage_names = {}) {
  using Clock = std::chrono::steady_clock;
  PipelineStats stats;
  stats.stage_busy_seconds.assign(stages.size(), 0.0);
  stats.stage_blocked_seconds.assign(stages.size(), 0.0);
  stats.stage_wall_seconds.assign(stages.size(), 0.0);
  const auto wall_start = Clock::now();

  if (stages.empty() || items.empty()) return stats;

  // Queues carry item indices; the items themselves stay in `items`.
  std::vector<std::unique_ptr<BoundedQueue<std::size_t>>> queues;
  for (std::size_t i = 0; i + 1 < stages.size(); ++i)
    queues.push_back(std::make_unique<BoundedQueue<std::size_t>>(queue_capacity));

  std::vector<std::exception_ptr> errors(stages.size());
  std::vector<std::thread> threads;
  threads.reserve(stages.size());

  for (std::size_t s = 0; s < stages.size(); ++s) {
    threads.emplace_back([&, s] {
      const std::string name = s < stage_names.size() && !stage_names[s].empty()
                                   ? stage_names[s]
                                   : "stage" + std::to_string(s);
      obs::Tracer::set_thread_name("pipe/" + name);
      auto& tracer = obs::Tracer::global();
      const auto thread_start = Clock::now();
      // Each thread writes only its own slot; no synchronization needed.
      double busy = 0, blocked = 0;
      try {
        auto process = [&](std::size_t idx) {
          const auto t0 = Clock::now();
          {
            obs::ScopedSpan span(tracer, name);
            stages[s](items[idx]);
          }
          busy += std::chrono::duration<double>(Clock::now() - t0).count();
          if (s + 1 < stages.size()) {
            const auto p0 = Clock::now();
            queues[s]->push(idx);
            const auto p1 = Clock::now();
            blocked += std::chrono::duration<double>(p1 - p0).count();
          }
        };
        if (s == 0) {
          for (std::size_t i = 0; i < items.size(); ++i) process(i);
        } else {
          for (;;) {
            const auto w0 = Clock::now();
            auto idx = queues[s - 1]->pop();
            const auto w1 = Clock::now();
            blocked += std::chrono::duration<double>(w1 - w0).count();
            if (!idx) break;
            process(*idx);
          }
        }
      } catch (...) {
        errors[s] = std::current_exception();
        // Unblock the upstream stage (it may be waiting on a full queue).
        if (s > 0) queues[s - 1]->close();
      }
      if (s + 1 < stages.size()) queues[s]->close();
      stats.stage_busy_seconds[s] = busy;
      stats.stage_blocked_seconds[s] = blocked;
      stats.stage_wall_seconds[s] =
          std::chrono::duration<double>(Clock::now() - thread_start).count();
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  return stats;
}

}  // namespace eccheck::runtime
