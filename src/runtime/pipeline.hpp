// Generic staged pipeline (paper §IV-C "Pipelined Execution").
//
// ECCheck runs encode → XOR-reduce → P2P as three threads connected by
// bounded buffer queues: as soon as a packet finishes a stage it moves on
// while the upstream thread continues with the next buffer. This template
// captures that pattern for any movable item type; stage functions run on
// dedicated threads and items flow in FIFO order.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/bounded_queue.hpp"

namespace eccheck::runtime {

struct PipelineStats {
  std::vector<double> stage_busy_seconds;  ///< per-stage time in stage fn
  double wall_seconds = 0.0;
};

/// Run `items` through `stages` (each mutates the item in place) with one
/// thread per stage and `queue_capacity` slots between adjacent stages.
/// Items keep their input order. Exceptions in a stage propagate to the
/// caller after all threads are joined.
template <typename T>
PipelineStats run_pipeline(std::vector<T>& items,
                           const std::vector<std::function<void(T&)>>& stages,
                           std::size_t queue_capacity = 4) {
  using Clock = std::chrono::steady_clock;
  PipelineStats stats;
  stats.stage_busy_seconds.assign(stages.size(), 0.0);
  const auto wall_start = Clock::now();

  if (stages.empty() || items.empty()) return stats;

  // Queues carry item indices; the items themselves stay in `items`.
  std::vector<std::unique_ptr<BoundedQueue<std::size_t>>> queues;
  for (std::size_t i = 0; i + 1 < stages.size(); ++i)
    queues.push_back(std::make_unique<BoundedQueue<std::size_t>>(queue_capacity));

  std::vector<std::exception_ptr> errors(stages.size());
  std::vector<std::thread> threads;
  threads.reserve(stages.size());

  for (std::size_t s = 0; s < stages.size(); ++s) {
    threads.emplace_back([&, s] {
      try {
        auto process = [&](std::size_t idx) {
          const auto t0 = Clock::now();
          stages[s](items[idx]);
          stats.stage_busy_seconds[s] +=
              std::chrono::duration<double>(Clock::now() - t0).count();
          if (s + 1 < stages.size()) queues[s]->push(idx);
        };
        if (s == 0) {
          for (std::size_t i = 0; i < items.size(); ++i) process(i);
        } else {
          while (auto idx = queues[s - 1]->pop()) process(*idx);
        }
      } catch (...) {
        errors[s] = std::current_exception();
        // Unblock the upstream stage (it may be waiting on a full queue).
        if (s > 0) queues[s - 1]->close();
      }
      if (s + 1 < stages.size()) queues[s]->close();
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  return stats;
}

}  // namespace eccheck::runtime
