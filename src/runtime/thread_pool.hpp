// Fixed-size CPU thread pool (paper §IV-A "Thread Pool Technique").
//
// Checkpoint encoding is split into sub-tasks over disjoint slices of the
// buffers and executed concurrently; the pool is also reused by the staged
// pipeline. Deliberately simple: mutex + condvar, no work stealing — encode
// sub-tasks are uniform so a single queue balances fine.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/tracer.hpp"

namespace eccheck::runtime {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; the future resolves when it finishes (exceptions
  /// propagate through the future). `label` names the task's run span in
  /// wall-clock traces; it must outlive the task (string literals do).
  template <typename F>
  auto submit(F&& f, const char* label = "pool.task")
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    auto& tracer = obs::Tracer::global();
    QueuedTask qt;
    qt.fn = [task] { (*task)(); };
    qt.label = label;
    if (tracer.enabled()) qt.enqueue_ns = tracer.now_ns();
    const bool traced = qt.enqueue_ns != 0;
    std::size_t depth;
    {
      std::lock_guard lock(mu_);
      ECC_CHECK_MSG(!stopping_, "submit on a stopped ThreadPool");
      queue_.push(std::move(qt));
      depth = queue_.size();
    }
    if (traced)
      tracer.record_counter("pool.queue_depth", static_cast<double>(depth));
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool, blocking until all complete.
  /// Work is split into contiguous ranges, one per worker. Safe to call
  /// from inside a pool task: a pool-resident caller runs the loop inline
  /// instead of blocking on chunks queued behind its own task (which would
  /// deadlock a saturated pool).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    const char* label = "parallel_for");

  /// True when the calling thread is one of *this* pool's workers.
  bool on_worker_thread() const { return current_pool_ == this; }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    const char* label = "pool.task";
    std::uint64_t enqueue_ns = 0;  ///< 0 = tracer was disabled at submit
  };

  void worker_loop(unsigned index);

  // Which pool (if any) the current thread is a worker of; lets
  // parallel_for detect re-entrant calls from its own workers.
  static thread_local const ThreadPool* current_pool_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<QueuedTask> queue_;
  bool stopping_ = false;
};

}  // namespace eccheck::runtime
