// Bounded blocking queue connecting pipeline stages.
//
// The paper's buffered design — a fixed number of 64 MB data/encoding
// buffers — maps to bounded queues: a full queue back-pressures the encoding
// thread so host-memory use stays within the reserved buffer budget.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace eccheck::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes; pending items remain poppable.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace eccheck::runtime
