#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace eccheck::runtime {

thread_local const ThreadPool* ThreadPool::current_pool_ = nullptr;

ThreadPool::ThreadPool(unsigned num_threads) {
  ECC_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(unsigned index) {
  current_pool_ = this;
  obs::Tracer::set_thread_name("pool/worker" + std::to_string(index));
  auto& tracer = obs::Tracer::global();
  for (;;) {
    QueuedTask task;
    std::size_t depth;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
    }
    // Queue-wait vs. run time: the wait span covers [submit, dequeue) and
    // the run span [dequeue, done), both on this worker's track.
    if (task.enqueue_ns && tracer.enabled()) {
      const std::uint64_t deq = tracer.now_ns();
      tracer.record_counter("pool.queue_depth", static_cast<double>(depth));
      tracer.record_span("pool.wait", task.enqueue_ns, deq);
      task.fn();
      tracer.record_span(task.label, deq, tracer.now_ns());
    } else {
      task.fn();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              const char* label) {
  if (n == 0) return;
  if (on_worker_thread()) {
    // Re-entrant call from one of our own workers: blocking in future::get()
    // would wait on chunks queued *behind* the current task — with every
    // worker busy that never drains (single-thread pools deadlock
    // immediately). The caller already owns a worker, so run inline.
    obs::ScopedSpan span(label);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    futures.push_back(submit(
        [&fn, begin, end] {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        },
        label));
  }
  for (auto& f : futures) f.get();
}

}  // namespace eccheck::runtime
