// Virtual-time task graph — the timing substrate for every benchmark.
//
// The paper's testbed (A100 nodes, 100 Gbps fabric, 5 Gbps remote storage)
// is replaced by this deterministic mini discrete-event simulator: engines
// move real bytes through the in-process cluster while emitting tasks here;
// durations come from a calibrated cost model. Tasks occupy one or more
// *resources* (a GPU's DtoH engine, NIC TX/RX, CPU encode lanes, the shared
// remote-storage link); a network transfer occupies sender TX and receiver
// RX over the same window. Scheduling is backfilling list scheduling: each
// task takes the earliest gap in its resources' occupancy after its
// dependencies finish, so emission order never imposes artificial FIFO
// delays (hardware queues drain whatever is ready). A resource may carry a
// *reserved calendar* of training-traffic busy windows; idle-only tasks
// (paper §IV-B3 communication scheduling) additionally avoid those windows,
// splitting across consecutive gaps when needed.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "sim/interval.hpp"

namespace eccheck::sim {

using ResourceId = int;
using TaskId = int;

constexpr ResourceId kNoResource = -1;

struct TaskOptions {
  bool idle_only = false;  ///< pack into gaps of the reserved calendars
  Seconds not_before = 0;  ///< release time (e.g. "after snapshot lands")
};

struct Task {
  std::string label;
  std::vector<ResourceId> resources;
  std::vector<TaskId> deps;  ///< scheduling dependencies (for trace export)
  Seconds duration = 0;
  Seconds start = 0;                   ///< first segment begin
  Seconds finish = 0;                  ///< last segment end
  std::vector<TimeInterval> segments;  ///< actual occupancy (≥1 if duration>0)
  Seconds reserved_overlap = 0;  ///< time spent inside reserved windows
                                 ///< (interference; 0 for idle-only tasks)
};

class Timeline {
 public:
  ResourceId add_resource(std::string name);

  /// Mark [begin, end) busy with training traffic on `res` (static calendar,
  /// not a task; idle-only tasks avoid these windows, normal tasks overlap
  /// them and the overlap is reported as interference).
  void reserve(ResourceId res, Seconds begin, Seconds end);

  /// Replace the calendar wholesale (e.g. a profiled training pattern
  /// repeated over many iterations).
  void set_calendar(ResourceId res, std::vector<TimeInterval> busy);

  /// Schedule a task on zero or more resources. All dependencies must
  /// already exist; scheduling is eager and deterministic (list scheduling
  /// in insertion order).
  TaskId add_task(std::string label, const std::vector<ResourceId>& resources,
                  Seconds duration, const std::vector<TaskId>& deps,
                  TaskOptions opts = TaskOptions());

  /// Single-resource convenience (kNoResource = pure delay).
  TaskId add_task(std::string label, ResourceId res, Seconds duration,
                  const std::vector<TaskId>& deps,
                  TaskOptions opts = TaskOptions());

  const Task& task(TaskId id) const {
    ECC_CHECK(id >= 0 && id < static_cast<int>(tasks_.size()));
    return tasks_[static_cast<std::size_t>(id)];
  }
  Seconds finish_time(TaskId id) const { return task(id).finish; }

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t resource_count() const { return resources_.size(); }

  /// Total occupied time on `res` (union of task segments, so overlapping
  /// multi-resource tasks are not double-counted).
  Seconds busy_time(ResourceId res) const;

  /// Finish time of the latest task (0 if none).
  Seconds makespan() const { return makespan_; }

  /// Total interference: task time spent inside reserved (training) windows
  /// on `res`. Idle-only tasks contribute 0 by construction.
  Seconds reserved_overlap(ResourceId res) const;

  /// Earliest time the resource can accept new work.
  Seconds resource_available(ResourceId res) const {
    return resources_[check_res(res)].available;
  }

  const std::string& resource_name(ResourceId res) const {
    return resources_[check_res(res)].name;
  }

 private:
  struct Resource {
    std::string name;
    Seconds available = 0;               // latest task finish (reporting)
    std::vector<TimeInterval> reserved;  // normalized training calendar
    std::vector<TimeInterval> busy;      // normalized task occupancy
    Seconds task_reserved_overlap = 0;
  };

  std::size_t check_res(ResourceId res) const {
    ECC_CHECK(res >= 0 && res < static_cast<int>(resources_.size()));
    return static_cast<std::size_t>(res);
  }

  std::vector<Resource> resources_;
  std::vector<Task> tasks_;
  Seconds makespan_ = 0;
};

}  // namespace eccheck::sim
