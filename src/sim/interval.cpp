#include "sim/interval.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace eccheck::sim {

std::vector<TimeInterval> normalize(std::vector<TimeInterval> intervals) {
  std::erase_if(intervals,
                [](const TimeInterval& i) { return i.length() <= 0; });
  std::sort(intervals.begin(), intervals.end(),
            [](const TimeInterval& a, const TimeInterval& b) {
              return a.begin < b.begin;
            });
  std::vector<TimeInterval> out;
  for (const auto& i : intervals) {
    if (!out.empty() && i.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, i.end);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

Seconds overlap_with(const TimeInterval& x,
                     const std::vector<TimeInterval>& calendar) {
  Seconds total = 0;
  for (const auto& c : calendar) {
    if (c.end <= x.begin) continue;
    if (c.begin >= x.end) break;
    total += std::min(c.end, x.end) - std::max(c.begin, x.begin);
  }
  return total;
}

std::vector<TimeInterval> gaps_of(const std::vector<TimeInterval>& busy,
                                  Seconds horizon_begin, Seconds horizon_end,
                                  Seconds min_len) {
  ECC_CHECK(horizon_end >= horizon_begin);
  std::vector<TimeInterval> out;
  Seconds cursor = horizon_begin;
  for (const auto& b : busy) {
    if (b.end <= horizon_begin) continue;
    if (b.begin >= horizon_end) break;
    if (b.begin > cursor && b.begin - cursor >= min_len)
      out.push_back({cursor, b.begin});
    cursor = std::max(cursor, b.end);
  }
  if (horizon_end > cursor && horizon_end - cursor >= min_len)
    out.push_back({cursor, horizon_end});
  return out;
}

}  // namespace eccheck::sim
