#include "sim/timeline.hpp"

#include <algorithm>

namespace eccheck::sim {

ResourceId Timeline::add_resource(std::string name) {
  resources_.push_back(Resource{std::move(name), 0, {}, {}, 0});
  return static_cast<ResourceId>(resources_.size() - 1);
}

void Timeline::reserve(ResourceId res, Seconds begin, Seconds end) {
  auto& r = resources_[check_res(res)];
  r.reserved.push_back({begin, end});
  r.reserved = normalize(std::move(r.reserved));
}

void Timeline::set_calendar(ResourceId res, std::vector<TimeInterval> busy) {
  resources_[check_res(res)].reserved = normalize(std::move(busy));
}

TaskId Timeline::add_task(std::string label, ResourceId res, Seconds duration,
                          const std::vector<TaskId>& deps, TaskOptions opts) {
  std::vector<ResourceId> rs;
  if (res != kNoResource) rs.push_back(res);
  return add_task(std::move(label), rs, duration, deps, opts);
}

TaskId Timeline::add_task(std::string label,
                          const std::vector<ResourceId>& resources,
                          Seconds duration, const std::vector<TaskId>& deps,
                          TaskOptions opts) {
  ECC_CHECK(duration >= 0);
  Task t;
  t.label = std::move(label);
  t.resources = resources;
  t.deps = deps;
  t.duration = duration;

  Seconds earliest = opts.not_before;
  for (TaskId d : deps) earliest = std::max(earliest, task(d).finish);

  if (resources.empty()) {
    // Pure delay / logical barrier: no resource contention.
    t.start = earliest;
    t.finish = earliest + duration;
    if (duration > 0) t.segments.push_back({t.start, t.finish});
  } else {
    // Blocked calendar: the union of every resource's existing task
    // occupancy, plus (for idle-only tasks) the reserved training windows.
    // Scheduling backfills: the task takes the earliest gap(s) after its
    // dependency-ready time — emission order does not impose FIFO delays,
    // matching hardware queues that drain whatever is ready.
    std::vector<TimeInterval> blocked;
    for (ResourceId res : resources) {
      const auto& r = resources_[check_res(res)];
      blocked.insert(blocked.end(), r.busy.begin(), r.busy.end());
      if (opts.idle_only)
        blocked.insert(blocked.end(), r.reserved.begin(), r.reserved.end());
    }
    blocked = normalize(std::move(blocked));

    if (duration == 0) {
      t.start = earliest;
      t.finish = earliest;
    } else if (!opts.idle_only) {
      // Contiguous slot: earliest gap of length >= duration.
      Seconds cursor = earliest;
      std::size_t i = 0;
      const Seconds inf = std::numeric_limits<Seconds>::infinity();
      for (;;) {
        while (i < blocked.size() && blocked[i].end <= cursor) ++i;
        Seconds gap_end = inf;
        if (i < blocked.size()) {
          if (blocked[i].begin <= cursor) {
            cursor = blocked[i].end;
            ++i;
            continue;
          }
          gap_end = blocked[i].begin;
        }
        if (gap_end - cursor >= duration) break;
        cursor = gap_end;
      }
      t.start = cursor;
      t.finish = cursor + duration;
      t.segments.push_back({t.start, t.finish});
    } else {
      // Idle-only: pack into gaps, splitting across consecutive gaps.
      Seconds cursor = earliest;
      Seconds remaining = duration;
      const Seconds inf = std::numeric_limits<Seconds>::infinity();
      std::size_t i = 0;
      t.start = -1;
      while (remaining > 0) {
        while (i < blocked.size() && blocked[i].end <= cursor) ++i;
        Seconds gap_end = inf;
        if (i < blocked.size()) {
          if (blocked[i].begin <= cursor) {
            cursor = blocked[i].end;
            ++i;
            continue;
          }
          gap_end = blocked[i].begin;
        }
        Seconds take = std::min(remaining, gap_end - cursor);
        if (take > 0) {
          t.segments.push_back({cursor, cursor + take});
          if (t.start < 0) t.start = cursor;
          cursor += take;
          remaining -= take;
        }
        if (remaining > 0) cursor = gap_end;
      }
      if (t.start < 0) t.start = cursor;
      t.finish = t.segments.empty() ? cursor : t.segments.back().end;
    }
  }

  for (ResourceId res : resources) {
    auto& r = resources_[check_res(res)];
    r.available = std::max(r.available, t.finish);
    if (!t.segments.empty()) {
      r.busy.insert(r.busy.end(), t.segments.begin(), t.segments.end());
      r.busy = normalize(std::move(r.busy));
    }
    if (!opts.idle_only) {
      for (const auto& seg : t.segments) {
        Seconds ov = overlap_with(seg, r.reserved);
        t.reserved_overlap += ov;
        r.task_reserved_overlap += ov;
      }
    }
  }

  makespan_ = std::max(makespan_, t.finish);
  tasks_.push_back(std::move(t));
  return static_cast<TaskId>(tasks_.size() - 1);
}

Seconds Timeline::reserved_overlap(ResourceId res) const {
  return resources_[check_res(res)].task_reserved_overlap;
}

Seconds Timeline::busy_time(ResourceId res) const {
  Seconds total = 0;
  for (const auto& iv : resources_[check_res(res)].busy) total += iv.length();
  return total;
}

}  // namespace eccheck::sim
