// Half-open virtual-time intervals and normalisation helpers.
//
// Used for NIC busy calendars (training traffic reservations) and for the
// idle-slot profiler (paper §IV-B3).
#pragma once

#include <vector>

#include "common/units.hpp"

namespace eccheck::sim {

struct TimeInterval {
  Seconds begin = 0;
  Seconds end = 0;  // half-open: [begin, end)

  Seconds length() const { return end - begin; }

  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

/// Sort by begin and merge overlapping/adjacent intervals.
std::vector<TimeInterval> normalize(std::vector<TimeInterval> intervals);

/// Total overlap length between interval `x` and a *normalized* calendar.
Seconds overlap_with(const TimeInterval& x,
                     const std::vector<TimeInterval>& calendar);

/// Gaps of length >= min_len between normalized `busy` intervals within
/// [horizon_begin, horizon_end).
std::vector<TimeInterval> gaps_of(const std::vector<TimeInterval>& busy,
                                  Seconds horizon_begin, Seconds horizon_end,
                                  Seconds min_len = 0);

}  // namespace eccheck::sim
