#include "obs/tracer.hpp"

#include <algorithm>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"

namespace eccheck::obs {
namespace {

std::atomic<std::uint64_t> next_tracer_id{1};

struct CachedBuf {
  std::uint64_t tracer_id;
  std::shared_ptr<void> buf;  // Tracer::ThreadBuf, type-erased for the cache
};

// Per-thread: buffers this thread registered (usually just the global
// tracer's) plus the name future registrations should carry. shared_ptr
// keeps a buffer alive past both thread exit and tracer destruction.
thread_local std::vector<CachedBuf> t_bufs;
thread_local std::string t_pending_name;

}  // namespace

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      tracer_id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuf* Tracer::thread_buf() {
  for (const auto& c : t_bufs)
    if (c.tracer_id == tracer_id_)
      return static_cast<ThreadBuf*>(c.buf.get());
  auto buf = std::make_shared<ThreadBuf>();
  buf->name = t_pending_name;
  {
    std::lock_guard lock(registry_mu_);
    buf->tid = static_cast<int>(threads_.size()) + 1;
    if (buf->name.empty()) buf->name = "thread" + std::to_string(buf->tid);
    threads_.push_back(buf);
  }
  t_bufs.push_back({tracer_id_, buf});
  return buf.get();
}

void Tracer::set_thread_name(const std::string& name) {
  t_pending_name = name;
  for (const auto& c : t_bufs) {
    auto* buf = static_cast<ThreadBuf*>(c.buf.get());
    std::lock_guard lock(buf->mu);
    buf->name = name;
  }
}

void Tracer::record_span(const std::string& name, std::uint64_t start_ns,
                         std::uint64_t end_ns, std::uint64_t bytes) {
  if (!enabled()) return;
  ThreadBuf* buf = thread_buf();
  std::lock_guard lock(buf->mu);
  buf->spans.push_back({name, start_ns, end_ns, bytes, buf->live_depth});
}

void Tracer::record_counter(const std::string& name, double value) {
  if (!enabled()) return;
  ThreadBuf* buf = thread_buf();
  std::lock_guard lock(buf->mu);
  buf->counters.push_back({name, now_ns(), value});
}

std::vector<Tracer::ThreadTrack> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard lock(registry_mu_);
    bufs = threads_;
  }
  std::vector<ThreadTrack> out;
  out.reserve(bufs.size());
  for (const auto& buf : bufs) {
    std::lock_guard lock(buf->mu);
    ThreadTrack t;
    t.tid = buf->tid;
    t.name = buf->name;
    t.spans = buf->spans;
    t.counters = buf->counters;
    out.push_back(std::move(t));
  }
  return out;
}

std::size_t Tracer::span_count() const {
  std::size_t n = 0;
  std::lock_guard lock(registry_mu_);
  for (const auto& buf : threads_) {
    std::lock_guard buf_lock(buf->mu);
    n += buf->spans.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard lock(registry_mu_);
  for (const auto& buf : threads_) {
    std::lock_guard buf_lock(buf->mu);
    buf->spans.clear();
    buf->counters.clear();
  }
}

void Tracer::export_to(ChromeTraceWriter& w,
                       const std::string& process_name) const {
  const int pid = w.begin_process(process_name);
  for (const auto& track : snapshot()) {
    if (track.spans.empty() && track.counters.empty()) continue;
    w.name_thread(pid, track.tid, track.name);
    for (const auto& s : track.spans) {
      std::string args = "\"depth\":" + std::to_string(s.depth);
      if (s.bytes > 0) {
        args += ",\"bytes\":" + std::to_string(s.bytes);
        const double dur_s =
            static_cast<double>(s.end_ns - s.start_ns) * 1e-9;
        if (dur_s > 0) {
          args += ",\"GiB_per_s\":" +
                  json_number(static_cast<double>(s.bytes) /
                              (1024.0 * 1024.0 * 1024.0) / dur_s);
        }
      }
      w.add_complete(pid, track.tid, s.name,
                     static_cast<double>(s.start_ns) / 1e3,
                     static_cast<double>(s.end_ns - s.start_ns) / 1e3, args);
    }
    for (const auto& c : track.counters)
      w.add_counter(pid, track.tid, c.name,
                    static_cast<double>(c.ts_ns) / 1e3, c.value);
  }
}

ScopedSpan::ScopedSpan(Tracer& tracer, const std::string& name,
                       std::uint64_t bytes)
    : bytes_(bytes) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  start_ns_ = tracer.now_ns();
  ++tracer.thread_buf()->live_depth;
}

ScopedSpan::~ScopedSpan() {
  if (!tracer_) return;
  const std::uint64_t end = tracer_->now_ns();
  Tracer::ThreadBuf* buf = tracer_->thread_buf();
  --buf->live_depth;
  std::lock_guard lock(buf->mu);
  buf->spans.push_back({std::move(name_), start_ns_, end, bytes_,
                        buf->live_depth});
}

}  // namespace eccheck::obs
