#include "obs/tracer.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"

namespace eccheck::obs {
namespace {

std::atomic<std::uint64_t> next_tracer_id{1};

struct CachedBuf {
  std::uint64_t tracer_id;
  std::shared_ptr<void> buf;  // Tracer::ThreadBuf, type-erased for the cache
};

// Per-thread: buffers this thread registered (usually just the global
// tracer's) plus the name future registrations should carry. shared_ptr
// keeps a buffer alive past both thread exit and tracer destruction.
thread_local std::vector<CachedBuf> t_bufs;
thread_local std::string t_pending_name;

// The calling thread's active distributed-trace context. Deliberately a
// process-global (not per-tracer): a context established at a service
// entry point must be visible to every instrumentation site the request
// touches, whichever tracer they record to.
thread_local TraceContext t_ctx;

// SplitMix64 finalizer — spreads the (pid, counter) seed over 64 bits so
// ids minted by different processes land in disjoint-looking spaces.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t next_id() {
  // The pid salt makes ids unique across the forked worker processes that
  // contribute to one merged trace; the counter makes them unique within a
  // process. fork() duplicates the counter, so the salt must come from
  // post-fork state (getpid), not a static seed.
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t id =
      mix64((static_cast<std::uint64_t>(::getpid()) << 32) ^ n);
  if (id == 0) id = 1;  // 0 is the "no id" sentinel
  return id;
}

}  // namespace

TraceContext current_trace_context() { return t_ctx; }

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id,
                                       std::uint64_t parent_span)
    : prev_(t_ctx) {
  t_ctx = {trace_id, parent_span};
}

ScopedTraceContext::~ScopedTraceContext() { t_ctx = prev_; }

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      tracer_id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::new_trace_id() { return next_id(); }

std::uint64_t Tracer::new_span_id() { return next_id(); }

Tracer::ThreadBuf* Tracer::thread_buf() {
  for (const auto& c : t_bufs)
    if (c.tracer_id == tracer_id_)
      return static_cast<ThreadBuf*>(c.buf.get());
  auto buf = std::make_shared<ThreadBuf>();
  buf->name = t_pending_name;
  {
    std::lock_guard lock(registry_mu_);
    buf->tid = static_cast<int>(threads_.size()) + 1;
    if (buf->name.empty()) buf->name = "thread" + std::to_string(buf->tid);
    threads_.push_back(buf);
  }
  t_bufs.push_back({tracer_id_, buf});
  return buf.get();
}

void Tracer::set_thread_name(const std::string& name) {
  t_pending_name = name;
  for (const auto& c : t_bufs) {
    auto* buf = static_cast<ThreadBuf*>(c.buf.get());
    std::lock_guard lock(buf->mu);
    buf->name = name;
  }
}

void Tracer::append_span(ThreadBuf* buf, SpanRec rec) {
  const std::size_t cap = max_per_thread_.load(std::memory_order_relaxed);
  std::lock_guard lock(buf->mu);
  if (buf->spans.size() >= cap) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (!warned_drop_.exchange(true, std::memory_order_relaxed))
      std::fprintf(stderr,
                   "eccheck: tracer thread buffer full (%zu spans); "
                   "dropping further spans (counted in obs.tracer.dropped)\n",
                   cap);
    return;
  }
  buf->spans.push_back(std::move(rec));
}

void Tracer::record_span(const std::string& name, std::uint64_t start_ns,
                         std::uint64_t end_ns, std::uint64_t bytes) {
  if (!enabled()) return;
  ThreadBuf* buf = thread_buf();
  append_span(buf, {name, start_ns, end_ns, bytes, buf->live_depth,
                    t_ctx.trace_id, t_ctx.trace_id ? new_span_id() : 0,
                    t_ctx.span_id});
}

void Tracer::record_counter(const std::string& name, double value) {
  if (!enabled()) return;
  ThreadBuf* buf = thread_buf();
  const std::size_t cap = max_per_thread_.load(std::memory_order_relaxed);
  std::lock_guard lock(buf->mu);
  if (buf->counters.size() >= cap) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (!warned_drop_.exchange(true, std::memory_order_relaxed))
      std::fprintf(stderr,
                   "eccheck: tracer thread buffer full (%zu counters); "
                   "dropping further records (counted in "
                   "obs.tracer.dropped)\n",
                   cap);
    return;
  }
  buf->counters.push_back({name, now_ns(), value});
}

std::vector<Tracer::ThreadTrack> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard lock(registry_mu_);
    bufs = threads_;
  }
  std::vector<ThreadTrack> out;
  out.reserve(bufs.size());
  for (const auto& buf : bufs) {
    std::lock_guard lock(buf->mu);
    ThreadTrack t;
    t.tid = buf->tid;
    t.name = buf->name;
    t.spans = buf->spans;
    t.counters = buf->counters;
    out.push_back(std::move(t));
  }
  return out;
}

std::size_t Tracer::span_count() const {
  std::size_t n = 0;
  std::lock_guard lock(registry_mu_);
  for (const auto& buf : threads_) {
    std::lock_guard buf_lock(buf->mu);
    n += buf->spans.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard lock(registry_mu_);
  for (const auto& buf : threads_) {
    std::lock_guard buf_lock(buf->mu);
    buf->spans.clear();
    buf->counters.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
  warned_drop_.store(false, std::memory_order_relaxed);
}

void Tracer::export_to(ChromeTraceWriter& w,
                       const std::string& process_name) const {
  const int pid = w.begin_process(process_name);
  for (const auto& track : snapshot()) {
    if (track.spans.empty() && track.counters.empty()) continue;
    w.name_thread(pid, track.tid, track.name);
    for (const auto& s : track.spans) {
      std::string args = "\"depth\":" + std::to_string(s.depth);
      if (s.bytes > 0) {
        args += ",\"bytes\":" + std::to_string(s.bytes);
        const double dur_s =
            static_cast<double>(s.end_ns - s.start_ns) * 1e-9;
        if (dur_s > 0) {
          args += ",\"GiB_per_s\":" +
                  json_number(static_cast<double>(s.bytes) /
                              (1024.0 * 1024.0 * 1024.0) / dur_s);
        }
      }
      // 64-bit ids as hex strings: JSON doubles only hold 53 bits.
      if (s.trace_id != 0) {
        char idbuf[64];
        std::snprintf(idbuf, sizeof(idbuf),
                      ",\"trace\":\"%016llx\",\"span\":\"%016llx\"",
                      static_cast<unsigned long long>(s.trace_id),
                      static_cast<unsigned long long>(s.span_id));
        args += idbuf;
        if (s.parent_span != 0) {
          std::snprintf(idbuf, sizeof(idbuf), ",\"parent\":\"%016llx\"",
                        static_cast<unsigned long long>(s.parent_span));
          args += idbuf;
        }
      }
      w.add_complete(pid, track.tid, s.name,
                     static_cast<double>(s.start_ns) / 1e3,
                     static_cast<double>(s.end_ns - s.start_ns) / 1e3, args);
    }
    for (const auto& c : track.counters)
      w.add_counter(pid, track.tid, c.name,
                    static_cast<double>(c.ts_ns) / 1e3, c.value);
  }
}

ScopedSpan::ScopedSpan(Tracer& tracer, const std::string& name,
                       std::uint64_t bytes)
    : bytes_(bytes) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  start_ns_ = tracer.now_ns();
  ++tracer.thread_buf()->live_depth;
  if (t_ctx.trace_id != 0) {
    trace_id_ = t_ctx.trace_id;
    parent_span_ = t_ctx.span_id;
    span_id_ = Tracer::new_span_id();
    prev_innermost_ = t_ctx.span_id;
    t_ctx.span_id = span_id_;
    pushed_ctx_ = true;
  }
}

void ScopedSpan::adopt(std::uint64_t trace_id, std::uint64_t parent_span) {
  if (!tracer_ || trace_id == 0) return;
  trace_id_ = trace_id;
  parent_span_ = parent_span;
  if (span_id_ == 0) span_id_ = Tracer::new_span_id();
}

ScopedSpan::~ScopedSpan() {
  if (!tracer_) return;
  const std::uint64_t end = tracer_->now_ns();
  Tracer::ThreadBuf* buf = tracer_->thread_buf();
  --buf->live_depth;
  if (pushed_ctx_ && t_ctx.trace_id == trace_id_)
    t_ctx.span_id = prev_innermost_;
  tracer_->append_span(buf, {std::move(name_), start_ns_, end, bytes_,
                             buf->live_depth, trace_id_, span_id_,
                             parent_span_});
}

}  // namespace eccheck::obs
