#include "obs/stats.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace eccheck::obs {

double HistSummary::stddev() const { return std::sqrt(variance()); }

void HistSummary::merge(const HistSummary& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count);
  const double nb = static_cast<double>(other.count);
  const double delta = other.running_mean - running_mean;
  m2 += other.m2 + delta * delta * na * nb / (na + nb);
  running_mean += delta * nb / (na + nb);
  count += other.count;
  sum += other.sum;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
}

std::string hist_summary_json(const HistSummary& h) {
  std::ostringstream os;
  os << "{\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
     << ",\"min\":" << json_number(h.min) << ",\"max\":" << json_number(h.max)
     << ",\"mean\":" << json_number(h.mean())
     << ",\"stddev\":" << json_number(h.stddev())
     << ",\"m2\":" << json_number(h.m2) << "}";
  return os.str();
}

void StatsRegistry::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard lock(mu_);
  counters_[name] += delta;
}

void StatsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mu_);
  gauges_[name] = value;
}

void StatsRegistry::observe(const std::string& name, double sample) {
  std::lock_guard lock(mu_);
  hists_[name].observe(sample);
}

void StatsRegistry::merge_hist(const std::string& name,
                               const HistSummary& other) {
  std::lock_guard lock(mu_);
  hists_[name].merge(other);
}

std::uint64_t StatsRegistry::counter(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double StatsRegistry::gauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

StatsRegistry::CounterMap StatsRegistry::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

StatsRegistry::GaugeMap StatsRegistry::gauges() const {
  std::lock_guard lock(mu_);
  return gauges_;
}

StatsRegistry::HistMap StatsRegistry::histograms() const {
  std::lock_guard lock(mu_);
  return hists_;
}

void StatsRegistry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

StatsRegistry::CounterMap StatsRegistry::delta(const CounterMap& now,
                                               const CounterMap& before) {
  CounterMap out;
  for (const auto& [key, value] : now) {
    auto it = before.find(key);
    const std::uint64_t base = it == before.end() ? 0 : it->second;
    if (value > base) out[key] = value - base;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void StatsRegistry::write_json(std::ostream& os) const {
  CounterMap c;
  GaugeMap g;
  HistMap h;
  {
    std::lock_guard lock(mu_);
    c = counters_;
    g = gauges_;
    h = hists_;
  }
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : c) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : g) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":" << json_number(v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [k, v] : h) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":" << hist_summary_json(v);
  }
  os << "}}";
}

std::string StatsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace eccheck::obs
