#include "obs/distributed.hpp"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "obs/tracer.hpp"

namespace eccheck::obs {
namespace {

std::string hex_id(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex_id(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

double num_or(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

/// The stats object inside a snapshot document — or the document itself
/// when it is already a bare StatsRegistry dump.
const JsonValue* stats_object(const JsonValue& doc) {
  if (doc.find("counters") != nullptr) return &doc;
  return doc.find("stats");
}

}  // namespace

std::uint64_t snapshot_abs_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::string serialize_snapshot(const Tracer& tracer, const StatsRegistry* stats,
                               const std::string& proc) {
  // clock_ns/abs_ns sampled back to back: their difference is the tracer
  // epoch's absolute position, the anchor offline merging aligns on.
  const std::uint64_t clock_ns = tracer.now_ns();
  const std::uint64_t abs_ns = snapshot_abs_ns();
  std::ostringstream os;
  os << "{\"proc\":\"" << json_escape(proc) << "\",\"clock_ns\":" << clock_ns
     << ",\"abs_ns\":" << abs_ns << ",\"dropped\":" << tracer.dropped_count();
  if (stats != nullptr) os << ",\"stats\":" << stats->to_json();
  os << ",\"threads\":[";
  bool first_thread = true;
  for (const Tracer::ThreadTrack& t : tracer.snapshot()) {
    if (!first_thread) os << ",";
    first_thread = false;
    os << "{\"tid\":" << t.tid << ",\"name\":\"" << json_escape(t.name)
       << "\",\"spans\":[";
    bool first = true;
    for (const Tracer::SpanRec& s : t.spans) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << json_escape(s.name) << "\",\"start\":" << s.start_ns
         << ",\"end\":" << s.end_ns << ",\"depth\":" << s.depth;
      if (s.bytes > 0) os << ",\"bytes\":" << s.bytes;
      if (s.trace_id != 0) {
        os << ",\"trace\":\"" << hex_id(s.trace_id) << "\",\"span\":\""
           << hex_id(s.span_id) << "\"";
        if (s.parent_span != 0)
          os << ",\"parent\":\"" << hex_id(s.parent_span) << "\"";
      }
      os << "}";
    }
    os << "],\"counters\":[";
    first = true;
    for (const Tracer::CounterRec& c : t.counters) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << json_escape(c.name) << "\",\"ts\":" << c.ts_ns
         << ",\"value\":" << json_number(c.value) << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

bool append_snapshot_to_trace(ChromeTraceWriter& w,
                              const std::string& snapshot_json,
                              const std::string& process_name,
                              std::int64_t shift_ns, std::string* error) {
  std::string perr;
  const std::unique_ptr<JsonValue> doc = JsonValue::parse(snapshot_json, &perr);
  if (!doc) return fail(error, "snapshot parse error: " + perr);
  const JsonValue* threads = doc->find("threads");
  if (threads == nullptr || !threads->is_array())
    return fail(error, "snapshot has no threads array");

  std::string name = process_name;
  if (name.empty()) {
    const JsonValue* proc = doc->find("proc");
    name = proc != nullptr && proc->is_string() ? proc->as_string() : "proc";
  }
  const int pid = w.begin_process(name);
  for (const JsonValue& t : threads->as_array()) {
    const int tid = static_cast<int>(num_or(t.find("tid"), 0));
    const JsonValue* tname = t.find("name");
    if (tname != nullptr && tname->is_string())
      w.name_thread(pid, tid, tname->as_string());
    const JsonValue* spans = t.find("spans");
    if (spans != nullptr && spans->is_array()) {
      for (const JsonValue& s : spans->as_array()) {
        const JsonValue* sname = s.find("name");
        if (sname == nullptr || !sname->is_string())
          return fail(error, "span without a name");
        const double start = num_or(s.find("start"), 0);
        const double end = num_or(s.find("end"), start);
        std::string args =
            "\"depth\":" +
            std::to_string(static_cast<int>(num_or(s.find("depth"), 0)));
        const double bytes = num_or(s.find("bytes"), 0);
        if (bytes > 0) {
          args += ",\"bytes\":" + std::to_string(
                                      static_cast<std::uint64_t>(bytes));
          const double dur_s = (end - start) * 1e-9;
          if (dur_s > 0)
            args += ",\"GiB_per_s\":" +
                    json_number(bytes / (1024.0 * 1024.0 * 1024.0) / dur_s);
        }
        for (const char* key : {"trace", "span", "parent"}) {
          const JsonValue* id = s.find(key);
          if (id != nullptr && id->is_string())
            args += std::string(",\"") + key + "\":\"" +
                    json_escape(id->as_string()) + "\"";
        }
        w.add_complete(pid, tid, sname->as_string(),
                       (start + static_cast<double>(shift_ns)) / 1e3,
                       (end - start) / 1e3, args);
      }
    }
    const JsonValue* counters = t.find("counters");
    if (counters != nullptr && counters->is_array()) {
      for (const JsonValue& c : counters->as_array()) {
        const JsonValue* cname = c.find("name");
        if (cname == nullptr || !cname->is_string()) continue;
        w.add_counter(pid, tid, cname->as_string(),
                      (num_or(c.find("ts"), 0) +
                       static_cast<double>(shift_ns)) /
                          1e3,
                      num_or(c.find("value"), 0));
      }
    }
  }
  return true;
}

bool accumulate_snapshot_stats(const std::string& snapshot_json,
                               StatsRegistry& reg, std::string* error) {
  std::string perr;
  const std::unique_ptr<JsonValue> doc = JsonValue::parse(snapshot_json, &perr);
  if (!doc) return fail(error, "stats parse error: " + perr);
  const JsonValue* stats = stats_object(*doc);
  // A snapshot serialized without a registry still carries its dropped
  // count; only a document that is neither a snapshot nor a stats dump is
  // an error.
  if (stats == nullptr && doc->find("threads") == nullptr)
    return fail(error, "document carries no stats object");

  if (stats != nullptr) {
    const JsonValue* counters = stats->find("counters");
    if (counters != nullptr && counters->is_object())
      for (const auto& [k, v] : counters->as_object())
        if (v.is_number())
          reg.add(k, static_cast<std::uint64_t>(v.as_number()));
    const JsonValue* gauges = stats->find("gauges");
    if (gauges != nullptr && gauges->is_object())
      for (const auto& [k, v] : gauges->as_object())
        if (v.is_number()) reg.set_gauge(k, v.as_number());
    const JsonValue* hists = stats->find("histograms");
    if (hists != nullptr && hists->is_object()) {
      for (const auto& [k, v] : hists->as_object()) {
        HistSummary h;
        h.count = static_cast<std::uint64_t>(num_or(v.find("count"), 0));
        h.sum = num_or(v.find("sum"), 0);
        h.min = num_or(v.find("min"), 0);
        h.max = num_or(v.find("max"), 0);
        h.m2 = num_or(v.find("m2"), 0);
        h.running_mean = h.count ? h.sum / static_cast<double>(h.count) : 0;
        if (h.count > 0) reg.merge_hist(k, h);
      }
    }
  }
  const double dropped = num_or(doc->find("dropped"), 0);
  if (dropped > 0)
    reg.add("obs.tracer.dropped", static_cast<std::uint64_t>(dropped));
  return true;
}

std::int64_t estimate_clock_offset_ns(const std::vector<ClockSample>& samples) {
  const ClockSample* best = nullptr;
  std::int64_t best_rtt = 0;
  for (const ClockSample& s : samples) {
    const std::int64_t rtt = s.local_recv_ns - s.local_send_ns;
    if (rtt < 0) continue;
    if (best == nullptr || rtt < best_rtt) {
      best = &s;
      best_rtt = rtt;
    }
  }
  if (best == nullptr) return 0;
  // The remote reading happened somewhere inside [send, recv]; the midpoint
  // is the minimum-variance estimate, and picking the minimum-RTT exchange
  // bounds the error by rtt/2.
  return best->remote_ns - (best->local_send_ns + best->local_recv_ns) / 2;
}

MergedTraceCheck check_merged_trace(const std::string& trace_json,
                                    std::size_t min_processes,
                                    bool require_all_resolved) {
  MergedTraceCheck out;
  std::string perr;
  const std::unique_ptr<JsonValue> doc = JsonValue::parse(trace_json, &perr);
  if (!doc) {
    out.error = "trace parse error: " + perr;
    return out;
  }
  out.valid_json = true;
  const JsonValue* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    out.error = "no traceEvents array";
    return out;
  }

  std::set<double> pids;
  std::map<std::pair<double, double>, double> track_end;  // (pid,tid) → end
  std::map<std::uint64_t, double> span_pid;               // span id → pid
  std::vector<std::pair<std::uint64_t, double>> parents;  // (parent, pid)
  for (const JsonValue& e : events->as_array()) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") continue;
    ++out.spans;
    const double pid = num_or(e.find("pid"), 0);
    const double tid = num_or(e.find("tid"), 0);
    pids.insert(pid);
    const double end = num_or(e.find("ts"), 0) + num_or(e.find("dur"), 0);
    auto [it, inserted] = track_end.try_emplace({pid, tid}, end);
    if (!inserted) {
      // Export order is span-completion order, so per track the end times
      // must be non-decreasing — the invariant offset correction preserves
      // (one constant shift per process). Small slack for µs rounding.
      if (end < it->second - 1e-3) out.monotone = false;
      it->second = std::max(it->second, end);
    }
    const JsonValue* args = e.find("args");
    if (args == nullptr) continue;
    const JsonValue* span = args->find("span");
    if (span != nullptr && span->is_string()) {
      ++out.linked_spans;
      span_pid[parse_hex_id(span->as_string())] = pid;
    }
    const JsonValue* parent = args->find("parent");
    if (parent != nullptr && parent->is_string())
      parents.emplace_back(parse_hex_id(parent->as_string()), pid);
  }
  out.processes = pids.size();
  for (const auto& [parent, pid] : parents) {
    auto it = span_pid.find(parent);
    if (it == span_pid.end()) {
      ++out.unresolved_parents;
    } else {
      ++out.resolved_parents;
      if (it->second != pid) ++out.cross_process_links;
    }
  }

  if (out.processes < min_processes)
    out.error = "spans from " + std::to_string(out.processes) +
                " processes, need " + std::to_string(min_processes);
  else if (!out.monotone)
    out.error = "per-track timestamps regress after offset correction";
  else if (out.cross_process_links == 0)
    out.error = "no cross-process parent/child links";
  else if (require_all_resolved && out.unresolved_parents > 0)
    out.error = std::to_string(out.unresolved_parents) +
                " parent ids do not resolve";
  out.ok = out.error.empty();
  return out;
}

}  // namespace eccheck::obs
