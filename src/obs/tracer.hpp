// Wall-clock span tracer for the real data path (thread pool, staged
// pipeline, coding kernels).
//
// PR 1 made the *virtual* timing plane observable; this is the same idea for
// real time: RAII ScopedSpans append {name, start, end, bytes} records to
// per-thread buffers (one uncontended mutex each — no global lock on the hot
// path), timestamped with steady_clock nanoseconds against a per-tracer
// epoch. A disabled tracer costs one relaxed atomic load per span site and
// takes no clock readings, so instrumentation can stay compiled into
// production paths.
//
// Export goes through the same ChromeTraceWriter as the sim::Timeline
// exporter, so a "real" process (pool workers, pipeline stage threads, codec
// slices) opens side by side with the virtual save/load processes in
// chrome://tracing / Perfetto. Spans carrying a byte count get a GiB/s
// argument computed at export time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eccheck::obs {

class ChromeTraceWriter;

class Tracer {
 public:
  struct SpanRec {
    std::string name;
    std::uint64_t start_ns = 0;  ///< since the tracer's epoch
    std::uint64_t end_ns = 0;
    std::uint64_t bytes = 0;     ///< payload processed; 0 = not a data span
    int depth = 0;               ///< ScopedSpan nesting depth at start
  };
  struct CounterRec {
    std::string name;
    std::uint64_t ts_ns = 0;
    double value = 0;
  };
  struct ThreadTrack {
    int tid = 0;
    std::string name;
    std::vector<SpanRec> spans;
    std::vector<CounterRec> counters;
  };

  Tracer();

  /// The process-wide tracer every built-in instrumentation site records to.
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since this tracer's epoch (monotonic).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Name the calling thread's track ("pool/worker0", "pipe/encode", ...).
  /// Cheap and callable any time; the name sticks to spans recorded later.
  static void set_thread_name(const std::string& name);

  /// Append a finished span to the calling thread's buffer. No-op while
  /// disabled. Used by ScopedSpan and by sites that measured the interval
  /// themselves (queue-wait time).
  void record_span(const std::string& name, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::uint64_t bytes = 0);

  /// Sampled counter (queue depth, in-flight items). No-op while disabled.
  void record_counter(const std::string& name, double value);

  /// Everything recorded so far, grouped per thread (tids are assigned in
  /// registration order). Safe to call concurrently with recording.
  std::vector<ThreadTrack> snapshot() const;

  std::size_t span_count() const;

  /// Drop all recorded spans/counters; thread registrations survive.
  void clear();

  /// Append one process named `process_name` holding every recorded track.
  void export_to(ChromeTraceWriter& w, const std::string& process_name) const;

 private:
  struct ThreadBuf {
    std::mutex mu;
    int tid = 0;
    std::string name;
    std::vector<SpanRec> spans;
    std::vector<CounterRec> counters;
    int live_depth = 0;  // only touched by the owning thread
  };

  ThreadBuf* thread_buf();

  friend class ScopedSpan;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  const std::uint64_t tracer_id_;

  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuf>> threads_;
};

/// RAII span: records [construction, destruction) on the calling thread.
/// Decides at construction whether the tracer is enabled — a span opened
/// while disabled stays disabled even if the tracer is enabled mid-span.
class ScopedSpan {
 public:
  explicit ScopedSpan(const std::string& name, std::uint64_t bytes = 0)
      : ScopedSpan(Tracer::global(), name, bytes) {}

  ScopedSpan(Tracer& tracer, const std::string& name, std::uint64_t bytes = 0);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

  /// Attach/override the payload size (known only after the work ran).
  void set_bytes(std::uint64_t bytes) { bytes_ = bytes; }

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  // null = disabled at construction
  std::string name_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace eccheck::obs
