// Wall-clock span tracer for the real data path (thread pool, staged
// pipeline, coding kernels) — and, since the distributed-observability work,
// the cross-process causality plane of the socket fabric.
//
// PR 1 made the *virtual* timing plane observable; this is the same idea for
// real time: RAII ScopedSpans append {name, start, end, bytes} records to
// per-thread buffers (one uncontended mutex each — no global lock on the hot
// path), timestamped with steady_clock nanoseconds against a per-tracer
// epoch. A disabled tracer costs one relaxed atomic load per span site and
// takes no clock readings, so instrumentation can stay compiled into
// production paths.
//
// Distributed tracing: a thread can carry an active TraceContext
// (trace_id + innermost span id). While one is active, every ScopedSpan
// allocates a process-unique span id, records its parent, and becomes the
// context's innermost span for its lifetime — so nested spans chain, and
// the socket transport can stamp (trace_id, parent_span) into outgoing
// frames. The receiving side adopts the wire context onto its recv span,
// which is what links a coordinator request to the worker collectives it
// fans out into. Span ids are salted with the pid so ids minted by
// different processes never collide in a merged trace.
//
// Buffers are bounded (see set_span_capacity): a long-running daemon cannot
// grow memory without limit — once a thread's buffer is full further spans
// are counted in dropped_count() (surfaced as the `obs.tracer.dropped`
// stat by the service snapshot) and a single warning is printed.
//
// Export goes through the same ChromeTraceWriter as the sim::Timeline
// exporter, so a "real" process (pool workers, pipeline stage threads, codec
// slices) opens side by side with the virtual save/load processes in
// chrome://tracing / Perfetto. Spans carrying a byte count get a GiB/s
// argument computed at export time; spans carrying trace ids get
// "trace"/"span"/"parent" arguments for cross-process correlation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eccheck::obs {

class ChromeTraceWriter;

/// The propagated identity of a distributed operation: which trace this
/// thread is working for and the innermost span to parent new work under.
/// trace_id == 0 means "no active context".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< innermost span (the parent for new work)
};

/// The calling thread's active context ({0,0} when none). What the socket
/// transport stamps into outgoing frames while tracing is enabled.
TraceContext current_trace_context();

/// RAII: make (trace_id, parent_span) the calling thread's active context —
/// used by a server adopting the context a request carried, and by a
/// request entry point starting a fresh trace (parent_span = 0). Restores
/// the previous context on destruction.
class ScopedTraceContext {
 public:
  ScopedTraceContext(std::uint64_t trace_id, std::uint64_t parent_span);
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext();

 private:
  TraceContext prev_;
};

class Tracer {
 public:
  struct SpanRec {
    std::string name;
    std::uint64_t start_ns = 0;  ///< since the tracer's epoch
    std::uint64_t end_ns = 0;
    std::uint64_t bytes = 0;     ///< payload processed; 0 = not a data span
    int depth = 0;               ///< ScopedSpan nesting depth at start
    std::uint64_t trace_id = 0;  ///< distributed trace (0 = unlinked span)
    std::uint64_t span_id = 0;   ///< process-unique id of this span
    std::uint64_t parent_span = 0;  ///< 0 = root of its trace
  };
  struct CounterRec {
    std::string name;
    std::uint64_t ts_ns = 0;
    double value = 0;
  };
  struct ThreadTrack {
    int tid = 0;
    std::string name;
    std::vector<SpanRec> spans;
    std::vector<CounterRec> counters;
  };

  Tracer();

  /// The process-wide tracer every built-in instrumentation site records to.
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// A fresh process-unique nonzero trace id (pid-salted, so concurrent
  /// processes never mint the same id).
  static std::uint64_t new_trace_id();

  /// A fresh process-unique nonzero span id (same id space as the ids
  /// ScopedSpan allocates).
  static std::uint64_t new_span_id();

  /// Nanoseconds since this tracer's epoch (monotonic).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Name the calling thread's track ("pool/worker0", "pipe/encode", ...).
  /// Cheap and callable any time; the name sticks to spans recorded later.
  static void set_thread_name(const std::string& name);

  /// Append a finished span to the calling thread's buffer. No-op while
  /// disabled. Used by ScopedSpan and by sites that measured the interval
  /// themselves (queue-wait time).
  void record_span(const std::string& name, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::uint64_t bytes = 0);

  /// Sampled counter (queue depth, in-flight items). No-op while disabled.
  void record_counter(const std::string& name, double value);

  /// Everything recorded so far, grouped per thread (tids are assigned in
  /// registration order). Safe to call concurrently with recording.
  std::vector<ThreadTrack> snapshot() const;

  std::size_t span_count() const;

  /// Bound each per-thread buffer to `n` spans (counters share the bound).
  /// Records beyond the bound are dropped and counted — a daemon tracing
  /// for days must not grow without limit. Default: 1<<18 per thread.
  void set_span_capacity(std::size_t n) {
    max_per_thread_.store(n, std::memory_order_relaxed);
  }
  std::size_t span_capacity() const {
    return max_per_thread_.load(std::memory_order_relaxed);
  }

  /// Spans/counters dropped because a thread buffer hit the capacity bound.
  std::uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drop all recorded spans/counters; thread registrations survive.
  /// Resets the dropped counter.
  void clear();

  /// Append one process named `process_name` holding every recorded track.
  void export_to(ChromeTraceWriter& w, const std::string& process_name) const;

 private:
  struct ThreadBuf {
    std::mutex mu;
    int tid = 0;
    std::string name;
    std::vector<SpanRec> spans;
    std::vector<CounterRec> counters;
    int live_depth = 0;  // only touched by the owning thread
  };

  ThreadBuf* thread_buf();
  /// Capacity-checked append; counts drops and warns once.
  void append_span(ThreadBuf* buf, SpanRec rec);

  friend class ScopedSpan;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> max_per_thread_{std::size_t{1} << 18};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> warned_drop_{false};
  const std::uint64_t tracer_id_;

  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuf>> threads_;
};

/// RAII span: records [construction, destruction) on the calling thread.
/// Decides at construction whether the tracer is enabled — a span opened
/// while disabled stays disabled even if the tracer is enabled mid-span.
/// When the thread carries an active TraceContext, the span joins it: it
/// gets a span id, its parent is the context's innermost span, and it is
/// the innermost span until destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const std::string& name, std::uint64_t bytes = 0)
      : ScopedSpan(Tracer::global(), name, bytes) {}

  ScopedSpan(Tracer& tracer, const std::string& name, std::uint64_t bytes = 0);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

  /// Attach/override the payload size (known only after the work ran).
  void set_bytes(std::uint64_t bytes) { bytes_ = bytes; }

  bool active() const { return tracer_ != nullptr; }

  /// This span's id in the distributed trace (0 while inactive or outside
  /// any trace context) — what a sender stamps into a frame so the
  /// receiver's span can claim it as parent.
  std::uint64_t span_id() const { return span_id_; }

  /// Adopt a remote parent: link this span under (trace_id, parent_span)
  /// received off the wire. Allocates a span id if the span did not join a
  /// local context at construction. No-op on an inactive span.
  void adopt(std::uint64_t trace_id, std::uint64_t parent_span);

 private:
  Tracer* tracer_ = nullptr;  // null = disabled at construction
  std::string name_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_ = 0;
  std::uint64_t prev_innermost_ = 0;
  bool pushed_ctx_ = false;
};

}  // namespace eccheck::obs
