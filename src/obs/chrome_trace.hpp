// Chrome-trace (chrome://tracing / Perfetto) exporter for sim::Timeline.
//
// Renders a finished virtual-time schedule as a trace viewers can load
// directly: one process per added timeline (so a save and the following
// load can live side by side in one file), one named thread per resource
// (node0/tx, node0/cpu, remote_storage, ...), one complete ("X") event per
// occupied task segment, and flow arrows ("s"/"f") along task dependency
// edges so the critical path is visible. Virtual seconds map to trace
// microseconds.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/stats.hpp"
#include "sim/timeline.hpp"

namespace eccheck::obs {

class ChromeTraceWriter {
 public:
  /// Append every task of `tl` as one process named `process_name`.
  void add_timeline(const sim::Timeline& tl, const std::string& process_name);

  // Generic event API — obs::Tracer (and anything else producing real-time
  // spans) renders into the same file through these, so real and virtual
  // tracks open side by side.

  /// Start a new process track group; returns its pid.
  int begin_process(const std::string& process_name);

  /// Name a thread track within a process.
  void name_thread(int pid, int tid, const std::string& name);

  /// Complete ("X") event. `args_json` is the *interior* of the args object
  /// (e.g. "\"bytes\":4096"), empty for none.
  void add_complete(int pid, int tid, const std::string& name, double ts_us,
                    double dur_us, const std::string& args_json = "");

  /// Counter ("C") event — renders as a stacked-area track.
  void add_counter(int pid, int tid, const std::string& name, double ts_us,
                   double value);

  void write(std::ostream& os) const;

  /// Write to `path`; returns false (and writes nothing) on I/O failure.
  bool write_file(const std::string& path) const;

  std::size_t event_count() const { return events_.size(); }

 private:
  // Pre-serialized JSON objects, one per trace event.
  std::vector<std::string> events_;
  int next_pid_ = 1;
  std::uint64_t next_flow_id_ = 1;
};

/// Fold a finished timeline into `reg`:
///  * gauge  res.<resource>.busy_s   — occupied seconds per resource;
///  * gauge  timeline.makespan_s;
///  * counter task.<label>.count     — tasks per stage label;
///  * hist   task.<label>.duration_s — duration distribution per stage.
/// `prefix` namespaces every key (e.g. "save." / "load.").
void collect_timeline_stats(const sim::Timeline& tl, StatsRegistry& reg,
                            const std::string& prefix = "");

}  // namespace eccheck::obs
