#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace eccheck::obs {
namespace {

// Trace timestamps are microseconds; virtual time is seconds.
constexpr double kUsPerSecond = 1e6;

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

// Track a task renders on: its first resource, or the virtual track (tid 0)
// for resourceless delays/barriers.
int anchor_tid(const sim::Task& t) {
  return t.resources.empty() ? 0 : t.resources.front() + 1;
}

std::string meta_event(int pid, int tid, const std::string& what,
                       const std::string& name) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"name\":\"" << what << "\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(name)
     << "\"}}";
  return os.str();
}

}  // namespace

int ChromeTraceWriter::begin_process(const std::string& process_name) {
  const int pid = next_pid_++;
  events_.push_back(meta_event(pid, 0, "process_name", process_name));
  return pid;
}

void ChromeTraceWriter::name_thread(int pid, int tid,
                                    const std::string& name) {
  events_.push_back(meta_event(pid, tid, "thread_name", name));
}

void ChromeTraceWriter::add_complete(int pid, int tid, const std::string& name,
                                     double ts_us, double dur_us,
                                     const std::string& args_json) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"X\",\"pid\":"
     << pid << ",\"tid\":" << tid << ",\"ts\":" << fmt(ts_us)
     << ",\"dur\":" << fmt(dur_us);
  if (!args_json.empty()) os << ",\"args\":{" << args_json << "}";
  os << "}";
  events_.push_back(os.str());
}

void ChromeTraceWriter::add_counter(int pid, int tid, const std::string& name,
                                    double ts_us, double value) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"C\",\"pid\":"
     << pid << ",\"tid\":" << tid << ",\"ts\":" << fmt(ts_us)
     << ",\"args\":{\"value\":" << fmt(value) << "}}";
  events_.push_back(os.str());
}

void ChromeTraceWriter::add_timeline(const sim::Timeline& tl,
                                     const std::string& process_name) {
  const int pid = begin_process(process_name);
  events_.push_back(meta_event(pid, 0, "thread_name", "(virtual)"));
  for (std::size_t r = 0; r < tl.resource_count(); ++r)
    events_.push_back(meta_event(pid, static_cast<int>(r) + 1, "thread_name",
                                 tl.resource_name(static_cast<int>(r))));

  for (std::size_t id = 0; id < tl.task_count(); ++id) {
    const sim::Task& t = tl.task(static_cast<sim::TaskId>(id));
    if (t.segments.empty()) {
      // Zero-duration task (barrier/gate): an instant marker keeps it
      // visible without occupying any track.
      std::ostringstream os;
      os << "{\"name\":\"" << json_escape(t.label)
         << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
         << ",\"tid\":" << anchor_tid(t)
         << ",\"ts\":" << fmt(t.start * kUsPerSecond) << ",\"args\":{\"task\":"
         << id << "}}";
      events_.push_back(os.str());
    } else {
      for (sim::ResourceId res : t.resources) {
        for (const auto& seg : t.segments) {
          std::ostringstream os;
          os << "{\"name\":\"" << json_escape(t.label)
             << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << res + 1
             << ",\"ts\":" << fmt(seg.begin * kUsPerSecond)
             << ",\"dur\":" << fmt(seg.length() * kUsPerSecond)
             << ",\"args\":{\"task\":" << id
             << ",\"reserved_overlap_s\":" << t.reserved_overlap << "}}";
          events_.push_back(os.str());
        }
      }
    }
  }

  // Dependency flow arrows: producer finish → consumer start.
  for (std::size_t id = 0; id < tl.task_count(); ++id) {
    const sim::Task& t = tl.task(static_cast<sim::TaskId>(id));
    for (sim::TaskId dep : t.deps) {
      const sim::Task& d = tl.task(dep);
      const std::uint64_t flow = next_flow_id_++;
      {
        std::ostringstream os;
        os << "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":" << flow
           << ",\"pid\":" << pid << ",\"tid\":" << anchor_tid(d)
           << ",\"ts\":" << fmt(d.finish * kUsPerSecond) << "}";
        events_.push_back(os.str());
      }
      {
        std::ostringstream os;
        os << "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\","
           << "\"id\":" << flow << ",\"pid\":" << pid
           << ",\"tid\":" << anchor_tid(t)
           << ",\"ts\":" << fmt(t.start * kUsPerSecond) << "}";
        events_.push_back(os.str());
      }
    }
  }
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    os << events_[i];
    if (i + 1 < events_.size()) os << ",";
    os << "\n";
  }
  os << "]}\n";
}

bool ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write(f);
  return static_cast<bool>(f);
}

void collect_timeline_stats(const sim::Timeline& tl, StatsRegistry& reg,
                            const std::string& prefix) {
  for (std::size_t r = 0; r < tl.resource_count(); ++r) {
    const auto res = static_cast<sim::ResourceId>(r);
    reg.set_gauge(prefix + "res." + tl.resource_name(res) + ".busy_s",
                  tl.busy_time(res));
  }
  reg.set_gauge(prefix + "timeline.makespan_s", tl.makespan());
  for (std::size_t id = 0; id < tl.task_count(); ++id) {
    const sim::Task& t = tl.task(static_cast<sim::TaskId>(id));
    // Stage key: the label up to the first ':' (send_buffer labels embed the
    // store key after the colon, which would explode cardinality).
    const std::string stage = t.label.substr(0, t.label.find(':'));
    reg.add(prefix + "task." + stage + ".count");
    reg.observe(prefix + "task." + stage + ".duration_s", t.duration);
  }
}

}  // namespace eccheck::obs
