// Minimal JSON helpers shared by the observability exporters and the bench
// baseline tooling.
//
// json_number is the one double formatter every emitter goes through:
// round-trip (max_digits10) precision so baselines survive a
// serialize/parse/serialize cycle bit-exactly, and a finite-value guard —
// IEEE inf/nan have no JSON spelling, so they serialize as null instead of
// producing an unloadable document.
//
// JsonValue is a small recursive-descent parser for the documents this repo
// itself emits (bench JSON-lines, baselines, stats dumps). It accepts all of
// RFC 8259 except \u surrogate pairs (kept verbatim) and is not meant as a
// general-purpose parser.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eccheck::obs {

/// Round-trip decimal formatting of `v`; "null" when not finite.
std::string json_number(double v);

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  const std::map<std::string, JsonValue>& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Parse one complete document. Returns nullopt-style empty pointer on
  /// syntax error (with `error` describing the position when non-null).
  static std::unique_ptr<JsonValue> parse(const std::string& text,
                                          std::string* error = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace eccheck::obs
