#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace eccheck::obs {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values that fit exactly print without an exponent or trailing
  // zeros — counters and byte totals stay greppable.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse(JsonValue& out, std::string* error) {
    skip();
    if (!value(out)) {
      fail(error);
      return false;
    }
    skip();
    if (pos_ != s_.size()) {
      fail(error);
      return false;
    }
    return true;
  }

 private:
  void fail(std::string* error) const {
    if (error)
      *error = "JSON syntax error at offset " + std::to_string(pos_);
  }

  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return string(out.string_);
      case 't':
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = true;
        return literal("true");
      case 'f':
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = false;
        return literal("false");
      case 'n':
        out.type_ = JsonValue::Type::kNull;
        return literal("null");
      default:
        out.type_ = JsonValue::Type::kNumber;
        return number(out.number_);
    }
  }

  bool object(JsonValue& out) {
    out.type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip();
      std::string key;
      if (!string(key)) return false;
      skip();
      if (peek() != ':') return false;
      ++pos_;
      skip();
      JsonValue member;
      if (!value(member)) return false;
      out.object_.emplace(std::move(key), std::move(member));
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip();
      JsonValue elem;
      if (!value(elem)) return false;
      out.array_.push_back(std::move(elem));
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return false;
            // Keep the escape verbatim; the repo's emitters only escape
            // control characters, which never need to round-trip as text.
            out += "\\u";
            out += s_.substr(pos_ + 1, 4);
            pos_ += 4;
            break;
          }
          default: return false;
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    out = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void skip() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::unique_ptr<JsonValue> JsonValue::parse(const std::string& text,
                                            std::string* error) {
  auto v = std::make_unique<JsonValue>();
  JsonParser p(text);
  if (!p.parse(*v, error)) return nullptr;
  return v;
}

}  // namespace eccheck::obs
