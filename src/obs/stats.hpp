// StatsRegistry: named counters, gauges and histogram summaries shared by
// the timing plane and the checkpoint engines.
//
// The registry is the machine-readable complement to the three coarse
// breakdown entries in SaveReport: every fabric helper on VirtualCluster
// counts the bytes it moved under an edge-kind key ("net.p2p_data.bytes",
// "remote.write.bytes", ...), and obs::collect_timeline_stats folds a
// finished sim::Timeline into per-resource busy gauges and per-stage task
// histograms. Engines snapshot the counter map before an operation and
// attach the delta to their report, so a report's "stats" always describes
// exactly one save or load even though the registry itself is cumulative
// for the cluster's lifetime.
//
// Counters are exact (uint64, accumulated per event with the same
// virtual-byte rounding the engines use), which lets tests assert that the
// per-edge-kind byte counters sum to SaveReport::network_bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace eccheck::obs {

/// Summary of observed samples: mean/min/max plus streaming (Welford)
/// variance — count/sum/min/max alone can't distinguish a stable stage from
/// a bimodal one when bench runs are compared.
struct HistSummary {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double m2 = 0;           ///< Σ(x−mean)², updated via Welford's recurrence
  double running_mean = 0; ///< Welford's running mean (== mean() throughout)

  void observe(double sample) {
    if (count == 0) {
      min = max = sample;
    } else {
      if (sample < min) min = sample;
      if (sample > max) max = sample;
    }
    ++count;
    sum += sample;
    const double delta = sample - running_mean;
    running_mean += delta / static_cast<double>(count);
    m2 += delta * (sample - running_mean);
  }
  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
  /// Sample variance (n−1 denominator); 0 with fewer than two samples.
  double variance() const {
    return count > 1 ? m2 / static_cast<double>(count - 1) : 0;
  }
  double stddev() const;

  /// Fold `other` into this summary (Chan's parallel Welford combine), as
  /// if every sample of both had been observed here. The aggregation path
  /// uses this to merge per-worker latency histograms into one fleet view.
  void merge(const HistSummary& other);
};

/// {"count":N,"sum":...,"min":...,"max":...,"mean":...,"stddev":...,"m2":...}
/// — m2 rides along so a parsed summary can be merge()d losslessly.
std::string hist_summary_json(const HistSummary& h);

class StatsRegistry {
 public:
  using CounterMap = std::map<std::string, std::uint64_t>;
  using GaugeMap = std::map<std::string, double>;
  using HistMap = std::map<std::string, HistSummary>;

  /// Monotonic counter (bytes moved, tasks emitted, ...).
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Last-write-wins gauge (busy seconds, makespan, ...).
  void set_gauge(const std::string& name, double value);

  /// Histogram sample (task durations, packet latencies, ...).
  void observe(const std::string& name, double sample);

  /// Fold a whole pre-built summary into the named histogram (see
  /// HistSummary::merge) — the aggregation path for remote snapshots.
  void merge_hist(const std::string& name, const HistSummary& other);

  /// Current counter value (0 if never touched).
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  CounterMap counters() const;
  GaugeMap gauges() const;
  HistMap histograms() const;

  void clear();

  /// now - before, per key, dropping entries that did not move. `before`
  /// is a snapshot taken from the same registry via counters().
  static CounterMap delta(const CounterMap& now, const CounterMap& before);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} on one line.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  CounterMap counters_;
  GaugeMap gauges_;
  HistMap hists_;
};

/// Minimal JSON string escaping for keys/labels.
std::string json_escape(const std::string& s);

}  // namespace eccheck::obs
