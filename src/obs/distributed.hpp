// Distributed observability: turning per-process tracer buffers and stats
// registries into one merged, clock-aligned view of a multi-process job.
//
// Every process in the checkpoint service (coordinator, worker daemons,
// forked engine ranks) records spans against its own Tracer epoch and
// counts into its own StatsRegistry. This module is the aggregation layer
// on top:
//
//  * serialize_snapshot / append_snapshot_to_trace — a process serializes
//    its tracer buffer (+ optional stats) to a self-contained JSON
//    document; a merger parses any number of such documents into one
//    ChromeTraceWriter, shifting each process's timestamps into the
//    merger's clock domain.
//
//  * estimate_clock_offset_ns — ping-pong midpoint offset estimation
//    between two steady clocks (the classic NTP-style bound): from samples
//    (local_send, remote, local_recv) pick the minimum-RTT exchange and
//    estimate remote ≈ local + offset. Same-host processes share
//    CLOCK_MONOTONIC, so snapshot_abs_ns() additionally lets offline
//    mergers (engine mode: no coordinator to ping) align absolutely.
//
//  * accumulate_snapshot_stats — fold a snapshot's stats object into an
//    aggregate registry: counters sum, gauges last-write-wins, histograms
//    merge via HistSummary::merge (the m2 field makes this lossless).
//
//  * check_merged_trace — the well-formedness oracle tests and the CLI
//    demos assert against: valid JSON, spans from ≥N processes, per-track
//    monotone timestamps after offset correction, parent/child span ids
//    resolving (cross-process links counted separately). Workers that were
//    SIGKILLed take their buffers with them, so callers choose whether
//    unresolved parents are an error (controlled tests) or expected
//    (kill/recover demos).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eccheck::obs {

class ChromeTraceWriter;
class StatsRegistry;
class Tracer;

/// CLOCK_MONOTONIC now, in nanoseconds. Shared epoch for every process on
/// one host — the absolute alignment anchor engine-mode merging uses.
std::uint64_t snapshot_abs_ns();

/// Serialize `tracer`'s buffers (and `stats`, when non-null) into one JSON
/// document. `proc` names the originating process ("worker3"). The
/// document carries a (clock_ns, abs_ns) pair sampled back-to-back so a
/// merger can recover the tracer epoch's absolute position.
std::string serialize_snapshot(const Tracer& tracer, const StatsRegistry* stats,
                               const std::string& proc);

/// Parse a serialize_snapshot document and append its spans/counters to
/// `w` as one process. Every timestamp is shifted by `shift_ns`
/// (merger-domain = snapshot-domain + shift). `process_name` overrides the
/// document's proc name when non-empty. Returns false (with *error set)
/// on malformed input.
bool append_snapshot_to_trace(ChromeTraceWriter& w,
                              const std::string& snapshot_json,
                              const std::string& process_name,
                              std::int64_t shift_ns, std::string* error);

/// Fold the stats of a serialize_snapshot document — or a bare
/// StatsRegistry::to_json() document — into `reg`: counters sum, gauges
/// last-write-wins, histograms merge. A snapshot's dropped-span count is
/// added to the `obs.tracer.dropped` counter.
bool accumulate_snapshot_stats(const std::string& snapshot_json,
                               StatsRegistry& reg, std::string* error);

/// One ping-pong exchange against a remote clock: local timestamps around
/// the exchange plus the remote reading it returned. All in each side's
/// own tracer-nanosecond domain.
struct ClockSample {
  std::int64_t local_send_ns = 0;
  std::int64_t local_recv_ns = 0;
  std::int64_t remote_ns = 0;
};

/// Midpoint offset from the minimum-RTT sample: remote ≈ local + offset.
/// To shift remote timestamps into the local domain, subtract the offset.
/// Zero when `samples` is empty.
std::int64_t estimate_clock_offset_ns(const std::vector<ClockSample>& samples);

/// Verdict of check_merged_trace.
struct MergedTraceCheck {
  bool valid_json = false;
  bool ok = false;  ///< everything below within the caller's requirements
  std::size_t processes = 0;        ///< distinct pids owning ≥1 span
  std::size_t spans = 0;            ///< complete events
  std::size_t linked_spans = 0;     ///< spans carrying a distributed span id
  std::size_t resolved_parents = 0;
  std::size_t unresolved_parents = 0;  ///< parent id not found in the file
  std::size_t cross_process_links = 0; ///< parent resolved in a different pid
  bool monotone = true;  ///< per (pid,tid): event end times non-decreasing
  std::string error;     ///< first violated requirement, empty when ok
};

/// Validate a merged Chrome trace document: well-formed JSON, spans from
/// at least `min_processes` distinct processes, at least one
/// cross-process parent/child link, monotone per-track timestamps, and —
/// iff `require_all_resolved` — no dangling parent ids.
MergedTraceCheck check_merged_trace(const std::string& trace_json,
                                    std::size_t min_processes,
                                    bool require_all_resolved);

}  // namespace eccheck::obs
