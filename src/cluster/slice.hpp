// ClusterSlice: a contiguous window of nodes presented as a standalone
// cluster.
//
// The group-based mode (§VI) runs the unmodified ECCheck protocol inside
// each group; a slice translates the engine's local node ids
// [0, group_size) onto the global cluster and shares the global timeline so
// the groups' schedules overlap naturally. A slice over the whole cluster
// (the default conversion) behaves exactly like the cluster itself.
#pragma once

#include "cluster/cluster.hpp"

namespace eccheck::cluster {

class ClusterSlice {
 public:
  /// Whole-cluster view; owns_timeline controls whether reset_timeline()
  /// really resets (per-group engines must not wipe their siblings' tasks).
  explicit ClusterSlice(VirtualCluster& c, bool owns_timeline = true)
      : c_(&c), first_(0), count_(c.num_nodes()),
        owns_timeline_(owns_timeline) {}

  ClusterSlice(VirtualCluster& c, int first_node, int node_count,
               bool owns_timeline)
      : c_(&c), first_(first_node), count_(node_count),
        owns_timeline_(owns_timeline) {
    ECC_CHECK(first_node >= 0 && node_count >= 1 &&
              first_node + node_count <= c.num_nodes());
  }

  VirtualCluster& underlying() { return *c_; }
  int first_node() const { return first_; }

  int num_nodes() const { return count_; }
  int gpus_per_node() const { return c_->gpus_per_node(); }
  int world_size() const { return count_ * c_->gpus_per_node(); }
  const ClusterConfig& config() const { return c_->config(); }
  sim::Timeline& timeline() { return c_->timeline(); }
  const sim::Timeline& timeline() const { return c_->timeline(); }
  obs::StatsRegistry& stats() { return c_->stats(); }
  const obs::StatsRegistry& stats() const { return c_->stats(); }

  void reset_timeline() {
    if (owns_timeline_) c_->reset_timeline();
  }

  bool alive(int node) const { return c_->alive(to_global(node)); }
  Store& host(int node) { return c_->host(to_global(node)); }
  const Store& host(int node) const { return c_->host(to_global(node)); }
  Store& remote() { return c_->remote(); }
  const Store& remote() const { return c_->remote(); }

  TaskId dtoh(int node, int gpu, std::size_t bytes,
              const std::vector<TaskId>& deps) {
    return c_->dtoh(to_global(node), gpu, bytes, deps);
  }
  TaskId host_copy(int node, std::size_t bytes,
                   const std::vector<TaskId>& deps) {
    return c_->host_copy(to_global(node), bytes, deps);
  }
  TaskId cpu_code(int node, std::size_t bytes,
                  const std::vector<TaskId>& deps) {
    return c_->cpu_code(to_global(node), bytes, deps);
  }
  TaskId cpu_xor(int node, std::size_t bytes,
                 const std::vector<TaskId>& deps) {
    return c_->cpu_xor(to_global(node), bytes, deps);
  }
  TaskId cpu_serialize(int node, std::size_t bytes,
                       const std::vector<TaskId>& deps) {
    return c_->cpu_serialize(to_global(node), bytes, deps);
  }
  TaskId net_send(int src, int dst, std::size_t bytes,
                  const std::vector<TaskId>& deps, bool idle_only = false,
                  const std::string& label = "send") {
    return c_->net_send(to_global(src), to_global(dst), bytes, deps,
                        idle_only, label);
  }
  TaskId remote_write(int node, std::size_t bytes,
                      const std::vector<TaskId>& deps) {
    return c_->remote_write(to_global(node), bytes, deps);
  }
  TaskId remote_read(int node, std::size_t bytes,
                     const std::vector<TaskId>& deps) {
    return c_->remote_read(to_global(node), bytes, deps);
  }
  TaskId barrier(const std::vector<TaskId>& deps) {
    return c_->barrier(deps);
  }
  TaskId flush_to_remote(int node, const std::string& key,
                         const std::string& remote_key,
                         const std::vector<TaskId>& deps) {
    return c_->flush_to_remote(to_global(node), key, remote_key, deps);
  }
  TaskId fetch_from_remote(int node, const std::string& remote_key,
                           const std::string& key,
                           const std::vector<TaskId>& deps) {
    return c_->fetch_from_remote(to_global(node), remote_key, key, deps);
  }

  sim::ResourceId nic_tx(int node) const {
    return c_->nic_tx(to_global(node));
  }
  sim::ResourceId nic_rx(int node) const {
    return c_->nic_rx(to_global(node));
  }
  sim::ResourceId cpu(int node) const { return c_->cpu(to_global(node)); }

 private:
  int to_global(int local) const {
    ECC_CHECK_MSG(local >= 0 && local < count_,
                  "slice-local node " << local << " out of range");
    return first_ + local;
  }

  VirtualCluster* c_;
  int first_;
  int count_;
  bool owns_timeline_;
};

/// Worker placement helpers in slice-local coordinates.
inline int slice_node_of_worker(const ClusterSlice& s, int worker) {
  return worker / s.gpus_per_node();
}
inline int slice_gpu_of_worker(const ClusterSlice& s, int worker) {
  return worker % s.gpus_per_node();
}

}  // namespace eccheck::cluster
