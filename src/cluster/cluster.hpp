// VirtualCluster: the in-process stand-in for the paper's testbed.
//
// Combines three concerns the checkpoint engines need:
//  * data plane  — per-node volatile host-memory Stores plus a persistent
//    remote Store; bytes really move, so recovery can be verified bit-exact;
//  * timing plane — a sim::Timeline with per-GPU DtoH engines, per-node
//    CPU + NIC TX/RX resources and one shared remote-storage resource,
//    durations derived from the ClusterConfig cost model;
//  * failure injection — kill() wipes a node's volatile store (CPU memory
//    is non-persistent, §II-A), replace() brings up a fresh empty node.
//
// Engines call the fabric helpers (send_buffer, remote_write, ...) which
// move bytes AND emit timeline tasks, returning TaskIds so dataflow
// dependencies translate into the schedule.
#pragma once

#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/store.hpp"
#include "obs/stats.hpp"
#include "sim/timeline.hpp"

namespace eccheck::cluster {

using sim::TaskId;

class VirtualCluster;

/// One byte-moving fabric operation as seen by a FaultHook — enough for
/// deterministic fault injection to address "the Nth transfer of this save".
struct FabricOp {
  enum class Kind { kDtoh, kHostCopy, kNetSend, kRemoteWrite, kRemoteRead };
  Kind kind = Kind::kNetSend;
  int src = -1;           ///< node issuing the op
  int dst = -1;           ///< receiving node (kNetSend only)
  std::size_t bytes = 0;  ///< real bytes moved
};

const char* fabric_op_kind_name(FabricOp::Kind kind);

/// Mid-operation failure injection (chaos campaigns): installed via
/// set_fault_hook, the hook runs at the start of every byte-moving fabric
/// helper, before any data lands at the destination. A hook that kill()s a
/// participant makes the in-flight bytes vanish: the caller's next access to
/// the dead node's store throws CheckFailure, aborting the operation with
/// realistic partial state — everything already committed stays, nothing
/// after the fault arrives, and no commit marker is written.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  virtual void on_fabric_op(VirtualCluster& cluster, const FabricOp& op) = 0;
};

class VirtualCluster {
 public:
  explicit VirtualCluster(ClusterConfig cfg);

  const ClusterConfig& config() const { return cfg_; }
  int num_nodes() const { return cfg_.num_nodes; }
  int gpus_per_node() const { return cfg_.gpus_per_node; }
  int world_size() const { return cfg_.world_size(); }

  sim::Timeline& timeline() { return timeline_; }
  const sim::Timeline& timeline() const { return timeline_; }

  /// Cumulative observability counters for this cluster's lifetime: every
  /// fabric helper records the (virtual) bytes it moved under an edge-kind
  /// key ("net.p2p_data.bytes", "remote.write.bytes", ...). NOT cleared by
  /// reset_timeline() — engines snapshot counters() around an operation and
  /// report the delta.
  obs::StatsRegistry& stats() { return stats_; }
  const obs::StatsRegistry& stats() const { return stats_; }

  /// Drop all scheduled tasks and reset resource availability to 0, keeping
  /// stores and NIC calendars. Engines call this so each measured operation
  /// (one save, one load) starts at virtual time zero.
  void reset_timeline();

  // ---- data plane -------------------------------------------------------

  bool alive(int node) const { return alive_[check_node(node)]; }
  Store& host(int node);              ///< volatile host memory (must be alive)
  const Store& host(int node) const;
  Store& remote() { return remote_; }  ///< persistent remote storage
  const Store& remote() const { return remote_; }

  /// Fail a node: marks it dead and wipes its volatile store. The node must
  /// currently be alive — killing an already-dead node is a caller
  /// bookkeeping bug (the first failure already wiped the store; a second
  /// "failure" of the same slot cannot happen before replace()).
  void kill(int node);

  /// Bring up a replacement (fresh, empty) node in the same slot. The slot
  /// must currently be dead — replacing a live node would silently discard
  /// its checkpoint state.
  void replace(int node);

  std::vector<int> alive_nodes() const;
  int alive_count() const;

  /// Install (or clear, with nullptr) the mid-operation fault hook. The hook
  /// fires at the start of every byte-moving fabric helper; it is never
  /// re-entered if the hook itself triggers fabric activity.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  FaultHook* fault_hook() const { return fault_hook_; }

  // ---- fabric: timing-only tasks ----------------------------------------

  /// GPU→CPU snapshot copy on worker (node, gpu).
  TaskId dtoh(int node, int gpu, std::size_t bytes,
              const std::vector<TaskId>& deps);

  /// Host memcpy (packing tensor bytes into coding buffers).
  TaskId host_copy(int node, std::size_t bytes,
                   const std::vector<TaskId>& deps);

  /// CRS encode/decode compute (thread-pool accelerated, §IV-A). Encode
  /// runs on the per-node "cpu" lane; XOR reduction runs on a separate
  /// "xor" lane, mirroring the paper's dedicated encoding and XOR-reduction
  /// threads (§IV-C) so a stalled reduction never blocks encoding.
  TaskId cpu_code(int node, std::size_t bytes,
                  const std::vector<TaskId>& deps);

  /// XOR-reduction compute.
  TaskId cpu_xor(int node, std::size_t bytes,
                 const std::vector<TaskId>& deps);

  /// Pickle-style serialization/deserialization (baselines, metadata).
  TaskId cpu_serialize(int node, std::size_t bytes,
                       const std::vector<TaskId>& deps);

  /// Inter-node transfer occupying src TX and dst RX. With idle_only the
  /// transfer is packed into training-idle NIC windows (§IV-B3).
  TaskId net_send(int src, int dst, std::size_t bytes,
                  const std::vector<TaskId>& deps, bool idle_only = false,
                  const std::string& label = "send");

  /// Write/read to/from remote storage (shared aggregate bandwidth).
  TaskId remote_write(int node, std::size_t bytes,
                      const std::vector<TaskId>& deps);
  TaskId remote_read(int node, std::size_t bytes,
                     const std::vector<TaskId>& deps);

  /// Zero-duration join node.
  TaskId barrier(const std::vector<TaskId>& deps);

  // ---- fabric: data + timing convenience --------------------------------

  /// Copy host(src)[src_key] into host(dst)[dst_key] and charge the NIC.
  TaskId send_buffer(int src, int dst, const std::string& src_key,
                     const std::string& dst_key,
                     const std::vector<TaskId>& deps, bool idle_only = false);

  /// Copy host(node)[key] into remote()[remote_key], charging storage.
  TaskId flush_to_remote(int node, const std::string& key,
                         const std::string& remote_key,
                         const std::vector<TaskId>& deps);

  /// Copy remote()[remote_key] into host(node)[key], charging storage.
  TaskId fetch_from_remote(int node, const std::string& remote_key,
                           const std::string& key,
                           const std::vector<TaskId>& deps);

  // ---- training traffic calendars ---------------------------------------

  /// Mark the node's NIC (TX and RX) busy with training traffic.
  void set_nic_calendar(int node, const std::vector<sim::TimeInterval>& busy);

  /// Total checkpoint-traffic time that landed inside training windows on
  /// this node's NIC (interference; 0 when everything was idle-scheduled).
  Seconds nic_interference(int node) const;

  // resource accessors (exposed for tests / custom engines)
  sim::ResourceId nic_tx(int node) const { return nic_tx_[check_node(node)]; }
  sim::ResourceId nic_rx(int node) const { return nic_rx_[check_node(node)]; }
  sim::ResourceId cpu(int node) const { return cpu_[check_node(node)]; }
  sim::ResourceId xor_lane(int node) const {
    return xor_[check_node(node)];
  }
  sim::ResourceId storage_resource() const { return storage_; }

 private:
  std::size_t check_node(int node) const {
    ECC_CHECK_MSG(node >= 0 && node < cfg_.num_nodes,
                  "node " << node << " out of range");
    return static_cast<std::size_t>(node);
  }

  Seconds virt(std::size_t bytes, BytesPerSecond bw) const {
    return static_cast<double>(bytes) * cfg_.size_scale / bw;
  }

  void build_resources();
  void fire_fault_hook(const FabricOp& op);

  /// Virtual bytes charged for `bytes` real bytes, with the same rounding
  /// the engines' report accounting uses (so stats sums match reports).
  std::size_t vbytes(std::size_t bytes) const {
    return static_cast<std::size_t>(static_cast<double>(bytes) *
                                    cfg_.size_scale);
  }

  ClusterConfig cfg_;
  sim::Timeline timeline_;
  obs::StatsRegistry stats_;
  std::vector<bool> alive_;
  std::vector<Store> hosts_;
  Store remote_;

  // resource ids
  std::vector<sim::ResourceId> nic_tx_, nic_rx_, cpu_, xor_;
  std::vector<std::vector<sim::ResourceId>> dtoh_;  // [node][gpu]
  sim::ResourceId storage_ = sim::kNoResource;

  // calendars survive reset_timeline()
  std::vector<std::vector<sim::TimeInterval>> nic_calendar_;

  FaultHook* fault_hook_ = nullptr;
  bool in_fault_hook_ = false;  ///< re-entrancy guard
};

}  // namespace eccheck::cluster
