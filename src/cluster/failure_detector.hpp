// Heartbeat failure detection in virtual time.
//
// The paper assumes failures are detected and replacements provisioned
// before eccheck.load runs; this models the detection step so end-to-end
// recovery latency (failure → detection → load → resume) can be reported.
// Every node heartbeats all peers each `heartbeat_interval`; a peer is
// suspected after `timeout` without a beat and confirmed once a quorum of
// observers agrees (avoids acting on one lossy link).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "common/check.hpp"

namespace eccheck::cluster {

struct FailureDetectorConfig {
  Seconds heartbeat_interval = 0.5;
  Seconds timeout = 2.0;  ///< silence before an observer suspects
  int quorum = 1;         ///< observers that must concur (≤ alive peers)
};

class FailureDetector {
 public:
  /// `cluster_nodes` (optional) validates the quorum against the cluster at
  /// config time: a failed node has at most cluster_nodes-1 observers, so a
  /// larger quorum could never confirm any failure even with zero prior
  /// deaths — a configuration bug, rejected here rather than mid-recovery.
  explicit FailureDetector(FailureDetectorConfig cfg, int cluster_nodes = 0)
      : cfg_(cfg) {
    ECC_CHECK(cfg.heartbeat_interval > 0);
    ECC_CHECK(cfg.timeout >= cfg.heartbeat_interval);
    ECC_CHECK(cfg.quorum >= 1);
    if (cluster_nodes > 0) {
      ECC_CHECK_MSG(cfg.quorum <= cluster_nodes - 1,
                    "quorum " << cfg.quorum << " can never be met: a failed "
                    "node has at most " << cluster_nodes - 1
                    << " observers in a " << cluster_nodes << "-node cluster");
    }
  }

  const FailureDetectorConfig& config() const { return cfg_; }

  /// Degraded mode: with fewer alive observers than the configured quorum
  /// (concurrent failures shrank the cluster), the detector falls back to
  /// unanimity among the survivors instead of deadlocking. Detection then
  /// still happens — with weaker protection against a single lossy link —
  /// which matches the availability-first stance of recovery: a stalled
  /// detector would leave the cluster down forever.
  int effective_quorum(int observers) const {
    ECC_CHECK_MSG(observers >= 1,
                  "failure detection requires at least one alive observer");
    return std::min(cfg_.quorum, observers);
  }

  /// True when `observers` alive peers force the unanimity fallback.
  bool degraded(int observers) const {
    return observers < cfg_.quorum;
  }

  /// When one observer suspects a node that died at `fail_time`: the last
  /// heartbeat it received was at ⌊fail/Δ⌋·Δ, so suspicion fires at that
  /// beat + timeout.
  Seconds suspicion_time(Seconds fail_time) const {
    const Seconds last_beat =
        std::floor(fail_time / cfg_.heartbeat_interval) *
        cfg_.heartbeat_interval;
    return last_beat + cfg_.timeout;
  }

  /// Confirmed detection: observers' heartbeat phases are staggered by
  /// observer index (i·Δ/observers), so the q-th observer to suspect sets
  /// the confirmation time (q = effective_quorum, so detection degrades to
  /// survivor unanimity instead of aborting when observers < quorum).
  Seconds detection_time(Seconds fail_time, int observers) const {
    const int quorum = effective_quorum(observers);
    const Seconds stagger =
        cfg_.heartbeat_interval / static_cast<double>(observers);
    // Observer i's beats land at i·stagger + k·Δ: its last beat before the
    // failure is offset-dependent; the q-th earliest suspicion confirms.
    std::vector<Seconds> suspicions;
    for (int i = 0; i < observers; ++i) {
      const Seconds phase = i * stagger;
      // An observer whose first beat at `phase` lands after the failure has
      // received nothing yet: its silence clock starts at process start
      // (t = 0), never before — a negative last_beat would yield suspicion
      // times earlier than physically possible.
      const Seconds last_beat = std::max(
          0.0, std::floor((fail_time - phase) / cfg_.heartbeat_interval) *
                       cfg_.heartbeat_interval +
                   phase);
      suspicions.push_back(last_beat + cfg_.timeout);
    }
    std::sort(suspicions.begin(), suspicions.end());
    return suspicions[static_cast<std::size_t>(quorum - 1)];
  }

  /// Worst-case detection latency after a failure.
  Seconds max_latency() const {
    return cfg_.timeout + cfg_.heartbeat_interval;
  }

 private:
  FailureDetectorConfig cfg_;
};

/// A worker's liveness as the coordinator sees it.
///
///   kAlive   — beating within the timeout.
///   kSuspect — silent past the timeout; being probed. A suspect is *gray*:
///              it may be SIGSTOP'd, overloaded, or partitioned, and may
///              yet come back. No repair is started for a suspect.
///   kDead    — confirmed: either hard evidence (connection refused — the
///              process is gone) or `suspect_probes` consecutive probes
///              failed to elicit a beat. Repair starts here.
enum class Liveness { kAlive, kSuspect, kDead };

inline const char* to_string(Liveness s) {
  switch (s) {
    case Liveness::kAlive:   return "alive";
    case Liveness::kSuspect: return "suspect";
    case Liveness::kDead:    return "dead";
  }
  return "?";
}

/// LivenessTracker: FailureDetector's wall-clock sibling. FailureDetector
/// *models* detection latency in virtual time for the simulator;
/// LivenessTracker *performs* detection against real heartbeats arriving
/// over sockets. The coordinator feeds it beats as they arrive and calls
/// evaluate() periodically; silence past `heartbeat_timeout` turns a worker
/// into a suspect, and suspects are confirmed dead either by hard socket
/// evidence (probe refused) or by `suspect_probes` consecutive probe rounds
/// that elicited no fresh beat — the wall-clock analogue of the simulated
/// detector's observer quorum. All time is passed in explicitly, so tests
/// drive it deterministically without sleeping.
class LivenessTracker {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    Clock::duration heartbeat_timeout = std::chrono::milliseconds(1500);
    int suspect_probes = 2;
  };

  struct Peer {
    Liveness state = Liveness::kAlive;
    Clock::time_point last_beat{};
    std::uint64_t beats = 0;        ///< total beats received
    std::uint64_t epoch = 0;        ///< epoch carried by the newest beat
    int failed_probes = 0;          ///< consecutive probes without a beat
  };

  LivenessTracker(Config cfg, int world, Clock::time_point now)
      : cfg_(cfg), peers_(static_cast<std::size_t>(world)) {
    ECC_CHECK(world >= 1);
    ECC_CHECK(cfg.heartbeat_timeout.count() > 0);
    ECC_CHECK(cfg.suspect_probes >= 1);
    for (Peer& p : peers_) p.last_beat = now;  // grace period at startup
  }

  int world() const { return static_cast<int>(peers_.size()); }
  const Peer& peer(int rank) const { return peers_.at(idx(rank)); }
  Liveness state(int rank) const { return peer(rank).state; }

  /// A heartbeat from `rank`. Revives a *suspect* (it was gray, not gone)
  /// but never a dead worker: death is a one-way door until mark_alive() —
  /// the repair controller may already be fencing/replacing it, and a beat
  /// from a corpse is exactly the stale-resurrection case fencing exists
  /// for. Returns the resulting state so the caller can tell a revived
  /// suspect (kAlive) from a fenced corpse (kDead).
  Liveness beat(int rank, std::uint64_t epoch, Clock::time_point now) {
    Peer& p = peers_.at(idx(rank));
    p.beats += 1;
    p.epoch = epoch;
    if (p.state == Liveness::kDead) return Liveness::kDead;
    p.last_beat = now;
    p.failed_probes = 0;
    p.state = Liveness::kAlive;
    return p.state;
  }

  /// Sweep: every alive worker silent past heartbeat_timeout becomes a
  /// suspect. Returns the ranks that changed state this call.
  std::vector<int> evaluate(Clock::time_point now) {
    std::vector<int> fresh;
    for (int r = 0; r < world(); ++r) {
      Peer& p = peers_[idx(r)];
      if (p.state != Liveness::kAlive) continue;
      if (now - p.last_beat > cfg_.heartbeat_timeout) {
        p.state = Liveness::kSuspect;
        p.failed_probes = 0;
        fresh.push_back(r);
      }
    }
    return fresh;
  }

  /// Outcome of probing a suspect. `alive_evidence` (probe answered AND a
  /// beat arrived since the last probe) clears the suspicion; a refused
  /// probe (`hard_dead`) kills immediately; anything else counts toward
  /// suspect_probes. Returns the new state.
  Liveness probe_result(int rank, bool hard_dead, bool alive_evidence,
                        Clock::time_point now) {
    Peer& p = peers_.at(idx(rank));
    if (p.state != Liveness::kSuspect) return p.state;
    if (alive_evidence) {
      p.state = Liveness::kAlive;
      p.last_beat = now;
      p.failed_probes = 0;
    } else if (hard_dead || ++p.failed_probes >= cfg_.suspect_probes) {
      p.state = Liveness::kDead;
    }
    return p.state;
  }

  /// Hard external evidence (connection reset mid-request, EOF on the
  /// control socket): straight to dead, no probing.
  void mark_dead(int rank) { peers_.at(idx(rank)).state = Liveness::kDead; }

  /// Repair finished / replacement admitted: the rank is alive again with a
  /// fresh grace period and epoch.
  void mark_alive(int rank, std::uint64_t epoch, Clock::time_point now) {
    Peer& p = peers_.at(idx(rank));
    p.state = Liveness::kAlive;
    p.last_beat = now;
    p.failed_probes = 0;
    p.epoch = epoch;
  }

  std::vector<int> ranks_in(Liveness s) const {
    std::vector<int> out;
    for (int r = 0; r < world(); ++r)
      if (peers_[idx(r)].state == s) out.push_back(r);
    return out;
  }
  std::vector<int> dead() const { return ranks_in(Liveness::kDead); }
  std::vector<int> suspects() const { return ranks_in(Liveness::kSuspect); }
  int alive_count() const {
    return static_cast<int>(ranks_in(Liveness::kAlive).size());
  }

 private:
  static std::size_t idx(int rank) { return static_cast<std::size_t>(rank); }

  Config cfg_;
  std::vector<Peer> peers_;
};

}  // namespace eccheck::cluster
