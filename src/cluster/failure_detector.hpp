// Heartbeat failure detection in virtual time.
//
// The paper assumes failures are detected and replacements provisioned
// before eccheck.load runs; this models the detection step so end-to-end
// recovery latency (failure → detection → load → resume) can be reported.
// Every node heartbeats all peers each `heartbeat_interval`; a peer is
// suspected after `timeout` without a beat and confirmed once a quorum of
// observers agrees (avoids acting on one lossy link).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/units.hpp"
#include "common/check.hpp"

namespace eccheck::cluster {

struct FailureDetectorConfig {
  Seconds heartbeat_interval = 0.5;
  Seconds timeout = 2.0;  ///< silence before an observer suspects
  int quorum = 1;         ///< observers that must concur (≤ alive peers)
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorConfig cfg) : cfg_(cfg) {
    ECC_CHECK(cfg.heartbeat_interval > 0);
    ECC_CHECK(cfg.timeout >= cfg.heartbeat_interval);
    ECC_CHECK(cfg.quorum >= 1);
  }

  const FailureDetectorConfig& config() const { return cfg_; }

  /// When one observer suspects a node that died at `fail_time`: the last
  /// heartbeat it received was at ⌊fail/Δ⌋·Δ, so suspicion fires at that
  /// beat + timeout.
  Seconds suspicion_time(Seconds fail_time) const {
    const Seconds last_beat =
        std::floor(fail_time / cfg_.heartbeat_interval) *
        cfg_.heartbeat_interval;
    return last_beat + cfg_.timeout;
  }

  /// Confirmed detection: observers' heartbeat phases are staggered by
  /// observer index (i·Δ/observers), so the q-th observer to suspect sets
  /// the confirmation time.
  Seconds detection_time(Seconds fail_time, int observers) const {
    ECC_CHECK(observers >= cfg_.quorum);
    const Seconds stagger =
        cfg_.heartbeat_interval / static_cast<double>(observers);
    // Observer i's beats land at i·stagger + k·Δ: its last beat before the
    // failure is offset-dependent; the q-th earliest suspicion confirms.
    std::vector<Seconds> suspicions;
    for (int i = 0; i < observers; ++i) {
      const Seconds phase = i * stagger;
      // An observer whose first beat at `phase` lands after the failure has
      // received nothing yet: its silence clock starts at process start
      // (t = 0), never before — a negative last_beat would yield suspicion
      // times earlier than physically possible.
      const Seconds last_beat = std::max(
          0.0, std::floor((fail_time - phase) / cfg_.heartbeat_interval) *
                       cfg_.heartbeat_interval +
                   phase);
      suspicions.push_back(last_beat + cfg_.timeout);
    }
    std::sort(suspicions.begin(), suspicions.end());
    return suspicions[static_cast<std::size_t>(cfg_.quorum - 1)];
  }

  /// Worst-case detection latency after a failure.
  Seconds max_latency() const {
    return cfg_.timeout + cfg_.heartbeat_interval;
  }

 private:
  FailureDetectorConfig cfg_;
};

}  // namespace eccheck::cluster
