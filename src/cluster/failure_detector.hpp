// Heartbeat failure detection in virtual time.
//
// The paper assumes failures are detected and replacements provisioned
// before eccheck.load runs; this models the detection step so end-to-end
// recovery latency (failure → detection → load → resume) can be reported.
// Every node heartbeats all peers each `heartbeat_interval`; a peer is
// suspected after `timeout` without a beat and confirmed once a quorum of
// observers agrees (avoids acting on one lossy link).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/units.hpp"
#include "common/check.hpp"

namespace eccheck::cluster {

struct FailureDetectorConfig {
  Seconds heartbeat_interval = 0.5;
  Seconds timeout = 2.0;  ///< silence before an observer suspects
  int quorum = 1;         ///< observers that must concur (≤ alive peers)
};

class FailureDetector {
 public:
  /// `cluster_nodes` (optional) validates the quorum against the cluster at
  /// config time: a failed node has at most cluster_nodes-1 observers, so a
  /// larger quorum could never confirm any failure even with zero prior
  /// deaths — a configuration bug, rejected here rather than mid-recovery.
  explicit FailureDetector(FailureDetectorConfig cfg, int cluster_nodes = 0)
      : cfg_(cfg) {
    ECC_CHECK(cfg.heartbeat_interval > 0);
    ECC_CHECK(cfg.timeout >= cfg.heartbeat_interval);
    ECC_CHECK(cfg.quorum >= 1);
    if (cluster_nodes > 0) {
      ECC_CHECK_MSG(cfg.quorum <= cluster_nodes - 1,
                    "quorum " << cfg.quorum << " can never be met: a failed "
                    "node has at most " << cluster_nodes - 1
                    << " observers in a " << cluster_nodes << "-node cluster");
    }
  }

  const FailureDetectorConfig& config() const { return cfg_; }

  /// Degraded mode: with fewer alive observers than the configured quorum
  /// (concurrent failures shrank the cluster), the detector falls back to
  /// unanimity among the survivors instead of deadlocking. Detection then
  /// still happens — with weaker protection against a single lossy link —
  /// which matches the availability-first stance of recovery: a stalled
  /// detector would leave the cluster down forever.
  int effective_quorum(int observers) const {
    ECC_CHECK_MSG(observers >= 1,
                  "failure detection requires at least one alive observer");
    return std::min(cfg_.quorum, observers);
  }

  /// True when `observers` alive peers force the unanimity fallback.
  bool degraded(int observers) const {
    return observers < cfg_.quorum;
  }

  /// When one observer suspects a node that died at `fail_time`: the last
  /// heartbeat it received was at ⌊fail/Δ⌋·Δ, so suspicion fires at that
  /// beat + timeout.
  Seconds suspicion_time(Seconds fail_time) const {
    const Seconds last_beat =
        std::floor(fail_time / cfg_.heartbeat_interval) *
        cfg_.heartbeat_interval;
    return last_beat + cfg_.timeout;
  }

  /// Confirmed detection: observers' heartbeat phases are staggered by
  /// observer index (i·Δ/observers), so the q-th observer to suspect sets
  /// the confirmation time (q = effective_quorum, so detection degrades to
  /// survivor unanimity instead of aborting when observers < quorum).
  Seconds detection_time(Seconds fail_time, int observers) const {
    const int quorum = effective_quorum(observers);
    const Seconds stagger =
        cfg_.heartbeat_interval / static_cast<double>(observers);
    // Observer i's beats land at i·stagger + k·Δ: its last beat before the
    // failure is offset-dependent; the q-th earliest suspicion confirms.
    std::vector<Seconds> suspicions;
    for (int i = 0; i < observers; ++i) {
      const Seconds phase = i * stagger;
      // An observer whose first beat at `phase` lands after the failure has
      // received nothing yet: its silence clock starts at process start
      // (t = 0), never before — a negative last_beat would yield suspicion
      // times earlier than physically possible.
      const Seconds last_beat = std::max(
          0.0, std::floor((fail_time - phase) / cfg_.heartbeat_interval) *
                       cfg_.heartbeat_interval +
                   phase);
      suspicions.push_back(last_beat + cfg_.timeout);
    }
    std::sort(suspicions.begin(), suspicions.end());
    return suspicions[static_cast<std::size_t>(quorum - 1)];
  }

  /// Worst-case detection latency after a failure.
  Seconds max_latency() const {
    return cfg_.timeout + cfg_.heartbeat_interval;
  }

 private:
  FailureDetectorConfig cfg_;
};

}  // namespace eccheck::cluster
