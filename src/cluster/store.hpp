// Key-value byte stores: volatile per-node host memory and persistent
// remote storage.
//
// Checkpoint engines address chunks with structured string keys
// ("ckpt/7/data/2"). Node stores are wiped by failure injection; the remote
// store survives (paper step 4: low-frequency flush to persistent storage
// guards against catastrophic loss).
#pragma once

#include <map>
#include <string>

#include "common/bytes.hpp"

namespace eccheck::cluster {

class Store {
 public:
  void put(const std::string& key, Buffer value) {
    entries_[key] = std::move(value);
  }

  bool contains(const std::string& key) const {
    return entries_.count(key) != 0;
  }

  /// Read-only view; throws if absent.
  const Buffer& get(const std::string& key) const {
    auto it = entries_.find(key);
    ECC_CHECK_MSG(it != entries_.end(), "store missing key '" << key << "'");
    return it->second;
  }

  /// Move the value out (erases the key); throws if absent.
  Buffer take(const std::string& key) {
    auto it = entries_.find(key);
    ECC_CHECK_MSG(it != entries_.end(), "store missing key '" << key << "'");
    Buffer b = std::move(it->second);
    entries_.erase(it);
    return b;
  }

  void erase(const std::string& key) { entries_.erase(key); }
  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& [k, v] : entries_) n += v.size();
    return n;
  }

  /// Keys with the given prefix, sorted.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const {
    std::vector<std::string> out;
    for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      out.push_back(it->first);
    }
    return out;
  }

 private:
  std::map<std::string, Buffer> entries_;
};

}  // namespace eccheck::cluster
