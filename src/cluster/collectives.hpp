// Collective communication over the virtual fabric.
//
// Distributed training frameworks move checkpoint data with the same
// collective primitives they train with (NCCL/Gloo, §V-A). These
// implementations move real bytes between node stores and emit timeline
// tasks, so both the data plane and the schedule are exercised:
//   broadcast      — root sends to every other participant (tree-free,
//                    matching GEMINI's group broadcast);
//   all_gather     — every participant ends with every shard;
//   ring_all_reduce— XOR-reduce (the only reduction the checkpoint layer
//                    needs) via the classic 2(p−1)-step ring: reduce-scatter
//                    then all-gather, 2·(p−1)/p of the payload per link.
// Each helper returns the finish TaskIds per participant.
//
// Sentinel convention: slots that never get a task — the root's slot in
// broadcast(), any slot of a single-node collective — hold kNoTask (-1).
// kNoTask is NOT a valid dependency: sim::Timeline::add_task rejects
// negative TaskIds with a CheckFailure, so splicing a raw result vector
// into a dep list fails fast instead of silently corrupting the schedule.
// Callers must either skip negative entries (the pattern in
// ckpt/base_gemini.cpp) or pass the vector through valid_tasks() first.
#pragma once

#include <functional>

#include "cluster/cluster.hpp"

namespace eccheck::cluster {

/// "No task was emitted for this slot" — see the sentinel convention above.
inline constexpr TaskId kNoTask = -1;

/// The entries of `tasks` that name real tasks (drops every kNoTask).
/// Use when splicing a collective's result into another op's dep list.
std::vector<TaskId> valid_tasks(const std::vector<TaskId>& tasks);

struct CollectiveOptions {
  bool idle_only = false;           ///< pack into training-idle NIC windows
  std::vector<TaskId> deps;         ///< released when these finish
  std::string label = "collective";
};

/// Copy host(root)[key] to every other node in `nodes` under the same key.
/// Returns per-destination finish tasks (kNoTask for the root's slot).
std::vector<TaskId> broadcast(VirtualCluster& c, const std::vector<int>& nodes,
                              int root, const std::string& key,
                              const CollectiveOptions& opts = {});

/// Every node contributes host(node)[key_of(node)]; afterwards every node
/// holds all contributions. Implemented as a ring: p−1 steps, each node
/// forwarding the chunk it received last round.
std::vector<TaskId> all_gather(VirtualCluster& c,
                               const std::vector<int>& nodes,
                               const std::function<std::string(int)>& key_of,
                               const CollectiveOptions& opts = {});

/// XOR all-reduce of equal-size buffers host(node)[key]: afterwards every
/// node's buffer holds the XOR of all contributions. Ring reduce-scatter +
/// ring all-gather over per-node segments.
std::vector<TaskId> ring_all_reduce_xor(VirtualCluster& c,
                                        const std::vector<int>& nodes,
                                        const std::string& key,
                                        const CollectiveOptions& opts = {});

// ---- ring-segment geometry ------------------------------------------------
// Shared by the virtual collective above and the real-socket transport
// (net::SocketTransport), so both charge/move exactly the same bytes and a
// differential test can compare them bit-for-bit.

/// Contiguous slice of the buffer owned by ring segment `index` (0..p-1).
/// Segments partition [0, total) exactly; sizes differ by at most one byte
/// (the first `total % p` segments are one byte larger).
struct RingSegment {
  std::size_t offset = 0;
  std::size_t size = 0;
};
RingSegment ring_segment(std::size_t total, int p, int index);

/// Segment index that ring position `pos` transmits at step `t` of `phase`
/// (phase 0 = reduce-scatter, phase 1 = all-gather); the receiving position
/// (pos+1) mod p consumes the same index. After phase 0, position i owns the
/// fully reduced segment (i+1) mod p; after phase 1 everyone has everything.
int ring_send_segment(int p, int phase, int t, int pos);

}  // namespace eccheck::cluster
