// Collective communication over the virtual fabric.
//
// Distributed training frameworks move checkpoint data with the same
// collective primitives they train with (NCCL/Gloo, §V-A). These
// implementations move real bytes between node stores and emit timeline
// tasks, so both the data plane and the schedule are exercised:
//   broadcast      — root sends to every other participant (tree-free,
//                    matching GEMINI's group broadcast);
//   all_gather     — every participant ends with every shard;
//   ring_all_reduce— XOR-reduce (the only reduction the checkpoint layer
//                    needs) via the classic 2(p−1)-step ring: reduce-scatter
//                    then all-gather, 2·(p−1)/p of the payload per link.
// Each helper returns the finish TaskIds per participant.
#pragma once

#include <functional>

#include "cluster/cluster.hpp"

namespace eccheck::cluster {

struct CollectiveOptions {
  bool idle_only = false;           ///< pack into training-idle NIC windows
  std::vector<TaskId> deps;         ///< released when these finish
  std::string label = "collective";
};

/// Copy host(root)[key] to every other node in `nodes` under the same key.
/// Returns per-destination finish tasks (empty entry for the root).
std::vector<TaskId> broadcast(VirtualCluster& c, const std::vector<int>& nodes,
                              int root, const std::string& key,
                              const CollectiveOptions& opts = {});

/// Every node contributes host(node)[key_of(node)]; afterwards every node
/// holds all contributions. Implemented as a ring: p−1 steps, each node
/// forwarding the chunk it received last round.
std::vector<TaskId> all_gather(VirtualCluster& c,
                               const std::vector<int>& nodes,
                               const std::function<std::string(int)>& key_of,
                               const CollectiveOptions& opts = {});

/// XOR all-reduce of equal-size buffers host(node)[key]: afterwards every
/// node's buffer holds the XOR of all contributions. Ring reduce-scatter +
/// ring all-gather over per-node segments.
std::vector<TaskId> ring_all_reduce_xor(VirtualCluster& c,
                                        const std::vector<int>& nodes,
                                        const std::string& key,
                                        const CollectiveOptions& opts = {});

}  // namespace eccheck::cluster
