#include "cluster/collectives.hpp"

#include <algorithm>
#include <functional>

#include "gf/simd.hpp"

namespace eccheck::cluster {

std::vector<TaskId> valid_tasks(const std::vector<TaskId>& tasks) {
  std::vector<TaskId> out;
  out.reserve(tasks.size());
  for (TaskId t : tasks)
    if (t >= 0) out.push_back(t);
  return out;
}

RingSegment ring_segment(std::size_t total, int p, int index) {
  ECC_CHECK(p >= 1 && index >= 0 && index < p);
  const std::size_t pp = static_cast<std::size_t>(p);
  const std::size_t idx = static_cast<std::size_t>(index);
  const std::size_t base = total / pp;
  const std::size_t rem = total % pp;
  RingSegment seg;
  seg.size = base + (idx < rem ? 1 : 0);
  seg.offset = idx * base + std::min(idx, rem);
  return seg;
}

int ring_send_segment(int p, int phase, int t, int pos) {
  ECC_CHECK(p >= 1 && (phase == 0 || phase == 1));
  // Reduce-scatter: position i starts by sending its own segment i and walks
  // backwards; all-gather starts from the fully reduced segment (i+1) mod p.
  const int shift = (phase == 0 ? pos - t : pos + 1 - t);
  return ((shift % p) + p) % p;
}

std::vector<TaskId> broadcast(VirtualCluster& c, const std::vector<int>& nodes,
                              int root, const std::string& key,
                              const CollectiveOptions& opts) {
  const std::size_t bytes = c.host(root).get(key).size();
  std::vector<TaskId> finish(nodes.size(), kNoTask);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    int dst = nodes[i];
    if (dst == root) continue;
    finish[i] = c.net_send(root, dst, bytes, opts.deps, opts.idle_only,
                           opts.label + ":bcast");
    // Re-resolve both stores after the timed op (the rule stated at
    // cluster.cpp's send_buffer): its fault hook may have killed either end,
    // in which case host() throws and the in-flight bytes never land —
    // holding a Buffer& across net_send would instead dangle into the wiped
    // store of a killed root.
    c.host(dst).put(key, c.host(root).get(key).clone());
  }
  return finish;
}

std::vector<TaskId> all_gather(VirtualCluster& c,
                               const std::vector<int>& nodes,
                               const std::function<std::string(int)>& key_of,
                               const CollectiveOptions& opts) {
  const int p = static_cast<int>(nodes.size());
  ECC_CHECK(p >= 1);
  std::vector<TaskId> carry(nodes.size(), kNoTask);

  // Ring: at step t, node i forwards the chunk that originated at node
  // (i - t) mod p to its right neighbour.
  for (int t = 0; t < p - 1; ++t) {
    std::vector<TaskId> next(nodes.size(), kNoTask);
    for (int i = 0; i < p; ++i) {
      const int src = nodes[static_cast<std::size_t>(i)];
      const int dst = nodes[static_cast<std::size_t>((i + 1) % p)];
      const int origin = nodes[static_cast<std::size_t>(((i - t) % p + p) % p)];
      const std::string key = key_of(origin);
      std::vector<TaskId> deps = opts.deps;
      if (carry[static_cast<std::size_t>(i)] >= 0)
        deps.push_back(carry[static_cast<std::size_t>(i)]);
      TaskId send = c.net_send(src, dst, c.host(src).get(key).size(), deps,
                               opts.idle_only, opts.label + ":ag");
      c.host(dst).put(key, c.host(src).get(key).clone());
      next[static_cast<std::size_t>((i + 1) % p)] = send;
    }
    carry = std::move(next);
  }
  return carry;
}

std::vector<TaskId> ring_all_reduce_xor(VirtualCluster& c,
                                        const std::vector<int>& nodes,
                                        const std::string& key,
                                        const CollectiveOptions& opts) {
  const int p = static_cast<int>(nodes.size());
  ECC_CHECK(p >= 1);
  const std::size_t total = c.host(nodes[0]).get(key).size();
  for (int n : nodes) ECC_CHECK(c.host(n).get(key).size() == total);

  // Data plane: the reduced value is the XOR of all contributions; compute
  // it once, install everywhere after the timing tasks are scheduled. The
  // dispatched kernel is hoisted out of the per-node loop (all buffers are
  // `total` bytes — checked above).
  Buffer reduced(total, Buffer::Init::kZeroed);
  const gf::simd::Kernels& kernels = gf::simd::active();
  for (int n : nodes)
    kernels.xor_into(reduced.data(), c.host(n).get(key).data(), total);

  std::vector<TaskId> carry(nodes.size(), kNoTask);
  if (p > 1) {
    // Reduce-scatter then all-gather: 2(p-1) steps, with an XOR after every
    // reduce-scatter receive. Each step moves the *true* size of the segment
    // being forwarded (segments differ by up to one byte when p does not
    // divide total) — charging a rounded-up uniform segment would inflate
    // net.*.bytes and simulated time by up to p-1 partial segments per
    // phase. Aggregate volume is exactly 2(p-1)·total across the ring,
    // i.e. the closed-form 2(p-1)/p·total per node.
    for (int phase = 0; phase < 2; ++phase) {
      for (int t = 0; t < p - 1; ++t) {
        std::vector<TaskId> next(nodes.size(), kNoTask);
        for (int i = 0; i < p; ++i) {
          const int src = nodes[static_cast<std::size_t>(i)];
          const int dst = nodes[static_cast<std::size_t>((i + 1) % p)];
          const std::size_t seg_bytes =
              ring_segment(total, p, ring_send_segment(p, phase, t, i)).size;
          std::vector<TaskId> deps = opts.deps;
          if (carry[static_cast<std::size_t>(i)] >= 0)
            deps.push_back(carry[static_cast<std::size_t>(i)]);
          TaskId step = c.net_send(src, dst, seg_bytes, deps, opts.idle_only,
                                   opts.label + ":ar");
          if (phase == 0) step = c.cpu_xor(dst, seg_bytes, {step});
          next[static_cast<std::size_t>((i + 1) % p)] = step;
        }
        carry = std::move(next);
      }
    }
  }
  for (int n : nodes) c.host(n).put(key, reduced.clone());
  return carry;
}

}  // namespace eccheck::cluster
