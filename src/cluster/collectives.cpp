#include "cluster/collectives.hpp"

#include <functional>

#include "gf/simd.hpp"

namespace eccheck::cluster {

std::vector<TaskId> broadcast(VirtualCluster& c, const std::vector<int>& nodes,
                              int root, const std::string& key,
                              const CollectiveOptions& opts) {
  const Buffer& src = c.host(root).get(key);
  std::vector<TaskId> finish(nodes.size(), -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    int dst = nodes[i];
    if (dst == root) continue;
    finish[i] = c.net_send(root, dst, src.size(), opts.deps, opts.idle_only,
                           opts.label + ":bcast");
    c.host(dst).put(key, src.clone());
  }
  return finish;
}

std::vector<TaskId> all_gather(VirtualCluster& c,
                               const std::vector<int>& nodes,
                               const std::function<std::string(int)>& key_of,
                               const CollectiveOptions& opts) {
  const int p = static_cast<int>(nodes.size());
  ECC_CHECK(p >= 1);
  std::vector<TaskId> carry(nodes.size(), -1);

  // Ring: at step t, node i forwards the chunk that originated at node
  // (i - t) mod p to its right neighbour.
  for (int t = 0; t < p - 1; ++t) {
    std::vector<TaskId> next(nodes.size(), -1);
    for (int i = 0; i < p; ++i) {
      const int src = nodes[static_cast<std::size_t>(i)];
      const int dst = nodes[static_cast<std::size_t>((i + 1) % p)];
      const int origin = nodes[static_cast<std::size_t>(((i - t) % p + p) % p)];
      const std::string key = key_of(origin);
      std::vector<TaskId> deps = opts.deps;
      if (carry[static_cast<std::size_t>(i)] >= 0)
        deps.push_back(carry[static_cast<std::size_t>(i)]);
      TaskId send = c.net_send(src, dst, c.host(src).get(key).size(), deps,
                               opts.idle_only, opts.label + ":ag");
      c.host(dst).put(key, c.host(src).get(key).clone());
      next[static_cast<std::size_t>((i + 1) % p)] = send;
    }
    carry = std::move(next);
  }
  return carry;
}

std::vector<TaskId> ring_all_reduce_xor(VirtualCluster& c,
                                        const std::vector<int>& nodes,
                                        const std::string& key,
                                        const CollectiveOptions& opts) {
  const int p = static_cast<int>(nodes.size());
  ECC_CHECK(p >= 1);
  const std::size_t total = c.host(nodes[0]).get(key).size();
  for (int n : nodes) ECC_CHECK(c.host(n).get(key).size() == total);

  // Data plane: the reduced value is the XOR of all contributions; compute
  // it once, install everywhere after the timing tasks are scheduled. The
  // dispatched kernel is hoisted out of the per-node loop (all buffers are
  // `total` bytes — checked above).
  Buffer reduced(total, Buffer::Init::kZeroed);
  const gf::simd::Kernels& kernels = gf::simd::active();
  for (int n : nodes)
    kernels.xor_into(reduced.data(), c.host(n).get(key).data(), total);

  std::vector<TaskId> carry(nodes.size(), -1);
  if (p > 1) {
    const std::size_t seg = (total + static_cast<std::size_t>(p) - 1) /
                            static_cast<std::size_t>(p);
    // Reduce-scatter then all-gather: 2(p-1) steps of one segment each,
    // with an XOR after every reduce-scatter receive.
    for (int phase = 0; phase < 2; ++phase) {
      for (int t = 0; t < p - 1; ++t) {
        std::vector<TaskId> next(nodes.size(), -1);
        for (int i = 0; i < p; ++i) {
          const int src = nodes[static_cast<std::size_t>(i)];
          const int dst = nodes[static_cast<std::size_t>((i + 1) % p)];
          std::vector<TaskId> deps = opts.deps;
          if (carry[static_cast<std::size_t>(i)] >= 0)
            deps.push_back(carry[static_cast<std::size_t>(i)]);
          TaskId step = c.net_send(src, dst, seg, deps, opts.idle_only,
                                   opts.label + ":ar");
          if (phase == 0) step = c.cpu_xor(dst, seg, {step});
          next[static_cast<std::size_t>((i + 1) % p)] = step;
        }
        carry = std::move(next);
      }
    }
  }
  for (int n : nodes) c.host(n).put(key, reduced.clone());
  return carry;
}

}  // namespace eccheck::cluster
