// Cluster topology and calibrated cost model.
//
// Defaults mirror the paper's testbed (§V-B): 4 nodes × 4 GPUs, 100 Gbps
// inter-node network, 5 Gbps aggregate bandwidth to remote persistent
// storage, PCIe-class DtoH copy. `size_scale` lets benchmarks run the real
// data path on scaled-down payloads while charging virtual time for
// paper-scale checkpoints (virtual_bytes = real_bytes × size_scale).
#pragma once

#include "common/units.hpp"

namespace eccheck::cluster {

struct ClusterConfig {
  int num_nodes = 4;
  int gpus_per_node = 4;

  /// Per-node NIC bandwidth, full duplex (separate TX and RX resources).
  BytesPerSecond nic_bandwidth = gbps(100);

  /// Per-GPU device-to-host copy bandwidth (PCIe 4.0 x16-class).
  BytesPerSecond dtoh_bandwidth = gibps(16);

  /// Aggregate bandwidth from the whole cluster to remote storage — the
  /// paper's 5 Gbps bottleneck that motivates in-memory checkpointing.
  BytesPerSecond remote_storage_bandwidth = gbps(5);

  /// Host memcpy bandwidth (buffer packing, snapshot staging).
  BytesPerSecond host_memcpy_bandwidth = gibps(20);

  /// Python-pickle-class serialization throughput (baselines; Fig. 4).
  BytesPerSecond serialize_bandwidth = gibps(1.0);

  /// CRS encode throughput of one CPU thread (calibratable from micro-
  /// benchmarks; ~1 GiB/s table-driven on one core).
  BytesPerSecond encode_bandwidth_per_thread = gibps(1.0);

  /// XOR-reduction compute throughput (memory-bound).
  BytesPerSecond xor_bandwidth = gibps(6.0);

  /// Threads in the encode thread pool (paper §IV-A).
  int encode_threads = 8;

  /// virtual bytes charged per real byte moved (see header comment).
  double size_scale = 1.0;

  int world_size() const { return num_nodes * gpus_per_node; }
};

}  // namespace eccheck::cluster
