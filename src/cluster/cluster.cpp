#include "cluster/cluster.hpp"

namespace eccheck::cluster {

const char* fabric_op_kind_name(FabricOp::Kind kind) {
  switch (kind) {
    case FabricOp::Kind::kDtoh: return "dtoh";
    case FabricOp::Kind::kHostCopy: return "host_copy";
    case FabricOp::Kind::kNetSend: return "net_send";
    case FabricOp::Kind::kRemoteWrite: return "remote_write";
    case FabricOp::Kind::kRemoteRead: return "remote_read";
  }
  return "?";
}

void VirtualCluster::fire_fault_hook(const FabricOp& op) {
  if (fault_hook_ == nullptr || in_fault_hook_) return;
  in_fault_hook_ = true;
  try {
    fault_hook_->on_fabric_op(*this, op);
  } catch (...) {
    in_fault_hook_ = false;
    throw;
  }
  in_fault_hook_ = false;
}

VirtualCluster::VirtualCluster(ClusterConfig cfg)
    : cfg_(cfg),
      alive_(static_cast<std::size_t>(cfg.num_nodes), true),
      hosts_(static_cast<std::size_t>(cfg.num_nodes)),
      nic_calendar_(static_cast<std::size_t>(cfg.num_nodes)) {
  ECC_CHECK(cfg_.num_nodes >= 1);
  ECC_CHECK(cfg_.gpus_per_node >= 1);
  build_resources();
}

void VirtualCluster::build_resources() {
  timeline_ = sim::Timeline();
  nic_tx_.clear();
  nic_rx_.clear();
  cpu_.clear();
  xor_.clear();
  dtoh_.clear();
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    std::string p = "node" + std::to_string(n);
    nic_tx_.push_back(timeline_.add_resource(p + "/tx"));
    nic_rx_.push_back(timeline_.add_resource(p + "/rx"));
    cpu_.push_back(timeline_.add_resource(p + "/cpu"));
    xor_.push_back(timeline_.add_resource(p + "/xor"));
    std::vector<sim::ResourceId> gpus;
    for (int g = 0; g < cfg_.gpus_per_node; ++g)
      gpus.push_back(timeline_.add_resource(p + "/dtoh" + std::to_string(g)));
    dtoh_.push_back(std::move(gpus));
    timeline_.set_calendar(nic_tx_[static_cast<std::size_t>(n)],
                           nic_calendar_[static_cast<std::size_t>(n)]);
    timeline_.set_calendar(nic_rx_[static_cast<std::size_t>(n)],
                           nic_calendar_[static_cast<std::size_t>(n)]);
  }
  storage_ = timeline_.add_resource("remote_storage");
}

void VirtualCluster::reset_timeline() { build_resources(); }

Store& VirtualCluster::host(int node) {
  ECC_CHECK_MSG(alive_[check_node(node)],
                "access to host memory of dead node " << node);
  return hosts_[check_node(node)];
}

const Store& VirtualCluster::host(int node) const {
  ECC_CHECK_MSG(alive_[check_node(node)],
                "access to host memory of dead node " << node);
  return hosts_[check_node(node)];
}

void VirtualCluster::kill(int node) {
  auto i = check_node(node);
  ECC_CHECK_MSG(alive_[i], "kill() on already-dead node "
                               << node
                               << " (a slot fails at most once per replace)");
  alive_[i] = false;
  hosts_[i].clear();  // CPU memory is non-persistent
}

void VirtualCluster::replace(int node) {
  auto i = check_node(node);
  ECC_CHECK_MSG(!alive_[i], "replace() on alive node "
                                << node
                                << " (would silently discard its state)");
  alive_[i] = true;
  hosts_[i].clear();
}

std::vector<int> VirtualCluster::alive_nodes() const {
  std::vector<int> out;
  for (int n = 0; n < cfg_.num_nodes; ++n)
    if (alive_[static_cast<std::size_t>(n)]) out.push_back(n);
  return out;
}

int VirtualCluster::alive_count() const {
  int count = 0;
  for (bool a : alive_) count += a ? 1 : 0;
  return count;
}

TaskId VirtualCluster::dtoh(int node, int gpu, std::size_t bytes,
                            const std::vector<TaskId>& deps) {
  ECC_CHECK(gpu >= 0 && gpu < cfg_.gpus_per_node);
  fire_fault_hook({FabricOp::Kind::kDtoh, node, -1, bytes});
  stats_.add("gpu.dtoh.bytes", vbytes(bytes));
  stats_.add("gpu.dtoh.count");
  return timeline_.add_task(
      "dtoh", dtoh_[check_node(node)][static_cast<std::size_t>(gpu)],
      virt(bytes, cfg_.dtoh_bandwidth), deps);
}

TaskId VirtualCluster::host_copy(int node, std::size_t bytes,
                                 const std::vector<TaskId>& deps) {
  fire_fault_hook({FabricOp::Kind::kHostCopy, node, -1, bytes});
  stats_.add("cpu.host_copy.bytes", vbytes(bytes));
  stats_.add("cpu.host_copy.count");
  return timeline_.add_task("host_copy", cpu(node),
                            virt(bytes, cfg_.host_memcpy_bandwidth), deps);
}

TaskId VirtualCluster::cpu_code(int node, std::size_t bytes,
                                const std::vector<TaskId>& deps) {
  BytesPerSecond bw =
      cfg_.encode_bandwidth_per_thread * std::max(1, cfg_.encode_threads);
  stats_.add("cpu.code.bytes", vbytes(bytes));
  stats_.add("cpu.code.count");
  return timeline_.add_task("code", cpu(node), virt(bytes, bw), deps);
}

TaskId VirtualCluster::cpu_xor(int node, std::size_t bytes,
                               const std::vector<TaskId>& deps) {
  stats_.add("cpu.xor.bytes", vbytes(bytes));
  stats_.add("cpu.xor.count");
  return timeline_.add_task("xor", xor_lane(node),
                            virt(bytes, cfg_.xor_bandwidth), deps);
}

TaskId VirtualCluster::cpu_serialize(int node, std::size_t bytes,
                                     const std::vector<TaskId>& deps) {
  stats_.add("cpu.serialize.bytes", vbytes(bytes));
  stats_.add("cpu.serialize.count");
  return timeline_.add_task("serialize", cpu(node),
                            virt(bytes, cfg_.serialize_bandwidth), deps);
}

TaskId VirtualCluster::net_send(int src, int dst, std::size_t bytes,
                                const std::vector<TaskId>& deps,
                                bool idle_only, const std::string& label) {
  ECC_CHECK_MSG(src != dst, "net_send to self");
  fire_fault_hook({FabricOp::Kind::kNetSend, src, dst, bytes});
  // Edge kind = label up to the first ':' (send_buffer embeds the store key
  // after the colon; that must not explode counter cardinality).
  const std::string kind = label.substr(0, label.find(':'));
  stats_.add("net." + kind + ".bytes", vbytes(bytes));
  stats_.add("net." + kind + ".count");
  sim::TaskOptions opts;
  opts.idle_only = idle_only;
  return timeline_.add_task(label, {nic_tx(src), nic_rx(dst)},
                            virt(bytes, cfg_.nic_bandwidth), deps, opts);
}

TaskId VirtualCluster::remote_write(int node, std::size_t bytes,
                                    const std::vector<TaskId>& deps) {
  fire_fault_hook({FabricOp::Kind::kRemoteWrite, node, -1, bytes});
  stats_.add("remote.write.bytes", vbytes(bytes));
  stats_.add("remote.write.count");
  // The shared storage resource serialises all writers: aggregate bandwidth.
  return timeline_.add_task("remote_write", {nic_tx(node), storage_},
                            virt(bytes, cfg_.remote_storage_bandwidth), deps);
}

TaskId VirtualCluster::remote_read(int node, std::size_t bytes,
                                   const std::vector<TaskId>& deps) {
  fire_fault_hook({FabricOp::Kind::kRemoteRead, node, -1, bytes});
  stats_.add("remote.read.bytes", vbytes(bytes));
  stats_.add("remote.read.count");
  return timeline_.add_task("remote_read", {nic_rx(node), storage_},
                            virt(bytes, cfg_.remote_storage_bandwidth), deps);
}

TaskId VirtualCluster::barrier(const std::vector<TaskId>& deps) {
  return timeline_.add_task("barrier", sim::kNoResource, 0, deps);
}

TaskId VirtualCluster::send_buffer(int src, int dst,
                                   const std::string& src_key,
                                   const std::string& dst_key,
                                   const std::vector<TaskId>& deps,
                                   bool idle_only) {
  const std::size_t bytes = host(src).get(src_key).size();
  TaskId t = net_send(src, dst, bytes, deps, idle_only, "send:" + src_key);
  // Re-resolve after net_send: its fault hook may have killed either end, in
  // which case host() throws and the in-flight bytes never land.
  host(dst).put(dst_key, host(src).get(src_key).clone());
  return t;
}

TaskId VirtualCluster::flush_to_remote(int node, const std::string& key,
                                       const std::string& remote_key,
                                       const std::vector<TaskId>& deps) {
  const std::size_t bytes = host(node).get(key).size();
  TaskId t = remote_write(node, bytes, deps);
  remote_.put(remote_key, host(node).get(key).clone());
  return t;
}

TaskId VirtualCluster::fetch_from_remote(int node,
                                         const std::string& remote_key,
                                         const std::string& key,
                                         const std::vector<TaskId>& deps) {
  const std::size_t bytes = remote_.get(remote_key).size();
  TaskId t = remote_read(node, bytes, deps);
  host(node).put(key, remote_.get(remote_key).clone());
  return t;
}

void VirtualCluster::set_nic_calendar(
    int node, const std::vector<sim::TimeInterval>& busy) {
  nic_calendar_[check_node(node)] = busy;
  timeline_.set_calendar(nic_tx(node), busy);
  timeline_.set_calendar(nic_rx(node), busy);
}

Seconds VirtualCluster::nic_interference(int node) const {
  return timeline_.reserved_overlap(nic_tx(node)) +
         timeline_.reserved_overlap(nic_rx(node));
}

}  // namespace eccheck::cluster
