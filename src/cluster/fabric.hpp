// Fabric: the shared helper surface the checkpoint protocol moves bytes
// through, abstracted away from *how* the bytes move.
//
// Two implementations exist:
//  * VirtualFabric (here) — wraps a VirtualCluster: one process drives every
//    rank, bytes move in-memory, and each helper additionally emits
//    virtual-time tasks into the simulator. This is the reference
//    implementation: deterministic, instrumentable, fault-injectable.
//  * net::SocketTransport (src/net/) — a real TCP / Unix-domain-socket
//    transport: each process drives exactly one rank and the same calls are
//    made SPMD-style by every participant, like an MPI program.
//
// The split is expressed by drives(): a helper call names global ranks, and
// each fabric executes the side(s) of the operation belonging to ranks it
// drives. Code written against Fabric (core/fabric_protocol.cpp, the
// differential tests) runs unchanged on both and must produce byte-identical
// stores — that is the contract the differential suite enforces.
//
// Error model: every implementation reports unreachable peers, mid-operation
// deaths, timeouts and integrity mismatches by throwing the repo-wide
// CheckFailure, so Session / FailureDetector / chaos-style supervision works
// the same over a simulated or a real wire.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/collectives.hpp"

namespace eccheck::cluster {

class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Implementation tag for traces/log lines: "virtual", "socket[uds]", …
  virtual std::string fabric_name() const = 0;

  virtual int world_size() const = 0;

  /// True when the calling process holds rank `node`'s store and executes
  /// its side of collective calls. VirtualFabric drives every rank; a
  /// SocketTransport drives exactly one.
  virtual bool drives(int node) const = 0;

  /// The single driven rank, or -1 when this fabric drives all of them.
  virtual int self_rank() const = 0;

  /// Volatile store of a driven rank (throws for ranks not driven here and
  /// for dead nodes, mirroring VirtualCluster::host()).
  virtual Store& store(int node) = 0;

  // ---- fabric helpers ----------------------------------------------------
  // Collective SPMD semantics: every participant whose rank this fabric
  // drives executes its side; ranks not named are no-ops. All calls block
  // until the driven side of the transfer completed (or throw CheckFailure).

  /// Move `bytes` from src to dst without touching any store (pure traffic:
  /// interference probes, cost-model calibration).
  virtual void net_send(int src, int dst, std::size_t bytes,
                        const std::string& label = "send") = 0;

  /// Copy store(src)[src_key] into store(dst)[dst_key].
  virtual void send_buffer(int src, int dst, const std::string& src_key,
                           const std::string& dst_key) = 0;

  /// Batched send_buffer over one (src, dst) pair: copy every
  /// store(src)[pair.first] into store(dst)[pair.second], in order. The
  /// default is the plain loop — semantically (and for VirtualFabric's
  /// virtual timeline, exactly) equivalent to calling send_buffer per
  /// pair — but a pipelining transport may override it to keep several
  /// frames in flight and reconcile their acks once at the end, which is
  /// why batch-shaped protocol loops (the engine's refill step) should
  /// declare the batch instead of looping themselves.
  virtual void send_buffers(
      int src, int dst,
      const std::vector<std::pair<std::string, std::string>>& pairs) {
    for (const auto& [src_key, dst_key] : pairs)
      send_buffer(src, dst, src_key, dst_key);
  }

  /// Copy store(root)[key] to every other node in `nodes` under `key`.
  virtual void broadcast(const std::vector<int>& nodes, int root,
                         const std::string& key) = 0;

  /// Every node contributes store(node)[key_of(node)]; afterwards every
  /// node holds all contributions.
  virtual void all_gather(const std::vector<int>& nodes,
                          const std::function<std::string(int)>& key_of) = 0;

  /// XOR all-reduce of equal-size buffers store(node)[key].
  virtual void ring_all_reduce_xor(const std::vector<int>& nodes,
                                   const std::string& key) = 0;

  /// Persist store(node)[key] to remote storage under `remote_key`.
  virtual void remote_write(int node, const std::string& key,
                            const std::string& remote_key) = 0;

  /// Fetch remote storage `remote_key` into store(node)[key].
  virtual void remote_read(int node, const std::string& remote_key,
                           const std::string& key) = 0;

  // ---- remote-store metadata ---------------------------------------------
  // Local (non-collective) queries against the persistent remote store, as
  // seen by a driven rank. The engine uses them for versioned-namespace
  // discovery, pruning, and the torn-save fallback probe. A fabric whose
  // remote store is disabled answers as if it were empty.

  /// True when the remote store holds `remote_key`. `node` must be driven.
  virtual bool remote_contains(int node, const std::string& remote_key) = 0;

  /// All remote keys starting with `prefix`, sorted. `node` must be driven.
  virtual std::vector<std::string> remote_list(int node,
                                               const std::string& prefix) = 0;

  /// Delete `remote_key` from the remote store (no-op when absent).
  virtual void remote_erase(int node, const std::string& remote_key) = 0;

  /// Byte/operation counters recorded by this fabric (shared with the
  /// simulator's registry for VirtualFabric) — lets engine reports attribute
  /// traffic the same way on both fabrics.
  virtual obs::StatsRegistry& stats() = 0;

  /// All driven ranks in `nodes` rendezvous; returns when every participant
  /// reached the barrier.
  virtual void barrier(const std::vector<int>& nodes) = 0;
};

/// The simulated implementation: one process drives all ranks of a
/// VirtualCluster; data moves through the existing in-memory helpers and
/// collectives, so the timing plane keeps recording tasks and the fault
/// hook keeps firing exactly as before.
class VirtualFabric final : public Fabric {
 public:
  explicit VirtualFabric(VirtualCluster& cluster,
                         CollectiveOptions collective_opts = {})
      : c_(cluster), opts_(std::move(collective_opts)) {}

  VirtualCluster& cluster() { return c_; }

  std::string fabric_name() const override { return "virtual"; }
  int world_size() const override { return c_.num_nodes(); }
  bool drives(int node) const override {
    return node >= 0 && node < c_.num_nodes();
  }
  int self_rank() const override { return -1; }
  Store& store(int node) override { return c_.host(node); }

  void net_send(int src, int dst, std::size_t bytes,
                const std::string& label) override {
    c_.net_send(src, dst, bytes, opts_.deps, opts_.idle_only, label);
  }
  void send_buffer(int src, int dst, const std::string& src_key,
                   const std::string& dst_key) override {
    c_.send_buffer(src, dst, src_key, dst_key, opts_.deps, opts_.idle_only);
  }
  void broadcast(const std::vector<int>& nodes, int root,
                 const std::string& key) override {
    cluster::broadcast(c_, nodes, root, key, opts_);
  }
  void all_gather(const std::vector<int>& nodes,
                  const std::function<std::string(int)>& key_of) override {
    cluster::all_gather(c_, nodes, key_of, opts_);
  }
  void ring_all_reduce_xor(const std::vector<int>& nodes,
                           const std::string& key) override {
    cluster::ring_all_reduce_xor(c_, nodes, key, opts_);
  }
  void remote_write(int node, const std::string& key,
                    const std::string& remote_key) override {
    c_.flush_to_remote(node, key, remote_key, opts_.deps);
  }
  void remote_read(int node, const std::string& remote_key,
                   const std::string& key) override {
    c_.fetch_from_remote(node, remote_key, key, opts_.deps);
  }
  bool remote_contains(int node, const std::string& remote_key) override {
    ECC_CHECK(drives(node));
    return c_.remote().contains(remote_key);
  }
  std::vector<std::string> remote_list(int node,
                                       const std::string& prefix) override {
    ECC_CHECK(drives(node));
    return c_.remote().keys_with_prefix(prefix);
  }
  void remote_erase(int node, const std::string& remote_key) override {
    ECC_CHECK(drives(node));
    c_.remote().erase(remote_key);
  }
  obs::StatsRegistry& stats() override { return c_.stats(); }
  void barrier(const std::vector<int>&) override {
    // Single process, single thread: every driven rank already reached this
    // point; emit the zero-duration join for the schedule only.
    c_.barrier(opts_.deps);
  }

 private:
  VirtualCluster& c_;
  CollectiveOptions opts_;
};

}  // namespace eccheck::cluster
