// FaultyFabric: a fault-injecting decorator around any cluster::Fabric.
//
// Chaos campaigns over real sockets need frame-level faults — drops,
// delays, corruption — injected into a *live* transport without teaching
// the transport about chaos. This decorator sits between the engine and
// the underlying fabric and, with seeded pseudo-randomness, turns data
// movement calls into:
//
//   drop    — throw CheckFailure before the operation runs, which is
//             byte-for-byte the signal a dead peer produces, so the whole
//             rollback / failure-detection machinery downstream is
//             exercised through its production path;
//   delay   — sleep before the operation (late frames, congested links);
//   corrupt — invoke a caller-provided hook before a send; the checkpoint
//             service wires this to SocketTransport::corrupt_next_frame,
//             so the receiver sees a genuine wire CRC mismatch.
//
// Determinism: decisions come from a SplitMix64 stream seeded at
// construction, one draw per faultable operation, so a campaign seed
// replays the same fault sequence (same process, same call order).
// Store access and remote I/O pass through untouched — faults model the
// network, not host memory.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/fabric.hpp"
#include "common/check.hpp"

namespace eccheck::cluster {

struct FaultSpec {
  std::uint64_t seed = 1;
  double drop_prob = 0.0;     ///< P(throw CheckFailure) per operation
  double delay_prob = 0.0;    ///< P(sleep delay_ms) per operation
  int delay_ms = 20;
  double corrupt_prob = 0.0;  ///< P(corrupt hook) per send_buffer

  bool any() const {
    return drop_prob > 0 || delay_prob > 0 || corrupt_prob > 0;
  }
};

class FaultyFabric final : public Fabric {
 public:
  /// `corrupt_hook` (optional) arms payload corruption on the transport
  /// underneath; unset means corrupt_prob is ignored.
  FaultyFabric(Fabric& inner, FaultSpec spec,
               std::function<void()> corrupt_hook = {})
      : inner_(&inner), spec_(spec), state_(spec.seed ? spec.seed : 1),
        corrupt_hook_(std::move(corrupt_hook)) {}

  const FaultSpec& spec() const { return spec_; }
  /// Re-arm at runtime (the worker daemon's `inject` verb). The SplitMix64
  /// stream keeps its position — probabilities change, the draws don't.
  void set_spec(const FaultSpec& spec) { spec_ = spec; }
  std::uint64_t faults_injected() const { return injected_; }

  // ---- cluster::Fabric ---------------------------------------------------
  /// Transparent while inactive, so a permanently-installed decorator does
  /// not change span names or reports until faults are actually armed.
  std::string fabric_name() const override {
    return spec_.any() ? "faulty[" + inner_->fabric_name() + "]"
                       : inner_->fabric_name();
  }
  int world_size() const override { return inner_->world_size(); }
  bool drives(int node) const override { return inner_->drives(node); }
  int self_rank() const override { return inner_->self_rank(); }
  Store& store(int node) override { return inner_->store(node); }

  void net_send(int src, int dst, std::size_t bytes,
                const std::string& label) override {
    inner_->net_send(src, dst, bytes, label);
  }

  void send_buffer(int src, int dst, const std::string& src_key,
                   const std::string& dst_key) override {
    maybe_fault("send_buffer", /*corruptible=*/true);
    inner_->send_buffer(src, dst, src_key, dst_key);
  }

  void broadcast(const std::vector<int>& nodes, int root,
                 const std::string& key) override {
    maybe_fault("broadcast", /*corruptible=*/false);
    inner_->broadcast(nodes, root, key);
  }

  void all_gather(const std::vector<int>& nodes,
                  const std::function<std::string(int)>& key_of) override {
    maybe_fault("all_gather", /*corruptible=*/false);
    inner_->all_gather(nodes, key_of);
  }

  void ring_all_reduce_xor(const std::vector<int>& nodes,
                           const std::string& key) override {
    maybe_fault("ring_all_reduce_xor", /*corruptible=*/false);
    inner_->ring_all_reduce_xor(nodes, key);
  }

  void remote_write(int node, const std::string& key,
                    const std::string& remote_key) override {
    inner_->remote_write(node, key, remote_key);
  }
  void remote_read(int node, const std::string& remote_key,
                   const std::string& key) override {
    inner_->remote_read(node, remote_key, key);
  }
  bool remote_contains(int node, const std::string& remote_key) override {
    return inner_->remote_contains(node, remote_key);
  }
  std::vector<std::string> remote_list(int node,
                                       const std::string& prefix) override {
    return inner_->remote_list(node, prefix);
  }
  void remote_erase(int node, const std::string& remote_key) override {
    inner_->remote_erase(node, remote_key);
  }
  obs::StatsRegistry& stats() override { return inner_->stats(); }
  void barrier(const std::vector<int>& nodes) override {
    inner_->barrier(nodes);
  }

 private:
  /// One uniform draw in [0, 1) from the SplitMix64 stream.
  double draw() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  void maybe_fault(const char* op, bool corruptible) {
    if (spec_.drop_prob > 0 && draw() < spec_.drop_prob) {
      injected_ += 1;
      stats().add("chaos.fault.drop");
      throw CheckFailure(std::string("injected fault: dropped ") + op +
                         " on rank " + std::to_string(self_rank()));
    }
    if (spec_.delay_prob > 0 && draw() < spec_.delay_prob) {
      injected_ += 1;
      stats().add("chaos.fault.delay");
      std::this_thread::sleep_for(std::chrono::milliseconds(spec_.delay_ms));
    }
    if (corruptible && corrupt_hook_ && spec_.corrupt_prob > 0 &&
        draw() < spec_.corrupt_prob) {
      injected_ += 1;
      stats().add("chaos.fault.corrupt");
      corrupt_hook_();
    }
  }

  Fabric* inner_;
  FaultSpec spec_;
  std::uint64_t state_;
  std::function<void()> corrupt_hook_;
  std::uint64_t injected_ = 0;
};

}  // namespace eccheck::cluster
