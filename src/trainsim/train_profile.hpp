// Training-iteration timeline and network-idle profiling (paper §IV-B3).
//
// ECCheck schedules its checkpoint communication inside the network-idle
// windows of the training communication pattern, which it profiles over the
// first ~50 iterations. This module reproduces that pattern for hybrid
// TP/PP training with a GPipe-style schedule:
//   * tensor parallelism stays intra-node (NVLink) — invisible to the NIC;
//   * each pipeline stage s (one stage per node, as on the testbed) sends
//     activations forward / gradients backward at microbatch boundaries,
//     producing short NIC bursts separated by compute bubbles;
//   * with data parallelism > 1, a gradient all-reduce busies every NIC at
//     the end of the iteration.
// The resulting per-node busy calendars feed VirtualCluster NIC resources;
// gaps are what idle-only checkpoint transfers get packed into.
#pragma once

#include <vector>

#include "cluster/config.hpp"
#include "dnn/model_zoo.hpp"
#include "dnn/parallelism.hpp"
#include "sim/interval.hpp"

namespace eccheck::trainsim {

/// Per-stage, per-microbatch costs of one training iteration.
struct Workload {
  int microbatches = 8;
  Seconds forward_compute = 0.02;  ///< per stage per microbatch
  std::size_t activation_bytes = mib(16);  ///< per stage boundary transfer
  Seconds optimizer_step = 0.01;
  std::size_t grad_allreduce_bytes = 0;  ///< per node, 0 when dp == 1
};

/// Estimate from model shape: forward FLOPs ≈ 2·P_stage·tokens, backward
/// 2×; effective per-stage throughput is the node's aggregate GPU FLOPs
/// discounted by an MFU factor.
Workload estimate_workload(const dnn::ModelSpec& model,
                           const dnn::ParallelismSpec& par,
                           int microbatch_size = 4, int seq_len = 1024,
                           double node_flops = 4 * 312e12,
                           double mfu = 0.4);

struct TrainProfile {
  Seconds iteration_time = 0;
  /// NIC busy windows of one iteration, indexed by pipeline stage (== node).
  std::vector<std::vector<sim::TimeInterval>> node_busy;

  /// Calendar for `iters` consecutive iterations starting at t=0.
  std::vector<sim::TimeInterval> tiled(int node, int iters) const;

  /// Fraction of the iteration the node's NIC is idle.
  double idle_fraction(int node) const;

  /// Largest single idle gap within one iteration.
  Seconds largest_gap(int node) const;
};

/// Build the one-iteration profile for a GPipe-style schedule: forward wave,
/// backward wave (2× forward compute), activation/gradient sends at stage
/// boundaries, optional DP all-reduce, optimizer step.
TrainProfile simulate_iteration(const Workload& w, int pipeline_stages,
                                BytesPerSecond nic_bandwidth,
                                int data_parallel = 1);

}  // namespace eccheck::trainsim
