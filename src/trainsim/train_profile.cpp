#include "trainsim/train_profile.hpp"

#include <algorithm>

namespace eccheck::trainsim {

Workload estimate_workload(const dnn::ModelSpec& model,
                           const dnn::ParallelismSpec& par,
                           int microbatch_size, int seq_len, double node_flops,
                           double mfu) {
  Workload w;
  const double params_per_stage =
      static_cast<double>(model.param_count()) / par.pipeline_parallel;
  const double tokens = static_cast<double>(microbatch_size) * seq_len;
  // Forward ≈ 2 FLOPs per parameter per token.
  w.forward_compute = 2.0 * params_per_stage * tokens / (node_flops * mfu);
  w.activation_bytes = static_cast<std::size_t>(tokens) *
                       static_cast<std::size_t>(model.hidden) * 2;  // fp16
  w.microbatches = 8;
  w.optimizer_step = 0.25 * w.forward_compute;
  if (par.data_parallel > 1) {
    // Ring all-reduce moves ~2× the gradient shard per node (fp16 grads).
    w.grad_allreduce_bytes = static_cast<std::size_t>(
        2.0 * params_per_stage * 2.0 * (par.data_parallel - 1) /
        par.data_parallel);
  }
  return w;
}

TrainProfile simulate_iteration(const Workload& w, int pipeline_stages,
                                BytesPerSecond nic_bandwidth,
                                int data_parallel) {
  ECC_CHECK(pipeline_stages >= 1);
  ECC_CHECK(w.microbatches >= 1);
  const int P = pipeline_stages;
  const int M = w.microbatches;
  const Seconds tf = w.forward_compute;
  const Seconds tb = 2 * w.forward_compute;
  const Seconds ta = static_cast<double>(w.activation_bytes) / nic_bandwidth;

  TrainProfile prof;
  prof.node_busy.assign(static_cast<std::size_t>(P), {});

  auto mark = [&](int node, Seconds begin, Seconds end) {
    if (node < 0 || node >= P) return;
    prof.node_busy[static_cast<std::size_t>(node)].push_back({begin, end});
  };

  // Forward wave: microbatch j finishes stage s at (s + j + 1)·(tf + ta)
  // (the send is on the critical path of the next stage's input).
  const Seconds fslot = tf + ta;
  for (int j = 0; j < M; ++j) {
    for (int s = 0; s < P; ++s) {
      Seconds compute_end = (s + j) * fslot + tf;
      if (s + 1 < P) {
        // Activation send busies s's TX and (s+1)'s RX; one shared calendar
        // per node covers both directions.
        mark(s, compute_end, compute_end + ta);
        mark(s + 1, compute_end, compute_end + ta);
      }
    }
  }
  const Seconds fwd_end = (P - 1 + M - 1) * fslot + tf + (P > 1 ? ta : 0);

  // Backward wave (GPipe: starts after the forward flush), 2× compute,
  // gradient sends towards stage 0.
  const Seconds bslot = tb + ta;
  for (int j = 0; j < M; ++j) {
    for (int s = P - 1; s >= 0; --s) {
      Seconds start = fwd_end + ((P - 1 - s) + j) * bslot;
      Seconds compute_end = start + tb;
      if (s > 0) {
        mark(s, compute_end, compute_end + ta);
        mark(s - 1, compute_end, compute_end + ta);
      }
    }
  }
  Seconds bwd_end = fwd_end + ((P - 1) + (M - 1)) * bslot + tb +
                    (P > 1 ? ta : 0);

  // Data-parallel gradient all-reduce busies every NIC.
  if (data_parallel > 1 && w.grad_allreduce_bytes > 0) {
    Seconds tar = static_cast<double>(w.grad_allreduce_bytes) / nic_bandwidth;
    for (int s = 0; s < P; ++s) mark(s, bwd_end, bwd_end + tar);
    bwd_end += tar;
  }

  prof.iteration_time = bwd_end + w.optimizer_step;
  for (auto& v : prof.node_busy) v = sim::normalize(std::move(v));
  return prof;
}

std::vector<sim::TimeInterval> TrainProfile::tiled(int node, int iters) const {
  const auto& base = node_busy[static_cast<std::size_t>(node)];
  std::vector<sim::TimeInterval> out;
  out.reserve(base.size() * static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    Seconds off = i * iteration_time;
    for (const auto& b : base) out.push_back({b.begin + off, b.end + off});
  }
  return out;
}

double TrainProfile::idle_fraction(int node) const {
  Seconds busy = 0;
  for (const auto& b : node_busy[static_cast<std::size_t>(node)])
    busy += b.length();
  return iteration_time <= 0 ? 1.0 : 1.0 - busy / iteration_time;
}

Seconds TrainProfile::largest_gap(int node) const {
  auto gaps = sim::gaps_of(node_busy[static_cast<std::size_t>(node)], 0,
                           iteration_time);
  Seconds best = 0;
  for (const auto& g : gaps) best = std::max(best, g.length());
  return best;
}

}  // namespace eccheck::trainsim
