// base1 / base2: remote-persistent-storage checkpointing (paper §V-B).
//
// base1 — torch.save() semantics: serialize each worker's state_dict and
// push it to remote storage synchronously; training stalls for the whole
// save. base2 — CheckFreq-inspired two-phase scheme: phase one snapshots
// GPU state to host memory (training stalls only for the snapshot), phase
// two serializes and persists asynchronously. Both recover by reading the
// serialized shards back over the shared 5 Gbps storage link.
#pragma once

#include "ckpt/engine.hpp"

namespace eccheck::ckpt {

class RemoteSyncEngine final : public CheckpointEngine {  // base1
 public:
  std::string name() const override { return "base1-remote-sync"; }
  SaveReport save(cluster::VirtualCluster& cluster,
                  const std::vector<dnn::StateDict>& shards,
                  std::int64_t version) override;
  LoadReport load(cluster::VirtualCluster& cluster, std::int64_t version,
                  std::vector<dnn::StateDict>& out) override;
};

class RemoteTwoPhaseEngine final : public CheckpointEngine {  // base2
 public:
  std::string name() const override { return "base2-two-phase"; }
  SaveReport save(cluster::VirtualCluster& cluster,
                  const std::vector<dnn::StateDict>& shards,
                  std::int64_t version) override;
  LoadReport load(cluster::VirtualCluster& cluster, std::int64_t version,
                  std::vector<dnn::StateDict>& out) override;
};

}  // namespace eccheck::ckpt
