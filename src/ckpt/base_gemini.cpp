#include "ckpt/base_gemini.hpp"

#include "cluster/collectives.hpp"
#include "dnn/serializer.hpp"
#include "obs/stats.hpp"

namespace eccheck::ckpt {

std::string shard_key(std::int64_t version, int worker) {
  return "ckpt/" + std::to_string(version) + "/worker/" +
         std::to_string(worker);
}

std::vector<int> GeminiReplicationEngine::group_of(
    const cluster::VirtualCluster& cluster, int node) const {
  const int first = (node / group_size_) * group_size_;
  std::vector<int> out;
  for (int n = first; n < std::min(first + group_size_, cluster.num_nodes());
       ++n)
    out.push_back(n);
  return out;
}

SaveReport GeminiReplicationEngine::save(
    cluster::VirtualCluster& cluster, const std::vector<dnn::StateDict>& shards,
    std::int64_t version) {
  ECC_CHECK(static_cast<int>(shards.size()) == cluster.world_size());
  cluster.reset_timeline();
  SaveReport rep;
  const auto stats_base = cluster.stats().counters();

  const int g = cluster.gpus_per_node();
  std::vector<cluster::TaskId> snapshot(
      static_cast<std::size_t>(cluster.world_size()));
  Seconds snap_finish = 0;

  // Phase 1 (blocking): GPU→host snapshot; the in-memory representation is
  // the raw shard image (GEMINI stores checkpoints without pickling).
  for (int w = 0; w < cluster.world_size(); ++w) {
    const int node = node_of_worker(cluster, w);
    const auto& sd = shards[static_cast<std::size_t>(w)];
    snapshot[static_cast<std::size_t>(w)] =
        cluster.dtoh(node, gpu_of_worker(cluster, w), sd.tensor_bytes(), {});
    snap_finish = std::max(
        snap_finish,
        cluster.timeline().finish_time(snapshot[static_cast<std::size_t>(w)]));
    cluster.host(node).put(shard_key(version, w),
                           dnn::serialize_state_dict(sd));
  }

  // Phase 2 (async): broadcast every worker's shard to all group peers via
  // the collective layer (GEMINI broadcasts within its replication group).
  Seconds bcast_finish = snap_finish;
  for (int w = 0; w < cluster.world_size(); ++w) {
    const int node = node_of_worker(cluster, w);
    cluster::CollectiveOptions opts;
    opts.deps = {snapshot[static_cast<std::size_t>(w)]};
    opts.label = "gemini";
    auto group = group_of(cluster, node);
    auto finish =
        cluster::broadcast(cluster, group, node, shard_key(version, w), opts);
    const std::size_t blob =
        cluster.host(node).get(shard_key(version, w)).size();
    // broadcast() leaves kNoTask in the root's slot — filter before use.
    for (cluster::TaskId t : cluster::valid_tasks(finish)) {
      rep.network_bytes += static_cast<std::size_t>(
          static_cast<double>(blob) * cluster.config().size_scale);
      bcast_finish = std::max(bcast_finish, cluster.timeline().finish_time(t));
    }
  }
  (void)g;

  rep.breakdown["snapshot"] = snap_finish;
  rep.breakdown["broadcast"] = bcast_finish;
  rep.stall_time = snap_finish;
  rep.total_time = bcast_finish;
  rep.stats =
      obs::StatsRegistry::delta(cluster.stats().counters(), stats_base);
  return rep;
}

LoadReport GeminiReplicationEngine::load(cluster::VirtualCluster& cluster,
                                         std::int64_t version,
                                         std::vector<dnn::StateDict>& out) {
  cluster.reset_timeline();
  LoadReport rep;
  const auto stats_base = cluster.stats().counters();
  auto finalize_stats = [&]() {
    rep.stats =
        obs::StatsRegistry::delta(cluster.stats().counters(), stats_base);
  };
  out.clear();
  out.resize(static_cast<std::size_t>(cluster.world_size()));

  Seconds resume_finish = 0;
  std::vector<cluster::TaskId> refill_tasks;

  for (int w = 0; w < cluster.world_size(); ++w) {
    const int node = node_of_worker(cluster, w);
    const std::string key = shard_key(version, w);
    ECC_CHECK_MSG(cluster.alive(node),
                  "dead node " << node << " must be replace()d before load");
    if (!cluster.host(node).contains(key)) {
      // Node was replaced: pull the replica from a surviving group peer.
      int donor = -1;
      for (int peer : group_of(cluster, node)) {
        if (peer != node && cluster.alive(peer) &&
            cluster.host(peer).contains(key)) {
          donor = peer;
          break;
        }
      }
      if (donor < 0) {
        rep.success = false;
        rep.detail = "replication group of node " + std::to_string(node) +
                     " lost all copies of worker " + std::to_string(w);
        finalize_stats();
        return rep;
      }
      cluster::TaskId t =
          cluster.send_buffer(donor, node, key, key, {});
      refill_tasks.push_back(t);
      resume_finish =
          std::max(resume_finish, cluster.timeline().finish_time(t));
    }
    out[static_cast<std::size_t>(w)] = dnn::deserialize_state_dict(
        cluster.host(node).get(key).span());
  }

  // Restore redundancy: re-replicate refilled shards to group peers.
  Seconds total_finish = resume_finish;
  for (int w = 0; w < cluster.world_size(); ++w) {
    const int node = node_of_worker(cluster, w);
    const std::string key = shard_key(version, w);
    for (int peer : group_of(cluster, node)) {
      if (peer == node || !cluster.alive(peer)) continue;
      if (cluster.host(peer).contains(key)) continue;
      cluster::TaskId t = cluster.send_buffer(node, peer, key, key, {});
      total_finish = std::max(total_finish, cluster.timeline().finish_time(t));
    }
  }

  rep.success = true;
  rep.resume_time = resume_finish;
  rep.total_time = total_finish;
  finalize_stats();
  return rep;
}

}  // namespace eccheck::ckpt
