#include "ckpt/base_remote.hpp"

#include "dnn/serializer.hpp"
#include "obs/stats.hpp"

namespace eccheck::ckpt {
namespace {

std::string remote_key(std::int64_t version, int worker) {
  return "remote/" + std::to_string(version) + "/worker/" +
         std::to_string(worker);
}

/// Shared save body: snapshot → serialize → persist, with either the whole
/// chain blocking training (sync) or only the snapshot (two-phase).
SaveReport remote_save(cluster::VirtualCluster& cluster,
                       const std::vector<dnn::StateDict>& shards,
                       std::int64_t version, bool synchronous) {
  ECC_CHECK(static_cast<int>(shards.size()) == cluster.world_size());
  cluster.reset_timeline();
  SaveReport rep;
  const auto stats_base = cluster.stats().counters();

  std::vector<cluster::TaskId> snapshot_done, persist_done;
  Seconds serialize_finish = 0;
  for (int w = 0; w < cluster.world_size(); ++w) {
    const int node = node_of_worker(cluster, w);
    const int gpu = gpu_of_worker(cluster, w);
    const auto& sd = shards[static_cast<std::size_t>(w)];
    const std::size_t gpu_bytes = sd.tensor_bytes();

    cluster::TaskId snap = cluster.dtoh(node, gpu, gpu_bytes, {});
    snapshot_done.push_back(snap);

    Buffer blob = dnn::serialize_state_dict(sd);
    cluster::TaskId ser = cluster.cpu_serialize(node, blob.size(), {snap});
    serialize_finish =
        std::max(serialize_finish, cluster.timeline().finish_time(ser));

    rep.remote_bytes += static_cast<std::size_t>(
        static_cast<double>(blob.size()) * cluster.config().size_scale);
    cluster.remote().put(remote_key(version, w), std::move(blob));
    cluster::TaskId wr = cluster.remote_write(
        node,
        cluster.remote().get(remote_key(version, w)).size(), {ser});
    persist_done.push_back(wr);
  }

  Seconds snap_finish = 0;
  for (auto t : snapshot_done)
    snap_finish = std::max(snap_finish, cluster.timeline().finish_time(t));
  Seconds persist_finish = 0;
  for (auto t : persist_done)
    persist_finish = std::max(persist_finish, cluster.timeline().finish_time(t));

  rep.breakdown["snapshot"] = snap_finish;
  rep.breakdown["serialize"] = serialize_finish;
  rep.breakdown["persist"] = persist_finish;
  rep.total_time = persist_finish;
  rep.stall_time = synchronous ? persist_finish : snap_finish;
  rep.stats =
      obs::StatsRegistry::delta(cluster.stats().counters(), stats_base);
  return rep;
}

LoadReport remote_load(cluster::VirtualCluster& cluster, std::int64_t version,
                       std::vector<dnn::StateDict>& out) {
  cluster.reset_timeline();
  LoadReport rep;
  const auto stats_base = cluster.stats().counters();
  out.clear();
  out.resize(static_cast<std::size_t>(cluster.world_size()));

  Seconds finish = 0;
  for (int w = 0; w < cluster.world_size(); ++w) {
    const std::string key = remote_key(version, w);
    if (!cluster.remote().contains(key)) {
      rep.success = false;
      rep.detail = "missing remote shard for worker " + std::to_string(w);
      rep.stats =
          obs::StatsRegistry::delta(cluster.stats().counters(), stats_base);
      return rep;
    }
    const int node = node_of_worker(cluster, w);
    const Buffer& blob = cluster.remote().get(key);
    cluster::TaskId rd = cluster.remote_read(node, blob.size(), {});
    cluster::TaskId de = cluster.cpu_serialize(node, blob.size(), {rd});
    finish = std::max(finish, cluster.timeline().finish_time(de));
    out[static_cast<std::size_t>(w)] = dnn::deserialize_state_dict(blob.span());
  }
  rep.success = true;
  rep.resume_time = finish;
  rep.total_time = finish;
  rep.stats =
      obs::StatsRegistry::delta(cluster.stats().counters(), stats_base);
  return rep;
}

}  // namespace

SaveReport RemoteSyncEngine::save(cluster::VirtualCluster& cluster,
                                  const std::vector<dnn::StateDict>& shards,
                                  std::int64_t version) {
  return remote_save(cluster, shards, version, /*synchronous=*/true);
}

LoadReport RemoteSyncEngine::load(cluster::VirtualCluster& cluster,
                                  std::int64_t version,
                                  std::vector<dnn::StateDict>& out) {
  return remote_load(cluster, version, out);
}

SaveReport RemoteTwoPhaseEngine::save(cluster::VirtualCluster& cluster,
                                      const std::vector<dnn::StateDict>& shards,
                                      std::int64_t version) {
  return remote_save(cluster, shards, version, /*synchronous=*/false);
}

LoadReport RemoteTwoPhaseEngine::load(cluster::VirtualCluster& cluster,
                                      std::int64_t version,
                                      std::vector<dnn::StateDict>& out) {
  return remote_load(cluster, version, out);
}

}  // namespace eccheck::ckpt
