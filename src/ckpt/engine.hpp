// Checkpoint engine interface shared by the three baselines (§V-B) and
// ECCheck itself.
//
// An engine's save() takes the live sharded checkpoint (one state_dict per
// worker; worker w runs on node w / gpus_per_node) and makes it durable in
// the engine's own way — remote storage, replicated host memory, or
// erasure-coded host memory. load() must reconstruct every worker's
// state_dict *from stored bytes alone* after arbitrary failure injection;
// tests verify bit-exactness against digests of the originals.
//
// All timing is virtual (cluster.timeline()); each save/load resets the
// timeline so reports are measured from t = 0.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "dnn/state_dict.hpp"

namespace eccheck::cluster {
class Fabric;  // cluster/fabric.hpp — SPMD transport abstraction
}  // namespace eccheck::cluster

namespace eccheck::ckpt {

struct SaveReport {
  /// Time training is blocked (synchronous part of checkpointing).
  Seconds stall_time = 0;
  /// Time until the checkpoint is fully durable (next save may begin).
  Seconds total_time = 0;
  /// Named step finish times (virtual seconds from save start).
  std::map<std::string, Seconds> breakdown;
  std::size_t network_bytes = 0;  ///< inter-node traffic (virtual bytes)
  std::size_t remote_bytes = 0;   ///< remote-storage traffic (virtual bytes)
  /// Per-edge-kind counters for this save alone (delta of the cluster's
  /// StatsRegistry): "net.<kind>.bytes" entries sum to network_bytes,
  /// "remote.write.bytes" to remote_bytes.
  std::map<std::string, std::uint64_t> stats;
  /// Where a Chrome trace of this operation was written, if anywhere.
  std::string trace_path;
};

struct LoadReport {
  bool success = false;
  /// Time from load start until every worker can resume training.
  Seconds resume_time = 0;
  /// Time until full fault-tolerance is restored (>= resume_time).
  Seconds total_time = 0;
  std::string detail;
  /// Per-edge-kind counters for this load alone (see SaveReport::stats).
  std::map<std::string, std::uint64_t> stats;
  std::string trace_path;
};

class CheckpointEngine {
 public:
  virtual ~CheckpointEngine() = default;

  virtual std::string name() const = 0;

  virtual SaveReport save(cluster::VirtualCluster& cluster,
                          const std::vector<dnn::StateDict>& shards,
                          std::int64_t version) = 0;

  /// Reconstruct all worker shards of `version` into `out` (resized by the
  /// engine). Dead nodes must have been replace()d by the caller (a failed
  /// recovery returns success=false and leaves `out` unspecified).
  virtual LoadReport load(cluster::VirtualCluster& cluster,
                          std::int64_t version,
                          std::vector<dnn::StateDict>& out) = 0;

  /// Fabric-generic SPMD form of save: every rank of the fabric calls it
  /// with the shards of the workers *it drives* (see core/fabric_engine.hpp
  /// for the ordering contract). Engines that can run over real sockets
  /// override this; the default throws CheckFailure, keeping the
  /// simulator-only baselines honest about their scope.
  virtual SaveReport save(cluster::Fabric& fabric,
                          const std::vector<const dnn::StateDict*>& shards,
                          std::int64_t version);

  /// Fabric-generic SPMD form of load; `out` receives the driven workers'
  /// shards. Default throws CheckFailure like the fabric save.
  virtual LoadReport load(cluster::Fabric& fabric, std::int64_t version,
                          std::vector<dnn::StateDict>& out);
};

/// Worker placement helpers shared by all engines.
inline int node_of_worker(const cluster::VirtualCluster& c, int worker) {
  return worker / c.gpus_per_node();
}
inline int gpu_of_worker(const cluster::VirtualCluster& c, int worker) {
  return worker % c.gpus_per_node();
}

/// Key naming shared across engines: ckpt/<version>/<kind>/<index>.
std::string shard_key(std::int64_t version, int worker);

}  // namespace eccheck::ckpt
