// base3: GEMINI-style replication-based in-memory checkpointing (§V-B).
//
// Nodes are statically partitioned into groups of `group_size` consecutive
// nodes. Each worker snapshots its shard to host memory (the only blocking
// phase), then every node broadcasts its shards to all peers in its group.
// Any single failure per group is recoverable from a peer replica; losing a
// whole group loses the checkpoint — the fault-tolerance gap erasure coding
// closes (Fig. 2, Fig. 15).
#pragma once

#include "ckpt/engine.hpp"

namespace eccheck::ckpt {

class GeminiReplicationEngine final : public CheckpointEngine {
 public:
  explicit GeminiReplicationEngine(int group_size = 2)
      : group_size_(group_size) {
    ECC_CHECK(group_size >= 2);
  }

  std::string name() const override { return "base3-gemini-replication"; }
  int group_size() const { return group_size_; }

  SaveReport save(cluster::VirtualCluster& cluster,
                  const std::vector<dnn::StateDict>& shards,
                  std::int64_t version) override;
  LoadReport load(cluster::VirtualCluster& cluster, std::int64_t version,
                  std::vector<dnn::StateDict>& out) override;

  /// Nodes in the same replication group as `node`.
  std::vector<int> group_of(const cluster::VirtualCluster& cluster,
                            int node) const;

 private:
  int group_size_;
};

}  // namespace eccheck::ckpt
