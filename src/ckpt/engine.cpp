#include "ckpt/engine.hpp"

namespace eccheck::ckpt {

SaveReport CheckpointEngine::save(cluster::Fabric&,
                                  const std::vector<const dnn::StateDict*>&,
                                  std::int64_t) {
  throw CheckFailure("engine '" + name() +
                     "' does not support fabric (SPMD) execution");
}

LoadReport CheckpointEngine::load(cluster::Fabric&, std::int64_t,
                                  std::vector<dnn::StateDict>&) {
  throw CheckFailure("engine '" + name() +
                     "' does not support fabric (SPMD) execution");
}

}  // namespace eccheck::ckpt
