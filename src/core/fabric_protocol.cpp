#include "core/fabric_protocol.hpp"

#include <algorithm>

#include "common/crc64.hpp"
#include "common/rng.hpp"
#include "ec/crs_codec.hpp"

namespace eccheck::core {
namespace {

constexpr std::uint64_t kMetaMagic = 0x3154'4d52'5453'4345ULL;  // "ECSTRMT1"

std::uint64_t chunk_seed(const FabricStripeConfig& cfg, int row) {
  // Distinct, order-free streams per data row.
  return cfg.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(row);
}

Buffer make_meta(const FabricStripeConfig& cfg) {
  Buffer b(6 * sizeof(std::uint64_t), Buffer::Init::kZeroed);
  std::uint64_t fields[6] = {kMetaMagic,
                             static_cast<std::uint64_t>(cfg.k),
                             static_cast<std::uint64_t>(cfg.m),
                             static_cast<std::uint64_t>(cfg.gf_width),
                             static_cast<std::uint64_t>(cfg.chunk_bytes),
                             cfg.seed};
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 8; ++j)
      b.data()[i * 8 + j] = static_cast<std::byte>(fields[i] >> (8 * j));
  return b;
}

/// Every driven rank cross-checks the broadcast metadata against its own
/// config: in a multi-process run a mis-launched worker must fail loudly,
/// not silently encode a different stripe.
void check_meta(const FabricStripeConfig& cfg, const Buffer& meta) {
  Buffer expect = make_meta(cfg);
  ECC_CHECK_MSG(meta == expect,
                "stripe metadata mismatch — workers were launched with "
                "different (k, m, w, chunk_bytes, seed)");
}

ec::CrsCodec make_codec(const FabricStripeConfig& cfg) {
  return ec::CrsCodec(cfg.k, cfg.m, cfg.gf_width);
}

}  // namespace

std::string stripe_chunk_key(int row) {
  return "stripe/chunk/" + std::to_string(row);
}
std::string stripe_partial_key(int parity) {
  return "stripe/partial/" + std::to_string(parity);
}
std::string stripe_meta_key() { return "stripe/meta"; }
std::string stripe_remote_key(int row) {
  return "stripe/remote/" + std::to_string(row);
}

std::vector<int> stripe_all_nodes(const FabricStripeConfig& cfg) {
  std::vector<int> out;
  for (int i = 0; i < cfg.total(); ++i) out.push_back(i);
  return out;
}

std::vector<int> stripe_data_nodes(const FabricStripeConfig& cfg) {
  std::vector<int> out;
  for (int c = 0; c < cfg.k; ++c) out.push_back(c);
  return out;
}

void stripe_encode(cluster::Fabric& fabric, const FabricStripeConfig& cfg) {
  ECC_CHECK(cfg.k >= 1 && cfg.m >= 0 && cfg.chunk_bytes > 0);
  ECC_CHECK_MSG(fabric.world_size() >= cfg.total(),
                "fabric of " << fabric.world_size() << " ranks cannot hold a "
                             << cfg.k << "+" << cfg.m << " stripe");
  const ec::CrsCodec codec = make_codec(cfg);
  ECC_CHECK(cfg.chunk_bytes % codec.packet_granularity() == 0);
  const auto all = stripe_all_nodes(cfg);
  const auto data = stripe_data_nodes(cfg);

  // Step 1: every data rank synthesizes its chunk (the stand-in for the
  // GPU→host snapshot).
  for (int c : data) {
    if (!fabric.drives(c)) continue;
    Buffer chunk(cfg.chunk_bytes, Buffer::Init::kUninitialized);
    fill_random(chunk.span(), chunk_seed(cfg, c));
    fabric.store(c).put(stripe_chunk_key(c), std::move(chunk));
  }

  // Step 2: broadcast the tiny stripe metadata from rank 0; every driven
  // rank verifies it against its own launch config.
  if (fabric.drives(0))
    fabric.store(0).put(stripe_meta_key(), make_meta(cfg));
  fabric.broadcast(all, 0, stripe_meta_key());
  for (int n : all)
    if (fabric.drives(n)) check_meta(cfg, fabric.store(n).get(stripe_meta_key()));

  // Step 3: per parity row r — each data rank contributes its GF partial
  // product, the partials XOR-reduce around the data ring (GF(2^w) addition
  // is XOR), and the lowest data rank ships the finished parity to its
  // parity rank.
  for (int r = 0; r < cfg.m; ++r) {
    const std::string pkey = stripe_partial_key(r);
    for (int c : data) {
      if (!fabric.drives(c)) continue;
      Buffer partial(cfg.chunk_bytes, Buffer::Init::kZeroed);
      codec.encode_partial(cfg.k + r, c,
                           fabric.store(c).get(stripe_chunk_key(c)).span(),
                           partial.span(), /*accumulate=*/false);
      fabric.store(c).put(pkey, std::move(partial));
    }
    fabric.ring_all_reduce_xor(data, pkey);
    fabric.send_buffer(data[0], cfg.k + r, pkey, stripe_chunk_key(cfg.k + r));
    for (int c : data)
      if (fabric.drives(c)) fabric.store(c).erase(pkey);
  }

  // Step 4 (optional): low-frequency flush to persistent remote storage.
  if (cfg.flush_to_remote)
    for (int n : all)
      fabric.remote_write(n, stripe_chunk_key(n), stripe_remote_key(n));

  fabric.barrier(all);
}

void stripe_recover(cluster::Fabric& fabric, const FabricStripeConfig& cfg,
                    const std::vector<int>& replaced) {
  const ec::CrsCodec codec = make_codec(cfg);
  const auto all = stripe_all_nodes(cfg);

  std::vector<int> survivors;
  for (int n : all)
    if (std::find(replaced.begin(), replaced.end(), n) == replaced.end())
      survivors.push_back(n);
  ECC_CHECK_MSG(static_cast<int>(survivors.size()) >= cfg.k,
                replaced.size() << " ranks lost with only m=" << cfg.m
                                << " parity — stripe unrecoverable without "
                                   "the remote fallback");
  const std::vector<int> helpers(survivors.begin(),
                                 survivors.begin() + cfg.k);

  // Replacements come up empty: re-broadcast the stripe metadata from the
  // lowest survivor so they rejoin with a verified view of the stripe.
  fabric.broadcast(all, survivors[0], stripe_meta_key());
  for (int n : all)
    if (fabric.drives(n)) check_meta(cfg, fabric.store(n).get(stripe_meta_key()));

  // Any k surviving rows reconstruct any target row: helpers ship their
  // chunks to each replacement, which applies T = E[target]·E[helpers]⁻¹.
  for (int t : replaced) {
    for (int h : helpers)
      fabric.send_buffer(h, t, stripe_chunk_key(h),
                         "stripe/recover/" + std::to_string(h));
    if (fabric.drives(t)) {
      std::vector<ByteSpan> in;
      for (int h : helpers)
        in.push_back(
            fabric.store(t).get("stripe/recover/" + std::to_string(h)).span());
      Buffer out(cfg.chunk_bytes, Buffer::Init::kZeroed);
      ec::GfMatrix recon = codec.reconstruction_matrix(helpers, {t});
      std::vector<MutableByteSpan> outs = {out.span()};
      codec.apply_matrix(recon, in, outs);
      fabric.store(t).put(stripe_chunk_key(t), std::move(out));
      for (int h : helpers)
        fabric.store(t).erase("stripe/recover/" + std::to_string(h));
    }
  }
  fabric.barrier(all);
}

void stripe_recover_from_remote(cluster::Fabric& fabric,
                                const FabricStripeConfig& cfg, int node) {
  if (!fabric.drives(node)) return;
  fabric.remote_read(node, stripe_remote_key(node), stripe_chunk_key(node));
  ECC_CHECK(fabric.store(node).get(stripe_chunk_key(node)).size() ==
            cfg.chunk_bytes);
}

Buffer stripe_expected_chunk(const FabricStripeConfig& cfg, int row) {
  ECC_CHECK(row >= 0 && row < cfg.total());
  if (row < cfg.k) {
    Buffer chunk(cfg.chunk_bytes, Buffer::Init::kUninitialized);
    fill_random(chunk.span(), chunk_seed(cfg, row));
    return chunk;
  }
  const ec::CrsCodec codec = make_codec(cfg);
  std::vector<Buffer> datab;
  std::vector<ByteSpan> data;
  for (int c = 0; c < cfg.k; ++c) {
    datab.push_back(stripe_expected_chunk(cfg, c));
    data.push_back(datab.back().span());
  }
  Buffer parity(cfg.chunk_bytes, Buffer::Init::kZeroed);
  for (int c = 0; c < cfg.k; ++c)
    codec.encode_partial(row, c, data[static_cast<std::size_t>(c)],
                         parity.span(), /*accumulate=*/true);
  return parity;
}

std::uint64_t stripe_chunk_crc(cluster::Fabric& fabric, int node) {
  return crc64(fabric.store(node).get(stripe_chunk_key(node)).span());
}

}  // namespace eccheck::core
