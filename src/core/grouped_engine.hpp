// Group-based ECCheck (paper §VI / §V-F): partition a large cluster into
// fixed-size groups and run the full ECCheck protocol independently inside
// each group.
//
// Rationale: with a single cluster-wide code, raising fault tolerance means
// raising m and with it per-device communication (m·s). Groups cap the
// communication at (group/2)·s while still tolerating group/2 concurrent
// failures *per group* — the sweet spot the paper leaves as future work is
// computed by analysis::optimal_group_size.
//
// Implementation: each group gets its own ECCheckEngine over a node-id
// translation (a GroupView suffixes keys and offsets node indices); save and
// load fan out over groups, timing naturally overlaps since groups touch
// disjoint nodes.
#pragma once

#include "core/eccheck_engine.hpp"

namespace eccheck::core {

struct GroupedConfig {
  int group_size = 4;        ///< nodes per group; must divide the node count
  ECCheckConfig per_group;   ///< k + m must equal group_size
};

class GroupedECCheckEngine final : public ckpt::CheckpointEngine {
 public:
  explicit GroupedECCheckEngine(GroupedConfig cfg);

  std::string name() const override { return "eccheck-grouped"; }
  const GroupedConfig& config() const { return cfg_; }

  int num_groups(const cluster::VirtualCluster& cluster) const;

  /// Nodes of group `g` (consecutive ids).
  std::vector<int> group_nodes(const cluster::VirtualCluster& cluster,
                               int g) const;

  ckpt::SaveReport save(cluster::VirtualCluster& cluster,
                        const std::vector<dnn::StateDict>& shards,
                        std::int64_t version) override;
  ckpt::LoadReport load(cluster::VirtualCluster& cluster, std::int64_t version,
                        std::vector<dnn::StateDict>& out) override;

 private:
  GroupedConfig cfg_;
};

}  // namespace eccheck::core
