#include "core/delta.hpp"

#include <cstring>

#include "common/check.hpp"

namespace eccheck::core {
namespace {

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::byte>(v >> (8 * i));
}

void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>(v >> (8 * i));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

std::vector<DirtyExtent> diff_packet(int packet_index, ByteSpan base,
                                     ByteSpan next, std::size_t granularity) {
  ECC_CHECK(base.size() == next.size());
  ECC_CHECK(granularity > 0);
  std::vector<DirtyExtent> extents;
  for (std::size_t lo = 0; lo < base.size(); lo += granularity) {
    const std::size_t len = std::min(granularity, base.size() - lo);
    if (std::memcmp(base.data() + lo, next.data() + lo, len) == 0) continue;
    if (!extents.empty() &&
        extents.back().offset + extents.back().length == lo) {
      extents.back().length += len;
    } else {
      extents.push_back({static_cast<std::uint32_t>(packet_index), lo, len});
    }
  }
  return extents;
}

std::uint64_t dirty_bytes(const std::vector<DirtyExtent>& extents) {
  std::uint64_t n = 0;
  for (const DirtyExtent& e : extents) n += e.length;
  return n;
}

Buffer serialize_extents(const std::vector<DirtyExtent>& extents) {
  Buffer out(8 + extents.size() * 20, Buffer::Init::kZeroed);
  put_u64(out.data(), extents.size());
  std::byte* p = out.data() + 8;
  for (const DirtyExtent& e : extents) {
    put_u32(p, e.packet);
    put_u64(p + 4, e.offset);
    put_u64(p + 12, e.length);
    p += 20;
  }
  return out;
}

std::vector<DirtyExtent> deserialize_extents(ByteSpan blob) {
  ECC_CHECK_MSG(blob.size() >= 8, "truncated extent manifest");
  const std::uint64_t count = get_u64(blob.data());
  ECC_CHECK_MSG(blob.size() == 8 + count * 20,
                "extent manifest size " << blob.size()
                                        << " inconsistent with count "
                                        << count);
  std::vector<DirtyExtent> extents(count);
  const std::byte* p = blob.data() + 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    extents[i].packet = get_u32(p);
    extents[i].offset = get_u64(p + 4);
    extents[i].length = get_u64(p + 12);
    p += 20;
  }
  return extents;
}

}  // namespace eccheck::core
