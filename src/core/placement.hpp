// Data/parity node selection and XOR-reduction planning (paper §IV-B).
//
// Terminology (paper §III-B): W = n·g workers each own one checkpoint data
// packet per buffer slot. The W packets are split into k equal *data chunks*
// (chunk c ↔ workers [c·W/k, (c+1)·W/k)); m parity chunks are derived via
// CRS. Each node stores exactly one chunk, so the choice of which physical
// nodes act as data nodes decides how many packets must move in the final
// P2P step. ECCheck picks, for every logical data chunk, the physical node
// whose worker interval overlaps it the most — the "maximum overlap interval
// pairing" solved with a sweep line over sorted interval endpoints.
//
// Reduction groups: the workers with equal relative index j inside their
// data chunks form reduction group j (W/k groups of k workers); each group
// XOR-reduces its k encoded packets into m parity packets. The reduction
// *target* of each parity row is chosen so results land on parity nodes
// whenever possible (§IV-B2: direct assignment / ⌊k/m⌋ spacing / round
// robin, by the relation of k and m).
#pragma once

#include <vector>

#include "common/check.hpp"

namespace eccheck::core {

/// Half-open worker-index interval [begin, end).
struct IndexInterval {
  int begin = 0;
  int end = 0;
  int length() const { return end - begin; }
  friend bool operator==(const IndexInterval&, const IndexInterval&) = default;
};

inline int overlap(const IndexInterval& a, const IndexInterval& b) {
  return std::max(0, std::min(a.end, b.end) - std::max(a.begin, b.begin));
}

/// For each interval in `data`, the index of the `origin` interval with the
/// largest overlap, with each origin interval used at most once (conflicts
/// resolved by overlap size, then lower indices). Both inputs must be
/// disjoint and sorted. O((|origin|+|data|) log(|origin|+|data|)).
std::vector<int> max_overlap_pairing(const std::vector<IndexInterval>& origin,
                                     const std::vector<IndexInterval>& data);

struct PlacementConfig {
  int num_nodes = 4;
  int gpus_per_node = 1;
  int k = 2;  ///< data nodes
  int m = 2;  ///< parity nodes (k + m == num_nodes)
};

struct ReductionOp {
  int group = 0;                  ///< reduction group j ∈ [0, W/k)
  int parity_row = 0;             ///< r ∈ [0, m)
  std::vector<int> participants;  ///< the k workers holding encoded packets
  int target_worker = 0;          ///< where the XOR result accumulates
  int dest_node = 0;              ///< parity node that must end up storing it
};

struct P2PTransfer {
  enum class Kind { kDataPacket, kParityPacket };
  Kind kind;
  int chunk = 0;         ///< data chunk c or parity row r
  int packet_owner = 0;  ///< worker whose packet slot this is
  int src_node = 0;
  int dst_node = 0;
};

struct Placement {
  PlacementConfig config;
  std::vector<int> data_nodes;    ///< data chunk c → physical node
  std::vector<int> parity_nodes;  ///< parity row r → physical node
  std::vector<ReductionOp> reductions;   ///< all W/k · m reduction ops
  std::vector<P2PTransfer> transfers;    ///< inter-node moves only

  int world_size() const { return config.num_nodes * config.gpus_per_node; }
  int workers_per_chunk() const { return world_size() / config.k; }

  /// Data chunk that worker w's packet belongs to.
  int chunk_of_worker(int w) const { return w / workers_per_chunk(); }
  ///

  bool is_data_node(int node) const;
  bool is_parity_node(int node) const;

  /// Generator row stored by `node`: chunk index c for data nodes, k + r for
  /// parity nodes.
  int generator_row_of_node(int node) const;
};

/// Worker w's hosting node.
inline int node_of(const PlacementConfig& cfg, int worker) {
  return worker / cfg.gpus_per_node;
}

/// Compute the full plan: node roles via sweep-line pairing, reduction
/// targets via the §IV-B2 rules, and the resulting inter-node P2P transfers.
Placement plan_placement(const PlacementConfig& cfg);

/// Communication volume (bytes) for one checkpoint, with per-worker shard
/// size `s`. `nominal` uses the paper's accounting (every reduction hop and
/// every packet relocation counted, = m·s·W with optimal placement);
/// `actual` drops hops between co-located workers.
struct CommVolume {
  double xor_reduction_bytes = 0;
  double p2p_bytes = 0;
  double total() const { return xor_reduction_bytes + p2p_bytes; }
};
CommVolume nominal_comm_volume(const Placement& p, double shard_bytes);
CommVolume actual_comm_volume(const Placement& p, double shard_bytes);

}  // namespace eccheck::core
