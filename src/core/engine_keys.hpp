// Store-key schema of the ECCheck engine, shared by the simulator engine
// (core/eccheck_engine.cpp), the fabric-generic SPMD engine
// (core/fabric_engine.cpp), and the session layers. The two engines must
// produce byte-identical stores, so the schema lives in exactly one place:
//
//   <ns>ec/<version>/row/<row>/<j>/<b>   packet b of stripe j of chunk row
//   <ns>ec/<version>/meta/<w>            worker w's serialized metadata
//   <ns>ec/<version>/keys/<w>            worker w's serialized tensor keys
//   <ns>ec/<version>/sums                per-packet CRC64s of this node's row
//   <ns>ec/<version>/commit              version marker: the save completed
//   <ns>tmp/<version>/local/<w>/<b>      staging copy of worker w's packet b
//
// Everything under "<ns>ec/<version>/" is the durable footprint of one
// version (version_prefix); "<ns>tmp/<version>/" holds transient staging
// keys that a completed save always erases (tmp_prefix — a torn save rolls
// them back).
#pragma once

#include <cstdint>
#include <string>

namespace eccheck::core::keys {

inline std::string version_prefix(const std::string& ns, std::int64_t v) {
  return ns + "ec/" + std::to_string(v) + "/";
}

inline std::string tmp_prefix(const std::string& ns, std::int64_t v) {
  return ns + "tmp/" + std::to_string(v) + "/";
}

inline std::string row_key(const std::string& ns, std::int64_t v, int row,
                           int j, int b) {
  return version_prefix(ns, v) + "row/" + std::to_string(row) + "/" +
         std::to_string(j) + "/" + std::to_string(b);
}

inline std::string meta_key(const std::string& ns, std::int64_t v, int w) {
  return version_prefix(ns, v) + "meta/" + std::to_string(w);
}

inline std::string keys_key(const std::string& ns, std::int64_t v, int w) {
  return version_prefix(ns, v) + "keys/" + std::to_string(w);
}

inline std::string commit_key(const std::string& ns, std::int64_t v) {
  return version_prefix(ns, v) + "commit";
}

inline std::string sums_key(const std::string& ns, std::int64_t v) {
  return version_prefix(ns, v) + "sums";
}

inline std::string local_key(const std::string& ns, std::int64_t v, int w,
                             int b) {
  return tmp_prefix(ns, v) + "local/" + std::to_string(w) + "/" +
         std::to_string(b);
}

}  // namespace eccheck::core::keys
