// Store-key schema of the ECCheck engine, shared by the simulator engine
// (core/eccheck_engine.cpp), the fabric-generic SPMD engine
// (core/fabric_engine.cpp), and the session layers. The two engines must
// produce byte-identical stores, so the schema lives in exactly one place:
//
//   <ns>ec/<version>/row/<row>/<j>/<b>   packet b of stripe j of chunk row
//   <ns>ec/<version>/meta/<w>            worker w's serialized metadata
//   <ns>ec/<version>/keys/<w>            worker w's serialized tensor keys
//   <ns>ec/<version>/sums                per-packet CRC64s of this node's row
//   <ns>ec/<version>/commit              version marker: the save completed
//   <ns>tmp/<version>/local/<w>/<b>      staging copy of worker w's packet b
//
// Everything under "<ns>ec/<version>/" is the durable footprint of one
// version (version_prefix); "<ns>tmp/<version>/" holds transient staging
// keys that a completed save always erases (tmp_prefix — a torn save rolls
// them back).
//
// Incremental checkpointing (ECCheckConfig::delta) adds an unversioned
// base cache at each worker's site — the packed packets of the last
// committed version, diffed against on the next save:
//
//   <ns>base/mark                        cache marker: version, B, P, g
//   <ns>base/local/<w>/<b>               cached packet b of worker w
//   <ns>base/keys/<w>                    cached tensor-keys blob of worker w
//   <ns>tmp/<version>/delta/...          transient manifests + Δ patches
//
// The cache is valid only while the marker's version still has its commit
// marker on the same node: a torn delta save rolls the version keys back
// (FabricSession::rollback) which invalidates any half-written cache, so
// the next save re-encodes in full — never from wrong bytes. The marker is
// erased before the cache is rewritten and re-put last, giving the same
// fail-to-full-encode behaviour for a crash mid-refresh.
#pragma once

#include <cstdint>
#include <string>

namespace eccheck::core::keys {

inline std::string version_prefix(const std::string& ns, std::int64_t v) {
  return ns + "ec/" + std::to_string(v) + "/";
}

inline std::string tmp_prefix(const std::string& ns, std::int64_t v) {
  return ns + "tmp/" + std::to_string(v) + "/";
}

inline std::string row_key(const std::string& ns, std::int64_t v, int row,
                           int j, int b) {
  return version_prefix(ns, v) + "row/" + std::to_string(row) + "/" +
         std::to_string(j) + "/" + std::to_string(b);
}

inline std::string meta_key(const std::string& ns, std::int64_t v, int w) {
  return version_prefix(ns, v) + "meta/" + std::to_string(w);
}

inline std::string keys_key(const std::string& ns, std::int64_t v, int w) {
  return version_prefix(ns, v) + "keys/" + std::to_string(w);
}

inline std::string commit_key(const std::string& ns, std::int64_t v) {
  return version_prefix(ns, v) + "commit";
}

inline std::string sums_key(const std::string& ns, std::int64_t v) {
  return version_prefix(ns, v) + "sums";
}

inline std::string local_key(const std::string& ns, std::int64_t v, int w,
                             int b) {
  return tmp_prefix(ns, v) + "local/" + std::to_string(w) + "/" +
         std::to_string(b);
}

inline std::string base_prefix(const std::string& ns) { return ns + "base/"; }

inline std::string base_mark_key(const std::string& ns) {
  return base_prefix(ns) + "mark";
}

inline std::string base_local_key(const std::string& ns, int w, int b) {
  return base_prefix(ns) + "local/" + std::to_string(w) + "/" +
         std::to_string(b);
}

inline std::string base_keys_key(const std::string& ns, int w) {
  return base_prefix(ns) + "keys/" + std::to_string(w);
}

inline std::string delta_manifest_key(const std::string& ns, std::int64_t v,
                                      int w) {
  return tmp_prefix(ns, v) + "delta/manifest/" + std::to_string(w);
}

inline std::string delta_patch_key(const std::string& ns, std::int64_t v,
                                   int w, int b, std::uint64_t offset) {
  return tmp_prefix(ns, v) + "delta/patch/" + std::to_string(w) + "/" +
         std::to_string(b) + "/" + std::to_string(offset);
}

}  // namespace eccheck::core::keys
