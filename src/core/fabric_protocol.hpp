// Fabric-generic erasure-coded stripe protocol: the paper's encode and
// recovery workflows expressed purely against cluster::Fabric, so the same
// code runs
//  * in one process over VirtualFabric (the simulated reference), and
//  * SPMD across real processes over net::SocketTransport,
// and must leave byte-identical stores — the property transport_cli and the
// differential suite assert.
//
// Layout mirrors the engine's distributed protocol (§III-B/§IV): data rank
// c (0..k-1) owns data chunk c; parity rank k+r owns parity chunk r. Encode
// computes each parity as the XOR-all-reduce of per-data-rank GF partial
// products around the data ring, then ships it to its parity rank; recovery
// refills replaced ranks from any k survivors via the reconstruction
// matrix. Every rank only ever touches its own store — all cross-rank bytes
// move through fabric helpers, which is what makes the protocol
// transport-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fabric.hpp"
#include "common/bytes.hpp"

namespace eccheck::core {

struct FabricStripeConfig {
  int k = 4;                         ///< data ranks
  int m = 2;                         ///< parity ranks
  int gf_width = 8;
  std::size_t chunk_bytes = 64 * 1024;
  std::uint64_t seed = 1;            ///< deterministic payload synthesis
  bool flush_to_remote = false;      ///< also remote_write every chunk

  int total() const { return k + m; }
};

std::string stripe_chunk_key(int row);
std::string stripe_partial_key(int parity);
std::string stripe_meta_key();
std::string stripe_remote_key(int row);

std::vector<int> stripe_all_nodes(const FabricStripeConfig& cfg);
std::vector<int> stripe_data_nodes(const FabricStripeConfig& cfg);

/// SPMD encode: synthesize data chunks, broadcast stripe metadata from rank
/// 0 (verified against `cfg` by every driven rank), reduce parities around
/// the data ring, ship them to parity ranks, optionally flush every chunk
/// to the remote store. Ends with a fabric barrier; afterwards rank i holds
/// exactly stripe_chunk_key(i) (+ metadata).
void stripe_encode(cluster::Fabric& fabric, const FabricStripeConfig& cfg);

/// SPMD recovery after the ranks in `replaced` lost their volatile stores
/// (killed and re-spawned empty): metadata is re-broadcast from the lowest
/// survivor, the first k survivors ship their chunks to each replacement,
/// and each replacement decodes its own row via the reconstruction matrix.
/// Ends with a fabric barrier; afterwards every rank again holds its row
/// chunk, bit-exact with the pre-failure stripe.
void stripe_recover(cluster::Fabric& fabric, const FabricStripeConfig& cfg,
                    const std::vector<int>& replaced);

/// Refill a driven replaced rank directly from the persistent remote store
/// (the catastrophic-loss path: fewer than k survivors).
void stripe_recover_from_remote(cluster::Fabric& fabric,
                                const FabricStripeConfig& cfg, int node);

/// The chunk row `row` must hold after encode/recover — data rows are
/// synthesized from the seed, parity rows encoded locally. Reference for
/// bit-exact verification without any cluster.
Buffer stripe_expected_chunk(const FabricStripeConfig& cfg, int row);

/// CRC64 of a driven rank's current chunk.
std::uint64_t stripe_chunk_crc(cluster::Fabric& fabric, int node);

}  // namespace eccheck::core
