#include "core/fabric_engine.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <numeric>

#include "common/bytes.hpp"
#include "common/crc64.hpp"
#include "core/delta.hpp"
#include "core/engine_keys.hpp"
#include "core/placement.hpp"
#include "core/protocol.hpp"
#include "ec/crs_codec.hpp"
#include "obs/stats.hpp"
#include "obs/tracer.hpp"

namespace eccheck::core {
namespace {

using keys::base_keys_key;
using keys::base_local_key;
using keys::base_mark_key;
using keys::commit_key;
using keys::delta_manifest_key;
using keys::delta_patch_key;
using keys::keys_key;
using keys::local_key;
using keys::meta_key;
using keys::row_key;
using keys::sums_key;
using keys::tmp_prefix;
using keys::version_prefix;

using Clock = std::chrono::steady_clock;

Seconds since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<int> driven_nodes(cluster::Fabric& fabric) {
  std::vector<int> nodes;
  for (int node = 0; node < fabric.world_size(); ++node)
    if (fabric.drives(node)) nodes.push_back(node);
  ECC_CHECK_MSG(!nodes.empty(), "fabric drives no rank");
  return nodes;
}

std::vector<int> all_nodes(int n) {
  std::vector<int> nodes(static_cast<std::size_t>(n));
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

/// The ranks participating in collectives under `members`: the alive list,
/// or everyone under full membership.
std::vector<int> active_nodes(int n, const Membership& members) {
  return members.full() ? all_nodes(n) : members.alive;
}

/// Nodes whose per-node protocol state this process is responsible for:
/// every node whose site (itself when alive, the adopter when dead) is
/// driven here. Ascending.
std::vector<int> sited_nodes(cluster::Fabric& fabric,
                             const Membership& members) {
  std::vector<int> nodes;
  for (int node = 0; node < fabric.world_size(); ++node)
    if (fabric.drives(members.site(node))) nodes.push_back(node);
  return nodes;
}

/// First alive node this process drives — the rank whose store "home"
/// reads (B derivation, gathered flags) come from.
int home_node(cluster::Fabric& fabric, const std::vector<int>& act) {
  for (int node : act)
    if (fabric.drives(node)) return node;
  throw CheckFailure("fabric drives no alive rank");
}

/// Sum of the stats-delta counters matching "net.*.bytes" / the remote
/// write counter — fills the report's traffic fields identically for the
/// simulator registry and the transport registry.
void fill_traffic(const std::map<std::string, std::uint64_t>& delta,
                  std::size_t* network_bytes, std::size_t* remote_bytes) {
  for (const auto& [key, value] : delta) {
    if (key.rfind("net.", 0) == 0 &&
        key.size() > 6 && key.compare(key.size() - 6, 6, ".bytes") == 0)
      *network_bytes += value;
  }
  auto it = delta.find("remote.write.bytes");
  if (remote_bytes != nullptr && it != delta.end()) *remote_bytes += it->second;
}

/// "<ns>ec/<v>/commit" → v, or 0 when the key is not a commit marker.
std::int64_t commit_version_of(const std::string& key, const std::string& ns) {
  const std::string head = ns + "ec/";
  if (key.rfind(head, 0) != 0) return 0;
  const std::size_t digits = head.size();
  std::size_t end = digits;
  while (end < key.size() && std::isdigit(static_cast<unsigned char>(key[end])))
    ++end;
  if (end == digits || key.compare(end, std::string::npos, "/commit") != 0)
    return 0;
  std::int64_t v = 0;
  for (std::size_t i = digits; i < end; ++i) {
    if (v > (INT64_MAX - 9) / 10) return 0;
    v = v * 10 + (key[i] - '0');
  }
  return v;
}

void put_u64_le(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>(v >> (8 * i));
}

std::uint64_t get_u64_le(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  return v;
}

/// One SPMD flag round: every driven node contributes 16 bytes
/// (flag, worker-count) under a per-node tmp key, all_gather makes all n
/// contributions visible everywhere, and the tmp keys are erased again.
/// Returns, per node, the (flag, W) pair — identical on every rank.
struct NodeFlag {
  std::uint64_t flag = 0;
  std::uint64_t workers = 0;
};

/// `act` is the participating (alive) node list; excluded ranks' entries in
/// the returned vector stay zeroed, so dead ranks read as "nothing usable".
std::vector<NodeFlag> exchange_flags(
    cluster::Fabric& fabric, const std::string& tag,
    const std::function<NodeFlag(int node)>& local,
    const std::vector<int>& act) {
  const int n = fabric.world_size();
  auto fkey = [&](int node) { return tag + std::to_string(node); };
  auto erase_all = [&] {
    for (int node : act)
      if (fabric.drives(node))
        for (int other : act) fabric.store(node).erase(fkey(other));
  };
  for (int node : act) {
    if (!fabric.drives(node)) continue;
    const NodeFlag f = local(node);
    Buffer buf(16, Buffer::Init::kZeroed);
    put_u64_le(buf.data(), f.flag);
    put_u64_le(buf.data() + 8, f.workers);
    fabric.store(node).put(fkey(node), std::move(buf));
  }
  try {
    fabric.all_gather(act, fkey);
  } catch (...) {
    // A dead peer aborts the gather — the transient exchange keys must not
    // outlive the failed collective (they are not version-scoped, so the
    // caller's torn-version rollback would miss them).
    erase_all();
    throw;
  }
  std::vector<NodeFlag> flags(static_cast<std::size_t>(n));
  const int home = home_node(fabric, act);
  for (int node : act) {
    const Buffer& buf = fabric.store(home).get(fkey(node));
    ECC_CHECK(buf.size() == 16);
    flags[static_cast<std::size_t>(node)].flag = get_u64_le(buf.data());
    flags[static_cast<std::size_t>(node)].workers =
        get_u64_le(buf.data() + 8);
  }
  erase_all();
  return flags;
}

}  // namespace

std::vector<int> fabric_driven_workers(cluster::Fabric& fabric,
                                       int gpus_per_node) {
  std::vector<int> workers;
  for (int node : driven_nodes(fabric))
    for (int l = 0; l < gpus_per_node; ++l)
      workers.push_back(node * gpus_per_node + l);
  return workers;
}

std::vector<int> fabric_sited_workers(cluster::Fabric& fabric,
                                      int gpus_per_node,
                                      const Membership& members) {
  std::vector<int> workers;
  for (int node : sited_nodes(fabric, members))
    for (int l = 0; l < gpus_per_node; ++l)
      workers.push_back(node * gpus_per_node + l);
  return workers;
}

// ---------------------------------------------------------------------------
// save
// ---------------------------------------------------------------------------

ckpt::SaveReport fabric_save(cluster::Fabric& fabric, const ECCheckConfig& cfg,
                             const std::vector<const dnn::StateDict*>& shards,
                             std::int64_t version,
                             const Membership& members) {
  const auto t0 = Clock::now();
  const int n = fabric.world_size();
  ECC_CHECK_MSG(cfg.k + cfg.m == n, "k+m must equal the fabric world size");
  members.check(n);
  const int n_alive = members.alive_count(n);
  ECC_CHECK_MSG(n_alive >= cfg.k, "degraded save impossible: only "
                                      << n_alive << " of " << n
                                      << " ranks alive, need at least k="
                                      << cfg.k);
  const std::vector<int> act = active_nodes(n, members);
  const std::vector<int> driven = driven_nodes(fabric);
  const std::vector<int> handled = sited_nodes(fabric, members);
  ECC_CHECK_MSG(!handled.empty(),
                "this process sites no rank under the given membership");
  ECC_CHECK_MSG(!shards.empty() && shards.size() % handled.size() == 0,
                "need the same number of shards per sited rank");
  const int g = static_cast<int>(shards.size() / handled.size());
  const int W = n * g;
  ECC_CHECK_MSG(W % cfg.k == 0, "k must divide the worker count");

  PlacementConfig pc;
  pc.num_nodes = n;
  pc.gpus_per_node = g;
  pc.k = cfg.k;
  pc.m = cfg.m;
  const Placement plan = plan_placement(pc);
  const ec::CrsCodec codec(cfg.k, cfg.m, cfg.gf_width, cfg.kernel);
  const int per_chunk = plan.workers_per_chunk();
  const std::size_t P = cfg.packet_size;
  ECC_CHECK_MSG(P % codec.packet_granularity() == 0,
                "packet_size must be a multiple of the codec granularity");
  const std::string& ns = cfg.key_namespace;

  ckpt::SaveReport rep;
  const auto stats_base = fabric.stats().counters();
  obs::ScopedSpan span("engine.save[" + fabric.fabric_name() + "]");

  std::map<int, int> shard_index;  // worker → index into `shards`
  {
    int idx = 0;
    for (int node : handled)  // ascending, matching fabric_sited_workers
      for (int l = 0; l < g; ++l) {
        const int w = node * g + l;
        shard_index[w] = idx++;
        ECC_CHECK_MSG(
            shards[static_cast<std::size_t>(shard_index[w])] != nullptr,
            "null shard for worker " << w);
      }
  }

  // ---- Step 1: decompose + serialize the tiny components -----------------
  std::map<int, Decomposition> decs;  // sited worker → decomposition
  for (const auto& [w, si] : shard_index) {
    const int site = members.site(w / g);
    Decomposition dec = decompose(*shards[static_cast<std::size_t>(si)]);
    fabric.store(site).put(meta_key(ns, version, w),
                           std::move(dec.metadata_blob));
    fabric.store(site).put(keys_key(ns, version, w),
                           std::move(dec.keys_blob));
    decs.emplace(w, std::move(dec));
  }

  // ---- Step 2: metadata + tensor keys to every node ----------------------
  for (int l = 0; l < g; ++l) {
    fabric.all_gather(
        act, [&](int node) { return meta_key(ns, version, node * g + l); });
    fabric.all_gather(
        act, [&](int node) { return keys_key(ns, version, node * g + l); });
  }
  // The gather only moved alive nodes' own workers; dead nodes' adopted
  // metadata goes out from the adopter explicitly.
  if (!members.full()) {
    for (int node = 0; node < n; ++node) {
      if (members.is_alive(node)) continue;
      for (int l = 0; l < g; ++l) {
        fabric.broadcast(act, members.site(node),
                         meta_key(ns, version, node * g + l));
        fabric.broadcast(act, members.site(node),
                         keys_key(ns, version, node * g + l));
      }
    }
  }
  rep.breakdown["step2_metadata_broadcast"] = since(t0);

  // Uniform packets-per-worker so reduction groups align (§III-C). Every
  // rank derives B from the full set of tensor-keys blobs it now holds, so
  // all ranks agree without another collective.
  const int home = home_node(fabric, act);
  std::size_t B = 1;
  for (int w = 0; w < W; ++w) {
    const auto tkeys = dnn::deserialize_tensor_keys(
        fabric.store(home).get(keys_key(ns, version, w)).span());
    std::size_t bytes = 0;
    for (const auto& tm : tkeys) bytes += tm.nbytes();
    B = std::max(B, packets_needed(bytes, P));
  }

  // Pack each sited worker's tensor bytes into B fixed-size packets.
  for (const auto& [w, dec] : decs) {
    const int site = members.site(w / g);
    std::vector<Buffer> packets = pack_packets(dec.tensor_data, P, B);
    for (std::size_t b = 0; b < B; ++b)
      fabric.store(site).put(local_key(ns, version, w, static_cast<int>(b)),
                             std::move(packets[b]));
  }
  rep.stall_time = since(t0);
  rep.breakdown["step1_snapshot"] = rep.stall_time;

  // ---- Incremental path (cfg.delta): patch the last version in place -----
  // When every site still holds a valid base cache of one common committed
  // version and the global dirty ratio is small enough, the stripe is not
  // re-encoded: each node clones its own chunk row of the base version to
  // the new version locally, only the dirty regions' XOR-deltas travel
  // (to the data node and the m parity nodes), the data row is XOR-patched
  // and each parity row folded with P' = P ⊕ G·Δ — bit-identical to the
  // full four-step protocol by code linearity. Any prerequisite failure on
  // any rank (first save, rolled-back base, shape change, pruned base,
  // degraded membership) falls through to the full path below.
  bool delta_used = false;
  const bool delta_wanted = cfg.delta.enabled && members.full();
  if (delta_wanted) {
    const std::size_t gran =
        std::max<std::size_t>(8, (cfg.delta.granularity + 7) / 8 * 8);
    std::map<int, std::vector<DirtyExtent>> local_extents;  // worker → dirty
    auto delta_state = [&](int node) {
      NodeFlag f;  // flag = usable common base version, 0 = no delta here
      cluster::Store& store = fabric.store(node);
      if (!store.contains(base_mark_key(ns))) return f;
      const Buffer& mark = store.get(base_mark_key(ns));
      if (mark.size() != 32) return f;
      const auto mv = static_cast<std::int64_t>(get_u64_le(mark.data()));
      if (mv <= 0 || mv >= version) return f;
      if (get_u64_le(mark.data() + 8) != B ||
          get_u64_le(mark.data() + 16) != P ||
          get_u64_le(mark.data() + 24) != static_cast<std::uint64_t>(g))
        return f;
      // The base rows being patched must still be committed on this node —
      // a torn delta save rolls its version keys back, which breaks exactly
      // this check and forces the safe full re-encode.
      const int row = plan.generator_row_of_node(node);
      if (!store.contains(commit_key(ns, mv)) ||
          !store.contains(row_key(ns, mv, row, 0, 0)))
        return f;
      std::uint64_t dirty = 0;
      for (int l = 0; l < g; ++l) {
        const int w = node * g + l;
        // Tensor shapes must be stable or the packet layout shifted.
        if (!store.contains(base_keys_key(ns, w))) return f;
        const Buffer& cached = store.get(base_keys_key(ns, w));
        const Buffer& fresh = store.get(keys_key(ns, version, w));
        if (cached.size() != fresh.size() ||
            std::memcmp(cached.data(), fresh.data(), fresh.size()) != 0)
          return f;
        std::vector<DirtyExtent> wext;
        for (int b = 0; b < static_cast<int>(B); ++b) {
          if (!store.contains(base_local_key(ns, w, b))) return f;
          const Buffer& base = store.get(base_local_key(ns, w, b));
          const Buffer& next = store.get(local_key(ns, version, w, b));
          if (base.size() != next.size()) return f;
          std::vector<DirtyExtent> pext =
              diff_packet(b, base.span(), next.span(), gran);
          wext.insert(wext.end(), pext.begin(), pext.end());
        }
        dirty += dirty_bytes(wext);
        local_extents[w] = std::move(wext);
      }
      f.flag = static_cast<std::uint64_t>(mv);
      f.workers = dirty;
      return f;
    };
    const std::vector<NodeFlag> dflags = exchange_flags(
        fabric, tmp_prefix(ns, version) + "delta/flag/", delta_state, act);
    std::uint64_t base_version = dflags[0].flag;
    std::uint64_t total_dirty = 0;
    for (int node = 0; node < n; ++node) {
      if (dflags[static_cast<std::size_t>(node)].flag != base_version)
        base_version = 0;  // disagreeing or missing base on some rank
      total_dirty += dflags[static_cast<std::size_t>(node)].workers;
    }
    const double dirty_ratio =
        static_cast<double>(total_dirty) /
        (static_cast<double>(W) * static_cast<double>(B) *
         static_cast<double>(P));
    if (base_version != 0 && dirty_ratio <= cfg.delta.max_dirty_ratio) {
      obs::ScopedSpan dspan("engine.save.delta", total_dirty);
      const auto bv = static_cast<std::int64_t>(base_version);
      fabric.stats().add("delta.save.count");
      fabric.stats().add("delta.dirty.bytes", total_dirty);

      // Every rank must walk the identical extent list: publish each sited
      // worker's manifest and all-gather them like the step-2 metadata.
      for (int node : act) {
        if (!fabric.drives(node)) continue;
        for (int l = 0; l < g; ++l) {
          const int w = node * g + l;
          fabric.store(node).put(delta_manifest_key(ns, version, w),
                                 serialize_extents(local_extents[w]));
        }
      }
      for (int l = 0; l < g; ++l) {
        fabric.all_gather(act, [&](int node) {
          return delta_manifest_key(ns, version, node * g + l);
        });
      }
      std::vector<std::vector<DirtyExtent>> all_extents(
          static_cast<std::size_t>(W));
      for (int w = 0; w < W; ++w)
        all_extents[static_cast<std::size_t>(w)] = deserialize_extents(
            fabric.store(home).get(delta_manifest_key(ns, version, w)).span());

      // Clone the base version's rows into the new version — a pure local
      // copy on every node; only deltas cross the wire.
      for (int node : driven) {
        const int row = plan.generator_row_of_node(node);
        cluster::Store& store = fabric.store(node);
        for (int j = 0; j < per_chunk; ++j)
          for (int b = 0; b < static_cast<int>(B); ++b)
            store.put(row_key(ns, version, row, j, b),
                      store.get(row_key(ns, bv, row, j, b)).clone());
      }

      std::uint64_t extent_count = 0;
      for (int w = 0; w < W; ++w) {
        const std::vector<DirtyExtent>& wext =
            all_extents[static_cast<std::size_t>(w)];
        if (wext.empty()) continue;
        extent_count += wext.size();
        const int c = plan.chunk_of_worker(w);
        const int j = w - c * per_chunk;
        const int src = w / g;  // full membership: the worker's own node

        // Δ = new ⊕ base per extent, staged at the source under tmp keys.
        if (fabric.drives(src)) {
          cluster::Store& store = fabric.store(src);
          for (const DirtyExtent& e : wext) {
            const Buffer& next =
                store.get(local_key(ns, version, w, static_cast<int>(e.packet)));
            const Buffer& base =
                store.get(base_local_key(ns, w, static_cast<int>(e.packet)));
            Buffer d(e.length, Buffer::Init::kUninitialized);
            std::memcpy(d.data(), next.data() + e.offset, e.length);
            xor_into(d.span(), base.span().subspan(e.offset, e.length));
            store.put(delta_patch_key(ns, version, w, static_cast<int>(e.packet),
                                      e.offset),
                      std::move(d));
          }
        }

        // One batched transfer per destination: the data node plus each
        // parity node (k+m distinct nodes, so no destination repeats).
        std::vector<int> dests;
        dests.push_back(plan.data_nodes[static_cast<std::size_t>(c)]);
        for (int r = 0; r < cfg.m; ++r)
          dests.push_back(plan.parity_nodes[static_cast<std::size_t>(r)]);
        for (int dst : dests) {
          if (dst == src) continue;
          std::vector<std::pair<std::string, std::string>> pairs;
          pairs.reserve(wext.size());
          for (const DirtyExtent& e : wext) {
            const std::string dk = delta_patch_key(
                ns, version, w, static_cast<int>(e.packet), e.offset);
            pairs.emplace_back(dk, dk);
          }
          fabric.send_buffers(src, dst, pairs);
        }

        // Patch in place: XOR on the data row, G·Δ fold on each parity row.
        const int dnode = plan.data_nodes[static_cast<std::size_t>(c)];
        if (fabric.drives(dnode)) {
          cluster::Store& store = fabric.store(dnode);
          for (const DirtyExtent& e : wext) {
            const std::string rk =
                row_key(ns, version, c, j, static_cast<int>(e.packet));
            Buffer pkt = store.take(rk);
            xor_into(pkt.span().subspan(e.offset, e.length),
                     store
                         .get(delta_patch_key(ns, version, w,
                                              static_cast<int>(e.packet),
                                              e.offset))
                         .span());
            store.put(rk, std::move(pkt));
          }
        }
        for (int r = 0; r < cfg.m; ++r) {
          const int pnode = plan.parity_nodes[static_cast<std::size_t>(r)];
          if (!fabric.drives(pnode)) continue;
          cluster::Store& store = fabric.store(pnode);
          for (const DirtyExtent& e : wext) {
            const std::string rk =
                row_key(ns, version, cfg.k + r, j, static_cast<int>(e.packet));
            Buffer pkt = store.take(rk);
            codec.update_row(cfg.k + r, c, e.offset,
                             store
                                 .get(delta_patch_key(ns, version, w,
                                                      static_cast<int>(e.packet),
                                                      e.offset))
                                 .span(),
                             pkt.span());
            store.put(rk, std::move(pkt));
          }
        }

        // Drop the Δ staging copies everywhere they landed.
        for (const DirtyExtent& e : wext) {
          const std::string dk = delta_patch_key(
              ns, version, w, static_cast<int>(e.packet), e.offset);
          if (fabric.drives(src)) fabric.store(src).erase(dk);
          for (int dst : dests)
            if (dst != src && fabric.drives(dst)) fabric.store(dst).erase(dk);
        }
      }
      fabric.stats().add("delta.extents.count", extent_count);
      for (int node : act) {
        if (!fabric.drives(node)) continue;
        for (int w = 0; w < W; ++w)
          fabric.store(node).erase(delta_manifest_key(ns, version, w));
      }
      rep.breakdown["delta_dirty_ratio"] = dirty_ratio;
      rep.breakdown["step3_delta_patch"] = since(t0);
      delta_used = true;
    }
  }
  if (cfg.delta.enabled && !delta_used) fabric.stats().add("delta.fallback.count");

  // ---- Step 3a: relocate data packets to their data nodes ----------------
  // A row homed on a dead rank is skipped entirely: the degraded stripe
  // keeps the n_alive ≥ k rows hosted by survivors (reduced redundancy —
  // any k of them still decode), rather than blocking the save.
  if (!delta_used) {
  for (int j = 0; j < per_chunk; ++j) {
    for (int b = 0; b < static_cast<int>(B); ++b) {
      for (int c = 0; c < cfg.k; ++c) {
        const int wsrc = c * per_chunk + j;
        const int src = members.site(wsrc / g);
        const int dst = plan.data_nodes[static_cast<std::size_t>(c)];
        if (!members.is_alive(dst)) continue;
        const std::string lk = local_key(ns, version, wsrc, b);
        const std::string rk = row_key(ns, version, c, j, b);
        if (src == dst) {
          if (fabric.drives(src))
            fabric.store(src).put(rk, fabric.store(src).get(lk).clone());
        } else {
          fabric.send_buffer(src, dst, lk, rk);
        }
      }
    }
  }

  // ---- Step 3b: parity = XOR all-reduce of per-participant partials ------
  // Each participant computes its GF partial product locally; the XOR
  // all-reduce folds them (GF addition is XOR, so this is bit-identical to
  // the simulator's serial accumulation); the node hosting the reduction
  // target forwards the finished packet to its parity node.
  for (int j = 0; j < per_chunk; ++j) {
    for (int b = 0; b < static_cast<int>(B); ++b) {
      for (int r = 0; r < cfg.m; ++r) {
        const auto& op =
            plan.reductions[static_cast<std::size_t>(j * cfg.m + r)];
        const std::string pkey = tmp_prefix(ns, version) + "partial/" +
                                 std::to_string(j) + "/" + std::to_string(b) +
                                 "/" + std::to_string(r);
        // Participants sited together (adoption can fold several dead
        // participants onto one survivor) pre-accumulate their GF partials
        // locally before the ring — XOR is commutative and associative, so
        // the grouping cannot change the reduced bytes. Under full
        // membership every participant is its own site and this is the
        // historical one-partial-per-node behaviour.
        std::vector<int> psites;  // deduped, first-appearance order
        std::map<int, Buffer> partials;  // site → local accumulation
        for (int c = 0; c < cfg.k; ++c) {
          const int pw = op.participants[static_cast<std::size_t>(c)];
          const int ps = members.site(pw / g);
          const bool seen =
              std::find(psites.begin(), psites.end(), ps) != psites.end();
          if (!seen) psites.push_back(ps);
          if (fabric.drives(ps)) {
            auto it = partials.find(ps);
            if (it == partials.end())
              it = partials.emplace(ps, Buffer(P, Buffer::Init::kUninitialized))
                       .first;
            codec.encode_partial(
                cfg.k + r, c,
                fabric.store(ps).get(local_key(ns, version, pw, b)).span(),
                it->second.span(), /*accumulate=*/seen);
          }
        }
        for (auto& [ps, part] : partials)
          fabric.store(ps).put(pkey, std::move(part));
        if (psites.size() > 1) fabric.ring_all_reduce_xor(psites, pkey);

        const int tsite = members.site(op.target_worker / g);
        if (members.is_alive(op.dest_node)) {
          const std::string rk = row_key(ns, version, cfg.k + r, j, b);
          if (tsite == op.dest_node) {
            if (fabric.drives(tsite))
              fabric.store(tsite).put(rk,
                                      fabric.store(tsite).get(pkey).clone());
          } else {
            fabric.send_buffer(tsite, op.dest_node, pkey, rk);
          }
        }
        for (int ps : psites)
          if (fabric.drives(ps)) fabric.store(ps).erase(pkey);
      }
    }
  }
  }  // if (!delta_used)

  // Retire the staging copies — into the base cache when incremental saves
  // are on (the next save diffs against them), dropped otherwise — then
  // publish checksums and the commit marker.
  if (delta_wanted) {
    for (int node : handled) {
      cluster::Store& store = fabric.store(node);
      // Crash-safe order: erase the marker first, re-put it only after
      // every cached byte belongs to the new version. A store observed
      // between the two reads as "no base" and re-encodes in full.
      store.erase(base_mark_key(ns));
      for (int l = 0; l < g; ++l) {
        const int w = node * g + l;
        for (int b = 0; b < static_cast<int>(B); ++b)
          store.put(base_local_key(ns, w, b),
                    store.take(local_key(ns, version, w, b)));
        store.put(base_keys_key(ns, w),
                  store.get(keys_key(ns, version, w)).clone());
      }
      Buffer mark(32, Buffer::Init::kZeroed);
      put_u64_le(mark.data(), static_cast<std::uint64_t>(version));
      put_u64_le(mark.data() + 8, B);
      put_u64_le(mark.data() + 16, P);
      put_u64_le(mark.data() + 24, static_cast<std::uint64_t>(g));
      store.put(base_mark_key(ns), std::move(mark));
    }
  } else {
    for (const auto& [w, dec] : decs) {
      (void)dec;
      const int site = members.site(w / g);
      for (int b = 0; b < static_cast<int>(B); ++b)
        fabric.store(site).erase(local_key(ns, version, w, b));
    }
  }
  for (int node : driven) {
    if (!members.is_alive(node)) continue;
    if (cfg.verify_integrity) {
      const int row = plan.generator_row_of_node(node);
      Buffer sums(static_cast<std::size_t>(per_chunk) * B * 8,
                  Buffer::Init::kUninitialized);
      for (int j = 0; j < per_chunk; ++j) {
        for (int b = 0; b < static_cast<int>(B); ++b) {
          const std::uint64_t crc =
              crc64(fabric.store(node)
                        .get(row_key(ns, version, row, j, b))
                        .span());
          std::memcpy(sums.data() + (static_cast<std::size_t>(j) * B +
                                     static_cast<std::size_t>(b)) *
                                        8,
                      &crc, 8);
        }
      }
      fabric.store(node).put(sums_key(ns, version), std::move(sums));
    }
    fabric.store(node).put(commit_key(ns, version),
                           Buffer::copy_of(as_bytes_of(version)));
  }
  if (!delta_used) rep.breakdown["step3_encode_pipeline"] = since(t0);

  // ---- Step 4: low-frequency remote flush --------------------------------
  if (cfg.flush_to_remote) {
    for (int row = 0; row < cfg.k + cfg.m; ++row) {
      const int node =
          row < cfg.k
              ? plan.data_nodes[static_cast<std::size_t>(row)]
              : plan.parity_nodes[static_cast<std::size_t>(row - cfg.k)];
      if (!members.is_alive(node)) continue;  // row was not produced
      for (int j = 0; j < per_chunk; ++j)
        for (int b = 0; b < static_cast<int>(B); ++b) {
          const std::string rk = row_key(ns, version, row, j, b);
          fabric.remote_write(node, rk, rk);
        }
    }
    for (int w = 0; w < W; ++w) {
      const int site = members.site(w / g);
      fabric.remote_write(site, meta_key(ns, version, w),
                          meta_key(ns, version, w));
      fabric.remote_write(site, keys_key(ns, version, w),
                          keys_key(ns, version, w));
    }
    // Every chunk must be durable before the commit marker appears: a crash
    // between barrier and commit leaves an uncommitted (invisible) flush,
    // never a committed torn one.
    fabric.barrier(act);
    fabric.remote_write(members.site(0), commit_key(ns, version),
                        commit_key(ns, version));
    rep.breakdown["step4_remote_flush"] = since(t0);
  }

  fabric.barrier(act);
  rep.total_time = since(t0);
  rep.stats = obs::StatsRegistry::delta(fabric.stats().counters(), stats_base);
  fill_traffic(rep.stats, &rep.network_bytes, &rep.remote_bytes);
  return rep;
}

// ---------------------------------------------------------------------------
// load
// ---------------------------------------------------------------------------

ckpt::LoadReport fabric_load(cluster::Fabric& fabric, const ECCheckConfig& cfg,
                             std::int64_t version,
                             std::vector<dnn::StateDict>& out,
                             const Membership& members) {
  const auto t0 = Clock::now();
  const int n = fabric.world_size();
  ECC_CHECK_MSG(cfg.k + cfg.m == n, "k+m must equal the fabric world size");
  members.check(n);
  const std::vector<int> driven = driven_nodes(fabric);
  const std::string& ns = cfg.key_namespace;
  const std::vector<int> act = active_nodes(n, members);

  ckpt::LoadReport rep;
  const auto stats_base = fabric.stats().counters();
  obs::ScopedSpan span("engine.load[" + fabric.fabric_name() + "]");
  auto finalize = [&]() {
    rep.total_time = since(t0);
    rep.stats =
        obs::StatsRegistry::delta(fabric.stats().counters(), stats_base);
  };

  // The placement (and with it each node's chunk row) depends on the worker
  // count W, which a freshly replaced rank does not know — so roles are
  // derived lazily: first from each node's own stored metadata extent, then
  // from the fabric-wide agreed W.
  auto role_plan = [&](int gpus) {
    PlacementConfig pc;
    pc.num_nodes = n;
    pc.gpus_per_node = gpus;
    pc.k = cfg.k;
    pc.m = cfg.m;
    return plan_placement(pc);
  };
  const ec::CrsCodec codec(cfg.k, cfg.m, cfg.gf_width, cfg.kernel);
  const std::size_t P = cfg.packet_size;

  // ---- round 1: every rank reports chunk intactness + metadata extent ----
  // flag 0 = nothing usable, 1 = chunk row intact (commit + packets + CRC
  // scrub), each paired with the number of per-worker metadata blobs held
  // (the step-2 broadcast makes that W on any honest survivor).
  auto local_state = [&](int node) {
    NodeFlag f;
    cluster::Store& store = fabric.store(node);
    f.workers = store.keys_with_prefix(ns + "ec/" + std::to_string(version) +
                                       "/meta/")
                    .size();
    // A node whose metadata extent is not a valid world shape cannot even
    // name its own chunk row — treat it as lost.
    if (f.workers == 0 ||
        f.workers % static_cast<std::uint64_t>(n) != 0 ||
        f.workers % static_cast<std::uint64_t>(cfg.k) != 0) {
      f.flag = 0;
      return f;
    }
    const int row = role_plan(static_cast<int>(f.workers) / n)
                        .generator_row_of_node(node);
    bool intact = store.contains(commit_key(ns, version)) &&
                  store.contains(row_key(ns, version, row, 0, 0));
    if (intact && cfg.verify_integrity) {
      intact = store.contains(sums_key(ns, version));
      if (intact) {
        const int pch = static_cast<int>(f.workers) / cfg.k;
        const Buffer& sums = store.get(sums_key(ns, version));
        const std::size_t B_row =
            sums.size() / 8 / static_cast<std::size_t>(pch);
        for (int j = 0; intact && j < pch; ++j) {
          for (std::size_t b = 0; intact && b < B_row; ++b) {
            const std::string rk =
                row_key(ns, version, row, j, static_cast<int>(b));
            if (!store.contains(rk)) {
              intact = false;
              break;
            }
            std::uint64_t want;
            std::memcpy(&want,
                        sums.data() +
                            (static_cast<std::size_t>(j) * B_row + b) * 8,
                        8);
            intact = crc64(store.get(rk).span()) == want;
          }
        }
      }
    }
    f.flag = intact ? 1 : 0;
    return f;
  };
  std::vector<NodeFlag> flags = exchange_flags(
      fabric, tmp_prefix(ns, version) + "load/flag1/", local_state, act);

  std::uint64_t W64 = 0;
  for (const NodeFlag& f : flags) W64 = std::max(W64, f.workers);
  int survivors = 0;
  for (const NodeFlag& f : flags) survivors += f.flag >= 1 ? 1 : 0;

  // ---- catastrophic path: fewer than k chunks left -----------------------
  int remote_rescued_rows = 0;
  if (survivors < cfg.k && !members.full()) {
    // Degraded membership: the dead ranks cannot be asked to rescue
    // anything, and the remote-rescue round below assumes full
    // participation — fail precisely instead.
    rep.success = false;
    rep.detail = "only " + std::to_string(survivors) + " chunks survive on " +
                 std::to_string(members.alive_count(n)) +
                 " alive ranks, need k=" + std::to_string(cfg.k);
    finalize();
    return rep;
  }
  if (survivors < cfg.k) {
    const int self = driven.front();
    const bool remote_ok =
        cfg.remote_fallback &&
        fabric.remote_contains(self, commit_key(ns, version)) &&
        fabric.remote_contains(self, row_key(ns, version, 0, 0, 0));
    if (!remote_ok) {
      rep.success = false;
      rep.detail = "only " + std::to_string(survivors) +
                   " chunks survive, need k=" + std::to_string(cfg.k) +
                   " and no remote copy exists";
      finalize();
      return rep;
    }
    if (W64 == 0) {
      // Even the metadata is gone from every host — count workers from the
      // remote flush (each rank sees the same shared store).
      W64 = fabric
                .remote_list(self, ns + "ec/" + std::to_string(version) +
                                       "/meta/")
                .size();
      if (W64 == 0 || W64 % static_cast<std::uint64_t>(n) != 0 ||
          W64 % static_cast<std::uint64_t>(cfg.k) != 0) {
        rep.success = false;
        rep.detail = "no usable metadata for version " +
                     std::to_string(version) + " on hosts or remote";
        finalize();
        return rep;
      }
    }
    const int pch = static_cast<int>(W64) / cfg.k;
    const Placement rplan = role_plan(static_cast<int>(W64) / n);
    std::size_t B_remote = 0;
    while (fabric.remote_contains(
        self, row_key(ns, version, 0, 0, static_cast<int>(B_remote))))
      ++B_remote;
    for (int node = 0; node < n; ++node) {
      if (!fabric.drives(node)) continue;
      if (flags[static_cast<std::size_t>(node)].flag >= 1) continue;
      const int row = rplan.generator_row_of_node(node);
      for (int j = 0; j < pch; ++j)
        for (int b = 0; b < static_cast<int>(B_remote); ++b) {
          const std::string rk = row_key(ns, version, row, j, b);
          fabric.remote_read(node, rk, rk);
        }
      // The step-2 invariant (every node holds every worker's metadata)
      // comes back from the remote flush too.
      for (int w = 0; w < static_cast<int>(W64); ++w) {
        if (!fabric.store(node).contains(meta_key(ns, version, w))) {
          fabric.remote_read(node, meta_key(ns, version, w),
                             meta_key(ns, version, w));
          fabric.remote_read(node, keys_key(ns, version, w),
                             keys_key(ns, version, w));
        }
      }
    }
    flags = exchange_flags(fabric, tmp_prefix(ns, version) + "load/flag2/",
                           [&](int node) {
                             NodeFlag f = flags[static_cast<std::size_t>(node)];
                             if (f.flag == 0) f.flag = 2;
                             f.workers = W64;
                             return f;
                           },
                           act);
    // Count rescued rows from the agreed flags so every rank reports the
    // same detail, including survivors that rescued nothing themselves.
    for (const NodeFlag& f : flags) remote_rescued_rows += f.flag == 2;
    survivors = n;
  }

  ECC_CHECK_MSG(W64 > 0 && W64 % static_cast<std::uint64_t>(n) == 0 &&
                    W64 % static_cast<std::uint64_t>(cfg.k) == 0,
                "stored worker count " << W64
                                       << " inconsistent with fabric shape");
  const int W = static_cast<int>(W64);
  const int g = W / n;
  const Placement plan = role_plan(g);
  const int per_chunk = plan.workers_per_chunk();
  auto node_of_row = [&](int row) {
    return row < cfg.k
               ? plan.data_nodes[static_cast<std::size_t>(row)]
               : plan.parity_nodes[static_cast<std::size_t>(row - cfg.k)];
  };

  // ---- metadata refresh: every node ends up with every worker's blobs ----
  int meta_holder = -1;
  for (int node : act) {
    if (flags[static_cast<std::size_t>(node)].workers ==
        static_cast<std::uint64_t>(W)) {
      meta_holder = node;
      break;
    }
  }
  if (meta_holder < 0) {
    rep.success = false;
    rep.detail = "no surviving metadata copy for version " +
                 std::to_string(version) + " (pruned or never saved)";
    finalize();
    return rep;
  }
  for (int w = 0; w < W; ++w) {
    fabric.broadcast(act, meta_holder, meta_key(ns, version, w));
    fabric.broadcast(act, meta_holder, keys_key(ns, version, w));
  }

  // Uniform B, re-derived from the tensor-keys blobs like the simulator.
  const int home = home_node(fabric, act);
  std::size_t B = 1;
  std::vector<std::vector<dnn::TensorMeta>> tkeys(
      static_cast<std::size_t>(W));
  for (int w = 0; w < W; ++w) {
    tkeys[static_cast<std::size_t>(w)] = dnn::deserialize_tensor_keys(
        fabric.store(home).get(keys_key(ns, version, w)).span());
    std::size_t bytes = 0;
    for (const auto& tm : tkeys[static_cast<std::size_t>(w)])
      bytes += tm.nbytes();
    B = std::max(B, packets_needed(bytes, P));
  }

  // ---- reconstruct lost rows from any k survivors ------------------------
  // A dead rank's row counts as missing even if its store still held it at
  // death: nobody can read it. Rows homed on dead ranks are reconstructed
  // *onto the adopter's store* for the duration of the load (workflow B),
  // then dropped again at the end.
  std::vector<int> survivor_rows, missing_rows;
  for (int node = 0; node < n; ++node) {
    const int row = plan.generator_row_of_node(node);
    const bool ok = members.is_alive(node) &&
                    flags[static_cast<std::size_t>(node)].flag >= 1;
    (ok ? survivor_rows : missing_rows).push_back(row);
  }
  std::sort(survivor_rows.begin(), survivor_rows.end());
  std::sort(missing_rows.begin(), missing_rows.end());
  std::vector<int> missing_data, missing_parity;
  for (int r : missing_rows)
    (r < cfg.k ? missing_data : missing_parity).push_back(r);
  const bool data_lost = !missing_data.empty();

  // Distributed SPMD reconstruction: survivors stream their row packets to
  // each target node, which applies the reconstruction matrix row — the
  // same accumulate order as the simulator, so reconstructed bytes match.
  auto reconstruct = [&](const std::vector<int>& basis,
                         const std::vector<int>& targets) {
    if (targets.empty()) return;
    const ec::GfMatrix T = codec.reconstruction_matrix(basis, targets);
    auto rec_key = [&](int s, int j, int b) {
      return tmp_prefix(ns, version) + "load/rec/" + std::to_string(s) + "/" +
             std::to_string(j) + "/" + std::to_string(b);
    };
    for (int j = 0; j < per_chunk; ++j) {
      for (int b = 0; b < static_cast<int>(B); ++b) {
        for (std::size_t ti = 0; ti < targets.size(); ++ti) {
          const int target_row = targets[ti];
          // Rows homed on a dead rank materialize on the adopter instead.
          const int tsite = members.site(node_of_row(target_row));
          for (int s = 0; s < cfg.k; ++s) {
            const int srow = basis[static_cast<std::size_t>(s)];
            const int snode = node_of_row(srow);  // basis rows live on alive nodes
            if (snode != tsite)
              fabric.send_buffer(snode, tsite,
                                 row_key(ns, version, srow, j, b),
                                 rec_key(s, j, b));
          }
          if (fabric.drives(tsite)) {
            cluster::Store& store = fabric.store(tsite);
            Buffer acc(P, Buffer::Init::kUninitialized);
            for (int s = 0; s < cfg.k; ++s) {
              const int srow = basis[static_cast<std::size_t>(s)];
              const int snode = node_of_row(srow);
              const Buffer& pkt =
                  snode == tsite
                      ? store.get(row_key(ns, version, srow, j, b))
                      : store.get(rec_key(s, j, b));
              codec.mul_packet(T.at(static_cast<int>(ti), s), pkt.span(),
                               acc.span(), /*accumulate=*/s != 0);
            }
            store.put(row_key(ns, version, target_row, j, b), std::move(acc));
            for (int s = 0; s < cfg.k; ++s) {
              if (node_of_row(basis[static_cast<std::size_t>(s)]) != tsite)
                store.erase(rec_key(s, j, b));
            }
          }
        }
      }
    }
  };

  std::vector<int> basis(survivor_rows.begin(),
                         survivor_rows.begin() + cfg.k);
  reconstruct(basis, missing_data);

  // ---- refill every worker's own packets and rebuild state_dicts ---------
  // Sited, not driven: during a degraded window the adopter also refills
  // the dead ranks' workers (their packets exist — data rows are complete
  // after reconstruction), so `load` keeps serving every worker's bytes.
  std::map<int, int> out_index;  // sited worker → index into `out`
  {
    int idx = 0;
    for (int w = 0; w < W; ++w)
      if (fabric.drives(members.site(w / g))) out_index[w] = idx++;
  }
  out.clear();
  out.resize(out_index.size());
  auto refill_key = [&](int w, int b) {
    return tmp_prefix(ns, version) + "load/refill/" + std::to_string(w) +
           "/" + std::to_string(b);
  };
  for (int w = 0; w < W; ++w) {
    const int wsite = members.site(w / g);
    const int c = plan.chunk_of_worker(w);
    const int src = plan.data_nodes[static_cast<std::size_t>(c)];
    const int ssite = members.site(src);
    const int j = w - c * per_chunk;
    if (ssite != wsite) {
      // One (src, dst) batch per worker: a pipelining transport keeps all
      // B packet frames in flight and reconciles their acks once, instead
      // of paying a round trip per packet.
      std::vector<std::pair<std::string, std::string>> batch;
      batch.reserve(B);
      for (int b = 0; b < static_cast<int>(B); ++b)
        batch.emplace_back(row_key(ns, version, c, j, b), refill_key(w, b));
      fabric.send_buffers(ssite, wsite, batch);
    }
    if (!fabric.drives(wsite)) continue;
    cluster::Store& store = fabric.store(wsite);
    std::vector<ByteSpan> packet_views;
    for (int b = 0; b < static_cast<int>(B); ++b)
      packet_views.push_back(
          ssite == wsite ? store.get(row_key(ns, version, c, j, b)).span()
                         : store.get(refill_key(w, b)).span());
    dnn::StateDict skel = dnn::make_skeleton(
        dnn::deserialize_metadata(store.get(meta_key(ns, version, w)).span()),
        tkeys[static_cast<std::size_t>(w)]);
    unpack_packets(packet_views, skel);
    out[static_cast<std::size_t>(out_index.at(w))] = std::move(skel);
    if (ssite != wsite)
      for (int b = 0; b < static_cast<int>(B); ++b)
        store.erase(refill_key(w, b));
  }
  rep.resume_time = since(t0);

  // Restore redundancy: lost parity rows are re-encoded from the
  // now-complete set of data rows — but only onto alive hosts; a dead
  // rank's parity row has nowhere to live until the rank is replaced.
  {
    std::vector<int> data_basis;
    for (int c = 0; c < cfg.k; ++c) data_basis.push_back(c);
    std::vector<int> parity_targets;
    for (int row : missing_parity)
      if (members.is_alive(node_of_row(row))) parity_targets.push_back(row);
    reconstruct(data_basis, parity_targets);
  }

  // Replaced/rescued nodes now hold their chunk and metadata: refresh their
  // checksums and commit marker so future recoveries see them as survivors.
  for (int node : driven) {
    if (!members.is_alive(node)) continue;
    cluster::Store& store = fabric.store(node);
    if (store.contains(commit_key(ns, version))) continue;
    if (cfg.verify_integrity) {
      const int row = plan.generator_row_of_node(node);
      Buffer sums(static_cast<std::size_t>(per_chunk) * B * 8,
                  Buffer::Init::kUninitialized);
      for (int j = 0; j < per_chunk; ++j) {
        for (int b = 0; b < static_cast<int>(B); ++b) {
          const std::uint64_t crc =
              crc64(store.get(row_key(ns, version, row, j, b)).span());
          std::memcpy(sums.data() + (static_cast<std::size_t>(j) * B +
                                     static_cast<std::size_t>(b)) *
                                        8,
                      &crc, 8);
        }
      }
      store.put(sums_key(ns, version), std::move(sums));
    }
    store.put(commit_key(ns, version), Buffer::copy_of(as_bytes_of(version)));
  }

  // Drop the adopted rows again: while the rank is dead its row has no
  // committed host, and leaving a copy on the adopter would let a later
  // intactness scan double-count it.
  if (!members.full()) {
    for (int node = 0; node < n; ++node) {
      if (members.is_alive(node)) continue;
      const int site = members.site(node);
      if (!fabric.drives(site)) continue;
      const int row = plan.generator_row_of_node(node);
      for (int j = 0; j < per_chunk; ++j)
        for (int b = 0; b < static_cast<int>(B); ++b)
          fabric.store(site).erase(row_key(ns, version, row, j, b));
    }
  }

  fabric.barrier(act);
  rep.success = true;
  if (remote_rescued_rows > 0)
    rep.detail = "remote fallback (refetched " +
                 std::to_string(remote_rescued_rows) +
                 " rows from remote storage)";
  else if (data_lost)
    rep.detail = "workflow B (decoded " + std::to_string(missing_rows.size()) +
                 " rows)";
  else
    rep.detail = "workflow A (all data nodes survived)";
  if (!members.full())
    rep.detail += "; degraded (" +
                  std::to_string(n - members.alive_count(n)) + " dead)";
  finalize();
  return rep;
}

// ---------------------------------------------------------------------------
// prune / version discovery / recover
// ---------------------------------------------------------------------------

void fabric_prune(cluster::Fabric& fabric, const std::string& key_namespace,
                  std::int64_t oldest_to_keep, const Membership& members) {
  const std::vector<int> driven = driven_nodes(fabric);
  int first_alive = -1;
  for (int node : driven)
    if (members.is_alive(node)) {
      first_alive = node;
      break;
    }
  for (int node : driven) {
    if (!members.is_alive(node)) continue;
    // Exactly one global rank prunes the shared remote store: the site of
    // rank 0 (rank 0 itself under full membership).
    const bool prunes_remote = node == first_alive && node == members.site(0);
    for (std::int64_t v = oldest_to_keep - 1; v >= 1; --v) {
      const std::string prefix = version_prefix(key_namespace, v);
      bool any = false;
      for (const auto& key : fabric.store(node).keys_with_prefix(prefix)) {
        fabric.store(node).erase(key);
        any = true;
      }
      if (prunes_remote) {
        for (const auto& key : fabric.remote_list(node, prefix)) {
          fabric.remote_erase(node, key);
          any = true;
        }
      }
      if (!any) break;  // older versions were already pruned
    }
  }
}

std::int64_t fabric_newest_version(cluster::Fabric& fabric,
                                   const ECCheckConfig& cfg,
                                   const Membership& members) {
  const std::string& ns = cfg.key_namespace;
  members.check(fabric.world_size());
  std::vector<NodeFlag> flags = exchange_flags(
      fabric, ns + "tmp/vers/",
      [&](int node) {
        NodeFlag f;
        std::int64_t best = 0;
        for (const auto& key :
             fabric.store(node).keys_with_prefix(ns + "ec/"))
          best = std::max(best, commit_version_of(key, ns));
        if (cfg.remote_fallback)
          for (const auto& key : fabric.remote_list(node, ns + "ec/"))
            best = std::max(best, commit_version_of(key, ns));
        f.flag = static_cast<std::uint64_t>(best);
        return f;
      },
      active_nodes(fabric.world_size(), members));
  std::uint64_t newest = 0;
  for (const NodeFlag& f : flags) newest = std::max(newest, f.flag);
  return static_cast<std::int64_t>(newest);
}

FabricRecoverResult fabric_recover(cluster::Fabric& fabric,
                                   const ECCheckConfig& cfg,
                                   int retain_versions,
                                   std::vector<dnn::StateDict>& out,
                                   const Membership& members) {
  FabricRecoverResult result;
  const std::int64_t newest = fabric_newest_version(fabric, cfg, members);
  if (newest < 1) {
    result.version = 0;
    result.report.detail = "no committed checkpoint version exists";
    return result;
  }
  const std::int64_t oldest =
      retain_versions > 0
          ? std::max<std::int64_t>(1, newest - retain_versions + 1)
          : 1;
  for (std::int64_t v = newest; v >= oldest; --v) {
    result.report = fabric_load(fabric, cfg, v, out, members);
    if (result.report.success) {
      result.version = v;
      return result;
    }
  }
  result.version = 0;
  result.report.detail = "no retained version (" + std::to_string(oldest) +
                         ".." + std::to_string(newest) +
                         ") is recoverable; last error: " +
                         result.report.detail;
  return result;
}

}  // namespace eccheck::core
