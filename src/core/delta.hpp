// Dirty-region tracking for incremental checkpoints (ECCheckConfig::delta).
//
// A delta save diffs each worker's freshly packed packets against the
// cached packets of the last committed version at a fixed chunk
// granularity, merges adjacent dirty chunks into extents, and ships only
// those extents' XOR-deltas over the fabric. Extents are exchanged between
// ranks as tiny serialized manifests (all ranks must walk the identical
// extent list SPMD-style), so the wire format here is part of the save
// protocol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace eccheck::core {

/// One maximal dirty byte range of one packed packet.
struct DirtyExtent {
  std::uint32_t packet = 0;   ///< packet index b within the worker
  std::uint64_t offset = 0;   ///< first dirty byte within the packet
  std::uint64_t length = 0;   ///< dirty bytes (> 0)

  friend bool operator==(const DirtyExtent&, const DirtyExtent&) = default;
};

/// Compare `next` against `base` chunk-by-chunk (`granularity` bytes, the
/// final chunk may be short) and return the merged dirty extents of packet
/// `packet_index`. Spans must be the same length. Granularity must be > 0.
std::vector<DirtyExtent> diff_packet(int packet_index, ByteSpan base,
                                     ByteSpan next, std::size_t granularity);

/// Total dirty bytes of an extent list.
std::uint64_t dirty_bytes(const std::vector<DirtyExtent>& extents);

/// Manifest wire format: u64 count, then (u32 packet, u64 offset,
/// u64 length) per extent, little-endian, extents in (packet, offset) order.
Buffer serialize_extents(const std::vector<DirtyExtent>& extents);
std::vector<DirtyExtent> deserialize_extents(ByteSpan blob);

}  // namespace eccheck::core
