// Serialization-free encoding/decoding protocol (paper §III-C, Fig. 8).
//
// Instead of pickling the whole state_dict, ECCheck decomposes it into
//   (1) non-tensor key-value pairs   — serialized, broadcast (tiny);
//   (2) tensor keys (names/shapes)   — serialized, broadcast (tiny);
//   (3) tensor data                  — raw contiguous bytes (≈ all of it).
// The tensor bytes are packed back-to-back into fixed-size *packets*
// (the paper's 64 MB data buffers); packets are the unit the erasure code
// and the reduction groups operate on. Every worker is padded to the same
// packet count so packet t of chunk a aligns with packet t of chunk b.
//
// Reassembly is the inverse: rebuild the state_dict skeleton from the two
// tiny components, then copy packet bytes back into the tensors in place.
#pragma once

#include <vector>

#include "dnn/serializer.hpp"
#include "dnn/state_dict.hpp"

namespace eccheck::core {

/// The three components of one worker's state_dict.
struct Decomposition {
  Buffer metadata_blob;              ///< serialized non-tensor KV pairs
  Buffer keys_blob;                  ///< serialized tensor keys
  std::vector<ByteSpan> tensor_data; ///< views into the live state_dict
  std::size_t tensor_bytes = 0;
};

Decomposition decompose(const dnn::StateDict& sd);

/// Packets needed to hold `payload_bytes` at `packet_size` granularity.
std::size_t packets_needed(std::size_t payload_bytes, std::size_t packet_size);

/// Concatenate tensor byte spans into `num_packets` zero-padded packets of
/// `packet_size` bytes each (num_packets ≥ packets_needed(total)).
std::vector<Buffer> pack_packets(const std::vector<ByteSpan>& tensor_data,
                                 std::size_t packet_size,
                                 std::size_t num_packets);

/// Inverse of pack_packets: copy packet bytes back into the skeleton's
/// tensors (sizes come from the tensor keys component).
void unpack_packets(const std::vector<ByteSpan>& packets,
                    dnn::StateDict& skeleton);

}  // namespace eccheck::core
