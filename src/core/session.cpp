#include "core/session.hpp"

#include "cluster/fabric.hpp"
#include "core/engine_keys.hpp"
#include "core/fabric_engine.hpp"
#include "obs/tracer.hpp"

namespace eccheck::core {

Session Session::initialize(cluster::VirtualCluster& cluster,
                            const dnn::ModelSpec& model,
                            const dnn::ParallelismSpec& parallelism,
                            SessionConfig cfg) {
  ECCheckEngine engine(cfg.ec);
  Placement placement = engine.plan_for(cluster);

  trainsim::TrainProfile profile;
  if (cfg.profile_iterations > 0) {
    auto workload = trainsim::estimate_workload(model, parallelism);
    profile = trainsim::simulate_iteration(workload,
                                           parallelism.pipeline_parallel,
                                           cluster.config().nic_bandwidth,
                                           parallelism.data_parallel);
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      int stage = std::min(n, parallelism.pipeline_parallel - 1);
      cluster.set_nic_calendar(n, profile.tiled(stage,
                                                cfg.profile_iterations));
    }
  }
  return Session(cluster, std::move(engine), std::move(placement),
                 std::move(profile), cfg);
}

ckpt::SaveReport Session::save(const std::vector<dnn::StateDict>& shards) {
  std::size_t shard_bytes = 0;
  for (const auto& sd : shards) shard_bytes += sd.tensor_bytes();
  obs::ScopedSpan span("session.save", shard_bytes);
  const std::int64_t version = next_version_++;
  ckpt::SaveReport rep = engine_.save(*cluster_, shards, version);
  if (cfg_.retain_versions > 0)
    prune(version - cfg_.retain_versions + 1);
  return rep;
}

void Session::prune(std::int64_t oldest_to_keep) {
  const std::string& ns = engine_.config().key_namespace;
  for (std::int64_t v = oldest_to_keep - 1; v >= 1; --v) {
    const std::string prefix = ns + "ec/" + std::to_string(v) + "/";
    bool any = false;
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      if (!cluster_->alive(n)) continue;
      for (const auto& key : cluster_->host(n).keys_with_prefix(prefix)) {
        cluster_->host(n).erase(key);
        any = true;
      }
    }
    // Remote-flushed copies live under the same namespace; without this the
    // persistent store accumulates every retired version forever.
    for (const auto& key : cluster_->remote().keys_with_prefix(prefix)) {
      cluster_->remote().erase(key);
      any = true;
    }
    if (!any) break;  // older versions were already pruned
  }
}

Session::RecoverResult Session::load(std::vector<dnn::StateDict>& out) {
  obs::ScopedSpan span("session.load");
  RecoverResult result;
  const std::int64_t newest = latest_version();
  if (newest < 1) {
    result.version = 0;
    result.report.detail =
        "no checkpoint has been saved in this session yet (latest version 0)";
    return result;
  }
  const std::int64_t oldest =
      cfg_.retain_versions > 0
          ? std::max<std::int64_t>(1, newest - cfg_.retain_versions + 1)
          : 1;
  for (std::int64_t v = newest; v >= oldest; --v) {
    result.report = engine_.load(*cluster_, v, out);
    if (result.report.success) {
      result.version = v;
      return result;
    }
  }
  result.version = 0;
  result.report.detail = "no retained version (" + std::to_string(oldest) +
                         ".." + std::to_string(newest) +
                         ") is recoverable; last error: " + result.report.detail;
  return result;
}

// ---------------------------------------------------------------------------
// FabricSession
// ---------------------------------------------------------------------------

FabricSession::FabricSession(cluster::Fabric& fabric, ECCheckConfig cfg,
                             int gpus_per_node, int retain_versions)
    : fabric_(&fabric), cfg_(std::move(cfg)), gpus_per_node_(gpus_per_node),
      retain_versions_(retain_versions) {
  ECC_CHECK(gpus_per_node_ >= 1);
  ECC_CHECK_MSG(cfg_.k + cfg_.m == fabric.world_size(),
                "k+m must equal the fabric world size");
}

std::vector<int> FabricSession::driven_workers() const {
  return fabric_sited_workers(*fabric_, gpus_per_node_, members_);
}

void FabricSession::rollback(std::int64_t version) {
  const std::string& ns = cfg_.key_namespace;
  for (int node = 0; node < fabric_->world_size(); ++node) {
    if (!fabric_->drives(node) || !members_.is_alive(node)) continue;
    cluster::Store& store = fabric_->store(node);
    for (const auto& prefix : {keys::version_prefix(ns, version),
                               keys::tmp_prefix(ns, version)})
      for (const auto& key : store.keys_with_prefix(prefix)) store.erase(key);
  }
}

ckpt::SaveReport FabricSession::save(
    const std::vector<const dnn::StateDict*>& shards) {
  obs::ScopedSpan span("session.save[" + fabric_->fabric_name() + "]");
  // Collective version agreement: a rank that just rejoined has no local
  // version history, so the next version is derived from the fabric-wide
  // newest commit marker, which every rank sees identically. A torn
  // (rolled-back) version number gets reused by the retry — harmless, since
  // the rollback scrubbed it everywhere it existed.
  const std::int64_t version = fabric_newest_version(*fabric_, cfg_, members_) + 1;
  next_version_ = version + 1;
  ckpt::SaveReport rep;
  try {
    rep = fabric_save(*fabric_, cfg_, shards, version, members_);
  } catch (const CheckFailure&) {
    // Torn save: a peer died (or an invariant broke) mid-protocol. Scrub
    // every key of the attempted version from the stores this process
    // drives — partial per-rank state must never look committed — then let
    // the caller run failure handling. The version number stays consumed so
    // a retry after peer replacement picks a fresh one on every rank.
    rollback(version);
    throw;
  }
  if (retain_versions_ > 0)
    fabric_prune(*fabric_, cfg_.key_namespace, version - retain_versions_ + 1,
                 members_);
  return rep;
}

FabricSession::RecoverResult FabricSession::load(
    std::vector<dnn::StateDict>& out) {
  obs::ScopedSpan span("session.load[" + fabric_->fabric_name() + "]");
  FabricRecoverResult r =
      fabric_recover(*fabric_, cfg_, retain_versions_, out, members_);
  RecoverResult result;
  result.report = std::move(r.report);
  result.version = r.version;
  // Rejoining ranks discover the version history from the fabric, not from
  // local state — keep saving above whatever was recovered.
  next_version_ = std::max(next_version_, result.version + 1);
  return result;
}

}  // namespace eccheck::core
