// The ECCheck save/load/prune protocol expressed against cluster::Fabric —
// the SPMD form of core/eccheck_engine.cpp that runs unchanged over the
// in-memory VirtualFabric and over real sockets (net::SocketTransport),
// one process per rank.
//
// Every function here is a *collective*: all ranks of the fabric call it
// with the same arguments, each executes the sides of the data movement it
// drives, and all return consistent results. On VirtualFabric (one process
// drives all ranks) a single call performs the whole protocol.
//
// Bit-exactness contract: after fabric_save, every node's volatile store
// and the remote store hold byte-identical keys/values to a
// core::ECCheckEngine::save() of the same shards on a VirtualCluster of the
// same shape, and fabric_load reproduces the simulator's load semantics
// (workflow A / workflow B / remote fallback) with byte-identical
// reconstructed shards and post-load stores. GF addition is XOR, so parity
// produced by XOR-reducing per-participant partials equals the simulator's
// serial accumulation; everything else is relocation of identical bytes.
// The differential suite (tests/test_engine_fabric.cpp) enforces this.
//
// Failure model: a dead / unreachable peer surfaces as CheckFailure from
// the fabric mid-call. fabric_save makes no durability claim for the
// attempted version in that case — the caller (FabricSession) rolls the
// torn version back locally and recovery falls back to an older committed
// version, the in-memory analogue of the paper's torn-save handling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/engine.hpp"
#include "cluster/fabric.hpp"
#include "core/eccheck_engine.hpp"

namespace eccheck::core {

/// Save one checkpoint version. `shards` holds the shards of the workers
/// this process drives, in worker order: with g workers per node, entry
/// i·g+l is worker driven_node_i·g+l. A VirtualFabric caller passes all
/// W = n·g shards; a socket rank passes its own g. All entries non-null and
/// alive for the duration of the call. cfg.k + cfg.m must equal the fabric
/// world size, and k must divide W.
ckpt::SaveReport fabric_save(cluster::Fabric& fabric, const ECCheckConfig& cfg,
                             const std::vector<const dnn::StateDict*>& shards,
                             std::int64_t version);

/// Load `version` into `out` (resized to the number of driven workers, same
/// ordering as fabric_save's `shards`). The worker count is rediscovered
/// from stored metadata, so a freshly replaced rank needs no prior state.
/// Returns success=false consistently on every rank when fewer than k
/// chunks survive and the remote store cannot make up the difference.
/// Dead ranks must have been replaced (fresh process / store) first.
ckpt::LoadReport fabric_load(cluster::Fabric& fabric, const ECCheckConfig& cfg,
                             std::int64_t version,
                             std::vector<dnn::StateDict>& out);

/// Erase every version older than `oldest_to_keep` from the driven ranks'
/// stores, and (from the lowest driven rank) from the remote store. Purely
/// local per rank — no collectives, safe to call with divergent views.
void fabric_prune(cluster::Fabric& fabric, const std::string& key_namespace,
                  std::int64_t oldest_to_keep);

/// Collective: the newest version for which any rank holds a commit marker,
/// also consulting the remote store (from the lowest driven rank) when
/// cfg.remote_fallback is set. 0 when nothing was ever committed.
std::int64_t fabric_newest_version(cluster::Fabric& fabric,
                                   const ECCheckConfig& cfg);

struct FabricRecoverResult {
  ckpt::LoadReport report;
  std::int64_t version = 0;  ///< 0 = nothing recoverable
};

/// Collective: discover the newest committed version and load it, falling
/// back through at most `retain_versions` older versions (0 = unbounded)
/// when the newest is unrecoverable — the SPMD form of Session::load.
FabricRecoverResult fabric_recover(cluster::Fabric& fabric,
                                   const ECCheckConfig& cfg,
                                   int retain_versions,
                                   std::vector<dnn::StateDict>& out);

/// The workers this process drives, ascending (helper for callers mapping
/// fabric_save/fabric_load shard vectors to global worker indices).
std::vector<int> fabric_driven_workers(cluster::Fabric& fabric,
                                       int gpus_per_node);

}  // namespace eccheck::core
