// The ECCheck save/load/prune protocol expressed against cluster::Fabric —
// the SPMD form of core/eccheck_engine.cpp that runs unchanged over the
// in-memory VirtualFabric and over real sockets (net::SocketTransport),
// one process per rank.
//
// Every function here is a *collective*: all ranks of the fabric call it
// with the same arguments, each executes the sides of the data movement it
// drives, and all return consistent results. On VirtualFabric (one process
// drives all ranks) a single call performs the whole protocol.
//
// Bit-exactness contract: after fabric_save, every node's volatile store
// and the remote store hold byte-identical keys/values to a
// core::ECCheckEngine::save() of the same shards on a VirtualCluster of the
// same shape, and fabric_load reproduces the simulator's load semantics
// (workflow A / workflow B / remote fallback) with byte-identical
// reconstructed shards and post-load stores. GF addition is XOR, so parity
// produced by XOR-reducing per-participant partials equals the simulator's
// serial accumulation; everything else is relocation of identical bytes.
// The differential suite (tests/test_engine_fabric.cpp) enforces this.
//
// Failure model: a dead / unreachable peer surfaces as CheckFailure from
// the fabric mid-call. fabric_save makes no durability claim for the
// attempted version in that case — the caller (FabricSession) rolls the
// torn version back locally and recovery falls back to an older committed
// version, the in-memory analogue of the paper's torn-save handling.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/engine.hpp"
#include "cluster/fabric.hpp"
#include "core/eccheck_engine.hpp"

namespace eccheck::core {

/// Degraded-mode membership: which fabric ranks are currently alive.
///
/// An empty `alive` list is full membership — every rank participates and
/// the protocol below is bit-identical to its historical behaviour. With a
/// non-empty list, dead ranks are excluded from every collective and their
/// protocol roles (staging the shards of their workers, contributing parity
/// partials, hosting reconstructed rows during load) are *adopted* by the
/// lowest alive rank. Chunk rows whose home node is dead are simply not
/// stored on save — the stripe keeps n_alive ≥ k rows, which is exactly the
/// paper's reduced-redundancy degraded window: any k of them still decode.
///
/// The adopted workers' shard *content* must be supplied by the caller (the
/// checkpoint service regenerates it deterministically); the engine only
/// defines where it is staged and who moves it.
struct Membership {
  std::vector<int> alive;  ///< sorted ascending, unique; empty = all alive

  static Membership of(std::vector<int> alive_nodes) {
    std::sort(alive_nodes.begin(), alive_nodes.end());
    alive_nodes.erase(std::unique(alive_nodes.begin(), alive_nodes.end()),
                      alive_nodes.end());
    return Membership{std::move(alive_nodes)};
  }

  bool full() const { return alive.empty(); }
  bool is_alive(int node) const {
    return full() || std::binary_search(alive.begin(), alive.end(), node);
  }
  /// The rank that stands in for dead ranks' local work.
  int adopter() const {
    ECC_CHECK_MSG(!alive.empty(), "membership with no alive rank");
    return alive.front();
  }
  /// Where node's per-node protocol state lives: itself when alive, the
  /// adopter when dead.
  int site(int node) const { return is_alive(node) ? node : adopter(); }
  int alive_count(int world) const {
    return full() ? world : static_cast<int>(alive.size());
  }
  /// Validate against a world size; throws on out-of-range entries.
  void check(int world) const {
    for (int node : alive)
      ECC_CHECK_MSG(node >= 0 && node < world,
                    "membership names rank " << node << " outside world "
                                             << world);
  }
};

/// Save one checkpoint version. `shards` holds the shards of the workers
/// this process *sites* (drives directly, plus — on the adopter — the
/// workers of dead ranks), ascending by global worker index; see
/// fabric_sited_workers. With full membership that is exactly the driven
/// workers: a VirtualFabric caller passes all W = n·g shards; a socket rank
/// passes its own g. All entries non-null and alive for the duration of the
/// call. cfg.k + cfg.m must equal the fabric world size, and k must divide
/// W. With a degraded membership (alive ≥ k required), chunk rows homed on
/// dead ranks are skipped — the saved stripe carries reduced redundancy of
/// alive − k spare rows.
ckpt::SaveReport fabric_save(cluster::Fabric& fabric, const ECCheckConfig& cfg,
                             const std::vector<const dnn::StateDict*>& shards,
                             std::int64_t version,
                             const Membership& members = Membership());

/// Load `version` into `out` (resized to the sited workers, same ordering
/// as fabric_save's `shards` — so during a degraded window the adopter
/// also reconstructs and returns the dead ranks' workers, via workflow-B
/// decode). The worker count is rediscovered from stored metadata, so a
/// freshly replaced rank needs no prior state. Returns success=false
/// consistently on every rank when fewer than k chunks survive and the
/// remote store cannot make up the difference. A dead rank must either be
/// excluded via `members` or have been replaced (fresh process / store).
ckpt::LoadReport fabric_load(cluster::Fabric& fabric, const ECCheckConfig& cfg,
                             std::int64_t version,
                             std::vector<dnn::StateDict>& out,
                             const Membership& members = Membership());

/// Erase every version older than `oldest_to_keep` from the driven (alive)
/// ranks' stores, and (from the site of rank 0) from the remote store.
/// Purely local per rank — no collectives, safe to call with divergent
/// views.
void fabric_prune(cluster::Fabric& fabric, const std::string& key_namespace,
                  std::int64_t oldest_to_keep,
                  const Membership& members = Membership());

/// Collective: the newest version for which any alive rank holds a commit
/// marker, also consulting the remote store when cfg.remote_fallback is
/// set. 0 when nothing was ever committed.
std::int64_t fabric_newest_version(cluster::Fabric& fabric,
                                   const ECCheckConfig& cfg,
                                   const Membership& members = Membership());

struct FabricRecoverResult {
  ckpt::LoadReport report;
  std::int64_t version = 0;  ///< 0 = nothing recoverable
};

/// Collective: discover the newest committed version and load it, falling
/// back through at most `retain_versions` older versions (0 = unbounded)
/// when the newest is unrecoverable — the SPMD form of Session::load.
FabricRecoverResult fabric_recover(cluster::Fabric& fabric,
                                   const ECCheckConfig& cfg,
                                   int retain_versions,
                                   std::vector<dnn::StateDict>& out,
                                   const Membership& members = Membership());

/// The workers this process drives, ascending (helper for callers mapping
/// fabric_save/fabric_load shard vectors to global worker indices).
std::vector<int> fabric_driven_workers(cluster::Fabric& fabric,
                                       int gpus_per_node);

/// The workers this process *sites* under `members`, ascending: every
/// worker whose node's site (itself when alive, the adopter when dead) is
/// driven by this process. This is the index set of fabric_save's `shards`
/// and fabric_load's `out`. Equals fabric_driven_workers under full
/// membership.
std::vector<int> fabric_sited_workers(cluster::Fabric& fabric,
                                      int gpus_per_node,
                                      const Membership& members);

}  // namespace eccheck::core
