// Session facade — the paper's three-call API (§V-A):
//   eccheck.initialize  → core::Session::initialize(...)
//   eccheck.save        → session.save(shards)
//   eccheck.load        → session.load(out)
//
// initialize() fixes the encoding matrix and communication strategy
// (placement plan), profiles the training communication pattern over the
// first iterations to find network-idle windows, and installs the resulting
// NIC calendars on the cluster. save() checkpoints with monotonically
// increasing versions and prunes old versions beyond the retention window;
// load() recovers the newest version that is still fully recoverable.
#pragma once

#include <optional>

#include "core/eccheck_engine.hpp"
#include "core/fabric_engine.hpp"
#include "trainsim/train_profile.hpp"

namespace eccheck::core {

struct SessionConfig {
  ECCheckConfig ec;

  /// Online idle-slot profiling (§IV-B3): number of iterations profiled and
  /// tiled into the NIC calendars. 0 disables profiling.
  int profile_iterations = 50;

  /// Checkpoint versions kept in host memory (older keys are pruned).
  int retain_versions = 2;
};

class Session {
 public:
  /// Plan placement, profile training communication, install calendars.
  static Session initialize(cluster::VirtualCluster& cluster,
                            const dnn::ModelSpec& model,
                            const dnn::ParallelismSpec& parallelism,
                            SessionConfig cfg = SessionConfig());

  const Placement& placement() const { return placement_; }
  const trainsim::TrainProfile& train_profile() const { return profile_; }
  const SessionConfig& config() const { return cfg_; }
  std::int64_t latest_version() const { return next_version_ - 1; }

  /// Checkpoint the sharded state; returns the engine report. Versions
  /// start at 1 and increase by one per save.
  ckpt::SaveReport save(const std::vector<dnn::StateDict>& shards);

  /// Recover the newest loadable version (falling back to older retained
  /// versions if the newest is unrecoverable). Returns the version loaded
  /// alongside the engine report; version 0 in the report detail means
  /// nothing could be recovered.
  struct RecoverResult {
    ckpt::LoadReport report;
    std::int64_t version = 0;
  };
  RecoverResult load(std::vector<dnn::StateDict>& out);

  ECCheckEngine& engine() { return engine_; }

 private:
  Session(cluster::VirtualCluster& cluster, ECCheckEngine engine,
          Placement placement, trainsim::TrainProfile profile,
          SessionConfig cfg)
      : cluster_(&cluster), engine_(std::move(engine)),
        placement_(std::move(placement)), profile_(std::move(profile)),
        cfg_(cfg) {}

  void prune(std::int64_t oldest_to_keep);

  cluster::VirtualCluster* cluster_;
  ECCheckEngine engine_;
  Placement placement_;
  trainsim::TrainProfile profile_;
  SessionConfig cfg_;
  std::int64_t next_version_ = 1;
};

/// The session facade over a cluster::Fabric — the SPMD analogue of Session
/// for real multi-process deployments (and, bit-exactly, VirtualFabric).
/// Every method is a collective: all ranks call it with equivalent
/// arguments. No idle-window profiling here — real transports measure real
/// wire time, so the virtual-time calendar machinery does not apply.
///
/// Torn-save handling: when a peer dies mid-save the fabric throws
/// CheckFailure; save() then rolls the attempted version back from the
/// local driven stores (durable and staging keys) before rethrowing, so a
/// later load() never mistakes the torn version for a committed one.
class FabricSession {
 public:
  FabricSession(cluster::Fabric& fabric, ECCheckConfig cfg,
                int gpus_per_node = 1, int retain_versions = 2);

  const ECCheckConfig& config() const { return cfg_; }
  int gpus_per_node() const { return gpus_per_node_; }
  std::int64_t latest_version() const { return next_version_ - 1; }

  /// Degraded-mode membership applied to every subsequent collective (see
  /// core::Membership). All ranks participating in a collective must hold
  /// the same membership. Default: full.
  void set_membership(Membership members) { members_ = std::move(members); }
  const Membership& membership() const { return members_; }

  /// Global worker indices of this process's shards, in `shards` order —
  /// under a degraded membership this includes the dead ranks' workers
  /// adopted by this process (fabric_sited_workers).
  std::vector<int> driven_workers() const;

  /// Save the driven workers' shards as the next version; prunes versions
  /// beyond the retention window on success.
  ckpt::SaveReport save(const std::vector<const dnn::StateDict*>& shards);

  /// Recover the newest committed version (falling back through retained
  /// older versions); resyncs the session's version counter so the next
  /// save continues above what was recovered — also on a freshly replaced
  /// rank that never saved.
  struct RecoverResult {
    ckpt::LoadReport report;
    std::int64_t version = 0;
  };
  RecoverResult load(std::vector<dnn::StateDict>& out);

 private:
  void rollback(std::int64_t version);

  cluster::Fabric* fabric_;
  ECCheckConfig cfg_;
  int gpus_per_node_;
  int retain_versions_;
  Membership members_;
  std::int64_t next_version_ = 1;
};

}  // namespace eccheck::core
