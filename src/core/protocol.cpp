#include "core/protocol.hpp"

namespace eccheck::core {

Decomposition decompose(const dnn::StateDict& sd) {
  Decomposition d;
  d.metadata_blob = dnn::serialize_metadata(sd.metadata());
  d.keys_blob = dnn::serialize_tensor_keys(sd);
  d.tensor_data.reserve(sd.tensors().size());
  for (const auto& e : sd.tensors()) {
    d.tensor_data.push_back(e.tensor.bytes());
    d.tensor_bytes += e.tensor.nbytes();
  }
  return d;
}

std::size_t packets_needed(std::size_t payload_bytes,
                           std::size_t packet_size) {
  ECC_CHECK(packet_size > 0);
  return (payload_bytes + packet_size - 1) / packet_size;
}

std::vector<Buffer> pack_packets(const std::vector<ByteSpan>& tensor_data,
                                 std::size_t packet_size,
                                 std::size_t num_packets) {
  std::size_t total = 0;
  for (const auto& s : tensor_data) total += s.size();
  ECC_CHECK_MSG(num_packets >= packets_needed(total, packet_size),
                "payload " << total << " B does not fit in " << num_packets
                           << " packets of " << packet_size << " B");

  std::vector<Buffer> packets;
  packets.reserve(num_packets);
  for (std::size_t i = 0; i < num_packets; ++i)
    packets.emplace_back(packet_size, Buffer::Init::kZeroed);

  std::size_t pkt = 0, off = 0;
  for (const auto& src : tensor_data) {
    std::size_t copied = 0;
    while (copied < src.size()) {
      const std::size_t room = packet_size - off;
      const std::size_t n = std::min(room, src.size() - copied);
      std::memcpy(packets[pkt].data() + off, src.data() + copied, n);
      copied += n;
      off += n;
      if (off == packet_size) {
        ++pkt;
        off = 0;
      }
    }
  }
  return packets;
}

void unpack_packets(const std::vector<ByteSpan>& packets,
                    dnn::StateDict& skeleton) {
  std::size_t pkt = 0, off = 0;
  std::size_t available = 0;
  for (const auto& p : packets) available += p.size();
  ECC_CHECK_MSG(available >= skeleton.tensor_bytes(),
                "packets hold fewer bytes than the skeleton needs");

  for (auto& e : skeleton.tensors()) {
    MutableByteSpan dst = e.tensor.bytes();
    std::size_t copied = 0;
    while (copied < dst.size()) {
      ECC_CHECK(pkt < packets.size());
      const ByteSpan src = packets[pkt];
      const std::size_t n = std::min(src.size() - off, dst.size() - copied);
      std::memcpy(dst.data() + copied, src.data() + off, n);
      copied += n;
      off += n;
      if (off == src.size()) {
        ++pkt;
        off = 0;
      }
    }
  }
}

}  // namespace eccheck::core
