#include "core/eccheck_engine.hpp"

#include <algorithm>

#include "cluster/slice.hpp"
#include "common/bytes.hpp"
#include "core/engine_keys.hpp"
#include "core/fabric_engine.hpp"
#include "ec/parallel_codec.hpp"
#include "gf/simd.hpp"
#include "obs/stats.hpp"
#include "obs/tracer.hpp"
#include "runtime/pipeline.hpp"

namespace eccheck::core {

using keys::commit_key;
using keys::keys_key;
using keys::local_key;
using keys::meta_key;
using keys::row_key;
using keys::sums_key;

ECCheckEngine::ECCheckEngine(ECCheckConfig cfg) : cfg_(cfg) {
  ECC_CHECK(cfg_.k >= 1 && cfg_.m >= 0);
  ECC_CHECK(cfg_.packet_size > 0);
}

Placement ECCheckEngine::plan_for(int num_nodes, int gpus_per_node) const {
  PlacementConfig pc;
  pc.num_nodes = num_nodes;
  pc.gpus_per_node = gpus_per_node;
  pc.k = cfg_.k;
  pc.m = cfg_.m;
  return plan_placement(pc);
}

Placement ECCheckEngine::plan_for(
    const cluster::VirtualCluster& cluster) const {
  return plan_for(cluster.num_nodes(), cluster.gpus_per_node());
}

ckpt::SaveReport ECCheckEngine::save(
    cluster::Fabric& fabric, const std::vector<const dnn::StateDict*>& shards,
    std::int64_t version) {
  return fabric_save(fabric, cfg_, shards, version);
}

ckpt::LoadReport ECCheckEngine::load(cluster::Fabric& fabric,
                                     std::int64_t version,
                                     std::vector<dnn::StateDict>& out) {
  return fabric_load(fabric, cfg_, version, out);
}

// ---------------------------------------------------------------------------
// save
// ---------------------------------------------------------------------------

ckpt::SaveReport ECCheckEngine::save(cluster::VirtualCluster& cluster,
                                     const std::vector<dnn::StateDict>& shards,
                                     std::int64_t version) {
  return save_slice(cluster::ClusterSlice(cluster), shards, version);
}

ckpt::SaveReport ECCheckEngine::save_slice(
    cluster::ClusterSlice cluster, std::span<const dnn::StateDict> shards,
    std::int64_t version) {
  ECC_CHECK(static_cast<int>(shards.size()) == cluster.world_size());
  ECC_CHECK_MSG(cfg_.k + cfg_.m == cluster.num_nodes(),
                "k+m must equal node count");
  cluster.reset_timeline();
  ckpt::SaveReport rep;
  const auto stats_base = cluster.stats().counters();

  const Placement plan = plan_for(cluster.num_nodes(), cluster.gpus_per_node());
  const ec::CrsCodec codec(cfg_.k, cfg_.m, cfg_.gf_width, cfg_.kernel);
  const int W = cluster.world_size();
  const int per_chunk = plan.workers_per_chunk();
  const std::size_t P = cfg_.packet_size;
  ECC_CHECK_MSG(P % codec.packet_granularity() == 0,
                "packet_size must be a multiple of the codec granularity");
  std::unique_ptr<runtime::ThreadPool> pool;
  std::unique_ptr<ec::ParallelCodec> pcodec;
  if (cfg_.data_plane_threads > 0) {
    pool = std::make_unique<runtime::ThreadPool>(
        static_cast<unsigned>(cfg_.data_plane_threads));
    pcodec = std::make_unique<ec::ParallelCodec>(codec, *pool, P / 4 + 64);
  }
  const double scale = cluster.config().size_scale;
  const bool idle = cfg_.idle_aware_comm;

  // Packets per worker: uniform so reduction groups align (§III-C).
  std::size_t B = 1;
  for (const auto& sd : shards)
    B = std::max(B, packets_needed(sd.tensor_bytes(), P));

  // ---- Step 1: decompose + snapshot (blocking) --------------------------
  std::vector<std::vector<cluster::TaskId>> pack_done(
      static_cast<std::size_t>(W));
  std::vector<cluster::TaskId> meta_ser(static_cast<std::size_t>(W));
  Seconds stall = 0;
  for (int w = 0; w < W; ++w) {
    const int node = cluster::slice_node_of_worker(cluster, w);
    const int gpu = cluster::slice_gpu_of_worker(cluster, w);
    const auto& sd = shards[static_cast<std::size_t>(w)];
    Decomposition dec = decompose(sd);

    cluster::TaskId snap = cluster.dtoh(node, gpu, dec.tensor_bytes, {});
    meta_ser[static_cast<std::size_t>(w)] = cluster.cpu_serialize(
        node, dec.metadata_blob.size() + dec.keys_blob.size(), {});
    stall = std::max({stall, cluster.timeline().finish_time(snap),
                      cluster.timeline().finish_time(
                          meta_ser[static_cast<std::size_t>(w)])});

    // Pack tensor bytes into B fixed-size packets (async, per packet).
    std::vector<Buffer> packets = pack_packets(dec.tensor_data, P, B);
    for (std::size_t b = 0; b < B; ++b) {
      pack_done[static_cast<std::size_t>(w)].push_back(
          cluster.host_copy(node, P, {snap}));
      cluster.host(node).put(local_key(cfg_.key_namespace, version, w, static_cast<int>(b)),
                             std::move(packets[b]));
    }
    cluster.host(node).put(meta_key(cfg_.key_namespace, version, w), std::move(dec.metadata_blob));
    cluster.host(node).put(keys_key(cfg_.key_namespace, version, w), std::move(dec.keys_blob));
  }
  rep.breakdown["step1_snapshot"] = stall;
  rep.stall_time = stall;

  // ---- Step 2: broadcast metadata + tensor keys --------------------------
  Seconds meta_bcast_finish = stall;
  for (int w = 0; w < W; ++w) {
    const int src = cluster::slice_node_of_worker(cluster, w);
    const std::size_t blob = cluster.host(src).get(meta_key(cfg_.key_namespace, version, w)).size() +
                             cluster.host(src).get(keys_key(cfg_.key_namespace, version, w)).size();
    for (int d = 0; d < cluster.num_nodes(); ++d) {
      if (d == src) continue;
      cluster::TaskId t = cluster.net_send(
          src, d, blob, {meta_ser[static_cast<std::size_t>(w)]}, idle,
          "meta_bcast");
      rep.network_bytes += static_cast<std::size_t>(blob * scale);
      meta_bcast_finish =
          std::max(meta_bcast_finish, cluster.timeline().finish_time(t));
      cluster.host(d).put(meta_key(cfg_.key_namespace, version, w),
                          cluster.host(src).get(meta_key(cfg_.key_namespace, version, w)).clone());
      cluster.host(d).put(keys_key(cfg_.key_namespace, version, w),
                          cluster.host(src).get(keys_key(cfg_.key_namespace, version, w)).clone());
    }
  }
  rep.breakdown["step2_metadata_broadcast"] = meta_bcast_finish;

  // ---- Step 3: encode → XOR-reduce → P2P ---------------------------------
  // A stripe is one (reduction group j, buffer b) pair: it touches packet b
  // of each chunk's j-th worker. Emission is stage-major — all relocations,
  // then all encodes, then the XOR chains — mirroring the paper's dedicated
  // encoding / XOR-reduction / P2P threads (§IV-C): each stage streams
  // packets in order, and stages overlap across the per-node CPU, XOR and
  // NIC resources. With cfg_.pipelined == false a barrier separates the
  // encode stage from everything downstream (ablation).
  std::vector<Seconds> row_finish(static_cast<std::size_t>(cfg_.k + cfg_.m),
                                  stall);

  struct StripeWork {
    int j, b;
  };
  std::vector<StripeWork> stripes;
  for (int j = 0; j < per_chunk; ++j)
    for (int b = 0; b < static_cast<int>(B); ++b) stripes.push_back({j, b});

  auto count_net = [&](std::size_t bytes) {
    rep.network_bytes += static_cast<std::size_t>(bytes * scale);
  };

  // Stage 3a: data-packet relocation to data nodes (ready after packing).
  for (const auto& s : stripes) {
    for (int c = 0; c < cfg_.k; ++c) {
      const int wsrc = c * per_chunk + s.j;
      const int src = cluster::slice_node_of_worker(cluster, wsrc);
      const int dst = plan.data_nodes[static_cast<std::size_t>(c)];
      const std::string lk = local_key(cfg_.key_namespace, version, wsrc, s.b);
      const std::string rk = row_key(cfg_.key_namespace, version, c, s.j, s.b);
      cluster::TaskId dep = pack_done[static_cast<std::size_t>(wsrc)]
                                     [static_cast<std::size_t>(s.b)];
      cluster::TaskId t = dep;
      if (src != dst) {
        t = cluster.net_send(src, dst, P, {dep}, idle, "p2p_data");
        count_net(P);
      }
      cluster.host(dst).put(rk, cluster.host(src).get(lk).clone());
      row_finish[static_cast<std::size_t>(c)] =
          std::max(row_finish[static_cast<std::size_t>(c)],
                   cluster.timeline().finish_time(t));
    }
  }

  // Stage 3b: every per-participant partial encode.
  std::vector<std::vector<cluster::TaskId>> enc_tasks(stripes.size());
  for (std::size_t si = 0; si < stripes.size(); ++si) {
    const auto& s = stripes[si];
    enc_tasks[si].resize(static_cast<std::size_t>(cfg_.m * cfg_.k));
    for (int r = 0; r < cfg_.m; ++r) {
      const auto& op =
          plan.reductions[static_cast<std::size_t>(s.j * cfg_.m + r)];
      for (int c = 0; c < cfg_.k; ++c) {
        const int pw = op.participants[static_cast<std::size_t>(c)];
        enc_tasks[si][static_cast<std::size_t>(r * cfg_.k + c)] =
            cluster.cpu_code(cluster::slice_node_of_worker(cluster, pw), P,
                             {pack_done[static_cast<std::size_t>(pw)]
                                       [static_cast<std::size_t>(s.b)]});
      }
    }
  }
  cluster::TaskId encode_barrier = -1;
  if (!cfg_.pipelined) {
    std::vector<cluster::TaskId> all_encodes;
    for (const auto& v : enc_tasks)
      all_encodes.insert(all_encodes.end(), v.begin(), v.end());
    encode_barrier = cluster.barrier(all_encodes);
  }

  // Real data plane (§IV-C): with a thread pool and pipelining enabled the
  // actual parity bytes are produced by the paper's three-stage pipeline —
  // per-participant partial products (encode), XOR-reduction of the partials,
  // and the commit hand-off into the destination store (the in-process stand-
  // in for the P2P hop) — one real thread per stage with bounded queues, so
  // packets overlap across stages exactly like the virtual schedule emitted
  // below. Input spans are gathered up front and each stage touches only its
  // own item, so the stages never race the stores; XOR-combining the partials
  // is bit-identical to the serial accumulate path (GF addition is XOR).
  struct RealStripe {
    std::vector<ByteSpan> inputs;  ///< the k source packets
    int row = 0;                   ///< generator row k+r
    std::string key;               ///< destination row key
    int dest_node = 0;
    std::vector<Buffer> partials;  ///< encode → xor_reduce hand-off
    Buffer acc;                    ///< the finished parity packet
  };
  const bool real_pipeline = pcodec != nullptr && cfg_.pipelined;
  if (real_pipeline) {
    std::vector<RealStripe> real(stripes.size() *
                                 static_cast<std::size_t>(cfg_.m));
    for (std::size_t si = 0; si < stripes.size(); ++si) {
      const auto& s = stripes[si];
      for (int r = 0; r < cfg_.m; ++r) {
        const auto& op =
            plan.reductions[static_cast<std::size_t>(s.j * cfg_.m + r)];
        RealStripe& rs = real[si * static_cast<std::size_t>(cfg_.m) +
                              static_cast<std::size_t>(r)];
        rs.row = cfg_.k + r;
        rs.key = row_key(cfg_.key_namespace, version, cfg_.k + r, s.j, s.b);
        rs.dest_node = op.dest_node;
        rs.inputs.reserve(static_cast<std::size_t>(cfg_.k));
        for (int c = 0; c < cfg_.k; ++c) {
          const int pw = op.participants[static_cast<std::size_t>(c)];
          rs.inputs.push_back(
              cluster.host(cluster::slice_node_of_worker(cluster, pw))
                  .get(local_key(cfg_.key_namespace, version, pw, s.b))
                  .span());
        }
      }
    }
    std::vector<std::function<void(RealStripe&)>> real_stages;
    real_stages.push_back([&](RealStripe& rs) {
      rs.partials.reserve(rs.inputs.size());
      for (std::size_t c = 0; c < rs.inputs.size(); ++c) {
        rs.partials.emplace_back(P, Buffer::Init::kUninitialized);
        pcodec->encode_partial(rs.row, static_cast<int>(c), rs.inputs[c],
                               rs.partials[c].span(), /*accumulate=*/false);
      }
    });
    real_stages.push_back([](RealStripe& rs) {
      // Fold partials with the dispatched XOR kernel directly — partials
      // are all P bytes (allocated two stages up) and 64-byte aligned.
      const gf::simd::Kernels& kernels = gf::simd::active();
      rs.acc = std::move(rs.partials[0]);
      for (std::size_t c = 1; c < rs.partials.size(); ++c)
        kernels.xor_into(rs.acc.data(), rs.partials[c].data(),
                         rs.acc.size());
      rs.partials.clear();
    });
    real_stages.push_back([&](RealStripe& rs) {
      cluster.host(rs.dest_node).put(rs.key, std::move(rs.acc));
    });
    runtime::run_pipeline(real, real_stages, /*queue_capacity=*/4,
                          {"encode", "xor_reduce", "p2p_commit"});
  }

  // Stage 3c: XOR-reduction chains ending at each target, then the final
  // P2P hop to the parity node; real parity bytes are produced here when the
  // pipeline above did not already commit them.
  for (std::size_t si = 0; si < stripes.size(); ++si) {
    const auto& s = stripes[si];
    for (int r = 0; r < cfg_.m; ++r) {
      const auto& op =
          plan.reductions[static_cast<std::size_t>(s.j * cfg_.m + r)];

      // Data plane: the pipeline above already committed the parity packet;
      // otherwise accumulate partial products serially here — thread-pool
      // sliced when data_plane_threads > 0 (§IV-A).
      if (!real_pipeline) {
        Buffer acc(P, Buffer::Init::kUninitialized);
        std::vector<ByteSpan> packet_spans;
        packet_spans.reserve(static_cast<std::size_t>(cfg_.k));
        for (int c = 0; c < cfg_.k; ++c) {
          const int pw = op.participants[static_cast<std::size_t>(c)];
          packet_spans.push_back(
              cluster.host(cluster::slice_node_of_worker(cluster, pw))
                  .get(local_key(cfg_.key_namespace, version, pw, s.b))
                  .span());
        }
        if (pcodec) {
          pcodec->encode_row(cfg_.k + r, packet_spans, acc.span());
        } else {
          for (int c = 0; c < cfg_.k; ++c)
            codec.encode_partial(cfg_.k + r, c,
                                 packet_spans[static_cast<std::size_t>(c)],
                                 acc.span(), /*accumulate=*/c != 0);
        }
        cluster.host(op.dest_node).put(
            row_key(cfg_.key_namespace, version, cfg_.k + r, s.j, s.b),
            std::move(acc));
      }

      auto enc_of = [&](int c) {
        return cfg_.pipelined
                   ? enc_tasks[si][static_cast<std::size_t>(r * cfg_.k + c)]
                   : encode_barrier;
      };

      // Chain-XOR along the participants, ending at the target.
      std::vector<int> chain;
      std::vector<cluster::TaskId> chain_enc;
      int target_c = -1;
      for (int c = 0; c < cfg_.k; ++c) {
        const int pw = op.participants[static_cast<std::size_t>(c)];
        if (pw == op.target_worker) {
          target_c = c;
          continue;
        }
        chain.push_back(pw);
        chain_enc.push_back(enc_of(c));
      }
      ECC_CHECK(target_c >= 0);
      chain.push_back(op.target_worker);
      chain_enc.push_back(enc_of(target_c));

      cluster::TaskId carry;
      if (!cfg_.tree_reduction) {
        carry = chain_enc[0];
        for (std::size_t i = 1; i < chain.size(); ++i) {
          const int a = cluster::slice_node_of_worker(cluster, chain[i - 1]);
          const int d = cluster::slice_node_of_worker(cluster, chain[i]);
          cluster::TaskId arrive = carry;
          if (a != d) {
            arrive = cluster.net_send(a, d, P, {carry}, idle, "xor_reduce");
            count_net(P);
          }
          carry = cluster.cpu_xor(d, P, {arrive, chain_enc[i]});
        }
      } else {
        // Binary tree rooted at the target (last element of `chain`):
        // reverse so the target sits at index 0, then halve each round.
        std::vector<int> order(chain.rbegin(), chain.rend());
        std::vector<cluster::TaskId> hold(chain_enc.rbegin(),
                                          chain_enc.rend());
        for (std::size_t step = 1; step < order.size(); step *= 2) {
          for (std::size_t i = 0; i + step < order.size(); i += 2 * step) {
            const int a =
                cluster::slice_node_of_worker(cluster, order[i + step]);
            const int d = cluster::slice_node_of_worker(cluster, order[i]);
            cluster::TaskId arrive = hold[i + step];
            if (a != d) {
              arrive = cluster.net_send(a, d, P, {arrive}, idle,
                                        "xor_reduce_tree");
              count_net(P);
            }
            hold[i] = cluster.cpu_xor(d, P, {arrive, hold[i]});
          }
        }
        carry = hold[0];
      }
      // Final hop to the parity node if the target worker lives elsewhere.
      const int tnode = cluster::slice_node_of_worker(cluster, op.target_worker);
      cluster::TaskId done = carry;
      if (tnode != op.dest_node) {
        done = cluster.net_send(tnode, op.dest_node, P, {carry}, idle,
                                "p2p_parity");
        count_net(P);
      }
      row_finish[static_cast<std::size_t>(cfg_.k + r)] =
          std::max(row_finish[static_cast<std::size_t>(cfg_.k + r)],
                   cluster.timeline().finish_time(done));
    }
  }

  Seconds encode_finish = stall;
  for (Seconds f : row_finish) encode_finish = std::max(encode_finish, f);
  encode_finish = std::max(encode_finish, meta_bcast_finish);
  rep.breakdown["step3_encode_pipeline"] = encode_finish;
  rep.total_time = encode_finish;

  // Drop the staging copies: each node now keeps exactly one chunk plus the
  // tiny metadata, matching the paper's redundancy accounting. A commit
  // marker makes the version visible to load() — a save torn by failure
  // never commits, so recovery falls back to the previous version.
  for (int w = 0; w < W; ++w) {
    const int node = cluster::slice_node_of_worker(cluster, w);
    for (int b = 0; b < static_cast<int>(B); ++b)
      cluster.host(node).erase(local_key(cfg_.key_namespace, version, w, b));
  }
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    if (cfg_.verify_integrity) {
      const int row = plan.generator_row_of_node(node);
      Buffer sums(static_cast<std::size_t>(per_chunk) * B * 8,
                  Buffer::Init::kUninitialized);
      for (int j = 0; j < per_chunk; ++j) {
        for (int b = 0; b < static_cast<int>(B); ++b) {
          const std::uint64_t crc = crc64(
              cluster.host(node)
                  .get(row_key(cfg_.key_namespace, version, row, j, b))
                  .span());
          std::memcpy(sums.data() +
                          (static_cast<std::size_t>(j) * B +
                           static_cast<std::size_t>(b)) *
                              8,
                      &crc, 8);
        }
      }
      cluster.host(node).put(sums_key(cfg_.key_namespace, version),
                             std::move(sums));
    }
    cluster.host(node).put(commit_key(cfg_.key_namespace, version),
                           Buffer::copy_of(as_bytes_of(version)));
  }

  // ---- Step 4: low-frequency remote flush --------------------------------
  if (cfg_.flush_to_remote) {
    Seconds flush_finish = encode_finish;
    for (int row = 0; row < cfg_.k + cfg_.m; ++row) {
      const int node = row < cfg_.k
                           ? plan.data_nodes[static_cast<std::size_t>(row)]
                           : plan.parity_nodes[static_cast<std::size_t>(
                                 row - cfg_.k)];
      for (int j = 0; j < per_chunk; ++j) {
        for (int b = 0; b < static_cast<int>(B); ++b) {
          const std::string rk = row_key(cfg_.key_namespace, version, row, j, b);
          cluster::TaskId t = cluster.flush_to_remote(node, rk, rk, {});
          rep.remote_bytes += static_cast<std::size_t>(P * scale);
          flush_finish =
              std::max(flush_finish, cluster.timeline().finish_time(t));
        }
      }
    }
    for (int w = 0; w < W; ++w) {
      const int node = cluster::slice_node_of_worker(cluster, w);
      cluster.remote().put(meta_key(cfg_.key_namespace, version, w),
                           cluster.host(node).get(meta_key(cfg_.key_namespace, version, w)).clone());
      cluster.remote().put(keys_key(cfg_.key_namespace, version, w),
                           cluster.host(node).get(keys_key(cfg_.key_namespace, version, w)).clone());
    }
    cluster.remote().put(commit_key(cfg_.key_namespace, version),
                         Buffer::copy_of(as_bytes_of(version)));
    rep.breakdown["step4_remote_flush"] = flush_finish;
    rep.total_time = std::max(rep.total_time, flush_finish);
  }

  rep.stats =
      obs::StatsRegistry::delta(cluster.stats().counters(), stats_base);
  return rep;
}

// ---------------------------------------------------------------------------
// load
// ---------------------------------------------------------------------------

ckpt::LoadReport ECCheckEngine::load(cluster::VirtualCluster& cluster,
                                     std::int64_t version,
                                     std::vector<dnn::StateDict>& out) {
  return load_slice(cluster::ClusterSlice(cluster), version, out);
}

ckpt::LoadReport ECCheckEngine::load_slice(cluster::ClusterSlice cluster,
                                           std::int64_t version,
                                           std::vector<dnn::StateDict>& out) {
  cluster.reset_timeline();
  ckpt::LoadReport rep;
  const auto stats_base = cluster.stats().counters();
  auto finalize_stats = [&]() {
    rep.stats =
        obs::StatsRegistry::delta(cluster.stats().counters(), stats_base);
  };
  const Placement plan = plan_for(cluster.num_nodes(), cluster.gpus_per_node());
  const ec::CrsCodec codec(cfg_.k, cfg_.m, cfg_.gf_width, cfg_.kernel);
  std::unique_ptr<runtime::ThreadPool> pool;
  std::unique_ptr<ec::ParallelCodec> pcodec;
  if (cfg_.data_plane_threads > 0) {
    pool = std::make_unique<runtime::ThreadPool>(
        static_cast<unsigned>(cfg_.data_plane_threads));
    pcodec = std::make_unique<ec::ParallelCodec>(
        codec, *pool, cfg_.packet_size / 4 + 64);
  }
  const int W = cluster.world_size();
  const int n = cluster.num_nodes();
  const int per_chunk = plan.workers_per_chunk();
  const std::size_t P = cfg_.packet_size;

  auto node_of_row = [&](int row) {
    return row < cfg_.k
               ? plan.data_nodes[static_cast<std::size_t>(row)]
               : plan.parity_nodes[static_cast<std::size_t>(row - cfg_.k)];
  };

  // ---- discover which chunk rows survived -------------------------------
  std::vector<int> survivor_rows, missing_rows;
  for (int node = 0; node < n; ++node) {
    ECC_CHECK_MSG(cluster.alive(node),
                  "dead node " << node << " must be replace()d before load");
    const int row = plan.generator_row_of_node(node);
    bool intact =
        cluster.host(node).contains(commit_key(cfg_.key_namespace, version)) &&
        cluster.host(node).contains(
            row_key(cfg_.key_namespace, version, row, 0, 0));
    if (intact && cfg_.verify_integrity) {
      // Scrub: any packet whose CRC64 disagrees with the stored checksum
      // turns the whole chunk into an erasure (decoded around like a
      // failed node).
      intact = cluster.host(node).contains(
          sums_key(cfg_.key_namespace, version));
      if (intact) {
        const Buffer& sums =
            cluster.host(node).get(sums_key(cfg_.key_namespace, version));
        const std::size_t B_row = sums.size() / 8 / per_chunk;
        for (int j = 0; intact && j < per_chunk; ++j) {
          for (std::size_t b = 0; intact && b < B_row; ++b) {
            const std::string rk = row_key(cfg_.key_namespace, version, row,
                                           j, static_cast<int>(b));
            if (!cluster.host(node).contains(rk)) {
              intact = false;
              break;
            }
            std::uint64_t want;
            std::memcpy(&want,
                        sums.data() +
                            (static_cast<std::size_t>(j) * B_row + b) * 8,
                        8);
            intact = crc64(cluster.host(node).get(rk).span()) == want;
          }
        }
      }
    }
    if (intact)
      survivor_rows.push_back(row);
    else
      missing_rows.push_back(row);
  }
  std::sort(survivor_rows.begin(), survivor_rows.end());
  std::sort(missing_rows.begin(), missing_rows.end());

  // ---- catastrophic path: fewer than k chunks left ------------------------
  // Every remote fetch is a timed task whose finish gates everything built
  // on the refetched row (reconstruction, refill, resume): the slow 5 Gbps
  // storage link shows up in the Fig. 13-style recovery numbers instead of
  // being silently dropped from the timeline.
  std::vector<Seconds> row_fetch_ready(static_cast<std::size_t>(cfg_.k +
                                                                cfg_.m),
                                       0);
  std::vector<Seconds> node_meta_ready(static_cast<std::size_t>(n), 0);
  int remote_rescued_rows = 0;
  if (static_cast<int>(survivor_rows.size()) < cfg_.k) {
    if (!(cfg_.remote_fallback &&
          cluster.remote().contains(commit_key(cfg_.key_namespace, version)) &&
          cluster.remote().contains(
              row_key(cfg_.key_namespace, version, 0, 0, 0)))) {
      rep.success = false;
      rep.detail = "only " + std::to_string(survivor_rows.size()) +
                   " chunks survive, need k=" + std::to_string(cfg_.k) +
                   " and no remote copy exists";
      finalize_stats();
      return rep;
    }
    // Refill the missing rows from the remote flush.
    std::size_t B_remote = 0;
    while (cluster.remote().contains(
        row_key(cfg_.key_namespace, version, 0, 0, static_cast<int>(B_remote))))
      ++B_remote;
    for (int row : missing_rows) {
      const int node = node_of_row(row);
      Seconds fetched = 0;
      for (int j = 0; j < per_chunk; ++j)
        for (int b = 0; b < static_cast<int>(B_remote); ++b) {
          const std::string rk = row_key(cfg_.key_namespace, version, row, j, b);
          cluster::TaskId t = cluster.fetch_from_remote(node, rk, rk, {});
          fetched = std::max(fetched, cluster.timeline().finish_time(t));
        }
      row_fetch_ready[static_cast<std::size_t>(row)] = fetched;
      // Commit markers and checksums for the refetched rows are restored
      // by the end-of-load refresh pass.
      survivor_rows.push_back(row);
      ++remote_rescued_rows;
    }
    std::sort(survivor_rows.begin(), survivor_rows.end());
    missing_rows.clear();
    // Metadata also comes back from remote: every node needs the full set
    // of per-worker blobs (the step-2 broadcast invariant). The tiny blobs
    // share the storage link with the chunk fetches above.
    for (int node = 0; node < n; ++node) {
      std::size_t meta_bytes = 0;
      for (int w = 0; w < W; ++w) {
        if (cluster.host(node).contains(meta_key(cfg_.key_namespace, version, w))) continue;
        meta_bytes +=
            cluster.remote().get(meta_key(cfg_.key_namespace, version, w)).size() +
            cluster.remote().get(keys_key(cfg_.key_namespace, version, w)).size();
        cluster.host(node).put(
            meta_key(cfg_.key_namespace, version, w),
            cluster.remote().get(meta_key(cfg_.key_namespace, version, w)).clone());
        cluster.host(node).put(
            keys_key(cfg_.key_namespace, version, w),
            cluster.remote().get(keys_key(cfg_.key_namespace, version, w)).clone());
      }
      if (meta_bytes > 0) {
        cluster::TaskId t = cluster.remote_read(node, meta_bytes, {});
        node_meta_ready[static_cast<std::size_t>(node)] =
            cluster.timeline().finish_time(t);
      }
    }
  }

  // ---- packets per worker, from the tensor-keys component ----------------
  // Any surviving node has every worker's metadata (step-2 broadcast).
  int meta_holder = -1;
  for (int node = 0; node < n; ++node) {
    if (cluster.host(node).contains(meta_key(cfg_.key_namespace, version, 0))) {
      meta_holder = node;
      break;
    }
  }
  if (meta_holder < 0) {
    rep.success = false;
    rep.detail = "no surviving metadata copy for version " +
                 std::to_string(version) + " (pruned or never saved)";
    finalize_stats();
    return rep;
  }
  std::size_t B = 1;
  std::vector<std::vector<dnn::TensorMeta>> keys(
      static_cast<std::size_t>(W));
  for (int w = 0; w < W; ++w) {
    keys[static_cast<std::size_t>(w)] = dnn::deserialize_tensor_keys(
        cluster.host(meta_holder).get(keys_key(cfg_.key_namespace, version, w)).span());
    std::size_t bytes = 0;
    for (const auto& tm : keys[static_cast<std::size_t>(w)])
      bytes += tm.nbytes();
    B = std::max(B, packets_needed(bytes, P));
  }

  // Replaced nodes re-fetch the tiny metadata blobs from a surviving peer
  // (remote-rescued nodes already have them, gated by node_meta_ready).
  for (int node = 0; node < n; ++node) {
    if (cluster.host(node).contains(meta_key(cfg_.key_namespace, version, 0))) continue;
    Seconds done = 0;
    for (int w = 0; w < W; ++w) {
      std::size_t blob =
          cluster.host(meta_holder).get(meta_key(cfg_.key_namespace, version, w)).size() +
          cluster.host(meta_holder).get(keys_key(cfg_.key_namespace, version, w)).size();
      cluster::TaskId t = cluster.net_send(meta_holder, node, blob, {}, false,
                                           "meta_refetch");
      done = std::max(done, cluster.timeline().finish_time(t));
      cluster.host(node).put(
          meta_key(cfg_.key_namespace, version, w),
          cluster.host(meta_holder).get(meta_key(cfg_.key_namespace, version, w)).clone());
      cluster.host(node).put(
          keys_key(cfg_.key_namespace, version, w),
          cluster.host(meta_holder).get(keys_key(cfg_.key_namespace, version, w)).clone());
    }
    node_meta_ready[static_cast<std::size_t>(node)] = done;
  }

  // ---- reconstruct lost rows from any k survivors -------------------------
  // Workflow A (all data rows alive) degenerates to re-encoding the lost
  // parity rows; workflow B decodes lost data rows with the inverted
  // submatrix. Both are the same distributed pass with a different
  // reconstruction matrix (§III-C: "the decoding protocol follows the same
  // three-step procedure ... replacing the encoding matrix by the decoding
  // matrix"). Ordering follows the paper: lost *data* rows are rebuilt
  // before training resumes; lost *parity* rows are restored afterwards
  // ("each node can use its checkpoint data to resume training. Then the
  // lost parity packets are encoded...").
  std::vector<Seconds> row_ready = row_fetch_ready;
  std::vector<int> missing_data, missing_parity;
  for (int r : missing_rows)
    (r < cfg_.k ? missing_data : missing_parity).push_back(r);
  const bool data_lost = !missing_data.empty();

  // Distributed reconstruction pass: rebuild `targets` from the k-row
  // `basis`, releasing no task before `not_before`.
  auto reconstruct = [&](const std::vector<int>& basis,
                         const std::vector<int>& targets,
                         Seconds not_before) {
    if (targets.empty()) return;
    ec::GfMatrix T = codec.reconstruction_matrix(basis, targets);
    sim::TaskOptions release;
    release.not_before = not_before;
    // Basis rows that came back over the remote link gate the whole pass.
    for (int r : basis)
      release.not_before = std::max(release.not_before,
                                    row_ready[static_cast<std::size_t>(r)]);
    cluster::TaskId gate = cluster.timeline().add_task(
        "reconstruct_gate", sim::kNoResource, 0, {}, release);

    for (int j = 0; j < per_chunk; ++j) {
      for (int b = 0; b < static_cast<int>(B); ++b) {
        // Partial products at each survivor, one per target row.
        for (std::size_t ti = 0; ti < targets.size(); ++ti) {
          const int target_row = targets[ti];
          const int target_node = node_of_row(target_row);

          Buffer acc(P, Buffer::Init::kUninitialized);
          if (pcodec) {
            std::vector<ByteSpan> survivor_spans;
            for (int s = 0; s < cfg_.k; ++s) {
              survivor_spans.push_back(
                  cluster.host(node_of_row(basis[static_cast<std::size_t>(s)]))
                      .get(row_key(cfg_.key_namespace, version,
                                   basis[static_cast<std::size_t>(s)], j, b))
                      .span());
            }
            MutableByteSpan accs[] = {acc.span()};
            pcodec->apply_matrix(T.select_rows({static_cast<int>(ti)}),
                                 survivor_spans, accs);
          }
          cluster::TaskId carry = -1;
          for (int s = 0; s < cfg_.k; ++s) {
            const int srow = basis[static_cast<std::size_t>(s)];
            const int snode = node_of_row(srow);
            if (!pcodec) {
              const Buffer& pkt = cluster.host(snode).get(
                  row_key(cfg_.key_namespace, version, srow, j, b));
              codec.mul_packet(T.at(static_cast<int>(ti), s), pkt.span(),
                               acc.span(), /*accumulate=*/s != 0);
            }

            cluster::TaskId part = cluster.cpu_code(snode, P, {gate});
            if (carry < 0) {
              carry = part;
            } else {
              const int prev_node =
                  node_of_row(basis[static_cast<std::size_t>(s - 1)]);
              cluster::TaskId arrive = carry;
              if (prev_node != snode)
                arrive = cluster.net_send(prev_node, snode, P, {carry}, false,
                                          "decode_reduce");
              carry = cluster.cpu_xor(snode, P, {arrive, part});
            }
          }
          const int last_node =
              node_of_row(basis[static_cast<std::size_t>(cfg_.k - 1)]);
          cluster::TaskId done = carry;
          if (last_node != target_node)
            done = cluster.net_send(last_node, target_node, P, {carry}, false,
                                    "decode_p2p");
          cluster.host(target_node).put(row_key(cfg_.key_namespace, version, target_row, j, b),
                                        std::move(acc));
          row_ready[static_cast<std::size_t>(target_row)] =
              std::max(row_ready[static_cast<std::size_t>(target_row)],
                       cluster.timeline().finish_time(done));
        }
      }
    }
  };

  std::vector<int> basis(survivor_rows.begin(),
                         survivor_rows.begin() + cfg_.k);
  reconstruct(basis, missing_data, 0);

  // ---- refill every worker's own packets and rebuild state_dicts ---------
  out.clear();
  out.resize(static_cast<std::size_t>(W));
  Seconds resume = 0;
  for (int w = 0; w < W; ++w) {
    const int node = cluster::slice_node_of_worker(cluster, w);
    const int c = plan.chunk_of_worker(w);
    const int src = plan.data_nodes[static_cast<std::size_t>(c)];
    const int j = w - c * per_chunk;

    Seconds ready = std::max(row_ready[static_cast<std::size_t>(c)],
                             node_meta_ready[static_cast<std::size_t>(node)]);
    std::vector<ByteSpan> packet_views;
    cluster::TaskId last = -1;
    for (int b = 0; b < static_cast<int>(B); ++b) {
      const std::string rk = row_key(cfg_.key_namespace, version, c, j, b);
      if (src != node) {
        sim::TaskOptions opts;
        opts.not_before = ready;
        cluster::TaskId t = cluster.timeline().add_task(
            "refill", {cluster.nic_tx(src), cluster.nic_rx(node)},
            static_cast<double>(P) * cluster.config().size_scale /
                cluster.config().nic_bandwidth,
            {}, opts);
        last = t;
      }
      packet_views.push_back(cluster.host(src).get(rk).span());
    }
    Seconds packets_at =
        last >= 0 ? cluster.timeline().finish_time(last) : ready;

    // Skeleton rebuild: deserialize tiny components + in-place unpack.
    dnn::StateDict skel = dnn::make_skeleton(
        dnn::deserialize_metadata(
            cluster.host(meta_holder).get(meta_key(cfg_.key_namespace, version, w)).span()),
        keys[static_cast<std::size_t>(w)]);
    unpack_packets(packet_views, skel);
    out[static_cast<std::size_t>(w)] = std::move(skel);

    sim::TaskOptions opts;
    opts.not_before = packets_at;
    cluster::TaskId unpack = cluster.timeline().add_task(
        "unpack", cluster.cpu(node),
        static_cast<double>(B) * static_cast<double>(P) *
            cluster.config().size_scale /
            cluster.config().host_memcpy_bandwidth,
        {}, opts);
    resume = std::max(resume, cluster.timeline().finish_time(unpack));
  }

  // Restore redundancy: lost parity rows are re-encoded after resume, from
  // the now-complete set of data rows.
  {
    std::vector<int> data_basis;
    for (int c = 0; c < cfg_.k; ++c) data_basis.push_back(c);
    reconstruct(data_basis, missing_parity, resume);
  }

  Seconds total = resume;
  for (Seconds t : row_ready) total = std::max(total, t);

  // Replaced nodes now hold their reconstructed chunk and metadata: refresh
  // their checksums and mark the version committed so future recoveries see
  // them as survivors.
  for (int node = 0; node < n; ++node) {
    if (cluster.host(node).contains(commit_key(cfg_.key_namespace, version)))
      continue;
    if (cfg_.verify_integrity) {
      const int row = plan.generator_row_of_node(node);
      Buffer sums(static_cast<std::size_t>(per_chunk) * B * 8,
                  Buffer::Init::kUninitialized);
      for (int j = 0; j < per_chunk; ++j) {
        for (int b = 0; b < static_cast<int>(B); ++b) {
          const std::uint64_t crc = crc64(
              cluster.host(node)
                  .get(row_key(cfg_.key_namespace, version,
                               plan.generator_row_of_node(node), j, b))
                  .span());
          std::memcpy(sums.data() +
                          (static_cast<std::size_t>(j) * B +
                           static_cast<std::size_t>(b)) *
                              8,
                      &crc, 8);
        }
      }
      (void)row;
      cluster.host(node).put(sums_key(cfg_.key_namespace, version),
                             std::move(sums));
    }
    cluster.host(node).put(commit_key(cfg_.key_namespace, version),
                           Buffer::copy_of(as_bytes_of(version)));
  }

  rep.success = true;
  rep.resume_time = resume;
  rep.total_time = total;
  if (remote_rescued_rows > 0)
    rep.detail = "remote fallback (refetched " +
                 std::to_string(remote_rescued_rows) +
                 " rows from remote storage)";
  else if (data_lost)
    rep.detail = "workflow B (decoded " + std::to_string(missing_rows.size()) +
                 " rows)";
  else
    rep.detail = "workflow A (all data nodes survived)";
  finalize_stats();
  return rep;
}

}  // namespace eccheck::core
