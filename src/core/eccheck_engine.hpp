// ECCheck: erasure-coded in-memory checkpointing engine (paper §III–§IV).
//
// save() runs the four-step protocol of Fig. 5:
//   1. decompose each worker's state_dict and snapshot tensor data to host
//      memory (the only training-blocking part);
//   2. broadcast the two tiny serialized components (metadata, tensor keys)
//      to every node;
//   3. asynchronously encode / XOR-reduce / P2P-transfer the packed packets
//      so that data node c ends up with data chunk c and parity node r with
//      parity chunk r — communication is packed into profiled network-idle
//      windows and the three stages pipeline across packets;
//   4. optionally flush chunks to remote persistent storage (low frequency,
//      catastrophic-failure insurance).
//
// load() implements the two recovery workflows of Fig. 7:
//   A. all data nodes survive — replaced nodes are refilled by plain P2P
//      from data nodes, lost parity chunks are re-encoded;
//   B. data chunks were lost — any k surviving chunks are decoded with the
//      inverted generator submatrix (a distributed pass structurally
//      identical to encoding), training resumes as soon as every worker has
//      its packets, then redundancy is restored.
// If more than m nodes failed, load falls back to the remote flush when one
// exists, and reports failure otherwise.
#pragma once

#include <memory>
#include <optional>

#include "ckpt/engine.hpp"
#include "cluster/slice.hpp"
#include "core/placement.hpp"
#include "core/protocol.hpp"
#include "ec/crs_codec.hpp"

namespace eccheck::core {

struct ECCheckConfig {
  int k = 2;  ///< data nodes
  int m = 2;  ///< parity nodes; k + m must equal the cluster's node count
  int gf_width = 8;
  ec::KernelMode kernel = ec::KernelMode::kGfTable;

  /// Coding buffer size (the paper reserves 64 MB buffers; tests shrink it).
  std::size_t packet_size = mib(64);

  /// Schedule checkpoint communication inside profiled network-idle windows
  /// (§IV-B3). Disabling it is the interference ablation.
  bool idle_aware_comm = true;

  /// Pipeline encode → XOR-reduce → P2P per packet (§IV-C). Disabling
  /// inserts a barrier after the encode stage (ablation).
  bool pipelined = true;

  /// Step 4: also persist chunks to remote storage during save.
  bool flush_to_remote = false;

  /// Use the remote copy (if any) when more than m nodes failed.
  bool remote_fallback = true;

  /// Store per-packet CRC64s with each chunk and scrub them during load:
  /// silently corrupted chunks are treated as erasures and decoded around,
  /// exactly like a failed node (production bit-rot protection).
  bool verify_integrity = true;

  /// Combine XOR-reduction partials in a binary tree instead of a chain:
  /// ⌈log2 k⌉ network hops of latency instead of k−1 (matters for large k).
  bool tree_reduction = false;

  /// Real threads for the engine's data plane (packet encoding/decoding);
  /// 0 = serial. Timing is unaffected (virtual time comes from the cost
  /// model) — this exercises the §IV-A thread-pool path on real bytes.
  int data_plane_threads = 2;

  /// Incremental checkpointing (ECRM-style delta saves). When enabled, the
  /// fabric save path keeps a copy of the last committed version's packed
  /// packets next to each worker (≈2× host memory for staging), diffs each
  /// new save against it at `granularity`-byte chunks, ships only the dirty
  /// regions, and patches data rows (XOR) and parity rows (P' = P ⊕ G·Δ,
  /// ec::CrsCodec::update_row) in place of a full re-encode. Falls back to
  /// the full four-step protocol — transparently and bit-identically — when
  /// no usable base exists (first save, post-rollback, shape change,
  /// degraded membership) or the global dirty ratio exceeds
  /// `max_dirty_ratio`. Saved versions are byte-identical to full-encode
  /// saves either way.
  struct DeltaConfig {
    bool enabled = false;
    /// Dirty-tracking chunk size in bytes; rounded up internally to 8 bytes
    /// so regions stay symbol- and strip-offset aligned for every (w, mode).
    std::size_t granularity = 4096;
    /// Above this fraction of dirty bytes a delta save would move more data
    /// than re-encoding (each dirty byte travels to 1 data + m parity
    /// nodes) — fall back to the full path instead.
    double max_dirty_ratio = 0.35;
  };
  DeltaConfig delta;

  /// Prefix for all store keys — lets several engines (the per-group
  /// instances of GroupedECCheckEngine) share the remote store without
  /// collisions.
  std::string key_namespace;
};

class ECCheckEngine final : public ckpt::CheckpointEngine {
 public:
  explicit ECCheckEngine(ECCheckConfig cfg);

  std::string name() const override { return "eccheck"; }
  const ECCheckConfig& config() const { return cfg_; }

  /// The communication plan for a given cluster shape (exposed for tests
  /// and the placement ablation bench).
  Placement plan_for(const cluster::VirtualCluster& cluster) const;
  Placement plan_for(int num_nodes, int gpus_per_node) const;

  ckpt::SaveReport save(cluster::VirtualCluster& cluster,
                        const std::vector<dnn::StateDict>& shards,
                        std::int64_t version) override;
  ckpt::LoadReport load(cluster::VirtualCluster& cluster, std::int64_t version,
                        std::vector<dnn::StateDict>& out) override;

  /// Fabric-generic SPMD entry points (core/fabric_engine.hpp): the same
  /// protocol over cluster::Fabric, byte-identical to the simulator path.
  ckpt::SaveReport save(cluster::Fabric& fabric,
                        const std::vector<const dnn::StateDict*>& shards,
                        std::int64_t version) override;
  ckpt::LoadReport load(cluster::Fabric& fabric, std::int64_t version,
                        std::vector<dnn::StateDict>& out) override;

  /// Slice-based entry points: the same protocol over a window of nodes,
  /// sharing the enclosing cluster's timeline (group-based mode, §VI).
  ckpt::SaveReport save_slice(cluster::ClusterSlice cluster,
                              std::span<const dnn::StateDict> shards,
                              std::int64_t version);
  ckpt::LoadReport load_slice(cluster::ClusterSlice cluster,
                              std::int64_t version,
                              std::vector<dnn::StateDict>& out);

 private:
  struct SaveContext;
  struct LoadContext;

  ECCheckConfig cfg_;
};

}  // namespace eccheck::core
