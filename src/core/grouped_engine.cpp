#include "core/grouped_engine.hpp"

#include <algorithm>

namespace eccheck::core {

GroupedECCheckEngine::GroupedECCheckEngine(GroupedConfig cfg) : cfg_(cfg) {
  ECC_CHECK(cfg_.group_size >= 2);
  ECC_CHECK_MSG(cfg_.per_group.k + cfg_.per_group.m == cfg_.group_size,
                "per-group k + m must equal group_size");
}

int GroupedECCheckEngine::num_groups(
    const cluster::VirtualCluster& cluster) const {
  ECC_CHECK_MSG(cluster.num_nodes() % cfg_.group_size == 0,
                "node count " << cluster.num_nodes()
                              << " not divisible by group size "
                              << cfg_.group_size);
  return cluster.num_nodes() / cfg_.group_size;
}

std::vector<int> GroupedECCheckEngine::group_nodes(
    const cluster::VirtualCluster& cluster, int g) const {
  ECC_CHECK(g >= 0 && g < num_groups(cluster));
  std::vector<int> out;
  for (int n = g * cfg_.group_size; n < (g + 1) * cfg_.group_size; ++n)
    out.push_back(n);
  return out;
}

ckpt::SaveReport GroupedECCheckEngine::save(
    cluster::VirtualCluster& cluster, const std::vector<dnn::StateDict>& shards,
    std::int64_t version) {
  ECC_CHECK(static_cast<int>(shards.size()) == cluster.world_size());
  const int groups = num_groups(cluster);
  const int workers_per_group = cfg_.group_size * cluster.gpus_per_node();

  cluster.reset_timeline();
  ckpt::SaveReport merged;
  for (int g = 0; g < groups; ++g) {
    ECCheckConfig ec = cfg_.per_group;
    ec.key_namespace = "grp" + std::to_string(g) + "/";
    ECCheckEngine engine(ec);
    cluster::ClusterSlice slice(cluster, g * cfg_.group_size, cfg_.group_size,
                                /*owns_timeline=*/false);
    std::span<const dnn::StateDict> group_shards(
        shards.data() + static_cast<std::size_t>(g) * workers_per_group,
        static_cast<std::size_t>(workers_per_group));
    ckpt::SaveReport rep = engine.save_slice(slice, group_shards, version);

    merged.stall_time = std::max(merged.stall_time, rep.stall_time);
    merged.total_time = std::max(merged.total_time, rep.total_time);
    merged.network_bytes += rep.network_bytes;
    merged.remote_bytes += rep.remote_bytes;
    for (const auto& [k, v] : rep.breakdown)
      merged.breakdown[k] = std::max(merged.breakdown[k], v);
    for (const auto& [k, v] : rep.stats) merged.stats[k] += v;
  }
  return merged;
}

ckpt::LoadReport GroupedECCheckEngine::load(cluster::VirtualCluster& cluster,
                                            std::int64_t version,
                                            std::vector<dnn::StateDict>& out) {
  const int groups = num_groups(cluster);
  const int workers_per_group = cfg_.group_size * cluster.gpus_per_node();

  cluster.reset_timeline();
  out.clear();
  out.resize(static_cast<std::size_t>(cluster.world_size()));

  ckpt::LoadReport merged;
  merged.success = true;
  for (int g = 0; g < groups; ++g) {
    ECCheckConfig ec = cfg_.per_group;
    ec.key_namespace = "grp" + std::to_string(g) + "/";
    ECCheckEngine engine(ec);
    cluster::ClusterSlice slice(cluster, g * cfg_.group_size, cfg_.group_size,
                                /*owns_timeline=*/false);
    std::vector<dnn::StateDict> group_out;
    ckpt::LoadReport rep = engine.load_slice(slice, version, group_out);
    if (!rep.success) {
      merged.success = false;
      merged.detail = "group " + std::to_string(g) + ": " + rep.detail;
      return merged;
    }
    for (int w = 0; w < workers_per_group; ++w)
      out[static_cast<std::size_t>(g * workers_per_group + w)] =
          std::move(group_out[static_cast<std::size_t>(w)]);
    merged.resume_time = std::max(merged.resume_time, rep.resume_time);
    merged.total_time = std::max(merged.total_time, rep.total_time);
    for (const auto& [k, v] : rep.stats) merged.stats[k] += v;
  }
  merged.detail = "recovered across " + std::to_string(groups) + " groups";
  return merged;
}

}  // namespace eccheck::core
