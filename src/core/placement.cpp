#include "core/placement.hpp"

#include <algorithm>
#include <tuple>

namespace eccheck::core {

std::vector<int> max_overlap_pairing(const std::vector<IndexInterval>& origin,
                                     const std::vector<IndexInterval>& data) {
  // Sweep over the sorted, disjoint interval sets with two cursors,
  // enumerating every intersecting (origin, data) pair exactly once — the
  // sweep line visits each interval endpoint in order, so the candidate list
  // is O(|origin| + |data|) long.
  struct Candidate {
    int ov;
    int data_idx;
    int origin_idx;
  };
  std::vector<Candidate> candidates;
  std::size_t i = 0, j = 0;
  while (i < origin.size() && j < data.size()) {
    int ov = overlap(origin[i], data[j]);
    if (ov > 0)
      candidates.push_back({ov, static_cast<int>(j), static_cast<int>(i)});
    // Advance whichever interval ends first.
    if (origin[i].end <= data[j].end)
      ++i;
    else
      ++j;
  }

  // Greedy maximum-overlap assignment: largest overlaps first, each origin
  // interval used at most once (two data chunks cannot share a node).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return std::tie(b.ov, a.data_idx, a.origin_idx) <
                     std::tie(a.ov, b.data_idx, b.origin_idx);
            });
  std::vector<int> assignment(data.size(), -1);
  std::vector<bool> origin_used(origin.size(), false);
  for (const auto& c : candidates) {
    auto d = static_cast<std::size_t>(c.data_idx);
    auto o = static_cast<std::size_t>(c.origin_idx);
    if (assignment[d] >= 0 || origin_used[o]) continue;
    assignment[d] = c.origin_idx;
    origin_used[o] = true;
  }
  // Any data chunk left unmatched (possible only when overlaps collide)
  // takes the lowest unused origin interval.
  for (std::size_t d = 0; d < assignment.size(); ++d) {
    if (assignment[d] >= 0) continue;
    for (std::size_t o = 0; o < origin.size(); ++o) {
      if (!origin_used[o]) {
        assignment[d] = static_cast<int>(o);
        origin_used[o] = true;
        break;
      }
    }
    ECC_CHECK_MSG(assignment[d] >= 0, "more data chunks than nodes");
  }
  return assignment;
}

bool Placement::is_data_node(int node) const {
  return std::find(data_nodes.begin(), data_nodes.end(), node) !=
         data_nodes.end();
}

bool Placement::is_parity_node(int node) const {
  return std::find(parity_nodes.begin(), parity_nodes.end(), node) !=
         parity_nodes.end();
}

int Placement::generator_row_of_node(int node) const {
  for (std::size_t c = 0; c < data_nodes.size(); ++c)
    if (data_nodes[c] == node) return static_cast<int>(c);
  for (std::size_t r = 0; r < parity_nodes.size(); ++r)
    if (parity_nodes[r] == node) return config.k + static_cast<int>(r);
  ECC_CHECK_MSG(false, "node " << node << " has no chunk role");
  return -1;
}

Placement plan_placement(const PlacementConfig& cfg) {
  ECC_CHECK(cfg.num_nodes >= 1 && cfg.gpus_per_node >= 1);
  ECC_CHECK_MSG(cfg.k >= 1 && cfg.m >= 0 && cfg.k + cfg.m == cfg.num_nodes,
                "need k + m == num_nodes (one chunk per node)");
  const int W = cfg.num_nodes * cfg.gpus_per_node;
  ECC_CHECK_MSG(W % cfg.k == 0,
                "world size " << W << " not divisible by k=" << cfg.k);
  const int per_chunk = W / cfg.k;

  Placement p;
  p.config = cfg;

  // origin_group: physical node intervals; data_group: logical chunks.
  std::vector<IndexInterval> origin, data;
  for (int n = 0; n < cfg.num_nodes; ++n)
    origin.push_back({n * cfg.gpus_per_node, (n + 1) * cfg.gpus_per_node});
  for (int c = 0; c < cfg.k; ++c)
    data.push_back({c * per_chunk, (c + 1) * per_chunk});

  p.data_nodes = max_overlap_pairing(origin, data);
  std::vector<bool> is_data(static_cast<std::size_t>(cfg.num_nodes), false);
  for (int n : p.data_nodes) is_data[static_cast<std::size_t>(n)] = true;
  for (int n = 0; n < cfg.num_nodes; ++n)
    if (!is_data[static_cast<std::size_t>(n)]) p.parity_nodes.push_back(n);
  ECC_CHECK(static_cast<int>(p.parity_nodes.size()) == cfg.m);

  // Reduction groups and targets (§IV-B2).
  for (int j = 0; j < per_chunk; ++j) {
    std::vector<int> participants;
    for (int c = 0; c < cfg.k; ++c) participants.push_back(c * per_chunk + j);

    for (int r = 0; r < cfg.m; ++r) {
      ReductionOp op;
      op.group = j;
      op.parity_row = r;
      op.participants = participants;
      op.dest_node = p.parity_nodes[static_cast<std::size_t>(r)];

      int target = -1;
      for (int w : participants) {
        if (node_of(cfg, w) == op.dest_node) {
          target = w;  // result lands directly on its parity node
          break;
        }
      }
      if (target < 0) {
        int idx;
        if (cfg.k == cfg.m) {
          idx = r;  // one result per worker
        } else if (cfg.k > cfg.m) {
          idx = r * (cfg.k / cfg.m);  // spread at ⌊k/m⌋ intervals
        } else {
          idx = r % cfg.k;  // round robin, some workers take several
        }
        target = participants[static_cast<std::size_t>(idx)];
      }
      op.target_worker = target;
      p.reductions.push_back(std::move(op));
    }
  }

  // P2P step: data packets that are not already on their data node.
  for (int w = 0; w < W; ++w) {
    const int c = w / per_chunk;
    const int src = node_of(cfg, w);
    const int dst = p.data_nodes[static_cast<std::size_t>(c)];
    if (src != dst)
      p.transfers.push_back(
          {P2PTransfer::Kind::kDataPacket, c, w, src, dst});
  }
  // Parity packets whose reduction target is not on the parity node.
  for (const auto& op : p.reductions) {
    const int src = node_of(cfg, op.target_worker);
    if (src != op.dest_node)
      p.transfers.push_back({P2PTransfer::Kind::kParityPacket, op.parity_row,
                             op.target_worker, src, op.dest_node});
  }
  return p;
}

CommVolume nominal_comm_volume(const Placement& p, double shard_bytes) {
  CommVolume v;
  const int k = p.config.k;
  v.xor_reduction_bytes =
      static_cast<double>(p.reductions.size()) * (k - 1) * shard_bytes;
  v.p2p_bytes = static_cast<double>(p.transfers.size()) * shard_bytes;
  return v;
}

CommVolume actual_comm_volume(const Placement& p, double shard_bytes) {
  CommVolume v;
  for (const auto& op : p.reductions) {
    // Chain reduce ending at the target: participants forward accumulated
    // packets in order; hops between co-located workers are free.
    std::vector<int> chain;
    for (int w : op.participants)
      if (w != op.target_worker) chain.push_back(w);
    chain.push_back(op.target_worker);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      if (node_of(p.config, chain[i]) != node_of(p.config, chain[i + 1]))
        v.xor_reduction_bytes += shard_bytes;
    }
  }
  v.p2p_bytes = static_cast<double>(p.transfers.size()) * shard_bytes;
  return v;
}

}  // namespace eccheck::core
