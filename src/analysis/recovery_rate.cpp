#include "analysis/recovery_rate.hpp"

#include <cmath>

#include "common/check.hpp"

namespace eccheck::analysis {

double binomial(int n, int k) {
  ECC_CHECK(n >= 0 && k >= 0);
  if (k > n) return 0;
  k = std::min(k, n - k);
  double r = 1;
  for (int i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

double replication_group_rate(int group_size, double p) {
  ECC_CHECK(group_size >= 1);
  // Full intra-group replication: data lost only if every member fails.
  return 1.0 - std::pow(p, group_size);
}

double erasure_group_rate(int n, int m, double p) {
  ECC_CHECK(n >= 1 && m >= 0 && m <= n);
  double r = 0;
  for (int i = 0; i <= m; ++i)
    r += binomial(n, i) * std::pow(p, i) * std::pow(1 - p, n - i);
  return r;
}

double eqn1_replication_rate(double p) {
  const double q = 1 - p;
  return std::pow(q, 4) + binomial(4, 1) * p * q * q * q +
         (binomial(4, 2) - 2) * p * p * q * q;
}

double eqn2_erasure_rate(double p) { return erasure_group_rate(4, 2, p); }

double cluster_rate(double group_rate, int num_groups) {
  ECC_CHECK(num_groups >= 1);
  return std::pow(group_rate, num_groups);
}

FaultToleranceComparison compare_at_equal_redundancy(int n, double p) {
  ECC_CHECK_MSG(n >= 2 && n % 2 == 0, "need even n for k = m = n/2");
  FaultToleranceComparison c;
  c.n = n;
  c.p = p;
  c.eccheck_rate = erasure_group_rate(n, n / 2, p);
  // base3: n/2 replication groups of 2 — every group must keep ≥1 copy.
  c.replication_rate = cluster_rate(replication_group_rate(2, p), n / 2);
  return c;
}

std::vector<GroupTradeoff> group_tradeoff_table(
    int total_nodes, double p, const std::vector<int>& group_sizes) {
  std::vector<GroupTradeoff> out;
  for (int g : group_sizes) {
    if (g < 2 || g % 2 != 0 || total_nodes % g != 0) continue;
    GroupTradeoff t;
    t.group_size = g;
    t.num_groups = total_nodes / g;
    t.cluster_recovery_rate =
        cluster_rate(erasure_group_rate(g, g / 2, p), t.num_groups);
    t.per_device_comm_factor = g / 2.0;  // m·s with m = g/2
    out.push_back(t);
  }
  return out;
}

int optimal_group_size(int total_nodes, double p, double target_rate,
                       const std::vector<int>& candidate_sizes) {
  auto table = group_tradeoff_table(total_nodes, p, candidate_sizes);
  int best = 0;
  double best_comm = 1e300;
  for (const auto& t : table) {
    if (t.cluster_recovery_rate >= target_rate &&
        t.per_device_comm_factor < best_comm) {
      best = t.group_size;
      best_comm = t.per_device_comm_factor;
    }
  }
  return best;
}

}  // namespace eccheck::analysis
