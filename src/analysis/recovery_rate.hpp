// Closed-form fault-tolerance analysis (paper §II-B Eqns. 1–2, Figs. 3/15,
// and the §VI group-size discussion).
//
// Node failures are independent with per-node probability p (refs [31][11]).
// A replication group survives unless *all* of its members fail (each member
// holds every shard in the group); an erasure-coded group of n = k + m nodes
// survives any ≤ m failures. Cluster-level rates are products over groups.
#pragma once

#include <vector>

namespace eccheck::analysis {

/// C(n, k) as double (exact for the ranges used here).
double binomial(int n, int k);

/// P(recover) for one replication group of `group_size` nodes.
double replication_group_rate(int group_size, double p);

/// P(recover) for one erasure-coded group of n nodes with m parity nodes:
/// Σ_{i=0..m} C(n,i) p^i (1-p)^(n-i)   (Eqn. 2 generalised).
double erasure_group_rate(int n, int m, double p);

/// Eqn. 1: a 4-node section organised as two replication groups of 2.
double eqn1_replication_rate(double p);
/// Eqn. 2: a 4-node erasure-coded section with m = 2.
double eqn2_erasure_rate(double p);

/// Whole-cluster rate: every group must recover.
double cluster_rate(double group_rate, int num_groups);

/// Fig. 15 comparison at identical redundancy (k = m = n/2): ECCheck vs
/// GEMINI-style replication with groups of 2 inside the n nodes.
struct FaultToleranceComparison {
  int n = 0;
  double p = 0;
  double eccheck_rate = 0;
  double replication_rate = 0;
};
FaultToleranceComparison compare_at_equal_redundancy(int n, double p);

/// §VI group-based scaling: divide `total_nodes` into groups of g (half
/// data, half parity inside each group) and run ECCheck per group. Larger
/// groups tolerate more correlated failures but raise per-device
/// communication (m·s with m = g/2).
struct GroupTradeoff {
  int group_size = 0;
  int num_groups = 0;
  double cluster_recovery_rate = 0;
  double per_device_comm_factor = 0;  ///< in units of shard size s (== g/2)
};
std::vector<GroupTradeoff> group_tradeoff_table(
    int total_nodes, double p, const std::vector<int>& group_sizes);

/// Smallest (cheapest-communication) group size whose cluster recovery rate
/// meets `target_rate`; returns 0 if none does.
int optimal_group_size(int total_nodes, double p, double target_rate,
                       const std::vector<int>& candidate_sizes);

}  // namespace eccheck::analysis
