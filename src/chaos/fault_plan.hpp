// FaultPlan: deterministic mid-operation failure injection.
//
// A FaultPlan installs as the cluster's FaultHook and counts every
// byte-moving fabric operation. Armed triggers name an absolute operation
// index; when the counter reaches it, the plan kill()s the target node at
// the *start* of that fabric op — before its bytes land — so the enclosing
// engine operation aborts with realistic partial state (everything already
// committed stays, nothing after the fault arrives, no commit marker).
//
// The operation counter runs for the cluster's lifetime and is never reset,
// so a trigger's placement is reproducible from (seed, armed offset) alone:
// the chaos schedule generator derives offsets from a campaign seed and the
// ChaosRunner arms them relative to op_count() at arm time.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"

namespace eccheck::chaos {

/// Kill `node` at the start of the fabric op with absolute index `at_op`
/// (indices are 0-based and assigned in call order).
struct Trigger {
  std::uint64_t at_op = 0;
  int node = 0;
};

/// Record of a trigger that actually fired.
struct Fired {
  std::uint64_t at_op = 0;  ///< op index the kill landed on
  int node = 0;
  cluster::FabricOp::Kind during = cluster::FabricOp::Kind::kNetSend;
};

class FaultPlan final : public cluster::FaultHook {
 public:
  /// Replace the armed trigger set. Triggers whose at_op is already in the
  /// past fire on the very next fabric op.
  void arm(std::vector<Trigger> triggers) { armed_ = std::move(triggers); }

  /// Drop all armed (unfired) triggers.
  void disarm() { armed_.clear(); }

  bool armed() const { return !armed_.empty(); }

  /// Index the next fabric op will be assigned.
  std::uint64_t op_count() const { return op_count_; }

  /// Kills that actually landed since the last clear_fired().
  const std::vector<Fired>& fired() const { return fired_; }
  void clear_fired() { fired_.clear(); }

  void on_fabric_op(cluster::VirtualCluster& cluster,
                    const cluster::FabricOp& op) override;

 private:
  std::vector<Trigger> armed_;
  std::vector<Fired> fired_;
  std::uint64_t op_count_ = 0;
};

}  // namespace eccheck::chaos
