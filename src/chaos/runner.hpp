// ChaosRunner: drives a Session through randomized
// train → save → fail → detect → replace → load cycles and checks recovery
// invariants after every event.
//
// The runner owns the whole stack — a VirtualCluster with a FaultPlan
// installed as its fault hook, and a Session over a small synthetic model —
// plus an *independent oracle* of what must be recoverable: golden shard
// digests for every attempted save, and per-version intact-node counts
// scanned directly from the stores (commit marker + full row-key count,
// minus known-corrupted chunks). The oracle is deliberately conservative
// (it treats a whole chunk as lost when one packet was corrupted), so the
// engine is allowed to do better than it predicts but never worse.
//
// Invariant catalogue (each violation carries the campaign seed):
//   bitexact            a successful load returns the exact digests recorded
//                       when that version was saved — no silent corruption;
//   newest_recoverable  load never falls back past the newest version the
//                       oracle can prove recoverable;
//   availability        if the oracle proves any retained version
//                       recoverable, load must not fail;
//   monotone_version    the loaded version is in [1, latest_version];
//   redundancy          after a fully-clean successful load, every node
//                       again holds a committed, complete chunk (workflow B
//                       restored parity redundancy);
//   detection_bounds    quorum-confirmed detection happens strictly after
//                       the failure and within max_latency();
//   recovery_stuck      the detect/replace/load loop converges in a bounded
//                       number of attempts even with mid-load kills.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/schedule.hpp"
#include "core/session.hpp"
#include "obs/stats.hpp"

namespace eccheck::chaos {

struct CampaignSummary {
  std::uint64_t seed = 0;
  std::size_t events = 0;
  std::size_t saves = 0;
  std::size_t torn_saves = 0;  ///< saves aborted by a mid-operation kill
  std::size_t loads = 0;
  std::size_t aborted_loads = 0;  ///< loads aborted by a mid-operation kill
  std::size_t kills = 0;          ///< clean (between-operation) kills
  std::size_t mid_op_kills = 0;   ///< kills fired inside a fabric-op window
  std::size_t corruptions = 0;
  std::size_t recoveries = 0;     ///< recovery passes that had dead nodes
  std::size_t fallbacks = 0;      ///< loads that returned an older version
  std::size_t remote_rescues = 0; ///< loads only possible via the remote copy
  std::size_t unrecoverable = 0;  ///< loads where nothing was loadable
  std::size_t violations = 0;
  std::vector<std::string> violation_messages;
  obs::HistSummary detect_latency;  ///< failure → quorum confirmation (s)
  obs::HistSummary resume_latency;  ///< load start → training resumable (s)

  /// One-line JSON object (seed, counters, latency summaries, messages).
  std::string to_json() const;
};

class ChaosRunner {
 public:
  /// `jsonl`, when non-null, receives one JSON line per executed event and
  /// per violation (replayable: every line carries the seed).
  explicit ChaosRunner(const ChaosConfig& cfg, std::ostream* jsonl = nullptr);
  ~ChaosRunner();
  ChaosRunner(const ChaosRunner&) = delete;
  ChaosRunner& operator=(const ChaosRunner&) = delete;

  /// Generate the schedule from cfg.seed and execute every event.
  const CampaignSummary& run();

  /// Execute one event (exposed so tests can drive hand-built schedules).
  void run_event(const ChaosEvent& ev, std::size_t index);

  // ---- introspection / test hooks ---------------------------------------
  cluster::VirtualCluster& cluster() { return cluster_; }
  core::Session& session() { return *session_; }
  FaultPlan& plan() { return plan_; }
  const CampaignSummary& summary() const { return summary_; }

  /// Clean save of the next iteration's shards; returns the version, or -1
  /// if the save was torn by an armed trigger.
  std::int64_t force_save();

  /// One detect → replace → load pass with default detector parameters.
  void force_recovery();

 private:
  std::vector<dnn::StateDict> make_shards();
  /// Map raw picks onto distinct currently-alive nodes, never selecting the
  /// last alive node (detection needs one observer).
  std::vector<int> resolve_kills(const std::vector<std::uint64_t>& picks);
  std::size_t collect_fired();
  void scrub_stale_tmp_keys();
  void ensure_healthy(const ChaosEvent& ev);
  std::int64_t attempt_save(const ChaosEvent* mid_save);
  void recover(const ChaosEvent& ev, const ChaosEvent* mid_load);
  void corrupt_event(const ChaosEvent& ev);

  bool node_intact(int node, std::int64_t version);
  int intact_count(std::int64_t version);
  bool remote_committed(std::int64_t version);
  std::int64_t oracle_first_recoverable();

  void violation(const std::string& invariant, const std::string& message);
  void emit_event_line(const ChaosEvent& ev, std::size_t index);

  ChaosConfig cfg_;
  std::ostream* jsonl_ = nullptr;
  cluster::VirtualCluster cluster_;
  dnn::ModelSpec model_;
  dnn::ParallelismSpec par_;
  std::optional<core::Session> session_;
  FaultPlan plan_;
  CampaignSummary summary_;
  std::string ns_;  ///< engine key namespace

  Seconds clock_ = 0;  ///< campaign virtual time
  std::int64_t iteration_ = 0;
  std::size_t cur_event_ = 0;
  std::map<int, Seconds> pending_fail_time_;  ///< dead node → failure clock
  std::map<std::int64_t, std::vector<std::uint64_t>> golden_;
  std::set<std::pair<std::int64_t, int>> corrupted_;  ///< (version, node)
  std::size_t expected_row_keys_ = 0;  ///< per-node row keys of a clean save
  std::uint64_t probe_save_ops_ = 0;   ///< fabric ops of one clean save
  std::uint64_t probe_load_ops_ = 0;   ///< fabric ops of one clean load
};

}  // namespace eccheck::chaos
