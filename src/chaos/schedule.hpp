// Chaos schedule generation: a randomized failure plan, deterministic from
// a single uint64 seed.
//
// A schedule is a flat list of events the ChaosRunner executes in order:
// training intervals, checkpoint saves, independent kills, correlated
// rack-burst kills (sometimes deliberately catastrophic, > m concurrent),
// kills armed *inside* save/load windows, silent chunk corruption, and
// explicit recovery passes. Every event also carries a swept
// failure-detector configuration (heartbeat/timeout/quorum) and a
// replacement-provisioning delay, so detection latency is exercised across
// its parameter space rather than at one default.
//
// Determinism contract: generate_schedule(cfg) depends only on cfg — two
// calls with the same config produce identical schedules, which is what
// makes a failing campaign replayable from the seed its report prints.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace eccheck::chaos {

enum class EventKind {
  kTrain,        ///< advance the campaign clock (training progresses)
  kSave,         ///< checkpoint the current iteration
  kKill,         ///< fail node(s) cleanly between operations
  kMidSaveKill,  ///< arm a kill inside the next save's fabric-op window
  kMidLoadKill,  ///< kill a node, then arm another kill inside the load
  kCorrupt,      ///< flip one byte of a stored chunk (silent bit-rot)
  kRecover,      ///< detect → replace → load, asserting invariants
};

const char* event_kind_name(EventKind kind);

struct ChaosEvent {
  EventKind kind = EventKind::kTrain;

  /// Raw uniform draws; the runner maps them onto the currently-alive node
  /// set at execution time (the schedule cannot know which nodes are alive).
  std::vector<std::uint64_t> picks;

  /// Where inside the operation's fabric-op window a mid-op kill arms,
  /// as a fraction of the probed op count.
  double op_frac = 0.5;

  // Failure-detector sweep for any detection this event causes.
  Seconds detect_heartbeat = 0.5;
  Seconds detect_timeout = 2.0;
  int detect_quorum = 1;

  /// Provisioning delay between detection and the replacement node.
  Seconds replace_delay = 1.0;

  /// Clock advance for kTrain events.
  Seconds train_seconds = 1.0;
};

struct ChaosConfig {
  int num_nodes = 4;
  int gpus_per_node = 2;
  int k = 2;  ///< data nodes (k + m must equal num_nodes)
  int m = 2;  ///< parity nodes
  int events = 64;
  std::uint64_t seed = 1;

  bool flush_to_remote = false;
  /// CRC scrubbing during load. Campaigns keep it on; turning it off is the
  /// negative control — silent corruption must then surface as a bit-exact
  /// invariant violation instead of being decoded around.
  bool verify_integrity = true;
  int retain_versions = 2;
  std::size_t packet_size = kib(8);

  // Event-mix weights (relative; zero removes the kind from the draw).
  double w_train = 3;
  double w_save = 4;
  double w_kill = 2;
  double w_burst = 1;
  double w_mid_save = 2;
  double w_mid_load = 1;
  double w_corrupt = 1;
  double w_recover = 2;
};

/// Deterministic schedule: first event is always a save (so there is state
/// to lose), last is always a recovery pass (so every campaign ends with a
/// verified load).
std::vector<ChaosEvent> generate_schedule(const ChaosConfig& cfg);

}  // namespace eccheck::chaos
