#include "chaos/fault_plan.hpp"

namespace eccheck::chaos {

void FaultPlan::on_fabric_op(cluster::VirtualCluster& cluster,
                             const cluster::FabricOp& op) {
  const std::uint64_t at = op_count_++;
  if (armed_.empty()) return;
  for (auto it = armed_.begin(); it != armed_.end();) {
    if (it->at_op <= at) {
      // A trigger aimed at a node that already died (e.g. two triggers on
      // the same slot) is consumed without firing: a slot fails at most
      // once per replace.
      if (cluster.alive(it->node)) {
        cluster.kill(it->node);
        fired_.push_back({at, it->node, op.kind});
      }
      it = armed_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace eccheck::chaos
