// SocketCampaign: process-level chaos against the live checkpoint service.
//
// Where ChaosRunner drives a VirtualCluster in one process, this campaign
// forks a real coordinator and k+m real worker daemons talking UDS sockets,
// then executes a seeded chaos::generate_schedule against them with actual
// signals:
//
//   kKill        → SIGKILL (hard death: probes see connection refused) or
//                  SIGSTOP (gray: the process accepts via its backlog but
//                  never beats), alternating so every campaign exercises
//                  both; capped so dead ranks never exceed m;
//   kMidSaveKill → the kill lands inside a save's fabric-op window;
//   kCorrupt     → `inject corrupt` arms a one-byte payload flip on a live
//                  worker's next fabric frame (genuine wire CRC mismatch);
//   kSave/kTrain → client save / wall-clock delay;
//   kRecover     → SIGCONT any stopped corpse (it must fence-exit), fork
//                  replacements onto the dead ranks' endpoints, and wait
//                  for the repair controller to restore full m-redundancy
//                  without restarting survivors.
//
// UDS only: a SIGSTOP'd process keeps its TCP port alive, so a TCP
// replacement could never rebind it — the unlink-and-rebind semantics of
// UDS paths are what make gray-failure replacement possible at all.
//
// The driver is its own oracle: shard content is a pure function of
// (job, iteration), so every save/load response's digests are checked
// against the closed form. Invariants, each violation carrying the seed:
//
//   bitexact      save/load digests equal the closed-form digests and
//                 cover every worker (dead ranks' shards included — the
//                 adopter serves them during degraded windows);
//   monotone      committed versions strictly increase;
//   availability  once deaths are declared and dead ≤ m, load succeeds;
//   fencing       a resurrected (SIGCONT'd) corpse exits on its first
//                 fenced beat and never commits anything;
//   repair        every recovery converges within its deadline to all
//                 ranks alive at full effective redundancy.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <sys/types.h>

#include "net/retry_policy.hpp"
#include "net/socket.hpp"

namespace eccheck::chaos {

struct SocketCampaignConfig {
  int k = 2;
  int m = 2;  ///< world = k + m worker processes
  int events = 16;
  std::uint64_t seed = 1;
  std::string dir;  ///< scratch directory for the UDS sockets (required)
  std::string job = "chaos";

  // Liveness cadence, deliberately fast so campaigns stay short.
  net::Millis heartbeat_period{100};
  net::Millis heartbeat_timeout{600};
  int suspect_probes = 2;

  net::Millis worker_io_timeout{2000};   ///< bounds a torn collective
  net::Millis client_io_timeout{20000};  ///< bounds one client request
  /// Ack window for the workers' fabric data plane. Wide windows put the
  /// injected corrupt frame *inside* an open window, exercising deferred
  /// (flush/barrier-time) failure surfacing under chaos; 1 = stop-and-wait.
  int ack_window = 8;
  double train_scale = 0.02;  ///< kTrain virtual seconds → real seconds
  bool verbose = false;       ///< narrate events to stderr
  /// Kill kinds alternate; this picks the first one (true = SIGSTOP, the
  /// gray-failure-first bias of `chaos_cli --mode gray`).
  bool first_kill_gray = false;
};

struct SocketCampaignSummary {
  std::uint64_t seed = 0;
  std::size_t events = 0;
  std::size_t saves_ok = 0;
  std::size_t saves_failed = 0;    ///< torn/refused saves (expected noise)
  std::size_t degraded_saves = 0;  ///< committed with dead ranks
  std::size_t degraded_loads = 0;  ///< served while under-replicated
  std::size_t loads_ok = 0;
  std::size_t sigkills = 0;
  std::size_t sigstops = 0;
  std::size_t corrupts = 0;
  std::size_t repairs = 0;        ///< recovery passes that had dead ranks
  std::size_t fenced_exits = 0;   ///< corpses that exited on a fenced beat
  std::size_t busy_retries = 0;   ///< kStatusBusy responses retried
  std::size_t violations = 0;
  std::vector<std::string> violation_messages;

  /// One-line JSON object (seed, counters, messages).
  std::string to_json() const;
};

class SocketCampaign {
 public:
  explicit SocketCampaign(SocketCampaignConfig cfg);
  ~SocketCampaign();
  SocketCampaign(const SocketCampaign&) = delete;
  SocketCampaign& operator=(const SocketCampaign&) = delete;

  /// Fork the service, execute the seeded schedule (plus a forced tail
  /// guaranteeing ≥1 SIGKILL, ≥1 SIGSTOP and ≥1 corrupt frame), verify a
  /// final full-redundancy save/load, and shut everything down.
  const SocketCampaignSummary& run();

  const SocketCampaignSummary& summary() const { return summary_; }

 private:
  struct Reply {
    bool ok = false;
    std::uint32_t status = 0;
    std::string body;
  };
  struct ParsedBody {
    std::int64_t version = 0;
    std::int64_t iteration = 0;
    std::map<int, std::uint64_t> digests;
    bool degraded = false;
  };

  net::Endpoint client_ep() const;
  net::Endpoint liveness_ep() const;
  net::Endpoint worker_ctl_ep(int rank) const;
  void spawn_coordinator();
  void spawn_worker(int rank);
  /// Client request with bounded busy-retry; connect/io failures after the
  /// deadline become a violation.
  Reply request(const std::string& command, const std::string& args);
  ParsedBody parse_body(const std::string& body);
  /// Check a committed body's digests against the (job, iteration) closed
  /// form across all world workers.
  void verify_digests(const char* op, const ParsedBody& p);
  /// health poll until `pred(body)` or deadline; returns the last body.
  bool wait_health(const std::string& what, double deadline_s,
                   const std::function<bool(const std::string&)>& pred);

  void do_save(bool expect_failure_ok);
  void do_degraded_load();
  void do_kill(int victim, bool gray);
  void do_corrupt();
  void do_recover();
  int pick_victim(std::uint64_t pick);
  void violation(const std::string& invariant, const std::string& msg);
  void shutdown_service();

  SocketCampaignConfig cfg_;
  SocketCampaignSummary summary_;
  int world_ = 0;
  std::map<int, pid_t> worker_pids_;
  pid_t coordinator_pid_ = -1;
  std::set<int> dead_;     ///< ranks killed/stopped, not yet repaired
  std::set<int> stopped_;  ///< subset of dead_: SIGSTOP (gray) victims
  bool declared_waited_ = false;  ///< deaths already declared by coordinator
  std::int64_t last_version_ = 0;
  std::int64_t last_iteration_ = 0;
  bool next_kill_gray_ = false;  ///< alternate SIGKILL / SIGSTOP
};

}  // namespace eccheck::chaos
