#include "chaos/schedule.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace eccheck::chaos {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTrain: return "train";
    case EventKind::kSave: return "save";
    case EventKind::kKill: return "kill";
    case EventKind::kMidSaveKill: return "mid_save_kill";
    case EventKind::kMidLoadKill: return "mid_load_kill";
    case EventKind::kCorrupt: return "corrupt";
    case EventKind::kRecover: return "recover";
  }
  return "?";
}

std::vector<ChaosEvent> generate_schedule(const ChaosConfig& cfg) {
  ECC_CHECK_MSG(cfg.events >= 2,
                "a chaos schedule needs at least the leading save and the "
                "trailing recover");
  ECC_CHECK(cfg.num_nodes >= 2);
  ECC_CHECK(cfg.k >= 1 && cfg.m >= 1);
  SplitMix64 rng(cfg.seed);

  // Every event draws its full parameter sweep regardless of kind, so the
  // generator consumes a fixed per-event prefix of the stream and schedules
  // stay stable under weight changes of *later* events.
  auto make = [&](EventKind kind) {
    ChaosEvent e;
    e.kind = kind;
    e.detect_heartbeat = 0.1 + rng.next_double() * 1.9;
    e.detect_timeout = e.detect_heartbeat * (1.0 + rng.next_double() * 4.0);
    e.detect_quorum =
        1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                std::max(1, cfg.num_nodes - 1))));
    e.replace_delay = rng.next_double() * 5.0;
    e.train_seconds = 0.2 + rng.next_double() * 2.0;
    e.op_frac = rng.next_double();
    return e;
  };
  auto draw_picks = [&](ChaosEvent& e, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) e.picks.push_back(rng.next());
  };

  std::vector<ChaosEvent> out;
  out.reserve(static_cast<std::size_t>(cfg.events));
  out.push_back(make(EventKind::kSave));

  const double total = cfg.w_train + cfg.w_save + cfg.w_kill + cfg.w_burst +
                       cfg.w_mid_save + cfg.w_mid_load + cfg.w_corrupt +
                       cfg.w_recover;
  ECC_CHECK_MSG(total > 0, "all chaos event weights are zero");

  for (int i = 0; i + 2 < cfg.events; ++i) {
    double r = rng.next_double() * total;
    EventKind kind = EventKind::kRecover;
    bool burst = false;
    if ((r -= cfg.w_train) < 0) {
      kind = EventKind::kTrain;
    } else if ((r -= cfg.w_save) < 0) {
      kind = EventKind::kSave;
    } else if ((r -= cfg.w_kill) < 0) {
      kind = EventKind::kKill;
    } else if ((r -= cfg.w_burst) < 0) {
      kind = EventKind::kKill;
      burst = true;
    } else if ((r -= cfg.w_mid_save) < 0) {
      kind = EventKind::kMidSaveKill;
    } else if ((r -= cfg.w_mid_load) < 0) {
      kind = EventKind::kMidLoadKill;
    } else if ((r -= cfg.w_corrupt) < 0) {
      kind = EventKind::kCorrupt;
    }

    ChaosEvent e = make(kind);
    switch (kind) {
      case EventKind::kKill: {
        std::size_t nk = 1;
        if (burst) {
          // Correlated rack burst: 2 .. min(m+1, num_nodes−1) concurrent
          // kills. The m+1 upper end is a deliberately catastrophic
          // (> m) loss; the num_nodes−1 cap always leaves one observer.
          const std::uint64_t hi = static_cast<std::uint64_t>(
              std::min(cfg.m + 1, cfg.num_nodes - 1));
          nk = hi >= 2 ? 2 + rng.next_below(hi - 1) : 1;
        }
        draw_picks(e, nk);
        break;
      }
      case EventKind::kMidSaveKill:
        draw_picks(e, 1);  // victim of the in-save kill
        break;
      case EventKind::kMidLoadKill:
        draw_picks(e, 2);  // pre-load victim + in-load victim
        break;
      case EventKind::kCorrupt:
        draw_picks(e, 3);  // node, chunk key, byte offset
        break;
      default:
        break;
    }
    out.push_back(std::move(e));
  }

  out.push_back(make(EventKind::kRecover));
  return out;
}

}  // namespace eccheck::chaos
