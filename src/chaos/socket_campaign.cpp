#include "chaos/socket_campaign.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <thread>

#include "chaos/schedule.hpp"
#include "common/check.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "obs/json.hpp"
#include "svc/checkpoint_service.hpp"

namespace eccheck::chaos {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Crude but sufficient JSON field scan: the integer right after
/// `"key":`. Returns `fallback` when the key is absent.
std::int64_t json_int_field(const std::string& body, const std::string& key,
                            std::int64_t fallback) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return fallback;
  return std::atoll(body.c_str() + at + needle.size());
}

/// Per-rank "state" values in workers-array order (rank order).
std::vector<std::string> json_states(const std::string& body) {
  std::vector<std::string> out;
  std::size_t at = 0;
  const std::string needle = "\"state\":\"";
  while ((at = body.find(needle, at)) != std::string::npos) {
    at += needle.size();
    const std::size_t end = body.find('"', at);
    if (end == std::string::npos) break;
    out.push_back(body.substr(at, end - at));
    at = end;
  }
  return out;
}

}  // namespace

std::string SocketCampaignSummary::to_json() const {
  std::ostringstream os;
  os << "{\"seed\":" << seed << ",\"events\":" << events
     << ",\"saves_ok\":" << saves_ok << ",\"saves_failed\":" << saves_failed
     << ",\"degraded_saves\":" << degraded_saves
     << ",\"degraded_loads\":" << degraded_loads
     << ",\"loads_ok\":" << loads_ok << ",\"sigkills\":" << sigkills
     << ",\"sigstops\":" << sigstops << ",\"corrupts\":" << corrupts
     << ",\"repairs\":" << repairs << ",\"fenced_exits\":" << fenced_exits
     << ",\"busy_retries\":" << busy_retries
     << ",\"violations\":" << violations << ",\"messages\":[";
  for (std::size_t i = 0; i < violation_messages.size(); ++i)
    os << (i ? "," : "") << "\"" << obs::json_escape(violation_messages[i])
       << "\"";
  os << "]}";
  return os.str();
}

SocketCampaign::SocketCampaign(SocketCampaignConfig cfg)
    : cfg_(std::move(cfg)), world_(cfg_.k + cfg_.m) {
  ECC_CHECK_MSG(!cfg_.dir.empty(), "socket campaign needs a scratch dir");
  ECC_CHECK(cfg_.k >= 1 && cfg_.m >= 1);
  summary_.seed = cfg_.seed;
  next_kill_gray_ = cfg_.first_kill_gray;
}

SocketCampaign::~SocketCampaign() {
  // Leave no orphans behind, whatever state the campaign died in.
  for (const auto& [rank, pid] : worker_pids_) {
    (void)rank;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }
  if (coordinator_pid_ > 0) {
    ::kill(coordinator_pid_, SIGKILL);
    ::waitpid(coordinator_pid_, nullptr, 0);
  }
}

net::Endpoint SocketCampaign::client_ep() const {
  return net::Endpoint::uds(cfg_.dir + "/client.sock");
}
net::Endpoint SocketCampaign::liveness_ep() const {
  return net::Endpoint::uds(cfg_.dir + "/live.sock");
}
net::Endpoint SocketCampaign::worker_ctl_ep(int rank) const {
  return net::Endpoint::uds(cfg_.dir + "/ctl" + std::to_string(rank) +
                            ".sock");
}

namespace {

net::TransportOptions campaign_opts(const SocketCampaignConfig& cfg,
                                    net::Millis io) {
  net::TransportOptions o;
  o.connect_timeout = net::Millis(500);
  o.connect_retries = 20;
  o.backoff_base = net::Millis(2);
  o.backoff_max = net::Millis(50);
  o.io_timeout = io;
  o.heartbeat_period = cfg.heartbeat_period;
  o.heartbeat_timeout = cfg.heartbeat_timeout;
  o.suspect_probes = cfg.suspect_probes;
  o.ack_window = cfg.ack_window;
  return o;
}

}  // namespace

void SocketCampaign::spawn_worker(int rank) {
  svc::WorkerDaemonConfig wcfg;
  wcfg.rank = rank;
  for (int r = 0; r < world_; ++r)
    wcfg.fabric_eps.push_back(
        net::Endpoint::uds(cfg_.dir + "/rank" + std::to_string(r) + ".sock"));
  wcfg.control_ep = worker_ctl_ep(rank);
  wcfg.fabric_opts = campaign_opts(cfg_, cfg_.worker_io_timeout);
  wcfg.ec.k = cfg_.k;
  wcfg.ec.m = cfg_.m;
  wcfg.ec.packet_size = 4096;
  wcfg.gpus_per_node = 1;
  wcfg.coordinator_ep = liveness_ep();

  const pid_t pid = ::fork();
  ECC_CHECK_MSG(pid >= 0, "fork failed for worker " << rank);
  if (pid == 0) {
    try {
      svc::WorkerDaemon daemon(std::move(wcfg));
      daemon.run();
      ::_exit(0);
    } catch (...) {
      ::_exit(1);
    }
  }
  worker_pids_[rank] = pid;
}

void SocketCampaign::spawn_coordinator() {
  svc::CoordinatorConfig ccfg;
  ccfg.client_ep = client_ep();
  for (int r = 0; r < world_; ++r) ccfg.worker_eps.push_back(worker_ctl_ep(r));
  // The coordinator's per-worker budget must outlive a worker's collective
  // (worker_io_timeout bounds a torn save); the client's budget must in
  // turn outlive the coordinator's whole fan-out.
  ccfg.opts = campaign_opts(
      cfg_, net::Millis(cfg_.worker_io_timeout.count() * 3));
  ccfg.opts.connect_retries = 4;  // dead workers must fail fast
  ccfg.liveness_ep = liveness_ep();
  ccfg.max_queue = 8;
  ccfg.data_k = cfg_.k;
  ccfg.parity_m = cfg_.m;

  const pid_t pid = ::fork();
  ECC_CHECK_MSG(pid >= 0, "fork failed for coordinator");
  if (pid == 0) {
    try {
      svc::Coordinator coord(std::move(ccfg));
      coord.run();
      ::_exit(0);
    } catch (...) {
      ::_exit(1);
    }
  }
  coordinator_pid_ = pid;
}

SocketCampaign::Reply SocketCampaign::request(const std::string& command,
                                              const std::string& args) {
  const net::TransportOptions opts =
      campaign_opts(cfg_, cfg_.client_io_timeout);
  const auto start = Clock::now();
  for (;;) {
    try {
      const svc::ControlReply r =
          svc::client_request(client_ep(), command, args, opts);
      if (r.status == svc::kStatusBusy && elapsed_s(start) < 30.0) {
        ++summary_.busy_retries;
        sleep_ms(50);
        continue;
      }
      return {r.ok, r.status, r.body};
    } catch (const CheckFailure& e) {
      if (elapsed_s(start) > 30.0)
        return {false, svc::kStatusError,
                std::string("coordinator unreachable: ") + e.what()};
      sleep_ms(100);
    }
  }
}

namespace {

// Strict numeric field parsing for worker report lines. A truncated or
// corrupted token must surface as a campaign violation naming the token,
// never as an uncaught std::invalid_argument killing the driver.
bool parse_field_i64(std::string_view sv, std::int64_t& out) {
  const char* end = sv.data() + sv.size();
  auto [ptr, ec] = std::from_chars(sv.data(), end, out);
  return ec == std::errc() && ptr == end && !sv.empty();
}

bool parse_field_hex64(std::string_view sv, std::uint64_t& out) {
  const char* end = sv.data() + sv.size();
  auto [ptr, ec] = std::from_chars(sv.data(), end, out, 16);
  return ec == std::errc() && ptr == end && !sv.empty();
}

}  // namespace

SocketCampaign::ParsedBody SocketCampaign::parse_body(
    const std::string& body) {
  ParsedBody p;
  p.degraded = body.find("degraded") != std::string::npos;
  std::istringstream is(body);
  std::string tok;
  while (is >> tok) {
    if (tok == ";") break;
    if (tok.rfind("version=", 0) == 0) {
      if (!parse_field_i64(std::string_view(tok).substr(8), p.version))
        violation("protocol", "malformed version token \"" + tok + "\"");
    } else if (tok.rfind("iteration=", 0) == 0) {
      if (!parse_field_i64(std::string_view(tok).substr(10), p.iteration))
        violation("protocol", "malformed iteration token \"" + tok + "\"");
    } else if (tok.size() > 2 && tok[0] == 'w' &&
               tok.find(':') != std::string::npos) {
      const std::size_t colon = tok.find(':');
      std::int64_t rank = 0;
      std::uint64_t digest = 0;
      if (!parse_field_i64(std::string_view(tok).substr(1, colon - 1), rank) ||
          rank < 0 || rank >= static_cast<std::int64_t>(world_) ||
          !parse_field_hex64(std::string_view(tok).substr(colon + 1), digest)) {
        violation("protocol", "malformed digest token \"" + tok + "\"");
        continue;
      }
      p.digests[static_cast<int>(rank)] = digest;
    }
  }
  return p;
}

void SocketCampaign::verify_digests(const char* op, const ParsedBody& p) {
  // Bit-exactness oracle: shard content is a pure function of
  // (job, iteration, worker), recomputed here independently of the service.
  const dnn::CheckpointGenConfig gen =
      svc::job_gen_config(cfg_.job, p.iteration, world_);
  if (static_cast<int>(p.digests.size()) != world_) {
    violation("bitexact", std::string(op) + " covered " +
                              std::to_string(p.digests.size()) + " of " +
                              std::to_string(world_) + " workers");
    return;
  }
  for (int w = 0; w < world_; ++w) {
    const auto it = p.digests.find(w);
    if (it == p.digests.end()) {
      violation("bitexact",
                std::string(op) + " missing worker " + std::to_string(w));
      return;
    }
    const std::uint64_t want = dnn::make_worker_state_dict(gen, w).digest();
    if (it->second != want) {
      violation("bitexact", std::string(op) + " worker " + std::to_string(w) +
                                " digest mismatch at version " +
                                std::to_string(p.version));
      return;
    }
  }
}

bool SocketCampaign::wait_health(
    const std::string& what, double deadline_s,
    const std::function<bool(const std::string&)>& pred) {
  const auto start = Clock::now();
  while (elapsed_s(start) < deadline_s) {
    const Reply r = request("health", "");
    if (r.ok && pred(r.body)) return true;
    sleep_ms(150);
  }
  violation("repair", "timed out waiting for " + what + " after " +
                          std::to_string(deadline_s) + "s");
  return false;
}

void SocketCampaign::violation(const std::string& invariant,
                               const std::string& msg) {
  ++summary_.violations;
  summary_.violation_messages.push_back(
      invariant + ": " + msg + " (seed " + std::to_string(cfg_.seed) + ")");
  std::fprintf(stderr, "socket-campaign VIOLATION %s\n",
               summary_.violation_messages.back().c_str());
}

int SocketCampaign::pick_victim(std::uint64_t pick) {
  std::vector<int> alive;
  for (int r = 0; r < world_; ++r)
    if (dead_.count(r) == 0) alive.push_back(r);
  return alive[static_cast<std::size_t>(pick % alive.size())];
}

void SocketCampaign::do_kill(int victim, bool gray) {
  const pid_t pid = worker_pids_.at(victim);
  if (cfg_.verbose)
    std::fprintf(stderr, "socket-campaign: %s rank %d (pid %d)\n",
                 gray ? "SIGSTOP" : "SIGKILL", victim, pid);
  if (gray) {
    ECC_CHECK(::kill(pid, SIGSTOP) == 0);
    stopped_.insert(victim);
    ++summary_.sigstops;
  } else {
    ECC_CHECK(::kill(pid, SIGKILL) == 0);
    ::waitpid(pid, nullptr, 0);
    ++summary_.sigkills;
  }
  dead_.insert(victim);
  declared_waited_ = false;
}

namespace {

/// All ranks in `dead` shown as "dead" in the health body's workers array.
bool all_declared(const std::string& body, const std::set<int>& dead) {
  const std::vector<std::string> states = json_states(body);
  for (int r : dead)
    if (static_cast<std::size_t>(r) >= states.size() ||
        states[static_cast<std::size_t>(r)] != "dead")
      return false;
  return true;
}

}  // namespace

void SocketCampaign::do_degraded_load() {
  // Availability invariant: deaths are declared and dead ≤ m, so load MUST
  // serve — workflow B decodes the missing rows and the adopter answers
  // for the dead ranks' workers.
  const Reply r = request("load", cfg_.job);
  if (!r.ok) {
    violation("availability", "load with " + std::to_string(dead_.size()) +
                                  " declared dead ranks failed: " + r.body);
    return;
  }
  const ParsedBody p = parse_body(r.body);
  ++summary_.loads_ok;
  if (p.degraded || !dead_.empty()) ++summary_.degraded_loads;
  if (p.version != last_version_)
    violation("monotone", "load returned version " +
                              std::to_string(p.version) + ", expected " +
                              std::to_string(last_version_));
  verify_digests("load", p);
}

void SocketCampaign::do_save(bool expect_failure_ok) {
  // A save right after an undeclared kill legitimately tears (the dead
  // peer is still in the membership); once deaths are declared the next
  // attempt runs degraded and must commit.
  for (int attempt = 0; attempt < 6; ++attempt) {
    if (!dead_.empty() && !declared_waited_) {
      declared_waited_ = wait_health(
          "death declaration of ranks {" +
              std::to_string(*dead_.begin()) + "..}",
          20.0, [this](const std::string& b) { return all_declared(b, dead_); });
    }
    const Reply r = request("save", cfg_.job);
    if (!r.ok) {
      ++summary_.saves_failed;
      if (expect_failure_ok) return;
      sleep_ms(100);
      continue;
    }
    const ParsedBody p = parse_body(r.body);
    if (p.version <= last_version_)
      violation("monotone", "save committed version " +
                                std::to_string(p.version) + " after " +
                                std::to_string(last_version_));
    verify_digests("save", p);
    last_version_ = p.version;
    last_iteration_ = p.iteration;
    ++summary_.saves_ok;
    if (p.degraded) ++summary_.degraded_saves;
    return;
  }
  violation("availability", "save never committed within 6 attempts with " +
                                std::to_string(dead_.size()) + " dead ranks");
}

void SocketCampaign::do_corrupt() {
  // Arm a one-byte payload flip on a live worker's next fabric frame, then
  // drive a save through it: the receiver sees a genuine wire CRC
  // mismatch, the collective tears, every survivor rolls back, and the
  // retry commits clean.
  const int target = pick_victim(static_cast<std::uint64_t>(world_ - 1));
  try {
    const svc::ControlReply r = svc::client_request(
        worker_ctl_ep(target), "inject", "corrupt",
        campaign_opts(cfg_, cfg_.worker_io_timeout));
    if (!r.ok) return;  // worker raced away; nothing armed
  } catch (const CheckFailure&) {
    return;
  }
  ++summary_.corrupts;
  if (cfg_.verbose)
    std::fprintf(stderr, "socket-campaign: armed corrupt frame on rank %d\n",
                 target);
  const Reply r = request("save", cfg_.job);
  if (r.ok) {
    // The corrupted frame happened to hit a retried/reset path; the commit
    // is still bound by the digest oracle.
    const ParsedBody p = parse_body(r.body);
    verify_digests("save", p);
    last_version_ = p.version;
    last_iteration_ = p.iteration;
    ++summary_.saves_ok;
  } else {
    ++summary_.saves_failed;
    // Rollback must leave the service able to commit the retry.
    do_save(/*expect_failure_ok=*/false);
  }
}

void SocketCampaign::do_recover() {
  if (dead_.empty()) return;
  if (!declared_waited_)
    declared_waited_ = wait_health(
        "death declaration before repair", 20.0,
        [this](const std::string& b) { return all_declared(b, dead_); });

  const Reply before = request("health", "");
  const std::int64_t repairs0 =
      before.ok ? json_int_field(before.body, "repairs", 0) : 0;
  const std::int64_t fenced0 =
      before.ok ? json_int_field(before.body, "fenced_beats", 0) : 0;

  // Gray corpses first: SIGCONT wakes them, their next beat carries a
  // stale rank (declared dead) and gets a fenced reply — the daemon must
  // exit on its own. That exit IS the fencing invariant.
  for (int r : stopped_) {
    const pid_t pid = worker_pids_.at(r);
    ECC_CHECK(::kill(pid, SIGCONT) == 0);
    const auto start = Clock::now();
    bool exited = false;
    while (elapsed_s(start) < 10.0) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        exited = true;
        break;
      }
      sleep_ms(50);
    }
    if (exited) {
      ++summary_.fenced_exits;
    } else {
      violation("fencing", "resurrected rank " + std::to_string(r) +
                               " did not fence-exit within 10s");
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }

  // Replacements join on the dead ranks' endpoints; the repair controller
  // bumps the epoch, resets the members, and recovers every known job —
  // survivors keep running throughout.
  const std::set<int> repaired = dead_;
  for (int r : repaired) spawn_worker(r);

  const bool healed = wait_health(
      "repair of ranks to full redundancy", 45.0,
      [&](const std::string& b) {
        if (json_int_field(b, "repairs", 0) <= repairs0) return false;
        if (json_int_field(b, "effective_m", -1) != cfg_.m) return false;
        const std::vector<std::string> states = json_states(b);
        for (const std::string& s : states)
          if (s != "alive") return false;
        return !states.empty();
      });
  if (healed) {
    ++summary_.repairs;
    dead_.clear();
    stopped_.clear();
    declared_waited_ = false;
    // The corpse's stale beats (if any arrived before it exited) must have
    // been answered with a fence, never re-admission.
    const Reply after = request("health", "");
    if (after.ok && !repaired.empty() &&
        json_int_field(after.body, "fenced_beats", 0) < fenced0)
      violation("fencing", "fenced_beats went backwards");
  }

  // Full redundancy restored: the next save must commit non-degraded and
  // the loaded bytes must still be exact.
  do_save(/*expect_failure_ok=*/false);
  const Reply r = request("load", cfg_.job);
  if (!r.ok) {
    violation("availability", "post-repair load failed: " + r.body);
    return;
  }
  const ParsedBody p = parse_body(r.body);
  ++summary_.loads_ok;
  if (p.degraded)
    violation("repair", "post-repair load still reports degraded: " + r.body);
  verify_digests("load", p);
}

void SocketCampaign::shutdown_service() {
  request("shutdown", "");
  const auto start = Clock::now();
  auto reap = [&](pid_t pid) {
    while (elapsed_s(start) < 10.0) {
      if (::waitpid(pid, nullptr, WNOHANG) == pid) return true;
      sleep_ms(50);
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return false;
  };
  for (const auto& [rank, pid] : worker_pids_)
    if (dead_.count(rank) == 0) reap(pid);
  if (coordinator_pid_ > 0) reap(coordinator_pid_);
  worker_pids_.clear();
  coordinator_pid_ = -1;
}

const SocketCampaignSummary& SocketCampaign::run() {
  spawn_coordinator();
  for (int r = 0; r < world_; ++r) spawn_worker(r);

  // Seeded schedule, reusing the simulator's generator: same seed → same
  // event sequence, which is what makes a failing campaign replayable.
  ChaosConfig scfg;
  scfg.num_nodes = world_;
  scfg.k = cfg_.k;
  scfg.m = cfg_.m;
  scfg.events = cfg_.events;
  scfg.seed = cfg_.seed;
  scfg.w_burst = 0;     // > m concurrent deaths is un-serveable by design
  scfg.w_mid_load = 0;  // folded into kKill at the process level
  const std::vector<ChaosEvent> schedule = generate_schedule(scfg);

  for (const ChaosEvent& ev : schedule) {
    ++summary_.events;
    if (cfg_.verbose)
      std::fprintf(stderr, "socket-campaign: event %zu %s\n", summary_.events,
                   event_kind_name(ev.kind));
    switch (ev.kind) {
      case EventKind::kTrain:
        sleep_ms(static_cast<int>(ev.train_seconds * cfg_.train_scale *
                                  1000));
        break;
      case EventKind::kSave:
        do_save(/*expect_failure_ok=*/false);
        break;
      case EventKind::kKill:
      case EventKind::kMidLoadKill: {
        if (static_cast<int>(dead_.size()) >= cfg_.m) break;  // no budget
        const bool gray = next_kill_gray_;
        next_kill_gray_ = !next_kill_gray_;
        do_kill(pick_victim(ev.picks.empty() ? 0 : ev.picks[0]), gray);
        declared_waited_ = wait_health(
            "death declaration", 20.0,
            [this](const std::string& b) { return all_declared(b, dead_); });
        do_degraded_load();
        break;
      }
      case EventKind::kMidSaveKill: {
        if (static_cast<int>(dead_.size()) >= cfg_.m) break;
        const int victim = pick_victim(ev.picks.empty() ? 0 : ev.picks[0]);
        // Fire the save, then land the kill inside its fabric-op window.
        Reply rep;
        std::thread saver([&] { rep = request("save", cfg_.job); });
        sleep_ms(20 + static_cast<int>(ev.op_frac * 120));
        do_kill(victim, /*gray=*/false);
        saver.join();
        if (rep.ok) {
          const ParsedBody p = parse_body(rep.body);
          verify_digests("save", p);
          last_version_ = p.version;
          last_iteration_ = p.iteration;
          ++summary_.saves_ok;
        } else {
          ++summary_.saves_failed;  // torn: survivors rolled back
        }
        declared_waited_ = wait_health(
            "death declaration after mid-save kill", 20.0,
            [this](const std::string& b) { return all_declared(b, dead_); });
        do_degraded_load();
        break;
      }
      case EventKind::kCorrupt:
        if (dead_.empty()) do_corrupt();
        break;
      case EventKind::kRecover:
        do_recover();
        break;
    }
    if (summary_.violations > 0) break;  // fail fast, state is suspect
  }

  // Forced tail: the acceptance bar requires every campaign to have seen
  // at least one hard death, one gray failure, and one corrupt frame.
  if (summary_.violations == 0 && summary_.sigkills == 0) {
    do_kill(pick_victim(1), /*gray=*/false);
    declared_waited_ = wait_health(
        "forced SIGKILL declaration", 20.0,
        [this](const std::string& b) { return all_declared(b, dead_); });
    do_degraded_load();
    do_recover();
  }
  if (summary_.violations == 0 && summary_.sigstops == 0) {
    do_kill(pick_victim(2), /*gray=*/true);
    declared_waited_ = wait_health(
        "forced SIGSTOP declaration", 20.0,
        [this](const std::string& b) { return all_declared(b, dead_); });
    do_degraded_load();
    do_recover();
  }
  if (summary_.violations == 0 && summary_.corrupts == 0) do_corrupt();
  if (summary_.violations == 0 && !dead_.empty()) do_recover();

  // Final verification at full strength, then an orderly shutdown.
  if (summary_.violations == 0) {
    do_save(/*expect_failure_ok=*/false);
    const Reply r = request("load", cfg_.job);
    if (!r.ok) {
      violation("availability", "final load failed: " + r.body);
    } else {
      const ParsedBody p = parse_body(r.body);
      ++summary_.loads_ok;
      verify_digests("load", p);
    }
  }
  shutdown_service();
  return summary_;
}

}  // namespace eccheck::chaos
