#include "chaos/runner.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "cluster/failure_detector.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "obs/json.hpp"

namespace eccheck::chaos {

namespace {

void append_hist(std::ostringstream& os, const char* name,
                 const obs::HistSummary& h) {
  os << "\"" << name << "\":{\"count\":" << h.count
     << ",\"mean\":" << obs::json_number(h.mean())
     << ",\"min\":" << obs::json_number(h.count ? h.min : 0)
     << ",\"max\":" << obs::json_number(h.count ? h.max : 0) << "}";
}

}  // namespace

std::string CampaignSummary::to_json() const {
  std::ostringstream os;
  os << "{\"seed\":" << seed << ",\"events\":" << events
     << ",\"saves\":" << saves << ",\"torn_saves\":" << torn_saves
     << ",\"loads\":" << loads << ",\"aborted_loads\":" << aborted_loads
     << ",\"kills\":" << kills << ",\"mid_op_kills\":" << mid_op_kills
     << ",\"corruptions\":" << corruptions
     << ",\"recoveries\":" << recoveries << ",\"fallbacks\":" << fallbacks
     << ",\"remote_rescues\":" << remote_rescues
     << ",\"unrecoverable\":" << unrecoverable
     << ",\"violations\":" << violations << ",";
  append_hist(os, "detect_latency", detect_latency);
  os << ",";
  append_hist(os, "resume_latency", resume_latency);
  os << ",\"violation_messages\":[";
  for (std::size_t i = 0; i < violation_messages.size(); ++i) {
    if (i) os << ",";
    os << "\"" << obs::json_escape(violation_messages[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

ChaosRunner::ChaosRunner(const ChaosConfig& cfg, std::ostream* jsonl)
    : cfg_(cfg),
      jsonl_(jsonl),
      cluster_([&cfg] {
        cluster::ClusterConfig c;
        c.num_nodes = cfg.num_nodes;
        c.gpus_per_node = cfg.gpus_per_node;
        return c;
      }()) {
  ECC_CHECK_MSG(cfg_.k + cfg_.m == cfg_.num_nodes,
                "chaos campaign needs k + m == num_nodes (got k="
                    << cfg_.k << " m=" << cfg_.m << " nodes="
                    << cfg_.num_nodes << ")");
  par_.tensor_parallel =
      64 % cfg_.gpus_per_node == 0 ? cfg_.gpus_per_node : 1;
  par_.pipeline_parallel = cluster_.world_size() / par_.tensor_parallel;
  par_.data_parallel = 1;
  model_ = dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1,
                           std::max(4, par_.pipeline_parallel), "chaos");
  model_.vocab = 256;

  core::SessionConfig sc;
  sc.ec.k = cfg_.k;
  sc.ec.m = cfg_.m;
  sc.ec.packet_size = cfg_.packet_size;
  sc.ec.flush_to_remote = cfg_.flush_to_remote;
  sc.ec.verify_integrity = cfg_.verify_integrity;
  sc.retain_versions = cfg_.retain_versions;
  sc.profile_iterations = 8;
  session_.emplace(core::Session::initialize(cluster_, model_, par_, sc));
  ns_ = session_->engine().config().key_namespace;
  cluster_.set_fault_hook(&plan_);
  summary_.seed = cfg_.seed;
}

ChaosRunner::~ChaosRunner() { cluster_.set_fault_hook(nullptr); }

const CampaignSummary& ChaosRunner::run() {
  const std::vector<ChaosEvent> schedule = generate_schedule(cfg_);
  summary_.events = schedule.size();
  for (std::size_t i = 0; i < schedule.size(); ++i) run_event(schedule[i], i);
  return summary_;
}

void ChaosRunner::run_event(const ChaosEvent& ev, std::size_t index) {
  cur_event_ = index;
  switch (ev.kind) {
    case EventKind::kTrain:
      clock_ += ev.train_seconds;
      break;
    case EventKind::kSave:
      ensure_healthy(ev);
      attempt_save(nullptr);
      break;
    case EventKind::kKill: {
      for (int n : resolve_kills(ev.picks)) {
        cluster_.kill(n);
        pending_fail_time_[n] = clock_;
        ++summary_.kills;
      }
      recover(ev, nullptr);
      break;
    }
    case EventKind::kMidSaveKill: {
      ensure_healthy(ev);
      attempt_save(&ev);
      if (cluster_.alive_count() < cluster_.num_nodes())
        recover(ev, nullptr);
      break;
    }
    case EventKind::kMidLoadKill: {
      ensure_healthy(ev);
      if (!ev.picks.empty()) {
        for (int n : resolve_kills({ev.picks[0]})) {
          cluster_.kill(n);
          pending_fail_time_[n] = clock_;
          ++summary_.kills;
        }
      }
      recover(ev, &ev);
      break;
    }
    case EventKind::kCorrupt:
      corrupt_event(ev);
      break;
    case EventKind::kRecover:
      recover(ev, nullptr);
      break;
  }
  emit_event_line(ev, index);
}

std::vector<dnn::StateDict> ChaosRunner::make_shards() {
  dnn::CheckpointGenConfig gen;
  gen.model = model_;
  gen.parallelism = par_;
  gen.seed = cfg_.seed ^ 0x9e3779b97f4a7c15ULL;
  gen.iteration = ++iteration_;
  return dnn::make_sharded_checkpoint(gen);
}

std::vector<int> ChaosRunner::resolve_kills(
    const std::vector<std::uint64_t>& picks) {
  std::vector<int> out;
  std::vector<int> alive = cluster_.alive_nodes();
  for (std::uint64_t pick : picks) {
    if (alive.size() <= 1) break;  // never kill the last observer
    const std::size_t idx = static_cast<std::size_t>(pick % alive.size());
    out.push_back(alive[idx]);
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return out;
}

std::size_t ChaosRunner::collect_fired() {
  const std::size_t n = plan_.fired().size();
  for (const Fired& f : plan_.fired()) {
    pending_fail_time_[f.node] = clock_;
    ++summary_.mid_op_kills;
  }
  plan_.clear_fired();
  return n;
}

void ChaosRunner::scrub_stale_tmp_keys() {
  // A torn save leaves step-1/-3 staging keys behind; the engine consumes
  // them only on the success path, so a supervisor must garbage-collect.
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    if (!cluster_.alive(n)) continue;
    for (const std::string& key :
         cluster_.host(n).keys_with_prefix(ns_ + "tmp/"))
      cluster_.host(n).erase(key);
  }
}

void ChaosRunner::ensure_healthy(const ChaosEvent& ev) {
  if (cluster_.alive_count() < cluster_.num_nodes()) recover(ev, nullptr);
}

std::int64_t ChaosRunner::attempt_save(const ChaosEvent* mid_save) {
  std::vector<dnn::StateDict> shards = make_shards();
  const std::int64_t version = session_->latest_version() + 1;
  // Golden digests for every *attempted* save: a save torn during the
  // remote flush has already placed its local commit markers, so the
  // version is loadable even though save() threw — the oracle must be able
  // to verify it bit-exactly either way.
  std::vector<std::uint64_t>& g = golden_[version];
  g.clear();
  for (const dnn::StateDict& sd : shards) g.push_back(sd.digest());

  if (mid_save != nullptr && !mid_save->picks.empty()) {
    std::vector<int> victims = resolve_kills({mid_save->picks[0]});
    if (!victims.empty()) {
      const std::uint64_t window =
          probe_save_ops_ > 2 ? probe_save_ops_ - 2 : 20;
      const std::uint64_t offset =
          1 + static_cast<std::uint64_t>(
                  mid_save->op_frac * static_cast<double>(window));
      plan_.arm({{plan_.op_count() + offset, victims[0]}});
    }
  }

  const std::uint64_t ops_before = plan_.op_count();
  try {
    ckpt::SaveReport rep = session_->save(shards);
    plan_.disarm();
    const std::size_t fired = collect_fired();
    ++summary_.saves;
    clock_ += std::max(0.0, rep.total_time);
    if (fired == 0) {
      if (probe_save_ops_ == 0)
        probe_save_ops_ = plan_.op_count() - ops_before;
      if (expected_row_keys_ == 0)
        expected_row_keys_ =
            cluster_.host(0)
                .keys_with_prefix(ns_ + "ec/" + std::to_string(version) +
                                  "/row/")
                .size();
    }
    return version;
  } catch (const CheckFailure&) {
    plan_.disarm();
    collect_fired();
    ++summary_.torn_saves;
    scrub_stale_tmp_keys();
    return -1;
  }
}

bool ChaosRunner::node_intact(int node, std::int64_t version) {
  if (!cluster_.alive(node)) return false;
  if (corrupted_.count({version, node})) return false;
  const std::string prefix = ns_ + "ec/" + std::to_string(version) + "/";
  const cluster::Store& h = cluster_.host(node);
  if (!h.contains(prefix + "commit")) return false;
  const std::size_t rows = h.keys_with_prefix(prefix + "row/").size();
  if (rows == 0) return false;
  if (expected_row_keys_ > 0 && rows != expected_row_keys_) return false;
  return true;
}

int ChaosRunner::intact_count(std::int64_t version) {
  int count = 0;
  for (int n = 0; n < cluster_.num_nodes(); ++n)
    if (node_intact(n, version)) ++count;
  return count;
}

bool ChaosRunner::remote_committed(std::int64_t version) {
  // The remote commit marker is flushed last, so its presence implies a
  // complete remote copy.
  return cluster_.remote().contains(ns_ + "ec/" + std::to_string(version) +
                                    "/commit");
}

std::int64_t ChaosRunner::oracle_first_recoverable() {
  const std::int64_t newest = session_->latest_version();
  if (newest < 1) return 0;
  const std::int64_t oldest =
      cfg_.retain_versions > 0
          ? std::max<std::int64_t>(1, newest - cfg_.retain_versions + 1)
          : 1;
  for (std::int64_t v = newest; v >= oldest; --v)
    if (intact_count(v) >= cfg_.k || remote_committed(v)) return v;
  return 0;
}

void ChaosRunner::recover(const ChaosEvent& ev, const ChaosEvent* mid_load) {
  bool had_dead = false;
  bool arm_mid_load = mid_load != nullptr && mid_load->picks.size() >= 2;
  // Bounded convergence: each pass replaces every dead node, and triggers
  // are consumed when they fire, so the loop can only repeat while armed
  // kills keep landing — at most one extra pass per armed trigger.
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<int> dead;
    for (int n = 0; n < cluster_.num_nodes(); ++n)
      if (!cluster_.alive(n)) dead.push_back(n);

    if (!dead.empty()) {
      if (!had_dead) {
        had_dead = true;
        ++summary_.recoveries;
      }
      cluster::FailureDetectorConfig fc;
      fc.heartbeat_interval = ev.detect_heartbeat;
      fc.timeout = ev.detect_timeout;
      fc.quorum = ev.detect_quorum;
      cluster::FailureDetector fd(fc, cluster_.num_nodes());
      const int observers = cluster_.alive_count();
      Seconds detect_t = clock_;
      for (int n : dead) {
        const auto it = pending_fail_time_.find(n);
        const Seconds fail_t = it != pending_fail_time_.end() ? it->second
                                                              : clock_;
        const Seconds det = fd.detection_time(fail_t, observers);
        const Seconds latency = det - fail_t;
        summary_.detect_latency.observe(latency);
        if (!(latency > 0 && latency <= fd.max_latency() + 1e-9)) {
          std::ostringstream msg;
          msg << "detection of node " << n << " took "
              << obs::json_number(latency) << "s (max_latency "
              << obs::json_number(fd.max_latency()) << "s)";
          violation("detection_bounds", msg.str());
        }
        detect_t = std::max(detect_t, det);
      }
      clock_ = detect_t + ev.replace_delay;
      for (int n : dead) {
        cluster_.replace(n);
        pending_fail_time_.erase(n);
      }
    }

    // Oracle snapshot *before* the load mutates the stores.
    std::map<std::int64_t, int> pre_intact;
    {
      const std::int64_t newest = session_->latest_version();
      const std::int64_t oldest =
          cfg_.retain_versions > 0
              ? std::max<std::int64_t>(1, newest - cfg_.retain_versions + 1)
              : 1;
      for (std::int64_t v = newest; v >= oldest && v >= 1; --v)
        pre_intact[v] = intact_count(v);
    }
    const std::int64_t oracle_v = oracle_first_recoverable();

    if (arm_mid_load) {
      arm_mid_load = false;  // one armed window per event
      std::vector<int> victims = resolve_kills({mid_load->picks[1]});
      if (!victims.empty()) {
        const std::uint64_t window =
            probe_load_ops_ > 2 ? probe_load_ops_ - 2 : 20;
        const std::uint64_t offset =
            1 + static_cast<std::uint64_t>(
                    mid_load->op_frac * static_cast<double>(window));
        plan_.arm({{plan_.op_count() + offset, victims[0]}});
      }
    }

    const std::uint64_t ops_before = plan_.op_count();
    std::vector<dnn::StateDict> out;
    core::Session::RecoverResult r;
    try {
      r = session_->load(out);
    } catch (const CheckFailure&) {
      plan_.disarm();
      collect_fired();
      ++summary_.aborted_loads;
      continue;  // replace the fresh casualties and retry
    }
    plan_.disarm();
    const std::size_t fired = collect_fired();
    ++summary_.loads;

    if (!r.report.success) {
      if (fired > 0) continue;  // state changed under the load; retry
      if (oracle_v > 0) {
        std::ostringstream msg;
        msg << "oracle proves version " << oracle_v
            << " recoverable but load failed: " << r.report.detail;
        violation("availability", msg.str());
      }
      ++summary_.unrecoverable;
      return;
    }

    if (fired == 0 && probe_load_ops_ == 0)
      probe_load_ops_ = plan_.op_count() - ops_before;

    // ---- invariants on the successful load ------------------------------
    if (r.version < 1 || r.version > session_->latest_version()) {
      std::ostringstream msg;
      msg << "loaded version " << r.version << " outside [1, "
          << session_->latest_version() << "]";
      violation("monotone_version", msg.str());
    }
    if (oracle_v > 0 && r.version < oracle_v) {
      std::ostringstream msg;
      msg << "loaded version " << r.version
          << " but the oracle proves version " << oracle_v
          << " is recoverable";
      violation("newest_recoverable", msg.str());
    }
    const auto git = golden_.find(r.version);
    if (git == golden_.end()) {
      std::ostringstream msg;
      msg << "loaded version " << r.version << " was never saved";
      violation("bitexact", msg.str());
    } else if (out.size() != git->second.size()) {
      std::ostringstream msg;
      msg << "loaded " << out.size() << " shards, saved "
          << git->second.size();
      violation("bitexact", msg.str());
    } else {
      for (std::size_t w = 0; w < out.size(); ++w) {
        if (out[w].digest() != git->second[w]) {
          std::ostringstream msg;
          msg << "version " << r.version << " worker " << w
              << " digest mismatch after recovery";
          violation("bitexact", msg.str());
        }
      }
    }

    summary_.resume_latency.observe(r.report.resume_time);
    clock_ += std::max(0.0, r.report.total_time);
    if (r.version < session_->latest_version()) ++summary_.fallbacks;
    const auto pit = pre_intact.find(r.version);
    if (pit != pre_intact.end() && pit->second < cfg_.k)
      ++summary_.remote_rescues;
    // Reconstruction rewrote every non-intact chunk of the loaded version
    // with correct bytes, healing recorded corruption.
    for (auto it = corrupted_.begin(); it != corrupted_.end();) {
      if (it->first == r.version)
        it = corrupted_.erase(it);
      else
        ++it;
    }

    if (fired > 0) continue;  // a mid-load kill landed; recover once more

    // Redundancy restored: after a clean successful load every node again
    // holds a committed, complete chunk of the loaded version.
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      if (!node_intact(n, r.version)) {
        std::ostringstream msg;
        msg << "node " << n << " lacks a committed complete chunk of "
            << "version " << r.version << " after recovery";
        violation("redundancy", msg.str());
      }
    }
    return;
  }
  violation("recovery_stuck",
            "detect/replace/load did not converge within 8 attempts");
}

void ChaosRunner::corrupt_event(const ChaosEvent& ev) {
  if (ev.picks.size() < 3) return;
  const std::int64_t newest = session_->latest_version();
  const std::int64_t oldest =
      cfg_.retain_versions > 0
          ? std::max<std::int64_t>(1, newest - cfg_.retain_versions + 1)
          : 1;
  for (std::int64_t v = newest; v >= oldest && v >= 1; --v) {
    std::vector<int> holders;
    for (int n = 0; n < cluster_.num_nodes(); ++n)
      if (node_intact(n, v)) holders.push_back(n);
    if (holders.empty()) continue;
    const int node =
        holders[static_cast<std::size_t>(ev.picks[0] % holders.size())];
    const std::vector<std::string> rows = cluster_.host(node).keys_with_prefix(
        ns_ + "ec/" + std::to_string(v) + "/row/");
    if (rows.empty()) continue;
    const std::string& key =
        rows[static_cast<std::size_t>(ev.picks[1] % rows.size())];
    Buffer chunk = cluster_.host(node).take(key);
    if (chunk.size() == 0) {
      cluster_.host(node).put(key, std::move(chunk));
      continue;
    }
    chunk.data()[static_cast<std::size_t>(ev.picks[2] % chunk.size())] ^=
        std::byte{0x40};
    cluster_.host(node).put(key, std::move(chunk));
    corrupted_.insert({v, node});
    ++summary_.corruptions;
    return;
  }
}

void ChaosRunner::violation(const std::string& invariant,
                            const std::string& message) {
  std::ostringstream os;
  os << "seed=" << cfg_.seed << " event=" << cur_event_ << " [" << invariant
     << "] " << message;
  ++summary_.violations;
  if (summary_.violation_messages.size() < 64)
    summary_.violation_messages.push_back(os.str());
  if (jsonl_ != nullptr) {
    *jsonl_ << "{\"seed\":" << cfg_.seed << ",\"event\":" << cur_event_
            << ",\"violation\":\"" << obs::json_escape(invariant)
            << "\",\"message\":\"" << obs::json_escape(message) << "\"}\n";
  }
}

void ChaosRunner::emit_event_line(const ChaosEvent& ev, std::size_t index) {
  if (jsonl_ == nullptr) return;
  *jsonl_ << "{\"seed\":" << cfg_.seed << ",\"event\":" << index
          << ",\"kind\":\"" << event_kind_name(ev.kind)
          << "\",\"clock\":" << obs::json_number(clock_)
          << ",\"alive\":" << cluster_.alive_count()
          << ",\"latest_version\":" << session_->latest_version()
          << ",\"violations\":" << summary_.violations << "}\n";
}

std::int64_t ChaosRunner::force_save() { return attempt_save(nullptr); }

void ChaosRunner::force_recovery() {
  ChaosEvent ev;
  ev.kind = EventKind::kRecover;
  recover(ev, nullptr);
}

}  // namespace eccheck::chaos
