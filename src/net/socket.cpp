#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <thread>

namespace eccheck::net {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void fail(const std::string& who, const std::string& what) {
  throw CheckFailure("net: " + who + ": " + what);
}

[[noreturn]] void fail_errno(const std::string& who, const std::string& what,
                             int err) {
  fail(who, what + " (" + ::strerror(err) + ")");
}

void set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ECC_CHECK(flags >= 0);
  if (on)
    flags |= O_NONBLOCK;
  else
    flags &= ~O_NONBLOCK;
  ECC_CHECK(::fcntl(fd, F_SETFL, flags) == 0);
}

/// poll for `events` until `deadline`; false on timeout.
bool poll_until(int fd, short events, Clock::time_point deadline,
                const std::string& who) {
  for (;;) {
    auto left = std::chrono::duration_cast<Millis>(deadline - Clock::now());
    if (left.count() <= 0) return false;
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    int rc = ::poll(&p, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      fail_errno(who, "poll", errno);
    }
    if (rc == 0) return false;
    return true;  // readable/writable or error — caller's read/write decides
  }
}

struct SockAddr {
  union {
    struct sockaddr sa;
    struct sockaddr_in in;
    struct sockaddr_un un;
  } u;
  socklen_t len = 0;
  int family = AF_UNIX;
};

SockAddr resolve(const Endpoint& ep, const std::string& who) {
  SockAddr a;
  ::memset(&a.u, 0, sizeof(a.u));
  if (ep.kind == Endpoint::Kind::kUds) {
    a.family = AF_UNIX;
    a.u.un.sun_family = AF_UNIX;
    if (ep.path.size() + 1 > sizeof(a.u.un.sun_path))
      fail(who, "UDS path too long: " + ep.path);
    ::memcpy(a.u.un.sun_path, ep.path.c_str(), ep.path.size() + 1);
    a.len = static_cast<socklen_t>(offsetof(struct sockaddr_un, sun_path) +
                                   ep.path.size() + 1);
  } else {
    a.family = AF_INET;
    a.u.in.sin_family = AF_INET;
    a.u.in.sin_port = htons(ep.port);
    const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
    if (::inet_pton(AF_INET, host.c_str(), &a.u.in.sin_addr) != 1)
      fail(who, "bad IPv4 address: " + ep.host);
    a.len = sizeof(a.u.in);
  }
  return a;
}

bool is_tcp_fd(int fd) {
  struct sockaddr_storage ss;
  socklen_t slen = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&ss), &slen) != 0)
    return false;
  return ss.ss_family == AF_INET || ss.ss_family == AF_INET6;
}

void tune(int fd, const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

}  // namespace

void set_tcp_nodelay(const Socket& s, bool on) {
  if (!s.valid() || !is_tcp_fd(s.fd())) return;
  int v = on ? 1 : 0;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v));
}

bool tcp_nodelay_on(const Socket& s) {
  if (!s.valid() || !is_tcp_fd(s.fd())) return false;
  int v = 0;
  socklen_t vlen = sizeof(v);
  if (::getsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &v, &vlen) != 0)
    return false;
  return v != 0;
}

Endpoint Endpoint::uds(std::string path) {
  Endpoint e;
  e.kind = Kind::kUds;
  e.path = std::move(path);
  return e;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint e;
  e.kind = Kind::kTcp;
  e.host = std::move(host);
  e.port = port;
  return e;
}

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    ECC_CHECK_MSG(spec.size() > 5, "endpoint spec '" << spec
                                       << "' has an empty UDS path");
    return uds(spec.substr(5));
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    ECC_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                      colon + 1 < rest.size(),
                  "endpoint spec '" << spec << "' is not tcp:host:port");
    const std::string port_str = rest.substr(colon + 1);
    // std::stoul would let "abc" / "1e9" / 2^80 escape as std::exception;
    // the port must be digits only and small enough to parse safely.
    const bool digits_only =
        port_str.size() <= 5 &&
        std::all_of(port_str.begin(), port_str.end(),
                    [](unsigned char c) { return std::isdigit(c) != 0; });
    ECC_CHECK_MSG(digits_only, "port '" << port_str << "' in endpoint spec '"
                                        << spec
                                        << "' is not a decimal number");
    const unsigned long port = std::stoul(port_str);
    ECC_CHECK_MSG(port <= 65535, "port out of range in '" << spec << "'");
    return tcp(rest.substr(0, colon), static_cast<std::uint16_t>(port));
  }
  throw CheckFailure("net: endpoint spec '" + spec +
                     "' must start with unix: or tcp:");
}

std::string Endpoint::to_string() const {
  return kind == Kind::kUds ? "unix:" + path
                            : "tcp:" + host + ":" + std::to_string(port);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_on(Endpoint& ep, int backlog) {
  const std::string who = "listen " + ep.to_string();
  SockAddr addr = resolve(ep, who);
  Socket s(::socket(addr.family, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno(who, "socket", errno);
  if (ep.kind == Endpoint::Kind::kUds) {
    ::unlink(ep.path.c_str());  // stale path from a killed predecessor
  } else {
    int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(s.fd(), &addr.u.sa, addr.len) != 0)
    fail_errno(who, "bind", errno);
  if (::listen(s.fd(), backlog) != 0) fail_errno(who, "listen", errno);
  if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
    struct sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    ECC_CHECK(::getsockname(s.fd(), reinterpret_cast<struct sockaddr*>(&bound),
                            &blen) == 0);
    ep.port = ntohs(bound.sin_port);
  }
  return s;
}

Socket accept_with_timeout(const Socket& listener, Millis timeout,
                           const std::string& who) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    if (!poll_until(listener.fd(), POLLIN, deadline, who))
      fail(who, "accept timed out after " + std::to_string(timeout.count()) +
                    " ms — no peer connected");
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket accepted(fd);
      // The connect side tunes in connect_with_retry; without the same on
      // accepted sockets every CRC-echo ack waits out Nagle/delayed-ack.
      set_tcp_nodelay(accepted);
      return accepted;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED)
      continue;
    fail_errno(who, "accept", errno);
  }
}

Socket connect_with_retry(const Endpoint& ep, Millis connect_timeout,
                          int retries, Millis backoff_base, Millis backoff_max,
                          const std::string& who, int* retry_count) {
  SockAddr addr = resolve(ep, who);
  Millis backoff = backoff_base;
  std::string last_error = "unknown";
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) {
      if (retry_count != nullptr) ++*retry_count;
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, backoff_max);
    }
    Socket s(::socket(addr.family, SOCK_STREAM, 0));
    if (!s.valid()) fail_errno(who, "socket", errno);
    set_nonblocking(s.fd(), true);
    int rc = ::connect(s.fd(), &addr.u.sa, addr.len);
    if (rc != 0 && detail::connect_pending(errno)) {
      const auto deadline = Clock::now() + connect_timeout;
      if (!poll_until(s.fd(), POLLOUT, deadline, who)) {
        last_error = "connect timed out";
        continue;
      }
      int err = 0;
      socklen_t elen = sizeof(err);
      ECC_CHECK(::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &elen) == 0);
      if (err != 0) {
        errno = err;
        rc = -1;
      } else {
        rc = 0;
      }
    }
    if (rc == 0) {
      set_nonblocking(s.fd(), false);
      tune(s.fd(), ep);
      return s;
    }
    // Listener not up yet (SPMD startup) or just died — both retryable
    // within the bounded budget.
    if (errno == ECONNREFUSED || errno == ENOENT || errno == EAGAIN ||
        errno == ETIMEDOUT || errno == ECONNRESET) {
      last_error = ::strerror(errno);
      continue;
    }
    fail_errno(who, "connect", errno);
  }
  fail(who, "peer unreachable after " + std::to_string(retries + 1) +
                " attempts (" + last_error + ")");
}

ProbeResult probe_endpoint(const Endpoint& ep, Millis timeout) {
  const std::string who = "probe " + ep.to_string();
  SockAddr addr = resolve(ep, who);
  Socket s(::socket(addr.family, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno(who, "socket", errno);
  set_nonblocking(s.fd(), true);
  int rc = ::connect(s.fd(), &addr.u.sa, addr.len);
  if (rc != 0 && detail::connect_pending(errno)) {
    if (!poll_until(s.fd(), POLLOUT, Clock::now() + timeout, who))
      return ProbeResult::kTimeout;
    int err = 0;
    socklen_t elen = sizeof(err);
    ECC_CHECK(::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &elen) == 0);
    errno = err;
    rc = err == 0 ? 0 : -1;
  }
  if (rc == 0) return ProbeResult::kOk;
  if (errno == ECONNREFUSED || errno == ENOENT || errno == ECONNRESET)
    return ProbeResult::kRefused;
  if (errno == ETIMEDOUT || errno == EAGAIN) return ProbeResult::kTimeout;
  fail_errno(who, "connect", errno);
}

void write_full(const Socket& s, const void* data, std::size_t len,
                Millis timeout, const std::string& who) {
  const auto deadline = Clock::now() + timeout;
  const char* p = static_cast<const char*>(data);
  std::size_t left = len;
  while (left > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as CheckFailure, not SIGPIPE.
    ssize_t n = ::send(s.fd(), p, left, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      p += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_until(s.fd(), POLLOUT, deadline, who))
        fail(who, "write timed out with " + std::to_string(left) +
                      " bytes unsent (peer stalled or dead)");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
      fail(who, "peer died mid-write (" + std::string(::strerror(errno)) +
                    ")");
    fail_errno(who, "send", errno);
  }
}

void writev_full(const Socket& s, const IoSlice* slices, std::size_t count,
                 Millis timeout, const std::string& who) {
  const auto deadline = Clock::now() + timeout;
  // Local iovec copy: sendmsg may consume slices partially, and advancing
  // through the list must not mutate the caller's view.
  constexpr std::size_t kMaxIov = 8;
  ECC_CHECK_MSG(count <= kMaxIov, who << ": too many iovec slices");
  struct iovec iov[kMaxIov];
  std::size_t n_iov = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (slices[i].len == 0) continue;
    iov[n_iov].iov_base = const_cast<void*>(slices[i].data);
    iov[n_iov].iov_len = slices[i].len;
    total += slices[i].len;
    ++n_iov;
  }
  std::size_t first = 0;  // first iovec with unsent bytes
  std::size_t left = total;
  while (left > 0) {
    struct msghdr msg;
    ::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov + first;
    msg.msg_iovlen = n_iov - first;
    // MSG_NOSIGNAL: a dead peer must surface as CheckFailure, not SIGPIPE.
    ssize_t n = ::sendmsg(s.fd(), &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      left -= static_cast<std::size_t>(n);
      std::size_t advanced = static_cast<std::size_t>(n);
      while (advanced > 0 && advanced >= iov[first].iov_len) {
        advanced -= iov[first].iov_len;
        ++first;
      }
      if (advanced > 0) {
        iov[first].iov_base = static_cast<char*>(iov[first].iov_base) +
                              advanced;
        iov[first].iov_len -= advanced;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_until(s.fd(), POLLOUT, deadline, who))
        fail(who, "gather-write timed out with " + std::to_string(left) +
                      " bytes unsent (peer stalled or dead)");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
      fail(who, "peer died mid-write (" + std::string(::strerror(errno)) +
                    ")");
    fail_errno(who, "sendmsg", errno);
  }
}

void read_full(const Socket& s, void* data, std::size_t len, Millis timeout,
               const std::string& who) {
  const auto deadline = Clock::now() + timeout;
  char* p = static_cast<char*>(data);
  std::size_t left = len;
  while (left > 0) {
    ssize_t n = ::recv(s.fd(), p, left, MSG_DONTWAIT);
    if (n > 0) {
      p += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0)
      fail(who, "peer closed the connection with " + std::to_string(left) +
                    " bytes outstanding (peer death)");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_until(s.fd(), POLLIN, deadline, who))
        fail(who, "read timed out with " + std::to_string(left) +
                      " bytes outstanding (peer stalled or dead)");
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) fail(who, "connection reset (peer death)");
    fail_errno(who, "recv", errno);
  }
}

std::size_t read_some(const Socket& s, void* data, std::size_t cap,
                      Millis timeout, const std::string& who) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    ssize_t n = ::recv(s.fd(), data, cap, MSG_DONTWAIT);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0)
      fail(who, "peer closed the connection mid-stream (peer death)");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_until(s.fd(), POLLIN, deadline, who))
        fail(who, "read timed out (peer stalled or dead)");
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) fail(who, "connection reset (peer death)");
    fail_errno(who, "recv", errno);
  }
}

}  // namespace eccheck::net
