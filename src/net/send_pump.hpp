// SendPump: epoll-driven multi-peer frame fan-out with bounded per-peer
// send queues.
//
// The blocking data plane serializes a fan-out (broadcast root, barrier
// release) peer by peer: each frame write and each CRC-echo ack wait runs
// to completion before the next peer is touched, so at 32–128 ranks the
// root pays world_size round trips back to back. The pump instead queues
// one encoded frame per peer and drives every connection concurrently off
// a single epoll loop: nonblocking gather-writes when a socket can accept
// bytes (EPOLLOUT), opportunistic ack reads when one is readable (EPOLLIN),
// per-peer progress deadlines instead of one global serial schedule.
//
// Failure containment is the point of the per-peer structure: a slow or
// dead peer stalls only its own bounded queue — every other peer keeps
// draining — and once a peer makes no progress for the RetryPolicy
// io_timeout (or errors outright) it is recorded as failed with the same
// typed message taxonomy the blocking path uses. run() reports the
// failures; the transport converts them into one CheckFailure after the
// healthy peers finished, preserving the repo-wide failure contract.
//
// Window bookkeeping is shared with the blocking path: completed writes
// push PendingAck entries onto the connection's sliding window and ack
// reads reconcile them by sequence number, so frames sent through the pump
// and frames sent through send_frame interleave correctly on the same
// pooled connection.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/stats.hpp"

namespace eccheck::net {

/// One frame sent but not yet CRC-echo-acknowledged: the sequence number it
/// was sent as on its connection and the payload CRC the ack must echo.
struct PendingAck {
  std::uint32_t seq = 0;
  std::uint64_t crc = 0;
};

/// Pooled outbound connection with its sliding ack window. next_seq counts
/// acknowledged frame types sent since the hello; the receiver counts the
/// same stream on its side and stamps each ack's aux with the sequence it
/// acknowledges, which is what lets a sender reconcile acks out of order
/// within the window.
struct OutConn {
  Socket sock;
  std::deque<PendingAck> window;
  std::uint32_t next_seq = 0;
};

class SendPump {
 public:
  /// `budget` is the per-peer progress deadline (RetryPolicy::io_timeout):
  /// a peer whose socket accepts no bytes and yields no acks for that long
  /// is declared failed. `max_queue` bounds frames queued per peer
  /// (RetryPolicy::send_queue_frames); enqueue applies backpressure by
  /// draining the loop until the peer has room.
  SendPump(Millis budget, obs::StatsRegistry* stats, int max_queue);
  ~SendPump();

  SendPump(const SendPump&) = delete;
  SendPump& operator=(const SendPump&) = delete;

  /// Queue one encoded frame for `conn` (owned by the transport; must stay
  /// alive through run()). `head` is the wire header [+trace context]
  /// [+key]; `payload` may view caller memory that stays valid until run()
  /// returns, or `payload_owned` may carry the bytes when the caller cannot
  /// guarantee that (e.g. a chaos-mangled copy). `crc` is the clean payload
  /// CRC the ack must echo. A peer already failed drops the frame.
  void enqueue(int peer, OutConn* conn, std::string who, Buffer head,
               ByteSpan payload, Buffer payload_owned, std::uint64_t crc);

  struct Failure {
    int peer = -1;
    std::string message;
  };

  /// Drive the loop until every live peer's queue is drained and its ack
  /// window is empty. Never throws for peer failures — they are contained
  /// and returned so the caller decides how the collective dies.
  std::vector<Failure> run();

 private:
  struct QueuedFrame {
    Buffer head;
    ByteSpan payload;
    Buffer owned;  ///< backs `payload` when the caller handed off ownership
    std::uint64_t crc = 0;
  };

  struct Peer {
    int rank = -1;
    OutConn* conn = nullptr;
    std::string who;
    std::deque<QueuedFrame> queue;
    std::size_t off = 0;  ///< bytes of queue.front() already written
    std::uint8_t ack_buf[kFrameHeaderBytes];
    std::size_t ack_have = 0;
    std::chrono::steady_clock::time_point last_progress;
    bool failed = false;
    bool in_epoll = false;
  };

  Peer& peer_for(int rank, OutConn* conn, std::string who);
  bool pending(const Peer& p) const {
    return !p.failed && (!p.queue.empty() || !p.conn->window.empty());
  }
  void want(Peer& p);               ///< (de)register/update epoll interest
  void fail_peer(Peer& p, const std::string& message);
  void drain_writes(Peer& p);
  void drain_acks(Peer& p);
  /// One epoll round: false when nothing is pending anymore.
  bool step();

  Millis budget_;
  obs::StatsRegistry* stats_;
  int max_queue_;
  int epfd_ = -1;
  std::map<int, Peer> peers_;  ///< rank → peer state (stable addresses)
  std::vector<Failure> failures_;
};

}  // namespace eccheck::net
