#include "net/transport.hpp"

#include <fcntl.h>
#include <stdio.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc64.hpp"
#include "gf/simd.hpp"
#include "obs/tracer.hpp"

namespace eccheck::net {
namespace {

using Clock = std::chrono::steady_clock;

bool contains(const std::vector<int>& nodes, int rank) {
  return std::find(nodes.begin(), nodes.end(), rank) != nodes.end();
}

Millis remaining(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<Millis>(deadline - Clock::now());
  return left.count() > 0 ? left : Millis{0};
}

void put_u64_le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr std::uint64_t kRemoteChunkMagic = 0x314b'4843'454e'4345ULL;

/// Filesystem-safe encoding of a store key ('/' and friends percent-encoded,
/// bijective so distinct keys never collide on disk).
std::string escape_key(const std::string& key) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(key.size());
  for (unsigned char c : key) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xf]);
    }
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Inverse of escape_key; empty optional-style failure is reported by the
/// bool. Used to map directory listings back to store keys.
bool unescape_key(const std::string& escaped, std::string* out) {
  out->clear();
  out->reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out->push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) return false;
    const int hi = hex_nibble(escaped[i + 1]);
    const int lo = hex_nibble(escaped[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return true;
}

constexpr const char* kChunkSuffix = ".chunk";

/// fsync a directory so a just-renamed entry survives a crash.
void fsync_dir(const std::string& dir, const std::string& who) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  ECC_CHECK_MSG(fd >= 0, who << ": cannot open dir " << dir << " for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  ECC_CHECK_MSG(rc == 0, who << ": fsync of dir " << dir << " failed");
}

}  // namespace

SocketTransport::SocketTransport(int rank, std::vector<Endpoint> peers,
                                 TransportOptions opts)
    : rank_(rank),
      peers_(std::move(peers)),
      opts_(std::move(opts)),
      stats_(opts_.stats != nullptr ? opts_.stats : &own_stats_) {
  ECC_CHECK_MSG(rank_ >= 0 && rank_ < static_cast<int>(peers_.size()),
                "transport rank " << rank_ << " outside peer table of "
                                  << peers_.size());
  // One override surface for every timing/window knob: the environment spec
  // (ECCHECK_NET_RETRY) applies over whatever the caller configured, so
  // multi-process harnesses can retune forked ranks without plumbing flags.
  static_cast<RetryPolicy&>(opts_) = RetryPolicy::from_env(opts_);
  // parse() rejects these, but the fields are also settable directly —
  // validate at construction, not when the first window stalls forever.
  ECC_CHECK_MSG(opts_.ack_window >= 1,
                "transport: ack_window must be >= 1, got "
                    << opts_.ack_window);
  ECC_CHECK_MSG(opts_.send_queue_frames >= 1,
                "transport: send_queue_frames must be >= 1, got "
                    << opts_.send_queue_frames);
  listener_ = listen_on(peers_[self_idx()]);
}

SocketTransport::~SocketTransport() { shutdown(); }

void SocketTransport::set_peers(std::vector<Endpoint> peers) {
  ECC_CHECK_MSG(peers.size() == peers_.size(),
                "set_peers must keep the world size");
  ECC_CHECK_MSG(out_.empty() && in_.empty(),
                "set_peers after connections were opened");
  // Keep the endpoint this rank actually bound (ephemeral TCP port).
  Endpoint self = peers_[self_idx()];
  peers_ = std::move(peers);
  peers_[self_idx()] = self;
}

void SocketTransport::reset_peer(int peer) {
  const std::size_t dropped = out_.erase(peer) + in_.erase(peer);
  if (dropped > 0) {
    stats_->add("net.reset.connections", dropped);
    stats_->add("net.reset.count");
  }
}

void SocketTransport::reset_all_peers() {
  const std::size_t dropped = out_.size() + in_.size();
  out_.clear();
  in_.clear();
  if (dropped > 0) {
    stats_->add("net.reset.connections", dropped);
    stats_->add("net.reset.count");
  }
}

int SocketTransport::debug_inbound_fd(int peer) const {
  auto it = in_.find(peer);
  return it == in_.end() ? -1 : it->second.sock.fd();
}

int SocketTransport::debug_outbound_fd(int peer) const {
  auto it = out_.find(peer);
  return it == out_.end() ? -1 : it->second.sock.fd();
}

void SocketTransport::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  out_.clear();
  in_.clear();
  if (listener_.valid() && peers_[self_idx()].kind == Endpoint::Kind::kUds)
    ::unlink(peers_[self_idx()].path.c_str());
  listener_.close();
}

std::string SocketTransport::fabric_name() const {
  return std::string("socket[") + tag() + "]";
}

cluster::Store& SocketTransport::store(int node) {
  ECC_CHECK_MSG(node == rank_, "rank " << rank_
                                       << " cannot access the store of rank "
                                       << node << " over a socket fabric");
  return store_;
}

std::string SocketTransport::who(const std::string& what, int peer) const {
  return "rank " + std::to_string(rank_) + " " + what + " peer " +
         std::to_string(peer) + " (" +
         peers_[static_cast<std::size_t>(peer)].to_string() + ")";
}

OutConn& SocketTransport::conn_to(int peer) {
  ECC_CHECK_MSG(!shut_down_, "transport already shut down");
  ECC_CHECK(peer >= 0 && peer < world_size() && peer != rank_);
  auto it = out_.find(peer);
  if (it != out_.end()) return it->second;

  obs::ScopedSpan span(std::string("net.connect[") + tag() + "]");
  int retries = 0;
  Socket s = connect_with_retry(peers_[static_cast<std::size_t>(peer)],
                                opts_.connect_timeout, opts_.connect_retries,
                                opts_.backoff_base, opts_.backoff_max,
                                who("connect to", peer), &retries);
  stats_->add("net.connect.count");
  if (retries > 0) stats_->add("net.retry.count",
                               static_cast<std::uint64_t>(retries));
  if (!opts_.tcp_nodelay) set_tcp_nodelay(s, false);
  // Introduce ourselves so the peer can pool this connection by rank. The
  // aux field carries our membership epoch: a fenced (stale) rank's hello
  // is rejected on the receiving side.
  FrameHeader hello;
  hello.type = FrameType::kHello;
  hello.src_rank = static_cast<std::uint32_t>(rank_);
  hello.aux = static_cast<std::uint32_t>(epoch_);
  std::uint8_t hdr[kFrameHeaderBytes];
  encode_frame_header(hello, hdr);
  write_full(s, hdr, sizeof(hdr), opts_.io_timeout, who("hello to", peer));
  OutConn conn;
  conn.sock = std::move(s);
  return out_.emplace(peer, std::move(conn)).first->second;
}

SocketTransport::InConn& SocketTransport::conn_from(int peer) {
  ECC_CHECK_MSG(!shut_down_, "transport already shut down");
  ECC_CHECK(peer >= 0 && peer < world_size() && peer != rank_);
  auto it = in_.find(peer);
  if (it != in_.end()) return it->second;

  const auto deadline = Clock::now() + opts_.io_timeout;
  for (;;) {
    const std::string ctx = who("await connection from", peer);
    Socket s = accept_with_timeout(listener_, remaining(deadline), ctx);
    stats_->add("net.accept.count");
    if (!opts_.tcp_nodelay) set_tcp_nodelay(s, false);
    std::uint8_t hdr[kFrameHeaderBytes];
    read_full(s, hdr, sizeof(hdr), remaining(deadline), ctx);
    std::uint32_t key_len = 0;
    bool has_trace = false;
    FrameHeader h = decode_frame_header(hdr, &key_len, &has_trace);
    ECC_CHECK_MSG(!has_trace, ctx << ": hello frames carry no trace context");
    ECC_CHECK_MSG(h.type == FrameType::kHello && key_len == 0 &&
                      h.payload_len == 0,
                  ctx << ": first frame was " << frame_type_name(h.type)
                      << ", expected hello");
    const int from = static_cast<int>(h.src_rank);
    ECC_CHECK_MSG(from >= 0 && from < world_size() && from != rank_,
                  ctx << ": hello names bogus rank " << from);
    // Membership fencing: both sides carrying a nonzero epoch must agree.
    // A resurrected rank that slept through a membership change still
    // holds the old epoch — its connection is dropped here, before any
    // data frame of a live collective could come from it. Epoch 0 on
    // either side means "no membership controller", the permissive
    // legacy mode.
    const std::uint64_t peer_epoch = h.aux;
    if (epoch_ != 0 && peer_epoch != 0 && peer_epoch != epoch_) {
      stats_->add("net.fenced.count");
      continue;  // closing s; the stale sender sees EOF/reset on next use
    }
    InConn conn;
    conn.sock = std::move(s);
    auto [pos, inserted] = in_.insert_or_assign(from, std::move(conn));
    (void)inserted;
    if (from == peer) return pos->second;
    // Someone else connected first (collectives overlap); keep them pooled
    // and continue waiting for the peer we need.
  }
}

Buffer SocketTransport::build_head(const FrameHeader& h) const {
  const bool traced = h.trace.trace_id != 0;
  const std::size_t trace_bytes = traced ? kTraceContextBytes : 0;
  Buffer head(kFrameHeaderBytes + trace_bytes + h.key.size(),
              Buffer::Init::kUninitialized);
  std::uint8_t* p = reinterpret_cast<std::uint8_t*>(head.data());
  encode_frame_header(h, p);
  if (traced) encode_trace_context(h.trace, p + kFrameHeaderBytes);
  std::memcpy(p + kFrameHeaderBytes + trace_bytes, h.key.data(),
              h.key.size());
  return head;
}

void SocketTransport::reap_acks(OutConn& c, std::size_t target,
                                const std::string& ctx) {
  while (c.window.size() > target) {
    const auto t0 = Clock::now();
    // One blocking read bounds the wait on the slowest ack; the rest of the
    // burst — the receiver acks back-to-back once it catches up — drains
    // with a single opportunistic recv instead of one syscall per ack.
    std::uint8_t buf[kFrameHeaderBytes * 32];
    read_full(c.sock, buf, kFrameHeaderBytes, opts_.io_timeout, ctx);
    std::size_t have = kFrameHeaderBytes;
    const std::size_t cap =
        std::min(c.window.size(), sizeof(buf) / kFrameHeaderBytes) *
        kFrameHeaderBytes;
    if (cap > have) {
      const ssize_t n =
          ::recv(c.sock.fd(), buf + have, cap - have, MSG_DONTWAIT);
      // n <= 0: nothing extra buffered yet (or a failure the next blocking
      // read will surface with full context) — not an error here.
      if (n > 0) have += static_cast<std::size_t>(n);
    }
    // Only whole acks are processed; finish a trailing partial one.
    if (const std::size_t rem = have % kFrameHeaderBytes; rem != 0) {
      read_full(c.sock, buf + have, kFrameHeaderBytes - rem,
                opts_.io_timeout, ctx);
      have += kFrameHeaderBytes - rem;
    }
    stats_->add("net.ack.wait_us",
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - t0)
                        .count()));
    for (std::size_t off = 0; off < have; off += kFrameHeaderBytes) {
      std::uint32_t ack_key_len = 0;
      bool ack_trace = false;
      FrameHeader ack =
          decode_frame_header(buf + off, &ack_key_len, &ack_trace);
      ECC_CHECK_MSG(ack.type == FrameType::kAck && ack_key_len == 0 &&
                        !ack_trace && ack.payload_len == 0,
                    ctx << ": expected ack, got "
                        << frame_type_name(ack.type));
      // Acks are matched by the sequence the receiver stamped into aux, not
      // by queue position: within the open window they may be reconciled in
      // any order (a misordering peer is still verified frame by frame).
      auto it = std::find_if(
          c.window.begin(), c.window.end(),
          [&](const PendingAck& w) { return w.seq == ack.aux; });
      ECC_CHECK_MSG(it != c.window.end(),
                    ctx << ": ack names sequence " << ack.aux
                        << " outside the open window of "
                        << c.window.size());
      ECC_CHECK_MSG(it->crc == ack.payload_crc,
                    ctx << ": ack CRC mismatch — payload corrupted in "
                           "flight");
      c.window.erase(it);
      stats_->add("net.ack.count");
    }
  }
}

void SocketTransport::flush_acks(int peer) {
  std::size_t outstanding = 0;
  for (auto& [rank, c] : out_)
    if (peer < 0 || rank == peer) outstanding += c.window.size();
  if (outstanding == 0) return;
  obs::ScopedSpan span(std::string("net.flush[") + tag() + "]");
  for (auto& [rank, c] : out_) {
    if (peer >= 0 && rank != peer) continue;
    const std::string ctx = who("flush acks from", rank);
    try {
      reap_acks(c, 0, ctx);
    } catch (...) {
      stats_->add("net.io_error.count");
      throw;
    }
  }
}

void SocketTransport::buffered_read(InConn& c, void* dst, std::size_t len,
                                    const std::string& ctx) {
  std::byte* out = static_cast<std::byte*>(dst);
  if (!opts_.scatter_gather) {
    // Legacy plane (A/B baseline): exact pre-pipelining receive path, one
    // read_full per header/key/payload.
    read_full(c.sock, out, len, opts_.io_timeout, ctx);
    return;
  }
  while (len > 0) {
    if (c.rpos < c.rlen) {
      const std::size_t take = std::min(len, c.rlen - c.rpos);
      std::memcpy(out, c.rbuf.data() + c.rpos, take);
      c.rpos += take;
      out += take;
      len -= take;
      continue;
    }
    if (len >= c.rbuf.size()) {
      // Big read (chunk payloads): land directly in the destination buffer,
      // no intermediate copy.
      read_full(c.sock, out, len, opts_.io_timeout, ctx);
      return;
    }
    c.rpos = 0;
    c.rlen = read_some(c.sock, c.rbuf.data(), c.rbuf.size(),
                       opts_.io_timeout, ctx);
  }
}

void SocketTransport::send_frame(int dst, FrameType type,
                                 const std::string& key, std::uint32_t aux,
                                 ByteSpan payload, int window) {
  obs::ScopedSpan span(std::string("net.send[") + tag() + "]",
                       payload.size());
  const std::string ctx = who(std::string("send ") + frame_type_name(type) +
                                  " to",
                              dst);
  try {
    OutConn& c = conn_to(dst);
    FrameHeader h;
    h.type = type;
    h.src_rank = static_cast<std::uint32_t>(rank_);
    h.aux = aux;
    h.key = key;
    h.payload_len = payload.size();
    h.payload_crc = crc64(payload);
    // Propagate the distributed trace: parent the receiver's recv span
    // under THIS send span (not the surrounding context), so the merged
    // trace shows the hop itself. Only stamped while tracing is on — an
    // untraced run ships byte-identical frames.
    if (span.active() && span.span_id() != 0) {
      const obs::TraceContext tc = obs::current_trace_context();
      h.trace.trace_id = tc.trace_id;
      h.trace.parent_span = span.span_id();
      h.trace.op = static_cast<std::uint32_t>(type);
    }
    const Buffer head = build_head(h);

    Buffer mangled;  // must outlive the write below
    ByteSpan wire_payload = payload;
    if (corrupt_next_ && !payload.empty()) {
      // Chaos injection: the header already carries the CRC of the clean
      // payload, so flipping one byte now is indistinguishable from wire
      // corruption — the receiver's CRC check fails and both ends abort
      // the collective through the normal error path.
      corrupt_next_ = false;
      mangled = Buffer::copy_of(payload);
      mangled.data()[0] ^= std::byte{0x5a};
      stats_->add("net.corrupt.injected");
      wire_payload = mangled.span();
    }
    if (opts_.scatter_gather) {
      // Zero-copy framing: header [+trace] [+key] and the payload leave in
      // one gather write straight from their source buffers.
      const IoSlice slices[2] = {{head.data(), head.size()},
                                 {wire_payload.data(), wire_payload.size()}};
      writev_full(c.sock, slices, 2, opts_.io_timeout, ctx);
      stats_->add("net.send.writev_bytes", head.size() + wire_payload.size());
    } else {
      // Legacy copy-framing path (A/B baseline): one contiguous buffer for
      // header+key, then the payload as its own write.
      write_full(c.sock, head.data(), head.size(), opts_.io_timeout, ctx);
      if (!wire_payload.empty())
        write_full(c.sock, wire_payload.data(), wire_payload.size(),
                   opts_.io_timeout, ctx);
    }
    stats_->add("net.send.bytes", payload.size());
    stats_->add("net.send.count");

    // Sliding ack window: record the frame, then reconcile CRC-echo acks
    // until fewer than `window` remain outstanding. window=1 degenerates to
    // stop-and-wait — send, then block for this frame's ack — exactly the
    // pre-pipelining behavior, which control frames keep. A dead or
    // corrupting peer fails here (or at the next flush), inside io_timeout.
    c.window.push_back({c.next_seq++, h.payload_crc});
    stats_->observe("net.ack.window", static_cast<double>(c.window.size()));
    const int w = std::max(1, window);
    if (static_cast<int>(c.window.size()) >= w)
      reap_acks(c, static_cast<std::size_t>(w - 1), ctx);
  } catch (...) {
    stats_->add("net.io_error.count");
    throw;
  }
}

void SocketTransport::pump_frames(std::vector<PumpFrame> frames,
                                  const char* what) {
  std::size_t total = 0;
  for (const PumpFrame& f : frames)
    total += f.owned.empty() ? f.payload.size() : f.owned.size();
  obs::ScopedSpan span(std::string("net.pump[") + tag() + "]", total);
  stats_->add("net.pump.count");
  SendPump pump(opts_.io_timeout, stats_, opts_.send_queue_frames);
  for (PumpFrame& f : frames) {
    OutConn& c = conn_to(f.peer);
    f.header.src_rank = static_cast<std::uint32_t>(rank_);
    // Parent every hop under the pump span, mirroring send_frame's
    // per-frame stamping — the merged trace shows the fan-out as one span
    // with world_size receive edges.
    if (span.active() && span.span_id() != 0) {
      const obs::TraceContext tc = obs::current_trace_context();
      f.header.trace.trace_id = tc.trace_id;
      f.header.trace.parent_span = span.span_id();
      f.header.trace.op = static_cast<std::uint32_t>(f.header.type);
    }
    pump.enqueue(f.peer, &c, who(std::string(what) + " to", f.peer),
                 build_head(f.header), f.payload, std::move(f.owned),
                 f.header.payload_crc);
  }
  const std::vector<SendPump::Failure> failures = pump.run();
  if (failures.empty()) return;
  // Dead peers' connections are in an undefined protocol state — drop them
  // so a later retry reconnects cleanly — then fail the collective with the
  // first typed message (the others died the same way).
  for (const SendPump::Failure& f : failures) out_.erase(f.peer);
  stats_->add("net.io_error.count", failures.size());
  std::string msg = failures.front().message;
  if (failures.size() > 1)
    msg += " (+" + std::to_string(failures.size() - 1) + " more peers)";
  throw CheckFailure(msg);
}

SocketTransport::Received SocketTransport::recv_frame(int src,
                                                      FrameType expect) {
  obs::ScopedSpan span(std::string("net.recv[") + tag() + "]");
  const std::string ctx = who(std::string("recv ") + frame_type_name(expect) +
                                  " from",
                              src);
  try {
    InConn& c = conn_from(src);
    std::uint8_t hdr[kFrameHeaderBytes];
    buffered_read(c, hdr, sizeof(hdr), ctx);
    std::uint32_t key_len = 0;
    bool has_trace = false;
    Received r;
    r.header = decode_frame_header(hdr, &key_len, &has_trace);
    if (has_trace) {
      std::uint8_t tbuf[kTraceContextBytes];
      buffered_read(c, tbuf, sizeof(tbuf), ctx);
      r.header.trace = decode_trace_context(tbuf);
      // Link this recv under the sender's send span — the cross-process
      // edge of the merged trace.
      span.adopt(r.header.trace.trace_id, r.header.trace.parent_span);
    }
    ECC_CHECK_MSG(r.header.type == expect,
                  ctx << ": got " << frame_type_name(r.header.type));
    ECC_CHECK_MSG(static_cast<int>(r.header.src_rank) == src,
                  ctx << ": frame claims rank " << r.header.src_rank);
    if (key_len > 0) {
      r.header.key.resize(key_len);
      buffered_read(c, r.header.key.data(), key_len, ctx);
    }
    r.payload = Buffer(r.header.payload_len, Buffer::Init::kUninitialized);
    if (!r.payload.empty())
      buffered_read(c, r.payload.data(), r.payload.size(), ctx);
    ECC_CHECK_MSG(crc64(r.payload.span()) == r.header.payload_crc,
                  ctx << ": payload CRC mismatch — wire corruption");
    stats_->add("net.recv.bytes", r.payload.size());
    stats_->add("net.recv.count");
    span.set_bytes(r.payload.size());

    FrameHeader ack;
    ack.type = FrameType::kAck;
    ack.src_rank = static_cast<std::uint32_t>(rank_);
    // Stamp the per-connection sequence of the frame being acknowledged:
    // both sides count acknowledged frames on this stream since the hello,
    // so the sender can reconcile windowed acks even out of order.
    ack.aux = c.ack_seq++;
    ack.payload_crc = r.header.payload_crc;
    std::uint8_t ack_hdr[kFrameHeaderBytes];
    encode_frame_header(ack, ack_hdr);
    write_full(c.sock, ack_hdr, sizeof(ack_hdr), opts_.io_timeout, ctx);
    return r;
  } catch (...) {
    stats_->add("net.io_error.count");
    throw;
  }
}

void SocketTransport::net_send(int src, int dst, std::size_t bytes,
                               const std::string&) {
  ECC_CHECK_MSG(src != dst, "net_send to self");
  if (rank_ == src) {
    Buffer zeros(bytes, Buffer::Init::kZeroed);
    send_frame(dst, FrameType::kBytes, "", 0, zeros.span());
  } else if (rank_ == dst) {
    recv_frame(src, FrameType::kBytes);  // pure traffic: discard
  }
}

void SocketTransport::send_buffer(int src, int dst, const std::string& src_key,
                                  const std::string& dst_key) {
  ECC_CHECK_MSG(src != dst, "send_buffer to self");
  if (rank_ == src) {
    // Windowed: the ack may be deferred (reconciled on a later send to the
    // same peer, at flush_acks, or at the next barrier) so back-to-back
    // ships to one peer pipeline instead of paying an RTT each.
    send_frame(dst, FrameType::kPut, dst_key, 0, store_.get(src_key).span(),
               opts_.ack_window);
  } else if (rank_ == dst) {
    Received r = recv_frame(src, FrameType::kPut);
    ECC_CHECK(r.header.key == dst_key);
    store_.put(r.header.key, std::move(r.payload));
  }
}

void SocketTransport::send_buffers(
    int src, int dst,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  ECC_CHECK_MSG(src != dst, "send_buffers to self");
  if (pairs.empty()) return;
  if (rank_ == src) {
    obs::ScopedSpan span(std::string("net.batch[") + tag() + "]");
    for (const auto& [src_key, dst_key] : pairs)
      send_frame(dst, FrameType::kPut, dst_key, 0,
                 store_.get(src_key).span(), opts_.ack_window);
    // Unlike single send_buffer calls, the batch declares its own end —
    // reconcile it fully so a deferred failure is attributed to this batch
    // rather than to whatever touches the peer next.
    flush_acks(dst);
  } else if (rank_ == dst) {
    for (const auto& [src_key, dst_key] : pairs) {
      Received r = recv_frame(src, FrameType::kPut);
      ECC_CHECK(r.header.key == dst_key);
      store_.put(r.header.key, std::move(r.payload));
    }
  }
}

void SocketTransport::broadcast(const std::vector<int>& nodes, int root,
                                const std::string& key) {
  if (!contains(nodes, rank_)) return;
  obs::ScopedSpan span("fabric.broadcast");
  if (rank_ == root) {
    std::size_t fan_out = 0;
    for (int dst : nodes)
      if (dst != root) ++fan_out;
    if (opts_.ack_window > 1 && fan_out > 1) {
      // Epoll fan-out: all peers' frames in flight together, each peer
      // bounded by its own progress deadline — a dead peer no longer
      // serializes the broadcast behind its timeout.
      const Buffer& payload = store_.get(key);
      std::vector<PumpFrame> frames;
      frames.reserve(fan_out);
      for (int dst : nodes) {
        if (dst == root) continue;
        PumpFrame f;
        f.peer = dst;
        f.header.type = FrameType::kPut;
        f.header.key = key;
        f.header.payload_len = payload.size();
        f.header.payload_crc = crc64(payload.span());
        f.payload = payload.span();
        if (corrupt_next_ && !payload.empty()) {
          corrupt_next_ = false;
          f.owned = Buffer::copy_of(payload.span());
          f.owned.data()[0] ^= std::byte{0x5a};
          stats_->add("net.corrupt.injected");
        }
        frames.push_back(std::move(f));
      }
      pump_frames(std::move(frames), "broadcast");
    } else {
      for (int dst : nodes) {
        if (dst == root) continue;
        // Re-resolve per fan-out send, mirroring the simulated collective.
        send_frame(dst, FrameType::kPut, key, 0, store_.get(key).span());
      }
    }
  } else {
    Received r = recv_frame(root, FrameType::kPut);
    ECC_CHECK(r.header.key == key);
    store_.put(key, std::move(r.payload));
  }
}

void SocketTransport::all_gather(
    const std::vector<int>& nodes,
    const std::function<std::string(int)>& key_of) {
  const int p = static_cast<int>(nodes.size());
  if (!contains(nodes, rank_) || p <= 1) return;
  obs::ScopedSpan span("fabric.all_gather");
  const int pos = static_cast<int>(
      std::find(nodes.begin(), nodes.end(), rank_) - nodes.begin());
  const int right = nodes[static_cast<std::size_t>((pos + 1) % p)];
  const int left = nodes[static_cast<std::size_t>((pos - 1 + p) % p)];

  // Ring: at step t, forward the chunk that originated (pos - t) positions
  // back; receive the one originating (pos - 1 - t) back. Even positions
  // send before receiving, odd positions the reverse — with at least one
  // odd position in any p ≥ 2 ring, the cyclic wait cannot close.
  for (int t = 0; t < p - 1; ++t) {
    const std::string send_key =
        key_of(nodes[static_cast<std::size_t>(((pos - t) % p + p) % p)]);
    const std::string recv_key =
        key_of(nodes[static_cast<std::size_t>(((pos - 1 - t) % p + p) % p)]);
    auto do_send = [&] {
      // Windowed: the ring's next step can start before this segment's ack
      // returned; misdelivery is still caught by the receiver's key check
      // and the deferred CRC-echo reconciliation.
      send_frame(right, FrameType::kPut, send_key, 0,
                 store_.get(send_key).span(), opts_.ack_window);
    };
    auto do_recv = [&] {
      Received r = recv_frame(left, FrameType::kPut);
      ECC_CHECK_MSG(r.header.key == recv_key,
                    "all_gather step " << t << ": expected '" << recv_key
                                       << "', got '" << r.header.key << "'");
      store_.put(recv_key, std::move(r.payload));
    };
    if (pos % 2 == 0) {
      do_send();
      do_recv();
    } else {
      do_recv();
      do_send();
    }
  }
}

void SocketTransport::ring_all_reduce_xor(const std::vector<int>& nodes,
                                          const std::string& key) {
  const int p = static_cast<int>(nodes.size());
  if (!contains(nodes, rank_) || p <= 1) return;
  obs::ScopedSpan span("fabric.ring_all_reduce_xor");
  const int pos = static_cast<int>(
      std::find(nodes.begin(), nodes.end(), rank_) - nodes.begin());
  const int right = nodes[static_cast<std::size_t>((pos + 1) % p)];
  const int left = nodes[static_cast<std::size_t>((pos - 1 + p) % p)];

  Buffer work = store_.get(key).clone();
  const std::size_t total = work.size();
  const gf::simd::Kernels& kernels = gf::simd::active();

  // Reduce-scatter then all-gather over the shared segment geometry
  // (cluster::ring_segment) — the same true per-step sizes the simulated
  // collective charges, so both fabrics move identical bytes.
  for (int phase = 0; phase < 2; ++phase) {
    for (int t = 0; t < p - 1; ++t) {
      const int send_idx = cluster::ring_send_segment(p, phase, t, pos);
      const int recv_idx =
          cluster::ring_send_segment(p, phase, t, (pos - 1 + p) % p);
      const cluster::RingSegment send_seg =
          cluster::ring_segment(total, p, send_idx);
      const cluster::RingSegment recv_seg =
          cluster::ring_segment(total, p, recv_idx);
      auto do_send = [&] {
        // Windowed; safe to keep mutating `work` afterwards — the gather
        // write completed into the kernel before send_frame returned, only
        // the ack is deferred.
        send_frame(right, FrameType::kSegment, key,
                   static_cast<std::uint32_t>(send_idx),
                   work.subspan(send_seg.offset, send_seg.size),
                   opts_.ack_window);
      };
      auto do_recv = [&] {
        Received r = recv_frame(left, FrameType::kSegment);
        ECC_CHECK_MSG(r.header.aux == static_cast<std::uint32_t>(recv_idx) &&
                          r.payload.size() == recv_seg.size,
                      "ring step " << phase << "/" << t << ": got segment "
                                   << r.header.aux << " of "
                                   << r.payload.size() << "B, expected "
                                   << recv_idx << " of " << recv_seg.size
                                   << "B — peers disagree on the buffer");
        if (phase == 0) {
          kernels.xor_into(work.data() + recv_seg.offset, r.payload.data(),
                           recv_seg.size);
        } else if (recv_seg.size > 0) {
          std::memcpy(work.data() + recv_seg.offset, r.payload.data(),
                      recv_seg.size);
        }
      };
      if (pos % 2 == 0) {
        do_send();
        do_recv();
      } else {
        do_recv();
        do_send();
      }
    }
  }
  store_.put(key, std::move(work));
}

std::string SocketTransport::remote_path(const std::string& remote_key) const {
  ECC_CHECK_MSG(!opts_.remote_dir.empty(),
                "remote store disabled (TransportOptions::remote_dir empty)");
  return opts_.remote_dir + "/" + escape_key(remote_key) + ".chunk";
}

void SocketTransport::remote_write(int node, const std::string& key,
                                   const std::string& remote_key) {
  if (rank_ != node) return;
  const Buffer& payload = store_.get(key);
  obs::ScopedSpan span("remote.write[file]", payload.size());
  {
    std::error_code ec;
    std::filesystem::create_directories(opts_.remote_dir, ec);
  }
  const std::string path = remote_path(remote_key);
  const std::string tmp = path + ".tmp." + std::to_string(rank_);
  {
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ECC_CHECK_MSG(fd >= 0, "remote store: cannot open " << tmp);
    Socket holder(fd);  // RAII close on any throw below
    std::uint8_t hdr[24];
    put_u64_le(hdr, kRemoteChunkMagic);
    put_u64_le(hdr + 8, payload.size());
    put_u64_le(hdr + 16, crc64(payload.span()));
    auto write_all = [&](const void* p, std::size_t n) {
      const char* c = static_cast<const char*>(p);
      while (n > 0) {
        ssize_t w = ::write(fd, c, n);
        if (w < 0 && errno == EINTR) continue;
        ECC_CHECK_MSG(w > 0, "remote store: short write to " << tmp);
        c += w;
        n -= static_cast<std::size_t>(w);
      }
    };
    write_all(hdr, sizeof(hdr));
    write_all(payload.data(), payload.size());
    // Durability before visibility: the data must be on stable storage
    // before the rename publishes it, and the rename itself must be synced
    // via the directory — otherwise a host crash can publish a torn chunk
    // under the final name, which remote_read would then reject forever.
    ECC_CHECK_MSG(::fsync(fd) == 0, "remote store: fsync of " << tmp
                                                              << " failed");
  }
  // Atomic publish: a reader (or a crash) never observes a torn chunk.
  ECC_CHECK_MSG(::rename(tmp.c_str(), path.c_str()) == 0,
                "remote store: rename to " << path << " failed");
  fsync_dir(opts_.remote_dir, "remote store");
  stats_->add("remote.write.bytes", payload.size());
  stats_->add("remote.write.count");
}

void SocketTransport::remote_read(int node, const std::string& remote_key,
                                  const std::string& key) {
  if (rank_ != node) return;
  const std::string path = remote_path(remote_key);
  std::ifstream f(path, std::ios::binary);
  ECC_CHECK_MSG(f.good(), "remote store: missing chunk " << path);
  std::uint8_t hdr[24];
  f.read(reinterpret_cast<char*>(hdr), sizeof(hdr));
  ECC_CHECK_MSG(f.gcount() == sizeof(hdr) &&
                    get_u64_le(hdr) == kRemoteChunkMagic,
                "remote store: " << path << " is not a chunk file");
  const std::uint64_t len = get_u64_le(hdr + 8);
  const std::uint64_t crc = get_u64_le(hdr + 16);
  ECC_CHECK_MSG(len <= kMaxPayloadLen, "remote store: bogus length in "
                                           << path);
  Buffer payload(len, Buffer::Init::kUninitialized);
  f.read(reinterpret_cast<char*>(payload.data()),
         static_cast<std::streamsize>(len));
  ECC_CHECK_MSG(static_cast<std::uint64_t>(f.gcount()) == len,
                "remote store: truncated chunk " << path);
  obs::ScopedSpan span("remote.read[file]", len);
  ECC_CHECK_MSG(crc64(payload.span()) == crc,
                "remote store: CRC mismatch in " << path
                                                 << " — chunk corrupted");
  stats_->add("remote.read.bytes", len);
  stats_->add("remote.read.count");
  store_.put(key, std::move(payload));
}

bool SocketTransport::remote_contains(int node,
                                      const std::string& remote_key) {
  ECC_CHECK_MSG(node == rank_, "remote_contains for a rank not driven here");
  if (opts_.remote_dir.empty()) return false;
  std::error_code ec;
  return std::filesystem::exists(remote_path(remote_key), ec);
}

std::vector<std::string> SocketTransport::remote_list(
    int node, const std::string& prefix) {
  ECC_CHECK_MSG(node == rank_, "remote_list for a rank not driven here");
  std::vector<std::string> keys;
  if (opts_.remote_dir.empty()) return keys;
  std::error_code ec;
  std::filesystem::directory_iterator it(opts_.remote_dir, ec);
  if (ec) return keys;  // directory not created yet = empty store
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    // Published chunks end in ".chunk"; in-flight ".chunk.tmp.<rank>" files
    // are not part of the store.
    if (name.size() <= std::strlen(kChunkSuffix) ||
        name.compare(name.size() - std::strlen(kChunkSuffix),
                     std::string::npos, kChunkSuffix) != 0)
      continue;
    std::string key;
    if (!unescape_key(name.substr(0, name.size() - std::strlen(kChunkSuffix)),
                      &key))
      continue;
    if (key.rfind(prefix, 0) == 0) keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void SocketTransport::remote_erase(int node, const std::string& remote_key) {
  ECC_CHECK_MSG(node == rank_, "remote_erase for a rank not driven here");
  if (opts_.remote_dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove(remote_path(remote_key), ec);
}

void SocketTransport::barrier(const std::vector<int>& nodes) {
  if (!contains(nodes, rank_) || nodes.size() <= 1) return;
  // Reconcile every deferred ack first: a barrier promises "everything
  // before it completed", so a peer that died or saw corruption after a
  // windowed send must fail HERE, before the rendezvous — the checkpoint
  // protocols barrier before committing, which is what keeps the
  // torn-save/commit contract intact under pipelining.
  flush_acks();
  obs::ScopedSpan span("fabric.barrier");
  const int root = nodes[0];
  if (rank_ == root) {
    // Gather then release: every participant checked in before anyone
    // proceeds.
    for (int n : nodes)
      if (n != root) recv_frame(n, FrameType::kBarrier);
    std::size_t fan_out = 0;
    for (int n : nodes)
      if (n != root) ++fan_out;
    if (opts_.ack_window > 1 && fan_out > 1) {
      // Release everyone through the pump: at large world sizes the
      // serial release otherwise costs world_size ack round trips.
      std::vector<PumpFrame> frames;
      frames.reserve(fan_out);
      for (int n : nodes) {
        if (n == root) continue;
        PumpFrame f;
        f.peer = n;
        f.header.type = FrameType::kBarrier;
        frames.push_back(std::move(f));
      }
      pump_frames(std::move(frames), "barrier release");
    } else {
      for (int n : nodes)
        if (n != root) send_frame(n, FrameType::kBarrier, "", 0, {});
    }
  } else {
    send_frame(root, FrameType::kBarrier, "", 0, {});
    recv_frame(root, FrameType::kBarrier);
  }
}

}  // namespace eccheck::net
