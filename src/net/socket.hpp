// POSIX socket primitives for the real transport: RAII fds, endpoint
// addressing (TCP and Unix-domain), and fully time-bounded I/O.
//
// Every blocking point — connect, accept, read, write — goes through
// poll(2) with a caller-supplied deadline, so a dead or wedged peer can
// never hang the checkpoint protocol: the operation throws CheckFailure
// when the timeout elapses, which is exactly the failure signal the rest
// of the system (Session, FailureDetector, chaos invariants) already
// understands. connect additionally retries with bounded exponential
// backoff, because in SPMD startup a peer's listener may simply not exist
// yet.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace eccheck::net {

using Millis = std::chrono::milliseconds;

/// A place a transport rank listens on: either a Unix-domain socket path
/// ("unix:/tmp/ec/rank0.sock") or a TCP host:port ("tcp:127.0.0.1:9000").
struct Endpoint {
  enum class Kind { kUds, kTcp };

  Kind kind = Kind::kUds;
  std::string path;         ///< kUds: filesystem path
  std::string host;         ///< kTcp: numeric IPv4 address or "localhost"
  std::uint16_t port = 0;   ///< kTcp: port (0 = bind ephemeral)

  static Endpoint uds(std::string path);
  static Endpoint tcp(std::string host, std::uint16_t port);

  /// Parse "unix:<path>" or "tcp:<host>:<port>"; throws CheckFailure on
  /// malformed specs.
  static Endpoint parse(const std::string& spec);

  std::string to_string() const;
  /// Short transport tag for span names / stats: "uds" or "tcp".
  const char* tag() const { return kind == Kind::kUds ? "uds" : "tcp"; }
};

/// Move-only RAII fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  /// Release ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Bind + listen on `ep`. A stale UDS path is unlinked first (a replacement
/// rank re-listens on its predecessor's address); TCP sets SO_REUSEADDR.
/// For TCP port 0 the actual bound port is written back into `ep`.
Socket listen_on(Endpoint& ep, int backlog = 16);

/// Toggle TCP_NODELAY on a connected TCP socket; a no-op for non-TCP fds.
void set_tcp_nodelay(const Socket& s, bool on = true);

/// True when TCP_NODELAY is set on `s` (false for non-TCP fds).
bool tcp_nodelay_on(const Socket& s);

/// Accept one connection, waiting at most `timeout`; throws CheckFailure on
/// timeout ("no peer connected") or listener error. Accepted TCP sockets
/// get TCP_NODELAY, matching the connect side — the CRC-echo ack sent back
/// on an accepted connection must not sit behind Nagle.
Socket accept_with_timeout(const Socket& listener, Millis timeout,
                           const std::string& who);

namespace detail {
/// connect(2) outcomes that mean "in flight, poll for completion": the
/// canonical EINPROGRESS, and EINTR — a signal interrupted the call but the
/// connection still proceeds in the background (POSIX), so treating it as
/// fatal would kill healthy SPMD startups under chaos signals.
constexpr bool connect_pending(int err) {
  return err == EINPROGRESS || err == EINTR;
}
}  // namespace detail

/// Connect to `ep`, retrying ECONNREFUSED/ENOENT (listener not up yet) with
/// exponential backoff: attempt i sleeps min(backoff_base·2^i, backoff_max)
/// before retrying, up to `retries` retries. Each individual attempt is
/// bounded by `connect_timeout`. Throws CheckFailure once the budget is
/// exhausted — a peer that never comes up is a dead peer.
/// `retry_count`, when non-null, accumulates the number of retries taken.
Socket connect_with_retry(const Endpoint& ep, Millis connect_timeout,
                          int retries, Millis backoff_base, Millis backoff_max,
                          const std::string& who, int* retry_count = nullptr);

/// One bounded connect attempt against `ep`, classifying the outcome for
/// liveness probing: kOk (listener accepted — the process exists, though it
/// may be wedged), kRefused (connection refused / path gone: hard evidence
/// the process is dead), kTimeout (no answer within `timeout`: a gray
/// peer — SIGSTOP'd, overloaded, or partitioned). Never throws for those
/// three outcomes; only genuinely unexpected socket errors raise
/// CheckFailure.
enum class ProbeResult { kOk, kRefused, kTimeout };
ProbeResult probe_endpoint(const Endpoint& ep, Millis timeout);

/// Write exactly `len` bytes before `timeout` elapses (deadline covers the
/// whole transfer). EPIPE/ECONNRESET/timeout → CheckFailure.
void write_full(const Socket& s, const void* data, std::size_t len,
                Millis timeout, const std::string& who);

/// One scatter-gather region of a writev_full call.
struct IoSlice {
  const void* data = nullptr;
  std::size_t len = 0;
};

/// Gather-write every slice, in order, before `timeout` elapses — the
/// zero-copy framing primitive: header, trace context, key and payload go
/// out in one sendmsg(2) directly from their source buffers instead of
/// being copied into a contiguous frame first. Partial writes advance
/// through the slice list; the error taxonomy matches write_full.
void writev_full(const Socket& s, const IoSlice* slices, std::size_t count,
                 Millis timeout, const std::string& who);

/// Read exactly `len` bytes before `timeout` elapses. EOF (peer died) /
/// ECONNRESET / timeout → CheckFailure.
void read_full(const Socket& s, void* data, std::size_t len, Millis timeout,
               const std::string& who);

/// Read *at least one* byte, up to `cap`, before `timeout` elapses; returns
/// how many landed. The buffered-receive primitive: one syscall pulls in
/// whatever burst of small frames is already queued. Error taxonomy matches
/// read_full (EOF / reset / timeout → CheckFailure).
std::size_t read_some(const Socket& s, void* data, std::size_t cap,
                      Millis timeout, const std::string& who);

}  // namespace eccheck::net
