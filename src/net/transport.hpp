// SocketTransport: the real-socket implementation of cluster::Fabric.
//
// Each process drives exactly one global rank: it listens on its own
// endpoint (TCP or Unix-domain) and lazily opens pooled connections to
// peers the first time it sends to / receives from them. The fabric
// helpers are collective SPMD calls — every participating rank makes the
// same call with the same arguments, like an MPI program — and the
// transport executes this rank's side with fully time-bounded I/O
// (see net/socket.hpp) plus CRC64-verified, acknowledged frames
// (see net/frame.hpp).
//
// Ring collectives (all_gather, ring_all_reduce_xor) alternate
// send-before-receive by ring-position parity, so the classic cyclic-wait
// deadlock cannot form even with acknowledged transfers; the segment
// geometry is shared with the simulated collectives
// (cluster::ring_segment), which is what makes the differential suite's
// byte-identical comparison possible.
//
// Data plane: frames go out via scatter-gather writev directly from the
// source buffers (no copy into a frame buffer), and each connection keeps a
// sliding window of up to RetryPolicy::ack_window data frames in flight —
// the receiver stamps every CRC-echo ack with the per-connection sequence
// of the frame it acknowledges, and the sender reconciles acks (possibly
// out of order) whenever the window is full, at explicit flush points, and
// always before a barrier returns. Control frames (hello, barrier, pure
// net_send traffic) stay stop-and-wait. ack_window=1 reproduces the
// pre-pipelining stop-and-wait plane exactly. Multi-peer fan-outs
// (broadcast root, barrier release) run through an epoll SendPump
// (net/send_pump.hpp) with bounded per-peer queues so one dead peer stalls
// only its own queue. Deferred acks weaken per-call completion only on the
// SENDER side: the receiving rank's matching SPMD call still blocks until
// the bytes landed and verified, and every deferred failure (dead peer,
// CRC mismatch) surfaces as typed CheckFailure at the next reconciliation
// point, which the checkpoint protocols place before any commit (their
// saves end with a barrier).
//
// Peer death — a connect that exhausts its retry budget, an EOF, a reset,
// or a timeout — surfaces as the repo-wide CheckFailure, exactly like a
// mid-operation kill() in the simulator, so supervision logic
// (Session / FailureDetector / chaos invariants) works unchanged. After a
// failed rank is replaced by a fresh process on the same endpoint, call
// reset_peer(rank) to drop the stale pooled connections.
//
// The persistent remote store is a directory: remote_write/remote_read move
// chunks as CRC-trailered files with atomic rename, so they survive any
// worker process dying — the real-world analogue of the simulator's
// kill-proof remote Store.
#pragma once

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/fabric.hpp"
#include "net/frame.hpp"
#include "net/retry_policy.hpp"
#include "net/send_pump.hpp"
#include "net/socket.hpp"
#include "obs/stats.hpp"

namespace eccheck::net {

/// Every timing knob (connect budget, backoff, io_timeout, heartbeat
/// cadence) lives in the inherited RetryPolicy — one struct, one parser
/// (RetryPolicy::parse / from_env); the fields below are the non-timing
/// transport configuration.
struct TransportOptions : RetryPolicy {
  /// TCP_NODELAY on both connected and accepted sockets (default on: the
  /// frame protocol is ack-per-frame, so Nagle/delayed-ack interplay adds a
  /// full RTT of latency per frame). Off exists for A/B benchmarking.
  bool tcp_nodelay = true;

  /// Scatter-gather framing: header, trace context, key and payload go out
  /// in one writev directly from their source buffers. Off restores the
  /// copy-into-a-frame-buffer path — together with ack_window=1 that is
  /// exactly the pre-pipelining data plane, kept for A/B benchmarking
  /// (bench/scale_transport measures the win against it).
  bool scatter_gather = true;

  /// Directory backing the persistent remote store; empty disables
  /// remote_write/remote_read.
  std::string remote_dir;

  /// External registry for byte counters; nullptr = transport-owned.
  obs::StatsRegistry* stats = nullptr;
};

class SocketTransport final : public cluster::Fabric {
 public:
  /// Bind rank `rank`'s listener on peers[rank] (a TCP port of 0 binds an
  /// ephemeral port, readable back via listen_endpoint()). Connections to
  /// peers open lazily on first use.
  SocketTransport(int rank, std::vector<Endpoint> peers,
                  TransportOptions opts = {});
  ~SocketTransport() override;

  /// The endpoint actually bound (differs from the ctor argument only for
  /// TCP port 0).
  const Endpoint& listen_endpoint() const { return peers_[self_idx()]; }

  /// Replace the peer table (e.g. after ephemeral TCP ports were exchanged
  /// out of band). Must be called before any communication happens.
  void set_peers(std::vector<Endpoint> peers);

  /// Drop pooled connections to `peer` — required after the peer process
  /// was replaced by a fresh one listening on the same endpoint.
  void reset_peer(int peer);

  /// Drop every pooled connection (the listener stays up). After a
  /// collective aborted mid-flight (peer death), connections between the
  /// *surviving* ranks can hold half-delivered frames; every survivor calls
  /// this at a synchronized point before the next collective so all sides
  /// reconnect with a clean protocol state.
  void reset_all_peers();

  /// Close the listener and every pooled connection. Further fabric calls
  /// on any rank that talks to this one fail with CheckFailure — used by
  /// tests to simulate an orderly peer death.
  void shutdown();

  const TransportOptions& options() const { return opts_; }

  /// Membership-generation fencing. The hello handshake carries this
  /// epoch; an incoming connection whose hello names a *different* nonzero
  /// epoch while ours is nonzero is rejected (closed, `net.fenced.count`),
  /// so a stale resurrected rank — SIGSTOP'd through a membership change —
  /// can never join a collective and commit with survivors. Epoch 0 (the
  /// default) is permissive on either side: standalone fabrics without a
  /// membership controller keep working unchanged.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  std::uint64_t epoch() const { return epoch_; }

  /// Reconcile every outstanding CRC-echo ack on the connection to `peer`
  /// (or on every pooled connection when peer == -1). This is where a
  /// deferred failure — a peer that died or detected corruption after the
  /// windowed send returned — surfaces as typed CheckFailure, bounded by
  /// io_timeout per ack. barrier() calls it for all peers before the
  /// rendezvous, so collectives are fully reconciled at every barrier.
  void flush_acks(int peer = -1);

  /// Chaos hook: corrupt the next outgoing data frame — one payload byte
  /// is flipped *after* the CRC is computed, so the receiver sees a real
  /// wire-level CRC mismatch and both sides abort the collective through
  /// the production error path.
  void corrupt_next_frame() { corrupt_next_ = true; }

  /// Raw fds of pooled connections, -1 when none exists — test/bench hooks
  /// for asserting socket options on live connections.
  int debug_inbound_fd(int peer) const;
  int debug_outbound_fd(int peer) const;

  // ---- cluster::Fabric ---------------------------------------------------
  std::string fabric_name() const override;
  int world_size() const override { return static_cast<int>(peers_.size()); }
  bool drives(int node) const override { return node == rank_; }
  int self_rank() const override { return rank_; }
  cluster::Store& store(int node) override;

  void net_send(int src, int dst, std::size_t bytes,
                const std::string& label) override;
  void send_buffer(int src, int dst, const std::string& src_key,
                   const std::string& dst_key) override;
  void send_buffers(
      int src, int dst,
      const std::vector<std::pair<std::string, std::string>>& pairs) override;
  void broadcast(const std::vector<int>& nodes, int root,
                 const std::string& key) override;
  void all_gather(const std::vector<int>& nodes,
                  const std::function<std::string(int)>& key_of) override;
  void ring_all_reduce_xor(const std::vector<int>& nodes,
                           const std::string& key) override;
  void remote_write(int node, const std::string& key,
                    const std::string& remote_key) override;
  void remote_read(int node, const std::string& remote_key,
                   const std::string& key) override;
  bool remote_contains(int node, const std::string& remote_key) override;
  std::vector<std::string> remote_list(int node,
                                       const std::string& prefix) override;
  void remote_erase(int node, const std::string& remote_key) override;
  obs::StatsRegistry& stats() override { return *stats_; }
  void barrier(const std::vector<int>& nodes) override;

 private:
  std::size_t self_idx() const { return static_cast<std::size_t>(rank_); }
  std::string who(const std::string& what, int peer) const;
  const char* tag() const { return peers_[self_idx()].tag(); }

  /// Inbound connection with the receive-side ack sequence counter: every
  /// acknowledged frame read on this connection bumps ack_seq, and the ack
  /// echoes the value — the mirror of OutConn::next_seq on the sender.
  /// The read buffer turns the header/key/payload reads of a burst of
  /// small frames into ~one recv(2) per burst; reads larger than the
  /// buffer bypass it (big payloads land directly in their Buffer).
  struct InConn {
    Socket sock;
    std::uint32_t ack_seq = 0;
    std::array<std::byte, 4096> rbuf;
    std::size_t rpos = 0;  ///< next unread byte in rbuf
    std::size_t rlen = 0;  ///< valid bytes in rbuf
  };

  /// Pooled outbound connection (connect + kHello handshake on first use).
  OutConn& conn_to(int peer);
  /// Pooled inbound connection: accepts (bounded by io_timeout) until the
  /// wanted peer has introduced itself; other peers' connections are pooled
  /// for later.
  InConn& conn_from(int peer);

  /// Serialize header [+trace context] [+key] of `h` into one buffer (the
  /// payload never rides here — it goes out as its own writev slice).
  Buffer build_head(const FrameHeader& h) const;

  /// One data frame to `dst`: header+key+payload out (scatter-gather when
  /// enabled), then reconcile CRC-echo acks until fewer than `window`
  /// remain outstanding on the connection. window=1 is stop-and-wait —
  /// identical to the pre-pipelining transport — and is what control
  /// frames use; data-plane callers pass opts_.ack_window.
  void send_frame(int dst, FrameType type, const std::string& key,
                  std::uint32_t aux, ByteSpan payload, int window = 1);

  /// Buffered read on an inbound connection: serve from InConn::rbuf,
  /// refill with one read_some per burst; reads ≥ the buffer size go
  /// straight to `dst`.
  void buffered_read(InConn& c, void* dst, std::size_t len,
                     const std::string& ctx);

  /// Reconcile CRC-echo acks on `c` until at most `target` remain
  /// outstanding. Acks are matched by sequence number anywhere in the open
  /// window (they may arrive out of order) and reaped in batches — one
  /// blocking read, then whatever burst already landed — so a full window
  /// flush costs ~one syscall, not one per frame.
  void reap_acks(OutConn& c, std::size_t target, const std::string& ctx);

  /// Fan a set of frames out through the epoll SendPump and convert
  /// contained per-peer failures into one typed CheckFailure (after the
  /// healthy peers finished; failed connections are dropped). Each frame's
  /// trace context is parented under the pump span. `header` must carry
  /// type/aux/key/payload_len/payload_crc; src_rank is stamped here.
  struct PumpFrame {
    int peer = -1;
    FrameHeader header;
    ByteSpan payload;
    Buffer owned;  ///< backs the payload when the pump must own the bytes
  };
  void pump_frames(std::vector<PumpFrame> frames, const char* what);

  struct Received {
    FrameHeader header;
    Buffer payload;
  };
  /// One data frame from `src`: CRC-verify, ack, return. `expect` guards
  /// protocol desynchronisation.
  Received recv_frame(int src, FrameType expect);

  std::string remote_path(const std::string& remote_key) const;

  int rank_;
  std::vector<Endpoint> peers_;
  TransportOptions opts_;
  std::uint64_t epoch_ = 0;
  bool corrupt_next_ = false;
  Socket listener_;
  bool shut_down_ = false;
  std::map<int, OutConn> out_;  ///< rank → connection we opened
  std::map<int, InConn> in_;    ///< rank → connection the peer opened
  cluster::Store store_;
  obs::StatsRegistry own_stats_;
  obs::StatsRegistry* stats_;
};

}  // namespace eccheck::net
