// Wire framing for the socket transport: length-prefixed frames carrying
// (dst_key, CRC64, payload).
//
// Layout (all integers little-endian):
//   offset  size  field
//        0     8  magic          "ECNETFR1"
//        8     4  type           FrameType
//       12     4  src_rank       sender's global rank
//       16     4  key_len        bytes of dst_key following the header
//       20     4  aux            frame-type-specific (segment index, …)
//       24     8  payload_len    bytes of payload following the key
//       32     8  payload_crc    CRC64 (ECMA-182) of the payload
//       40        dst_key bytes, then payload bytes
//
// Every byte-carrying frame is acknowledged: the receiver verifies the CRC
// and answers with a kAck frame echoing the payload CRC, giving the sender
// end-to-end confirmation that the bytes landed intact. A CRC mismatch on
// either side is a CheckFailure (corruption on a real wire is treated like
// the silent-corruption fault the chaos layer injects in the simulator).
//
// Trace context: when the high bit of the type field (kFrameFlagTrace) is
// set, kTraceContextBytes of distributed-trace context follow the fixed
// header, BEFORE the key:
//   offset  size  field
//        0     8  trace_id       distributed trace this frame belongs to
//        8     8  parent_span    sender's span id (receiver's parent)
//       16     4  trace_op       logical operation (FrameType at origin)
//       20     4  trace_flags    reserved, 0
// The flag is only set while the sender's tracer is enabled and a trace
// context is active, so untraced runs ship byte-identical frames to
// PR-5/6 peers and pay nothing. 24 bytes, within the ≤32-byte budget.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace eccheck::net {

enum class FrameType : std::uint32_t {
  kHello = 1,    ///< first frame on a new connection: identifies src_rank
  kPut = 2,      ///< store payload under dst_key at the receiver
  kBytes = 3,    ///< pure traffic: payload is discarded after the CRC check
  kSegment = 4,  ///< ring all-reduce segment; aux = segment index
  kBarrier = 5,  ///< zero-payload rendezvous token
  kAck = 6,      ///< acknowledgement; payload_crc echoes the acked frame's
  kRequest = 7,  ///< service request; key = command, payload = arguments
  kResponse = 8, ///< service response; aux = status (0 ok), payload = body
};

const char* frame_type_name(FrameType t);

/// Distributed-trace context a frame may carry (see header comment).
/// trace_id == 0 ⇔ no context; such a header is encoded without the
/// context block and with kFrameFlagTrace clear.
struct WireTraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::uint32_t op = 0;     ///< logical operation at origin (FrameType)
  std::uint32_t flags = 0;  ///< reserved
};

struct FrameHeader {
  FrameType type = FrameType::kPut;
  std::uint32_t src_rank = 0;
  std::uint32_t aux = 0;
  std::string key;               ///< dst_key (empty for control frames)
  std::uint64_t payload_len = 0;
  std::uint64_t payload_crc = 0;
  WireTraceContext trace;        ///< trace.trace_id == 0 ⇔ untraced frame
};

inline constexpr std::size_t kFrameHeaderBytes = 40;
inline constexpr std::size_t kTraceContextBytes = 24;
inline constexpr std::uint32_t kFrameFlagTrace = 0x8000'0000u;
inline constexpr std::uint64_t kFrameMagic = 0x3152'4654'454e'4345ULL;  // "ECNETFR1"

/// Sanity bounds enforced on receive (desynchronised or corrupt streams
/// must fail fast, not attempt a multi-gigabyte allocation).
inline constexpr std::uint32_t kMaxKeyLen = 4096;
inline constexpr std::uint64_t kMaxPayloadLen = 1ull << 31;

/// Serialize `h` (without payload) into `out[kFrameHeaderBytes]`.
/// Sets kFrameFlagTrace on the wire type iff h.trace.trace_id != 0 — the
/// context block itself is encoded separately (encode_trace_context) so
/// callers control whether it rides in the same write.
void encode_frame_header(const FrameHeader& h, std::uint8_t* out);

/// Serialize h.trace into `out[kTraceContextBytes]`.
void encode_trace_context(const WireTraceContext& t, std::uint8_t* out);

/// Parse `in[kTraceContextBytes]` (the block following a flagged header).
WireTraceContext decode_trace_context(const std::uint8_t* in);

/// Parse and validate a header; throws CheckFailure on bad magic /
/// unknown type / out-of-bounds lengths. The key is NOT read here (it
/// follows in the stream). If the wire type carried kFrameFlagTrace,
/// *has_trace is set and the caller must read kTraceContextBytes of
/// context from the stream before the key (decode_trace_context).
FrameHeader decode_frame_header(const std::uint8_t* in, std::uint32_t* key_len,
                                bool* has_trace);

}  // namespace eccheck::net
