// Wire framing for the socket transport: length-prefixed frames carrying
// (dst_key, CRC64, payload).
//
// Layout (all integers little-endian):
//   offset  size  field
//        0     8  magic          "ECNETFR1"
//        8     4  type           FrameType
//       12     4  src_rank       sender's global rank
//       16     4  key_len        bytes of dst_key following the header
//       20     4  aux            frame-type-specific (segment index, …)
//       24     8  payload_len    bytes of payload following the key
//       32     8  payload_crc    CRC64 (ECMA-182) of the payload
//       40        dst_key bytes, then payload bytes
//
// Every byte-carrying frame is acknowledged: the receiver verifies the CRC
// and answers with a kAck frame echoing the payload CRC, giving the sender
// end-to-end confirmation that the bytes landed intact. A CRC mismatch on
// either side is a CheckFailure (corruption on a real wire is treated like
// the silent-corruption fault the chaos layer injects in the simulator).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace eccheck::net {

enum class FrameType : std::uint32_t {
  kHello = 1,    ///< first frame on a new connection: identifies src_rank
  kPut = 2,      ///< store payload under dst_key at the receiver
  kBytes = 3,    ///< pure traffic: payload is discarded after the CRC check
  kSegment = 4,  ///< ring all-reduce segment; aux = segment index
  kBarrier = 5,  ///< zero-payload rendezvous token
  kAck = 6,      ///< acknowledgement; payload_crc echoes the acked frame's
  kRequest = 7,  ///< service request; key = command, payload = arguments
  kResponse = 8, ///< service response; aux = status (0 ok), payload = body
};

const char* frame_type_name(FrameType t);

struct FrameHeader {
  FrameType type = FrameType::kPut;
  std::uint32_t src_rank = 0;
  std::uint32_t aux = 0;
  std::string key;               ///< dst_key (empty for control frames)
  std::uint64_t payload_len = 0;
  std::uint64_t payload_crc = 0;
};

inline constexpr std::size_t kFrameHeaderBytes = 40;
inline constexpr std::uint64_t kFrameMagic = 0x3152'4654'454e'4345ULL;  // "ECNETFR1"

/// Sanity bounds enforced on receive (desynchronised or corrupt streams
/// must fail fast, not attempt a multi-gigabyte allocation).
inline constexpr std::uint32_t kMaxKeyLen = 4096;
inline constexpr std::uint64_t kMaxPayloadLen = 1ull << 31;

/// Serialize `h` (without payload) into `out[kFrameHeaderBytes]`.
void encode_frame_header(const FrameHeader& h, std::uint8_t* out);

/// Parse and validate a header; throws CheckFailure on bad magic /
/// unknown type / out-of-bounds lengths. The key is NOT read here (it
/// follows in the stream).
FrameHeader decode_frame_header(const std::uint8_t* in, std::uint32_t* key_len);

}  // namespace eccheck::net
