#include "net/retry_policy.hpp"

#include <cstdlib>
#include <sstream>

namespace eccheck::net {

void RetryPolicy::set(const std::string& key, const std::string& value) {
  long long v = 0;
  try {
    std::size_t used = 0;
    v = std::stoll(value, &used);
    ECC_CHECK_MSG(used == value.size(), "trailing junk");
  } catch (const std::exception&) {
    throw CheckFailure("retry policy: bad value '" + value + "' for '" + key +
                       "'");
  }
  ECC_CHECK_MSG(v >= 0, "retry policy: '" << key << "' must be >= 0");
  if (key == "connect_timeout")
    connect_timeout = Millis(v);
  else if (key == "connect_retries")
    connect_retries = static_cast<int>(v);
  else if (key == "backoff_base")
    backoff_base = Millis(v);
  else if (key == "backoff_max")
    backoff_max = Millis(v);
  else if (key == "io_timeout")
    io_timeout = Millis(v);
  else if (key == "heartbeat_period")
    heartbeat_period = Millis(v);
  else if (key == "heartbeat_timeout")
    heartbeat_timeout = Millis(v);
  else if (key == "suspect_probes")
    suspect_probes = static_cast<int>(v);
  else if (key == "ack_window") {
    ECC_CHECK_MSG(v >= 1,
                  "retry policy: ack_window must be >= 1 (a window of 0 "
                  "could never send a frame)");
    ack_window = static_cast<int>(v);
  } else if (key == "send_queue_frames") {
    ECC_CHECK_MSG(v >= 1, "retry policy: send_queue_frames must be >= 1");
    send_queue_frames = static_cast<int>(v);
  } else
    throw CheckFailure("retry policy: unknown knob '" + key + "'");
}

RetryPolicy RetryPolicy::parse(const std::string& spec, RetryPolicy base) {
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    ECC_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "retry policy: expected key=value, got '" << item << "'");
    base.set(item.substr(0, eq), item.substr(eq + 1));
  }
  return base;
}

RetryPolicy RetryPolicy::from_env(RetryPolicy base) {
  const char* spec = std::getenv("ECCHECK_NET_RETRY");
  return spec == nullptr ? base : parse(spec, base);
}

std::string RetryPolicy::describe() const {
  std::ostringstream os;
  os << "connect_timeout=" << connect_timeout.count()
     << ",connect_retries=" << connect_retries
     << ",backoff_base=" << backoff_base.count()
     << ",backoff_max=" << backoff_max.count()
     << ",io_timeout=" << io_timeout.count()
     << ",heartbeat_period=" << heartbeat_period.count()
     << ",heartbeat_timeout=" << heartbeat_timeout.count()
     << ",suspect_probes=" << suspect_probes
     << ",ack_window=" << ack_window
     << ",send_queue_frames=" << send_queue_frames;
  return os.str();
}

}  // namespace eccheck::net
