#include "net/frame.hpp"

#include "common/check.hpp"

namespace eccheck::net {
namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kPut: return "put";
    case FrameType::kBytes: return "bytes";
    case FrameType::kSegment: return "segment";
    case FrameType::kBarrier: return "barrier";
    case FrameType::kAck: return "ack";
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
  }
  return "?";
}

void encode_frame_header(const FrameHeader& h, std::uint8_t* out) {
  ECC_CHECK(h.key.size() <= kMaxKeyLen);
  ECC_CHECK(h.payload_len <= kMaxPayloadLen);
  put_u64(out, kFrameMagic);
  std::uint32_t wire_type = static_cast<std::uint32_t>(h.type);
  if (h.trace.trace_id != 0) wire_type |= kFrameFlagTrace;
  put_u32(out + 8, wire_type);
  put_u32(out + 12, h.src_rank);
  put_u32(out + 16, static_cast<std::uint32_t>(h.key.size()));
  put_u32(out + 20, h.aux);
  put_u64(out + 24, h.payload_len);
  put_u64(out + 32, h.payload_crc);
}

void encode_trace_context(const WireTraceContext& t, std::uint8_t* out) {
  put_u64(out, t.trace_id);
  put_u64(out + 8, t.parent_span);
  put_u32(out + 16, t.op);
  put_u32(out + 20, t.flags);
}

WireTraceContext decode_trace_context(const std::uint8_t* in) {
  WireTraceContext t;
  t.trace_id = get_u64(in);
  t.parent_span = get_u64(in + 8);
  t.op = get_u32(in + 16);
  t.flags = get_u32(in + 20);
  return t;
}

FrameHeader decode_frame_header(const std::uint8_t* in,
                                std::uint32_t* key_len, bool* has_trace) {
  ECC_CHECK_MSG(get_u64(in) == kFrameMagic,
                "net: bad frame magic — stream desynchronised or not an "
                "eccheck transport peer");
  FrameHeader h;
  const std::uint32_t wire_type = get_u32(in + 8);
  *has_trace = (wire_type & kFrameFlagTrace) != 0;
  const std::uint32_t type = wire_type & ~kFrameFlagTrace;
  ECC_CHECK_MSG(type >= 1 && type <= 8, "net: unknown frame type " << type);
  h.type = static_cast<FrameType>(type);
  h.src_rank = get_u32(in + 12);
  *key_len = get_u32(in + 16);
  ECC_CHECK_MSG(*key_len <= kMaxKeyLen, "net: frame key_len " << *key_len
                                            << " exceeds bound " << kMaxKeyLen);
  h.aux = get_u32(in + 20);
  h.payload_len = get_u64(in + 24);
  ECC_CHECK_MSG(h.payload_len <= kMaxPayloadLen,
                "net: frame payload_len " << h.payload_len
                                          << " exceeds bound "
                                          << kMaxPayloadLen);
  h.payload_crc = get_u64(in + 32);
  return h;
}

}  // namespace eccheck::net
