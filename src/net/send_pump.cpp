#include "net/send_pump.hpp"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace eccheck::net {
namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

SendPump::SendPump(Millis budget, obs::StatsRegistry* stats, int max_queue)
    : budget_(budget), stats_(stats), max_queue_(std::max(1, max_queue)) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  ECC_CHECK_MSG(epfd_ >= 0, "send pump: epoll_create1 failed ("
                                << ::strerror(errno) << ")");
}

SendPump::~SendPump() {
  if (epfd_ >= 0) ::close(epfd_);
}

SendPump::Peer& SendPump::peer_for(int rank, OutConn* conn, std::string who) {
  auto it = peers_.find(rank);
  if (it != peers_.end()) return it->second;
  Peer& p = peers_[rank];
  p.rank = rank;
  p.conn = conn;
  p.who = std::move(who);
  p.last_progress = Clock::now();
  return p;
}

void SendPump::want(Peer& p) {
  if (p.failed || !pending(p)) {
    if (p.in_epoll) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, p.conn->sock.fd(), nullptr);
      p.in_epoll = false;
    }
    return;
  }
  struct epoll_event ev;
  ::memset(&ev, 0, sizeof(ev));
  ev.data.ptr = &p;
  // Always watch for acks; only watch for writability while there is a
  // frame left to push (a permanent EPOLLOUT on an idle socket would spin).
  ev.events = EPOLLIN | (p.queue.empty() ? 0u : static_cast<unsigned>(EPOLLOUT));
  const int op = p.in_epoll ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  ECC_CHECK_MSG(::epoll_ctl(epfd_, op, p.conn->sock.fd(), &ev) == 0,
                "send pump: epoll_ctl failed (" << ::strerror(errno) << ")");
  p.in_epoll = true;
}

void SendPump::fail_peer(Peer& p, const std::string& message) {
  if (p.failed) return;
  p.failed = true;
  p.queue.clear();
  if (p.in_epoll) {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, p.conn->sock.fd(), nullptr);
    p.in_epoll = false;
  }
  failures_.push_back({p.rank, "net: " + p.who + ": " + message});
}

void SendPump::drain_writes(Peer& p) {
  while (!p.queue.empty()) {
    QueuedFrame& f = p.queue.front();
    const std::size_t total = f.head.size() + f.payload.size();
    struct iovec iov[2];
    int n_iov = 0;
    if (p.off < f.head.size()) {
      iov[n_iov].iov_base =
          const_cast<std::byte*>(f.head.data()) + p.off;
      iov[n_iov].iov_len = f.head.size() - p.off;
      ++n_iov;
    }
    const std::size_t pay_off =
        p.off > f.head.size() ? p.off - f.head.size() : 0;
    if (pay_off < f.payload.size()) {
      iov[n_iov].iov_base =
          const_cast<std::byte*>(f.payload.data()) + pay_off;
      iov[n_iov].iov_len = f.payload.size() - pay_off;
      ++n_iov;
    }
    struct msghdr msg;
    ::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(n_iov);
    ssize_t n = ::sendmsg(p.conn->sock.fd(), &msg,
                          MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      p.off += static_cast<std::size_t>(n);
      p.last_progress = Clock::now();
      stats_->add("net.send.writev_bytes", static_cast<std::uint64_t>(n));
      if (p.off < total) continue;
      p.conn->window.push_back({p.conn->next_seq++, f.crc});
      stats_->add("net.send.bytes", f.payload.size());
      stats_->add("net.send.count");
      stats_->observe("net.ack.window",
                      static_cast<double>(p.conn->window.size()));
      p.queue.pop_front();
      p.off = 0;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      fail_peer(p, "peer died mid-write (" + std::string(::strerror(errno)) +
                       ")");
      return;
    }
    fail_peer(p, "sendmsg failed (" + std::string(::strerror(errno)) + ")");
    return;
  }
}

void SendPump::drain_acks(Peer& p) {
  for (;;) {
    ssize_t n = ::recv(p.conn->sock.fd(), p.ack_buf + p.ack_have,
                       kFrameHeaderBytes - p.ack_have, MSG_DONTWAIT);
    if (n > 0) {
      p.ack_have += static_cast<std::size_t>(n);
      p.last_progress = Clock::now();
      if (p.ack_have < kFrameHeaderBytes) continue;
      p.ack_have = 0;
      std::uint32_t key_len = 0;
      bool has_trace = false;
      FrameHeader ack;
      try {
        ack = decode_frame_header(p.ack_buf, &key_len, &has_trace);
      } catch (const CheckFailure& e) {
        fail_peer(p, std::string("bad ack header: ") + e.what());
        return;
      }
      if (ack.type != FrameType::kAck || key_len != 0 || has_trace ||
          ack.payload_len != 0) {
        fail_peer(p, std::string("expected ack, got ") +
                         frame_type_name(ack.type));
        return;
      }
      auto& window = p.conn->window;
      auto it = std::find_if(window.begin(), window.end(),
                             [&](const PendingAck& w) {
                               return w.seq == ack.aux;
                             });
      if (it == window.end()) {
        fail_peer(p, "ack names sequence " + std::to_string(ack.aux) +
                         " outside the open window");
        return;
      }
      if (it->crc != ack.payload_crc) {
        fail_peer(p, "ack CRC mismatch — payload corrupted in flight");
        return;
      }
      window.erase(it);
      stats_->add("net.ack.count");
      // Fully reconciled: stop reading. The peer may legitimately close the
      // connection right after its last ack (orderly shutdown) — reading on
      // would misread that EOF as a mid-window death.
      if (!pending(p)) return;
      continue;
    }
    if (n == 0) {
      if (pending(p))
        fail_peer(p, "peer closed the connection mid-window (peer death)");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      fail_peer(p, "connection reset (peer death)");
      return;
    }
    fail_peer(p, "recv failed (" + std::string(::strerror(errno)) + ")");
    return;
  }
}

bool SendPump::step() {
  // Per-peer deadline sweep first: a peer with no progress for the budget
  // is dead to this pump even if epoll keeps timing out globally.
  const auto now = Clock::now();
  Millis wait = budget_;
  bool any = false;
  for (auto& [rank, p] : peers_) {
    if (!pending(p)) continue;
    any = true;
    const auto idle = std::chrono::duration_cast<Millis>(now - p.last_progress);
    if (idle >= budget_) {
      fail_peer(p, "made no progress for " + std::to_string(budget_.count()) +
                       " ms with frames in flight (peer stalled or dead)");
      continue;
    }
    wait = std::min(wait, budget_ - idle);
  }
  if (!any) return false;
  // Re-check: the sweep may have failed the last pending peer.
  any = false;
  for (auto& [rank, p] : peers_)
    if (pending(p)) any = true;
  if (!any) return false;

  struct epoll_event events[16];
  int rc = ::epoll_wait(epfd_, events, 16,
                        static_cast<int>(std::max<long long>(1, wait.count())));
  if (rc < 0) {
    if (errno == EINTR) return true;
    throw CheckFailure(std::string("send pump: epoll_wait failed (") +
                       ::strerror(errno) + ")");
  }
  for (int i = 0; i < rc; ++i) {
    Peer& p = *static_cast<Peer*>(events[i].data.ptr);
    if (p.failed) continue;
    // Drain readable acks before acting on EPOLLHUP: a peer that wrote its
    // acks and exited cleanly must not lose them to the hangup flag.
    if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) drain_acks(p);
    if (p.failed) continue;
    if (events[i].events & EPOLLOUT) drain_writes(p);
    if (p.failed) continue;
    if ((events[i].events & (EPOLLHUP | EPOLLERR)) && pending(p)) {
      fail_peer(p, "connection error/hangup with frames in flight "
                   "(peer death)");
      continue;
    }
    want(p);
  }
  return true;
}

void SendPump::enqueue(int peer, OutConn* conn, std::string who, Buffer head,
                       ByteSpan payload, Buffer payload_owned,
                       std::uint64_t crc) {
  Peer& p = peer_for(peer, conn, std::move(who));
  if (p.failed) return;  // queue already dropped; run() reports the failure
  // Backpressure: a slow peer's queue is bounded — drive the loop until it
  // drains below the bound (or the peer fails) instead of buffering
  // unboundedly.
  while (!p.failed && static_cast<int>(p.queue.size()) >= max_queue_)
    if (!step()) break;
  if (p.failed) return;
  stats_->observe("net.send.queue_depth",
                  static_cast<double>(p.queue.size() + 1));
  QueuedFrame f;
  f.head = std::move(head);
  f.owned = std::move(payload_owned);
  f.payload = f.owned.empty() ? payload : f.owned.span();
  f.crc = crc;
  p.queue.push_back(std::move(f));
  want(p);
}

std::vector<SendPump::Failure> SendPump::run() {
  while (step()) {
  }
  return std::move(failures_);
}

}  // namespace eccheck::net
