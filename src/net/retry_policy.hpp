// RetryPolicy: every retry/timeout/backoff knob of the socket stack in one
// struct, parsed from one place.
//
// Before this existed the constants were scattered: connect budgets in
// socket.hpp, I/O deadlines in transport.hpp, and the service layer grew
// its own heartbeat timings. Anything that opens a socket now derives its
// timing from a RetryPolicy (TransportOptions embeds one), and CLIs/tests
// override knobs through a single "key=value,key=value" spec — also
// honored from the environment (ECCHECK_NET_RETRY), so multi-process
// harnesses can retune forked daemons without plumbing flags.
//
// Defaults (milliseconds unless noted):
//   connect_timeout   1000   per-attempt connect deadline
//   connect_retries     10   extra attempts with exponential backoff
//   backoff_base        10   first backoff sleep; doubles per attempt
//   backoff_max        500   backoff ceiling
//   io_timeout        5000   per read/write/accept deadline
//   heartbeat_period   250   worker → coordinator liveness beat interval
//   heartbeat_timeout 1500   silence before the coordinator suspects
//   suspect_probes       2   failed probes before a suspect is declared dead
//   ack_window           8   data frames in flight per connection (count)
//   send_queue_frames   32   frames queued per peer in the send pump (count)
#pragma once

#include <string>

#include "net/socket.hpp"

namespace eccheck::net {

struct RetryPolicy {
  /// Per-attempt connect timeout; total connect budget is
  /// connect_retries+1 attempts with exponential backoff between them.
  Millis connect_timeout{1000};
  int connect_retries = 10;
  Millis backoff_base{10};
  Millis backoff_max{500};

  /// Deadline for each read/write/accept — the bound on how long a dead
  /// peer can stall a collective before CheckFailure.
  Millis io_timeout{5000};

  /// Liveness layer (svc): workers beat the coordinator every
  /// heartbeat_period; heartbeat_timeout of silence makes a worker
  /// suspect; suspect_probes consecutive failed probes confirm death
  /// (the wall-clock analogue of FailureDetectorConfig's quorum).
  Millis heartbeat_period{250};
  Millis heartbeat_timeout{1500};
  int suspect_probes = 2;

  /// Sliding ack window: data frames a connection may have in flight before
  /// the sender must reconcile a CRC-echo ack. 1 = stop-and-wait (the
  /// pre-pipelining behavior, and always used for control frames); larger
  /// windows let collectives overlap transfers with ack latency. Must be
  /// ≥ 1 — a window of 0 could never send anything, so it is rejected at
  /// parse/set time.
  int ack_window = 8;

  /// Bound on frames queued per peer inside the epoll send pump — one slow
  /// peer can absorb at most this much backlog before the pump stops
  /// accepting frames for it; other peers keep draining. Must be ≥ 1.
  int send_queue_frames = 32;

  /// Apply one "key=value" override; throws CheckFailure on an unknown key
  /// or unparsable value.
  void set(const std::string& key, const std::string& value);

  /// Parse a comma-separated "key=value,..." spec over `base`. Empty spec
  /// returns `base` unchanged.
  static RetryPolicy parse(const std::string& spec, RetryPolicy base);
  static RetryPolicy parse(const std::string& spec) {
    return parse(spec, RetryPolicy{});
  }

  /// `base` overridden by the ECCHECK_NET_RETRY environment spec (if set).
  static RetryPolicy from_env(RetryPolicy base);
  static RetryPolicy from_env() { return from_env(RetryPolicy{}); }

  /// "connect_timeout=1000,connect_retries=10,..." — round-trips through
  /// parse(); used by `health` and the docs.
  std::string describe() const;
};

}  // namespace eccheck::net
