#include "dnn/half.hpp"

#include <cstring>

namespace eccheck::dnn {

std::uint16_t float_to_half(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, 4);
  const std::uint32_t sign = (x >> 16) & 0x8000;
  const std::uint32_t exp = (x >> 23) & 0xff;
  std::uint32_t mant = x & 0x7fffff;

  if (exp == 0xff) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7c00 | (mant ? 0x200 : 0));
  }
  // Re-bias: half exponent = exp - 127 + 15.
  int new_exp = static_cast<int>(exp) - 127 + 15;
  if (new_exp >= 0x1f) {  // overflow → infinity
    return static_cast<std::uint16_t>(sign | 0x7c00);
  }
  if (new_exp <= 0) {  // subnormal or zero
    if (new_exp < -10) return static_cast<std::uint16_t>(sign);
    // Add the implicit leading 1 and shift into subnormal position.
    mant |= 0x800000;
    const int shift = 14 - new_exp;
    std::uint32_t sub = mant >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (sub & 1))) ++sub;
    return static_cast<std::uint16_t>(sign | sub);
  }
  // Normal: round mantissa from 23 to 10 bits, nearest even.
  std::uint32_t out_mant = mant >> 13;
  const std::uint32_t rem = mant & 0x1fff;
  if (rem > 0x1000 || (rem == 0x1000 && (out_mant & 1))) {
    ++out_mant;
    if (out_mant == 0x400) {  // mantissa overflow bumps the exponent
      out_mant = 0;
      ++new_exp;
      if (new_exp >= 0x1f) return static_cast<std::uint16_t>(sign | 0x7c00);
    }
  }
  return static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(new_exp) << 10) | out_mant);
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1f;
  std::uint32_t mant = h & 0x3ff;
  std::uint32_t out;

  if (exp == 0x1f) {  // inf / NaN
    out = sign | 0x7f800000 | (mant << 13);
  } else if (exp == 0) {
    if (mant == 0) {
      out = sign;  // zero
    } else {
      // Subnormal: normalise.
      int e = -1;
      do {
        mant <<= 1;
        ++e;
      } while (!(mant & 0x400));
      mant &= 0x3ff;
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            (mant << 13);
    }
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &out, 4);
  return f;
}

}  // namespace eccheck::dnn
