// Hybrid-parallel rank topology (paper Fig. 1).
//
// Megatron-LM assigns ranks tensor-parallel-first: for world size
// W = tp·pp·dp, worker w has tp_rank = w mod tp, then pipeline stage, then
// data-parallel replica. With tp equal to GPUs per node, a node hosts one
// full tensor-parallel group of one pipeline stage — the testbed layout
// (tp=4 intra-node over NVLink, pp=4 across nodes).
#pragma once

#include <string>

#include "common/check.hpp"

namespace eccheck::dnn {

struct ParallelismSpec {
  int tensor_parallel = 1;
  int pipeline_parallel = 1;
  int data_parallel = 1;

  int world_size() const {
    return tensor_parallel * pipeline_parallel * data_parallel;
  }
};

struct RankCoords {
  int tp_rank = 0;
  int pp_stage = 0;
  int dp_rank = 0;
};

inline RankCoords rank_coords(const ParallelismSpec& p, int worker) {
  ECC_CHECK(worker >= 0 && worker < p.world_size());
  RankCoords c;
  c.tp_rank = worker % p.tensor_parallel;
  c.pp_stage = (worker / p.tensor_parallel) % p.pipeline_parallel;
  c.dp_rank = worker / (p.tensor_parallel * p.pipeline_parallel);
  return c;
}

inline int worker_of(const ParallelismSpec& p, const RankCoords& c) {
  return c.tp_rank +
         p.tensor_parallel * (c.pp_stage + p.pipeline_parallel * c.dp_rank);
}

}  // namespace eccheck::dnn
