// Sparse-update workload generator (ECRM-style recommendation models).
//
// Recommendation models concentrate almost all parameters in huge embedding
// tables of which one training iteration touches only the rows referenced
// by that minibatch — typically far below 1% — while a small dense tower
// updates fully every step. That access pattern is what makes incremental
// checkpointing (ECCheckConfig::delta) pay off: the XOR-delta between two
// consecutive checkpoints is exactly the touched rows plus the dense tower.
//
// Shards and updates are deterministic functions of (seed, worker,
// iteration), matching the repo-wide convention that recovery tests verify
// bytes against regenerated state instead of golden copies.
#pragma once

#include <cstdint>

#include "dnn/state_dict.hpp"

namespace eccheck::dnn {

struct SparseUpdateSpec {
  /// Embedding shard per worker: `embedding_rows` × `embedding_dim` F32.
  std::int64_t embedding_rows = 4096;
  std::int64_t embedding_dim = 64;

  /// Dense tower: `dense_tensors` F32 tensors of `dense_elems` elements,
  /// all rewritten every iteration.
  int dense_tensors = 2;
  std::int64_t dense_elems = 1024;

  /// Fraction of embedding rows touched per iteration (0 ≤ d ≤ 1).
  double row_density = 0.01;

  std::uint64_t seed = 42;

  std::size_t embedding_bytes() const {
    return static_cast<std::size_t>(embedding_rows) *
           static_cast<std::size_t>(embedding_dim) * 4;
  }
};

/// Build worker `worker`'s initial shard (iteration 0).
StateDict make_sparse_model_shard(const SparseUpdateSpec& spec, int worker);

/// Apply iteration `iteration`'s touch pattern in place: rewrite
/// ⌈row_density · embedding_rows⌉ distinct embedding rows (chosen and
/// filled deterministically from (seed, worker, iteration)) and the whole
/// dense tower, and bump the iteration metadata. Applying iterations
/// 1..i in order to the initial shard always yields the same bytes.
void apply_sparse_update(StateDict& sd, const SparseUpdateSpec& spec,
                         int worker, std::int64_t iteration);

}  // namespace eccheck::dnn
