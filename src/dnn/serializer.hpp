// TLV (de)serialization of state_dicts and their components.
//
// Full serialization is what base1/base2 (torch.save-style) pay for the
// whole checkpoint; ECCheck serializes only the two tiny components —
// non-tensor metadata and tensor keys — and moves tensor payloads raw
// (paper §III-C, "serialization-free").
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/state_dict.hpp"

namespace eccheck::dnn {

/// Append-only little-endian writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(ByteSpan b) {
    u64(b.size());
    raw(b.data(), b.size());
  }

  std::size_t size() const { return out_.size(); }
  Buffer finish() const {
    return Buffer::copy_of({out_.data(), out_.size()});
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::byte> out_;
};

/// Bounds-checked little-endian reader (throws CheckFailure on overrun).
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int64_t i64() { return scalar<std::int64_t>(); }
  double f64() { return scalar<double>(); }
  std::string str() {
    auto n = u32();
    auto s = take(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }
  ByteSpan bytes() { return take(u64()); }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T scalar() {
    auto s = take(sizeof(T));
    T v;
    std::memcpy(&v, s.data(), sizeof(T));
    return v;
  }
  ByteSpan take(std::size_t n) {
    ECC_CHECK_MSG(pos_ + n <= data_.size(), "serializer underrun");
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Shape/dtype/size of a tensor without its payload — the "tensor keys"
/// component that is broadcast during checkpointing.
struct TensorMeta {
  std::string key;
  DType dtype;
  std::vector<std::int64_t> shape;

  std::size_t nbytes() const {
    std::size_t n = dtype_size(dtype);
    for (auto d : shape) n *= static_cast<std::size_t>(d);
    return n;
  }

  friend bool operator==(const TensorMeta&, const TensorMeta&) = default;
};

// Full-checkpoint serialization (the baselines' path).
Buffer serialize_state_dict(const StateDict& sd);
StateDict deserialize_state_dict(ByteSpan data);

// Component serialization (ECCheck's path: metadata + keys only).
Buffer serialize_metadata(const std::map<std::string, MetaValue>& meta);
std::map<std::string, MetaValue> deserialize_metadata(ByteSpan data);

Buffer serialize_tensor_keys(const StateDict& sd);
std::vector<TensorMeta> deserialize_tensor_keys(ByteSpan data);

/// Allocate a state_dict with the given structure and uninitialised tensor
/// payloads — the decode side fills the bytes in place.
StateDict make_skeleton(std::map<std::string, MetaValue> meta,
                        const std::vector<TensorMeta>& keys);

}  // namespace eccheck::dnn
