// Synthetic sharded-checkpoint generator.
//
// Builds one Megatron-style state_dict per worker for a given model and
// parallelism layout: tensor-parallel column/row-sharded weights, per-layer
// layernorms, stage-0 embeddings, Adam exp_avg/exp_avg_sq, an RNG-state
// blob, and non-tensor metadata. Payload bytes are deterministic in
// (seed, worker, tensor index) so recovered checkpoints can be verified
// bit-exactly from the digest alone.
#pragma once

#include <vector>

#include "dnn/model_zoo.hpp"
#include "dnn/parallelism.hpp"
#include "dnn/state_dict.hpp"

namespace eccheck::dnn {

struct CheckpointGenConfig {
  ModelSpec model;
  ParallelismSpec parallelism;
  std::uint64_t seed = 42;
  std::int64_t iteration = 1000;
  bool optimizer_states = true;  ///< include Adam moments (f32, 2× weights)

  /// Fully sharded data parallelism: with data_parallel > 1, every tensor
  /// (weights and optimizer state) is flattened and split 1/dp per replica
  /// — no full copies exist anywhere, which is exactly when in-memory
  /// erasure coding matters (§III-A). Without it, plain data parallelism
  /// replicates tensors bit-identically across dp ranks.
  bool fsdp = false;
};

/// state_dict for one worker.
StateDict make_worker_state_dict(const CheckpointGenConfig& cfg, int worker);

/// All world_size() shards.
std::vector<StateDict> make_sharded_checkpoint(const CheckpointGenConfig& cfg);

/// Digest of each worker's shard without keeping the shards alive —
/// convenience for large sweeps.
std::vector<std::uint64_t> shard_digests(const CheckpointGenConfig& cfg);

}  // namespace eccheck::dnn
