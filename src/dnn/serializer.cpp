#include "dnn/serializer.hpp"

namespace eccheck::dnn {
namespace {

constexpr std::uint32_t kMagic = 0x45434b50;  // "ECKP"
constexpr std::uint8_t kTagI64 = 0;
constexpr std::uint8_t kTagF64 = 1;
constexpr std::uint8_t kTagStr = 2;

void write_meta(ByteWriter& w, const std::map<std::string, MetaValue>& meta) {
  w.u32(static_cast<std::uint32_t>(meta.size()));
  for (const auto& [k, v] : meta) {
    w.str(k);
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      w.u8(kTagI64);
      w.i64(*i);
    } else if (const auto* d = std::get_if<double>(&v)) {
      w.u8(kTagF64);
      w.f64(*d);
    } else {
      w.u8(kTagStr);
      w.str(std::get<std::string>(v));
    }
  }
}

std::map<std::string, MetaValue> read_meta(ByteReader& r) {
  std::map<std::string, MetaValue> meta;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    switch (r.u8()) {
      case kTagI64:
        meta[key] = r.i64();
        break;
      case kTagF64:
        meta[key] = r.f64();
        break;
      case kTagStr:
        meta[key] = r.str();
        break;
      default:
        ECC_CHECK_MSG(false, "bad metadata tag");
    }
  }
  return meta;
}

void write_tensor_meta(ByteWriter& w, const std::string& key, DType dtype,
                       const std::vector<std::int64_t>& shape) {
  w.str(key);
  w.u8(static_cast<std::uint8_t>(dtype));
  w.u32(static_cast<std::uint32_t>(shape.size()));
  for (auto d : shape) w.i64(d);
}

TensorMeta read_tensor_meta(ByteReader& r) {
  TensorMeta tm;
  tm.key = r.str();
  tm.dtype = static_cast<DType>(r.u8());
  const std::uint32_t nd = r.u32();
  tm.shape.reserve(nd);
  for (std::uint32_t i = 0; i < nd; ++i) tm.shape.push_back(r.i64());
  return tm;
}

}  // namespace

Buffer serialize_state_dict(const StateDict& sd) {
  ByteWriter w;
  w.u32(kMagic);
  write_meta(w, sd.metadata());
  w.u32(static_cast<std::uint32_t>(sd.tensors().size()));
  for (const auto& e : sd.tensors()) {
    write_tensor_meta(w, e.key, e.tensor.dtype(), e.tensor.shape());
    w.bytes(e.tensor.bytes());
  }
  return w.finish();
}

StateDict deserialize_state_dict(ByteSpan data) {
  ByteReader r(data);
  ECC_CHECK_MSG(r.u32() == kMagic, "bad checkpoint magic");
  StateDict sd;
  sd.metadata() = read_meta(r);
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    TensorMeta tm = read_tensor_meta(r);
    ByteSpan payload = r.bytes();
    Tensor t(tm.dtype, tm.shape);
    ECC_CHECK(t.nbytes() == payload.size());
    std::memcpy(t.bytes().data(), payload.data(), payload.size());
    sd.add_tensor(tm.key, std::move(t));
  }
  return sd;
}

Buffer serialize_metadata(const std::map<std::string, MetaValue>& meta) {
  ByteWriter w;
  write_meta(w, meta);
  return w.finish();
}

std::map<std::string, MetaValue> deserialize_metadata(ByteSpan data) {
  ByteReader r(data);
  auto meta = read_meta(r);
  ECC_CHECK(r.exhausted());
  return meta;
}

Buffer serialize_tensor_keys(const StateDict& sd) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(sd.tensors().size()));
  for (const auto& e : sd.tensors())
    write_tensor_meta(w, e.key, e.tensor.dtype(), e.tensor.shape());
  return w.finish();
}

std::vector<TensorMeta> deserialize_tensor_keys(ByteSpan data) {
  ByteReader r(data);
  const std::uint32_t n = r.u32();
  std::vector<TensorMeta> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(read_tensor_meta(r));
  ECC_CHECK(r.exhausted());
  return out;
}

StateDict make_skeleton(std::map<std::string, MetaValue> meta,
                        const std::vector<TensorMeta>& keys) {
  StateDict sd;
  sd.metadata() = std::move(meta);
  for (const auto& tm : keys) sd.add_tensor(tm.key, Tensor(tm.dtype, tm.shape));
  return sd;
}

}  // namespace eccheck::dnn
