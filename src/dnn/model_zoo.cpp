#include "dnn/model_zoo.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace eccheck::dnn {

const char* family_name(ModelFamily f) {
  switch (f) {
    case ModelFamily::kGPT2:
      return "GPT-2";
    case ModelFamily::kBERT:
      return "BERT";
    case ModelFamily::kT5:
      return "T5";
  }
  return "?";
}

std::uint64_t ModelSpec::param_count() const {
  const std::uint64_t h = static_cast<std::uint64_t>(hidden);
  const std::uint64_t L = static_cast<std::uint64_t>(layers);
  const std::uint64_t V = static_cast<std::uint64_t>(vocab);
  return V * h + L * (12 * h * h + 13 * h) + 2 * h;
}

std::uint64_t ModelSpec::checkpoint_bytes(double bytes_per_param) const {
  return static_cast<std::uint64_t>(
      static_cast<double>(param_count()) * bytes_per_param);
}

ModelSpec ModelSpec::scaled_down(double factor, int hidden_multiple) const {
  ECC_CHECK(factor >= 1.0);
  ModelSpec s = *this;
  int h = static_cast<int>(std::lround(hidden / factor));
  h = std::max(hidden_multiple, (h / hidden_multiple) * hidden_multiple);
  s.hidden = h;
  s.vocab = std::max(256, static_cast<int>(std::lround(vocab / factor)));
  s.attention_heads = std::max(1, std::min(attention_heads, h / 64));
  s.label = label + " (scaled)";
  return s;
}

ModelSpec make_model(ModelFamily family, int hidden, int heads, int layers,
                     const std::string& label) {
  ModelSpec m;
  m.family = family;
  m.hidden = hidden;
  m.attention_heads = heads;
  m.layers = layers;
  m.label = label;
  return m;
}

std::vector<ModelSpec> table1_models() {
  std::vector<ModelSpec> out;
  const struct {
    int hidden, heads, layers;
    const char* size;
  } rows[] = {
      {1600, 32, 48, "1.6B"},
      {2560, 40, 64, "5.3B"},
      {5120, 40, 64, "20B"},
  };
  for (ModelFamily f :
       {ModelFamily::kGPT2, ModelFamily::kBERT, ModelFamily::kT5}) {
    for (const auto& r : rows) {
      out.push_back(make_model(f, r.hidden, r.heads, r.layers,
                               std::string(family_name(f)) + " " + r.size));
    }
  }
  return out;
}

ModelSpec gpt2_345m() {
  return make_model(ModelFamily::kGPT2, 1024, 16, 24, "GPT-2 345M");
}

ModelSpec gpt2_hidden1024(int layers) {
  return make_model(ModelFamily::kGPT2, 1024, 16, layers,
                    "GPT-2 h1024 L" + std::to_string(layers));
}

}  // namespace eccheck::dnn
