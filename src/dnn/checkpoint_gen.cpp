#include "dnn/checkpoint_gen.hpp"

#include "common/rng.hpp"

namespace eccheck::dnn {
namespace {

/// Deterministic payload: every tensor's bytes depend on (seed, worker, its
/// position in the dict) so any reconstruction path must reproduce them
/// exactly.
void fill_tensor(Tensor& t, std::uint64_t seed, int worker,
                 std::size_t index) {
  std::uint64_t s = seed ^ (static_cast<std::uint64_t>(worker) << 32) ^
                    (static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL);
  fill_random(t.bytes(), s);
}

struct Builder {
  const CheckpointGenConfig& cfg;
  int worker;       ///< the physical worker this shard belongs to
  int fill_worker;  ///< worker id used for payload seeds (dp replicas share)
  StateDict sd;
  std::size_t index = 0;

  /// FSDP flattens every tensor and keeps 1/dp of the elements per replica.
  std::vector<std::int64_t> maybe_fsdp_shape(
      std::vector<std::int64_t> shape) const {
    const int dp = cfg.parallelism.data_parallel;
    if (!cfg.fsdp || dp <= 1) return shape;
    std::int64_t numel = 1;
    for (auto d : shape) numel *= d;
    return {(numel + dp - 1) / dp};
  }

  void add(const std::string& key, DType dtype,
           std::vector<std::int64_t> shape) {
    shape = maybe_fsdp_shape(std::move(shape));
    Tensor t(dtype, shape);
    fill_tensor(t, cfg.seed, fill_worker, index++);
    std::string prefix = "model." + key;
    if (cfg.optimizer_states) {
      Tensor m(DType::kF32, shape);
      Tensor v(DType::kF32, shape);
      fill_tensor(m, cfg.seed, fill_worker, index++);
      fill_tensor(v, cfg.seed, fill_worker, index++);
      sd.add_tensor("optimizer.exp_avg." + key, std::move(m));
      sd.add_tensor("optimizer.exp_avg_sq." + key, std::move(v));
    }
    sd.add_tensor(prefix, std::move(t));
  }
};

}  // namespace

StateDict make_worker_state_dict(const CheckpointGenConfig& cfg, int worker) {
  const ModelSpec& m = cfg.model;
  const ParallelismSpec& p = cfg.parallelism;
  const RankCoords rc = rank_coords(p, worker);

  const int tp = p.tensor_parallel;
  ECC_CHECK_MSG(m.hidden % tp == 0,
                "hidden " << m.hidden << " not divisible by tp " << tp);
  // Layers are distributed round-robin-contiguously over pipeline stages;
  // uneven remainders go to the earliest stages (Megatron default).
  const int pp = p.pipeline_parallel;
  const int base = m.layers / pp;
  const int extra = m.layers % pp;
  const int my_layers = base + (rc.pp_stage < extra ? 1 : 0);
  const int first_layer =
      rc.pp_stage * base + std::min(rc.pp_stage, extra);

  const std::int64_t h = m.hidden;
  const std::int64_t h_tp = h / tp;
  const std::int64_t v_tp =
      (m.vocab + tp - 1) / tp;  // vocab padded to tp shards

  // Plain data parallelism replicates model tensors bit-identically across
  // dp ranks; FSDP gives each rank a distinct 1/dp slice.
  int fill_worker = worker;
  if (p.data_parallel > 1 && !cfg.fsdp)
    fill_worker = worker_of(p, {rc.tp_rank, rc.pp_stage, 0});
  Builder b{cfg, worker, fill_worker, {}, 0};

  // Embeddings live on the first pipeline stage (column-sharded over tp).
  if (rc.pp_stage == 0) {
    b.add("embedding.word_embeddings.weight", DType::kF16, {v_tp, h});
    b.add("embedding.position_embeddings.weight", DType::kF16, {1024, h});
  }

  for (int l = first_layer; l < first_layer + my_layers; ++l) {
    std::string lp = "layers." + std::to_string(l) + ".";
    b.add(lp + "input_layernorm.weight", DType::kF16, {h});
    b.add(lp + "input_layernorm.bias", DType::kF16, {h});
    // Column-parallel QKV: output dim sharded.
    b.add(lp + "attention.qkv.weight", DType::kF16, {3 * h_tp, h});
    b.add(lp + "attention.qkv.bias", DType::kF16, {3 * h_tp});
    // Row-parallel projection: input dim sharded; bias replicated.
    b.add(lp + "attention.dense.weight", DType::kF16, {h, h_tp});
    b.add(lp + "attention.dense.bias", DType::kF16, {h});
    b.add(lp + "post_attention_layernorm.weight", DType::kF16, {h});
    b.add(lp + "post_attention_layernorm.bias", DType::kF16, {h});
    b.add(lp + "mlp.dense_h_to_4h.weight", DType::kF16, {4 * h_tp, h});
    b.add(lp + "mlp.dense_h_to_4h.bias", DType::kF16, {4 * h_tp});
    b.add(lp + "mlp.dense_4h_to_h.weight", DType::kF16, {h, 4 * h_tp});
    b.add(lp + "mlp.dense_4h_to_h.bias", DType::kF16, {h});
  }

  if (rc.pp_stage == p.pipeline_parallel - 1) {
    b.add("final_layernorm.weight", DType::kF16, {h});
    b.add("final_layernorm.bias", DType::kF16, {h});
  }

  // Dataloader / CUDA RNG state blob (tensor data kept in CPU memory).
  {
    // RNG state is always per-worker (dataloader streams differ).
    Tensor rng_state(DType::kU8, {5056});
    fill_tensor(rng_state, cfg.seed, worker, b.index++);
    b.sd.add_tensor("rng.cuda_rng_state", std::move(rng_state));
  }

  auto& meta = b.sd.metadata();
  meta["iteration"] = cfg.iteration;
  meta["checkpoint_version"] = std::int64_t{3};
  meta["model"] = m.label;
  meta["tokens_consumed"] = cfg.iteration * std::int64_t{1048576};
  meta["learning_rate"] = 1.5e-4;
  meta["tp_rank"] = static_cast<std::int64_t>(rc.tp_rank);
  meta["pp_stage"] = static_cast<std::int64_t>(rc.pp_stage);
  meta["dp_rank"] = static_cast<std::int64_t>(rc.dp_rank);
  meta["world_size"] = static_cast<std::int64_t>(p.world_size());
  meta["fsdp"] = static_cast<std::int64_t>(cfg.fsdp ? 1 : 0);

  return std::move(b.sd);
}

std::vector<StateDict> make_sharded_checkpoint(
    const CheckpointGenConfig& cfg) {
  std::vector<StateDict> out;
  out.reserve(static_cast<std::size_t>(cfg.parallelism.world_size()));
  for (int w = 0; w < cfg.parallelism.world_size(); ++w)
    out.push_back(make_worker_state_dict(cfg, w));
  return out;
}

std::vector<std::uint64_t> shard_digests(const CheckpointGenConfig& cfg) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(cfg.parallelism.world_size()));
  for (int w = 0; w < cfg.parallelism.world_size(); ++w)
    out.push_back(make_worker_state_dict(cfg, w).digest());
  return out;
}

}  // namespace eccheck::dnn
