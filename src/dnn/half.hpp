// IEEE 754 binary16 conversion.
//
// The training-step simulator updates fp16 weights through an fp32 Adam
// path, exactly like mixed-precision training; bit-exact, branch-complete
// conversions (subnormals, infinities, NaN, round-to-nearest-even) keep the
// interrupted-vs-uninterrupted training equivalence test meaningful.
#pragma once

#include <cstdint>

namespace eccheck::dnn {

/// fp32 → fp16 bits, round-to-nearest-even, overflow to infinity.
std::uint16_t float_to_half(float f);

/// fp16 bits → fp32 (exact).
float half_to_float(std::uint16_t h);

}  // namespace eccheck::dnn
