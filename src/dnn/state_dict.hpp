// The sharded checkpoint unit: one state_dict per worker (paper §III-A).
//
// Mirrors the PyTorch structure ECCheck decomposes (§III-C):
//   * non-tensor key-value pairs — iteration count, checkpoint version,
//     argument digests ... (tiny);
//   * tensor keys — names + shapes + dtypes (tiny);
//   * tensor data — model weights, Adam moments, RNG state (≈ everything).
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/crc64.hpp"
#include "dnn/tensor.hpp"

namespace eccheck::dnn {

using MetaValue = std::variant<std::int64_t, double, std::string>;

struct TensorEntry {
  std::string key;
  Tensor tensor;
};

class StateDict {
 public:
  std::map<std::string, MetaValue>& metadata() { return metadata_; }
  const std::map<std::string, MetaValue>& metadata() const {
    return metadata_;
  }

  void add_tensor(std::string key, Tensor t) {
    tensors_.push_back({std::move(key), std::move(t)});
  }

  std::vector<TensorEntry>& tensors() { return tensors_; }
  const std::vector<TensorEntry>& tensors() const { return tensors_; }

  /// Total tensor payload bytes (the ">99.99%" component).
  std::size_t tensor_bytes() const;

  /// Order-sensitive digest over metadata, keys, shapes and payload bytes;
  /// recovery tests assert digest equality instead of keeping golden copies.
  std::uint64_t digest() const;

  friend bool operator==(const StateDict& a, const StateDict& b);

 private:
  std::map<std::string, MetaValue> metadata_;
  std::vector<TensorEntry> tensors_;
};

}  // namespace eccheck::dnn
