#include "dnn/state_dict.hpp"

namespace eccheck::dnn {

const char* dtype_name(DType t) {
  switch (t) {
    case DType::kF16:
      return "f16";
    case DType::kBF16:
      return "bf16";
    case DType::kF32:
      return "f32";
    case DType::kF64:
      return "f64";
    case DType::kI64:
      return "i64";
    case DType::kU8:
      return "u8";
  }
  return "?";
}

std::size_t StateDict::tensor_bytes() const {
  std::size_t n = 0;
  for (const auto& e : tensors_) n += e.tensor.nbytes();
  return n;
}

namespace {

std::uint64_t crc_str(const std::string& s, std::uint64_t seed) {
  return crc64({reinterpret_cast<const std::byte*>(s.data()), s.size()}, seed);
}

}  // namespace

std::uint64_t StateDict::digest() const {
  std::uint64_t h = 0;
  for (const auto& [k, v] : metadata_) {
    h = crc_str(k, h);
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      h = crc64(as_bytes_of(*i), h);
    } else if (const auto* d = std::get_if<double>(&v)) {
      h = crc64(as_bytes_of(*d), h);
    } else {
      h = crc_str(std::get<std::string>(v), h);
    }
  }
  for (const auto& e : tensors_) {
    h = crc_str(e.key, h);
    auto dt = static_cast<std::uint8_t>(e.tensor.dtype());
    h = crc64(as_bytes_of(dt), h);
    for (auto d : e.tensor.shape()) h = crc64(as_bytes_of(d), h);
    h = crc64(e.tensor.bytes(), h);
  }
  return h;
}

bool operator==(const StateDict& a, const StateDict& b) {
  if (a.metadata_ != b.metadata_) return false;
  if (a.tensors_.size() != b.tensors_.size()) return false;
  for (std::size_t i = 0; i < a.tensors_.size(); ++i) {
    const auto& ta = a.tensors_[i];
    const auto& tb = b.tensors_[i];
    if (ta.key != tb.key || ta.tensor.dtype() != tb.tensor.dtype() ||
        ta.tensor.shape() != tb.tensor.shape())
      return false;
    if (ta.tensor.nbytes() != tb.tensor.nbytes()) return false;
    if (std::memcmp(ta.tensor.bytes().data(), tb.tensor.bytes().data(),
                    ta.tensor.nbytes()) != 0)
      return false;
  }
  return true;
}

}  // namespace eccheck::dnn
