#include "dnn/train_step.hpp"

#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "dnn/half.hpp"
#include "dnn/parallelism.hpp"

namespace eccheck::dnn {
namespace {

std::uint64_t key_hash(const std::string& s) {
  return crc64({reinterpret_cast<const std::byte*>(s.data()), s.size()});
}

float read_weight(const Tensor& t, std::size_t i) {
  if (t.dtype() == DType::kF16) {
    std::uint16_t h;
    std::memcpy(&h, t.bytes().data() + i * 2, 2);
    return half_to_float(h);
  }
  float f;
  std::memcpy(&f, t.bytes().data() + i * 4, 4);
  return f;
}

void write_weight(Tensor& t, std::size_t i, float v) {
  if (t.dtype() == DType::kF16) {
    std::uint16_t h = float_to_half(v);
    std::memcpy(t.bytes().data() + i * 2, &h, 2);
    return;
  }
  std::memcpy(t.bytes().data() + i * 4, &v, 4);
}

float read_f32(const Tensor& t, std::size_t i) {
  float f;
  std::memcpy(&f, t.bytes().data() + i * 4, 4);
  return f;
}

void write_f32(Tensor& t, std::size_t i, float v) {
  std::memcpy(t.bytes().data() + i * 4, &v, 4);
}

}  // namespace

void train_step(StateDict& sd, std::uint64_t grad_seed,
                const AdamConfig& cfg) {
  // Pair each model tensor with its optimizer moments by suffix.
  std::map<std::string, TensorEntry*> by_key;
  for (auto& e : sd.tensors()) by_key[e.key] = &e;

  auto it = sd.metadata().find("iteration");
  std::int64_t t = it != sd.metadata().end() && std::holds_alternative<std::int64_t>(it->second)
                       ? std::get<std::int64_t>(it->second)
                       : 0;
  const auto step = static_cast<float>(t + 1);
  const float bc1 = 1.0f - std::pow(cfg.beta1, step);
  const float bc2 = 1.0f - std::pow(cfg.beta2, step);

  for (auto& e : sd.tensors()) {
    if (e.key.rfind("model.", 0) != 0) continue;
    const std::string suffix = e.key.substr(6);
    auto m_it = by_key.find("optimizer.exp_avg." + suffix);
    auto v_it = by_key.find("optimizer.exp_avg_sq." + suffix);
    if (m_it == by_key.end() || v_it == by_key.end()) continue;
    Tensor& w = e.tensor;
    Tensor& m = m_it->second->tensor;
    Tensor& v = v_it->second->tensor;
    ECC_CHECK(m.numel() == w.numel() && v.numel() == w.numel());

    SplitMix64 rng(grad_seed ^ key_hash(e.key));
    const std::size_t n = w.numel();
    for (std::size_t i = 0; i < n; ++i) {
      // Pseudo-gradient in [-1, 1), scaled down as real gradients are.
      const float g =
          (static_cast<float>(rng.next_double()) * 2.0f - 1.0f) * 0.01f;
      float mi = cfg.beta1 * read_f32(m, i) + (1 - cfg.beta1) * g;
      float vi = cfg.beta2 * read_f32(v, i) + (1 - cfg.beta2) * g * g;
      write_f32(m, i, mi);
      write_f32(v, i, vi);
      const float update =
          cfg.lr * (mi / bc1) / (std::sqrt(vi / bc2) + cfg.eps);
      write_weight(w, i, read_weight(w, i) - update);
    }
  }
  sd.metadata()["iteration"] = t + 1;
}

void train_step_all(std::vector<StateDict>& shards, std::uint64_t seed) {
  for (auto& sd : shards) {
    // dp replicas share a gradient stream: derive the seed from the shard's
    // (tp, pp) coordinates and iteration, not the dp rank.
    std::int64_t iter = 0;
    if (auto it = sd.metadata().find("iteration"); it != sd.metadata().end())
      iter = std::get<std::int64_t>(it->second);
    std::uint64_t tp = 0, pp = 0;
    if (auto it = sd.metadata().find("tp_rank"); it != sd.metadata().end())
      tp = static_cast<std::uint64_t>(std::get<std::int64_t>(it->second));
    if (auto it = sd.metadata().find("pp_stage"); it != sd.metadata().end())
      pp = static_cast<std::uint64_t>(std::get<std::int64_t>(it->second));
    train_step(sd, seed ^ (tp << 40) ^ (pp << 20) ^
                       static_cast<std::uint64_t>(iter));
  }
}

void sanitize_for_training(StateDict& sd, std::uint64_t seed) {
  for (auto& e : sd.tensors()) {
    if (e.key.rfind("optimizer.", 0) == 0) {
      e.tensor.bytes();
      std::memset(e.tensor.bytes().data(), 0, e.tensor.nbytes());
    } else if (e.key.rfind("model.", 0) == 0 &&
               (e.tensor.dtype() == DType::kF16 ||
                e.tensor.dtype() == DType::kF32)) {
      SplitMix64 rng(seed ^ key_hash(e.key));
      for (std::size_t i = 0; i < e.tensor.numel(); ++i) {
        const float w =
            (static_cast<float>(rng.next_double()) * 2.0f - 1.0f) * 0.05f;
        write_weight(e.tensor, i, w);
      }
    }
  }
}

}  // namespace eccheck::dnn
