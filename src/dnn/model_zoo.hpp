// Table-I model configurations and checkpoint sizing.
//
// Parameter counts follow the standard transformer estimate
//   P ≈ V·h (embeddings) + L·(12h² + 13h) (blocks) + 2h (final layernorm);
// the Table-I labels check out: (1600,48)→1.6B, (2560,64)→5.3B,
// (5120,64)→20B. Checkpoint bytes default to 16 B/param — fp16 weights plus
// fp32 Adam exp_avg/exp_avg_sq plus fp32 master copy, the Megatron-LM
// mixed-precision layout the paper trains with.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eccheck::dnn {

enum class ModelFamily { kGPT2, kBERT, kT5 };

const char* family_name(ModelFamily f);

struct ModelSpec {
  ModelFamily family = ModelFamily::kGPT2;
  std::string label;        ///< "GPT-2 5.3B"
  int hidden = 1024;
  int attention_heads = 16;
  int layers = 24;
  int vocab = 50257;        ///< constant across the paper's experiments

  std::uint64_t param_count() const;

  /// Checkpoint footprint across the whole model.
  std::uint64_t checkpoint_bytes(double bytes_per_param = 16.0) const;

  /// Scaled-down copy for simulation: divides hidden (rounded to a multiple
  /// of `hidden_multiple`) and vocab by `factor`, keeping layer count and
  /// tensor structure. Used with ClusterConfig::size_scale so benchmarks run
  /// real bytes at laptop scale while charging paper-scale virtual time.
  ModelSpec scaled_down(double factor, int hidden_multiple = 64) const;
};

/// The nine Table-I configurations plus the GPT-2 345M used in Fig. 4 and
/// the hidden-1024 scalability model of Fig. 14.
std::vector<ModelSpec> table1_models();
ModelSpec gpt2_345m();
ModelSpec gpt2_hidden1024(int layers);
ModelSpec make_model(ModelFamily family, int hidden, int heads, int layers,
                     const std::string& label);

}  // namespace eccheck::dnn
