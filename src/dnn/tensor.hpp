// Minimal tensor representation: contiguous bytes + shape + dtype.
//
// The checkpoint protocol never interprets element values — it only needs
// (a) contiguous storage, (b) sizes that vary wildly between entries
// (layernorm biases vs. embedding matrices), which is exactly what drives
// the paper's buffer-packing design.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace eccheck::dnn {

enum class DType : std::uint8_t {
  kF16 = 0,
  kBF16 = 1,
  kF32 = 2,
  kF64 = 3,
  kI64 = 4,
  kU8 = 5,
};

constexpr std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::kF16:
    case DType::kBF16:
      return 2;
    case DType::kF32:
      return 4;
    case DType::kF64:
    case DType::kI64:
      return 8;
    case DType::kU8:
      return 1;
  }
  return 0;
}

const char* dtype_name(DType t);

class Tensor {
 public:
  Tensor() = default;
  Tensor(DType dtype, std::vector<std::int64_t> shape)
      : dtype_(dtype), shape_(std::move(shape)),
        data_(numel() * dtype_size(dtype), Buffer::Init::kUninitialized) {}

  DType dtype() const { return dtype_; }
  const std::vector<std::int64_t>& shape() const { return shape_; }

  std::size_t numel() const {
    std::size_t n = 1;
    for (auto d : shape_) {
      ECC_CHECK(d >= 0);
      n *= static_cast<std::size_t>(d);
    }
    return n;
  }

  std::size_t nbytes() const { return data_.size(); }
  ByteSpan bytes() const { return data_.span(); }
  MutableByteSpan bytes() { return data_.span(); }

  Tensor clone() const {
    Tensor t;
    t.dtype_ = dtype_;
    t.shape_ = shape_;
    t.data_ = data_.clone();
    return t;
  }

 private:
  DType dtype_ = DType::kF32;
  std::vector<std::int64_t> shape_;
  Buffer data_;
};

}  // namespace eccheck::dnn
