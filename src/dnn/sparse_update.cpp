#include "dnn/sparse_update.hpp"

#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace eccheck::dnn {
namespace {

constexpr const char* kEmbeddingKey = "embedding.weight";

std::uint64_t mix(std::uint64_t seed, int worker, std::int64_t iteration,
                  std::uint64_t salt) {
  return seed ^ (static_cast<std::uint64_t>(worker) << 32) ^
         (static_cast<std::uint64_t>(iteration) * 0x9e3779b97f4a7c15ULL) ^
         salt;
}

}  // namespace

StateDict make_sparse_model_shard(const SparseUpdateSpec& spec, int worker) {
  ECC_CHECK(spec.embedding_rows > 0 && spec.embedding_dim > 0);
  ECC_CHECK(spec.dense_tensors >= 0 && spec.dense_elems > 0);
  StateDict sd;
  sd.metadata()["model"] = std::string("sparse_embedding");
  sd.metadata()["worker"] = static_cast<std::int64_t>(worker);
  sd.metadata()["iteration"] = static_cast<std::int64_t>(0);

  Tensor emb(DType::kF32, {spec.embedding_rows, spec.embedding_dim});
  fill_random(emb.bytes(), mix(spec.seed, worker, 0, 0xe3b));
  sd.add_tensor(kEmbeddingKey, std::move(emb));
  for (int i = 0; i < spec.dense_tensors; ++i) {
    Tensor t(DType::kF32, {spec.dense_elems});
    fill_random(t.bytes(),
                mix(spec.seed, worker, 0, 0xd0 + static_cast<std::uint64_t>(i)));
    sd.add_tensor("dense." + std::to_string(i) + ".weight", std::move(t));
  }
  return sd;
}

void apply_sparse_update(StateDict& sd, const SparseUpdateSpec& spec,
                         int worker, std::int64_t iteration) {
  ECC_CHECK(iteration >= 1);
  ECC_CHECK(spec.row_density >= 0.0 && spec.row_density <= 1.0);
  ECC_CHECK_MSG(!sd.tensors().empty() &&
                    sd.tensors()[0].key == kEmbeddingKey,
                "state dict was not built by make_sparse_model_shard");
  Tensor& emb = sd.tensors()[0].tensor;
  const auto rows = static_cast<std::uint64_t>(spec.embedding_rows);
  const std::size_t row_bytes =
      static_cast<std::size_t>(spec.embedding_dim) * 4;

  // The minibatch's row set: distinct, deterministic in (seed, worker, it).
  const auto touched = static_cast<std::uint64_t>(
      spec.row_density * static_cast<double>(rows) + 0.5);
  SplitMix64 pick(mix(spec.seed, worker, iteration, 0x70c4));
  std::set<std::uint64_t> row_set;
  while (row_set.size() < std::min(touched, rows))
    row_set.insert(pick.next_below(rows));
  for (std::uint64_t r : row_set) {
    fill_random(emb.bytes().subspan(r * row_bytes, row_bytes),
                mix(spec.seed, worker, iteration, 0xeb0 ^ r));
  }

  for (std::size_t t = 1; t < sd.tensors().size(); ++t) {
    fill_random(sd.tensors()[t].tensor.bytes(),
                mix(spec.seed, worker, iteration,
                    0xde00 + static_cast<std::uint64_t>(t)));
  }
  sd.metadata()["iteration"] = iteration;
}

}  // namespace eccheck::dnn
