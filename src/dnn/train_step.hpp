// Numeric training-step simulator: mixed-precision Adam on the state_dict.
//
// Each step synthesises deterministic pseudo-gradients (a function of the
// seed, the iteration counter and each tensor's key) and applies a real
// Adam update: fp16 weights are read, updated through fp32 arithmetic with
// the fp32 exp_avg/exp_avg_sq moments stored next to them, and written back
// with round-to-nearest. This makes training state evolve exactly like a
// mixed-precision run, enabling the gold-standard checkpoint test: train,
// checkpoint, fail, recover, continue — the final state must be
// bit-identical to an uninterrupted run.
#pragma once

#include "dnn/state_dict.hpp"

namespace eccheck::dnn {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

/// Apply one optimizer step to every model tensor in `sd` that has matching
/// optimizer.exp_avg./exp_avg_sq. entries; advances metadata["iteration"].
/// `grad_seed` determines the pseudo-gradients (use the same seed on all dp
/// replicas of a shard, as all-reduce would).
void train_step(StateDict& sd, std::uint64_t grad_seed,
                const AdamConfig& cfg = AdamConfig());

/// Replace random generator payloads with trainable values: weights become
/// small deterministic reals, optimizer moments become zero. Call once
/// before the first train_step (the generator fills tensors with raw random
/// bytes, which decode to NaN/Inf floats).
void sanitize_for_training(StateDict& sd, std::uint64_t seed);

/// Convenience: step every shard of a sharded checkpoint, deriving each
/// worker's gradient seed from (seed, iteration) so dp replicas that hold
/// identical tensors stay identical.
void train_step_all(std::vector<StateDict>& shards, std::uint64_t seed);

}  // namespace eccheck::dnn
