// Quickstart: erasure-coded in-memory checkpointing in ~60 lines.
//
// Builds the paper's 4-node testbed, saves a sharded GPT-2 checkpoint with
// ECCheck (k = 2 data nodes, m = 2 parity nodes), kills two nodes — a
// failure pattern replication-based schemes cannot always survive — and
// restores every worker's state_dict bit-exactly.
#include <cstdio>

#include "core/eccheck_engine.hpp"
#include "dnn/checkpoint_gen.hpp"

using namespace eccheck;

int main() {
  // 1. A virtual 4-node × 2-GPU cluster (100 Gbps NIC, 5 Gbps remote).
  cluster::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = 4;
  cluster_cfg.gpus_per_node = 2;
  cluster::VirtualCluster cluster(cluster_cfg);

  // 2. A sharded checkpoint: one state_dict per worker (tp=2, pp=4).
  dnn::CheckpointGenConfig gen;
  gen.model = dnn::make_model(dnn::ModelFamily::kGPT2, 256, 4, 8, "demo");
  gen.model.vocab = 1024;
  gen.parallelism = {2, 4, 1};
  auto shards = dnn::make_sharded_checkpoint(gen);
  std::vector<std::uint64_t> digests;
  for (const auto& sd : shards) digests.push_back(sd.digest());
  std::printf("sharded checkpoint: %d workers, %s per worker\n",
              gen.parallelism.world_size(),
              human_bytes(static_cast<double>(shards[0].tensor_bytes()))
                  .c_str());

  // 3. Save with ECCheck: k = m = 2 → any two node failures survivable.
  core::ECCheckConfig ec;
  ec.k = 2;
  ec.m = 2;
  ec.packet_size = kib(64);
  core::ECCheckEngine engine(ec);
  auto save = engine.save(cluster, shards, /*version=*/1);
  std::printf("save: training stalled %s, checkpoint durable after %s\n",
              human_seconds(save.stall_time).c_str(),
              human_seconds(save.total_time).c_str());

  // 4. Disaster: two nodes die at once (host memory is volatile).
  cluster.kill(0);
  cluster.kill(1);
  std::printf("nodes 0 and 1 failed; replacements join empty\n");
  cluster.replace(0);
  cluster.replace(1);

  // 5. Recover. ECCheck decodes the lost chunks from any k survivors.
  std::vector<dnn::StateDict> restored;
  auto load = engine.load(cluster, 1, restored);
  if (!load.success) {
    std::printf("recovery failed: %s\n", load.detail.c_str());
    return 1;
  }
  std::printf("recovery (%s): resume after %s, redundancy restored by %s\n",
              load.detail.c_str(), human_seconds(load.resume_time).c_str(),
              human_seconds(load.total_time).c_str());

  // 6. Verify bit-exactness.
  for (std::size_t w = 0; w < restored.size(); ++w) {
    if (restored[w].digest() != digests[w]) {
      std::printf("worker %zu MISMATCH\n", w);
      return 1;
    }
  }
  std::printf("all %zu worker state_dicts restored bit-exactly\n",
              restored.size());
  return 0;
}
