// Codec tour: the erasure-coding layer as a standalone library.
//
// Shows the CrsCodec API on raw buffers — systematic encode, loss of any m
// chunks, decode, partial (distributed) encoding, and parity repair — the
// same primitives the checkpoint engine composes.
#include <cstdio>

#include "common/crc64.hpp"
#include "common/units.hpp"
#include "common/rng.hpp"
#include "ec/crs_codec.hpp"

using namespace eccheck;

int main() {
  const int k = 4, m = 2;
  const std::size_t P = mib(1);
  ec::CrsCodec codec(k, m, /*w=*/8, ec::KernelMode::kGfTable);
  std::printf("Cauchy Reed-Solomon codec: k=%d data + m=%d parity chunks, "
              "GF(2^%d)\n\n",
              k, m, codec.w());

  // Data chunks with known checksums.
  std::vector<Buffer> data;
  std::vector<std::uint64_t> crcs;
  for (int i = 0; i < k; ++i) {
    data.emplace_back(P, Buffer::Init::kUninitialized);
    fill_random(data.back().span(), 1000 + static_cast<std::uint64_t>(i));
    crcs.push_back(crc64(data.back().span()));
  }

  // Systematic encode: data is preserved, m parity chunks appended.
  std::vector<Buffer> parity;
  for (int r = 0; r < m; ++r) parity.emplace_back(P);
  {
    std::vector<ByteSpan> in;
    for (auto& d : data) in.push_back(d.span());
    std::vector<MutableByteSpan> out;
    for (auto& p : parity) out.push_back(p.span());
    codec.encode(in, out);
  }
  std::printf("encoded %d x %s into %d parity chunks\n", k,
              human_bytes(P).c_str(), m);

  // Distributed encoding: each "worker" computes its own partial product;
  // XOR-ing the partials reproduces the parity (the paper's XOR reduction).
  {
    Buffer acc(P, Buffer::Init::kUninitialized);
    for (int c = 0; c < k; ++c)
      codec.encode_partial(k + 0, c, data[static_cast<std::size_t>(c)].span(),
                           acc.span(), c != 0);
    std::printf("partial-product XOR reduction == direct encode: %s\n",
                acc == parity[0] ? "yes" : "NO");
  }

  // Lose any m chunks — here the two heaviest: data 0 and data 2.
  std::printf("\nerasing data chunks 0 and 2...\n");
  std::vector<int> rows = {1, 3, 4, 5};  // surviving generator rows
  std::vector<ByteSpan> chunks = {data[1].span(), data[3].span(),
                                  parity[0].span(), parity[1].span()};
  std::vector<Buffer> recovered;
  for (int i = 0; i < k; ++i)
    recovered.emplace_back(P, Buffer::Init::kUninitialized);
  {
    std::vector<MutableByteSpan> out;
    for (auto& r : recovered) out.push_back(r.span());
    codec.decode(rows, chunks, out);
  }
  for (int i = 0; i < k; ++i) {
    bool ok = crc64(recovered[static_cast<std::size_t>(i)].span()) ==
              crcs[static_cast<std::size_t>(i)];
    std::printf("  data chunk %d: %s\n", i, ok ? "recovered" : "CORRUPT");
    if (!ok) return 1;
  }

  // Repair the erasure code itself: recompute parity row 1 from survivors
  // without first materialising all the data (reconstruction matrix).
  {
    auto t = codec.reconstruction_matrix(rows, {k + 1});
    Buffer rebuilt(P, Buffer::Init::kUninitialized);
    std::vector<MutableByteSpan> out{rebuilt.span()};
    codec.apply_matrix(t, chunks, out);
    std::printf("\nparity row 1 rebuilt directly from survivors: %s\n",
                rebuilt == parity[1] ? "bit-exact" : "MISMATCH");
  }

  // The XOR-only bitmatrix kernel is a drop-in alternative (§IV-A).
  {
    ec::CrsCodec xcodec(k, m, 8, ec::KernelMode::kXorBitmatrix);
    std::printf("XOR-only kernel: %d XOR ops per stripe for this code\n",
                xcodec.xor_ops_per_stripe());
  }
  return 0;
}
