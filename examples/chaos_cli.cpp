// chaos_cli: run randomized fault-injection campaigns against the Session
// API and report invariant verdicts as JSON lines.
//
//   chaos_cli                                   # default: 4 seeds x 64 events
//   chaos_cli --seed 42 --events 200            # one long campaign
//   chaos_cli --seed 7 --campaigns 8 --flush    # seeds 7..14 with remote flush
//   chaos_cli --jsonl events.jsonl              # per-event log for debugging
//
// One summary line per campaign goes to stdout (seed, event counts, invariant
// verdicts, detection/recovery latency summaries). On any invariant violation
// the process exits 1 and prints the exact command line that replays the
// failing campaign — determinism is the whole point: same seed, same schedule,
// same failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "chaos/runner.hpp"
#include "common/units.hpp"

namespace {

using namespace eccheck;

struct Options {
  chaos::ChaosConfig chaos;
  int campaigns = 4;
  std::size_t packet_kib = 8;
  std::string jsonl;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seed N          first campaign seed (default 1)\n"
      "  --campaigns N     number of campaigns, seeds seed..seed+N-1 "
      "(default 4)\n"
      "  --events N        events per campaign (default 64)\n"
      "  --nodes N         cluster nodes (default 4)\n"
      "  --gpus N          GPUs per node (default 2)\n"
      "  --k N --m N       data/parity split, k+m == nodes (default 2+2)\n"
      "  --retain N        versions kept in host memory (default 2)\n"
      "  --packet-kib N    coding packet size (default 8)\n"
      "  --flush           enable step-4 remote flush\n"
      "  --jsonl FILE      append one JSON line per event/violation\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) {
    if (++i >= argc) usage(argv[0]);
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--seed"))
      o.chaos.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    else if (!std::strcmp(a, "--campaigns"))
      o.campaigns = std::atoi(need(i));
    else if (!std::strcmp(a, "--events"))
      o.chaos.events = std::atoi(need(i));
    else if (!std::strcmp(a, "--nodes"))
      o.chaos.num_nodes = std::atoi(need(i));
    else if (!std::strcmp(a, "--gpus"))
      o.chaos.gpus_per_node = std::atoi(need(i));
    else if (!std::strcmp(a, "--k"))
      o.chaos.k = std::atoi(need(i));
    else if (!std::strcmp(a, "--m"))
      o.chaos.m = std::atoi(need(i));
    else if (!std::strcmp(a, "--retain"))
      o.chaos.retain_versions = std::atoi(need(i));
    else if (!std::strcmp(a, "--packet-kib"))
      o.packet_kib = static_cast<std::size_t>(std::atoll(need(i)));
    else if (!std::strcmp(a, "--flush"))
      o.chaos.flush_to_remote = true;
    else if (!std::strcmp(a, "--jsonl"))
      o.jsonl = need(i);
    else
      usage(argv[0]);
  }
  o.chaos.packet_size = kib(o.packet_kib);
  if (o.campaigns < 1) usage(argv[0]);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);

  std::ofstream jsonl_file;
  std::ostream* jsonl = nullptr;
  if (!o.jsonl.empty()) {
    jsonl_file.open(o.jsonl, std::ios::app);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open %s for append\n", o.jsonl.c_str());
      return 2;
    }
    jsonl = &jsonl_file;
  }

  int rc = 0;
  const std::uint64_t base_seed = o.chaos.seed;
  for (int c = 0; c < o.campaigns; ++c) {
    chaos::ChaosConfig cfg = o.chaos;
    cfg.seed = base_seed + static_cast<std::uint64_t>(c);
    chaos::ChaosRunner runner(cfg, jsonl);
    const chaos::CampaignSummary& s = runner.run();
    std::printf("%s\n", s.to_json().c_str());
    if (s.violations > 0) {
      rc = 1;
      for (const std::string& msg : s.violation_messages)
        std::fprintf(stderr, "VIOLATION %s\n", msg.c_str());
      std::fprintf(stderr,
                   "replay: %s --seed %llu --campaigns 1 --events %d "
                   "--nodes %d --gpus %d --k %d --m %d --retain %d "
                   "--packet-kib %zu%s\n",
                   argv[0],
                   static_cast<unsigned long long>(cfg.seed), cfg.events,
                   cfg.num_nodes, cfg.gpus_per_node, cfg.k, cfg.m,
                   cfg.retain_versions, o.packet_kib,
                   cfg.flush_to_remote ? " --flush" : "");
    }
  }
  return rc;
}
