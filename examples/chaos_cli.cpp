// chaos_cli: run randomized fault-injection campaigns and report invariant
// verdicts as JSON lines.
//
//   chaos_cli                                   # default: 4 seeds x 64 events
//   chaos_cli --seed 42 --events 200            # one long campaign
//   chaos_cli --seed 7 --campaigns 8 --flush    # seeds 7..14 with remote flush
//   chaos_cli --jsonl events.jsonl              # per-event log for debugging
//   chaos_cli --mode sockets --seed 3           # real processes, real signals
//   chaos_cli --mode gray --events 12           # socket campaign, SIGSTOP-first
//
// Modes: `sim` (default) drives a VirtualCluster in-process through
// chaos::ChaosRunner; `sockets` forks a live coordinator + worker daemons
// over UDS and throws SIGKILL/SIGSTOP/corrupt frames at them through
// chaos::SocketCampaign; `gray` is `sockets` starting with SIGSTOP kills,
// biasing toward gray-failure windows.
//
// One summary line per campaign goes to stdout. On any invariant violation
// the process exits 1 and prints the exact command line that replays the
// failing campaign — determinism is the whole point: same seed, same schedule,
// same failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "chaos/runner.hpp"
#include "chaos/socket_campaign.hpp"
#include "common/units.hpp"

namespace {

using namespace eccheck;

struct Options {
  chaos::ChaosConfig chaos;
  int campaigns = 4;
  std::size_t packet_kib = 8;
  std::string jsonl;
  std::string mode = "sim";  // sim | sockets | gray
  std::string dir;           // sockets scratch dir (default: mkdtemp)
  bool verbose = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --mode M          sim (default) | sockets | gray\n"
      "  --seed N          first campaign seed (default 1)\n"
      "  --campaigns N     number of campaigns, seeds seed..seed+N-1 "
      "(default 4)\n"
      "  --events N        events per campaign (default 64)\n"
      "  --nodes N         cluster nodes (default 4)\n"
      "  --gpus N          GPUs per node (default 2; sim only)\n"
      "  --k N --m N       data/parity split, k+m == nodes (default 2+2)\n"
      "  --retain N        versions kept in host memory (default 2)\n"
      "  --packet-kib N    coding packet size (default 8; sim only)\n"
      "  --flush           enable step-4 remote flush (sim only)\n"
      "  --dir PATH        scratch dir for socket modes (default: mkdtemp)\n"
      "  --verbose         narrate socket-campaign events to stderr\n"
      "  --jsonl FILE      append one JSON line per event/violation "
      "(sim only)\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) {
    if (++i >= argc) usage(argv[0]);
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--seed"))
      o.chaos.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    else if (!std::strcmp(a, "--campaigns"))
      o.campaigns = std::atoi(need(i));
    else if (!std::strcmp(a, "--events"))
      o.chaos.events = std::atoi(need(i));
    else if (!std::strcmp(a, "--nodes"))
      o.chaos.num_nodes = std::atoi(need(i));
    else if (!std::strcmp(a, "--gpus"))
      o.chaos.gpus_per_node = std::atoi(need(i));
    else if (!std::strcmp(a, "--k"))
      o.chaos.k = std::atoi(need(i));
    else if (!std::strcmp(a, "--m"))
      o.chaos.m = std::atoi(need(i));
    else if (!std::strcmp(a, "--retain"))
      o.chaos.retain_versions = std::atoi(need(i));
    else if (!std::strcmp(a, "--packet-kib"))
      o.packet_kib = static_cast<std::size_t>(std::atoll(need(i)));
    else if (!std::strcmp(a, "--flush"))
      o.chaos.flush_to_remote = true;
    else if (!std::strcmp(a, "--jsonl"))
      o.jsonl = need(i);
    else if (!std::strcmp(a, "--mode"))
      o.mode = need(i);
    else if (!std::strcmp(a, "--dir"))
      o.dir = need(i);
    else if (!std::strcmp(a, "--verbose"))
      o.verbose = true;
    else
      usage(argv[0]);
  }
  o.chaos.packet_size = kib(o.packet_kib);
  if (o.campaigns < 1) usage(argv[0]);
  if (o.mode != "sim" && o.mode != "sockets" && o.mode != "gray")
    usage(argv[0]);
  return o;
}

/// Socket modes: live processes, real signals, UDS fabric.
int run_socket_campaigns(const Options& o) {
  namespace fs = std::filesystem;
  int rc = 0;
  for (int c = 0; c < o.campaigns; ++c) {
    std::string dir = o.dir;
    if (dir.empty()) {
      char tmpl[] = "/tmp/eccheck-chaos-XXXXXX";
      if (::mkdtemp(tmpl) == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        return 2;
      }
      dir = tmpl;
    } else {
      dir += "/campaign" + std::to_string(c);
      fs::create_directories(dir);
    }
    chaos::SocketCampaignConfig cfg;
    cfg.k = o.chaos.k;
    cfg.m = o.chaos.m;
    cfg.events = std::min(o.chaos.events, 24);  // real seconds per event
    cfg.seed = o.chaos.seed + static_cast<std::uint64_t>(c);
    cfg.dir = dir;
    cfg.verbose = o.verbose;
    if (o.mode == "gray") {
      // Gray-first: SIGSTOP leads the kill alternation, biasing the
      // campaign toward gray-failure windows; the forced tail still
      // guarantees at least one kill of each kind.
      cfg.events = std::min(cfg.events, 12);
      cfg.first_kill_gray = true;
    }
    chaos::SocketCampaign campaign(cfg);
    const chaos::SocketCampaignSummary& s = campaign.run();
    std::printf("%s\n", s.to_json().c_str());
    if (o.dir.empty()) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
    if (s.violations > 0) {
      rc = 1;
      for (const std::string& msg : s.violation_messages)
        std::fprintf(stderr, "VIOLATION %s\n", msg.c_str());
      std::fprintf(stderr,
                   "replay: chaos_cli --mode %s --seed %llu --campaigns 1 "
                   "--events %d --k %d --m %d\n",
                   o.mode.c_str(),
                   static_cast<unsigned long long>(cfg.seed), cfg.events,
                   cfg.k, cfg.m);
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);
  if (o.mode != "sim") return run_socket_campaigns(o);

  std::ofstream jsonl_file;
  std::ostream* jsonl = nullptr;
  if (!o.jsonl.empty()) {
    jsonl_file.open(o.jsonl, std::ios::app);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open %s for append\n", o.jsonl.c_str());
      return 2;
    }
    jsonl = &jsonl_file;
  }

  int rc = 0;
  const std::uint64_t base_seed = o.chaos.seed;
  for (int c = 0; c < o.campaigns; ++c) {
    chaos::ChaosConfig cfg = o.chaos;
    cfg.seed = base_seed + static_cast<std::uint64_t>(c);
    chaos::ChaosRunner runner(cfg, jsonl);
    const chaos::CampaignSummary& s = runner.run();
    std::printf("%s\n", s.to_json().c_str());
    if (s.violations > 0) {
      rc = 1;
      for (const std::string& msg : s.violation_messages)
        std::fprintf(stderr, "VIOLATION %s\n", msg.c_str());
      std::fprintf(stderr,
                   "replay: %s --seed %llu --campaigns 1 --events %d "
                   "--nodes %d --gpus %d --k %d --m %d --retain %d "
                   "--packet-kib %zu%s\n",
                   argv[0],
                   static_cast<unsigned long long>(cfg.seed), cfg.events,
                   cfg.num_nodes, cfg.gpus_per_node, cfg.k, cfg.m,
                   cfg.retain_versions, o.packet_kib,
                   cfg.flush_to_remote ? " --flush" : "");
    }
  }
  return rc;
}
