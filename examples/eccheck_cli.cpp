// eccheck_cli — scenario driver: pick a cluster, model, engine and failure
// pattern from the command line; runs save → failures → load and prints the
// reports plus bit-exactness verification.
//
// Examples:
//   eccheck_cli                                   # defaults: paper testbed
//   eccheck_cli --engine base3 --fail 2,3         # GEMINI loses a group
//   eccheck_cli --nodes 8 --gpus 2 --k 4 --m 4 --fail 0,3,5,6
//   eccheck_cli --engine grouped --nodes 8 --group-size 4 --fail 0,1,4,5
//   eccheck_cli --model 20b --flush --fail 0,1,2  # remote rescue
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "bench/harness.hpp"
#include "core/grouped_engine.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/tracer.hpp"

using namespace eccheck;

namespace {

struct Options {
  int nodes = 4;
  int gpus = 4;
  int k = 2;
  int m = 2;
  int group_size = 4;
  std::string engine = "eccheck";
  std::string model = "5.3b";
  int tp = 0;  // 0 = gpus
  bool fsdp = false;
  bool flush = false;
  std::vector<int> failures;
  std::uint64_t seed = 42;
  std::size_t packet_kib = 128;
  std::string trace_out;   // Chrome-trace JSON of the save/load timelines
  std::string stats_json;  // per-stage counters/gauges/histograms JSON
  std::string profile_out;  // Chrome-trace JSON of real wall-clock spans
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --nodes N --gpus G        cluster shape (default 4x4)\n"
      "  --k K --m M               data/parity nodes (default 2/2)\n"
      "  --engine E                base1|base2|base3|eccheck|grouped\n"
      "  --group-size S            grouped mode group size (default 4)\n"
      "  --model M                 345m|1.6b|5.3b|20b (default 5.3b)\n"
      "  --tp T                    tensor-parallel degree (default = gpus)\n"
      "  --fsdp                    fully sharded data parallelism\n"
      "  --flush                   ECCheck step 4: flush chunks to remote\n"
      "  --fail a,b,c              nodes to kill after save\n"
      "  --packet-kib P            coding buffer size (default 128)\n"
      "  --seed S                  payload seed\n"
      "  --trace-out FILE          write Chrome-trace JSON (chrome://tracing,\n"
      "                            Perfetto) of the save + load timelines\n"
      "  --stats-json FILE         write per-stage stats (byte counters per\n"
      "                            edge kind, resource busy time) as JSON\n"
      "  --profile-out FILE        write wall-clock Chrome-trace JSON of the\n"
      "                            real data plane (pool workers, pipeline\n"
      "                            stages, codec slices); same FILE as\n"
      "                            --trace-out merges both into one trace\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--nodes")) o.nodes = std::atoi(need(i));
    else if (!std::strcmp(a, "--gpus")) o.gpus = std::atoi(need(i));
    else if (!std::strcmp(a, "--k")) o.k = std::atoi(need(i));
    else if (!std::strcmp(a, "--m")) o.m = std::atoi(need(i));
    else if (!std::strcmp(a, "--group-size")) o.group_size = std::atoi(need(i));
    else if (!std::strcmp(a, "--engine")) o.engine = need(i);
    else if (!std::strcmp(a, "--model")) o.model = need(i);
    else if (!std::strcmp(a, "--tp")) o.tp = std::atoi(need(i));
    else if (!std::strcmp(a, "--fsdp")) o.fsdp = true;
    else if (!std::strcmp(a, "--flush")) o.flush = true;
    else if (!std::strcmp(a, "--seed"))
      o.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    else if (!std::strcmp(a, "--packet-kib"))
      o.packet_kib = static_cast<std::size_t>(std::atoll(need(i)));
    else if (!std::strcmp(a, "--trace-out")) o.trace_out = need(i);
    else if (!std::strcmp(a, "--stats-json")) o.stats_json = need(i);
    else if (!std::strcmp(a, "--profile-out")) o.profile_out = need(i);
    else if (!std::strcmp(a, "--fail")) {
      std::stringstream ss(need(i));
      std::string part;
      while (std::getline(ss, part, ',')) {
        const int node = std::atoi(part.c_str());
        // Deduplicate: kill() rejects already-dead nodes, and a user typing
        // --fail 1,1 means one failure of node 1, not two.
        if (std::find(o.failures.begin(), o.failures.end(), node) ==
            o.failures.end())
          o.failures.push_back(node);
      }
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

dnn::ModelSpec pick_model(const std::string& name) {
  if (name == "345m") return dnn::gpt2_345m();
  auto t1 = dnn::table1_models();
  if (name == "1.6b") return t1[0];
  if (name == "5.3b") return t1[1];
  if (name == "20b") return t1[2];
  std::printf("unknown model '%s'\n", name.c_str());
  std::exit(2);
}

std::unique_ptr<ckpt::CheckpointEngine> pick_engine(const Options& o) {
  if (o.engine == "base1") return std::make_unique<ckpt::RemoteSyncEngine>();
  if (o.engine == "base2")
    return std::make_unique<ckpt::RemoteTwoPhaseEngine>();
  if (o.engine == "base3")
    return std::make_unique<ckpt::GeminiReplicationEngine>(2);
  if (o.engine == "eccheck") {
    core::ECCheckConfig cfg;
    cfg.k = o.k;
    cfg.m = o.m;
    cfg.packet_size = kib(o.packet_kib);
    cfg.flush_to_remote = o.flush;
    return std::make_unique<core::ECCheckEngine>(cfg);
  }
  if (o.engine == "grouped") {
    core::GroupedConfig cfg;
    cfg.group_size = o.group_size;
    cfg.per_group.k = o.group_size / 2;
    cfg.per_group.m = o.group_size - o.group_size / 2;
    cfg.per_group.packet_size = kib(o.packet_kib);
    cfg.per_group.flush_to_remote = o.flush;
    return std::make_unique<core::GroupedECCheckEngine>(cfg);
  }
  std::printf("unknown engine '%s'\n", o.engine.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);

  const auto model = pick_model(o.model);
  dnn::ParallelismSpec par;
  par.tensor_parallel = o.tp > 0 ? o.tp : o.gpus;
  const int world = o.nodes * o.gpus;
  if (world % par.tensor_parallel != 0) {
    std::printf("world %d not divisible by tp %d\n", world,
                par.tensor_parallel);
    return 2;
  }
  if (o.fsdp) {
    par.pipeline_parallel = std::max(1, world / par.tensor_parallel / 2);
    par.data_parallel =
        world / par.tensor_parallel / par.pipeline_parallel;
  } else {
    par.pipeline_parallel = world / par.tensor_parallel;
    par.data_parallel = 1;
  }

  std::printf("cluster : %d nodes x %d GPUs (100 Gbps NIC, 5 Gbps remote)\n",
              o.nodes, o.gpus);
  std::printf("model   : %s (%s checkpoint), tp=%d pp=%d dp=%d%s\n",
              model.label.c_str(),
              human_bytes(static_cast<double>(model.checkpoint_bytes()))
                  .c_str(),
              par.tensor_parallel, par.pipeline_parallel, par.data_parallel,
              o.fsdp ? " (FSDP)" : "");

  auto workload = bench::make_scaled_workload(model, par);
  if (o.fsdp) {
    dnn::CheckpointGenConfig gen;
    gen.model = workload.shards.empty() ? model : model;  // rebuild below
    gen.model = model.scaled_down(
        std::max(1.0, static_cast<double>(model.hidden) / 128));
    if (gen.model.hidden % par.tensor_parallel != 0)
      gen.model.hidden +=
          par.tensor_parallel - gen.model.hidden % par.tensor_parallel;
    gen.parallelism = par;
    gen.fsdp = true;
    gen.seed = o.seed;
    workload.shards = dnn::make_sharded_checkpoint(gen);
  }

  auto cfg = bench::testbed_config(o.nodes, o.gpus);
  cfg.size_scale = workload.size_scale;
  cluster::VirtualCluster cluster(cfg);
  bench::attach_training_calendar(cluster, model, par);

  std::vector<std::uint64_t> digests;
  for (const auto& sd : workload.shards) digests.push_back(sd.digest());

  auto engine = pick_engine(o);
  std::printf("engine  : %s\n\n", engine->name().c_str());

  obs::ChromeTraceWriter tracer;
  ckpt::SaveReport save;
  ckpt::LoadReport load;
  bool loaded = false;
  if (!o.profile_out.empty()) {
    obs::Tracer::set_thread_name("main");
    obs::Tracer::global().enable();
  }

  // Flush observability outputs on every exit path. The trace writer
  // serializes each timeline when added, so save is captured before load
  // resets the cluster's timeline.
  auto finish = [&](int rc) {
    if (!o.profile_out.empty()) {
      auto& prof = obs::Tracer::global();
      prof.disable();
      if (o.profile_out == o.trace_out) {
        // Merged view: virtual timelines and real threads side by side.
        prof.export_to(tracer, "real threads");
        std::printf("profile : %zu spans merged into %s\n", prof.span_count(),
                    o.trace_out.c_str());
      } else {
        obs::ChromeTraceWriter w;
        prof.export_to(w, "real threads");
        if (w.write_file(o.profile_out))
          std::printf("profile : %zu spans -> %s\n", prof.span_count(),
                      o.profile_out.c_str());
        else
          std::printf("profile : FAILED to write %s\n", o.profile_out.c_str());
      }
    }
    if (!o.trace_out.empty()) {
      if (tracer.write_file(o.trace_out))
        std::printf("trace   : %zu events -> %s\n", tracer.event_count(),
                    o.trace_out.c_str());
      else
        std::printf("trace   : FAILED to write %s\n", o.trace_out.c_str());
    }
    if (!o.stats_json.empty()) {
      std::ofstream f(o.stats_json);
      if (f) {
        f << "{\"save\":" << bench::save_report_json(save) << ",\"load\":";
        if (loaded)
          f << bench::load_report_json(load);
        else
          f << "null";
        f << ",\"cluster\":" << cluster.stats().to_json() << "}\n";
        std::printf("stats   : %s\n", o.stats_json.c_str());
      } else {
        std::printf("stats   : FAILED to write %s\n", o.stats_json.c_str());
      }
    }
    return rc;
  };

  save = engine->save(cluster, workload.shards, 1);
  if (!o.trace_out.empty()) {
    tracer.add_timeline(cluster.timeline(), "save");
    save.trace_path = o.trace_out;
  }
  if (!o.stats_json.empty())
    obs::collect_timeline_stats(cluster.timeline(), cluster.stats(), "save.");
  std::printf("save    : stall %s, durable after %s, network %s%s\n",
              human_seconds(save.stall_time).c_str(),
              human_seconds(save.total_time).c_str(),
              human_bytes(static_cast<double>(save.network_bytes)).c_str(),
              o.flush ? " (+ remote flush)" : "");

  if (o.failures.empty()) {
    std::printf("no failures requested; done.\n");
    return finish(0);
  }

  for (int f : o.failures) {
    if (f < 0 || f >= o.nodes) {
      std::printf("--fail node %d out of range [0, %d)\n", f, o.nodes);
      return finish(2);
    }
  }
  std::printf("failing : nodes");
  for (int f : o.failures) {
    std::printf(" %d", f);
    cluster.kill(f);
  }
  std::printf("\n");
  for (int f : o.failures) cluster.replace(f);

  std::vector<dnn::StateDict> out;
  load = engine->load(cluster, 1, out);
  loaded = true;
  if (!o.trace_out.empty()) {
    tracer.add_timeline(cluster.timeline(), "load");
    load.trace_path = o.trace_out;
  }
  if (!o.stats_json.empty())
    obs::collect_timeline_stats(cluster.timeline(), cluster.stats(), "load.");
  if (!load.success) {
    std::printf("recover : FAILED — %s\n", load.detail.c_str());
    return finish(1);
  }
  std::printf("recover : %s; resume after %s, redundancy restored by %s\n",
              load.detail.c_str(), human_seconds(load.resume_time).c_str(),
              human_seconds(load.total_time).c_str());

  for (std::size_t w = 0; w < out.size(); ++w) {
    if (out[w].digest() != digests[w]) {
      std::printf("verify  : worker %zu MISMATCH\n", w);
      return finish(1);
    }
  }
  std::printf("verify  : all %zu worker state_dicts bit-exact\n", out.size());
  return finish(0);
}
