// transport_cli — the real-socket transport demo: k+m worker *processes*
// connected by TCP or Unix-domain sockets run the fabric-generic stripe
// protocol, the parent SIGKILLs live workers, spawns replacements on the
// same endpoints, and verifies the recovered stripe bit-exactly against a
// single-process VirtualCluster reference run of the very same protocol.
//
//   --mode cycle      (default) full encode → kill → recover cycle:
//                     workers encode the stripe SPMD over sockets and then
//                     hold their chunks in memory; the parent SIGKILLs the
//                     ranks in --kill, forks fresh replacement processes,
//                     and survivors + replacements run the recovery
//                     workflow. Every rank's final chunk must equal both
//                     the VirtualFabric reference and the closed-form
//                     expected chunk.
//   --mode peerdeath  a 3-rank broadcast where rank 1 dies before joining:
//                     ranks 0 and 2 must abort with CheckFailure inside the
//                     configured timeout budget (no hang) — the transport's
//                     graceful peer-death contract.
//
// Options: --k, --m, --bytes, --seed, --transport uds|tcp, --dir, --kill
// "a,b", --flush (remote flush during encode), --keep (leave the work dir).
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/fabric.hpp"
#include "common/crc64.hpp"
#include "core/fabric_protocol.hpp"
#include "net/transport.hpp"

namespace fs = std::filesystem;
using namespace eccheck;

namespace {

struct Args {
  std::string mode = "cycle";
  int k = 4;
  int m = 2;
  std::size_t bytes = 64 * 1024;
  std::uint64_t seed = 1;
  std::string transport = "uds";
  std::string dir;
  std::string kill_spec;  // default: "1,<k>"
  bool flush = false;
  bool keep = false;
  int io_timeout_ms = 5000;
  int connect_timeout_ms = 1000;
};

[[noreturn]] void usage_and_exit() {
  std::cerr
      << "usage: transport_cli [--mode cycle|peerdeath] [--k N] [--m N]\n"
         "         [--bytes N] [--seed S] [--transport uds|tcp] [--dir D]\n"
         "         [--kill a,b] [--flush] [--keep]\n"
         "         [--io-timeout-ms N] [--connect-timeout-ms N]\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_and_exit();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode") a.mode = need(i);
    else if (arg == "--k") a.k = std::stoi(need(i));
    else if (arg == "--m") a.m = std::stoi(need(i));
    else if (arg == "--bytes") a.bytes = std::stoul(need(i));
    else if (arg == "--seed") a.seed = std::stoull(need(i));
    else if (arg == "--transport") a.transport = need(i);
    else if (arg == "--dir") a.dir = need(i);
    else if (arg == "--kill") a.kill_spec = need(i);
    else if (arg == "--flush") a.flush = true;
    else if (arg == "--keep") a.keep = true;
    else if (arg == "--io-timeout-ms") a.io_timeout_ms = std::stoi(need(i));
    else if (arg == "--connect-timeout-ms")
      a.connect_timeout_ms = std::stoi(need(i));
    else usage_and_exit();
  }
  if (a.mode != "cycle" && a.mode != "peerdeath") usage_and_exit();
  if (a.transport != "uds" && a.transport != "tcp") usage_and_exit();
  if (a.k < 1 || a.m < 0 || a.bytes == 0) usage_and_exit();
  return a;
}

// ---- tiny pipe helpers ----------------------------------------------------

/// Line-oriented read with a deadline, so a wedged worker can never hang
/// the parent (workers' own I/O is already time-bounded; this is backstop).
struct LineReader {
  int fd = -1;
  std::string buf;

  std::string read_line(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      auto nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0)
        throw CheckFailure("parent: timed out waiting for worker status");
      struct pollfd p{fd, POLLIN, 0};
      int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0)
        throw CheckFailure("parent: timed out waiting for worker status");
      char chunk[256];
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0)
        throw CheckFailure("parent: worker closed its status pipe "
                           "(crashed before reporting)");
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

void write_line(int fd, const std::string& line) {
  const std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // dead child: caller notices via its status pipe
    off += static_cast<std::size_t>(n);
  }
}

struct WorkerHandle {
  pid_t pid = -1;
  int ctl_w = -1;     // parent → worker
  LineReader status;  // worker → parent
  bool killed = false;
};

// fds of every pipe ever created, so each child can close the ends that
// belong to its siblings (keeps EOF semantics and fd budgets clean).
std::vector<int> g_all_pipe_fds;

// ---- worker setup ---------------------------------------------------------

std::vector<net::Endpoint> make_endpoints(const Args& a) {
  std::vector<net::Endpoint> eps;
  for (int r = 0; r < a.k + a.m; ++r) {
    if (a.transport == "uds") {
      eps.push_back(
          net::Endpoint::uds(a.dir + "/rank" + std::to_string(r) + ".sock"));
    } else {
      // Pre-pick a free port per rank: bind :0, read the port back, close.
      // (The tiny reuse race is acceptable for a demo CLI; tests use UDS.)
      net::Endpoint probe = net::Endpoint::tcp("127.0.0.1", 0);
      net::Socket s = net::listen_on(probe);
      eps.push_back(probe);
    }
  }
  return eps;
}

net::TransportOptions transport_options(const Args& a) {
  net::TransportOptions o;
  o.io_timeout = net::Millis(a.io_timeout_ms);
  o.connect_timeout = net::Millis(a.connect_timeout_ms);
  o.remote_dir = a.dir + "/remote";
  return o;
}

core::FabricStripeConfig stripe_config(const Args& a) {
  core::FabricStripeConfig cfg;
  cfg.k = a.k;
  cfg.m = a.m;
  cfg.chunk_bytes = a.bytes;
  cfg.seed = a.seed;
  cfg.flush_to_remote = a.flush;
  return cfg;
}

std::string chunk_dump_path(const Args& a, int rank) {
  return a.dir + "/out/rank" + std::to_string(rank) + ".bin";
}

void dump_chunk(const Args& a, cluster::Fabric& f, int rank) {
  const Buffer& chunk = f.store(rank).get(core::stripe_chunk_key(rank));
  std::ofstream out(chunk_dump_path(a, rank), std::ios::binary);
  out.write(reinterpret_cast<const char*>(chunk.data()),
            static_cast<std::streamsize>(chunk.size()));
  ECC_CHECK(out.good());
}

/// Worker body for --mode cycle. `initial` workers encode then wait for a
/// RECOVER/EXIT instruction; replacements go straight into recovery.
[[noreturn]] void worker_cycle(const Args& a,
                               const std::vector<net::Endpoint>& eps, int rank,
                               const std::vector<int>& replaced_at_birth,
                               int ctl_r, int status_w) {
  LineReader ctl{ctl_r, {}};
  auto status = [&](const std::string& s) { write_line(status_w, s); };
  try {
    const core::FabricStripeConfig cfg = stripe_config(a);
    net::SocketTransport fabric(rank, eps, transport_options(a));
    if (replaced_at_birth.empty()) {
      core::stripe_encode(fabric, cfg);
      {
        std::ostringstream os;
        os << "ENCODED " << std::hex << core::stripe_chunk_crc(fabric, rank);
        status(os.str());
      }
      // Hold the chunk in memory until the parent decides our fate — the
      // in-memory-checkpoint survivor role.
      const std::string line = ctl.read_line(600000);
      if (line.rfind("RECOVER ", 0) == 0) {
        std::istringstream is(line.substr(8));
        std::vector<int> replaced;
        for (int r; is >> r;) {
          replaced.push_back(r);
          fabric.reset_peer(r);  // fresh process on the old endpoint
        }
        core::stripe_recover(fabric, cfg, replaced);
      } else if (line != "EXIT") {
        throw CheckFailure("worker: unexpected control '" + line + "'");
      }
    } else {
      core::stripe_recover(fabric, cfg, replaced_at_birth);
    }
    dump_chunk(a, fabric, rank);
    {
      std::ostringstream os;
      os << "RECOVERED " << std::hex << core::stripe_chunk_crc(fabric, rank)
         << std::dec << " sent=" << fabric.stats().counter("net.send.bytes")
         << " recvd=" << fabric.stats().counter("net.recv.bytes");
      status(os.str());
    }
    (void)ctl.read_line(600000);  // EXIT
    ::_exit(0);
  } catch (const std::exception& e) {
    status(std::string("ERROR ") + e.what());
    ::_exit(1);
  }
}

/// Worker body for --mode peerdeath: rank 1 dies silently; 0 and 2 must
/// fail their broadcast with CheckFailure within the timeout budget.
[[noreturn]] void worker_peerdeath(const Args& a,
                                   const std::vector<net::Endpoint>& eps,
                                   int rank, int, int status_w) {
  auto status = [&](const std::string& s) { write_line(status_w, s); };
  if (rank == 1) ::_exit(0);  // never even binds its endpoint
  try {
    net::TransportOptions o = transport_options(a);
    o.connect_timeout = net::Millis(200);
    o.connect_retries = 4;
    o.backoff_max = net::Millis(100);
    o.io_timeout = net::Millis(1500);
    net::SocketTransport fabric(rank, eps, o);
    if (rank == 0) {
      Buffer blob(4096, Buffer::Init::kZeroed);
      fabric.store(0).put("blob", std::move(blob));
    }
    const auto t0 = std::chrono::steady_clock::now();
    try {
      fabric.broadcast({0, 1, 2}, 0, "blob");
      status("ERROR broadcast with a dead peer unexpectedly succeeded");
      ::_exit(1);
    } catch (const CheckFailure&) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      status("PEERDEATH " + std::to_string(ms));
      ::_exit(0);
    }
  } catch (const std::exception& e) {
    status(std::string("ERROR ") + e.what());
    ::_exit(1);
  }
}

WorkerHandle spawn_worker(const Args& a, const std::vector<net::Endpoint>& eps,
                          int rank, const std::vector<int>& replaced) {
  int ctl[2], st[2];
  ECC_CHECK(::pipe(ctl) == 0 && ::pipe(st) == 0);
  for (int fd : {ctl[0], ctl[1], st[0], st[1]}) g_all_pipe_fds.push_back(fd);
  pid_t pid = ::fork();
  ECC_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    // Child: keep only our ctl read end and status write end.
    for (int fd : g_all_pipe_fds)
      if (fd != ctl[0] && fd != st[1]) ::close(fd);
    if (a.mode == "cycle")
      worker_cycle(a, eps, rank, replaced, ctl[0], st[1]);
    else
      worker_peerdeath(a, eps, rank, ctl[0], st[1]);
  }
  WorkerHandle h;
  h.pid = pid;
  h.ctl_w = ctl[1];
  h.status.fd = st[0];
  return h;
}

std::vector<int> parse_kill_list(const Args& a) {
  std::string spec = a.kill_spec.empty()
                         ? "1," + std::to_string(a.k)  // one data, one parity
                         : a.kill_spec;
  std::vector<int> out;
  std::istringstream is(spec);
  for (std::string tok; std::getline(is, tok, ',');)
    out.push_back(std::stoi(tok));
  for (int r : out)
    ECC_CHECK_MSG(r >= 0 && r < a.k + a.m, "--kill rank out of range: " << r);
  ECC_CHECK_MSG(static_cast<int>(out.size()) <= a.m,
                "--kill names more ranks than parity can recover");
  return out;
}

Buffer read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  ECC_CHECK_MSG(f.good(), "missing dump " << path);
  const std::streamsize n = f.tellg();
  f.seekg(0);
  Buffer b(static_cast<std::size_t>(n), Buffer::Init::kUninitialized);
  f.read(reinterpret_cast<char*>(b.data()), n);
  ECC_CHECK(f.good());
  return b;
}

int run_cycle(const Args& a) {
  const std::vector<int> to_kill = parse_kill_list(a);
  const int total = a.k + a.m;
  std::vector<net::Endpoint> eps = make_endpoints(a);
  const core::FabricStripeConfig cfg = stripe_config(a);

  std::cout << "transport_cli: " << a.k << "+" << a.m << " ranks over "
            << a.transport << ", chunk " << a.bytes << " B, dir " << a.dir
            << "\n";

  // ---- phase 1: encode across real processes -----------------------------
  std::vector<WorkerHandle> w;
  for (int r = 0; r < total; ++r) w.push_back(spawn_worker(a, eps, r, {}));
  for (int r = 0; r < total; ++r) {
    const std::string line = w[static_cast<std::size_t>(r)].status.read_line(60000);
    ECC_CHECK_MSG(line.rfind("ENCODED ", 0) == 0,
                  "rank " << r << ": " << line);
    std::cout << "  rank " << r << " " << line << "\n";
  }

  // ---- phase 2: SIGKILL live workers ------------------------------------
  for (int r : to_kill) {
    auto& h = w[static_cast<std::size_t>(r)];
    std::cout << "  SIGKILL rank " << r << " (pid " << h.pid << ")\n";
    ::kill(h.pid, SIGKILL);
    ::waitpid(h.pid, nullptr, 0);
    h.killed = true;
  }

  // ---- phase 3: replacements join, everyone recovers ---------------------
  for (int r : to_kill) w[static_cast<std::size_t>(r)] = spawn_worker(a, eps, r, to_kill);
  std::string recover_cmd = "RECOVER";
  for (int r : to_kill) recover_cmd += " " + std::to_string(r);
  for (int r = 0; r < total; ++r)
    if (!w[static_cast<std::size_t>(r)].killed &&
        std::find(to_kill.begin(), to_kill.end(), r) == to_kill.end())
      write_line(w[static_cast<std::size_t>(r)].ctl_w, recover_cmd);
  for (int r = 0; r < total; ++r) {
    const std::string line = w[static_cast<std::size_t>(r)].status.read_line(60000);
    ECC_CHECK_MSG(line.rfind("RECOVERED ", 0) == 0,
                  "rank " << r << ": " << line);
    std::cout << "  rank " << r << " " << line << "\n";
  }
  for (int r = 0; r < total; ++r) write_line(w[static_cast<std::size_t>(r)].ctl_w, "EXIT");
  for (int r = 0; r < total; ++r) ::waitpid(w[static_cast<std::size_t>(r)].pid, nullptr, 0);

  // ---- phase 4: single-process VirtualCluster reference ------------------
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = total;
  ccfg.gpus_per_node = 1;
  cluster::VirtualCluster vc(ccfg);
  cluster::VirtualFabric ref(vc);
  core::FabricStripeConfig ref_cfg = cfg;
  ref_cfg.flush_to_remote = false;  // remote store differs by design
  core::stripe_encode(ref, ref_cfg);
  for (int r : to_kill) vc.kill(r);
  for (int r : to_kill) vc.replace(r);
  core::stripe_recover(ref, ref_cfg, to_kill);

  bool ok = true;
  for (int r = 0; r < total; ++r) {
    const Buffer actual = read_file(chunk_dump_path(a, r));
    const Buffer& reference = vc.host(r).get(core::stripe_chunk_key(r));
    const Buffer expected = core::stripe_expected_chunk(cfg, r);
    const bool match = actual == reference && actual == expected;
    if (!match) {
      std::cerr << "MISMATCH rank " << r << ": socket run disagrees with "
                << (actual == reference ? "closed form" : "reference")
                << "\n";
      ok = false;
    }
  }
  if (ok)
    std::cout << "PASS: " << total << " processes, " << to_kill.size()
              << " killed + recovered, all chunks bit-exact vs "
                 "VirtualCluster reference\n";
  return ok ? 0 : 1;
}

int run_peerdeath(const Args& a) {
  Args a3 = a;
  a3.k = 2;
  a3.m = 1;  // 3 endpoints
  std::vector<net::Endpoint> eps = make_endpoints(a3);
  std::vector<WorkerHandle> w;
  for (int r = 0; r < 3; ++r) w.push_back(spawn_worker(a3, eps, r, {}));
  ::waitpid(w[1].pid, nullptr, 0);  // rank 1 exits immediately
  bool ok = true;
  for (int r : {0, 2}) {
    const std::string line = w[static_cast<std::size_t>(r)].status.read_line(30000);
    std::cout << "  rank " << r << " " << line << "\n";
    if (line.rfind("PEERDEATH ", 0) != 0) {
      ok = false;
    } else {
      const long ms = std::stol(line.substr(10));
      if (ms > 15000) {
        std::cerr << "rank " << r << " took " << ms
                  << " ms to detect the dead peer (budget 15000)\n";
        ok = false;
      }
    }
    ::waitpid(w[static_cast<std::size_t>(r)].pid, nullptr, 0);
  }
  if (ok)
    std::cout << "PASS: both survivors reported CheckFailure within the "
                 "timeout budget\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);
  Args a = parse_args(argc, argv);
  if (a.dir.empty()) {
    char tmpl[] = "/tmp/eccheck-net-XXXXXX";
    ECC_CHECK(::mkdtemp(tmpl) != nullptr);
    a.dir = tmpl;
  } else {
    fs::create_directories(a.dir);
  }
  fs::create_directories(a.dir + "/remote");
  fs::create_directories(a.dir + "/out");

  int rc = 1;
  try {
    rc = a.mode == "cycle" ? run_cycle(a) : run_peerdeath(a);
  } catch (const std::exception& e) {
    std::cerr << "transport_cli: " << e.what() << "\n";
    rc = 1;
  }
  if (!a.keep) {
    std::error_code ec;
    fs::remove_all(a.dir, ec);
  } else {
    std::cout << "work dir kept: " << a.dir << "\n";
  }
  return rc;
}
