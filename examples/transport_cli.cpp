// transport_cli — the real-socket transport demo: k+m worker *processes*
// connected by TCP or Unix-domain sockets run the fabric-generic stripe
// protocol, the parent SIGKILLs live workers, spawns replacements on the
// same endpoints, and verifies the recovered stripe bit-exactly against a
// single-process VirtualCluster reference run of the very same protocol.
//
//   --mode cycle      (default) full encode → kill → recover cycle:
//                     workers encode the stripe SPMD over sockets and then
//                     hold their chunks in memory; the parent SIGKILLs the
//                     ranks in --kill, forks fresh replacement processes,
//                     and survivors + replacements run the recovery
//                     workflow. Every rank's final chunk must equal both
//                     the VirtualFabric reference and the closed-form
//                     expected chunk.
//   --mode peerdeath  a 3-rank broadcast where rank 1 dies before joining:
//                     ranks 0 and 2 must abort with CheckFailure inside the
//                     configured timeout budget (no hang) — the transport's
//                     graceful peer-death contract.
//   --mode engine     the full ECCheck checkpoint engine SPMD across k+m
//                     processes: save a version, SIGKILL ranks so the next
//                     save tears mid-collective (survivors roll it back and
//                     reset their connections), fork replacements, recover,
//                     and save again — every digest and version verified
//                     against a single-process VirtualFabric reference run.
//   --mode daemon     the checkpoint *service*: a coordinator daemon plus
//                     k+m worker daemons; the parent acts as a client
//                     saving/loading two concurrent jobs over the CRC-acked
//                     control protocol, kills a worker, watches a save fail
//                     cleanly, replaces the worker, and recovers both jobs.
//
// Options: --k, --m, --gpn (workers per process, engine/daemon modes),
// --bytes, --seed, --transport uds|tcp, --dir, --kill "a,b", --flush
// (remote flush during encode/save), --keep (leave the work dir).
//
// Observability (engine/daemon modes): --trace-out F writes one merged,
// clock-aligned Chrome trace of every process — in daemon mode pulled
// through the coordinator's `trace` verb (ping-pong offset corrected), in
// engine mode merged from per-rank snapshot dumps aligned on the shared
// CLOCK_MONOTONIC epoch. --stats-json F writes the aggregated fleet stats
// (per-process + merged). Either flag enables the tracer in every forked
// process; the parent validates the merged trace with
// obs::check_merged_trace before declaring PASS.
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/fabric.hpp"
#include "common/crc64.hpp"
#include "core/fabric_protocol.hpp"
#include "core/session.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "net/transport.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/distributed.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "obs/tracer.hpp"
#include "svc/checkpoint_service.hpp"

namespace fs = std::filesystem;
using namespace eccheck;

namespace {

struct Args {
  std::string mode = "cycle";
  int k = 4;
  int m = 2;
  int gpn = 2;  // workers (shards) per process in engine/daemon modes
  std::size_t bytes = 64 * 1024;
  std::uint64_t seed = 1;
  std::string transport = "uds";
  std::string dir;
  std::string kill_spec;  // default: "1,<k>"
  bool flush = false;
  bool keep = false;
  int io_timeout_ms = 5000;
  int connect_timeout_ms = 1000;
  std::string trace_out;  // merged Chrome trace path (engine/daemon modes)
  std::string stats_out;  // aggregated stats JSON path (engine/daemon modes)

  bool observed() const { return !trace_out.empty() || !stats_out.empty(); }
};

[[noreturn]] void usage_and_exit() {
  std::cerr
      << "usage: transport_cli [--mode cycle|peerdeath|engine|daemon]\n"
         "         [--k N] [--m N] [--gpn N] [--bytes N] [--seed S]\n"
         "         [--transport uds|tcp] [--dir D] [--kill a,b] [--flush]\n"
         "         [--keep] [--io-timeout-ms N] [--connect-timeout-ms N]\n"
         "         [--trace-out F] [--stats-json F]   (engine/daemon modes)\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_and_exit();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode") a.mode = need(i);
    else if (arg == "--k") a.k = std::stoi(need(i));
    else if (arg == "--m") a.m = std::stoi(need(i));
    else if (arg == "--gpn") a.gpn = std::stoi(need(i));
    else if (arg == "--bytes") a.bytes = std::stoul(need(i));
    else if (arg == "--seed") a.seed = std::stoull(need(i));
    else if (arg == "--transport") a.transport = need(i);
    else if (arg == "--dir") a.dir = need(i);
    else if (arg == "--kill") a.kill_spec = need(i);
    else if (arg == "--flush") a.flush = true;
    else if (arg == "--keep") a.keep = true;
    else if (arg == "--io-timeout-ms") a.io_timeout_ms = std::stoi(need(i));
    else if (arg == "--connect-timeout-ms")
      a.connect_timeout_ms = std::stoi(need(i));
    else if (arg == "--trace-out") a.trace_out = need(i);
    else if (arg == "--stats-json") a.stats_out = need(i);
    else usage_and_exit();
  }
  if (a.mode != "cycle" && a.mode != "peerdeath" && a.mode != "engine" &&
      a.mode != "daemon")
    usage_and_exit();
  if (a.transport != "uds" && a.transport != "tcp") usage_and_exit();
  if (a.k < 1 || a.m < 0 || a.gpn < 1 || a.bytes == 0) usage_and_exit();
  if (a.observed() && a.mode != "engine" && a.mode != "daemon") {
    std::cerr << "--trace-out/--stats-json need --mode engine or daemon\n";
    usage_and_exit();
  }
  return a;
}

// ---- tiny pipe helpers ----------------------------------------------------

/// Line-oriented read with a deadline, so a wedged worker can never hang
/// the parent (workers' own I/O is already time-bounded; this is backstop).
struct LineReader {
  int fd = -1;
  std::string buf;

  std::string read_line(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      auto nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0)
        throw CheckFailure("parent: timed out waiting for worker status");
      struct pollfd p{fd, POLLIN, 0};
      int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0)
        throw CheckFailure("parent: timed out waiting for worker status");
      char chunk[256];
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0)
        throw CheckFailure("parent: worker closed its status pipe "
                           "(crashed before reporting)");
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

void write_line(int fd, const std::string& line) {
  const std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // dead child: caller notices via its status pipe
    off += static_cast<std::size_t>(n);
  }
}

struct WorkerHandle {
  pid_t pid = -1;
  int ctl_w = -1;     // parent → worker
  LineReader status;  // worker → parent
  bool killed = false;
};

// fds of every pipe ever created, so each child can close the ends that
// belong to its siblings (keeps EOF semantics and fd budgets clean).
std::vector<int> g_all_pipe_fds;

// ---- worker setup ---------------------------------------------------------

std::vector<net::Endpoint> make_endpoints(const Args& a) {
  std::vector<net::Endpoint> eps;
  for (int r = 0; r < a.k + a.m; ++r) {
    if (a.transport == "uds") {
      eps.push_back(
          net::Endpoint::uds(a.dir + "/rank" + std::to_string(r) + ".sock"));
    } else {
      // Pre-pick a free port per rank: bind :0, read the port back, close.
      // (The tiny reuse race is acceptable for a demo CLI; tests use UDS.)
      net::Endpoint probe = net::Endpoint::tcp("127.0.0.1", 0);
      net::Socket s = net::listen_on(probe);
      eps.push_back(probe);
    }
  }
  return eps;
}

net::TransportOptions transport_options(const Args& a) {
  net::TransportOptions o;
  o.io_timeout = net::Millis(a.io_timeout_ms);
  o.connect_timeout = net::Millis(a.connect_timeout_ms);
  o.remote_dir = a.dir + "/remote";
  return o;
}

core::FabricStripeConfig stripe_config(const Args& a) {
  core::FabricStripeConfig cfg;
  cfg.k = a.k;
  cfg.m = a.m;
  cfg.chunk_bytes = a.bytes;
  cfg.seed = a.seed;
  cfg.flush_to_remote = a.flush;
  return cfg;
}

std::string chunk_dump_path(const Args& a, int rank) {
  return a.dir + "/out/rank" + std::to_string(rank) + ".bin";
}

void dump_chunk(const Args& a, cluster::Fabric& f, int rank) {
  const Buffer& chunk = f.store(rank).get(core::stripe_chunk_key(rank));
  std::ofstream out(chunk_dump_path(a, rank), std::ios::binary);
  out.write(reinterpret_cast<const char*>(chunk.data()),
            static_cast<std::streamsize>(chunk.size()));
  ECC_CHECK(out.good());
}

/// Worker body for --mode cycle. `initial` workers encode then wait for a
/// RECOVER/EXIT instruction; replacements go straight into recovery.
[[noreturn]] void worker_cycle(const Args& a,
                               const std::vector<net::Endpoint>& eps, int rank,
                               const std::vector<int>& replaced_at_birth,
                               int ctl_r, int status_w) {
  LineReader ctl{ctl_r, {}};
  auto status = [&](const std::string& s) { write_line(status_w, s); };
  try {
    const core::FabricStripeConfig cfg = stripe_config(a);
    net::SocketTransport fabric(rank, eps, transport_options(a));
    if (replaced_at_birth.empty()) {
      core::stripe_encode(fabric, cfg);
      {
        std::ostringstream os;
        os << "ENCODED " << std::hex << core::stripe_chunk_crc(fabric, rank);
        status(os.str());
      }
      // Hold the chunk in memory until the parent decides our fate — the
      // in-memory-checkpoint survivor role.
      const std::string line = ctl.read_line(600000);
      if (line.rfind("RECOVER ", 0) == 0) {
        std::istringstream is(line.substr(8));
        std::vector<int> replaced;
        for (int r; is >> r;) {
          replaced.push_back(r);
          fabric.reset_peer(r);  // fresh process on the old endpoint
        }
        core::stripe_recover(fabric, cfg, replaced);
      } else if (line != "EXIT") {
        throw CheckFailure("worker: unexpected control '" + line + "'");
      }
    } else {
      core::stripe_recover(fabric, cfg, replaced_at_birth);
    }
    dump_chunk(a, fabric, rank);
    {
      std::ostringstream os;
      os << "RECOVERED " << std::hex << core::stripe_chunk_crc(fabric, rank)
         << std::dec << " sent=" << fabric.stats().counter("net.send.bytes")
         << " recvd=" << fabric.stats().counter("net.recv.bytes")
         << " accepted=" << fabric.stats().counter("net.accept.count")
         << " resets=" << fabric.stats().counter("net.reset.connections");
      status(os.str());
    }
    (void)ctl.read_line(600000);  // EXIT
    ::_exit(0);
  } catch (const std::exception& e) {
    status(std::string("ERROR ") + e.what());
    ::_exit(1);
  }
}

/// Worker body for --mode peerdeath: rank 1 dies silently; 0 and 2 must
/// fail their broadcast with CheckFailure within the timeout budget.
[[noreturn]] void worker_peerdeath(const Args& a,
                                   const std::vector<net::Endpoint>& eps,
                                   int rank, int, int status_w) {
  auto status = [&](const std::string& s) { write_line(status_w, s); };
  if (rank == 1) ::_exit(0);  // never even binds its endpoint
  try {
    net::TransportOptions o = transport_options(a);
    o.connect_timeout = net::Millis(200);
    o.connect_retries = 4;
    o.backoff_max = net::Millis(100);
    o.io_timeout = net::Millis(1500);
    net::SocketTransport fabric(rank, eps, o);
    if (rank == 0) {
      Buffer blob(4096, Buffer::Init::kZeroed);
      fabric.store(0).put("blob", std::move(blob));
    }
    const auto t0 = std::chrono::steady_clock::now();
    try {
      fabric.broadcast({0, 1, 2}, 0, "blob");
      status("ERROR broadcast with a dead peer unexpectedly succeeded");
      ::_exit(1);
    } catch (const CheckFailure&) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      status("PEERDEATH " + std::to_string(ms));
      ::_exit(0);
    }
  } catch (const std::exception& e) {
    status(std::string("ERROR ") + e.what());
    ::_exit(1);
  }
}

WorkerHandle spawn_worker(const Args& a, const std::vector<net::Endpoint>& eps,
                          int rank, const std::vector<int>& replaced) {
  int ctl[2], st[2];
  ECC_CHECK(::pipe(ctl) == 0 && ::pipe(st) == 0);
  for (int fd : {ctl[0], ctl[1], st[0], st[1]}) g_all_pipe_fds.push_back(fd);
  pid_t pid = ::fork();
  ECC_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    // Child: keep only our ctl read end and status write end.
    for (int fd : g_all_pipe_fds)
      if (fd != ctl[0] && fd != st[1]) ::close(fd);
    if (a.mode == "cycle")
      worker_cycle(a, eps, rank, replaced, ctl[0], st[1]);
    else
      worker_peerdeath(a, eps, rank, ctl[0], st[1]);
  }
  WorkerHandle h;
  h.pid = pid;
  h.ctl_w = ctl[1];
  h.status.fd = st[0];
  return h;
}

std::vector<int> parse_kill_list(const Args& a) {
  // Defaults kill one data + one parity holder. In cycle mode row r lives
  // on node r; the engine placement interleaves (node 2 data, node 1
  // parity), so those modes must also exercise the decode path.
  const bool engine_placement = a.mode == "engine" || a.mode == "daemon";
  std::string spec = a.kill_spec.empty()
                         ? (engine_placement ? "2,1"
                                             : "1," + std::to_string(a.k))
                         : a.kill_spec;
  std::vector<int> out;
  std::istringstream is(spec);
  for (std::string tok; std::getline(is, tok, ',');)
    out.push_back(std::stoi(tok));
  for (int r : out)
    ECC_CHECK_MSG(r >= 0 && r < a.k + a.m, "--kill rank out of range: " << r);
  ECC_CHECK_MSG(static_cast<int>(out.size()) <= a.m,
                "--kill names more ranks than parity can recover");
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  ECC_CHECK_MSG(f.good(), "missing file " << path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void write_text_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary);
  f << body;
  ECC_CHECK_MSG(f.good(), "cannot write " << path);
}

void print_net_counters(const obs::StatsRegistry& agg) {
  std::cout << "  net: accepted=" << agg.counter("net.accept.count")
            << " connects=" << agg.counter("net.connect.count")
            << " retries=" << agg.counter("net.retry.count")
            << " resets=" << agg.counter("net.reset.connections")
            << " io_errors=" << agg.counter("net.io_error.count")
            << " trace_dropped=" << agg.counter("obs.tracer.dropped") << "\n";
}

Buffer read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  ECC_CHECK_MSG(f.good(), "missing dump " << path);
  const std::streamsize n = f.tellg();
  f.seekg(0);
  Buffer b(static_cast<std::size_t>(n), Buffer::Init::kUninitialized);
  f.read(reinterpret_cast<char*>(b.data()), n);
  ECC_CHECK(f.good());
  return b;
}

int run_cycle(const Args& a) {
  const std::vector<int> to_kill = parse_kill_list(a);
  const int total = a.k + a.m;
  std::vector<net::Endpoint> eps = make_endpoints(a);
  const core::FabricStripeConfig cfg = stripe_config(a);

  std::cout << "transport_cli: " << a.k << "+" << a.m << " ranks over "
            << a.transport << ", chunk " << a.bytes << " B, dir " << a.dir
            << "\n";

  // ---- phase 1: encode across real processes -----------------------------
  std::vector<WorkerHandle> w;
  for (int r = 0; r < total; ++r) w.push_back(spawn_worker(a, eps, r, {}));
  for (int r = 0; r < total; ++r) {
    const std::string line = w[static_cast<std::size_t>(r)].status.read_line(60000);
    ECC_CHECK_MSG(line.rfind("ENCODED ", 0) == 0,
                  "rank " << r << ": " << line);
    std::cout << "  rank " << r << " " << line << "\n";
  }

  // ---- phase 2: SIGKILL live workers ------------------------------------
  for (int r : to_kill) {
    auto& h = w[static_cast<std::size_t>(r)];
    std::cout << "  SIGKILL rank " << r << " (pid " << h.pid << ")\n";
    ::kill(h.pid, SIGKILL);
    ::waitpid(h.pid, nullptr, 0);
    h.killed = true;
  }

  // ---- phase 3: replacements join, everyone recovers ---------------------
  for (int r : to_kill) w[static_cast<std::size_t>(r)] = spawn_worker(a, eps, r, to_kill);
  std::string recover_cmd = "RECOVER";
  for (int r : to_kill) recover_cmd += " " + std::to_string(r);
  for (int r = 0; r < total; ++r)
    if (!w[static_cast<std::size_t>(r)].killed &&
        std::find(to_kill.begin(), to_kill.end(), r) == to_kill.end())
      write_line(w[static_cast<std::size_t>(r)].ctl_w, recover_cmd);
  for (int r = 0; r < total; ++r) {
    const std::string line = w[static_cast<std::size_t>(r)].status.read_line(60000);
    ECC_CHECK_MSG(line.rfind("RECOVERED ", 0) == 0,
                  "rank " << r << ": " << line);
    std::cout << "  rank " << r << " " << line << "\n";
  }
  for (int r = 0; r < total; ++r) write_line(w[static_cast<std::size_t>(r)].ctl_w, "EXIT");
  for (int r = 0; r < total; ++r) ::waitpid(w[static_cast<std::size_t>(r)].pid, nullptr, 0);

  // ---- phase 4: single-process VirtualCluster reference ------------------
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = total;
  ccfg.gpus_per_node = 1;
  cluster::VirtualCluster vc(ccfg);
  cluster::VirtualFabric ref(vc);
  core::FabricStripeConfig ref_cfg = cfg;
  ref_cfg.flush_to_remote = false;  // remote store differs by design
  core::stripe_encode(ref, ref_cfg);
  for (int r : to_kill) vc.kill(r);
  for (int r : to_kill) vc.replace(r);
  core::stripe_recover(ref, ref_cfg, to_kill);

  bool ok = true;
  for (int r = 0; r < total; ++r) {
    const Buffer actual = read_file(chunk_dump_path(a, r));
    const Buffer& reference = vc.host(r).get(core::stripe_chunk_key(r));
    const Buffer expected = core::stripe_expected_chunk(cfg, r);
    const bool match = actual == reference && actual == expected;
    if (!match) {
      std::cerr << "MISMATCH rank " << r << ": socket run disagrees with "
                << (actual == reference ? "closed form" : "reference")
                << "\n";
      ok = false;
    }
  }
  if (ok)
    std::cout << "PASS: " << total << " processes, " << to_kill.size()
              << " killed + recovered, all chunks bit-exact vs "
                 "VirtualCluster reference\n";
  return ok ? 0 : 1;
}

int run_peerdeath(const Args& a) {
  Args a3 = a;
  a3.k = 2;
  a3.m = 1;  // 3 endpoints
  std::vector<net::Endpoint> eps = make_endpoints(a3);
  std::vector<WorkerHandle> w;
  for (int r = 0; r < 3; ++r) w.push_back(spawn_worker(a3, eps, r, {}));
  ::waitpid(w[1].pid, nullptr, 0);  // rank 1 exits immediately
  bool ok = true;
  for (int r : {0, 2}) {
    const std::string line = w[static_cast<std::size_t>(r)].status.read_line(30000);
    std::cout << "  rank " << r << " " << line << "\n";
    if (line.rfind("PEERDEATH ", 0) != 0) {
      ok = false;
    } else {
      const long ms = std::stol(line.substr(10));
      if (ms > 15000) {
        std::cerr << "rank " << r << " took " << ms
                  << " ms to detect the dead peer (budget 15000)\n";
        ok = false;
      }
    }
    ::waitpid(w[static_cast<std::size_t>(r)].pid, nullptr, 0);
  }
  if (ok)
    std::cout << "PASS: both survivors reported CheckFailure within the "
                 "timeout budget\n";
  return ok ? 0 : 1;
}

// ---- --mode engine: the checkpoint engine SPMD across processes -----------

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

core::ECCheckConfig engine_ec_config(const Args& a) {
  core::ECCheckConfig ec;
  ec.k = a.k;
  ec.m = a.m;
  ec.packet_size = 16 * 1024;
  ec.flush_to_remote = a.flush;
  return ec;
}

/// Endpoints that are not the fabric's own (control sockets, the client
/// socket): UDS paths under the work dir, or pre-picked free TCP ports.
std::vector<net::Endpoint> named_endpoints(const Args& a, int count,
                                           const std::string& stem) {
  std::vector<net::Endpoint> eps;
  for (int r = 0; r < count; ++r) {
    if (a.transport == "uds") {
      eps.push_back(net::Endpoint::uds(a.dir + "/" + stem +
                                       std::to_string(r) + ".sock"));
    } else {
      net::Endpoint probe = net::Endpoint::tcp("127.0.0.1", 0);
      net::Socket s = net::listen_on(probe);
      eps.push_back(probe);
    }
  }
  return eps;
}

/// Fork a process running `body(ctl_read_fd, status_write_fd)`.
WorkerHandle spawn_proc(const std::function<void(int, int)>& body) {
  int ctl[2], st[2];
  ECC_CHECK(::pipe(ctl) == 0 && ::pipe(st) == 0);
  for (int fd : {ctl[0], ctl[1], st[0], st[1]}) g_all_pipe_fds.push_back(fd);
  pid_t pid = ::fork();
  ECC_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    for (int fd : g_all_pipe_fds)
      if (fd != ctl[0] && fd != st[1]) ::close(fd);
    body(ctl[0], st[1]);
    ::_exit(0);
  }
  WorkerHandle h;
  h.pid = pid;
  h.ctl_w = ctl[1];
  h.status.fd = st[0];
  return h;
}

/// Serialize the driven shards' digests as " w<worker>:<hex>" tokens.
std::string digest_tokens(const std::vector<int>& workers,
                          const std::vector<dnn::StateDict>& shards) {
  std::ostringstream os;
  for (std::size_t i = 0; i < workers.size(); ++i)
    os << " w" << workers[i] << ":" << hex64(shards[i].digest());
  return os.str();
}

/// Parse "<PREFIX> <version> w0:hex w2:hex ..." worker reports.
struct ShardReport {
  std::int64_t version = 0;
  std::map<int, std::string> digests;  // worker → hex digest
};

ShardReport parse_shard_report(const std::string& line,
                               const std::string& prefix) {
  ECC_CHECK_MSG(line.rfind(prefix, 0) == 0, "expected '" << prefix
                                                         << "...', got '"
                                                         << line << "'");
  std::istringstream is(line.substr(prefix.size()));
  ShardReport rep;
  is >> rep.version;
  for (std::string tok; is >> tok;) {
    const auto colon = tok.find(':');
    ECC_CHECK_MSG(tok[0] == 'w' && colon != std::string::npos,
                  "bad shard token '" << tok << "'");
    rep.digests[std::stoi(tok.substr(1, colon - 1))] = tok.substr(colon + 1);
  }
  return rep;
}

/// The closed-form expectation: digests every process can derive from
/// (job, iteration) alone — what recovery must reproduce bit-exactly.
std::map<int, std::string> expected_digests(const std::string& job,
                                            std::int64_t iteration,
                                            int world) {
  const dnn::CheckpointGenConfig gen =
      svc::job_gen_config(job, iteration, world);
  std::map<int, std::string> out;
  for (int w = 0; w < world; ++w)
    out[w] = hex64(dnn::make_worker_state_dict(gen, w).digest());
  return out;
}

std::string snapshot_dump_path(const Args& a, int rank) {
  return a.dir + "/out/obs-rank" + std::to_string(rank) + ".json";
}

/// Worker body for --mode engine: a FabricSession over real sockets, driven
/// by SAVE/RESET/LOAD/EXIT lines from the parent.
[[noreturn]] void worker_engine(const Args& a,
                                const std::vector<net::Endpoint>& eps,
                                int rank, int ctl_r, int status_w) {
  LineReader ctl{ctl_r, {}};
  auto status = [&](const std::string& s) { write_line(status_w, s); };
  if (a.observed()) obs::Tracer::global().enable();
  try {
    net::SocketTransport fabric(rank, eps, transport_options(a));
    core::FabricSession session(fabric, engine_ec_config(a), a.gpn,
                                /*retain_versions=*/2);
    const int world = fabric.world_size() * a.gpn;
    const std::vector<int> workers = session.driven_workers();
    status("READY");
    for (;;) {
      const std::string line = ctl.read_line(600000);
      if (line.rfind("SAVE ", 0) == 0) {
        const std::int64_t iter = std::stoll(line.substr(5));
        std::string reply;
        {
          // Each command roots a fresh distributed trace at this rank; the
          // collective's frames carry the context to every peer, so the
          // merged file shows one tree per command per rank.
          obs::ScopedTraceContext tctx(
              a.observed() ? obs::Tracer::new_trace_id() : 0, 0);
          obs::ScopedSpan root("engine.save:" + std::to_string(iter));
          try {
            const dnn::CheckpointGenConfig gen =
                svc::job_gen_config("engine", iter, world);
            std::vector<dnn::StateDict> mine;
            for (int w : workers)
              mine.push_back(dnn::make_worker_state_dict(gen, w));
            std::vector<const dnn::StateDict*> ptrs;
            for (const dnn::StateDict& sd : mine) ptrs.push_back(&sd);
            session.save(ptrs);
            std::ostringstream os;
            os << "SAVED " << session.latest_version()
               << digest_tokens(workers, mine);
            reply = os.str();
          } catch (const CheckFailure&) {
            // Torn collective: FabricSession already rolled the version back.
            reply = "SAVEFAIL";
          }
        }
        status(reply);
      } else if (line == "RESET") {
        fabric.reset_all_peers();
        status("RESETOK");
      } else if (line == "LOAD") {
        std::string reply;
        {
          obs::ScopedTraceContext tctx(
              a.observed() ? obs::Tracer::new_trace_id() : 0, 0);
          obs::ScopedSpan root("engine.load");
          std::vector<dnn::StateDict> out;
          const core::FabricSession::RecoverResult res = session.load(out);
          std::ostringstream os;
          os << "LOADED " << res.version << digest_tokens(workers, out);
          reply = os.str();
        }
        status(reply);
      } else if (line == "EXIT") {
        if (a.observed()) {
          // All spans are closed here (commands scope theirs), so the
          // snapshot is complete; _exit below skips destructors by design.
          std::ofstream f(snapshot_dump_path(a, rank));
          f << obs::serialize_snapshot(obs::Tracer::global(), &fabric.stats(),
                                       "rank" + std::to_string(rank));
        }
        ::_exit(0);
      } else {
        throw CheckFailure("worker: unexpected control '" + line + "'");
      }
    }
  } catch (const std::exception& e) {
    status(std::string("ERROR ") + e.what());
    ::_exit(1);
  }
}

/// Merge the per-rank snapshot dumps written at EXIT into one Chrome trace
/// and one aggregated stats document. Engine mode has no coordinator to
/// ping-pong against, but every rank runs on this host: each snapshot's
/// (clock_ns, abs_ns) pair anchors its tracer epoch on the shared
/// CLOCK_MONOTONIC timeline, so alignment is exact, not estimated.
void merge_engine_observability(const Args& a, int total) {
  std::vector<std::string> snaps;
  std::vector<std::int64_t> epoch_abs;
  for (int r = 0; r < total; ++r) {
    snaps.push_back(slurp(snapshot_dump_path(a, r)));
    std::string perr;
    const std::unique_ptr<obs::JsonValue> doc =
        obs::JsonValue::parse(snaps.back(), &perr);
    ECC_CHECK_MSG(doc != nullptr, "rank " << r << " snapshot: " << perr);
    const obs::JsonValue* clock = doc->find("clock_ns");
    const obs::JsonValue* abs = doc->find("abs_ns");
    ECC_CHECK_MSG(clock != nullptr && abs != nullptr,
                  "rank " << r << " snapshot has no clock anchor");
    epoch_abs.push_back(static_cast<std::int64_t>(abs->as_number()) -
                        static_cast<std::int64_t>(clock->as_number()));
  }
  const std::int64_t base =
      *std::min_element(epoch_abs.begin(), epoch_abs.end());

  obs::ChromeTraceWriter w;
  obs::StatsRegistry agg;
  std::ostringstream per_rank;
  for (int r = 0; r < total; ++r) {
    std::string err;
    ECC_CHECK_MSG(obs::append_snapshot_to_trace(
                      w, snaps[static_cast<std::size_t>(r)], "",
                      epoch_abs[static_cast<std::size_t>(r)] - base, &err),
                  "rank " << r << ": " << err);
    ECC_CHECK_MSG(obs::accumulate_snapshot_stats(
                      snaps[static_cast<std::size_t>(r)], agg, &err),
                  "rank " << r << ": " << err);
    obs::StatsRegistry one;
    obs::accumulate_snapshot_stats(snaps[static_cast<std::size_t>(r)], one,
                                   &err);
    per_rank << (r ? "," : "") << "\"rank" << r << "\":" << one.to_json();
  }

  if (!a.trace_out.empty()) {
    std::ostringstream os;
    w.write(os);
    const std::string trace = os.str();
    // The ranks the demo SIGKILLed took their buffers with them, so their
    // send spans are legitimately unresolvable by survivors' recv spans.
    const obs::MergedTraceCheck chk = obs::check_merged_trace(
        trace, static_cast<std::size_t>(total), /*require_all_resolved=*/false);
    ECC_CHECK_MSG(chk.ok, "merged trace check: " << chk.error);
    ECC_CHECK_MSG(chk.cross_process_links >= 3,
                  "only " << chk.cross_process_links
                          << " cross-process links in the merged trace");
    write_text_file(a.trace_out, trace);
    std::cout << "  trace: " << chk.spans << " spans across " << chk.processes
              << " processes, " << chk.cross_process_links
              << " cross-process links (" << chk.unresolved_parents
              << " parents lost with killed ranks) -> " << a.trace_out << "\n";
  }
  if (!a.stats_out.empty()) {
    write_text_file(a.stats_out, "{\"ranks\":{" + per_rank.str() +
                                     "},\"aggregate\":" + agg.to_json() + "}");
    std::cout << "  stats -> " << a.stats_out << "\n";
  }
  print_net_counters(agg);
}

int run_engine(const Args& a) {
  const int total = a.k + a.m;
  const int world = total * a.gpn;
  ECC_CHECK_MSG(world % a.k == 0,
                "(k+m)*gpn must be divisible by k; got world "
                    << world << ", k " << a.k);
  const std::vector<int> to_kill = parse_kill_list(a);
  const std::vector<net::Endpoint> eps = make_endpoints(a);

  std::cout << "transport_cli engine: " << a.k << "+" << a.m << " ranks x "
            << a.gpn << " workers over " << a.transport << ", dir " << a.dir
            << "\n";

  auto spawn_rank = [&](int r) {
    return spawn_proc([&a, &eps, r](int ctl_r, int status_w) {
      worker_engine(a, eps, r, ctl_r, status_w);
    });
  };
  auto broadcast = [&](std::vector<WorkerHandle>& w, const std::string& cmd,
                       const std::vector<int>& ranks) {
    for (int r : ranks) write_line(w[static_cast<std::size_t>(r)].ctl_w, cmd);
  };
  auto collect = [&](std::vector<WorkerHandle>& w,
                     const std::vector<int>& ranks, int timeout_ms) {
    std::vector<std::string> lines(w.size());
    for (int r : ranks)
      lines[static_cast<std::size_t>(r)] =
          w[static_cast<std::size_t>(r)].status.read_line(timeout_ms);
    return lines;
  };
  std::vector<int> all_ranks(static_cast<std::size_t>(total));
  for (int r = 0; r < total; ++r) all_ranks[static_cast<std::size_t>(r)] = r;
  std::vector<int> survivors;
  for (int r = 0; r < total; ++r)
    if (std::find(to_kill.begin(), to_kill.end(), r) == to_kill.end())
      survivors.push_back(r);

  // ---- save v1, then SIGKILL so the next save tears ----------------------
  std::vector<WorkerHandle> w;
  for (int r = 0; r < total; ++r) w.push_back(spawn_rank(r));
  for (const std::string& l : collect(w, all_ranks, 60000))
    ECC_CHECK_MSG(l == "READY", "worker: " << l);
  broadcast(w, "SAVE 1", all_ranks);
  for (const std::string& l : collect(w, all_ranks, 120000)) {
    const ShardReport rep = parse_shard_report(l, "SAVED ");
    ECC_CHECK_MSG(rep.version == 1, "first save landed on version "
                                        << rep.version);
  }
  std::cout << "  saved version 1 across " << total << " processes\n";

  for (int r : to_kill) {
    auto& h = w[static_cast<std::size_t>(r)];
    std::cout << "  SIGKILL rank " << r << " (pid " << h.pid << ")\n";
    ::kill(h.pid, SIGKILL);
    ::waitpid(h.pid, nullptr, 0);
    h.killed = true;
  }
  broadcast(w, "SAVE 2", survivors);
  for (int r : survivors) {
    const std::string l =
        w[static_cast<std::size_t>(r)].status.read_line(120000);
    ECC_CHECK_MSG(l == "SAVEFAIL",
                  "rank " << r << ": torn save did not fail cleanly: " << l);
  }
  std::cout << "  torn save rolled back on " << survivors.size()
            << " survivors\n";
  broadcast(w, "RESET", survivors);
  for (int r : survivors)
    ECC_CHECK(w[static_cast<std::size_t>(r)].status.read_line(30000) ==
              "RESETOK");

  // ---- replacements join, everyone recovers v1, then saves v2 ------------
  for (int r : to_kill) w[static_cast<std::size_t>(r)] = spawn_rank(r);
  for (int r : to_kill)
    ECC_CHECK(w[static_cast<std::size_t>(r)].status.read_line(60000) ==
              "READY");
  broadcast(w, "LOAD", all_ranks);
  std::map<int, std::string> loaded;
  for (const std::string& l : collect(w, all_ranks, 120000)) {
    const ShardReport rep = parse_shard_report(l, "LOADED ");
    ECC_CHECK_MSG(rep.version == 1, "recovered version " << rep.version);
    loaded.insert(rep.digests.begin(), rep.digests.end());
  }
  broadcast(w, "SAVE 3", all_ranks);
  std::map<int, std::string> resaved;
  for (const std::string& l : collect(w, all_ranks, 120000)) {
    const ShardReport rep = parse_shard_report(l, "SAVED ");
    ECC_CHECK_MSG(rep.version == 2, "post-recovery save landed on version "
                                        << rep.version
                                        << " (torn v2 not rolled back?)");
    resaved.insert(rep.digests.begin(), rep.digests.end());
  }
  broadcast(w, "EXIT", all_ranks);
  for (int r = 0; r < total; ++r)
    ::waitpid(w[static_cast<std::size_t>(r)].pid, nullptr, 0);

  if (a.observed()) merge_engine_observability(a, total);

  // ---- single-process VirtualFabric reference of the same history --------
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = total;
  ccfg.gpus_per_node = a.gpn;
  cluster::VirtualCluster vc(ccfg);
  cluster::VirtualFabric ref(vc);
  std::map<int, std::string> ref_loaded;
  {
    core::FabricSession session(ref, engine_ec_config(a), a.gpn, 2);
    const dnn::CheckpointGenConfig gen =
        svc::job_gen_config("engine", 1, world);
    std::vector<dnn::StateDict> shards;
    for (int wk : session.driven_workers())
      shards.push_back(dnn::make_worker_state_dict(gen, wk));
    std::vector<const dnn::StateDict*> ptrs;
    for (const dnn::StateDict& sd : shards) ptrs.push_back(&sd);
    session.save(ptrs);
  }
  for (int r : to_kill) vc.kill(r);
  for (int r : to_kill) vc.replace(r);
  {
    core::FabricSession session(ref, engine_ec_config(a), a.gpn, 2);
    std::vector<dnn::StateDict> out;
    const core::FabricSession::RecoverResult res = session.load(out);
    ECC_CHECK(res.version == 1);
    const std::vector<int> workers = session.driven_workers();
    for (std::size_t i = 0; i < workers.size(); ++i)
      ref_loaded[workers[i]] = hex64(out[i].digest());
  }

  bool ok = true;
  const std::map<int, std::string> want1 = expected_digests("engine", 1, world);
  const std::map<int, std::string> want3 = expected_digests("engine", 3, world);
  if (loaded != ref_loaded || loaded != want1) {
    std::cerr << "MISMATCH: recovered digests disagree with "
              << (loaded == ref_loaded ? "closed form" : "reference") << "\n";
    ok = false;
  }
  if (resaved != want3) {
    std::cerr << "MISMATCH: post-recovery save digests\n";
    ok = false;
  }
  if (ok)
    std::cout << "PASS: engine over sockets — torn save rolled back, "
              << world << " shards recovered bit-exact vs VirtualFabric "
                          "reference, training resumed at version 2\n";
  return ok ? 0 : 1;
}

// ---- --mode daemon: coordinator + worker daemons + client ------------------

int run_daemon(const Args& a) {
  const int total = a.k + a.m;
  const int world = total * a.gpn;
  ECC_CHECK_MSG(world % a.k == 0,
                "(k+m)*gpn must be divisible by k; got world "
                    << world << ", k " << a.k);
  const std::vector<net::Endpoint> fabric_eps = make_endpoints(a);
  const std::vector<net::Endpoint> ctl_eps = named_endpoints(a, total, "ctl");
  const net::Endpoint client_ep = named_endpoints(a, 1, "client")[0];

  std::cout << "transport_cli daemon: coordinator + " << total
            << " workers x " << a.gpn << " shards over " << a.transport
            << ", dir " << a.dir << "\n";

  net::TransportOptions co_opts = transport_options(a);
  // A save response only arrives after the whole collective resolves (or
  // times out), so the control channel's budget must dominate the fabric's.
  co_opts.io_timeout = net::Millis(std::max(60000, a.io_timeout_ms * 8));
  co_opts.connect_retries = 3;
  co_opts.backoff_max = net::Millis(200);

  auto spawn_worker_daemon = [&](int rank) {
    return spawn_proc([&, rank](int, int status_w) {
      try {
        if (a.observed()) obs::Tracer::global().enable();
        svc::WorkerDaemonConfig cfg;
        cfg.rank = rank;
        cfg.fabric_eps = fabric_eps;
        cfg.control_ep = ctl_eps[static_cast<std::size_t>(rank)];
        cfg.fabric_opts = transport_options(a);
        cfg.ec = engine_ec_config(a);
        cfg.gpus_per_node = a.gpn;
        svc::WorkerDaemon daemon(std::move(cfg));
        write_line(status_w, "READY");
        daemon.run();
        ::_exit(0);
      } catch (const std::exception& e) {
        write_line(status_w, std::string("ERROR ") + e.what());
        ::_exit(1);
      }
    });
  };
  std::vector<WorkerHandle> workers;
  for (int r = 0; r < total; ++r) workers.push_back(spawn_worker_daemon(r));
  for (int r = 0; r < total; ++r)
    ECC_CHECK_MSG(workers[static_cast<std::size_t>(r)].status.read_line(
                      60000) == "READY",
                  "worker daemon " << r << " failed to start");

  WorkerHandle coord = spawn_proc([&](int, int status_w) {
    try {
      if (a.observed()) obs::Tracer::global().enable();
      svc::CoordinatorConfig cfg;
      cfg.client_ep = client_ep;
      cfg.worker_eps = ctl_eps;
      cfg.opts = co_opts;
      svc::Coordinator c(std::move(cfg));
      write_line(status_w, "READY");
      c.run();
      ::_exit(0);
    } catch (const std::exception& e) {
      write_line(status_w, std::string("ERROR ") + e.what());
      ::_exit(1);
    }
  });
  ECC_CHECK_MSG(coord.status.read_line(60000) == "READY",
                "coordinator failed to start");

  // ---- the parent is now a client of the service -------------------------
  auto request = [&](const std::string& command, const std::string& args) {
    return svc::client_request(client_ep, command, args, co_opts);
  };
  auto check_shards = [&](const std::string& body, const std::string& job) {
    // body: "version=V iteration=I wN:hex ... [; detail]"
    std::istringstream is(body);
    std::string tok;
    std::int64_t version = 0, iteration = 0;
    std::map<int, std::string> got;
    while (is >> tok) {
      if (tok == ";") break;
      if (tok.rfind("version=", 0) == 0) version = std::stoll(tok.substr(8));
      else if (tok.rfind("iteration=", 0) == 0)
        iteration = std::stoll(tok.substr(10));
      else if (tok[0] == 'w' && tok.find(':') != std::string::npos) {
        const auto colon = tok.find(':');
        got[std::stoi(tok.substr(1, colon - 1))] = tok.substr(colon + 1);
      }
    }
    ECC_CHECK_MSG(iteration > 0, "no iteration in reply '" << body << "'");
    std::map<int, std::string> want;
    const dnn::CheckpointGenConfig gen =
        svc::job_gen_config(job, iteration, world);
    for (int wk = 0; wk < world; ++wk) {
      std::ostringstream hx;
      hx << std::hex << std::setw(16) << std::setfill('0')
         << dnn::make_worker_state_dict(gen, wk).digest();
      want[wk] = hx.str();
    }
    ECC_CHECK_MSG(got == want, "digests disagree with closed form for job "
                                   << job << ": '" << body << "'");
    return version;
  };
  auto expect_ok = [&](const svc::ControlReply& r, const std::string& what) {
    ECC_CHECK_MSG(r.ok, what << " failed: " << r.body);
    return r.body;
  };

  bool ok = true;
  try {
    std::cout << "  status: " << expect_ok(request("status", ""), "status")
              << "\n";
    ECC_CHECK(check_shards(expect_ok(request("save", "jobA"), "save jobA"),
                           "jobA") == 1);
    ECC_CHECK(check_shards(expect_ok(request("save", "jobB"), "save jobB"),
                           "jobB") == 1);
    ECC_CHECK(check_shards(expect_ok(request("save", "jobA"), "save jobA"),
                           "jobA") == 2);
    std::cout << "  saved jobA v1,v2 and jobB v1 through the service\n";

    const int victim = parse_kill_list(a).front();
    auto& vh = workers[static_cast<std::size_t>(victim)];
    std::cout << "  SIGKILL worker " << victim << " (pid " << vh.pid
              << ")\n";
    ::kill(vh.pid, SIGKILL);
    ::waitpid(vh.pid, nullptr, 0);

    const svc::ControlReply torn = request("save", "jobA");
    ECC_CHECK_MSG(!torn.ok,
                  "save with a dead worker unexpectedly ok: " << torn.body);
    std::cout << "  torn save reported: " << torn.body << "\n";
    const std::string st = expect_ok(request("status", ""), "status");
    ECC_CHECK_MSG(st.find("workers=" + std::to_string(total - 1) + "/" +
                          std::to_string(total)) != std::string::npos,
                  "status does not show the dead worker: " << st);

    workers[static_cast<std::size_t>(victim)] = spawn_worker_daemon(victim);
    ECC_CHECK(workers[static_cast<std::size_t>(victim)].status.read_line(
                  60000) == "READY");
    std::cout << "  replacement worker " << victim << " joined\n";

    const std::string loadA =
        expect_ok(request("load", "jobA"), "load jobA");
    ECC_CHECK_MSG(check_shards(loadA, "jobA") == 2,
                  "jobA recovered wrong version: " << loadA);
    std::cout << "  load jobA: " << loadA << "\n";
    const std::string loadB =
        expect_ok(request("load", "jobB"), "load jobB");
    ECC_CHECK_MSG(check_shards(loadB, "jobB") == 1,
                  "jobB recovered wrong version: " << loadB);
    std::cout << "  load jobB: " << loadB << "\n";

    ECC_CHECK(check_shards(expect_ok(request("save", "jobA"), "save jobA"),
                           "jobA") == 3);
    std::cout << "  post-recovery save jobA landed on version 3\n";

    // ---- live job-health endpoint -----------------------------------------
    const std::string health = expect_ok(request("health", ""), "health");
    {
      std::string perr;
      const std::unique_ptr<obs::JsonValue> doc =
          obs::JsonValue::parse(health, &perr);
      ECC_CHECK_MSG(doc != nullptr, "health is not JSON: " << perr);
      const obs::JsonValue* jobs = doc->find("jobs");
      const obs::JsonValue* jobA =
          jobs != nullptr ? jobs->find("jobA") : nullptr;
      const obs::JsonValue* ver =
          jobA != nullptr ? jobA->find("last_version") : nullptr;
      ECC_CHECK_MSG(ver != nullptr && ver->as_number() == 3,
                    "health does not show jobA at version 3: " << health);
      const obs::JsonValue* ws = doc->find("workers");
      std::size_t alive = 0;
      if (ws != nullptr && ws->is_array())
        for (const obs::JsonValue& wj : ws->as_array()) {
          const obs::JsonValue* a_ = wj.find("alive");
          if (a_ != nullptr && a_->is_bool() && a_->as_bool()) ++alive;
        }
      ECC_CHECK_MSG(alive == static_cast<std::size_t>(total),
                    "health shows " << alive << "/" << total
                                    << " workers alive: " << health);
      std::cout << "  health: jobA v3, " << alive << "/" << total
                << " workers alive, saves_failed="
                << (jobA->find("saves_failed") != nullptr
                        ? jobA->find("saves_failed")->as_number()
                        : -1)
                << "\n";
    }

    // ---- merged trace + aggregated stats through the coordinator ----------
    if (!a.trace_out.empty()) {
      const std::string trace = expect_ok(request("trace", ""), "trace");
      // One worker was SIGKILLed mid-save: its buffers died with it, so
      // survivors' recv spans may carry unresolvable parents — expected.
      const obs::MergedTraceCheck chk = obs::check_merged_trace(
          trace, std::min<std::size_t>(4, 1 + static_cast<std::size_t>(total)),
          /*require_all_resolved=*/false);
      ECC_CHECK_MSG(chk.ok, "merged trace check: " << chk.error);
      ECC_CHECK_MSG(chk.cross_process_links >= 3,
                    "only " << chk.cross_process_links
                            << " cross-process links in the merged trace");
      write_text_file(a.trace_out, trace);
      std::cout << "  trace: " << chk.spans << " spans across "
                << chk.processes << " processes, " << chk.cross_process_links
                << " cross-process links (" << chk.unresolved_parents
                << " parents lost with the killed worker) -> " << a.trace_out
                << "\n";
    }
    if (a.observed()) {
      const std::string stats = expect_ok(request("stats", ""), "stats");
      if (!a.stats_out.empty()) {
        write_text_file(a.stats_out, stats);
        std::cout << "  stats -> " << a.stats_out << "\n";
      }
      std::string perr;
      const std::unique_ptr<obs::JsonValue> doc =
          obs::JsonValue::parse(stats, &perr);
      ECC_CHECK_MSG(doc != nullptr, "stats is not JSON: " << perr);
      const obs::JsonValue* aggregate = doc->find("aggregate");
      ECC_CHECK_MSG(aggregate != nullptr && aggregate->is_object(),
                    "stats has no aggregate object");
      const obs::JsonValue* counters = aggregate->find("counters");
      auto c = [&](const std::string& name) -> std::uint64_t {
        const obs::JsonValue* v =
            counters != nullptr ? counters->find(name) : nullptr;
        return v != nullptr && v->is_number()
                   ? static_cast<std::uint64_t>(v->as_number())
                   : 0;
      };
      ECC_CHECK_MSG(c("net.send.count") > 0,
                    "aggregate stats carry no fabric traffic");
      std::cout << "  net: accepted=" << c("net.accept.count")
                << " connects=" << c("net.connect.count")
                << " retries=" << c("net.retry.count")
                << " resets=" << c("net.reset.connections")
                << " io_errors=" << c("net.io_error.count")
                << " trace_dropped=" << c("obs.tracer.dropped") << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "daemon cycle failed: " << e.what() << "\n";
    ok = false;
  }

  const svc::ControlReply bye = request("shutdown", "");
  ECC_CHECK_MSG(bye.ok && bye.body == "bye", "shutdown: " << bye.body);
  ::waitpid(coord.pid, nullptr, 0);
  for (int r = 0; r < total; ++r)
    ::waitpid(workers[static_cast<std::size_t>(r)].pid, nullptr, 0);

  if (ok)
    std::cout << "PASS: daemon service — 2 jobs saved/recovered bit-exact "
                 "through coordinator, worker death handled: torn save "
                 "failed fast, replacement rejoined, training resumed\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);
  Args a = parse_args(argc, argv);
  if (a.dir.empty()) {
    char tmpl[] = "/tmp/eccheck-net-XXXXXX";
    ECC_CHECK(::mkdtemp(tmpl) != nullptr);
    a.dir = tmpl;
  } else {
    fs::create_directories(a.dir);
  }
  fs::create_directories(a.dir + "/remote");
  fs::create_directories(a.dir + "/out");

  int rc = 1;
  try {
    if (a.mode == "cycle") rc = run_cycle(a);
    else if (a.mode == "peerdeath") rc = run_peerdeath(a);
    else if (a.mode == "engine") rc = run_engine(a);
    else rc = run_daemon(a);
  } catch (const std::exception& e) {
    std::cerr << "transport_cli: " << e.what() << "\n";
    rc = 1;
  }
  if (!a.keep) {
    std::error_code ec;
    fs::remove_all(a.dir, ec);
  } else {
    std::cout << "work dir kept: " << a.dir << "\n";
  }
  return rc;
}
