// Long-run training simulation with random failures: which checkpointing
// strategy wastes the least GPU time?
//
// Simulates weeks of virtual training on the 4×4-GPU testbed with Llama-3-
// style failure rates (one failure every few hours, §I). Each engine picks
// its own sustainable checkpoint interval (the next save cannot start before
// the previous finishes); on failure the run rolls back to the last durable
// checkpoint and pays the engine's recovery time — or a full restart from
// remote when in-memory recovery is impossible.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "cluster/failure_detector.hpp"
#include "common/rng.hpp"

using namespace eccheck;

namespace {

struct Outcome {
  double wall_hours = 0;
  double ideal_hours = 0;    // failure- and checkpoint-free training time
  double wasted_hours = 0;   // rolled-back progress + recovery stalls
  int failures = 0;
  int unrecoverable = 0;
};

Outcome simulate(ckpt::CheckpointEngine* engine, bool is_eccheck,
                 double mtbf_hours, std::uint64_t seed) {
  dnn::ParallelismSpec par{4, 4, 1};
  const auto model = dnn::table1_models()[1];  // GPT-2 5.3B
  auto workload = bench::make_scaled_workload(model, par);

  auto train = trainsim::estimate_workload(model, par);
  auto prof = trainsim::simulate_iteration(
      train, par.pipeline_parallel, bench::testbed_config().nic_bandwidth);
  const double t_iter = prof.iteration_time;

  // Probe the engine once for its save/recover costs.
  auto cfg = bench::testbed_config();
  cfg.size_scale = workload.size_scale;
  cluster::VirtualCluster cluster(cfg);
  auto save = engine->save(cluster, workload.shards, 1);

  cluster.kill(1);
  cluster.replace(1);
  std::vector<dnn::StateDict> out;
  auto load = engine->load(cluster, 1, out);

  // Checkpoint interval: Young-Daly optimum sqrt(2·MTBF·C) for the
  // engine's stall cost C, floored by the asynchronous tail (the next save
  // cannot start before the previous checkpoint is durable).
  const double interval_s =
      std::max({std::sqrt(2 * mtbf_hours * 3600 * save.stall_time),
                save.total_time, 10 * t_iter});
  const double per_ckpt_overhead = save.stall_time;

  // Failure model: exponential inter-arrival, independent (§II-B).
  const double total_iters = 400000;
  SplitMix64 rng(seed);
  Outcome o;
  double progress = 0;            // useful seconds of training completed
  double since_ckpt = 0;          // progress since last durable checkpoint
  double next_failure = -mtbf_hours * 3600 * std::log(1 - rng.next_double());

  double clock = 0;
  const double goal = total_iters * t_iter;
  while (progress < goal) {
    double step = t_iter;
    clock += step;
    progress += step;
    since_ckpt += step;
    if (since_ckpt >= interval_s) {
      clock += per_ckpt_overhead;
      since_ckpt = 0;
    }
    if (clock >= next_failure) {
      ++o.failures;
      // Roll back to the last *durable* checkpoint: asynchronous engines
      // lag by their persist tail, so that much extra progress is lost too.
      const double rollback = since_ckpt + save.total_time - save.stall_time;
      o.wasted_hours += rollback / 3600;
      progress -= rollback;
      since_ckpt = 0;
      // Detection first (heartbeat quorum), then the engine's recovery.
      static const cluster::FailureDetector detector(
          cluster::FailureDetectorConfig{});
      double recovery = detector.detection_time(clock, 3) - clock;
      recovery += load.success ? load.resume_time : 0;
      // One in three failures takes two nodes down at once; replication
      // (base3) then loses a whole group half the time and must restart
      // from the last remote flush (hours of progress gone).
      bool double_failure = rng.next_below(3) == 0;
      if (double_failure && !is_eccheck &&
          engine->name().find("base3") == 0) {
        if (rng.next_below(3) < 1) {  // both failures in one group
          ++o.unrecoverable;
          recovery = 4 * 3600;  // re-provision + reload from cold storage
          o.wasted_hours += 2;  // older remote checkpoint
          progress -= 2 * 3600;
        }
      }
      clock += recovery;
      o.wasted_hours += recovery / 3600;
      next_failure =
          clock - mtbf_hours * 3600 * std::log(1 - rng.next_double());
    }
  }
  o.wall_hours = clock / 3600;
  o.ideal_hours = goal / 3600;
  return o;
}

}  // namespace

int main() {
  std::printf(
      "=== training through failures: GPT-2 5.3B, 400k iterations ===\n"
      "MTBF 3h (Llama-3.1-405B observed roughly one failure per 3h)\n\n");
  std::printf("%-26s %-12s %-12s %-10s %-14s %-12s\n", "engine", "wall (h)",
              "wasted (h)", "failures", "unrecoverable", "goodput");

  auto engines = bench::make_engines();
  struct Row {
    ckpt::CheckpointEngine* e;
    bool is_ec;
  };
  for (Row row : {Row{engines.base1.get(), false},
                  Row{engines.base2.get(), false},
                  Row{engines.base3.get(), false},
                  Row{engines.eccheck.get(), true}}) {
    Outcome o = simulate(row.e, row.is_ec, 3.0, 20260706);
    std::printf("%-26s %-12.1f %-12.1f %-10d %-14d %-12.1f%%\n",
                row.e->name().c_str(), o.wall_hours, o.wasted_hours,
                o.failures, o.unrecoverable,
                100.0 * o.ideal_hours / o.wall_hours);
  }
  std::printf(
      "\nECCheck checkpoints as often as replication but survives the "
      "double failures that force base3 back to cold storage.\n");
  return 0;
}
