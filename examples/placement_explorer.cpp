// Placement explorer: inspect ECCheck's communication plan for a cluster
// shape — data/parity node roles (sweep-line pairing, §IV-B1), reduction
// groups and targets (§IV-B2), and the resulting traffic accounting.
//
// Usage: placement_explorer [nodes gpus_per_node k]
#include <cstdio>
#include <cstdlib>

#include "core/placement.hpp"

using namespace eccheck;

int main(int argc, char** argv) {
  core::PlacementConfig cfg;
  cfg.num_nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  cfg.gpus_per_node = argc > 2 ? std::atoi(argv[2]) : 4;
  cfg.k = argc > 3 ? std::atoi(argv[3]) : cfg.num_nodes / 2;
  cfg.m = cfg.num_nodes - cfg.k;

  const int W = cfg.num_nodes * cfg.gpus_per_node;
  if (W % cfg.k != 0) {
    std::printf("world size %d must be divisible by k=%d\n", W, cfg.k);
    return 1;
  }

  std::printf("cluster: %d nodes x %d GPUs = %d workers; k=%d data, m=%d "
              "parity\n\n",
              cfg.num_nodes, cfg.gpus_per_node, W, cfg.k, cfg.m);
  core::Placement p = core::plan_placement(cfg);

  std::printf("node roles (sweep-line maximum-overlap pairing):\n");
  for (int n = 0; n < cfg.num_nodes; ++n) {
    int row = p.generator_row_of_node(n);
    if (p.is_data_node(n))
      std::printf("  node %d -> data chunk %d (workers %d..%d)\n", n, row,
                  row * p.workers_per_chunk(),
                  (row + 1) * p.workers_per_chunk() - 1);
    else
      std::printf("  node %d -> parity chunk %d\n", n, row - cfg.k);
  }

  std::printf("\nreduction groups (%zu ops = W/k x m):\n",
              p.reductions.size());
  int shown = 0;
  for (const auto& op : p.reductions) {
    if (shown++ >= 8) {
      std::printf("  ... (%zu more)\n", p.reductions.size() - 8);
      break;
    }
    std::printf("  group %d row %d: workers [", op.group, op.parity_row);
    for (std::size_t i = 0; i < op.participants.size(); ++i)
      std::printf("%s%d", i ? " " : "", op.participants[i]);
    std::printf("] -> target worker %d (node %d)%s\n", op.target_worker,
                core::node_of(cfg, op.target_worker),
                core::node_of(cfg, op.target_worker) == op.dest_node
                    ? " [on parity node, free]"
                    : "");
  }

  std::printf("\nP2P transfers: %zu (", p.transfers.size());
  int data_moves = 0;
  for (const auto& t : p.transfers)
    if (t.kind == core::P2PTransfer::Kind::kDataPacket) ++data_moves;
  std::printf("%d data, %zu parity)\n", data_moves,
              p.transfers.size() - static_cast<std::size_t>(data_moves));

  auto vol = core::nominal_comm_volume(p, 1.0);
  std::printf("\ncommunication volume (unit shards):\n");
  std::printf("  XOR reduction: %.0f\n", vol.xor_reduction_bytes);
  std::printf("  P2P          : %.0f\n", vol.p2p_bytes);
  std::printf("  total        : %.0f  (= m*W = %d, §V-F)\n", vol.total(),
              cfg.m * W);
  std::printf("  per device   : %.2f (= m, constant in cluster size)\n",
              vol.total() / W);
  return 0;
}
