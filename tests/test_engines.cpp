// Integration tests over all four checkpoint engines: save → failure
// injection → load must return bit-exact state_dicts, timing reports must
// reflect each design's blocking structure.
#include <gtest/gtest.h>

#include <memory>

#include "ckpt/base_gemini.hpp"
#include "ckpt/base_remote.hpp"
#include "core/eccheck_engine.hpp"
#include "dnn/checkpoint_gen.hpp"

namespace eccheck {
namespace {

using ckpt::CheckpointEngine;
using cluster::ClusterConfig;
using cluster::VirtualCluster;

ClusterConfig test_cluster_config(int nodes = 4, int gpus = 2) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.gpus_per_node = gpus;
  // Paper-shaped ratios at convenient magnitudes.
  cfg.nic_bandwidth = gbps(100);
  cfg.dtoh_bandwidth = gibps(16);
  cfg.remote_storage_bandwidth = gbps(5);
  cfg.host_memcpy_bandwidth = gibps(20);
  cfg.serialize_bandwidth = gibps(1);
  cfg.encode_bandwidth_per_thread = gibps(1);
  cfg.encode_threads = 8;
  return cfg;
}

dnn::CheckpointGenConfig shard_config(int world, std::uint64_t seed = 11) {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kGPT2, 128, 2, 8, "itest");
  cfg.model.vocab = 512;  // keep stage-0 shards comparable to the others
  cfg.parallelism = {2, world / 2, 1};
  cfg.seed = seed;
  return cfg;
}

core::ECCheckConfig eccheck_config(int k, int m) {
  core::ECCheckConfig cfg;
  cfg.k = k;
  cfg.m = m;
  cfg.packet_size = kib(64);
  return cfg;
}

std::vector<std::uint64_t> digests_of(const std::vector<dnn::StateDict>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& sd : v) out.push_back(sd.digest());
  return out;
}

void expect_bit_exact(const std::vector<dnn::StateDict>& got,
                      const std::vector<std::uint64_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].digest(), want[i]) << "worker " << i;
}

struct EngineCase {
  std::string name;
  std::function<std::unique_ptr<CheckpointEngine>()> make;
};

class AllEnginesTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(AllEnginesTest, SaveThenLoadWithoutFailures) {
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  auto want = digests_of(shards);
  auto engine = GetParam().make();

  auto save = engine->save(cluster, shards, 1);
  EXPECT_GT(save.total_time, 0.0);
  EXPECT_GE(save.total_time, save.stall_time);

  std::vector<dnn::StateDict> out;
  auto load = engine->load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  expect_bit_exact(out, want);
}

TEST_P(AllEnginesTest, SurvivesSingleNodeFailure) {
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  auto want = digests_of(shards);
  auto engine = GetParam().make();
  engine->save(cluster, shards, 2);

  for (int victim = 0; victim < cluster.num_nodes(); ++victim) {
    cluster.kill(victim);
    cluster.replace(victim);
    std::vector<dnn::StateDict> out;
    auto load = engine->load(cluster, 2, out);
    ASSERT_TRUE(load.success) << GetParam().name << " victim=" << victim
                              << ": " << load.detail;
    expect_bit_exact(out, want);
    EXPECT_GT(load.resume_time, 0.0);
    EXPECT_GE(load.total_time, load.resume_time);
    // Re-save so the next victim starts from a fully redundant state.
    engine->save(cluster, shards, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, AllEnginesTest,
    ::testing::Values(
        EngineCase{"base1",
                   [] {
                     return std::make_unique<ckpt::RemoteSyncEngine>();
                   }},
        EngineCase{"base2",
                   [] {
                     return std::make_unique<ckpt::RemoteTwoPhaseEngine>();
                   }},
        EngineCase{"base3",
                   [] {
                     return std::make_unique<ckpt::GeminiReplicationEngine>(2);
                   }},
        EngineCase{"eccheck",
                   [] {
                     return std::make_unique<core::ECCheckEngine>(
                         eccheck_config(2, 2));
                   }}),
    [](const auto& info) { return info.param.name; });

// --- failure-pattern semantics -----------------------------------------------

TEST(Base3, DiesWhenWholeGroupFails) {
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  ckpt::GeminiReplicationEngine engine(2);
  engine.save(cluster, shards, 1);

  // Nodes 2 and 3 form one replication group: both down → unrecoverable.
  cluster.kill(2);
  cluster.kill(3);
  cluster.replace(2);
  cluster.replace(3);
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  EXPECT_FALSE(load.success);
  EXPECT_NE(load.detail.find("group"), std::string::npos);
}

TEST(Base3, SurvivesOneFailurePerGroup) {
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  auto want = digests_of(shards);
  ckpt::GeminiReplicationEngine engine(2);
  engine.save(cluster, shards, 1);

  cluster.kill(0);
  cluster.kill(2);  // one per group
  cluster.replace(0);
  cluster.replace(2);
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  expect_bit_exact(out, want);
}

TEST(ECCheck, SurvivesAnyTwoNodeFailures) {
  // The headline capability (Fig. 2c): with k = m = 2 every 2-subset of
  // nodes is survivable, including patterns that kill base3.
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  auto want = digests_of(shards);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      VirtualCluster cluster(test_cluster_config());
      core::ECCheckEngine engine(eccheck_config(2, 2));
      engine.save(cluster, shards, 1);
      cluster.kill(a);
      cluster.kill(b);
      cluster.replace(a);
      cluster.replace(b);
      std::vector<dnn::StateDict> out;
      auto load = engine.load(cluster, 1, out);
      ASSERT_TRUE(load.success)
          << "failed nodes " << a << "," << b << ": " << load.detail;
      expect_bit_exact(out, want);
    }
  }
}

TEST(ECCheck, FailsBeyondMWithoutRemote) {
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  core::ECCheckEngine engine(eccheck_config(2, 2));
  engine.save(cluster, shards, 1);
  for (int n : {0, 1, 2}) {
    cluster.kill(n);
    cluster.replace(n);
  }
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  EXPECT_FALSE(load.success);
  EXPECT_NE(load.detail.find("need k=2"), std::string::npos);
}

TEST(ECCheck, RemoteFlushRescuesCatastrophicFailure) {
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  auto want = digests_of(shards);
  auto cfg = eccheck_config(2, 2);
  cfg.flush_to_remote = true;  // step 4 enabled
  core::ECCheckEngine engine(cfg);
  engine.save(cluster, shards, 1);

  for (int n : {0, 1, 2}) {  // 3 > m failures
    cluster.kill(n);
    cluster.replace(n);
  }
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  expect_bit_exact(out, want);
}

TEST(ECCheck, RemoteFallbackTimingTracksRemoteBandwidth) {
  // Regression: the catastrophic-recovery path used to discard the
  // fetch_from_remote task ids, so resume_time/total_time never charged the
  // remote transfers — recovery looked equally fast at any remote
  // bandwidth. The fetch finish times must gate reconstruction.
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  auto run = [&](double remote_bw) {
    auto ccfg = test_cluster_config();
    ccfg.remote_storage_bandwidth = remote_bw;
    VirtualCluster cluster(ccfg);
    auto cfg = eccheck_config(2, 2);
    cfg.flush_to_remote = true;
    core::ECCheckEngine engine(cfg);
    engine.save(cluster, shards, 1);
    for (int n : {0, 1, 2}) {  // > m failures → remote fallback
      cluster.kill(n);
      cluster.replace(n);
    }
    std::vector<dnn::StateDict> out;
    auto load = engine.load(cluster, 1, out);
    EXPECT_TRUE(load.success) << load.detail;
    EXPECT_NE(load.detail.find("remote fallback"), std::string::npos)
        << load.detail;
    EXPECT_GE(load.total_time, load.resume_time);
    return load;
  };
  auto fast = run(gbps(5));
  auto slow = run(gbps(5) / 10.0);
  // 10× less remote bandwidth must show up in the recovery clock.
  EXPECT_GT(fast.resume_time, 0.0);
  EXPECT_GT(slow.resume_time, fast.resume_time * 2);
  EXPECT_GT(slow.total_time, fast.total_time * 1.5);
}

TEST(ECCheck, WorkflowAReportedWhenDataNodesSurvive) {
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  core::ECCheckEngine engine(eccheck_config(2, 2));
  auto plan = engine.plan_for(cluster);
  engine.save(cluster, shards, 1);

  int parity = plan.parity_nodes[0];
  cluster.kill(parity);
  cluster.replace(parity);
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success);
  EXPECT_NE(load.detail.find("workflow A"), std::string::npos);

  engine.save(cluster, shards, 2);
  int data = plan.data_nodes[0];
  cluster.kill(data);
  cluster.replace(data);
  auto load2 = engine.load(cluster, 2, out);
  ASSERT_TRUE(load2.success);
  EXPECT_NE(load2.detail.find("workflow B"), std::string::npos);
}

TEST(ECCheck, RecoveryRestoresRedundancy) {
  // After one recovery, a second (different) failure must still succeed —
  // task 2 of §III-B.
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  auto want = digests_of(shards);
  core::ECCheckEngine engine(eccheck_config(2, 2));
  engine.save(cluster, shards, 1);

  cluster.kill(0);
  cluster.kill(1);
  cluster.replace(0);
  cluster.replace(1);
  std::vector<dnn::StateDict> out;
  ASSERT_TRUE(engine.load(cluster, 1, out).success);

  cluster.kill(2);
  cluster.kill(3);
  cluster.replace(2);
  cluster.replace(3);
  auto load2 = engine.load(cluster, 1, out);
  ASSERT_TRUE(load2.success) << load2.detail;
  expect_bit_exact(out, want);
}

// --- timing semantics --------------------------------------------------------

TEST(Timing, Base1BlocksForWholeSaveBase2OnlyForSnapshot) {
  VirtualCluster c1(test_cluster_config());
  VirtualCluster c2(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  ckpt::RemoteSyncEngine base1;
  ckpt::RemoteTwoPhaseEngine base2;
  auto r1 = base1.save(c1, shards, 1);
  auto r2 = base2.save(c2, shards, 1);
  EXPECT_DOUBLE_EQ(r1.stall_time, r1.total_time);
  EXPECT_LT(r2.stall_time, r2.total_time / 2);
  // Same data, same persistence path → same total duration.
  EXPECT_NEAR(r1.total_time, r2.total_time, r1.total_time * 0.01);
}

TEST(Timing, InMemoryEnginesBeatRemoteOnCheckpointTime) {
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  VirtualCluster c1(test_cluster_config());
  VirtualCluster c3(test_cluster_config());
  VirtualCluster ce(test_cluster_config());
  ckpt::RemoteSyncEngine base1;
  ckpt::GeminiReplicationEngine base3(2);
  core::ECCheckEngine ec(eccheck_config(2, 2));
  auto r1 = base1.save(c1, shards, 1);
  auto r3 = base3.save(c3, shards, 1);
  auto re = ec.save(ce, shards, 1);
  EXPECT_LT(r3.total_time, r1.total_time);
  EXPECT_LT(re.total_time, r1.total_time);
  // ECCheck costs a modest factor over base3 (paper: ≈1.6×).
  EXPECT_GT(re.total_time, r3.total_time * 0.9);
  EXPECT_LT(re.total_time, r3.total_time * 4.0);
}

TEST(Timing, ECCheckStallIsOnlySnapshot) {
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  core::ECCheckEngine engine(eccheck_config(2, 2));
  auto rep = engine.save(cluster, shards, 1);
  EXPECT_LT(rep.stall_time, rep.total_time / 2);
  EXPECT_DOUBLE_EQ(rep.breakdown.at("step1_snapshot"), rep.stall_time);
  EXPECT_GT(rep.breakdown.at("step3_encode_pipeline"),
            rep.breakdown.at("step1_snapshot"));
}

TEST(Timing, RecoveryFromPeersBeatsRemote) {
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  VirtualCluster c1(test_cluster_config());
  VirtualCluster ce(test_cluster_config());
  ckpt::RemoteSyncEngine base1;
  core::ECCheckEngine ec(eccheck_config(2, 2));
  base1.save(c1, shards, 1);
  ec.save(ce, shards, 1);

  for (auto* c : {&c1, &ce}) {
    c->kill(1);
    c->replace(1);
  }
  std::vector<dnn::StateDict> out;
  auto l1 = base1.load(c1, 1, out);
  auto le = ec.load(ce, 1, out);
  ASSERT_TRUE(l1.success);
  ASSERT_TRUE(le.success);
  EXPECT_LT(le.resume_time, l1.resume_time / 3);
}

TEST(Timing, WorkflowBSlowerThanWorkflowA) {
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  core::ECCheckEngine ec(eccheck_config(2, 2));

  VirtualCluster ca(test_cluster_config());
  ec.save(ca, shards, 1);
  auto plan = ec.plan_for(ca);
  ca.kill(plan.parity_nodes[0]);
  ca.replace(plan.parity_nodes[0]);
  std::vector<dnn::StateDict> out;
  auto la = ec.load(ca, 1, out);

  VirtualCluster cb(test_cluster_config());
  ec.save(cb, shards, 1);
  cb.kill(plan.data_nodes[0]);
  cb.replace(plan.data_nodes[0]);
  auto lb = ec.load(cb, 1, out);

  ASSERT_TRUE(la.success);
  ASSERT_TRUE(lb.success);
  EXPECT_GE(lb.resume_time, la.resume_time);
}

TEST(Timing, NetworkBytesMatchCommVolumeLaw) {
  // §V-F: inter-node traffic ≈ m·s·W (metadata broadcast adds a sliver).
  VirtualCluster cluster(test_cluster_config());
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  core::ECCheckEngine ec(eccheck_config(2, 2));
  auto rep = ec.save(cluster, shards, 1);

  std::size_t max_shard = 0;
  for (const auto& sd : shards) max_shard = std::max(max_shard, sd.tensor_bytes());
  const std::size_t P = ec.config().packet_size;
  const std::size_t B = core::packets_needed(max_shard, P);
  const double s = static_cast<double>(B * P);  // padded shard size
  const double msW = 2.0 * s * 8;               // m=2, W=8
  EXPECT_NEAR(static_cast<double>(rep.network_bytes), msW, msW * 0.1);
}


TEST(Base3, LargerGroupsToleratePartialLoss) {
  // Group size 4: each node replicates the whole group, so up to 3 of the 4
  // members can fail — at 4× the memory cost ECCheck avoids (Fig. 2).
  VirtualCluster cluster(test_cluster_config(4, 2));
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  auto want = digests_of(shards);
  ckpt::GeminiReplicationEngine engine(4);
  engine.save(cluster, shards, 1);
  for (int v : {0, 1, 3}) {
    cluster.kill(v);
    cluster.replace(v);
  }
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  expect_bit_exact(out, want);

  // All four down → gone.
  for (int v : {0, 1, 2, 3}) {
    cluster.kill(v);
    cluster.replace(v);
  }
  EXPECT_FALSE(engine.load(cluster, 1, out).success);
}

TEST(Base3, MemoryCostScalesWithGroupSize) {
  auto shards = dnn::make_sharded_checkpoint(shard_config(8));
  std::size_t bytes[2];
  int i = 0;
  for (int gs : {2, 4}) {
    VirtualCluster cluster(test_cluster_config(4, 2));
    ckpt::GeminiReplicationEngine engine(gs);
    engine.save(cluster, shards, 1);
    bytes[i++] = cluster.host(0).total_bytes();
  }
  // Group of 4 stores ~2x what a group of 2 does on every node.
  EXPECT_GT(bytes[1], bytes[0] * 3 / 2);
}

}  // namespace
}  // namespace eccheck
