// Differential tests for the runtime-dispatched SIMD kernels: every ISA the
// host supports must be bit-exact with the scalar reference for xor_into and
// mul_region, across odd/prime region sizes, misaligned buffers, accumulate
// on/off, and all three symbol widths. Also covers the dispatch machinery
// (probe/override sanity) and the per-constant table cache.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "gf/galois.hpp"
#include "gf/simd.hpp"

namespace eccheck::gf {
namespace {

// Region sizes chosen to exercise every code path: empty, sub-vector, exact
// vector widths (16/32/64), one-past (tail of 1), unrolled-block boundaries,
// primes (no alignment at all), and large-enough-to-unroll.
const std::size_t kSizes[] = {0,  1,  2,   3,   7,    8,    15,   16,   17,
                              31, 32, 33,  63,  64,   65,   127,  128,  129,
                              257, 1021, 4096, 65537};

// Byte offsets into an over-allocated 64B-aligned Buffer: aligned, byte-odd,
// and "almost aligned" (61 = 64 - 3) to shift vector bodies off alignment.
const std::size_t kOffsets[] = {0, 1, 3, 16, 61};

constexpr std::size_t kPad = 64;  // slack so offset + size always fits

std::size_t round_down(std::size_t n, std::size_t g) { return n - n % g; }

class SimdIsaTest : public ::testing::TestWithParam<simd::Isa> {
 protected:
  const simd::Kernels& k() const { return simd::kernels_for(GetParam()); }
};

TEST_P(SimdIsaTest, KernelsForReturnsRequestedIsa) {
  // GetParam() comes from supported_isas(), so no fallback may happen.
  EXPECT_EQ(k().isa, GetParam());
  EXPECT_NE(k().xor_into, nullptr);
  EXPECT_NE(k().mul_region_b, nullptr);
  EXPECT_NE(k().mul_region_w16, nullptr);
}

TEST_P(SimdIsaTest, XorIntoMatchesScalar) {
  const simd::Kernels& scalar = simd::kernels_for(simd::Isa::kScalar);
  std::uint64_t seed = 1;
  for (std::size_t n : kSizes) {
    for (std::size_t src_off : kOffsets) {
      for (std::size_t dst_off : kOffsets) {
        Buffer src_buf(n + kPad, Buffer::Init::kUninitialized);
        Buffer want_buf(n + kPad, Buffer::Init::kUninitialized);
        fill_random(src_buf.span(), seed++);
        fill_random(want_buf.span(), seed++);
        Buffer got_buf = Buffer::copy_of(want_buf.span());

        const std::byte* src = src_buf.data() + src_off;
        scalar.xor_into(want_buf.data() + dst_off, src, n);
        k().xor_into(got_buf.data() + dst_off, src, n);

        ASSERT_EQ(std::memcmp(got_buf.data(), want_buf.data(), n + kPad), 0)
            << simd::isa_name(GetParam()) << " n=" << n
            << " src_off=" << src_off << " dst_off=" << dst_off;
      }
    }
  }
}

TEST_P(SimdIsaTest, XorIntoSelfZeroes) {
  // The contract allows dst == src; x ^ x == 0.
  for (std::size_t n : {std::size_t{0}, std::size_t{17}, std::size_t{4096}}) {
    Buffer buf(n, Buffer::Init::kUninitialized);
    fill_random(buf.span(), 7);
    k().xor_into(buf.data(), buf.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(buf.data()[i], std::byte{0}) << "i=" << i;
  }
}

TEST_P(SimdIsaTest, MulRegionMatchesScalar) {
  const simd::Kernels& scalar = simd::kernels_for(simd::Isa::kScalar);
  std::uint64_t seed = 1000;
  for (int w : {4, 8, 16}) {
    const Field& f = Field::get(w);
    SplitMix64 rng(static_cast<std::uint64_t>(w));
    std::vector<std::uint32_t> constants = {0, 1, 2, f.max_element()};
    for (int i = 0; i < 6; ++i)
      constants.push_back(
          static_cast<std::uint32_t>(rng.next_below(f.order())));

    for (std::uint32_t c : constants) {
      for (std::size_t raw_n : kSizes) {
        const std::size_t n = round_down(raw_n, f.region_granularity());
        for (bool accumulate : {false, true}) {
          // Rotate through offset pairs instead of the full cross product —
          // the XOR test already covers alignment exhaustively.
          const std::size_t src_off = kOffsets[raw_n % std::size(kOffsets)];
          const std::size_t dst_off =
              kOffsets[(raw_n + 2) % std::size(kOffsets)];

          Buffer src_buf(n + kPad, Buffer::Init::kUninitialized);
          Buffer want_buf(n + kPad, Buffer::Init::kUninitialized);
          fill_random(src_buf.span(), seed++);
          fill_random(want_buf.span(), seed++);
          Buffer got_buf = Buffer::copy_of(want_buf.span());

          ByteSpan src = src_buf.span().subspan(src_off, n);
          f.mul_region(c, src, want_buf.span().subspan(dst_off, n),
                       accumulate, scalar);
          f.mul_region(c, src, got_buf.span().subspan(dst_off, n),
                       accumulate, k());

          ASSERT_EQ(std::memcmp(got_buf.data(), want_buf.data(), n + kPad), 0)
              << simd::isa_name(GetParam()) << " w=" << w << " c=" << c
              << " n=" << n << " acc=" << accumulate
              << " src_off=" << src_off << " dst_off=" << dst_off;
        }
      }
    }
  }
}

TEST_P(SimdIsaTest, MulRegionMatchesScalarSymbolMultiply) {
  // Ground truth independent of the table layout: unpack symbols, multiply
  // with Field::mul, repack. Moderate sizes — this is the semantic anchor;
  // the differential test above carries the size/alignment sweep.
  for (int w : {4, 8, 16}) {
    const Field& f = Field::get(w);
    SplitMix64 rng(static_cast<std::uint64_t>(10 + w));
    const std::size_t n = round_down(253, f.region_granularity());
    for (int trial = 0; trial < 8; ++trial) {
      const std::uint32_t c =
          static_cast<std::uint32_t>(rng.next_below(f.order()));
      Buffer src(n, Buffer::Init::kUninitialized);
      fill_random(src.span(), 77 + static_cast<std::uint64_t>(trial));
      Buffer got(n, Buffer::Init::kZeroed);
      f.mul_region(c, src.span(), got.span(), /*accumulate=*/false, k());

      for (std::size_t i = 0; i < n; ++i) {
        const auto sb = static_cast<std::uint32_t>(src.data()[i]);
        const auto gb = static_cast<std::uint32_t>(got.data()[i]);
        if (w == 4) {
          ASSERT_EQ(gb, f.mul(c, sb & 0xf) | (f.mul(c, sb >> 4) << 4))
              << "i=" << i << " c=" << c;
        } else if (w == 8) {
          ASSERT_EQ(gb, f.mul(c, sb)) << "i=" << i << " c=" << c;
        } else if (i % 2 == 0) {
          const auto hi = static_cast<std::uint32_t>(src.data()[i + 1]);
          const std::uint32_t prod = f.mul(c, sb | (hi << 8));
          const auto ghi = static_cast<std::uint32_t>(got.data()[i + 1]);
          ASSERT_EQ(gb | (ghi << 8), prod) << "i=" << i << " c=" << c;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSupported, SimdIsaTest,
    ::testing::ValuesIn(simd::supported_isas()),
    [](const ::testing::TestParamInfo<simd::Isa>& info) {
      return std::string(simd::isa_name(info.param));
    });

TEST(SimdDispatch, SupportedIsasStartWithScalarAndAreSupported) {
  const auto isas = simd::supported_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), simd::Isa::kScalar);
  for (simd::Isa isa : isas) EXPECT_TRUE(simd::supported(isa));
  EXPECT_TRUE(simd::supported(simd::best_supported()));
}

TEST(SimdDispatch, ActiveIsSupportedAndStable) {
  const simd::Kernels& a = simd::active();
  EXPECT_TRUE(simd::supported(a.isa));
  EXPECT_EQ(&a, &simd::active());  // probed once, same vtable thereafter
  EXPECT_STREQ(simd::active_isa_name(), simd::isa_name(a.isa));
}

TEST(SimdDispatch, ParseIsaRoundTrips) {
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kSsse3,
        simd::Isa::kAvx2, simd::Isa::kNeon}) {
    simd::Isa parsed;
    ASSERT_TRUE(simd::parse_isa(simd::isa_name(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  simd::Isa parsed;
  EXPECT_FALSE(simd::parse_isa("avx512", &parsed));
  EXPECT_FALSE(simd::parse_isa("", &parsed));
  EXPECT_FALSE(simd::parse_isa("Scalar", &parsed));  // case-sensitive
}

TEST(SimdDispatch, UnsupportedKernelsFallBackToScalar) {
  // At least one of the five ISAs is always unsupported on any one host
  // (sse2 and neon are mutually exclusive).
  for (simd::Isa isa :
       {simd::Isa::kSse2, simd::Isa::kSsse3, simd::Isa::kAvx2,
        simd::Isa::kNeon}) {
    if (simd::supported(isa)) continue;
    EXPECT_EQ(simd::kernels_for(isa).isa, simd::Isa::kScalar)
        << simd::isa_name(isa);
  }
}

TEST(SimdDispatch, SpanNameCarriesActiveIsa) {
  const std::string name = simd::isa_span_name("codec.encode");
  EXPECT_EQ(name, std::string("codec.encode[") + simd::active_isa_name() +
                      "]");
}

TEST(TableCache, TablesForIsStableAndShared) {
  const Field& f = Field::get(8);
  const simd::MulTables& t1 = f.tables_for(42);
  const simd::MulTables& t2 = f.tables_for(42);
  EXPECT_EQ(&t1, &t2);  // built once, cached

  const Field copy = f;  // copies share the cache
  EXPECT_EQ(&copy.tables_for(42), &t1);

  // Table contents agree with scalar field arithmetic.
  for (std::uint32_t b = 0; b < 256; ++b)
    EXPECT_EQ(t1.byte_tab[b], f.mul(42, b)) << b;
}

TEST(TableCache, ConcurrentFirstUseBuildsOneTablePerConstant) {
  // Hammer first-touch of fresh constants from many threads; every thread
  // must observe the same published table for a given constant.
  const Field& f = Field::get(16);
  constexpr int kThreads = 8;
  std::vector<std::uint32_t> cs = {3, 9, 100, 4095, 65535};
  std::vector<std::vector<const simd::MulTables*>> seen(
      kThreads, std::vector<const simd::MulTables*>(cs.size()));
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      for (std::size_t ci = 0; ci < cs.size(); ++ci)
        seen[static_cast<std::size_t>(ti)][ci] = &f.tables_for(cs[ci]);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t ci = 0; ci < cs.size(); ++ci)
    for (int ti = 1; ti < kThreads; ++ti)
      EXPECT_EQ(seen[static_cast<std::size_t>(ti)][ci], seen[0][ci]);
}

}  // namespace
}  // namespace eccheck::gf
