// Randomized integration fuzzing: deterministic pseudo-random cluster
// shapes, codec settings, failure/corruption patterns — every recoverable
// scenario must restore bit-exact state, every unrecoverable one must fail
// cleanly (no exceptions, no wrong data).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/eccheck_engine.hpp"
#include "dnn/checkpoint_gen.hpp"

namespace eccheck {
namespace {

using cluster::ClusterConfig;
using cluster::VirtualCluster;

struct Scenario {
  int nodes, gpus, k, m;
  int gf_width;
  ec::KernelMode kernel;
  std::size_t packet;
  bool pipelined, tree, flush;
  std::vector<int> kills;
  int corruptions;
};

Scenario random_scenario(SplitMix64& rng) {
  Scenario s;
  // Valid shapes: k + m == nodes, W % k == 0.
  const std::vector<std::array<int, 4>> shapes = {
      {4, 1, 2, 2}, {4, 2, 2, 2}, {4, 2, 1, 3}, {3, 2, 2, 1}, {6, 1, 3, 3},
      {6, 1, 2, 4}, {6, 2, 4, 2}, {8, 1, 4, 4}, {5, 2, 2, 3}, {4, 3, 2, 2}};
  auto sh = shapes[rng.next_below(shapes.size())];
  s.nodes = sh[0];
  s.gpus = sh[1];
  s.k = sh[2];
  s.m = sh[3];
  const int widths[] = {4, 8, 8, 16};  // bias towards w=8
  s.gf_width = widths[rng.next_below(4)];
  s.kernel = rng.next_below(3) == 0 ? ec::KernelMode::kXorBitmatrix
                                    : ec::KernelMode::kGfTable;
  const std::size_t packets[] = {kib(4), kib(8), kib(16), kib(8) + 128};
  s.packet = packets[rng.next_below(4)];
  s.pipelined = rng.next_below(4) != 0;
  s.tree = rng.next_below(3) == 0;
  s.flush = rng.next_below(4) == 0;
  // 0..nodes-1 failures plus occasional corruption.
  const int fail_count = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(s.nodes)));
  std::vector<int> all(static_cast<std::size_t>(s.nodes));
  for (int i = 0; i < s.nodes; ++i) all[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < fail_count; ++i) {
    auto j = i + static_cast<int>(rng.next_below(
                     static_cast<std::uint64_t>(s.nodes - i)));
    std::swap(all[static_cast<std::size_t>(i)],
              all[static_cast<std::size_t>(j)]);
    s.kills.push_back(all[static_cast<std::size_t>(i)]);
  }
  s.corruptions = static_cast<int>(rng.next_below(2));
  return s;
}

TEST(Fuzz, RandomScenariosEitherRecoverExactlyOrFailCleanly) {
  SplitMix64 rng(0xecc);
  int recovered = 0, refused = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Scenario s = random_scenario(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": n=" +
                 std::to_string(s.nodes) + " g=" + std::to_string(s.gpus) +
                 " k=" + std::to_string(s.k) + " m=" + std::to_string(s.m) +
                 " w=" + std::to_string(s.gf_width) + " kills=" +
                 std::to_string(s.kills.size()) + " corrupt=" +
                 std::to_string(s.corruptions));

    ClusterConfig ccfg;
    ccfg.num_nodes = s.nodes;
    ccfg.gpus_per_node = s.gpus;
    VirtualCluster cluster(ccfg);

    dnn::CheckpointGenConfig gen;
    gen.model =
        dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1, s.nodes * s.gpus,
                        "fuzz");
    gen.model.vocab = 128;
    gen.parallelism = {1, s.nodes * s.gpus, 1};
    gen.seed = rng.next();
    auto shards = dnn::make_sharded_checkpoint(gen);
    std::vector<std::uint64_t> want;
    for (const auto& sd : shards) want.push_back(sd.digest());

    core::ECCheckConfig ec;
    ec.k = s.k;
    ec.m = s.m;
    ec.gf_width = s.gf_width;
    ec.kernel = s.kernel;
    // Packet size must satisfy the codec granularity.
    ec.packet_size = s.packet;
    const std::size_t gran =
        ec::CrsCodec(s.k, std::max(1, s.m), s.gf_width, s.kernel)
            .packet_granularity();
    if (ec.packet_size % gran != 0)
      ec.packet_size += gran - ec.packet_size % gran;
    ec.pipelined = s.pipelined;
    ec.tree_reduction = s.tree;
    ec.flush_to_remote = s.flush;
    core::ECCheckEngine engine(ec);

    ASSERT_NO_THROW(engine.save(cluster, shards, 7));

    // Inject corruption on a random surviving node's chunk.
    int erasures = static_cast<int>(s.kills.size());
    if (s.corruptions > 0) {
      int victim = -1;
      for (int n = 0; n < s.nodes; ++n) {
        if (std::find(s.kills.begin(), s.kills.end(), n) == s.kills.end()) {
          victim = n;
          break;
        }
      }
      if (victim >= 0) {
        auto plan = engine.plan_for(cluster);
        std::string key = "ec/7/row/" +
                          std::to_string(plan.generator_row_of_node(victim)) +
                          "/0/0";
        Buffer t = cluster.host(victim).get(key).clone();
        t.data()[0] ^= std::byte{1};
        cluster.host(victim).put(key, std::move(t));
        ++erasures;
      }
    }
    for (int n : s.kills) {
      cluster.kill(n);
      cluster.replace(n);
    }

    std::vector<dnn::StateDict> out;
    ckpt::LoadReport load;
    ASSERT_NO_THROW(load = engine.load(cluster, 7, out));

    const bool should_recover = s.flush || erasures <= s.m;
    if (should_recover) {
      ASSERT_TRUE(load.success) << load.detail;
      ASSERT_EQ(out.size(), want.size());
      for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i].digest(), want[i]) << "worker " << i;
      ++recovered;
    } else {
      ASSERT_FALSE(load.success);
      ++refused;
    }
  }
  // The mix should exercise both outcomes.
  EXPECT_GT(recovered, 5);
  EXPECT_GT(refused, 1);
}

}  // namespace
}  // namespace eccheck
