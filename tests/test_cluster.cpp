// VirtualCluster tests: stores, failure injection, fabric timing semantics.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"

namespace eccheck::cluster {
namespace {

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.gpus_per_node = 2;
  cfg.nic_bandwidth = 100.0;      // 100 B/s — easy arithmetic
  cfg.dtoh_bandwidth = 200.0;
  cfg.remote_storage_bandwidth = 10.0;
  cfg.host_memcpy_bandwidth = 400.0;
  cfg.serialize_bandwidth = 50.0;
  cfg.encode_bandwidth_per_thread = 25.0;
  cfg.encode_threads = 4;
  cfg.xor_bandwidth = 100.0;
  return cfg;
}

TEST(Store, PutGetTakeErase) {
  Store s;
  s.put("a", Buffer::copy_of(as_bytes_of(42)));
  EXPECT_TRUE(s.contains("a"));
  EXPECT_EQ(s.get("a").size(), sizeof(int));
  Buffer b = s.take("a");
  EXPECT_FALSE(s.contains("a"));
  EXPECT_EQ(b.size(), sizeof(int));
  EXPECT_THROW(s.get("a"), CheckFailure);
}

TEST(Store, PrefixQueryAndAccounting) {
  Store s;
  s.put("x/1", Buffer(10));
  s.put("x/2", Buffer(20));
  s.put("y/1", Buffer(30));
  auto keys = s.keys_with_prefix("x/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "x/1");
  EXPECT_EQ(s.total_bytes(), 60u);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
}

TEST(Cluster, KillWipesVolatileMemoryOnly) {
  VirtualCluster c(small_config());
  c.host(1).put("key", Buffer(8));
  c.remote().put("rkey", Buffer(8));
  c.kill(1);
  EXPECT_FALSE(c.alive(1));
  EXPECT_THROW(c.host(1), CheckFailure);
  EXPECT_TRUE(c.remote().contains("rkey"));  // remote storage persists
  c.replace(1);
  EXPECT_TRUE(c.alive(1));
  EXPECT_FALSE(c.host(1).contains("key"));  // fresh node is empty
}

TEST(Cluster, AliveNodesList) {
  VirtualCluster c(small_config());
  c.kill(0);
  c.kill(3);
  auto alive = c.alive_nodes();
  EXPECT_EQ(alive, (std::vector<int>{1, 2}));
}

TEST(Cluster, DtohChargesPerGpuEngine) {
  VirtualCluster c(small_config());
  // Two GPUs on node 0 copy in parallel; same GPU serialises.
  auto t1 = c.dtoh(0, 0, 400, {});
  auto t2 = c.dtoh(0, 1, 400, {});
  auto t3 = c.dtoh(0, 0, 200, {});
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(t1), 2.0);
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(t2), 2.0);
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(t3), 3.0);
}

TEST(Cluster, NetSendOccupiesTxAndRx) {
  VirtualCluster c(small_config());
  auto t1 = c.net_send(0, 1, 100, {});  // 1s
  // 0→2 waits for node 0's TX; 3→1 waits for node 1's RX.
  auto t2 = c.net_send(0, 2, 100, {});
  auto t3 = c.net_send(3, 1, 100, {});
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(t1), 1.0);
  EXPECT_DOUBLE_EQ(c.timeline().task(t2).start, 1.0);
  EXPECT_DOUBLE_EQ(c.timeline().task(t3).start, 1.0);
  // Disjoint pair 2→3 runs immediately.
  auto t4 = c.net_send(2, 3, 100, {});
  EXPECT_DOUBLE_EQ(c.timeline().task(t4).start, 0.0);
}

TEST(Cluster, SendToSelfRejected) {
  VirtualCluster c(small_config());
  EXPECT_THROW(c.net_send(1, 1, 10, {}), CheckFailure);
}

TEST(Cluster, RemoteStorageSharesAggregateBandwidth) {
  VirtualCluster c(small_config());
  // Two writers serialise on the shared 10 B/s storage link.
  auto t1 = c.remote_write(0, 100, {});
  auto t2 = c.remote_write(1, 100, {});
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(t1), 10.0);
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(t2), 20.0);
}

TEST(Cluster, CpuCostsFollowConfig) {
  VirtualCluster c(small_config());
  // encode: 4 threads × 25 B/s = 100 B/s.
  auto enc = c.cpu_code(0, 200, {});
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(enc), 2.0);
  auto ser = c.cpu_serialize(1, 100, {});
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(ser), 2.0);
  auto cp = c.host_copy(2, 400, {});
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(cp), 1.0);
  auto xr = c.cpu_xor(3, 300, {});
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(xr), 3.0);
}

TEST(Cluster, SizeScaleMultipliesVirtualBytes) {
  auto cfg = small_config();
  cfg.size_scale = 8.0;
  VirtualCluster c(cfg);
  auto t = c.net_send(0, 1, 100, {});  // 800 virtual bytes at 100 B/s
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(t), 8.0);
}

TEST(Cluster, SendBufferMovesBytes) {
  VirtualCluster c(small_config());
  Buffer b(64, Buffer::Init::kUninitialized);
  fill_random(b.span(), 3);
  c.host(0).put("src", b.clone());
  c.send_buffer(0, 2, "src", "dst", {});
  EXPECT_TRUE(c.host(2).contains("dst"));
  EXPECT_EQ(c.host(2).get("dst"), b);
  EXPECT_TRUE(c.host(0).contains("src"));  // sender keeps its copy
}

TEST(Cluster, RemoteRoundTripMovesBytes) {
  VirtualCluster c(small_config());
  Buffer b(32, Buffer::Init::kUninitialized);
  fill_random(b.span(), 5);
  c.host(1).put("k", b.clone());
  c.flush_to_remote(1, "k", "rk", {});
  EXPECT_TRUE(c.remote().contains("rk"));
  c.kill(1);
  c.replace(1);
  c.fetch_from_remote(1, "rk", "k2", {});
  EXPECT_EQ(c.host(1).get("k2"), b);
}

TEST(Cluster, ResetTimelineKeepsStoresAndCalendars) {
  VirtualCluster c(small_config());
  c.host(0).put("k", Buffer(8));
  c.set_nic_calendar(0, {{0.0, 1.0}});
  c.net_send(0, 1, 100, {});
  EXPECT_GT(c.timeline().makespan(), 0.0);
  c.reset_timeline();
  EXPECT_DOUBLE_EQ(c.timeline().makespan(), 0.0);
  EXPECT_TRUE(c.host(0).contains("k"));
  // Calendar still applies: idle-only send must start after the busy window.
  sim::TaskOptions idle;
  idle.idle_only = true;
  auto t = c.timeline().add_task("s", {c.nic_tx(0), c.nic_rx(1)}, 0.5, {},
                                 idle);
  EXPECT_DOUBLE_EQ(c.timeline().task(t).start, 1.0);
}

TEST(Cluster, IdleOnlySendAvoidsTrainingWindowsAndReportsNoInterference) {
  VirtualCluster c(small_config());
  c.set_nic_calendar(0, {{0.0, 2.0}, {3.0, 4.0}});
  auto idle_send = c.net_send(0, 1, 100, {}, /*idle_only=*/true);
  // 1s of transfer: gap [2,3) fits it exactly.
  EXPECT_DOUBLE_EQ(c.timeline().task(idle_send).start, 2.0);
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(idle_send), 3.0);
  EXPECT_DOUBLE_EQ(c.nic_interference(0), 0.0);

  c.reset_timeline();
  auto rude = c.net_send(0, 1, 100, {}, /*idle_only=*/false);
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(rude), 1.0);
  EXPECT_GT(c.nic_interference(0), 0.0);
}

TEST(Cluster, BarrierJoins) {
  VirtualCluster c(small_config());
  auto a = c.net_send(0, 1, 100, {});
  auto b = c.net_send(2, 3, 300, {});
  auto bar = c.barrier({a, b});
  EXPECT_DOUBLE_EQ(c.timeline().finish_time(bar), 3.0);
}

TEST(Cluster, WorldSizeAndValidation) {
  auto cfg = small_config();
  VirtualCluster c(cfg);
  EXPECT_EQ(c.world_size(), 8);
  EXPECT_THROW(c.host(7), CheckFailure);
  EXPECT_THROW(c.dtoh(0, 5, 10, {}), CheckFailure);
}

TEST(Cluster, KillAndReplaceGuardStateTransitions) {
  // A slot fails at most once per replace: kill() of a dead node and
  // replace() of an alive node are caller bookkeeping bugs, not no-ops.
  VirtualCluster c(small_config());
  EXPECT_EQ(c.alive_count(), 4);
  c.kill(2);
  EXPECT_EQ(c.alive_count(), 3);
  EXPECT_THROW(c.kill(2), CheckFailure);      // already dead
  EXPECT_THROW(c.replace(0), CheckFailure);   // still alive
  c.replace(2);
  EXPECT_EQ(c.alive_count(), 4);
  EXPECT_THROW(c.replace(2), CheckFailure);   // alive again
  c.kill(2);                                  // legal after replace
  EXPECT_FALSE(c.alive(2));
}

namespace {
/// Records every fabric op; optionally kills a node on the Nth call.
struct RecordingHook final : FaultHook {
  std::vector<FabricOp> ops;
  int kill_node = -1;
  std::size_t kill_on = 0;  // 0-based op index
  void on_fabric_op(VirtualCluster& cluster, const FabricOp& op) override {
    if (kill_node >= 0 && ops.size() == kill_on && cluster.alive(kill_node))
      cluster.kill(kill_node);
    ops.push_back(op);
  }
};
}  // namespace

TEST(Cluster, FaultHookSeesEveryByteMovingHelper) {
  VirtualCluster c(small_config());
  RecordingHook hook;
  c.set_fault_hook(&hook);
  c.dtoh(0, 1, 100, {});
  c.host_copy(1, 200, {});
  c.net_send(0, 3, 300, {});
  c.remote_write(2, 400, {});
  c.remote_read(3, 500, {});
  c.set_fault_hook(nullptr);
  c.dtoh(0, 0, 999, {});  // hook cleared: not recorded

  ASSERT_EQ(hook.ops.size(), 5u);
  EXPECT_EQ(hook.ops[0].kind, FabricOp::Kind::kDtoh);
  EXPECT_EQ(hook.ops[0].src, 0);
  EXPECT_EQ(hook.ops[0].bytes, 100u);
  EXPECT_EQ(hook.ops[1].kind, FabricOp::Kind::kHostCopy);
  EXPECT_EQ(hook.ops[2].kind, FabricOp::Kind::kNetSend);
  EXPECT_EQ(hook.ops[2].src, 0);
  EXPECT_EQ(hook.ops[2].dst, 3);
  EXPECT_EQ(hook.ops[3].kind, FabricOp::Kind::kRemoteWrite);
  EXPECT_EQ(hook.ops[4].kind, FabricOp::Kind::kRemoteRead);
  EXPECT_STREQ(fabric_op_kind_name(hook.ops[4].kind), "remote_read");
}

TEST(Cluster, MidSendKillAbortsTransferWithoutDelivery) {
  // The hook fires before bytes land: killing the source inside
  // send_buffer must abort the copy (CheckFailure) and leave the
  // destination without the key — in-flight bytes vanish.
  VirtualCluster c(small_config());
  Buffer payload(64);
  fill_random(payload.span(), 7);
  c.host(0).put("k", std::move(payload));

  RecordingHook hook;
  hook.kill_node = 0;
  hook.kill_on = 0;  // first fabric op = the net_send inside send_buffer
  c.set_fault_hook(&hook);
  EXPECT_THROW(c.send_buffer(0, 1, "k", "k", {}), CheckFailure);
  c.set_fault_hook(nullptr);
  EXPECT_FALSE(c.alive(0));
  c.replace(0);
  EXPECT_FALSE(c.host(1).contains("k"));
}

TEST(Cluster, MidFlushKillAbortsRemoteWrite) {
  VirtualCluster c(small_config());
  c.host(2).put("k", Buffer(32));
  RecordingHook hook;
  hook.kill_node = 2;
  hook.kill_on = 0;
  c.set_fault_hook(&hook);
  EXPECT_THROW(c.flush_to_remote(2, "k", "rk", {}), CheckFailure);
  c.set_fault_hook(nullptr);
  EXPECT_FALSE(c.remote().contains("rk"));
}

TEST(Cluster, FaultHookIsNotReentered) {
  // A hook whose kill path triggers fabric activity must not recurse.
  struct Reentrant final : FaultHook {
    int calls = 0;
    void on_fabric_op(VirtualCluster& cluster, const FabricOp&) override {
      ++calls;
      cluster.host_copy(1, 8, {});  // would recurse without the guard
    }
  } hook;
  VirtualCluster c(small_config());
  c.set_fault_hook(&hook);
  c.host_copy(0, 16, {});
  c.set_fault_hook(nullptr);
  EXPECT_EQ(hook.calls, 1);
}

}  // namespace
}  // namespace eccheck::cluster
