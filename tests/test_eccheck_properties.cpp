// Property sweeps over the ECCheck engine: exhaustive failure subsets for
// several cluster shapes, kernel/width variants, idle scheduling, pipeline
// ablation, memory accounting, and multi-version behaviour.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "ckpt/base_gemini.hpp"
#include "core/eccheck_engine.hpp"
#include "dnn/checkpoint_gen.hpp"
#include "trainsim/train_profile.hpp"

namespace eccheck {
namespace {

using cluster::ClusterConfig;
using cluster::VirtualCluster;

ClusterConfig cluster_config(int nodes, int gpus) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.gpus_per_node = gpus;
  return cfg;
}

/// Tiny shards: one pipeline stage per worker, hidden 64, small vocab.
std::vector<dnn::StateDict> make_shards(int world, std::uint64_t seed = 5) {
  dnn::CheckpointGenConfig cfg;
  cfg.model = dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1, world, "prop");
  cfg.model.vocab = 256;
  cfg.parallelism = {1, world, 1};
  cfg.seed = seed;
  return dnn::make_sharded_checkpoint(cfg);
}

core::ECCheckConfig ec_config(int k, int m, std::size_t packet = kib(8)) {
  core::ECCheckConfig cfg;
  cfg.k = k;
  cfg.m = m;
  cfg.packet_size = packet;
  return cfg;
}

std::vector<std::uint64_t> digests_of(const std::vector<dnn::StateDict>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& sd : v) out.push_back(sd.digest());
  return out;
}

void for_each_subset(int n, int k,
                     const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> idx(static_cast<std::size_t>(k));
  std::iota(idx.begin(), idx.end(), 0);
  for (;;) {
    fn(idx);
    int i = k - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j)
      idx[static_cast<std::size_t>(j)] =
          idx[static_cast<std::size_t>(j - 1)] + 1;
  }
}

struct Shape {
  int nodes, gpus, k, m;
};

class ExhaustiveFailures : public ::testing::TestWithParam<Shape> {};

TEST_P(ExhaustiveFailures, EveryFailurePatternUpToMRecovers) {
  const auto [nodes, gpus, k, m] = GetParam();
  auto shards = make_shards(nodes * gpus);
  auto want = digests_of(shards);

  for (int fail_count = 1; fail_count <= m; ++fail_count) {
    for_each_subset(nodes, fail_count, [&](const std::vector<int>& victims) {
      VirtualCluster cluster(cluster_config(nodes, gpus));
      core::ECCheckEngine engine(ec_config(k, m));
      engine.save(cluster, shards, 1);
      for (int v : victims) {
        cluster.kill(v);
        cluster.replace(v);
      }
      std::vector<dnn::StateDict> out;
      auto load = engine.load(cluster, 1, out);
      ASSERT_TRUE(load.success) << "pattern size " << fail_count << ": "
                                << load.detail;
      ASSERT_EQ(out.size(), want.size());
      for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i].digest(), want[i]) << "worker " << i;
    });
  }
}

TEST_P(ExhaustiveFailures, EveryPatternBeyondMFailsWithoutRemote) {
  const auto [nodes, gpus, k, m] = GetParam();
  if (m + 1 > nodes) return;
  auto shards = make_shards(nodes * gpus);

  for_each_subset(nodes, m + 1, [&](const std::vector<int>& victims) {
    VirtualCluster cluster(cluster_config(nodes, gpus));
    core::ECCheckEngine engine(ec_config(k, m));
    engine.save(cluster, shards, 1);
    for (int v : victims) {
      cluster.kill(v);
      cluster.replace(v);
    }
    std::vector<dnn::StateDict> out;
    EXPECT_FALSE(engine.load(cluster, 1, out).success);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExhaustiveFailures,
    ::testing::Values(Shape{4, 1, 2, 2}, Shape{4, 2, 2, 2}, Shape{3, 2, 2, 1},
                      Shape{6, 1, 3, 3}, Shape{6, 1, 2, 4}, Shape{4, 3, 2, 2},
                      Shape{6, 2, 4, 2}),
    [](const auto& info) {
      const auto& s = info.param;
      return "n" + std::to_string(s.nodes) + "g" + std::to_string(s.gpus) +
             "k" + std::to_string(s.k) + "m" + std::to_string(s.m);
    });

TEST(ECCheckProperties, KernelAndWidthVariantsAreBitExact) {
  auto shards = make_shards(4);
  auto want = digests_of(shards);
  struct Variant {
    int w;
    ec::KernelMode mode;
  };
  for (Variant v : {Variant{8, ec::KernelMode::kGfTable},
                    Variant{8, ec::KernelMode::kXorBitmatrix},
                    Variant{16, ec::KernelMode::kGfTable},
                    Variant{4, ec::KernelMode::kGfTable}}) {
    VirtualCluster cluster(cluster_config(4, 1));
    auto cfg = ec_config(2, 2);
    cfg.gf_width = v.w;
    cfg.kernel = v.mode;
    core::ECCheckEngine engine(cfg);
    engine.save(cluster, shards, 1);
    cluster.kill(0);
    cluster.kill(1);
    cluster.replace(0);
    cluster.replace(1);
    std::vector<dnn::StateDict> out;
    auto load = engine.load(cluster, 1, out);
    ASSERT_TRUE(load.success) << "w=" << v.w;
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i].digest(), want[i]) << "w=" << v.w << " worker " << i;
  }
}

TEST(ECCheckProperties, IdleSchedulingEliminatesInterference) {
  auto shards = make_shards(8);
  trainsim::Workload w;
  w.microbatches = 4;
  w.forward_compute = 5e-4;
  w.activation_bytes = mib(1);
  auto prof = trainsim::simulate_iteration(w, 4, gbps(100));

  auto run = [&](bool idle_aware) {
    VirtualCluster cluster(cluster_config(4, 2));
    for (int n = 0; n < 4; ++n)
      cluster.set_nic_calendar(n, prof.tiled(n, 50));
    auto cfg = ec_config(2, 2, kib(16));
    cfg.idle_aware_comm = idle_aware;
    core::ECCheckEngine engine(cfg);
    auto rep = engine.save(cluster, shards, 1);
    Seconds interference = 0;
    for (int n = 0; n < 4; ++n) interference += cluster.nic_interference(n);
    return std::pair<Seconds, Seconds>(interference, rep.total_time);
  };

  auto [intf_idle, total_idle] = run(true);
  auto [intf_rude, total_rude] = run(false);
  EXPECT_DOUBLE_EQ(intf_idle, 0.0);
  EXPECT_GT(intf_rude, 0.0);
  // Totals stay comparable — yielding to training costs at most a modest
  // slowdown (list-scheduling anomalies can even flip the sign slightly,
  // so no strict ordering is asserted).
  EXPECT_LT(total_idle, total_rude * 3);
  EXPECT_LT(total_rude, total_idle * 3);
}

TEST(ECCheckProperties, PipelineAblationSlowsCheckpoint) {
  auto shards = make_shards(8);
  auto run = [&](bool pipelined) {
    VirtualCluster cluster(cluster_config(4, 2));
    auto cfg = ec_config(2, 2, kib(16));
    cfg.pipelined = pipelined;
    core::ECCheckEngine engine(cfg);
    return engine.save(cluster, shards, 1).total_time;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(ECCheckProperties, PipelineAblationStillRecovers) {
  auto shards = make_shards(4);
  auto want = digests_of(shards);
  VirtualCluster cluster(cluster_config(4, 1));
  auto cfg = ec_config(2, 2);
  cfg.pipelined = false;
  core::ECCheckEngine engine(cfg);
  engine.save(cluster, shards, 1);
  cluster.kill(2);
  cluster.kill(3);
  cluster.replace(2);
  cluster.replace(3);
  std::vector<dnn::StateDict> out;
  ASSERT_TRUE(engine.load(cluster, 1, out).success);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].digest(), want[i]);
}

TEST(ECCheckProperties, HostMemoryMatchesRedundancyAccounting) {
  // With k = m = n/2 each node stores one chunk = (W/k)·B·P bytes — the same
  // 2× redundancy as base3's replica scheme (Fig. 2), plus tiny metadata.
  auto shards = make_shards(8);
  VirtualCluster cluster(cluster_config(4, 2));
  core::ECCheckEngine engine(ec_config(2, 2));
  engine.save(cluster, shards, 1);

  std::size_t max_shard = 0;
  for (const auto& sd : shards)
    max_shard = std::max(max_shard, sd.tensor_bytes());
  const std::size_t P = engine.config().packet_size;
  const std::size_t B = core::packets_needed(max_shard, P);
  const std::size_t chunk_bytes = 4 /* workers per chunk */ * B * P;

  for (int n = 0; n < 4; ++n) {
    std::size_t total = cluster.host(n).total_bytes();
    EXPECT_GE(total, chunk_bytes);
    EXPECT_LT(total, chunk_bytes + chunk_bytes / 4)
        << "node " << n << " stores more than chunk + metadata";
  }
}

TEST(ECCheckProperties, MultipleVersionsCoexist) {
  auto v1 = make_shards(4, 100);
  auto v2 = make_shards(4, 200);
  VirtualCluster cluster(cluster_config(4, 1));
  core::ECCheckEngine engine(ec_config(2, 2));
  engine.save(cluster, v1, 1);
  engine.save(cluster, v2, 2);

  cluster.kill(1);
  cluster.replace(1);
  std::vector<dnn::StateDict> out;
  ASSERT_TRUE(engine.load(cluster, 2, out).success);
  EXPECT_EQ(digests_of(out), digests_of(v2));
  ASSERT_TRUE(engine.load(cluster, 1, out).success);
  EXPECT_EQ(digests_of(out), digests_of(v1));
}

TEST(ECCheckProperties, PlanIsDeterministic) {
  VirtualCluster cluster(cluster_config(4, 2));
  core::ECCheckEngine engine(ec_config(2, 2));
  auto p1 = engine.plan_for(cluster);
  auto p2 = engine.plan_for(cluster);
  EXPECT_EQ(p1.data_nodes, p2.data_nodes);
  EXPECT_EQ(p1.parity_nodes, p2.parity_nodes);
  ASSERT_EQ(p1.reductions.size(), p2.reductions.size());
  for (std::size_t i = 0; i < p1.reductions.size(); ++i)
    EXPECT_EQ(p1.reductions[i].target_worker, p2.reductions[i].target_worker);
}

TEST(ECCheckProperties, NetworkVolumeFollowsMsWAcrossShapes) {
  for (Shape s : {Shape{4, 1, 2, 2}, Shape{4, 2, 2, 2}, Shape{6, 1, 3, 3},
                  Shape{6, 2, 4, 2}}) {
    auto shards = make_shards(s.nodes * s.gpus);
    VirtualCluster cluster(cluster_config(s.nodes, s.gpus));
    core::ECCheckEngine engine(ec_config(s.k, s.m));
    auto rep = engine.save(cluster, shards, 1);

    std::size_t max_shard = 0;
    for (const auto& sd : shards)
      max_shard = std::max(max_shard, sd.tensor_bytes());
    const std::size_t P = engine.config().packet_size;
    const double padded =
        static_cast<double>(core::packets_needed(max_shard, P) * P);
    const double msW = s.m * padded * s.nodes * s.gpus;
    // Nominal law is an upper bound; metadata adds a sliver, and chunk/node
    // alignment can shave data-relocation traffic below the bound.
    EXPECT_LT(static_cast<double>(rep.network_bytes), msW * 1.05)
        << "n=" << s.nodes << " g=" << s.gpus << " k=" << s.k;
    EXPECT_GT(static_cast<double>(rep.network_bytes), msW * 0.5);
  }
}

TEST(ECCheckProperties, GeminiEquivalentRedundancyWeakerFaultTolerance) {
  // The Fig. 2 pitch executed end-to-end: same memory budget, strictly more
  // recoverable patterns for erasure coding.
  auto shards = make_shards(4);
  int gemini_ok = 0, eccheck_ok = 0, patterns = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      ++patterns;
      {
        VirtualCluster cluster(cluster_config(4, 1));
        ckpt::GeminiReplicationEngine engine(2);
        engine.save(cluster, shards, 1);
        cluster.kill(a);
        cluster.kill(b);
        cluster.replace(a);
        cluster.replace(b);
        std::vector<dnn::StateDict> out;
        if (engine.load(cluster, 1, out).success) ++gemini_ok;
      }
      {
        VirtualCluster cluster(cluster_config(4, 1));
        core::ECCheckEngine engine(ec_config(2, 2));
        engine.save(cluster, shards, 1);
        cluster.kill(a);
        cluster.kill(b);
        cluster.replace(a);
        cluster.replace(b);
        std::vector<dnn::StateDict> out;
        if (engine.load(cluster, 1, out).success) ++eccheck_ok;
      }
    }
  }
  EXPECT_EQ(patterns, 6);
  EXPECT_EQ(eccheck_ok, 6);   // any 2 of 4
  EXPECT_EQ(gemini_ok, 4);    // loses when a whole group dies (2 patterns)
}


TEST(ECCheckProperties, FsdpWorkloadRoundTrip) {
  // §III-A: ECCheck targets exactly the setups without full replicas —
  // FSDP shards every tensor across dp ranks.
  dnn::CheckpointGenConfig gen;
  gen.model = dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1, 4, "fsdp");
  gen.model.vocab = 256;
  gen.parallelism = {1, 4, 2};  // world = 8
  gen.fsdp = true;
  auto shards = dnn::make_sharded_checkpoint(gen);
  auto want = digests_of(shards);

  VirtualCluster cluster(cluster_config(4, 2));
  core::ECCheckEngine engine(ec_config(2, 2));
  engine.save(cluster, shards, 1);
  cluster.kill(1);
  cluster.kill(2);
  cluster.replace(1);
  cluster.replace(2);
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_EQ(digests_of(out), want);
}


TEST(ECCheckProperties, PureStripingWithMZero) {
  // m = 0 degenerates to striping without redundancy: saves and failure-free
  // loads work, any failure is unrecoverable.
  auto shards = make_shards(4);
  auto want = digests_of(shards);
  VirtualCluster cluster(cluster_config(4, 1));
  core::ECCheckEngine engine(ec_config(4, 0));
  auto save = engine.save(cluster, shards, 1);
  EXPECT_GT(save.total_time, 0.0);

  std::vector<dnn::StateDict> out;
  auto ok = engine.load(cluster, 1, out);
  ASSERT_TRUE(ok.success) << ok.detail;
  EXPECT_EQ(digests_of(out), want);

  cluster.kill(2);
  cluster.replace(2);
  EXPECT_FALSE(engine.load(cluster, 1, out).success);
}

TEST(ECCheckProperties, UnevenShardSizesPadToUniformPackets) {
  // Workers with very different shard sizes (stage-0 embeddings) still
  // recover exactly — padding to the max packet count is transparent.
  dnn::CheckpointGenConfig gen;
  gen.model = dnn::make_model(dnn::ModelFamily::kGPT2, 64, 1, 4, "uneven");
  gen.model.vocab = 6000;  // stage 0 dwarfs the other stages
  gen.parallelism = {1, 4, 1};
  gen.seed = 3;
  auto shards = dnn::make_sharded_checkpoint(gen);
  EXPECT_GT(shards[0].tensor_bytes(), 2 * shards[2].tensor_bytes());
  auto want = digests_of(shards);

  VirtualCluster cluster(cluster_config(4, 1));
  core::ECCheckEngine engine(ec_config(2, 2, kib(32)));
  engine.save(cluster, shards, 1);
  cluster.kill(0);
  cluster.kill(2);
  cluster.replace(0);
  cluster.replace(2);
  std::vector<dnn::StateDict> out;
  auto load = engine.load(cluster, 1, out);
  ASSERT_TRUE(load.success) << load.detail;
  EXPECT_EQ(digests_of(out), want);
}

}  // namespace
}  // namespace eccheck
