// Acceptance gate for the socket-level chaos campaign: fork a real
// coordinator + worker fleet, run a seeded schedule with actual SIGKILL,
// SIGSTOP (gray failure) and corrupted frames, and require that the
// recovery-invariant oracle saw nothing — every declared death auto-repaired
// to full redundancy, loads bit-exact throughout, corpses fenced on wake.
//
// The seed is fixed so a failure here replays exactly with
//   chaos_cli --mode sockets --seed 11 --campaigns 1 --events 8
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "chaos/socket_campaign.hpp"

namespace eccheck {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/eccheck-chaostest-XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(SocketChaos, SeededCampaignSelfHealsWithZeroViolations) {
  TempDir dir;
  chaos::SocketCampaignConfig cfg;
  cfg.events = 8;
  cfg.seed = 11;
  cfg.dir = dir.path;
  chaos::SocketCampaign campaign(cfg);
  const chaos::SocketCampaignSummary& s = campaign.run();

  std::string all;
  for (const std::string& m : s.violation_messages) all += m + "\n";
  EXPECT_EQ(s.violations, 0u) << all;

  // The forced tail guarantees the campaign exercised every failure mode
  // even on a seed whose random schedule skipped one.
  EXPECT_GE(s.sigkills, 1u);
  EXPECT_GE(s.sigstops, 1u);
  EXPECT_GE(s.corrupts, 1u);
  EXPECT_GE(s.repairs, 1u);
  EXPECT_GE(s.fenced_exits, 1u);
  EXPECT_GE(s.saves_ok, 1u);
  EXPECT_GE(s.loads_ok, 1u);
  EXPECT_EQ(s.to_json().find("\"violations\":0") == std::string::npos, false)
      << s.to_json();
}

// Same oracle, wide ack window: the forced corrupt-frame now lands inside
// an open window of pipelined frames, so the CRC failure surfaces at a
// deferred reconciliation point (flush/barrier) instead of on the very next
// ack — the campaign must still self-heal with zero violations.
TEST(SocketChaos, WideWindowCampaignSurfacesCorruptFrameInOpenWindow) {
  TempDir dir;
  chaos::SocketCampaignConfig cfg;
  cfg.events = 8;
  cfg.seed = 23;
  cfg.dir = dir.path;
  cfg.ack_window = 16;
  chaos::SocketCampaign campaign(cfg);
  const chaos::SocketCampaignSummary& s = campaign.run();

  std::string all;
  for (const std::string& m : s.violation_messages) all += m + "\n";
  EXPECT_EQ(s.violations, 0u) << all;
  EXPECT_GE(s.corrupts, 1u);
  EXPECT_GE(s.saves_ok, 1u);
  EXPECT_GE(s.loads_ok, 1u);
}

}  // namespace
}  // namespace eccheck
