// Differential suite for the real-socket transport: every fabric helper is
// exercised over net::SocketTransport (thread-per-rank, Unix-domain
// loopback) and over cluster::VirtualFabric, and the resulting per-rank
// stores must be byte-identical — the central contract of cluster::Fabric.
// Also covers the peer-death contract (CheckFailure within the timeout
// budget, never a hang), pooled-connection replacement via reset_peer, the
// ephemeral-port TCP handshake, and the CRC-trailered persistent remote
// store.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <filesystem>
#include <fstream>
#include <functional>
#include <latch>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/fabric.hpp"
#include "common/crc64.hpp"
#include "common/rng.hpp"
#include "core/fabric_protocol.hpp"
#include "net/transport.hpp"

namespace eccheck {
namespace {

namespace fs = std::filesystem;

/// Scratch dir for sockets + remote files, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/eccheck-nettest-XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::vector<net::Endpoint> uds_endpoints(const TempDir& dir, int n) {
  std::vector<net::Endpoint> eps;
  for (int r = 0; r < n; ++r)
    eps.push_back(
        net::Endpoint::uds(dir.path + "/rank" + std::to_string(r) + ".sock"));
  return eps;
}

net::TransportOptions fast_opts(const TempDir& dir) {
  net::TransportOptions o;
  o.connect_timeout = net::Millis(500);
  o.connect_retries = 20;  // absorb thread start-up skew
  o.backoff_base = net::Millis(2);
  o.backoff_max = net::Millis(50);
  o.io_timeout = net::Millis(5000);
  o.remote_dir = dir.path + "/remote";
  return o;
}

using RankBody = std::function<void(int rank)>;

/// Run `body(rank)` on one thread per rank; rethrow the first failure.
void run_ranks(int n, const RankBody& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

using StoreImage = std::map<std::string, Buffer>;

StoreImage snapshot(cluster::Store& s) {
  StoreImage img;
  for (const std::string& key : s.keys_with_prefix(""))
    img.emplace(key, s.get(key).clone());
  return img;
}

void expect_identical(const StoreImage& socket_img, const StoreImage& ref_img,
                      int rank) {
  ASSERT_EQ(socket_img.size(), ref_img.size()) << "rank " << rank;
  auto a = socket_img.begin();
  auto b = ref_img.begin();
  for (; a != socket_img.end(); ++a, ++b) {
    EXPECT_EQ(a->first, b->first) << "rank " << rank;
    EXPECT_TRUE(a->second == b->second)
        << "rank " << rank << " key '" << a->first << "' differs";
  }
}

/// The fabric workout used for the differential comparison: every helper,
/// odd sizes included, expressed purely SPMD against cluster::Fabric.
void exercise_fabric(cluster::Fabric& f, int world) {
  std::vector<int> all;
  for (int i = 0; i < world; ++i) all.push_back(i);

  // Seed every rank with deterministic blobs (odd ring size on purpose).
  for (int n : all) {
    if (!f.drives(n)) continue;
    Buffer mine(1021, Buffer::Init::kUninitialized);
    fill_random(mine.span(), 0xABC0 + static_cast<std::uint64_t>(n));
    f.store(n).put("mine/" + std::to_string(n), std::move(mine));
    Buffer ring(397, Buffer::Init::kUninitialized);
    fill_random(ring.span(), 0x5176 + static_cast<std::uint64_t>(n));
    f.store(n).put("ring", std::move(ring));
  }
  if (f.drives(0)) {
    Buffer root(777, Buffer::Init::kUninitialized);
    fill_random(root.span(), 0xB0CA57);
    f.store(0).put("root", std::move(root));
  }

  f.broadcast(all, 0, "root");
  f.all_gather(all, [](int n) { return "mine/" + std::to_string(n); });
  f.ring_all_reduce_xor(all, "ring");
  f.send_buffer(1, 2, "mine/1", "copied");
  f.net_send(2, 3, 4096, "probe");  // pure traffic, no store effect
  f.barrier(all);
}

TEST(SocketTransport, DifferentialCollectivesMatchVirtualCluster) {
  constexpr int kWorld = 4;
  TempDir dir;
  auto eps = uds_endpoints(dir, kWorld);
  std::vector<StoreImage> socket_imgs(kWorld);

  run_ranks(kWorld, [&](int rank) {
    net::SocketTransport fabric(rank, eps, fast_opts(dir));
    exercise_fabric(fabric, kWorld);
    socket_imgs[static_cast<std::size_t>(rank)] = snapshot(fabric.store(rank));
  });

  cluster::ClusterConfig cfg;
  cfg.num_nodes = kWorld;
  cfg.gpus_per_node = 1;
  cluster::VirtualCluster vc(cfg);
  cluster::VirtualFabric ref(vc);
  exercise_fabric(ref, kWorld);

  for (int r = 0; r < kWorld; ++r)
    expect_identical(socket_imgs[static_cast<std::size_t>(r)],
                     snapshot(vc.host(r)), r);
}

TEST(SocketTransport, StripeCycleMatchesReferenceAfterPeerReplacement) {
  core::FabricStripeConfig scfg;
  scfg.k = 3;
  scfg.m = 2;
  scfg.chunk_bytes = 8 * 1024;
  scfg.seed = 42;
  const int world = scfg.total();
  const std::vector<int> replaced = {1, 3};  // one data, one parity rank

  TempDir dir;
  auto eps = uds_endpoints(dir, world);
  std::vector<StoreImage> socket_imgs(static_cast<std::size_t>(world));
  std::latch encoded(world), rebuilt(world);

  run_ranks(world, [&](int rank) {
    auto fabric = std::make_unique<net::SocketTransport>(rank, eps,
                                                         fast_opts(dir));
    core::stripe_encode(*fabric, scfg);
    encoded.arrive_and_wait();
    const bool is_replaced =
        std::find(replaced.begin(), replaced.end(), rank) != replaced.end();
    if (is_replaced) {
      // Die and come back: a fresh empty process on the same endpoint.
      fabric.reset();
      fabric = std::make_unique<net::SocketTransport>(rank, eps,
                                                      fast_opts(dir));
    } else {
      for (int dead : replaced) fabric->reset_peer(dead);
    }
    rebuilt.arrive_and_wait();
    core::stripe_recover(*fabric, scfg, replaced);
    socket_imgs[static_cast<std::size_t>(rank)] =
        snapshot(fabric->store(rank));
  });

  // Reference run: same protocol, same kills, over the simulator.
  cluster::ClusterConfig cfg;
  cfg.num_nodes = world;
  cfg.gpus_per_node = 1;
  cluster::VirtualCluster vc(cfg);
  cluster::VirtualFabric ref(vc);
  core::stripe_encode(ref, scfg);
  for (int r : replaced) vc.kill(r);
  for (int r : replaced) vc.replace(r);
  core::stripe_recover(ref, scfg, replaced);

  for (int r = 0; r < world; ++r) {
    expect_identical(socket_imgs[static_cast<std::size_t>(r)],
                     snapshot(vc.host(r)), r);
    EXPECT_TRUE(socket_imgs[static_cast<std::size_t>(r)].at(
                    core::stripe_chunk_key(r)) ==
                core::stripe_expected_chunk(scfg, r))
        << "rank " << r << " chunk differs from the closed-form expectation";
  }
}

TEST(SocketTransport, AbsentPeerFailsWithinRetryBudgetNotHang) {
  TempDir dir;
  auto eps = uds_endpoints(dir, 2);
  net::TransportOptions o = fast_opts(dir);
  o.connect_timeout = net::Millis(100);
  o.connect_retries = 2;
  o.backoff_base = net::Millis(5);
  o.backoff_max = net::Millis(20);
  o.io_timeout = net::Millis(300);
  net::SocketTransport fabric(0, eps, o);
  fabric.store(0).put("blob", Buffer(64, Buffer::Init::kZeroed));

  // Sender side: rank 1 never bound its endpoint → connect retries exhaust.
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(fabric.send_buffer(0, 1, "blob", "blob"), CheckFailure);
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(3))
      << "connect retry budget did not bound the failure";

  // Receiver side: nobody ever connects → accept deadline.
  t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(fabric.send_buffer(1, 0, "blob", "blob"), CheckFailure);
  elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(3))
      << "accept deadline did not bound the failure";
}

TEST(SocketTransport, ShutdownPeerSurfacesCheckFailureMidSequence) {
  TempDir dir;
  auto eps = uds_endpoints(dir, 2);
  std::latch first_done(2);

  run_ranks(2, [&](int rank) {
    net::TransportOptions o = fast_opts(dir);
    o.io_timeout = net::Millis(2000);
    o.connect_timeout = net::Millis(200);
    o.connect_retries = 4;
    net::SocketTransport fabric(rank, eps, o);
    if (fabric.drives(0))
      fabric.store(0).put("blob", Buffer(4096, Buffer::Init::kZeroed));
    fabric.send_buffer(0, 1, "blob", "blob");  // first transfer succeeds
    first_done.arrive_and_wait();
    if (rank == 1) {
      fabric.shutdown();  // orderly peer death between collectives
      return;
    }
    auto t0 = std::chrono::steady_clock::now();
    // With windowed acks a small frame can leave the sender before the dead
    // peer is noticed; the deferred failure is guaranteed to surface as a
    // typed CheckFailure by the next reconciliation point (flush_acks /
    // barrier), still bounded by the io timeout.
    EXPECT_THROW(
        {
          fabric.send_buffer(0, 1, "blob", "blob2");
          fabric.flush_acks(1);
        },
        CheckFailure);
    EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5))
        << "dead peer stalled past the io timeout";
  });
}

TEST(SocketTransport, TcpEphemeralPortsRoundTrip) {
  TempDir dir;
  // Bind both listeners on port 0, then exchange the real ports "out of
  // band" (here: shared memory) before any traffic — the documented
  // set_peers() handshake.
  std::vector<net::Endpoint> placeholder = {
      net::Endpoint::tcp("127.0.0.1", 0), net::Endpoint::tcp("127.0.0.1", 0)};
  net::SocketTransport t0(0, placeholder, fast_opts(dir));
  net::SocketTransport t1(1, placeholder, fast_opts(dir));
  std::vector<net::Endpoint> real = {t0.listen_endpoint(),
                                     t1.listen_endpoint()};
  EXPECT_NE(real[0].port, 0);
  EXPECT_NE(real[1].port, 0);
  t0.set_peers(real);
  t1.set_peers(real);

  Buffer blob(12345, Buffer::Init::kUninitialized);
  fill_random(blob.span(), 7);
  t0.store(0).put("blob", blob.clone());

  std::thread sender([&] { t0.send_buffer(0, 1, "blob", "landed"); });
  t1.send_buffer(0, 1, "blob", "landed");
  sender.join();
  EXPECT_TRUE(t1.store(1).get("landed") == blob);
  EXPECT_EQ(t0.fabric_name(), "socket[tcp]");
}

TEST(SocketTransport, RemoteStoreSurvivesTransportAndDetectsCorruption) {
  TempDir dir;
  auto eps = uds_endpoints(dir, 1);
  Buffer blob(3000, Buffer::Init::kUninitialized);
  fill_random(blob.span(), 99);

  {
    net::SocketTransport fabric(0, eps, fast_opts(dir));
    fabric.store(0).put("blob", blob.clone());
    fabric.remote_write(0, "blob", "saved/blob");
  }  // the worker process "dies" — remote files must survive it

  {
    net::SocketTransport fabric(0, eps, fast_opts(dir));
    fabric.remote_read(0, "saved/blob", "restored");
    EXPECT_TRUE(fabric.store(0).get("restored") == blob);
  }

  // Flip one payload byte on disk: the CRC trailer must reject the read.
  std::string path;
  for (const auto& entry : fs::directory_iterator(dir.path + "/remote"))
    path = entry.path().string();
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24 + 100);  // past the [magic,len,crc] header
    char byte = 0;
    f.seekg(24 + 100);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x1);
    f.seekp(24 + 100);
    f.write(&byte, 1);
  }
  {
    net::SocketTransport fabric(0, eps, fast_opts(dir));
    EXPECT_THROW(fabric.remote_read(0, "saved/blob", "restored2"),
                 CheckFailure);
  }
}

// ---- satellite regressions -------------------------------------------------

// Malformed endpoint specs used to escape as std::invalid_argument /
// std::out_of_range from the unguarded std::stoul (or wrap silently for
// huge ports); they must all surface as the repo-wide CheckFailure.
TEST(SocketTransport, EndpointParseValidatesSpecsStrictly) {
  const net::Endpoint u = net::Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, net::Endpoint::Kind::kUds);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  const net::Endpoint t = net::Endpoint::parse("tcp:127.0.0.1:8080");
  EXPECT_EQ(t.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 8080);
  EXPECT_EQ(net::Endpoint::parse(t.to_string()).to_string(), t.to_string());
  EXPECT_EQ(net::Endpoint::parse("tcp:localhost:0").port, 0);  // ephemeral

  for (const char* bad : {
           "",                   // no scheme
           "http://x:1",         // unknown scheme
           "unix:",              // empty UDS path
           "tcp:host",           // no port
           "tcp::123",           // empty host
           "tcp:h:",             // empty port
           "tcp:h:abc",          // was std::invalid_argument
           "tcp:h:1e4",          // stoul would stop at 'e' and accept 1
           "tcp:h:-1",           // sign must not sneak through
           "tcp:h: 80",          // embedded whitespace
           "tcp:h:70000",        // > 65535
           "tcp:h:4294967377",   // was a silent uint16 wrap to port 81
           "tcp:h:999999999999999999999999",  // was std::out_of_range
       }) {
    EXPECT_THROW(net::Endpoint::parse(bad), CheckFailure) << bad;
  }
}

// TCP_NODELAY must be applied on *accepted* connections too (the CRC-echo
// ack a receiver sends back must not sit behind Nagle), and the
// tcp_nodelay=false A/B-benchmark option must reach both directions.
TEST(SocketTransport, TcpNodelayAppliedOnBothConnectedAndAcceptedSockets) {
  for (const bool nodelay : {true, false}) {
    TempDir dir;
    net::TransportOptions opts = fast_opts(dir);
    opts.tcp_nodelay = nodelay;
    std::vector<net::Endpoint> placeholders(
        2, net::Endpoint::tcp("127.0.0.1", 0));
    std::vector<std::unique_ptr<net::SocketTransport>> t;
    for (int r = 0; r < 2; ++r)
      t.push_back(std::make_unique<net::SocketTransport>(r, placeholders,
                                                         opts));
    std::vector<net::Endpoint> real;
    for (int r = 0; r < 2; ++r) real.push_back(t[r]->listen_endpoint());
    for (int r = 0; r < 2; ++r) t[r]->set_peers(real);

    // A barrier opens a connection in each direction on every rank.
    run_ranks(2, [&](int rank) { t[rank]->barrier({0, 1}); });

    for (int rank = 0; rank < 2; ++rank) {
      const int peer = 1 - rank;
      const int out_fd = t[rank]->debug_outbound_fd(peer);
      const int in_fd = t[rank]->debug_inbound_fd(peer);
      ASSERT_GE(out_fd, 0) << "rank " << rank;
      ASSERT_GE(in_fd, 0) << "rank " << rank;
      EXPECT_EQ(net::tcp_nodelay_on(net::Socket(::dup(out_fd))), nodelay)
          << "connected socket, rank " << rank;
      EXPECT_EQ(net::tcp_nodelay_on(net::Socket(::dup(in_fd))), nodelay)
          << "accepted socket, rank " << rank;
    }
  }
}

// EINTR from a non-blocking connect(2) means the connection proceeds in the
// background (POSIX) — it must take the EINPROGRESS poll path, not abort a
// healthy startup just because a signal landed.
TEST(SocketTransport, ConnectPendingTreatsEintrLikeInProgress) {
  EXPECT_TRUE(net::detail::connect_pending(EINPROGRESS));
  EXPECT_TRUE(net::detail::connect_pending(EINTR));
  EXPECT_FALSE(net::detail::connect_pending(ECONNREFUSED));
  EXPECT_FALSE(net::detail::connect_pending(ETIMEDOUT));
  EXPECT_FALSE(net::detail::connect_pending(0));
}

// A writer SIGKILLed while streaming chunks into the remote store must
// never publish a torn chunk: fsync-before-rename means every *listed*
// chunk is readable with a valid CRC, and in-flight ".tmp.<rank>" files are
// invisible to remote_list.
TEST(SocketTransport, TornRemoteWriterLeavesOnlyValidChunks) {
  TempDir dir;
  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(ready[0]);
    try {
      net::SocketTransport writer(
          0, uds_endpoints(dir, 1), fast_opts(dir));
      for (int i = 0;; ++i) {
        Buffer b(4096 + static_cast<std::size_t>(i % 7) * 512,
                 Buffer::Init::kUninitialized);
        fill_random(b.span(), 0xFEED + static_cast<std::uint64_t>(i));
        writer.store(0).put("blob", std::move(b));
        writer.remote_write(0, "blob", "t/" + std::to_string(i));
        if (i == 8) {
          const char c = 'r';
          (void)!::write(ready[1], &c, 1);
        }
      }
    } catch (...) {
    }
    ::_exit(1);
  }
  ::close(ready[1]);
  char c = 0;
  ASSERT_EQ(::read(ready[0], &c, 1), 1);  // ≥ 9 chunks are published
  ::close(ready[0]);
  ::kill(pid, SIGKILL);  // likely mid-write or mid-rename of a later chunk
  ::waitpid(pid, nullptr, 0);

  net::SocketTransport reader(
      0, {net::Endpoint::uds(dir.path + "/verify.sock")}, fast_opts(dir));
  const std::vector<std::string> listed = reader.remote_list(0, "");
  EXPECT_GE(listed.size(), 9u);
  for (const std::string& key : listed) {
    EXPECT_EQ(key.rfind("t/", 0), 0u) << "unexpected remote key: " << key;
    EXPECT_EQ(key.find(".tmp"), std::string::npos)
        << "in-flight temp file leaked into the listing: " << key;
    // remote_read CRC-verifies the payload; a torn published chunk throws.
    reader.remote_read(0, key, "check");
    EXPECT_FALSE(reader.store(0).get("check").empty()) << key;
  }
}

// ---------------------------------------------------------------------------
// Windowed / pipelined data plane (PR: async pipelined transport).
// ---------------------------------------------------------------------------

/// Every data-plane configuration must produce byte-identical stores: the
/// pipelining is a pure performance change. Covers ack_window ∈ {4, 16}
/// with scatter-gather framing and the legacy copy-framing stop-and-wait
/// plane (ack_window=1, scatter_gather=false) the benches A/B against.
TEST(SocketTransport, DifferentialWindowedPlanesMatchVirtualCluster) {
  constexpr int kWorld = 4;
  struct Plane {
    int window;
    bool scatter_gather;
  };
  for (const Plane plane :
       {Plane{4, true}, Plane{16, true}, Plane{1, false}}) {
    SCOPED_TRACE("ack_window=" + std::to_string(plane.window) +
                 " scatter_gather=" + (plane.scatter_gather ? "on" : "off"));
    TempDir dir;
    auto eps = uds_endpoints(dir, kWorld);
    std::vector<StoreImage> socket_imgs(kWorld);
    run_ranks(kWorld, [&](int rank) {
      net::TransportOptions o = fast_opts(dir);
      o.ack_window = plane.window;
      o.scatter_gather = plane.scatter_gather;
      net::SocketTransport fabric(rank, eps, o);
      exercise_fabric(fabric, kWorld);
      // Batched pairs ride the window; odd sizes on purpose.
      if (rank == 0 || rank == 3) {
        if (fabric.drives(0)) {
          for (int i = 0; i < 5; ++i) {
            Buffer b(333 + static_cast<std::size_t>(i) * 101,
                     Buffer::Init::kUninitialized);
            fill_random(b.span(), 0xBA7C + static_cast<std::uint64_t>(i));
            fabric.store(0).put("batch/" + std::to_string(i), std::move(b));
          }
        }
        std::vector<std::pair<std::string, std::string>> pairs;
        for (int i = 0; i < 5; ++i)
          pairs.emplace_back("batch/" + std::to_string(i),
                             "landed/" + std::to_string(i));
        fabric.send_buffers(0, 3, pairs);
      }
      fabric.barrier({0, 1, 2, 3});
      socket_imgs[static_cast<std::size_t>(rank)] =
          snapshot(fabric.store(rank));
    });

    cluster::ClusterConfig cfg;
    cfg.num_nodes = kWorld;
    cfg.gpus_per_node = 1;
    cluster::VirtualCluster vc(cfg);
    cluster::VirtualFabric ref(vc);
    exercise_fabric(ref, kWorld);
    for (int i = 0; i < 5; ++i) {
      Buffer b(333 + static_cast<std::size_t>(i) * 101,
               Buffer::Init::kUninitialized);
      fill_random(b.span(), 0xBA7C + static_cast<std::uint64_t>(i));
      vc.host(0).put("batch/" + std::to_string(i), std::move(b));
    }
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int i = 0; i < 5; ++i)
      pairs.emplace_back("batch/" + std::to_string(i),
                         "landed/" + std::to_string(i));
    ref.send_buffers(0, 3, pairs);
    ref.barrier({0, 1, 2, 3});
    for (int r = 0; r < kWorld; ++r)
      expect_identical(socket_imgs[static_cast<std::size_t>(r)],
                       snapshot(vc.host(r)), r);
  }
}

/// Acks are matched by sequence number, not arrival order: a peer that
/// reconciles its acks newest-first must still be accepted frame by frame.
/// The peer here is hand-rolled wire code, not a SocketTransport — the
/// production receiver always acks in order, so misordering needs a raw
/// actor.
TEST(SocketTransport, MisorderedAcksWithinWindowReconcile) {
  TempDir dir;
  auto eps = uds_endpoints(dir, 2);
  constexpr int kFrames = 3;

  std::thread raw_peer([&] {
    net::Endpoint ep = eps[1];
    net::Socket listener = net::listen_on(ep);
    net::Socket s =
        net::accept_with_timeout(listener, net::Millis(5000), "raw accept");
    const net::Millis t(5000);
    std::uint8_t hdr[net::kFrameHeaderBytes];
    net::read_full(s, hdr, sizeof(hdr), t, "raw hello");  // sender's hello

    struct ToAck {
      std::uint32_t seq;
      std::uint64_t crc;
    };
    std::vector<ToAck> acks;
    for (int i = 0; i < kFrames; ++i) {
      net::read_full(s, hdr, sizeof(hdr), t, "raw frame header");
      std::uint32_t key_len = 0;
      bool has_trace = false;
      net::FrameHeader h = net::decode_frame_header(hdr, &key_len, &has_trace);
      if (has_trace) {
        std::uint8_t tbuf[net::kTraceContextBytes];
        net::read_full(s, tbuf, sizeof(tbuf), t, "raw trace");
      }
      std::string key(key_len, '\0');
      if (key_len) net::read_full(s, key.data(), key_len, t, "raw key");
      Buffer payload(h.payload_len, Buffer::Init::kUninitialized);
      if (!payload.empty())
        net::read_full(s, payload.data(), payload.size(), t, "raw payload");
      EXPECT_EQ(crc64(payload.span()), h.payload_crc);
      acks.push_back({static_cast<std::uint32_t>(i), h.payload_crc});
    }
    // Reconcile newest-first: seq 2, 1, 0.
    for (auto it = acks.rbegin(); it != acks.rend(); ++it) {
      net::FrameHeader ack;
      ack.type = net::FrameType::kAck;
      ack.src_rank = 1;
      ack.aux = it->seq;
      ack.payload_crc = it->crc;
      std::uint8_t abuf[net::kFrameHeaderBytes];
      net::encode_frame_header(ack, abuf);
      net::write_full(s, abuf, sizeof(abuf), t, "raw ack");
    }
    // Hold the connection open until the sender hangs up.
    char c;
    (void)!::recv(s.fd(), &c, 1, 0);
  });

  net::TransportOptions o = fast_opts(dir);
  o.ack_window = kFrames + 1;  // all frames stay in flight until the flush
  net::SocketTransport fabric(0, eps, o);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < kFrames; ++i) {
    Buffer b(511 + static_cast<std::size_t>(i) * 64,
             Buffer::Init::kUninitialized);
    fill_random(b.span(), 0xACE + static_cast<std::uint64_t>(i));
    const std::string key = "blob/" + std::to_string(i);
    fabric.store(0).put(key, std::move(b));
    pairs.emplace_back(key, key);
  }
  fabric.send_buffers(0, 1, pairs);  // flushes acks before returning
  EXPECT_GE(fabric.stats().counter("net.ack.count"),
            static_cast<std::uint64_t>(kFrames));
  fabric.shutdown();
  raw_peer.join();
}

/// A peer that dies with frames in flight must fail the sender with a
/// typed CheckFailure at the next reconciliation point, within the io
/// timeout — never a hang, never a silent success.
TEST(SocketTransport, PeerDeathMidWindowFailsFastWithTypedError) {
  TempDir dir;
  auto eps = uds_endpoints(dir, 2);

  std::thread raw_peer([&] {
    net::Endpoint ep = eps[1];
    net::Socket listener = net::listen_on(ep);
    net::Socket s =
        net::accept_with_timeout(listener, net::Millis(5000), "raw accept");
    const net::Millis t(5000);
    std::uint8_t hdr[net::kFrameHeaderBytes];
    net::read_full(s, hdr, sizeof(hdr), t, "raw hello");
    // Read exactly one frame header, then die without acking anything.
    net::read_full(s, hdr, sizeof(hdr), t, "raw frame header");
    s.close();
  });

  net::TransportOptions o = fast_opts(dir);
  o.ack_window = 8;
  o.io_timeout = net::Millis(2000);
  net::SocketTransport fabric(0, eps, o);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 4; ++i) {
    const std::string key = "blob/" + std::to_string(i);
    fabric.store(0).put(key, Buffer(4096, Buffer::Init::kZeroed));
    pairs.emplace_back(key, key);
  }
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(fabric.send_buffers(0, 1, pairs), CheckFailure);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5))
      << "mid-window peer death stalled past the io timeout";
  raw_peer.join();
}

/// Wire corruption inside an open window: the receiver detects the CRC
/// mismatch before acking (typed failure), and the sender's deferred
/// reconciliation surfaces a typed failure too — the corrupted frame can
/// never be silently absorbed by the pipeline.
TEST(SocketTransport, CorruptFrameInsideOpenWindowFailsBothSides) {
  TempDir dir;
  auto eps = uds_endpoints(dir, 2);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 3; ++i)
    pairs.emplace_back("blob/" + std::to_string(i),
                       "landed/" + std::to_string(i));

  run_ranks(2, [&](int rank) {
    net::TransportOptions o = fast_opts(dir);
    o.ack_window = 4;
    o.io_timeout = net::Millis(2000);
    net::SocketTransport fabric(rank, eps, o);
    if (fabric.drives(0)) {
      for (const auto& [src_key, dst_key] : pairs)
        fabric.store(0).put(src_key, Buffer(8192, Buffer::Init::kZeroed));
      fabric.corrupt_next_frame();  // first frame of the open window
    }
    EXPECT_THROW(fabric.send_buffers(0, 1, pairs), CheckFailure);
  });
}

/// The pipelined plane is observable: windowed sends must leave the
/// scatter-gather byte counter and the window/queue-depth histograms in
/// the registry (the same registry transport_cli --stats-json serves).
TEST(SocketTransport, WindowedDataPlaneExposesPipelineStats) {
  constexpr int kWorld = 3;
  TempDir dir;
  auto eps = uds_endpoints(dir, kWorld);
  std::vector<int> all = {0, 1, 2};

  run_ranks(kWorld, [&](int rank) {
    net::TransportOptions o = fast_opts(dir);
    o.ack_window = 8;
    net::SocketTransport fabric(rank, eps, o);
    if (fabric.drives(0)) {
      Buffer root(64 * 1024, Buffer::Init::kUninitialized);
      fill_random(root.span(), 0x57A75);
      fabric.store(0).put("root", std::move(root));
    }
    fabric.broadcast(all, 0, "root");  // multi-peer fan-out → SendPump
    fabric.barrier(all);
    if (rank == 0) {
      const auto hists = fabric.stats().histograms();
      EXPECT_GT(fabric.stats().counter("net.send.writev_bytes"), 0u)
          << "scatter-gather path did not run";
      EXPECT_GT(fabric.stats().counter("net.ack.count"), 0u);
      EXPECT_GT(fabric.stats().counter("net.pump.count"), 0u)
          << "multi-peer fan-out did not use the send pump";
      ASSERT_TRUE(hists.count("net.ack.window"));
      EXPECT_GT(hists.at("net.ack.window").count, 0u);
      EXPECT_TRUE(hists.count("net.send.queue_depth"))
          << "pump never queued a frame";
    }
  });
}

}  // namespace
}  // namespace eccheck
